package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/analysis"
)

// badFixture is a package that plants exactly one violation per
// analyzer at pinned lines (see the fixture's package comment).
const badFixture = "../../internal/analysis/testdata/src/asyvetbad"

// wantBad lists the (analyzer, line) pairs the known-bad fixture must
// produce, in the sorted order the multichecker reports them.
var wantBad = []struct {
	analyzer string
	line     int
}{
	{"determinism", 16},
	{"noallocwarm", 28},
	{"poolput", 31},
	{"blockingsend", 34},
	{"ctxpoll", 38},
}

func runAsyvet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestBadFixtureText(t *testing.T) {
	code, out, errOut := runAsyvet(t, badFixture)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(wantBad) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(lines), len(wantBad), out)
	}
	for i, w := range wantBad {
		if !strings.Contains(lines[i], fmt.Sprintf("[%s]", w.analyzer)) {
			t.Errorf("line %d = %q, want analyzer %q", i, lines[i], w.analyzer)
		}
		if !strings.Contains(lines[i], fmt.Sprintf("bad.go:%d:", w.line)) {
			t.Errorf("line %d = %q, want position bad.go:%d", i, lines[i], w.line)
		}
	}
	if !strings.Contains(errOut, "5 finding(s)") {
		t.Errorf("stderr summary = %q, want a 5 finding(s) count", errOut)
	}
}

func TestBadFixtureJSON(t *testing.T) {
	code, out, _ := runAsyvet(t, "-json", badFixture)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s", code, out)
	}
	var rep struct {
		Diagnostics []analysis.Diagnostic `json:"diagnostics"`
		Count       int                   `json:"count"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output does not decode: %v\n%s", err, out)
	}
	if rep.Count != len(wantBad) || len(rep.Diagnostics) != len(wantBad) {
		t.Fatalf("count = %d, len(diagnostics) = %d, want %d", rep.Count, len(rep.Diagnostics), len(wantBad))
	}
	for i, w := range wantBad {
		d := rep.Diagnostics[i]
		if d.Analyzer != w.analyzer {
			t.Errorf("diagnostics[%d].Analyzer = %q, want %q", i, d.Analyzer, w.analyzer)
		}
		if d.Line != w.line {
			t.Errorf("diagnostics[%d].Line = %d, want %d", i, d.Line, w.line)
		}
		if !strings.HasSuffix(d.File, "asyvetbad/bad.go") {
			t.Errorf("diagnostics[%d].File = %q, want .../asyvetbad/bad.go", i, d.File)
		}
		if d.Col <= 0 || d.Message == "" {
			t.Errorf("diagnostics[%d] missing col/message: %+v", i, d)
		}
	}
}

func TestDisableFlag(t *testing.T) {
	code, out, _ := runAsyvet(t, "-json", "-determinism=false", badFixture)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (other analyzers still fire)", code)
	}
	var rep struct {
		Diagnostics []analysis.Diagnostic `json:"diagnostics"`
		Count       int                   `json:"count"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output does not decode: %v\n%s", err, out)
	}
	if rep.Count != len(wantBad)-1 {
		t.Fatalf("count = %d with determinism disabled, want %d", rep.Count, len(wantBad)-1)
	}
	for _, d := range rep.Diagnostics {
		if d.Analyzer == "determinism" {
			t.Errorf("disabled analyzer still reported: %+v", d)
		}
	}
}

func TestCleanPackageJSON(t *testing.T) {
	code, out, errOut := runAsyvet(t, "-json", "../../internal/rng")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	// The empty report must be `"diagnostics": []`, never null, so CI
	// tooling can index it unconditionally.
	if !strings.Contains(out, `"diagnostics": []`) {
		t.Errorf("clean -json report = %s, want an explicit empty diagnostics array", out)
	}
	var rep struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil || rep.Count != 0 {
		t.Errorf("clean report count = %d (err %v), want 0", rep.Count, err)
	}
}

func TestBadPatternExitCode(t *testing.T) {
	code, _, errOut := runAsyvet(t, "./does/not/exist")
	if code != 2 {
		t.Fatalf("exit code = %d for unknown pattern, want 2 (stderr: %s)", code, errOut)
	}
}
