// Command asyvet is the repository's multichecker: it runs the custom
// go/analysis-style suite from internal/analysis over the module and
// fails (exit 1) on any diagnostic. Each analyzer encodes one of the
// solver's load-bearing invariants — Philox-pure randomness
// (determinism), zero-alloc warm paths (noallocwarm), balanced pool
// usage (poolput), non-blocking distmem sends (blockingsend), and
// cancellable solver loops (ctxpoll).
//
// Usage:
//
//	go run ./cmd/asyvet ./...
//	go run ./cmd/asyvet -json ./internal/distmem
//	go run ./cmd/asyvet -ctxpoll=false ./...
//
// Every analyzer has a -<name>=false disable flag; -json switches the
// report to a machine-readable object. Exit codes: 0 clean, 1 at least
// one diagnostic, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/asynclinalg/asyrgs/internal/analysis"
)

// jsonReport is the -json output shape.
type jsonReport struct {
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
	Count       int                   `json:"count"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("asyvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	dir := fs.String("C", ".", "change to this directory before loading packages")
	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *dir != "." {
		// The source importer resolves intra-module imports relative to
		// the process working directory, so -C must really chdir.
		if err := os.Chdir(*dir); err != nil {
			fmt.Fprintf(stderr, "asyvet: %v\n", err)
			return 2
		}
	}
	var active []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "asyvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, active)
	if err != nil {
		fmt.Fprintf(stderr, "asyvet: %v\n", err)
		return 2
	}
	if diags == nil {
		diags = []analysis.Diagnostic{} // -json emits [], not null
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{Diagnostics: diags, Count: len(diags)}); err != nil {
			fmt.Fprintf(stderr, "asyvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "asyvet: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}
