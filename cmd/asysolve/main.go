// Command asysolve solves a linear system read from MatrixMarket files,
// dispatching through the unified solver registry (internal/method): any
// registered method is available by name, with uniform options and
// reporting.
//
// Usage:
//
//	asysolve -A matrix.mtx [-b rhs.mtx] [-method name | -method list]
//	         [-tol 1e-6] [-maxsweeps 1000] [-workers P] [-beta b] [-inner k]
//	         [-queue-cap c] [-chunk k] [-precision f64|f32] [-timeout d]
//	         [-o solution.mtx] [-repeat k]
//
// When -b is omitted a random right-hand side with known solution is
// generated, and the final A-norm error is reported alongside the
// residual. The right-hand side file may be a coordinate MatrixMarket
// vector (n×1 matrix).
//
// The solve runs through the two-phase Prepare/Solve pipeline: per-matrix
// setup (Gram/CSC views, row norms, diagonal scaling) is captured once
// and timed separately from the solve, and -repeat k re-solves the same
// prepared system k times with fresh right-hand sides — the serving shape
// where preparation amortizes away.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asysolve: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		matPath    = flag.String("A", "", "MatrixMarket file with the coefficient matrix (required)")
		rhsPath    = flag.String("b", "", "MatrixMarket file with the right-hand side (n×1); random if omitted")
		methodName = flag.String("method", "asyrgs", "registry method name, or 'list' to print the roster")
		tol        = flag.Float64("tol", 1e-6, "relative residual tolerance")
		maxSweeps  = flag.Int("maxsweeps", 1000, "sweep/iteration budget")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines")
		beta       = flag.Float64("beta", 0, "step size β in (0,2); 0 = method default")
		inner      = flag.Int("inner", 2, "preconditioner sweeps for fcg")
		checkEvery = flag.Int("check", 5, "sweeps between residual checks")
		queueCap   = flag.Int("queue-cap", 0, "per-peer message-queue budget of the sharded asyrgs-distmem backend (0 = default 4)")
		chunk      = flag.Int("chunk", 0, "iteration-claiming granularity of the asynchronous methods (0 = auto)")
		precision  = flag.String("precision", "f64", "matrix value storage: f64, or f32 for float32 values with float64 accumulation (coordinate methods only)")
		timeout    = flag.Duration("timeout", 0, "abort the solve after this duration (0 = none)")
		outPath    = flag.String("o", "", "write the solution as an n×1 MatrixMarket file")
		seed       = flag.Uint64("seed", 1, "seed for directions and generated RHS")
		repeat     = flag.Int("repeat", 1, "solve this many right-hand sides against the prepared system")
	)
	flag.Parse()

	if *methodName == "list" {
		for _, m := range method.All() {
			fmt.Printf("%-20s %s\n", m.Name(), m.Kind())
		}
		return
	}
	m, err := method.Get(*methodName)
	if err != nil {
		fatalf("%v", err)
	}
	if *matPath == "" {
		fatalf("-A is required")
	}
	f, err := os.Open(*matPath)
	if err != nil {
		fatalf("%v", err)
	}
	a, err := sparse.ReadMM(f)
	f.Close()
	if err != nil {
		fatalf("reading %s: %v", *matPath, err)
	}
	fmt.Println(workload.Describe(*matPath, a))

	var b, xstar []float64
	if *rhsPath != "" {
		rf, err := os.Open(*rhsPath)
		if err != nil {
			fatalf("%v", err)
		}
		b, err = sparse.ReadMMVector(rf)
		rf.Close()
		if err != nil {
			fatalf("reading %s: %v", *rhsPath, err)
		}
		if len(b) != a.Rows {
			fatalf("right-hand side has %d entries, matrix has %d rows", len(b), a.Rows)
		}
	} else {
		if m.Kind() == method.SPD {
			b, xstar = workload.RHSForSolution(a, *seed)
			fmt.Println("generated random RHS with known solution (b = A·x*)")
		} else {
			b = workload.RandomRHS(a.Rows, *seed)
			fmt.Println("generated random RHS")
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Delay measurement claims one iteration at a time, so an explicit
	// claiming granularity turns it off — the point of -chunk is to see
	// the uninstrumented hot path.
	measureDelay := *chunk == 0
	if !measureDelay {
		fmt.Printf("claiming chunk %d: delay measurement disabled\n", *chunk)
	}
	prec, err := method.CanonPrecision(*precision)
	if err != nil {
		fatalf("%v", err)
	}
	opts := method.Opts{
		Tol: *tol, MaxSweeps: *maxSweeps, Workers: *workers,
		Beta: *beta, Seed: *seed, Inner: *inner, CheckEvery: *checkEvery,
		QueueCap: *queueCap, Chunk: *chunk, XStar: xstar, MeasureDelay: measureDelay,
		Precision: prec,
	}
	if prec == "f32" {
		fmt.Println("float32 value storage: iterating on fl32(A)·x = b with float64 accumulation")
	}

	// Phase 1: capture the per-matrix state once.
	prepStart := time.Now()
	ps, err := method.Prepare(ctx, m, a, opts)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("prepared %s in %v\n", m.Name(), time.Since(prepStart).Round(time.Microsecond))

	// Phase 2: solve — once, or -repeat times with fresh right-hand sides
	// to demonstrate the amortized warm path.
	x := make([]float64, a.Cols)
	res, err := ps.Solve(ctx, b, x, opts)
	if err != nil && !errors.Is(err, method.ErrNotConverged) {
		fatalf("%v", err)
	}
	for k := 1; k < *repeat; k++ {
		bk := workload.RandomRHS(a.Rows, *seed+uint64(k))
		xk := make([]float64, a.Cols)
		warmOpts := opts
		warmOpts.XStar = nil
		warm, werr := ps.Solve(ctx, bk, xk, warmOpts)
		if werr != nil && !errors.Is(werr, method.ErrNotConverged) {
			fatalf("warm solve %d: %v", k, werr)
		}
		fmt.Printf("warm solve %d: time=%v relative-residual=%.3e converged=%v\n",
			k, warm.Wall.Round(time.Millisecond), warm.Residual, warm.Converged)
	}

	fmt.Printf("sweeps=%d iterations=%d", res.Sweeps, res.Iterations)
	if res.ObservedTau > 0 {
		fmt.Printf(" observed-tau=%d", res.ObservedTau)
	}
	if res.Messages > 0 {
		fmt.Printf(" messages=%d max-queue=%d", res.Messages, res.MaxQueue)
	}
	fmt.Println()
	fmt.Printf("method=%s time=%v relative-residual=%.3e converged=%v\n",
		res.Method, res.Wall.Round(time.Millisecond), res.Residual, res.Converged)
	if xstar != nil && a.Rows == a.Cols {
		fmt.Printf("relative A-norm error=%.3e\n", res.ANormErr)
	}

	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := sparse.WriteMMVector(of, x); err != nil {
			fatalf("writing %s: %v", *outPath, err)
		}
		of.Close()
		fmt.Printf("solution written to %s\n", *outPath)
	}
}
