// Command asysolve solves a linear system read from MatrixMarket files.
//
// Usage:
//
//	asysolve -A matrix.mtx [-b rhs.mtx] [-method asyrgs|rgs|cg|fcg|jacobi|gs|kaczmarz]
//	         [-tol 1e-6] [-maxsweeps 1000] [-workers P] [-beta b] [-inner k]
//	         [-o solution.mtx]
//
// When -b is omitted a random right-hand side with known solution is
// generated, and the final A-norm error is reported alongside the
// residual. The right-hand side file may be a coordinate MatrixMarket
// vector (n×1 matrix).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/kaczmarz"
	"github.com/asynclinalg/asyrgs/internal/krylov"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "asysolve: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		matPath   = flag.String("A", "", "MatrixMarket file with the coefficient matrix (required)")
		rhsPath   = flag.String("b", "", "MatrixMarket file with the right-hand side (n×1); random if omitted")
		method    = flag.String("method", "asyrgs", "solver: asyrgs|rgs|cg|fcg|jacobi|gs|kaczmarz")
		tol       = flag.Float64("tol", 1e-6, "relative residual tolerance")
		maxSweeps = flag.Int("maxsweeps", 1000, "sweep/iteration budget")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines")
		beta      = flag.Float64("beta", 1, "step size β in (0,2)")
		inner     = flag.Int("inner", 2, "preconditioner sweeps for fcg")
		outPath   = flag.String("o", "", "write the solution as an n×1 MatrixMarket file")
		seed      = flag.Uint64("seed", 1, "seed for directions and generated RHS")
	)
	flag.Parse()
	if *matPath == "" {
		fatalf("-A is required")
	}
	f, err := os.Open(*matPath)
	if err != nil {
		fatalf("%v", err)
	}
	a, err := sparse.ReadMM(f)
	f.Close()
	if err != nil {
		fatalf("reading %s: %v", *matPath, err)
	}
	fmt.Println(workload.Describe(*matPath, a))

	var b, xstar []float64
	if *rhsPath != "" {
		rf, err := os.Open(*rhsPath)
		if err != nil {
			fatalf("%v", err)
		}
		b, err = sparse.ReadMMVector(rf)
		rf.Close()
		if err != nil {
			fatalf("reading %s: %v", *rhsPath, err)
		}
		if len(b) != a.Rows {
			fatalf("right-hand side has %d entries, matrix has %d rows", len(b), a.Rows)
		}
	} else {
		b, xstar = workload.RHSForSolution(a, *seed)
		fmt.Println("generated random RHS with known solution (b = A·x*)")
	}

	x := make([]float64, a.Cols)
	start := time.Now()
	var residual float64
	var converged bool

	switch *method {
	case "asyrgs", "rgs":
		w := *workers
		if *method == "rgs" {
			w = 1
		}
		s, err := core.New(a, core.Options{Workers: w, Beta: *beta, Seed: *seed, MeasureDelay: true})
		if err != nil {
			fatalf("%v", err)
		}
		res, _ := s.SolveAsync(x, b, *tol, *maxSweeps, 5)
		residual, converged = res.Residual, res.Converged
		fmt.Printf("sweeps=%d observed-tau=%d\n", res.Sweeps, res.ObservedTau)
	case "cg":
		res, _ := krylov.CG(a, x, b, krylov.CGOptions{Tol: *tol, MaxIter: *maxSweeps, Workers: *workers, Partition: sparse.PartitionRoundRobin})
		residual, converged = res.Residual, res.Converged
		fmt.Printf("iterations=%d\n", res.Iterations)
	case "fcg":
		s, err := core.New(a, core.Options{Workers: *workers, Beta: *beta, Seed: *seed})
		if err != nil {
			fatalf("%v", err)
		}
		pre := krylov.PrecondFunc(func(z, r []float64) { s.Precondition(z, r, *inner) })
		res, _ := krylov.FlexibleCG(a, x, b, pre, krylov.FCGOptions{Tol: *tol, MaxIter: *maxSweeps, Workers: *workers, Partition: sparse.PartitionRoundRobin})
		residual, converged = res.Residual, res.Converged
		fmt.Printf("outer iterations=%d (inner sweeps=%d)\n", res.Iterations, *inner)
	case "jacobi":
		res := krylov.Jacobi(a, x, b, *maxSweeps, *tol, *workers)
		residual, converged = res.Residual, res.Converged
		fmt.Printf("sweeps=%d\n", res.Sweeps)
	case "gs":
		res := krylov.GaussSeidel(a, x, b, *maxSweeps, *tol)
		residual, converged = res.Residual, res.Converged
		fmt.Printf("sweeps=%d\n", res.Sweeps)
	case "kaczmarz":
		s, err := kaczmarz.New(a, kaczmarz.Options{Workers: *workers, Seed: *seed, Beta: *beta})
		if err != nil {
			fatalf("%v", err)
		}
		iters, res, errSolve := s.Solve(x, b, *tol, *maxSweeps*a.Rows, a.Rows)
		residual, converged = res, errSolve == nil
		fmt.Printf("iterations=%d\n", iters)
	default:
		fatalf("unknown method %q", *method)
	}

	fmt.Printf("method=%s time=%v relative-residual=%.3e converged=%v\n",
		*method, time.Since(start).Round(time.Millisecond), residual, converged)
	if xstar != nil && a.Rows == a.Cols {
		fmt.Printf("relative A-norm error=%.3e\n", a.ANormErr(x, xstar)/a.ANorm(xstar))
	}

	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := sparse.WriteMMVector(of, x); err != nil {
			fatalf("writing %s: %v", *outPath, err)
		}
		of.Close()
		fmt.Printf("solution written to %s\n", *outPath)
	}
}
