// Command matgen generates the workload matrices as MatrixMarket files so
// they can be fed to asysolve or external tools.
//
// Usage:
//
//	matgen -kind socialgram|laplacian2d|laplacian3d|randomspd|overdetermined
//	       [-n size] [-m rows] [-nnz perRow] [-seed s] -o out.mtx
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func main() {
	var (
		kind = flag.String("kind", "socialgram", "socialgram|laplacian2d|laplacian3d|randomspd|overdetermined")
		n    = flag.Int("n", 1000, "primary dimension (terms / grid side / columns)")
		m    = flag.Int("m", 0, "rows for overdetermined (default 4n); docs for socialgram (default 3n)")
		nnz  = flag.Int("nnz", 8, "non-zeros per row for random generators")
		seed = flag.Uint64("seed", 42, "generator seed")
		out  = flag.String("o", "", "output MatrixMarket path (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "matgen: -o is required")
		os.Exit(2)
	}

	var a *sparse.CSR
	switch *kind {
	case "socialgram":
		opts := workload.DefaultSocialGram(*n, *seed)
		if *m > 0 {
			opts.Docs = *m
		}
		a, _ = workload.SocialGram(opts)
	case "laplacian2d":
		a = workload.Laplacian2D(*n, *n)
	case "laplacian3d":
		a = workload.Laplacian3D(*n, *n, *n)
	case "randomspd":
		a = workload.RandomSPD(*n, *nnz, 1.5, *seed)
	case "overdetermined":
		rows := *m
		if rows <= 0 {
			rows = 4 * *n
		}
		a = workload.RandomOverdetermined(rows, *n, *nnz, *seed)
	default:
		fmt.Fprintf(os.Stderr, "matgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "matgen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if a.Rows == a.Cols && a.IsSymmetric(1e-12) {
		err = sparse.WriteMMSymmetric(f, a)
	} else {
		err = sparse.WriteMM(f, a)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "matgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(workload.Describe(*out, a))
}
