// Command asyload is the load generator for the asyrgsd serving daemon:
// N concurrent closed-loop clients — or an open-loop Poisson arrival
// process — drive one of the reusable traffic scenarios (see -scenario
// list) against a target daemon, or against a self-hosted in-process
// server when no target is given, and report throughput, interpolated
// p50/p95/p99 latency, error and cache-hit rates, plus the delta of the
// server's own /stats counters.
//
// Usage:
//
//	asyload [-target http://host:8080] [-scenario mixed] [-clients 8]
//	        [-duration 10s] [-requests 0] [-n 96] [-seed 1]
//	        [-open] [-rate 100]
//	        [-knee] [-rate-start 50] [-rate-factor 2] [-knee-steps 8]
//	        [-step-duration 2s] [-knee-out BENCH_knee.json]
//	        [-json] [-out BENCH_serve.json]
//	        [-max-concurrent P] [-batch-window 2ms] [-batch-target 0] [-cache 16]
//	        [-baseline BENCH_serve.json] [-slo-p99-factor 25] [-slo-error-band 0.05]
//	        [-knee-baseline BENCH_knee.json] [-slo-knee-factor 4]
//	        [-cold-restart] [-cold-nnz 64] [-cold-trials 3] [-cold-method asyrgs]
//	        [-cold-out BENCH_coldstart.json]
//	        [-chaos] [-chaos-store-err 0.2] [-chaos-store-lat 200µs]
//	        [-chaos-drop 0.1] [-chaos-out BENCH_chaos.json]
//
// With -target empty the generator self-hosts a serve.Server behind a
// direct handler transport (no sockets) sized by the -max-concurrent,
// -batch-window, -batch-target and -cache knobs — the hermetic mode CI
// uses to regenerate the BENCH_serve.json baseline. -scenario list
// prints the catalogue. -json writes the report to -out (default
// BENCH_serve.json).
//
// -open switches to open-loop mode: requests depart on a Poisson
// schedule at -rate req/s regardless of how fast earlier ones complete,
// and every latency is measured from the request's intended departure
// instant — a server that falls behind accrues queueing delay in the
// numbers instead of silently throttling the generator (coordinated
// omission). -knee runs the open-loop capacity sweep: the offered rate
// steps geometrically from -rate-start by -rate-factor for up to
// -knee-steps steps of -step-duration each, until p99 explodes or
// errors appear; the sweep (with every per-step report) is written to
// -knee-out with -json.
//
// -cold-restart runs the durable-prep-store measurement instead of a
// traffic scenario: it warms an in-memory store with one prepared
// system, then alternates fresh daemons without a store (full Prepare)
// and fresh daemons over the warmed store (restore), reporting both
// first-request prepare latencies and their ratio. -json writes the
// report to -cold-out.
//
// -chaos runs the resilience gate instead of a traffic scenario: a
// self-hosted daemon whose durable prep store sits on a deterministic
// fault injector is soaked with store-churn traffic under
// -chaos-store-err transient errors and -chaos-store-lat injected
// latency, taken through a total backend outage (circuit breaker trips,
// then recovers), and finished with a distributed-memory solve under
// -chaos-drop message loss. Every invariant is asserted — no request
// lost, fault accounting reconciled exactly, breaker closed again,
// distmem converged — and the process exits 3 on any violation. -json
// writes the report to -chaos-out.
//
// With -baseline (or, for sweeps, -knee-baseline) the run becomes an
// SLO gate: the fresh report is compared against the committed baseline
// and the process exits 3 when p99 latency exceeds -slo-p99-factor
// times the baseline's, the error rate exceeds the baseline's by more
// than -slo-error-band, or the measured capacity knee falls below the
// baseline's knee divided by -slo-knee-factor — CI's load-smoke
// regression check. Baselines are read before -json overwrites them, so
// one invocation can gate and regenerate.
//
// Examples:
//
//	asyload -scenario warm-repeat -clients 8 -duration 5s
//	asyload -target http://localhost:8080 -scenario mixed -clients 8 -duration 2s -json
//	asyload -scenario mixed -clients 4 -duration 2s -baseline BENCH_serve.json -json
//	asyload -scenario warm-repeat -open -rate 200 -duration 5s
//	asyload -scenario mixed -knee -rate-start 50 -knee-steps 6 -step-duration 2s -json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/asynclinalg/asyrgs/internal/load"
	"github.com/asynclinalg/asyrgs/internal/serve"
)

// writeArtifact creates path and streams one JSON report into it.
func writeArtifact(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

func main() {
	var (
		targetURL   = flag.String("target", "", "daemon base URL; empty self-hosts an in-process server")
		scenario    = flag.String("scenario", "mixed", "traffic scenario, or 'list' for the catalogue")
		clients     = flag.Int("clients", 8, "concurrent closed-loop clients")
		duration    = flag.Duration("duration", 10*time.Second, "run length (in-flight requests complete)")
		requests    = flag.Int("requests", 0, "total request budget (0 = duration-bounded)")
		n           = flag.Int("n", 96, "base problem dimension the scenarios scale from")
		seed        = flag.Uint64("seed", 1, "request-stream seed")
		jsonOut     = flag.Bool("json", false, "write the report as a JSON baseline")
		outPath     = flag.String("out", "BENCH_serve.json", "baseline path used with -json")
		openLoop    = flag.Bool("open", false, "open-loop mode: Poisson arrivals at -rate, latency from intended departure (no coordinated omission)")
		rate        = flag.Float64("rate", 100, "open-loop target arrival rate in req/s")
		knee        = flag.Bool("knee", false, "capacity sweep: step the open-loop rate geometrically until p99 explodes")
		rateStart   = flag.Float64("rate-start", 50, "knee sweep: first offered rate in req/s")
		rateFactor  = flag.Float64("rate-factor", 2, "knee sweep: rate multiplier between steps")
		kneeSteps   = flag.Int("knee-steps", 8, "knee sweep: maximum number of rate steps")
		stepDur     = flag.Duration("step-duration", 2*time.Second, "knee sweep: wall time per rate step")
		kneeOut     = flag.String("knee-out", "BENCH_knee.json", "knee artifact path used with -knee -json")
		maxConc     = flag.Int("max-concurrent", 0, "self-hosted: max in-flight solve batches (0 = GOMAXPROCS)")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "self-hosted: max coalescing wait (the adaptive deadline shortens it)")
		batchTarget = flag.Int("batch-target", 0, "self-hosted: flush coalesced batches at this width (0 = adapt)")
		cacheSize   = flag.Int("cache", 16, "self-hosted: built-matrix LRU capacity")
		baseline    = flag.String("baseline", "", "committed BENCH_serve.json to gate this run against (SLO check)")
		sloP99      = flag.Float64("slo-p99-factor", 25, "fail (exit 3) when p99 exceeds this multiple of the baseline's; 0 disables")
		sloErrBand  = flag.Float64("slo-error-band", 0.05, "fail (exit 3) when the error rate exceeds the baseline's by more than this; negative disables")
		kneeBase    = flag.String("knee-baseline", "", "committed BENCH_knee.json to gate a -knee sweep against")
		sloKnee     = flag.Float64("slo-knee-factor", 4, "fail (exit 3) when the knee falls below the baseline's divided by this; 0 disables")
		coldRestart = flag.Bool("cold-restart", false, "measure a restarted daemon's first-request prepare latency with and without the durable prep store (self-hosted; ignores -target)")
		coldNNZ     = flag.Int("cold-nnz", 64, "cold-restart: nonzeros per row (the restore win scales with density)")
		coldTrials  = flag.Int("cold-trials", 3, "cold-restart: trials per arm (each arm reports its minimum)")
		coldMethod  = flag.String("cold-method", "asyrgs", "cold-restart: persistent method to measure")
		coldOut     = flag.String("cold-out", "BENCH_coldstart.json", "cold-restart artifact path used with -json")
		chaos       = flag.Bool("chaos", false, "run the resilience gate: store faults + outage + distmem message loss against a self-hosted daemon, asserting every invariant (ignores -target)")
		chaosErr    = flag.Float64("chaos-store-err", 0.2, "chaos: injected transient-error rate on store get/put (negative disables)")
		chaosLat    = flag.Duration("chaos-store-lat", 200*time.Microsecond, "chaos: injected store-operation latency (negative disables)")
		chaosDrop   = flag.Float64("chaos-drop", 0.1, "chaos: distmem update-message loss rate (negative disables)")
		chaosOut    = flag.String("chaos-out", "BENCH_chaos.json", "chaos artifact path used with -json")
	)
	flag.Parse()

	if *chaos {
		rep, err := load.RunChaos(context.Background(), load.ChaosOptions{
			StoreErrRate: *chaosErr,
			StoreLatency: *chaosLat,
			DropRate:     *chaosDrop,
			Seed:         *seed,
			Clients:      *clients,
			Requests:     *requests,
			N:            *n,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(rep.String())
		if *jsonOut {
			if err := writeArtifact(*chaosOut, rep.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("chaos artifact written to %s\n", *chaosOut)
		}
		if err := rep.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "asyload: chaos invariants violated:\n%v\n", err)
			os.Exit(3)
		}
		fmt.Println("chaos gate passed: no request lost, fault accounting exact, breaker recovered, distmem converged under loss")
		return
	}

	if *coldRestart {
		n := *n
		if n == 96 {
			// The scenario default, not the shared -n default: at n=96 the
			// prepare phase is too small to measure.
			n = 20000
		}
		rep, err := load.ColdRestart(context.Background(), load.ColdRestartOptions{
			N: n, NNZ: *coldNNZ, Trials: *coldTrials, Seed: *seed, Method: *coldMethod,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(rep.String())
		if *jsonOut {
			if err := writeArtifact(*coldOut, rep.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("cold-restart artifact written to %s\n", *coldOut)
		}
		return
	}

	if *scenario == "list" {
		for _, s := range load.Scenarios() {
			fmt.Printf("%-12s %s\n", s.Name, s.Description)
		}
		return
	}

	// Read the committed baseline before the run: with -json the run's
	// own report may overwrite the same path afterwards.
	var sloBaseline *load.Report
	if *baseline != "" {
		base, err := load.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
			os.Exit(2)
		}
		sloBaseline = &base
	}

	// The knee gate's baseline is read up front for the same reason.
	var kneeBaseline *load.KneeReport
	if *kneeBase != "" {
		base, err := load.ReadKneeBaseline(*kneeBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
			os.Exit(2)
		}
		kneeBaseline = &base
	}

	var target *load.Target
	if *targetURL == "" {
		fmt.Println("asyload: no -target, self-hosting an in-process server")
		target = load.NewInProcessTarget(serve.Config{
			MaxConcurrent: *maxConc,
			BatchWindow:   *batchWindow,
			BatchTarget:   *batchTarget,
			CacheSize:     *cacheSize,
		})
	} else {
		target = load.NewHTTPTarget(*targetURL)
	}
	defer target.Close()

	if *knee {
		sweep, err := load.Knee(context.Background(), target, load.KneeOptions{
			Scenario:     *scenario,
			StartRate:    *rateStart,
			Factor:       *rateFactor,
			Steps:        *kneeSteps,
			StepDuration: *stepDur,
			Seed:         *seed,
			N:            *n,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(sweep.String())
		if *jsonOut {
			if err := writeArtifact(*kneeOut, sweep.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("knee artifact written to %s\n", *kneeOut)
		}
		if kneeBaseline != nil {
			slo := load.SLO{KneeFactor: *sloKnee}
			if err := slo.CheckKnee(sweep, *kneeBaseline); err != nil {
				fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
				os.Exit(3)
			}
			fmt.Printf("knee SLO gate passed vs %s (knee %.1f ≥ %.1f/%.1f req/s)\n",
				*kneeBase, sweep.KneeRPS, kneeBaseline.KneeRPS, *sloKnee)
		}
		return
	}

	rep, err := load.Run(context.Background(), target, load.Options{
		Scenario:    *scenario,
		Clients:     *clients,
		Duration:    *duration,
		MaxRequests: *requests,
		Seed:        *seed,
		N:           *n,
		OpenLoop:    *openLoop,
		Rate:        *rate,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(rep.String())

	if *jsonOut {
		if err := writeArtifact(*outPath, rep.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("baseline written to %s\n", *outPath)
	}

	if rep.Requests == 0 {
		fmt.Fprintln(os.Stderr, "asyload: no requests completed")
		os.Exit(1)
	}

	// SLO gate: compare this run against the committed baseline (read
	// before any -json overwrite), failing with a distinct exit code so
	// CI can tell a latency/error regression from an unusable run.
	if sloBaseline != nil {
		slo := load.SLO{P99Factor: *sloP99, ErrorBand: *sloErrBand}
		if err := slo.Check(rep, *sloBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
			os.Exit(3)
		}
		fmt.Printf("SLO gate passed vs %s (p99 ≤ %.1f× %.2fms, error rate ≤ %.3f+%.3f)\n",
			*baseline, *sloP99, sloBaseline.P99US/1e3, sloBaseline.ErrorRate, *sloErrBand)
	}
}
