// Command asyload is the closed-loop load generator for the asyrgsd
// serving daemon: N concurrent clients drive one of the reusable traffic
// scenarios (see -scenario list) against a target daemon — or against a
// self-hosted in-process server when no target is given — and report
// throughput, interpolated p50/p95/p99 latency, error and cache-hit
// rates, plus the delta of the server's own /stats counters.
//
// Usage:
//
//	asyload [-target http://host:8080] [-scenario mixed] [-clients 8]
//	        [-duration 10s] [-requests 0] [-n 96] [-seed 1]
//	        [-json] [-out BENCH_serve.json]
//	        [-max-concurrent P] [-batch-window 2ms] [-cache 16]
//	        [-baseline BENCH_serve.json] [-slo-p99-factor 25] [-slo-error-band 0.05]
//
// With -target empty the generator self-hosts a serve.Server behind a
// direct handler transport (no sockets) sized by the -max-concurrent,
// -batch-window and -cache knobs — the hermetic mode CI uses to
// regenerate the BENCH_serve.json baseline. -scenario list prints the
// catalogue. -json writes the report to -out (default BENCH_serve.json).
//
// With -baseline the run becomes an SLO gate: the fresh report is
// compared against the committed baseline and the process exits 3 when
// p99 latency exceeds -slo-p99-factor times the baseline's or the error
// rate exceeds the baseline's by more than -slo-error-band — CI's
// load-smoke regression check. The baseline is read before -json
// overwrites it, so one invocation can gate and regenerate.
//
// Examples:
//
//	asyload -scenario warm-repeat -clients 8 -duration 5s
//	asyload -target http://localhost:8080 -scenario mixed -clients 8 -duration 2s -json
//	asyload -scenario mixed -clients 4 -duration 2s -baseline BENCH_serve.json -json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/asynclinalg/asyrgs/internal/load"
	"github.com/asynclinalg/asyrgs/internal/serve"
)

func main() {
	var (
		targetURL   = flag.String("target", "", "daemon base URL; empty self-hosts an in-process server")
		scenario    = flag.String("scenario", "mixed", "traffic scenario, or 'list' for the catalogue")
		clients     = flag.Int("clients", 8, "concurrent closed-loop clients")
		duration    = flag.Duration("duration", 10*time.Second, "run length (in-flight requests complete)")
		requests    = flag.Int("requests", 0, "total request budget (0 = duration-bounded)")
		n           = flag.Int("n", 96, "base problem dimension the scenarios scale from")
		seed        = flag.Uint64("seed", 1, "request-stream seed")
		jsonOut     = flag.Bool("json", false, "write the report as a JSON baseline")
		outPath     = flag.String("out", "BENCH_serve.json", "baseline path used with -json")
		maxConc     = flag.Int("max-concurrent", 0, "self-hosted: max in-flight solve batches (0 = GOMAXPROCS)")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "self-hosted: coalescing window")
		cacheSize   = flag.Int("cache", 16, "self-hosted: built-matrix LRU capacity")
		baseline    = flag.String("baseline", "", "committed BENCH_serve.json to gate this run against (SLO check)")
		sloP99      = flag.Float64("slo-p99-factor", 25, "fail (exit 3) when p99 exceeds this multiple of the baseline's; 0 disables")
		sloErrBand  = flag.Float64("slo-error-band", 0.05, "fail (exit 3) when the error rate exceeds the baseline's by more than this; negative disables")
	)
	flag.Parse()

	if *scenario == "list" {
		for _, s := range load.Scenarios() {
			fmt.Printf("%-12s %s\n", s.Name, s.Description)
		}
		return
	}

	// Read the committed baseline before the run: with -json the run's
	// own report may overwrite the same path afterwards.
	var sloBaseline *load.Report
	if *baseline != "" {
		base, err := load.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
			os.Exit(2)
		}
		sloBaseline = &base
	}

	var target *load.Target
	if *targetURL == "" {
		fmt.Println("asyload: no -target, self-hosting an in-process server")
		target = load.NewInProcessTarget(serve.Config{
			MaxConcurrent: *maxConc,
			BatchWindow:   *batchWindow,
			CacheSize:     *cacheSize,
		})
	} else {
		target = load.NewHTTPTarget(*targetURL)
	}
	defer target.Close()

	rep, err := load.Run(context.Background(), target, load.Options{
		Scenario:    *scenario,
		Clients:     *clients,
		Duration:    *duration,
		MaxRequests: *requests,
		Seed:        *seed,
		N:           *n,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(rep.String())

	if *jsonOut {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "asyload: writing %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("baseline written to %s\n", *outPath)
	}

	if rep.Requests == 0 {
		fmt.Fprintln(os.Stderr, "asyload: no requests completed")
		os.Exit(1)
	}

	// SLO gate: compare this run against the committed baseline (read
	// before any -json overwrite), failing with a distinct exit code so
	// CI can tell a latency/error regression from an unusable run.
	if sloBaseline != nil {
		slo := load.SLO{P99Factor: *sloP99, ErrorBand: *sloErrBand}
		if err := slo.Check(rep, *sloBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "asyload: %v\n", err)
			os.Exit(3)
		}
		fmt.Printf("SLO gate passed vs %s (p99 ≤ %.1f× %.2fms, error rate ≤ %.3f+%.3f)\n",
			*baseline, *sloP99, sloBaseline.P99US/1e3, sloBaseline.ErrorRate, *sloErrBand)
	}
}
