// Package cmd_test builds the real CLI binaries and drives them end to
// end: matgen writes a MatrixMarket workload, asysolve solves it with
// several methods, and the outputs are checked for the promised artifacts.
package cmd_test

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/load"
)

// buildTool compiles ./cmd/<name> into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = ".." // repo root relative to the cmd package directory
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestMatgenAsysolvePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	matgen := buildTool(t, dir, "matgen")
	asysolve := buildTool(t, dir, "asysolve")

	mtx := filepath.Join(dir, "a.mtx")
	out := run(t, matgen, "-kind", "randomspd", "-n", "300", "-nnz", "6", "-o", mtx)
	if !strings.Contains(out, "300 x 300") {
		t.Fatalf("matgen output unexpected: %s", out)
	}
	if fi, err := os.Stat(mtx); err != nil || fi.Size() == 0 {
		t.Fatalf("matrix file missing: %v", err)
	}

	sol := filepath.Join(dir, "x.mtx")
	for _, method := range []string{"asyrgs", "asyrgs-partitioned", "rgs", "cg", "fcg", "jacobi", "gs", "asyncjacobi", "kaczmarz"} {
		args := []string{"-A", mtx, "-method", method, "-tol", "1e-6", "-o", sol}
		out := run(t, asysolve, args...)
		if !strings.Contains(out, "converged=true") {
			t.Fatalf("method %s did not report convergence:\n%s", method, out)
		}
		if !strings.Contains(out, "relative A-norm error") {
			t.Fatalf("method %s missing A-norm report:\n%s", method, out)
		}
	}
	if fi, err := os.Stat(sol); err != nil || fi.Size() == 0 {
		t.Fatalf("solution file missing: %v", err)
	}

	// The roster listing is registry-driven: every built-in shows up.
	list := run(t, asysolve, "-method", "list")
	for _, name := range []string{"asyrgs", "cg", "fcg", "kaczmarz", "lsqcd", "lsqcd-async"} {
		if !strings.Contains(list, name) {
			t.Fatalf("-method list missing %q:\n%s", name, list)
		}
	}
}

func TestMatgenKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	matgen := buildTool(t, dir, "matgen")
	for _, kind := range []string{"socialgram", "laplacian2d", "laplacian3d", "overdetermined"} {
		path := filepath.Join(dir, kind+".mtx")
		n := "60"
		if kind == "laplacian3d" {
			n = "6"
		}
		out := run(t, matgen, "-kind", kind, "-n", n, "-o", path)
		if !strings.Contains(out, path) {
			t.Fatalf("matgen %s output unexpected: %s", kind, out)
		}
	}
}

// TestAsyrgsdEndToEnd boots the real daemon binary on a loopback port
// and drives one generator-spec solve plus the health and stats probes.
func TestAsyrgsdEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	asyrgsd := buildTool(t, dir, "asyrgsd")

	// Reserve a free loopback port, release it, and hand it to the
	// daemon — avoids colliding with whatever else runs on the host.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cmd := exec.Command(asyrgsd, "-addr", addr)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	base := "http://" + addr
	var ready bool
	for i := 0; i < 100; i++ {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			ready = resp.StatusCode == http.StatusOK
			if ready {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !ready {
		t.Fatal("daemon did not become healthy")
	}

	body := `{"matrix":{"kind":"randomspd","n":150,"seed":3},"method":"asyrgs","tol":1e-6,"max_sweeps":500}`
	resp, err := http.Post(base+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, payload)
	}
	if !strings.Contains(string(payload), `"converged":true`) {
		t.Fatalf("solve did not converge: %s", payload)
	}

	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stats), `"solved":1`) {
		t.Fatalf("stats did not count the solve: %s", stats)
	}
}

// TestAsyloadAgainstDaemon boots the real daemon binary and drives it
// with the real load-generator binary: a short warm-repeat run must
// produce a parseable BENCH_serve.json with nonzero throughput and
// latency percentiles, and the daemon's /metrics endpoint must expose
// the matching Prometheus histograms.
func TestAsyloadAgainstDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	asyrgsd := buildTool(t, dir, "asyrgsd")
	asyload := buildTool(t, dir, "asyload")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cmd := exec.Command(asyrgsd, "-addr", addr)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	base := "http://" + addr
	var ready bool
	for i := 0; i < 100; i++ {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			ready = resp.StatusCode == http.StatusOK
			if ready {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !ready {
		t.Fatal("daemon did not become healthy")
	}

	report := filepath.Join(dir, "BENCH_serve.json")
	out := run(t, asyload, "-target", base, "-scenario", "warm-repeat",
		"-clients", "4", "-duration", "2s", "-n", "64", "-json", "-out", report)
	if !strings.Contains(out, "baseline written") {
		t.Fatalf("asyload did not write its baseline:\n%s", out)
	}

	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_serve.json does not parse: %v\n%s", err, raw)
	}
	if rep.Scenario != "warm-repeat" || rep.Requests == 0 || rep.ThroughputRPS <= 0 {
		t.Fatalf("report lacks traffic: %+v", rep)
	}
	if rep.P99US <= 0 || rep.P50US <= 0 || rep.P95US < rep.P50US {
		t.Fatalf("latency percentiles malformed: %+v", rep)
	}
	if rep.Server == nil || rep.Server.Requests != rep.Requests {
		t.Fatalf("server delta inconsistent with the run: %+v", rep)
	}
	if rep.PrepHitRate == 0 {
		t.Fatalf("warm-repeat traffic never hit the prep cache: %+v", rep)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(metrics)
	for _, want := range []string{
		"asyrgsd_requests_total",
		`asyrgsd_request_duration_seconds_bucket{endpoint="/solve"`,
		`asyrgsd_method_duration_seconds_count{method="asyrgs"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

func TestAsybenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	asybench := buildTool(t, dir, "asybench")
	out := run(t, asybench, "-exp", "rho", "-n", "200", "-threads", "1,2")
	if !strings.Contains(out, "Interference parameters") {
		t.Fatalf("asybench rho output unexpected:\n%s", out)
	}
}
