// Command asyrgsd is the asynchronous-solver serving daemon: an HTTP
// JSON API over the unified method registry's two-phase Prepare/Solve
// pipeline. It accepts MatrixMarket-or-generator-spec solve requests,
// keeps LRUs of built matrices and of prepared solver systems (keyed by
// matrix×method×prep-opts) so warm requests pay only iteration cost,
// coalesces concurrent same-system requests into one batched multi-RHS
// solve, and bounds concurrency with a worker-pool admission gate.
//
// Usage:
//
//	asyrgsd [-addr :8080] [-max-concurrent P] [-cache 16] [-prep-cache 64]
//	        [-batch-window 2ms] [-batch-target 0] [-queue-timeout 5s]
//	        [-solve-timeout 60s] [-max-dim 1048576] [-drain-timeout 10s]
//	        [-prep-store] [-prep-store-dir DIR]
//	        [-store-retries 4] [-store-backoff 1ms]
//	        [-store-breaker-fails 5] [-store-breaker-probe 5s]
//
// With -prep-store the daemon keeps a durable content-addressed store of
// prepared solver state behind the prep LRU: successful preparations and
// LRU-evicted entries spill to it on a background writer, and a prep-LRU
// miss restores from it instead of re-running Prepare. -prep-store-dir
// persists the blobs on disk, so a restarted daemon serves its first
// request for a known system at warm cost (see the cold-restart load
// scenario in cmd/asyload).
//
// Store resilience: transient backend failures are retried up to
// -store-retries times with decorrelated-jitter backoff starting at
// -store-backoff, and -store-breaker-fails consecutive failed
// operations trip a circuit breaker that sheds store traffic (serving
// degrades to fresh Prepares) until a probe succeeds after
// -store-breaker-probe. Breaker state is visible on /stats, /metrics,
// and /readyz, which reports 503 degraded while the breaker is open —
// distinct from /healthz, which stays 200 as long as the process
// serves. Zero values disable the respective mechanism.
//
// Endpoints: POST /solve, GET /methods, GET /healthz, GET /readyz
// (200 ready / 503 degraded while the store breaker is open), GET /stats (JSON
// counters plus per-endpoint/per-method latency summaries), GET /metrics
// (the same counters and raw latency histograms in Prometheus text
// format, ready to scrape). cmd/asyload drives a daemon with sustained
// closed-loop traffic scenarios and reports the client-side view.
//
// Example:
//
//	curl -s localhost:8080/solve -d '{
//	  "matrix": {"kind": "laplacian2d", "n": 64},
//	  "method": "asyrgs", "tol": 1e-6, "max_sweeps": 2000
//	}'
//
// The sharded distributed-memory backend serves the same way — its
// deployment shape (workers, queue_cap) keys the prepared-system cache,
// so warm solves of one shape skip partitioning and setup entirely:
//
//	curl -s localhost:8080/solve -d '{
//	  "matrix": {"kind": "randomspd", "n": 4096, "seed": 1},
//	  "method": "asyrgs-distmem", "workers": 8, "queue_cap": 4,
//	  "tol": 1e-6, "max_sweeps": 2000
//	}'
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight solves for up to -drain-timeout before exiting; a second
// signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/serve"
	"github.com/asynclinalg/asyrgs/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxConc      = flag.Int("max-concurrent", 0, "max in-flight solve batches (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 16, "built-matrix LRU capacity")
		prepCache    = flag.Int("prep-cache", 0, "prepared-system LRU capacity (0 = 4x -cache)")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "max coalescing wait for concurrent same-system requests; the adaptive deadline shortens it (negative disables)")
		batchTarget  = flag.Int("batch-target", 0, "flush a coalesced batch at this width (0 = adapt to observed widths)")
		queueTimeout = flag.Duration("queue-timeout", 5*time.Second, "max wait for an admission slot")
		solveTimeout = flag.Duration("solve-timeout", 60*time.Second, "per-batch solve budget")
		maxDim       = flag.Int("max-dim", 1<<20, "largest accepted matrix dimension")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight solves on shutdown")
		prepStore    = flag.Bool("prep-store", false, "enable the durable prepared-system store (restores skip Prepare across restarts)")
		prepStoreDir = flag.String("prep-store-dir", "", "durable prep-store directory (implies -prep-store; empty with -prep-store uses an in-memory backend)")
		storeRetries = flag.Int("store-retries", 4, "max re-attempts after a transient prep-store failure (0 disables retries)")
		storeBackoff = flag.Duration("store-backoff", time.Millisecond, "first retry backoff; grows with decorrelated jitter, capped at 100×")
		breakerFails = flag.Int("store-breaker-fails", 5, "consecutive prep-store failures that trip the circuit breaker (0 disables it)")
		breakerProbe = flag.Duration("store-breaker-probe", 5*time.Second, "how long an open breaker waits before admitting one probe operation")
	)
	flag.Parse()

	// The durable prep store spills prepared solver state to a blob
	// backend and restores it on prep-cache misses, so a restarted daemon
	// skips the Prepare pass for systems it has served before. A directory
	// backend survives restarts; the in-memory backend (no -prep-store-dir)
	// only demotes LRU-evicted state within one process lifetime.
	var ps *store.PrepStore
	if *prepStore || *prepStoreDir != "" {
		var backend store.Backend
		if *prepStoreDir != "" {
			dir, err := store.NewDir(*prepStoreDir)
			if err != nil {
				log.Fatalf("asyrgsd: opening prep store: %v", err)
			}
			backend = dir
		} else {
			backend = store.NewMemory()
		}
		opts := store.Options{
			Retry: store.RetryConfig{Max: *storeRetries, Base: *storeBackoff, Cap: 100 * *storeBackoff},
		}
		if *breakerFails > 0 {
			opts.Breaker = store.BreakerConfig{
				Failures: *breakerFails,
				Probe:    *breakerProbe,
				Clock:    serve.MonotonicClock(),
			}
		}
		ps = store.NewPrepStoreWith(backend, opts)
		defer ps.Close()
	}

	srv := serve.New(serve.Config{
		MaxConcurrent: *maxConc,
		CacheSize:     *cacheSize,
		PrepCacheSize: *prepCache,
		BatchWindow:   *batchWindow,
		BatchTarget:   *batchTarget,
		QueueTimeout:  *queueTimeout,
		SolveTimeout:  *solveTimeout,
		MaxDim:        *maxDim,
		PrepStore:     ps,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops accepting new
	// connections and drains in-flight solves for up to -drain-timeout; a
	// second signal (or an expired drain budget) exits immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		stop() // restore default handling: a second signal kills the process
		log.Printf("asyrgsd: shutdown requested, draining in-flight solves (up to %v)", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("asyrgsd: drain incomplete: %v; closing", err)
			_ = httpSrv.Close()
			return
		}
		log.Printf("asyrgsd: drained cleanly")
	}()

	fmt.Printf("asyrgsd listening on %s (methods: %s)\n", *addr, strings.Join(method.Names(), ", "))
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining before exiting.
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("asyrgsd: %v", err)
	}
	<-drained
}
