// Command asyrgsd is the asynchronous-solver serving daemon: an HTTP
// JSON API over the unified method registry. It accepts
// MatrixMarket-or-generator-spec solve requests, keeps an LRU of prepared
// systems keyed by matrix hash so repeated right-hand sides skip setup,
// and bounds concurrency with a worker-pool admission gate.
//
// Usage:
//
//	asyrgsd [-addr :8080] [-max-concurrent P] [-cache 16]
//	        [-queue-timeout 5s] [-solve-timeout 60s] [-max-dim 1048576]
//
// Endpoints: POST /solve, GET /methods, GET /healthz, GET /stats.
//
// Example:
//
//	curl -s localhost:8080/solve -d '{
//	  "matrix": {"kind": "laplacian2d", "n": 64},
//	  "method": "asyrgs", "tol": 1e-6, "max_sweeps": 2000
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxConc      = flag.Int("max-concurrent", 0, "max in-flight solves (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 16, "prepared-system LRU capacity")
		queueTimeout = flag.Duration("queue-timeout", 5*time.Second, "max wait for an admission slot")
		solveTimeout = flag.Duration("solve-timeout", 60*time.Second, "per-request solve budget")
		maxDim       = flag.Int("max-dim", 1<<20, "largest accepted matrix dimension")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxConcurrent: *maxConc,
		CacheSize:     *cacheSize,
		QueueTimeout:  *queueTimeout,
		SolveTimeout:  *solveTimeout,
		MaxDim:        *maxDim,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining in-flight solves before exiting.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("asyrgsd listening on %s (methods: %s)\n", *addr, strings.Join(method.Names(), ", "))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("asyrgsd: %v", err)
	}
	stop()
	<-drained
}
