// Command asybench regenerates every table and figure of the paper's
// evaluation section on the synthetic workload, plus the analytical
// validation experiments. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured comparisons.
//
// Usage:
//
//	asybench [-exp all|fig1|fig2|table1|fig3|theory|beta|sync|lsq|rho|prepare|...]
//	         [-n terms] [-rhs cols] [-sweeps k] [-repeats r] [-seed s]
//	         [-tol eps] [-threads list] [-json baseline.json]
//
// The prepare experiment measures the two-phase pipeline's amortization
// (cold Prepare+Solve vs warm Solve over a cached PreparedSystem); the
// distmem experiment sweeps the sharded distributed-memory backend
// (asyrgs-distmem, dispatched through the registry) over worker counts
// and queue capacities; the serve experiment drives every closed-loop
// load scenario of internal/load against an in-process server and
// reports per-scenario latency percentiles. With -json any of them also
// writes its rows as a machine-readable baseline — the
// BENCH_prepare.json and BENCH_distmem.json artifacts CI regenerates on
// every PR (the richer single-scenario BENCH_serve.json comes from
// cmd/asyload).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/asynclinalg/asyrgs/internal/bench"
)

// writeBaseline writes one experiment's JSON baseline when -json is set.
func writeBaseline(path string, write func(*os.File) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asybench: %v\n", err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "asybench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("baseline written to %s\n", path)
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all|fig1|fig2|table1|fig3|theory|beta|sync|lsq|rho|delays|sampling|faults|distmem|classic|methods|prepare|hotpath|serve")
		jsonOut = flag.String("json", "", "write the prepare/distmem experiment's rows as a JSON baseline to this file")
		terms   = flag.Int("n", 1500, "Gram matrix dimension (paper: 120147)")
		rhs     = flag.Int("rhs", 16, "right-hand sides solved together (paper: 51)")
		sweeps  = flag.Int("sweeps", 10, "sweeps for the fixed-work experiments (paper: 10)")
		repeats = flag.Int("repeats", 5, "runs per median (paper: 5)")
		seed    = flag.Uint64("seed", 42, "workload and direction-stream seed")
		tol     = flag.Float64("tol", 1e-8, "Flexible-CG convergence tolerance (paper: 1e-8)")
		threads = flag.String("threads", "1,2,4,8,16,32,64", "comma-separated thread counts")
		prec    = flag.String("precision", "f64", "matrix value storage for the methods experiment: f64 or f32 (the hotpath grid always sweeps both)")
	)
	flag.Parse()

	cfg := bench.Default()
	cfg.Terms = *terms
	cfg.RHSCols = *rhs
	cfg.Sweeps = *sweeps
	cfg.Repeats = *repeats
	cfg.Seed = *seed
	cfg.Precision = *prec
	cfg.Out = os.Stdout
	cfg.Threads = nil
	for _, f := range strings.Split(*threads, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "asybench: bad thread count %q\n", f)
			os.Exit(2)
		}
		cfg.Threads = append(cfg.Threads, v)
	}

	r := bench.NewRunner(cfg)
	run := func(name string) {
		// A baseline is written only for an explicitly selected
		// experiment: under -exp all the prepare and distmem runs would
		// otherwise silently overwrite each other's rows at one path.
		jsonPath := ""
		if *exp == name {
			jsonPath = *jsonOut
		}
		switch name {
		case "fig1":
			r.Fig1(200)
		case "fig2":
			r.Fig2Left()
			r.Fig2Center()
			r.Fig2Right()
		case "table1":
			r.Table1(*tol, 0)
		case "fig3":
			r.Fig3(*tol)
		case "theory":
			r.TheoryValidation(20, nil, 0, 0)
		case "beta":
			r.BetaSweep(16, 16, 30, nil)
		case "sync":
			r.SyncPeriodSweep(8, *sweeps, nil)
		case "lsq":
			r.LSQValidation(0, 0, 0, nil)
		case "rho":
			r.RhoReport([]int{50, 200})
		case "delays":
			r.DelayDistribution(*sweeps)
		case "sampling":
			r.SamplingAblation(0, *sweeps)
		case "faults":
			r.FaultInjection(8, *sweeps)
		case "distmem":
			rows := r.DistMem(nil, *sweeps, nil)
			writeBaseline(jsonPath, func(f *os.File) error { return bench.WriteDistMemJSON(f, rows) })
		case "classic":
			r.ClassicVsRandomized(8, *sweeps)
		case "methods":
			r.MethodTable(1e-6, 500, 0)
		case "prepare":
			rows := r.PreparedVsCold(*sweeps)
			writeBaseline(jsonPath, func(f *os.File) error { return bench.WritePrepareJSON(f, rows) })
		case "hotpath":
			rows := r.Hotpath(*sweeps, nil, nil)
			writeBaseline(jsonPath, func(f *os.File) error { return bench.WriteHotpathJSON(f, rows) })
		case "serve":
			rows := r.ServeLoad(4, 0)
			writeBaseline(jsonPath, func(f *os.File) error { return bench.WriteServeLoadJSON(f, rows) })
		default:
			fmt.Fprintf(os.Stderr, "asybench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *exp == "all" {
		for _, name := range []string{"rho", "fig1", "fig2", "table1", "fig3", "theory", "beta", "sync", "lsq", "delays", "sampling", "faults", "distmem", "classic", "methods", "prepare", "hotpath", "serve"} {
			run(name)
		}
		return
	}
	run(*exp)
}
