module github.com/asynclinalg/asyrgs

go 1.22
