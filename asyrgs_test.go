package asyrgs_test

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"

	asyrgs "github.com/asynclinalg/asyrgs"
)

// TestFacadeEndToEnd exercises the full public API surface the way a
// downstream user would: generate, scale, estimate, solve with every
// exported method, and cross-check.
func TestFacadeEndToEnd(t *testing.T) {
	a := asyrgs.RandomSPD(200, 6, 1.5, 1)
	b, xstar := asyrgs.RHSForSolution(a, 2)

	// AsyRGS.
	s, err := asyrgs.NewSolver(a, asyrgs.Options{Workers: runtime.GOMAXPROCS(0), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 200)
	res, err := s.SolveAsync(x, b, 1e-8, 500, 5)
	if err != nil || !res.Converged {
		t.Fatalf("AsyRGS failed: %+v %v", res, err)
	}

	// CG.
	xcg := make([]float64, 200)
	cgRes, err := asyrgs.CG(a, xcg, b, asyrgs.CGOptions{Tol: 1e-10, MaxIter: 2000})
	if err != nil || !cgRes.Converged {
		t.Fatalf("CG failed: %+v %v", cgRes, err)
	}

	// FCG with AsyRGS preconditioner.
	sp, _ := asyrgs.NewSolver(a, asyrgs.Options{Workers: 2, Seed: 4})
	pre := asyrgs.PrecondFunc(func(z, r []float64) { sp.Precondition(z, r, 2) })
	xf := make([]float64, 200)
	fres, err := asyrgs.FlexibleCG(a, xf, b, pre, asyrgs.FCGOptions{Tol: 1e-8, MaxIter: 2000})
	if err != nil || !fres.Converged {
		t.Fatalf("FCG failed: %+v %v", fres, err)
	}

	// All three solutions agree with x*.
	for name, sol := range map[string][]float64{"asyrgs": x, "cg": xcg, "fcg": xf} {
		var worst float64
		for i := range sol {
			if d := sol[i] - xstar[i]; d > worst || -d > worst {
				if d < 0 {
					d = -d
				}
				worst = d
			}
		}
		if worst > 1e-4 {
			t.Fatalf("%s max error %v", name, worst)
		}
	}
}

func TestFacadeScalingAndTheory(t *testing.T) {
	g, _ := asyrgs.SocialGram(asyrgs.DefaultSocialGram(150, 5))
	a, sc, err := asyrgs.UnitDiagonalScale(g)
	if err != nil {
		t.Fatal(err)
	}
	if sc == nil || len(sc.D) != 150 {
		t.Fatal("scaling missing")
	}
	est := asyrgs.EstimateSpectrum(a, 60, 6)
	if est.LambdaMin <= 0 || est.Cond < 1 {
		t.Fatalf("bad spectral estimate %+v", est)
	}
	rho := asyrgs.Rho(a)
	if rho <= 0 || asyrgs.Rho2(a) <= 0 {
		t.Fatal("interference parameters must be positive")
	}
	beta := asyrgs.OptimalBeta(rho, 8)
	if beta <= 0 || beta > 1 {
		t.Fatalf("β̃ = %v", beta)
	}
	p := asyrgs.NewBoundParams(a, est.LambdaMin, est.LambdaMax, 8, beta)
	if _, ok := p.ConsistentEpochFactor(); !ok {
		t.Log("bound vacuous at this size (allowed); parameters:", p)
	}
}

func TestFacadeSimulator(t *testing.T) {
	lap := asyrgs.Laplacian2D(8, 8)
	a, _, err := asyrgs.UnitDiagonalScale(lap)
	if err != nil {
		t.Fatal(err)
	}
	b, xstar := asyrgs.RHSForSolution(a, 7)
	x0 := make([]float64, a.Rows)
	tr := asyrgs.SimulateConsistent(a, b, x0, xstar, 20*a.Rows, asyrgs.FixedDelay{T: 3}, asyrgs.SimConfig{Seed: 8, Beta: 0.8})
	if tr.Errors[len(tr.Errors)-1] >= tr.Errors[0] {
		t.Fatal("simulated run made no progress")
	}
}

func TestFacadeLeastSquaresAndKaczmarz(t *testing.T) {
	a := asyrgs.RandomOverdetermined(120, 30, 4, 9)
	b := asyrgs.RandomRHS(120, 10)
	ls, err := asyrgs.NewLSQ(a, asyrgs.LSQOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 30)
	if _, res, err := ls.Solve(x, b, 1e-8, 2_000_000, 3000); err != nil {
		t.Fatalf("lsq failed: res=%v err=%v", res, err)
	}

	sq := asyrgs.RandomSPD(60, 4, 1.5, 12)
	bq, _ := asyrgs.RHSForSolution(sq, 13)
	kz, err := asyrgs.NewKaczmarz(sq, asyrgs.KaczmarzOptions{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	xk := make([]float64, 60)
	if _, res, err := kz.Solve(xk, bq, 1e-8, 1_000_000, 5000); err != nil {
		t.Fatalf("kaczmarz failed: res=%v err=%v", res, err)
	}
}

func TestFacadeMatrixMarketRoundTrip(t *testing.T) {
	a := asyrgs.RandomSPD(20, 4, 1.5, 15)
	var buf bytes.Buffer
	if err := asyrgs.WriteMatrixMarketSymmetric(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := asyrgs.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != a.NNZ() || back.Rows != 20 {
		t.Fatalf("round trip changed matrix: nnz %d vs %d", back.NNZ(), a.NNZ())
	}
}

func TestFacadeBuilders(t *testing.T) {
	bld := asyrgs.NewBuilder(2, 2)
	bld.AddSym(0, 1, -1)
	bld.Add(0, 0, 2)
	bld.Add(1, 1, 2)
	m := bld.ToCSR()
	if m.NNZ() != 4 {
		t.Fatalf("builder produced %d entries", m.NNZ())
	}
	id := asyrgs.Identity(3)
	if id.At(2, 2) != 1 {
		t.Fatal("identity broken")
	}
	d := asyrgs.NewDense(2, 3)
	if d.Rows != 2 || d.Cols != 3 {
		t.Fatal("dense block broken")
	}
	if asyrgs.DescribeMatrix("m", m) == "" {
		t.Fatal("describe broken")
	}
}

func TestFacadeStationary(t *testing.T) {
	a := asyrgs.RandomSPD(40, 4, 1.6, 16)
	b := asyrgs.RandomRHS(40, 17)
	xj := make([]float64, 40)
	if res := asyrgs.Jacobi(a, xj, b, 300, 1e-8, 2); !res.Converged {
		t.Fatalf("Jacobi: %+v", res)
	}
	xg := make([]float64, 40)
	if res := asyrgs.GaussSeidel(a, xg, b, 300, 1e-8); !res.Converged {
		t.Fatalf("GaussSeidel: %+v", res)
	}
	pre := asyrgs.NewDiagonalPrecond(a.Diag())
	xp := make([]float64, 40)
	if res, err := asyrgs.CG(a, xp, b, asyrgs.CGOptions{Tol: 1e-10, MaxIter: 400, Precond: pre}); err != nil || !res.Converged {
		t.Fatalf("PCG: %+v %v", res, err)
	}
}

func TestFacadeGuaranteeAndDelayHistogram(t *testing.T) {
	lap := asyrgs.Laplacian2D(12, 12)
	a, _, err := asyrgs.UnitDiagonalScale(lap)
	if err != nil {
		t.Fatal(err)
	}
	b, xstar := asyrgs.RHSForSolution(a, 20)
	s, err := asyrgs.NewSolver(a, asyrgs.Options{Workers: 4, Seed: 21, MeasureDelay: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	e0 := a.ANormErr(x, xstar)
	g, err := s.SolveWithGuarantee(x, b, 0.1, 0.1, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Epochs < 1 {
		t.Fatalf("bad guarantee %+v", g)
	}
	if e := a.ANormErr(x, xstar); e > 0.1*e0 {
		t.Fatalf("certificate not met: %v > %v", e, 0.1*e0)
	}
	h := asyrgs.DelayHistogram{Counts: s.DelayHistogram()}
	if h.Total() == 0 {
		t.Fatal("delay histogram empty despite MeasureDelay")
	}
}

func TestFacadeAsyncJacobiAndCondEst(t *testing.T) {
	a := asyrgs.RandomSPD(100, 4, 1.6, 22)
	b := asyrgs.RandomRHS(100, 23)
	x := make([]float64, 100)
	// Chaotic relaxation's rate depends on the scheduler's interleaving,
	// which degrades under machine load; assert solid progress rather
	// than a tight constant.
	res := asyrgs.AsyncJacobi(a, x, b, 300, 4)
	if res.Residual > 1e-2 {
		t.Fatalf("async Jacobi residual %v", res.Residual)
	}
	est := asyrgs.EstimateCondition(a, 24)
	if est.Cond < 1 || est.LambdaMin <= 0 {
		t.Fatalf("bad condition estimate %+v", est)
	}
}

func TestFacadeGeometricDelaySimulation(t *testing.T) {
	lap := asyrgs.Laplacian2D(8, 8)
	a, _, err := asyrgs.UnitDiagonalScale(lap)
	if err != nil {
		t.Fatal(err)
	}
	b, xstar := asyrgs.RHSForSolution(a, 25)
	x0 := make([]float64, a.Rows)
	tr := asyrgs.SimulateInconsistent(a, b, x0, xstar, 30*a.Rows,
		asyrgs.GeometricDelay{T: 8, P0: 0.5, Seed: 26},
		asyrgs.SimConfig{Seed: 27, Beta: 0.7})
	if tr.Errors[len(tr.Errors)-1] >= tr.Errors[0] {
		t.Fatal("geometric-delay simulation made no progress")
	}
}

func TestFacadeVariantOptions(t *testing.T) {
	a := asyrgs.RandomSPD(120, 4, 1.5, 28)
	b := asyrgs.RandomRHS(120, 29)
	for _, opts := range []asyrgs.Options{
		{Workers: 4, Seed: 30, Partitioned: true},
		{Workers: 4, Seed: 31, DiagonalWeighted: true},
		{Workers: 4, Seed: 32, SyncPeriod: 120},
	} {
		s, err := asyrgs.NewSolver(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 120)
		if res, err := s.SolveAsync(x, b, 1e-6, 1000, 10); err != nil {
			t.Fatalf("options %+v did not converge: %+v", opts, res)
		}
	}
}

func TestFacadeDistributedSolve(t *testing.T) {
	a := asyrgs.RandomSPD(150, 4, 1.5, 40)
	b := asyrgs.RandomRHS(150, 41)
	x := make([]float64, 150)
	res, rounds, err := asyrgs.DistSolveToTol(a, x, b, 1e-7, 10, 50,
		asyrgs.DistConfig{Workers: 4, QueueCap: 8, Seed: 42})
	if err != nil {
		t.Fatalf("after %d rounds: %v (%+v)", rounds, err, res)
	}
	if res.MessagesSent == 0 {
		t.Fatal("distributed run must communicate")
	}
}

// TestFacadeMethodRegistry exercises the unified method registry through
// the root re-exports: lookup, kind filtering, a cancellable solve, and
// custom registration.
func TestFacadeMethodRegistry(t *testing.T) {
	names := asyrgs.MethodNames()
	if len(names) < 10 {
		t.Fatalf("registry unexpectedly small: %v", names)
	}
	if _, err := asyrgs.GetMethod("no-such"); !errors.Is(err, asyrgs.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}

	a := asyrgs.RandomSPD(150, 5, 1.5, 31)
	b, xstar := asyrgs.RHSForSolution(a, 32)
	for _, name := range []string{"asyrgs", "cg", "fcg"} {
		m, err := asyrgs.GetMethod(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind() != asyrgs.MethodSPD {
			t.Fatalf("%s misclassified as %v", name, m.Kind())
		}
		x := make([]float64, 150)
		res, err := m.Solve(context.Background(), a, b, x, asyrgs.MethodOpts{
			Tol: 1e-8, MaxSweeps: 2000, Workers: 2, XStar: xstar,
		})
		if err != nil || !res.Converged {
			t.Fatalf("%s failed: %+v %v", name, res, err)
		}
		if res.ANormErr > 1e-4 {
			t.Fatalf("%s: A-norm error %v too large", name, res.ANormErr)
		}
	}

	// A cancelled context stops a registry method with a wrapped error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, _ := asyrgs.GetMethod("rgs")
	x := make([]float64, 150)
	if _, err := m.Solve(ctx, a, b, x, asyrgs.MethodOpts{Tol: 1e-30, MaxSweeps: 1 << 20}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}

	if len(asyrgs.MethodsByKind(asyrgs.MethodLeastSquares)) < 2 {
		t.Fatal("least-squares methods missing from the registry")
	}
}
