// Package asyrgs is an asynchronous randomized linear-solver library: a
// production-oriented Go implementation of
//
//	Avron, Druinsky, Gupta — "Revisiting Asynchronous Linear Solvers:
//	Provable Convergence Rate Through Randomization", IPDPS 2014
//	(extended version arXiv:1304.6475).
//
// The headline algorithm is AsyRGS: shared-memory asynchronous Randomized
// Gauss–Seidel for sparse symmetric positive definite systems, with a
// provably linear convergence rate under bounded-delay asynchrony. The
// library also provides the synchronous Randomized Gauss–Seidel iteration,
// conjugate gradients and Notay's Flexible-CG (with AsyRGS as a flexible
// preconditioner — the paper's recommended high-accuracy configuration),
// randomized Kaczmarz, the §8 asynchronous least-squares coordinate
// descent, spectral estimators, the paper's convergence-bound formulas, a
// bounded-delay execution simulator, and workload generators including a
// synthetic analogue of the paper's social-media Gram matrix.
//
// # Quick start
//
//	a := asyrgs.RandomSPD(10_000, 8, 1.5, 1)   // or read MatrixMarket
//	b := asyrgs.RandomRHS(10_000, 2)
//	s, err := asyrgs.NewSolver(a, asyrgs.Options{Workers: runtime.GOMAXPROCS(0)})
//	if err != nil { ... }
//	x := make([]float64, 10_000)
//	res, err := s.SolveAsync(x, b, 1e-6, 500, 5)
//
// For high accuracy, wrap AsyRGS in Flexible-CG:
//
//	pre := asyrgs.PrecondFunc(func(z, r []float64) { s.Precondition(z, r, 2) })
//	res, err := asyrgs.FlexibleCG(a, x, b, pre, asyrgs.FCGOptions{Tol: 1e-8})
//
// # Unified method registry and serving layer
//
// Every solver family is also registered in a unified method registry
// (see SolveMethod, GetMethod, MethodNames): one context-cancellable
// Solve entry point with normalized options and results, which
// cmd/asysolve and the bench ablation tables dispatch through. The
// cmd/asyrgsd daemon serves the registry over HTTP JSON — generator-spec
// or MatrixMarket solve requests, an LRU of prepared systems keyed by
// matrix hash, a worker-pool admission gate, and /healthz and /stats
// endpoints. The roster includes "asyrgs-distmem", the sharded
// distributed-memory backend: each rank sole-updates its own coordinate
// block and communicates only through bounded message queues — the
// paper's named future-work deployment, served like any other method.
//
// The experiment harness that regenerates every table and figure of the
// paper lives in cmd/asybench; DESIGN.md maps each experiment to the
// modules that implement it.
package asyrgs

import (
	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/distmem"
	"github.com/asynclinalg/asyrgs/internal/kaczmarz"
	"github.com/asynclinalg/asyrgs/internal/krylov"
	"github.com/asynclinalg/asyrgs/internal/lsq"
	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/sim"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/spectral"
	"github.com/asynclinalg/asyrgs/internal/stats"
	"github.com/asynclinalg/asyrgs/internal/theory"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// Sparse matrix types and I/O.
type (
	// Matrix is a compressed-sparse-row matrix, the central operand type.
	Matrix = sparse.CSR
	// MatrixCSC is the compressed-sparse-column view used by the
	// least-squares solver.
	MatrixCSC = sparse.CSC
	// Builder accumulates coordinate entries and compresses them to a
	// Matrix with ToCSR.
	Builder = sparse.COO
	// Scaling maps between a general SPD system and its unit-diagonal
	// rescaling (§3 of the paper).
	Scaling = sparse.Scaling
	// Partition selects a parallel SpMV row-partitioning strategy.
	Partition = sparse.Partition
	// Dense is a row-major dense block for multi-right-hand-side solves.
	Dense = vec.Dense
)

// Partition strategies for parallel matrix–vector products.
const (
	PartitionContiguous = sparse.PartitionContiguous
	PartitionRoundRobin = sparse.PartitionRoundRobin
)

// Matrix construction and I/O.
var (
	// NewBuilder returns an empty coordinate builder for a rows×cols matrix.
	NewBuilder = sparse.NewCOO
	// Identity returns the n×n identity matrix.
	Identity = sparse.Identity
	// ReadMatrixMarket parses a MatrixMarket coordinate stream.
	ReadMatrixMarket = sparse.ReadMM
	// WriteMatrixMarket writes coordinate real general format.
	WriteMatrixMarket = sparse.WriteMM
	// WriteMatrixMarketSymmetric writes the lower triangle of a symmetric
	// matrix.
	WriteMatrixMarketSymmetric = sparse.WriteMMSymmetric
	// UnitDiagonalScale rescales an SPD matrix to unit diagonal,
	// returning the Scaling that maps solutions back.
	UnitDiagonalScale = sparse.UnitDiagonalScale
	// NewDense allocates a zero rows×cols row-major block.
	NewDense = vec.NewDense
)

// Core solver (the paper's contribution).
type (
	// Options configure a Solver; see the field docs in internal/core.
	Options = core.Options
	// Solver runs synchronous Randomized Gauss–Seidel and asynchronous
	// AsyRGS iterations over a fixed matrix.
	Solver = core.Solver
	// Result reports a Solve/SolveAsync outcome.
	Result = core.Result
)

// Solver construction and sentinel errors.
var (
	// NewSolver validates the matrix and builds a Solver.
	NewSolver = core.New
	// ErrNotConverged is returned when an iteration budget is exhausted.
	ErrNotConverged = core.ErrNotConverged
	// ErrNotSquare rejects rectangular matrices.
	ErrNotSquare = core.ErrNotSquare
	// ErrZeroDiagonal rejects matrices with a zero diagonal entry.
	ErrZeroDiagonal = core.ErrZeroDiagonal
)

// Krylov methods and preconditioning.
type (
	// Preconditioner approximates z ≈ M⁻¹r for a fixed operator M.
	Preconditioner = krylov.Preconditioner
	// PrecondFunc adapts a function to the Preconditioner interface.
	PrecondFunc = krylov.PrecondFunc
	// CGOptions configure conjugate gradients.
	CGOptions = krylov.CGOptions
	// CGResult reports a CG run.
	CGResult = krylov.CGResult
	// FCGOptions configure Notay's Flexible-CG.
	FCGOptions = krylov.FCGOptions
	// FCGResult reports a Flexible-CG run.
	FCGResult = krylov.FCGResult
	// StationaryResult reports a Jacobi or Gauss–Seidel run.
	StationaryResult = krylov.StationaryResult
)

// Krylov and stationary solvers.
var (
	// CG solves an SPD system by (preconditioned) conjugate gradients.
	CG = krylov.CG
	// CGDense solves A·X = B for a multi-RHS block.
	CGDense = krylov.CGDense
	// FlexibleCG tolerates preconditioners that change per application,
	// such as AsyRGS.
	FlexibleCG = krylov.FlexibleCG
	// Jacobi runs the classical Jacobi iteration.
	Jacobi = krylov.Jacobi
	// GaussSeidel runs deterministic forward Gauss–Seidel sweeps.
	GaussSeidel = krylov.GaussSeidel
	// AsyncJacobi runs classical chaotic-relaxation Jacobi — the
	// deterministic asynchronous baseline the paper revisits.
	AsyncJacobi = krylov.AsyncJacobi
	// NewDiagonalPrecond builds a Jacobi preconditioner from a diagonal.
	NewDiagonalPrecond = krylov.NewDiagonal
)

// Least squares (§8) and Kaczmarz.
type (
	// LSQOptions configure the least-squares coordinate-descent solver.
	LSQOptions = lsq.Options
	// LSQSolver minimises ‖Ax−b‖₂ by randomized coordinate descent,
	// sequentially (iteration 20) or asynchronously (iteration 21).
	LSQSolver = lsq.Solver
	// KaczmarzOptions configure randomized Kaczmarz.
	KaczmarzOptions = kaczmarz.Options
	// KaczmarzSolver projects onto random row hyperplanes.
	KaczmarzSolver = kaczmarz.Solver
)

// Least-squares and Kaczmarz constructors.
var (
	// NewLSQ builds a least-squares solver for an overdetermined system.
	NewLSQ = lsq.New
	// NewKaczmarz builds a randomized Kaczmarz solver.
	NewKaczmarz = kaczmarz.New
)

// Convergence theory (Theorems 2–5).
type (
	// BoundParams bundles matrix and asynchrony parameters for evaluating
	// the paper's convergence bounds.
	BoundParams = theory.Params
	// SpectralEstimate holds λmin/λmax/κ estimates.
	SpectralEstimate = spectral.Estimate
)

// Theory and spectral estimation.
var (
	// Rho computes the consistent-read interference parameter ρ.
	Rho = theory.Rho
	// Rho2 computes the inconsistent-read interference parameter ρ₂.
	Rho2 = theory.Rho2
	// OptimalBeta returns the bound-optimal step size β̃ = 1/(1+2ρτ).
	OptimalBeta = theory.OptimalBeta
	// NewBoundParams assembles the bound inputs for one configuration.
	NewBoundParams = theory.NewParams
	// EstimateSpectrum estimates λmin, λmax and κ of an SPD matrix.
	EstimateSpectrum = spectral.EstimateSPD
	// EstimateCondition estimates κ with power + CG-based inverse power
	// iteration (the style of the paper's condition-estimator reference).
	EstimateCondition = spectral.CondEst
)

// Unified solver-method registry (internal/method): every solver family
// behind one uniform, context-cancellable entry point.
type (
	// SolveMethod is one registered solver family; Solve(ctx, A, b, x,
	// opts) iterates on x in place and honours context cancellation.
	SolveMethod = method.Method
	// MethodOpts are the normalized solve options shared by every method.
	MethodOpts = method.Opts
	// MethodResult is the normalized outcome (residual, A-norm error,
	// sweeps, wall time, observed asynchrony).
	MethodResult = method.Result
	// MethodKind classifies a method's accepted systems (SPD or
	// least squares).
	MethodKind = method.Kind
	// PreparedSystem is per-matrix solver state captured once by
	// PrepareMethod and reused across Solve/SolveBatch calls — the warm
	// half of the two-phase Prepare/Solve pipeline.
	PreparedSystem = method.PreparedSystem
	// MethodPreparer is implemented by methods whose per-matrix setup is
	// separable from iteration (all built-ins are).
	MethodPreparer = method.Preparer
)

// Registry access and method-kind constants.
var (
	// GetMethod looks a method up by registry name (e.g. "asyrgs", "cg",
	// "fcg", "kaczmarz", "lsqcd").
	GetMethod = method.Get
	// MethodNames lists every registered method name, sorted.
	MethodNames = method.Names
	// MethodsByKind lists the registered methods of one kind.
	MethodsByKind = method.ByKind
	// RegisterMethod adds a custom method to the registry; drivers, the
	// asyrgsd daemon, and the conformance suite pick it up by name.
	RegisterMethod = method.Register
	// ErrUnknownMethod is returned by GetMethod for unregistered names.
	ErrUnknownMethod = method.ErrUnknownMethod
	// PrepareMethod captures a method's per-matrix state (Gram/CSC views,
	// row norms, diagonal scaling, sampling CDFs) once; the returned
	// PreparedSystem then solves any number of right-hand sides paying
	// only iteration cost.
	PrepareMethod = method.Prepare
)

// Method kinds.
const (
	MethodSPD          = method.SPD
	MethodLeastSquares = method.LeastSquares
)

// Guarantee is the a-priori certificate returned by
// Solver.SolveWithGuarantee (the Theorem 2 discussion's
// occasional-synchronization scheme).
type Guarantee = core.Guarantee

// DelayHistogram is the power-of-two observed-delay histogram type; use
// it with Solver.DelayHistogram to analyse real executions.
type DelayHistogram = stats.Pow2Histogram

// Bounded-delay simulation (the enforced models of iterations (8)/(9)).
type (
	// DelayModel supplies read staleness for the simulator.
	DelayModel = sim.DelayModel
	// SimConfig configures a simulated run.
	SimConfig = sim.Config
	// SimTrace is the sampled error trajectory of a simulated run.
	SimTrace = sim.Trace
	// FixedDelay is the adversarial worst case allowed by Assumption A-3.
	FixedDelay = sim.FixedDelay
	// UniformDelay models random scheduler jitter.
	UniformDelay = sim.UniformDelay
	// GeometricDelay is the probabilistic delay profile of real
	// schedulers: mostly fresh reads, exponentially rare long delays.
	GeometricDelay = sim.GeometricDelay
	// ZeroDelay is the synchronous special case.
	ZeroDelay = sim.ZeroDelay
)

// Simulator entry points.
var (
	// SimulateConsistent runs the consistent-read iteration (8).
	SimulateConsistent = sim.RunConsistent
	// SimulateInconsistent runs the inconsistent-read iteration (9).
	SimulateInconsistent = sim.RunInconsistent
)

// Sharded distributed-memory backend (the paper's future-work
// deployment, also registered as the "asyrgs-distmem" method).
type (
	// DistConfig configures the message-passing sharded backend of the
	// restricted-randomization solver.
	DistConfig = distmem.Config
	// DistResult reports a distributed run (residual, traffic, backlog).
	DistResult = distmem.Result
	// DistPrepared is the sharded per-matrix state (ownership partition,
	// diagonal, per-rank streams) captured once by DistPrepare.
	DistPrepared = distmem.Prepared
	// DistSolver is a persistent pool of emulated ranks forked from a
	// DistPrepared; rounds and right-hand sides reuse its goroutines.
	DistSolver = distmem.Solver
	// DistPartition is the coordinate-ownership map of a sharded run.
	DistPartition = distmem.Partition
)

// Distributed solver entry points.
var (
	// DistSolve runs a fixed sweep budget on every emulated rank.
	DistSolve = distmem.Solve
	// DistSolveToTol iterates rounds of DistSolve to a tolerance,
	// accumulating message and backlog accounting across rounds.
	DistSolveToTol = distmem.SolveToTol
	// DistPrepare captures the sharded per-matrix state once; fork
	// Solvers from it for repeated runs.
	DistPrepare = distmem.Prepare
	// DistPartitionContiguous splits n coordinates into equal-width
	// blocks.
	DistPartitionContiguous = distmem.Contiguous
	// DistPartitionNNZBalanced splits rows into blocks of roughly equal
	// nonzero count, balancing per-round work on skewed matrices.
	DistPartitionNNZBalanced = distmem.NNZBalanced
)

// Workload generators.
type (
	// SocialGramOptions shape the synthetic social-media Gram matrix.
	SocialGramOptions = workload.SocialGramOptions
)

// Generators for test problems.
var (
	// SocialGram builds the synthetic analogue of the paper's test matrix.
	SocialGram = workload.SocialGram
	// DefaultSocialGram returns the harness's generator options.
	DefaultSocialGram = workload.DefaultSocialGram
	// Laplacian2D returns the 5-point grid Laplacian.
	Laplacian2D = workload.Laplacian2D
	// Laplacian3D returns the 7-point grid Laplacian.
	Laplacian3D = workload.Laplacian3D
	// RandomSPD returns a random diagonally dominant SPD matrix.
	RandomSPD = workload.RandomSPD
	// RandomOverdetermined returns a random tall sparse matrix.
	RandomOverdetermined = workload.RandomOverdetermined
	// RandomRHS returns a uniform right-hand side.
	RandomRHS = workload.RandomRHS
	// RHSForSolution returns b = A·x* with x* known.
	RHSForSolution = workload.RHSForSolution
	// MultiRHS returns an n×cols block of right-hand sides.
	MultiRHS = workload.MultiRHS
	// DescribeMatrix formats headline matrix statistics.
	DescribeMatrix = workload.Describe
)
