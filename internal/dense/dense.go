// Package dense provides a small direct solver (LU with partial pivoting)
// and helpers for dense symmetric eigen-cross-checks. It exists to give the
// test suite and examples an independent reference solution: every
// iterative solver in this repository is validated against it on small
// systems.
package dense

import (
	"errors"
	"math"

	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// ErrSingular is returned when elimination encounters a pivot that is
// numerically zero.
var ErrSingular = errors.New("dense: matrix is singular to working precision")

// Solve solves the n×n dense row-major system a·x = b by LU factorization
// with partial pivoting. a and b are not modified.
func Solve(a []float64, b []float64, n int) ([]float64, error) {
	if len(a) != n*n || len(b) != n {
		return nil, errors.New("dense: Solve shape mismatch")
	}
	lu := append([]float64(nil), a...)
	x := append([]float64(nil), b...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu[r*n+col]); v > best {
				best, p = v, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if p != col {
			for k := 0; k < n; k++ {
				lu[p*n+k], lu[col*n+k] = lu[col*n+k], lu[p*n+k]
			}
			x[p], x[col] = x[col], x[p]
		}
		piv := lu[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu[r*n+col] / piv
			if f == 0 {
				continue
			}
			lu[r*n+col] = f
			for k := col + 1; k < n; k++ {
				lu[r*n+k] -= f * lu[col*n+k]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for k := r + 1; k < n; k++ {
			s -= lu[r*n+k] * x[k]
		}
		x[r] = s / lu[r*n+r]
	}
	return x, nil
}

// SolveCSR solves a sparse square system by densifying — for tests and
// reference solutions on small matrices only.
func SolveCSR(a *sparse.CSR, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("dense: SolveCSR needs a square matrix")
	}
	return Solve(a.Dense(), b, a.Rows)
}

// Inverse returns the dense inverse of the small CSR matrix, column by
// column — used by tests to build an exact preconditioner.
func Inverse(a *sparse.CSR) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("dense: Inverse needs a square matrix")
	}
	n := a.Rows
	ad := a.Dense()
	inv := make([]float64, n*n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := Solve(ad, e, n)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv[i*n+j] = col[i]
		}
	}
	return inv, nil
}

// MulVec computes y = M·x for a dense row-major n×n matrix.
func MulVec(m []float64, x []float64, n int) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		row := m[i*n : (i+1)*n]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}
