package dense

import (
	"errors"
	"math"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func TestSolveKnown(t *testing.T) {
	// [2 1; 1 3]·x = [3; 5] → x = [4/5, 7/5]
	a := []float64{2, 1, 1, 3}
	x, err := Solve(a, []float64{3, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.8) > 1e-14 || math.Abs(x[1]-1.4) > 1e-14 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero pivot forces a row swap.
	a := []float64{0, 1, 1, 0}
	x, err := Solve(a, []float64{2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	if _, err := Solve(a, []float64{1, 2}, 2); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := []float64{2, 1, 1, 3}
	b := []float64{3, 5}
	_, _ = Solve(a, b, 2)
	if a[0] != 2 || b[0] != 3 {
		t.Fatal("Solve must not mutate inputs")
	}
}

func TestSolveCSRRoundTrip(t *testing.T) {
	m := workload.RandomSPD(25, 4, 1.5, 1)
	b, xstar := workload.RHSForSolution(m, 2)
	x, err := SolveCSR(m, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xstar[i]) > 1e-9 {
			t.Fatalf("entry %d: %v vs %v", i, x[i], xstar[i])
		}
	}
	if _, err := SolveCSR(sparse.NewCOO(2, 3).ToCSR(), []float64{1, 1}); err == nil {
		t.Fatal("rectangular must be rejected")
	}
}

func TestInverse(t *testing.T) {
	m := workload.RandomSPD(10, 3, 1.5, 3)
	inv, err := Inverse(m)
	if err != nil {
		t.Fatal(err)
	}
	// M·M⁻¹ ≈ I.
	md := m.Dense()
	n := 10
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += md[i*n+k] * inv[k*n+j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-9 {
				t.Fatalf("(M·M⁻¹)[%d,%d] = %v", i, j, s)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := []float64{1, 2, 3, 4}
	y := MulVec(m, []float64{1, 1}, 2)
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestSolveShapeError(t *testing.T) {
	if _, err := Solve([]float64{1}, []float64{1, 2}, 2); err == nil {
		t.Fatal("shape mismatch must error")
	}
}
