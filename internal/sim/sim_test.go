package sim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/spectral"
	"github.com/asynclinalg/asyrgs/internal/theory"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func unitLap(t testing.TB, m int) *sparse.CSR {
	t.Helper()
	a, _, err := sparse.UnitDiagonalScale(workload.Laplacian2D(m, m))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestZeroDelayMatchesSynchronousSolver(t *testing.T) {
	// With τ = 0 the simulator must replay core.Sweeps exactly: same
	// stream, same update rule, no staleness corrections.
	a := unitLap(t, 5)
	n := a.Rows
	b, xstar := workload.RHSForSolution(a, 1)
	x0 := make([]float64, n)
	const sweeps = 4

	tr := RunConsistent(a, b, x0, xstar, sweeps*n, ZeroDelay{}, Config{Seed: 9, Beta: 0.7})

	s, err := core.New(a, core.Options{Seed: 9, Beta: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	s.Sweeps(x, b, sweeps)
	if !vec.Equal(tr.X, x, 1e-13) {
		t.Fatal("τ=0 simulator diverged from the synchronous solver")
	}
}

func TestZeroDelayInconsistentEqualsConsistent(t *testing.T) {
	a := unitLap(t, 4)
	n := a.Rows
	b, xstar := workload.RHSForSolution(a, 2)
	x0 := make([]float64, n)
	c := RunConsistent(a, b, x0, xstar, 3*n, ZeroDelay{}, Config{Seed: 3})
	i := RunInconsistent(a, b, x0, xstar, 3*n, ZeroDelay{}, Config{Seed: 3})
	if !vec.Equal(c.X, i.X, 0) {
		t.Fatal("with no delays both models are the same iteration")
	}
}

func TestFixedDelayConsistentConverges(t *testing.T) {
	a := unitLap(t, 6)
	n := a.Rows
	b, xstar := workload.RHSForSolution(a, 4)
	x0 := make([]float64, n)
	tau := 4
	beta := theory.OptimalBeta(theory.Rho(a), tau)
	tr := RunConsistent(a, b, x0, xstar, 60*n, FixedDelay{T: tau}, Config{Seed: 5, Beta: beta, Stride: n})
	first, last := tr.Errors[0], tr.Errors[len(tr.Errors)-1]
	if last > first*1e-3 {
		t.Fatalf("consistent-read fixed-delay run barely converged: %v -> %v", first, last)
	}
}

func TestFixedDelayInconsistentConverges(t *testing.T) {
	a := unitLap(t, 6)
	n := a.Rows
	b, xstar := workload.RHSForSolution(a, 6)
	x0 := make([]float64, n)
	tau := 4
	beta := theory.OptimalBetaInconsistent(theory.Rho2(a), tau)
	tr := RunInconsistent(a, b, x0, xstar, 80*n, FixedDelay{T: tau}, Config{Seed: 7, Beta: beta, Stride: n})
	first, last := tr.Errors[0], tr.Errors[len(tr.Errors)-1]
	if last > first*1e-2 {
		t.Fatalf("inconsistent-read fixed-delay run barely converged: %v -> %v", first, last)
	}
}

func TestUniformDelayConverges(t *testing.T) {
	a := unitLap(t, 6)
	n := a.Rows
	b, xstar := workload.RHSForSolution(a, 8)
	x0 := make([]float64, n)
	model := UniformDelay{T: 6, MissProb: 0.5, Seed: 99}
	tr := RunInconsistent(a, b, x0, xstar, 60*n, model, Config{Seed: 9, Beta: 0.5, Stride: n})
	if tr.Errors[len(tr.Errors)-1] > tr.Errors[0]*1e-2 {
		t.Fatal("uniform-delay run did not converge")
	}
}

func TestTraceRecordsStride(t *testing.T) {
	a := unitLap(t, 4)
	n := a.Rows
	b, xstar := workload.RHSForSolution(a, 10)
	tr := RunConsistent(a, b, make([]float64, n), xstar, 5*n, ZeroDelay{}, Config{Seed: 1, Stride: n})
	if len(tr.Errors) != 6 { // initial + one per sweep
		t.Fatalf("trace has %d samples, want 6", len(tr.Errors))
	}
	if tr.Stride != n {
		t.Fatalf("stride = %d", tr.Stride)
	}
}

func TestTheorem3BoundHolds(t *testing.T) {
	// The enforced worst-case delay run must respect Theorem 3(b)'s bound
	// (averaged over direction seeds — the bound is on the expectation).
	a := unitLap(t, 8)
	n := a.Rows
	est := spectral.EstimateSPD(a, 80, 1)
	tau := 3
	beta := theory.OptimalBeta(theory.Rho(a), tau)
	p := theory.NewParams(a, est.LambdaMin, est.LambdaMax, tau, beta)
	m := 30 * n
	bound := p.ConsistentBound(m)
	if bound >= 1 {
		t.Skip("bound vacuous at this size; covered by the harness test at larger m")
	}
	const trials = 10
	var ratio float64
	for s := uint64(0); s < trials; s++ {
		b, xstar := workload.RHSForSolution(a, 40+s)
		tr := RunConsistent(a, b, make([]float64, n), xstar, m, FixedDelay{T: tau}, Config{Seed: 1000 + s, Beta: beta, Stride: m})
		ratio += tr.Errors[len(tr.Errors)-1] / tr.Errors[0]
	}
	ratio /= trials
	if ratio > bound {
		t.Fatalf("measured E_m/E_0 = %v exceeds Theorem 3 bound %v", ratio, bound)
	}
}

func TestTheorem4BoundHolds(t *testing.T) {
	a := unitLap(t, 8)
	n := a.Rows
	est := spectral.EstimateSPD(a, 80, 2)
	tau := 3
	beta := theory.OptimalBetaInconsistent(theory.Rho2(a), tau)
	p := theory.NewParams(a, est.LambdaMin, est.LambdaMax, tau, beta)
	m := 30 * n
	bound := p.InconsistentBound(m)
	if bound >= 1 {
		t.Skip("bound vacuous at this size")
	}
	const trials = 10
	var ratio float64
	for s := uint64(0); s < trials; s++ {
		b, xstar := workload.RHSForSolution(a, 60+s)
		tr := RunInconsistent(a, b, make([]float64, n), xstar, m, FixedDelay{T: tau}, Config{Seed: 2000 + s, Beta: beta, Stride: m})
		ratio += tr.Errors[len(tr.Errors)-1] / tr.Errors[0]
	}
	ratio /= trials
	if ratio > bound {
		t.Fatalf("measured E_m/E_0 = %v exceeds Theorem 4 bound %v", ratio, bound)
	}
}

func TestDelayModelsRespectTau(t *testing.T) {
	f := func(seed uint64, j uint64, tRaw uint8) bool {
		tau := int(tRaw%16) + 1
		u := UniformDelay{T: tau, MissProb: 0.3, Seed: seed}
		if lag := u.Lag(j); lag < 0 || lag > tau {
			return false
		}
		miss := make([]bool, tau)
		u.Missed(j, miss)
		f := FixedDelay{T: tau}
		if f.Lag(j) != tau || f.Tau() != tau {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStalenessActuallyChangesTrajectory(t *testing.T) {
	// Sanity: a delayed run must differ from the synchronous one (the
	// simulator is not silently ignoring the delay model).
	a := unitLap(t, 5)
	n := a.Rows
	b, xstar := workload.RHSForSolution(a, 11)
	x0 := make([]float64, n)
	sync := RunConsistent(a, b, x0, xstar, 2*n, ZeroDelay{}, Config{Seed: 13})
	lag := RunConsistent(a, b, x0, xstar, 2*n, FixedDelay{T: 5}, Config{Seed: 13})
	if vec.Equal(sync.X, lag.X, 1e-15) {
		t.Fatal("τ=5 trajectory identical to synchronous — delays not applied")
	}
}

func TestShapeValidation(t *testing.T) {
	a := unitLap(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	RunConsistent(a, make([]float64, 2), make([]float64, a.Rows), make([]float64, a.Rows), 1, ZeroDelay{}, Config{})
}

func TestErrorsAreSquaredANorms(t *testing.T) {
	a := unitLap(t, 4)
	n := a.Rows
	b, xstar := workload.RHSForSolution(a, 14)
	x0 := make([]float64, n)
	tr := RunConsistent(a, b, x0, xstar, n, ZeroDelay{}, Config{Seed: 15, Stride: n})
	e0 := a.ANormErr(x0, xstar)
	if math.Abs(tr.Errors[0]-e0*e0) > 1e-12*e0*e0 {
		t.Fatalf("initial error sample %v, want %v", tr.Errors[0], e0*e0)
	}
	eEnd := a.ANormErr(tr.X, xstar)
	if math.Abs(tr.Errors[len(tr.Errors)-1]-eEnd*eEnd) > 1e-10 {
		t.Fatal("final error sample inconsistent with final iterate")
	}
}

func TestGeometricDelayRespectsTau(t *testing.T) {
	d := GeometricDelay{T: 10, P0: 0.7, Seed: 1}
	histo := make([]int, 11)
	for j := uint64(0); j < 20_000; j++ {
		lag := d.Lag(j)
		if lag < 0 || lag > 10 {
			t.Fatalf("lag %d outside [0,10]", lag)
		}
		histo[lag]++
	}
	// Geometric shape: lag 0 most frequent, strictly more than lag 3.
	if histo[0] <= histo[3] {
		t.Fatalf("geometric delays not decaying: %v", histo)
	}
	if d.Tau() != 10 {
		t.Fatal("Tau accessor wrong")
	}
}

func TestGeometricDelayMissedProbabilityDecays(t *testing.T) {
	d := GeometricDelay{T: 6, P0: 0.5, Seed: 2}
	miss := make([]bool, 6)
	counts := make([]int, 6)
	const trials = 30_000
	for j := uint64(0); j < trials; j++ {
		d.Missed(j, miss)
		for i, m := range miss {
			if m {
				counts[i]++
			}
		}
	}
	// Pr(missed at distance i) = p^{i+1}: must decay with i.
	if counts[0] <= counts[3] {
		t.Fatalf("miss probabilities not decaying: %v", counts)
	}
	frac0 := float64(counts[0]) / trials
	if frac0 < 0.45 || frac0 > 0.55 {
		t.Fatalf("P(miss most recent) = %v, want ≈ 0.5", frac0)
	}
}

func TestGeometricDelayConverges(t *testing.T) {
	a := unitLap(t, 6)
	n := a.Rows
	b, xstar := workload.RHSForSolution(a, 20)
	x0 := make([]float64, n)
	model := GeometricDelay{T: 8, P0: 0.6, Seed: 21}
	tr := RunInconsistent(a, b, x0, xstar, 60*n, model, Config{Seed: 22, Beta: 0.7, Stride: n})
	if tr.Errors[len(tr.Errors)-1] > tr.Errors[0]*1e-2 {
		t.Fatal("geometric-delay run did not converge")
	}
}

func TestGeometricBeatsWorstCase(t *testing.T) {
	// With the same τ and β, geometric (mostly fresh) delays should give
	// error no worse than the adversarial fixed-τ delays, on average over
	// seeds — the paper's "worst case is pessimistic" claim, quantified.
	a := unitLap(t, 6)
	n := a.Rows
	tau := 8
	beta := 0.7
	m := 40 * n
	var geo, fixed float64
	const trials = 6
	for s := uint64(0); s < trials; s++ {
		b, xstar := workload.RHSForSolution(a, 30+s)
		x0 := make([]float64, n)
		g := RunInconsistent(a, b, x0, xstar, m, GeometricDelay{T: tau, P0: 0.5, Seed: 40 + s}, Config{Seed: 50 + s, Beta: beta, Stride: m})
		f := RunInconsistent(a, b, x0, xstar, m, FixedDelay{T: tau}, Config{Seed: 50 + s, Beta: beta, Stride: m})
		geo += g.Errors[len(g.Errors)-1] / g.Errors[0]
		fixed += f.Errors[len(f.Errors)-1] / f.Errors[0]
	}
	if geo > fixed*1.5 {
		t.Fatalf("geometric delays (%v) much worse than worst-case (%v)?", geo/trials, fixed/trials)
	}
}
