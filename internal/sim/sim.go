// Package sim executes the paper's governing iterations (8) and (9) —
// Randomized Gauss–Seidel under *enforced* bounded-delay asynchrony —
// sequentially and deterministically.
//
// Real threads (internal/core) produce delays k(j) and update sets K(j)
// that depend on the scheduler, so the assumptions of Theorems 2–4 can be
// neither enforced nor violated on purpose. This simulator makes the models
// executable: a DelayModel supplies k(j) for the consistent-read iteration
// and the set of missed recent updates for the inconsistent-read iteration,
// independent of the random direction choices exactly as Assumption A-4
// requires. The bound-validation experiments compare the measured
// E_m = ‖x_m − x*‖²_A trajectories against the theory package's curves.
package sim

import (
	"fmt"
	"math"

	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// DelayModel decides how stale each iteration's read is. Implementations
// must not depend on the direction choices (Assumption A-4): they may use
// their own random stream but not the directions'.
type DelayModel interface {
	// Lag returns the read lag d_j ∈ [0, τ] for iteration j in the
	// consistent-read model: the iteration reads x_{k(j)} with
	// k(j) = max(0, j − d_j).
	Lag(j uint64) int

	// Missed fills miss[i] (i = 0 … τ−1) with whether the update made at
	// iteration j−1−i is excluded from K(j) in the inconsistent-read
	// model. Updates older than τ are always included, per equation (7).
	Missed(j uint64, miss []bool)

	// Tau returns the asynchrony bound τ the model honours.
	Tau() int
}

// ZeroDelay is the synchronous special case: k(j) = j and K(j) complete.
type ZeroDelay struct{}

// Lag implements DelayModel.
func (ZeroDelay) Lag(uint64) int { return 0 }

// Missed implements DelayModel.
func (ZeroDelay) Missed(_ uint64, miss []bool) {
	for i := range miss {
		miss[i] = false
	}
}

// Tau implements DelayModel.
func (ZeroDelay) Tau() int { return 0 }

// FixedDelay is the adversarial worst case allowed by Assumption A-3:
// every read is exactly τ iterations stale and every recent update is
// missed.
type FixedDelay struct{ T int }

// Lag implements DelayModel.
func (d FixedDelay) Lag(uint64) int { return d.T }

// Missed implements DelayModel.
func (d FixedDelay) Missed(_ uint64, miss []bool) {
	for i := range miss {
		miss[i] = true
	}
}

// Tau implements DelayModel.
func (d FixedDelay) Tau() int { return d.T }

// UniformDelay draws the lag uniformly from {0,…,τ} and misses each recent
// update independently with probability MissProb — a crude model of real
// scheduler jitter. The stream is keyed separately from the direction
// stream so delays stay independent of directions (Assumption A-4).
type UniformDelay struct {
	T        int
	MissProb float64
	Seed     uint64
}

// Lag implements DelayModel.
func (d UniformDelay) Lag(j uint64) int {
	if d.T == 0 {
		return 0
	}
	s := rng.NewStream(d.Seed ^ 0x9E3779B97F4A7C15)
	return s.IntnAt(j, d.T+1)
}

// Missed implements DelayModel.
func (d UniformDelay) Missed(j uint64, miss []bool) {
	s := rng.NewStream(d.Seed ^ 0xD1B54A32D192ED03)
	for i := range miss {
		miss[i] = s.Float64At(j*uint64(len(miss)+1)+uint64(i)) < d.MissProb
	}
}

// Tau implements DelayModel.
func (d UniformDelay) Tau() int { return d.T }

// GeometricDelay draws the lag from a geometric distribution truncated at
// τ: P(lag = k) ∝ (1−P0)^k. It is the probabilistic delay model the
// paper's conclusions call for ("a probabilistic modeling of the delays
// might lead to a convergence result that will be more descriptive"):
// most reads are fresh, long delays are exponentially rare — the profile
// real schedulers produce (compare Solver.DelayHistogram). Each recent
// update is independently missed with the same tail probability.
type GeometricDelay struct {
	// T is the hard truncation honouring Assumption A-3.
	T int
	// P0 is the per-step continuation probability in (0,1); larger means
	// heavier delay tails. Zero defaults to 0.5.
	P0   float64
	Seed uint64
}

func (d GeometricDelay) p() float64 {
	if d.P0 <= 0 || d.P0 >= 1 {
		return 0.5
	}
	return d.P0
}

// Lag implements DelayModel.
func (d GeometricDelay) Lag(j uint64) int {
	if d.T == 0 {
		return 0
	}
	s := rng.NewStream(d.Seed ^ 0xA24BAED4963EE407)
	u := s.Float64At(j)
	p := d.p()
	lag := 0
	// Invert the geometric CDF: lag = floor(log(1-u)/log(p)).
	if u > 0 {
		lag = int(math.Log(1-u) / math.Log(p))
	}
	if lag > d.T {
		lag = d.T
	}
	if lag < 0 {
		lag = 0
	}
	return lag
}

// Missed implements DelayModel: update j−1−i is missed if a geometric lag
// drawn for that slot exceeds i.
func (d GeometricDelay) Missed(j uint64, miss []bool) {
	s := rng.NewStream(d.Seed ^ 0x9FB21C651E98DF25)
	p := d.p()
	for i := range miss {
		u := s.Float64At(j*uint64(len(miss)+1) + uint64(i))
		// Pr(missed) = p^{i+1}: recent updates are likelier missed.
		threshold := ipow(p, i+1)
		miss[i] = u < threshold
	}
}

// Tau implements DelayModel.
func (d GeometricDelay) Tau() int { return d.T }

func ipow(p float64, k int) float64 {
	out := 1.0
	for ; k > 0; k-- {
		out *= p
	}
	return out
}

// Config describes one simulated run.
type Config struct {
	Beta   float64 // step size β; 0 means 1
	Seed   uint64  // direction stream seed
	Stride int     // record the error every Stride iterations; 0 = every n
}

// Trace is the output of a simulated run: the expected-error surrogate
// E_j = ‖x_j − x*‖²_A sampled every Stride iterations (index 0 is the
// initial error), plus the final iterate.
type Trace struct {
	Stride int
	Errors []float64
	X      []float64
}

// update records one committed coordinate step for the staleness window.
type update struct {
	r     int
	delta float64 // β·γ applied at coordinate r
}

// RunConsistent simulates m iterations of the consistent-read iteration
// (8): γ_j = (x* − x_{k(j)}, d_j)_A, x_{j+1} = x_j + βγ_j d_j, with k(j)
// supplied by the delay model. The matrix must be square; b defines x*
// implicitly (the simulator needs only b and A, not x*). A unit diagonal is
// not required — the general iteration (3) is used.
func RunConsistent(a *sparse.CSR, b, x0, xstar []float64, m int, model DelayModel, cfg Config) Trace {
	return run(a, b, x0, xstar, m, model, cfg, true)
}

// RunInconsistent simulates m iterations of the inconsistent-read
// iteration (9): the read state is x_{K(j)} where K(j) omits the recent
// updates the delay model marks missed.
func RunInconsistent(a *sparse.CSR, b, x0, xstar []float64, m int, model DelayModel, cfg Config) Trace {
	return run(a, b, x0, xstar, m, model, cfg, false)
}

func run(a *sparse.CSR, b, x0, xstar []float64, m int, model DelayModel, cfg Config, consistent bool) Trace {
	n := a.Rows
	if a.Cols != n || len(b) != n || len(x0) != n || len(xstar) != n {
		panic(fmt.Sprintf("sim: shape mismatch n=%d len(b)=%d len(x0)=%d len(x*)=%d", n, len(b), len(x0), len(xstar)))
	}
	beta := cfg.Beta
	if beta == 0 {
		beta = 1
	}
	stride := cfg.Stride
	if stride <= 0 {
		stride = n
	}
	diag := a.Diag()
	invD := make([]float64, n)
	for i, d := range diag {
		if d == 0 {
			panic(fmt.Sprintf("sim: zero diagonal at row %d", i))
		}
		invD[i] = 1 / d
	}

	x := append([]float64(nil), x0...)
	stream := rng.NewStream(cfg.Seed)
	tau := model.Tau()
	hist := make([]update, 0, tau) // ring of the last ≤τ updates, oldest first
	miss := make([]bool, tau)

	tr := Trace{Stride: stride}
	tr.Errors = append(tr.Errors, a.ANormErr(x, xstar)*a.ANormErr(x, xstar))

	for j := 0; j < m; j++ {
		r := stream.IntnAt(uint64(j), n)
		// Current-state row product.
		dot := a.RowDot(r, x)
		// Subtract the effect of updates the read misses, yielding
		// A_r·x_{k(j)} (consistent) or A_r·x_{K(j)} (inconsistent).
		if tau > 0 && len(hist) > 0 {
			if consistent {
				lag := model.Lag(uint64(j))
				if lag > len(hist) {
					lag = len(hist)
				}
				// Miss the last `lag` updates: t = j−lag … j−1.
				for t := len(hist) - lag; t < len(hist); t++ {
					u := hist[t]
					if av := a.At(r, u.r); av != 0 {
						dot -= av * u.delta
					}
				}
			} else {
				model.Missed(uint64(j), miss)
				// miss[i] refers to the update of iteration j−1−i.
				for i := 0; i < tau && i < len(hist); i++ {
					if !miss[i] {
						continue
					}
					u := hist[len(hist)-1-i]
					if av := a.At(r, u.r); av != 0 {
						dot -= av * u.delta
					}
				}
			}
		}
		gamma := (b[r] - dot) * invD[r]
		delta := beta * gamma
		x[r] += delta
		if tau > 0 {
			if len(hist) == tau {
				copy(hist, hist[1:])
				hist[tau-1] = update{r, delta}
			} else {
				hist = append(hist, update{r, delta})
			}
		}
		if (j+1)%stride == 0 {
			e := a.ANormErr(x, xstar)
			tr.Errors = append(tr.Errors, e*e)
		}
	}
	tr.X = x
	return tr
}
