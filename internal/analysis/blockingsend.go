package analysis

import (
	"go/ast"
)

// sendPackages enrolls the packages whose channel sends model a bounded
// message network. In internal/distmem a full peer inbox must exert
// backpressure without ever blocking a worker that should be draining
// its own inbox — the exact shape of the PR 3 send-retry deadlock,
// where a retry loop fell through to a bare blocking send and a cycle
// of workers with full inboxes stalled forever.
var sendPackages = []string{
	"internal/distmem",
}

// BlockingSend requires every channel send in the distmem backend to
// sit inside a select with at least one alternative arm (a default for
// the drain-and-retry idiom, or a cancellation/drain case), so no
// worker can block unconditionally on a peer's full inbox.
var BlockingSend = &Analyzer{
	Name: "blockingsend",
	Doc: "require channel sends in internal/distmem to sit inside a select " +
		"with a non-blocking or drain arm (the PR 3 deadlock shape)",
	Run: runBlockingSend,
}

func runBlockingSend(pass *Pass) error {
	pkg := pass.Pkg
	if !pkg.PathIn(sendPackages...) && !pkg.OptedIn("blockingsend") {
		return nil
	}
	pass.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if !nonBlockingSend(send, stack) {
			pass.Reportf(send.Pos(),
				"blocking channel send outside a multi-arm select; a full peer queue must be met with a drain or default arm, not a stall")
		}
		return true
	})
	return nil
}

// nonBlockingSend reports whether the send is the comm op of a select
// clause that has an escape hatch: at least one other case or a
// default.
func nonBlockingSend(send *ast.SendStmt, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	clause, ok := stack[len(stack)-1].(*ast.CommClause)
	if !ok || clause.Comm != ast.Stmt(send) {
		return false
	}
	// The clause's select sits above it in the stack (through the
	// select's body block).
	for i := len(stack) - 2; i >= 0; i-- {
		if sel, ok := stack[i].(*ast.SelectStmt); ok {
			return len(sel.Body.List) >= 2
		}
	}
	return false
}
