package analysis

import (
	"go/ast"
	"go/types"
)

// detPackages enrolls the packages whose every output must be a pure
// function of their inputs and Philox (stream, counter) pairs: the
// solver cores, the sharded backend, the alias sampler and the
// generator itself. The paper's convergence claims are only testable
// because replays are bit-exact; one stray wall-clock read or
// math/rand draw silently breaks every replay-based test downstream.
var detPackages = []string{
	"internal/core",
	"internal/kaczmarz",
	"internal/lsq",
	"internal/distmem",
	"internal/alias",
	"internal/rng",
	// The durable prep store round-trips solver state: a wall-clock or
	// map-order dependency in its codec would break the bit-identical
	// restore guarantee the persistence tests assert.
	"internal/store",
	// The fault injector is the chaos harness's source of truth: every
	// decision must be a pure function of (seed, site, op-index) or the
	// exact-accounting assertions stop reproducing across runs.
	"internal/fault",
}

// Determinism rejects nondeterminism sources in the deterministic
// package set: importing math/rand (all randomness must flow through
// internal/rng Philox streams), reading the wall clock via time.Now or
// time.Since, and ranging over maps (iteration order is randomized by
// the runtime). A range-over-map whose order provably cannot reach any
// output may be suppressed with `//asyrgs:orderindep <why>`.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "disallow math/rand, time.Now/Since and map iteration in packages " +
		"whose outputs must be pure functions of Philox (stream, counter) pairs",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	pkg := pass.Pkg
	if !pkg.PathIn(detPackages...) && !pkg.OptedIn("determinism") {
		return nil
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			switch impPath(imp) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(),
					"deterministic package imports %s; all randomness must flow through internal/rng Philox streams",
					impPath(imp))
			}
		}
	}
	pass.WalkStack(func(n ast.Node, _ []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if pkgOf(pkg, n.X) == "time" && (n.Sel.Name == "Now" || n.Sel.Name == "Since") {
				pass.Reportf(n.Pos(),
					"wall-clock read time.%s in deterministic package; timings belong to callers outside the deterministic core",
					n.Sel.Name)
			}
		case *ast.RangeStmt:
			t := pkg.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap && !pkg.DirectiveAt(n.Pos(), "orderindep") {
				pass.Reportf(n.Pos(),
					"map iteration order is nondeterministic; iterate a sorted key slice, or mark the loop //asyrgs:orderindep <why> if order cannot reach any output")
			}
		}
		return true
	})
	return nil
}

// impPath unquotes an import spec's path.
func impPath(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}

// pkgOf resolves x to the import path of the package it names, or ""
// when x is not a package qualifier.
func pkgOf(pkg *Package, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
