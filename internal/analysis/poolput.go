package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPut keeps sync.Pool usage leak-free: every pool that is Get from
// must be Put back somewhere in the same package, and inside a single
// function a locally-consumed pooled value must reach a Put on every
// return path (or be released by a deferred Put). A Get whose value is
// returned to the caller is an ownership transfer — the
// acquire/release helper idiom of corePrepared.fork and Server.getItem
// — and only the package-level balance is required of it. Assigning a
// pooled value to a package-level variable is reported as an escape:
// a value stored globally can be Put and then reused concurrently.
var PoolPut = &Analyzer{
	Name: "poolput",
	Doc: "require sync.Pool Get/Put balance per package and per function " +
		"return path, and reject pooled values escaping to globals",
	Run: runPoolPut,
}

// poolCall is one resolved (*sync.Pool).Get or Put call site.
type poolCall struct {
	call     *ast.CallExpr
	pool     types.Object // the pool variable or field; nil if unresolvable
	key      string       // printable pool identity for diagnostics
	deferred bool
}

func runPoolPut(pass *Pass) error {
	pkg := pass.Pkg
	// Package-level balance: pools with a Get but no Put anywhere leak
	// by construction.
	gets := map[types.Object][]*poolCall{}
	puts := map[types.Object]bool{}
	var fns []*ast.FuncDecl
	pass.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok {
			fns = append(fns, fd)
		}
		pc, name := poolCallOf(pkg, n, stack)
		if pc == nil || pc.pool == nil {
			return true
		}
		switch name {
		case "Get":
			gets[pc.pool] = append(gets[pc.pool], pc)
		case "Put":
			puts[pc.pool] = true
		}
		return true
	})
	for pool, calls := range gets {
		if puts[pool] {
			continue
		}
		for _, pc := range calls {
			pass.Reportf(pc.call.Pos(),
				"sync.Pool %s has Get but no Put anywhere in the package: pooled values leak", pc.key)
		}
	}
	for _, fd := range fns {
		if fd.Body != nil {
			checkPoolFunc(pass, fd)
		}
	}
	return nil
}

// poolCallOf resolves n to a (*sync.Pool).Get/Put call, returning the
// call record and the method name.
func poolCallOf(pkg *Package, n ast.Node, stack []ast.Node) (*poolCall, string) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
		return nil, ""
	}
	recv := pkg.Info.TypeOf(sel.X)
	if recv == nil || !isSyncPool(recv) {
		return nil, ""
	}
	pc := &poolCall{call: call, pool: rootObject(pkg, sel.X), key: types.ExprString(sel.X)}
	for _, anc := range stack {
		if _, ok := anc.(*ast.DeferStmt); ok {
			pc.deferred = true
		}
	}
	return pc, sel.Sel.Name
}

func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// rootObject resolves the variable or field a pool expression names:
// `pool` -> the var, `s.itemPool` -> the field object.
func rootObject(pkg *Package, x ast.Expr) types.Object {
	switch x := x.(type) {
	case *ast.Ident:
		return pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			return sel.Obj()
		}
		return pkg.Info.Uses[x.Sel]
	case *ast.ParenExpr:
		return rootObject(pkg, x.X)
	case *ast.UnaryExpr:
		return rootObject(pkg, x.X)
	}
	return nil
}

// checkPoolFunc enforces the per-function rule: a locally-consumed
// pooled value must be Put on every return path.
func checkPoolFunc(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	type getSite struct {
		pc       *poolCall
		tracked  map[types.Object]bool // the value and its aliases
		returned bool                  // the Get call itself is a return operand
	}
	var getSites []*getSite
	var putsByPool []*poolCall
	var returns []*ast.ReturnStmt

	ast.Walk(&stackVisitor{fn: func(n ast.Node, stack []ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r)
		}
		pc, name := poolCallOf(pkg, n, stack)
		if pc == nil {
			return true
		}
		switch name {
		case "Get":
			gs := &getSite{pc: pc, tracked: map[types.Object]bool{}}
			// The Get value lands through `v := pool.Get()` or
			// `v, ok := pool.Get().(*T)`; walk up through the type
			// assertion to the assignment.
			for i := len(stack) - 1; i >= 0; i-- {
				if _, ok := stack[i].(*ast.ReturnStmt); ok {
					// `return pool.Get()` hands the value straight to the
					// caller: an ownership transfer with no local name.
					gs.returned = true
					break
				}
				if as, ok := stack[i].(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
							if obj := pkg.Info.Defs[id]; obj != nil {
								gs.tracked[obj] = true
							} else if obj := pkg.Info.Uses[id]; obj != nil {
								gs.tracked[obj] = true
							}
						}
					}
					break
				}
			}
			getSites = append(getSites, gs)
		case "Put":
			putsByPool = append(putsByPool, pc)
		}
		return true
	}}, fd.Body)

	if len(getSites) == 0 {
		return
	}

	// One alias pass in source order: a variable assigned from an
	// expression mentioning a tracked value joins the tracked set.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, gs := range getSites {
			mentions := false
			for _, rhs := range as.Rhs {
				if exprMentions(pkg, rhs, gs.tracked) {
					mentions = true
				}
			}
			if !mentions {
				continue
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := pkg.Info.Defs[id]; obj != nil {
						gs.tracked[obj] = true
					} else if obj := pkg.Info.Uses[id]; obj != nil && obj.Parent() != pkg.Types.Scope() {
						gs.tracked[obj] = true
					}
				}
				// Escape check: a tracked value stored into a
				// package-level variable outlives the function.
				if root := rootObject(pkg, lhs); root != nil && root.Parent() == pkg.Types.Scope() {
					pass.Reportf(as.Pos(),
						"pooled value from %s.Get escapes to package-level %s; it can be Put and then reused concurrently",
						gs.pc.key, root.Name())
				}
			}
		}
		return true
	})

	for _, gs := range getSites {
		// Ownership transfer: the pooled value is returned to the
		// caller; the package-level balance rule covers the release.
		transferred := gs.returned
		for _, r := range returns {
			for _, res := range r.Results {
				if exprMentions(pkg, res, gs.tracked) {
					transferred = true
				}
			}
		}
		if transferred {
			continue
		}
		samePool := func(pc *poolCall) bool {
			return pc.pool != nil && pc.pool == gs.pc.pool
		}
		deferredPut := false
		var putPositions []token.Pos
		for _, put := range putsByPool {
			if !samePool(put) {
				continue
			}
			if put.deferred {
				deferredPut = true
			}
			putPositions = append(putPositions, put.call.Pos())
		}
		if deferredPut {
			continue
		}
		if len(putPositions) == 0 {
			if gs.pc.deferred {
				continue // defer pool.Put(pool.Get().(...)) style round-trips
			}
			pass.Reportf(gs.pc.call.Pos(),
				"pooled value from %s.Get is neither returned, deferred-Put, nor Put in this function", gs.pc.key)
			continue
		}
		// Every return after the Get needs a Put between them (a
		// lexical approximation of path coverage that matches this
		// repository's straight-line release shapes).
		getPos := gs.pc.call.Pos()
		for _, r := range returns {
			if r.Pos() <= getPos {
				continue
			}
			covered := false
			for _, pp := range putPositions {
				if pp > getPos && pp < r.Pos() {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(r.Pos(),
					"return path without %s.Put for the value obtained at %s",
					gs.pc.key, pkg.Fset.Position(getPos))
			}
		}
	}
}

// exprMentions reports whether x references any tracked object.
func exprMentions(pkg *Package, x ast.Expr, tracked map[types.Object]bool) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil && tracked[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
