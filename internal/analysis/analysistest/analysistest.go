// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against `// want "regexp"` comments, the same
// contract as golang.org/x/tools/go/analysis/analysistest but built on
// the repository's stdlib-only analysis layer. Every fixture line with
// a want comment must produce a matching diagnostic (the seeded
// positive cases) and every line without one must stay silent (the
// negatives).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/analysis"
)

// expectation is one `// want` clause: a line that must produce
// diagnostics matching every listed pattern.
type expectation struct {
	file     string
	line     int
	patterns []*regexp.Regexp
	matched  []bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// Run loads the fixture package rooted at dir (relative to the test's
// working directory), applies the analyzer, and reports any mismatch
// between produced diagnostics and want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: expected 1 package, loaded %d", dir, len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	expects, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", dir, err)
	}

	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.File, d.Line, d.Message)
		}
	}
	for _, e := range expects {
		for i, p := range e.patterns {
			if !e.matched[i] {
				t.Errorf("%s:%d: no diagnostic matched %q", e.file, e.line, p)
			}
		}
	}
}

// claim marks the first unmatched pattern on the diagnostic's line that
// matches its message, reporting whether one was found.
func claim(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if e.file != d.File || e.line != d.Line {
			continue
		}
		for i, p := range e.patterns {
			if !e.matched[i] && p.MatchString(d.Message) {
				e.matched[i] = true
				return true
			}
		}
	}
	return false
}

// collectWants extracts the `// want` clauses from every comment in the
// fixture. The clause anchors to the line the comment starts on.
func collectWants(pkg *analysis.Package) ([]*expectation, error) {
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				e, err := wantOf(c, pkg.Fset)
				if err != nil {
					return nil, err
				}
				if e != nil {
					expects = append(expects, e)
				}
			}
		}
	}
	return expects, nil
}

func wantOf(c *ast.Comment, fset *token.FileSet) (*expectation, error) {
	m := wantRE.FindStringSubmatch(c.Text)
	if m == nil {
		return nil, nil
	}
	pos := fset.Position(c.Pos())
	e := &expectation{file: pos.Filename, line: pos.Line}
	for _, q := range quotedRE.FindAllString(m[1], -1) {
		pat := q
		if q[0] == '"' {
			var err error
			pat, err = strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
			}
		} else {
			pat = q[1 : len(q)-1]
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
		}
		e.patterns = append(e.patterns, re)
		e.matched = append(e.matched, false)
	}
	if len(e.patterns) == 0 {
		return nil, fmt.Errorf("%s:%d: want comment with no patterns", pos.Filename, pos.Line)
	}
	return e, nil
}
