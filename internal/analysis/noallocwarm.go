package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAllocWarm enforces the zero-allocation warm paths statically.
// Functions whose doc comment carries `//asyrgs:noalloc` (Solver.Reinit,
// the warm sequential sweep, the serve pooled fast path) must not
// contain allocating constructs: make/new, append (its backing array
// may grow), closures, go statements, slice/map/pointer composite
// literals, string concatenation, or explicit conversions into
// interface types. The runtime AllocsPerRun==0 tests prove the happy
// path clean end to end; this analyzer points at the exact file/line
// that would regress it. A documented cold branch (pool miss, escaping
// response buffer) is accepted with `//asyrgs:alloc-ok <why>`.
var NoAllocWarm = &Analyzer{
	Name: "noallocwarm",
	Doc: "forbid allocating constructs inside functions annotated //asyrgs:noalloc; " +
		"suppress documented cold branches with //asyrgs:alloc-ok <why>",
	Run: runNoAllocWarm,
}

func runNoAllocWarm(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !FuncDirective(fd, "noalloc") {
				continue
			}
			checkNoAlloc(pass, fd)
		}
	}
	return nil
}

func checkNoAlloc(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	report := func(pos token.Pos, format string, args ...any) {
		if !pkg.DirectiveAt(pos, "alloc-ok") {
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Walk(&stackVisitor{fn: func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure in noalloc function %s: function literals allocate", fd.Name.Name)
			return false // its body runs elsewhere; one finding is enough
		case *ast.GoStmt:
			report(n.Pos(), "go statement in noalloc function %s: spawning a goroutine allocates", fd.Name.Name)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						report(n.Pos(), "make in noalloc function %s", fd.Name.Name)
					case "new":
						report(n.Pos(), "new in noalloc function %s", fd.Name.Name)
					case "append":
						report(n.Pos(), "append in noalloc function %s: growth reallocates the backing array", fd.Name.Name)
					}
					return true
				}
			}
			if to, from, ok := conversion(pkg, n); ok && types.IsInterface(to) && !types.IsInterface(from) {
				report(n.Pos(), "conversion to interface %s in noalloc function %s boxes its operand", to, fd.Name.Name)
			}
		case *ast.CompositeLit:
			t := pkg.Info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				report(n.Pos(), "%s literal in noalloc function %s", kindName(t), fd.Name.Name)
			default:
				if len(stack) > 0 {
					if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op.String() == "&" {
						report(u.Pos(), "&composite literal in noalloc function %s escapes to the heap", fd.Name.Name)
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t, ok := pkg.Info.TypeOf(n.X).(*types.Basic); ok && t.Info()&types.IsString != 0 {
					report(n.Pos(), "string concatenation in noalloc function %s", fd.Name.Name)
				}
			}
		}
		return true
	}}, fd.Body)
}

// conversion reports whether call is a type conversion, returning the
// destination and operand types.
func conversion(pkg *Package, call *ast.CallExpr) (to, from types.Type, ok bool) {
	if len(call.Args) != 1 {
		return nil, nil, false
	}
	tv, found := pkg.Info.Types[call.Fun]
	if !found || !tv.IsType() {
		return nil, nil, false
	}
	from = pkg.Info.TypeOf(call.Args[0])
	if from == nil {
		return nil, nil, false
	}
	return tv.Type, from, true
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return t.String()
}
