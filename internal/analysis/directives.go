package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The analyzers are configured in source through `//asyrgs:` directive
// comments (the same shape as //go: directives — no space after the
// slashes):
//
//	//asyrgs:noalloc
//	    On a function's doc comment: the function body is a warm path
//	    and must contain no allocating constructs (noallocwarm).
//	//asyrgs:alloc-ok <why>
//	    On or immediately above an allocation site inside a noalloc
//	    function: the allocation is a documented cold branch (pool miss,
//	    escaping response buffer) and is accepted.
//	//asyrgs:orderindep <why>
//	    On or immediately above a range-over-map in a deterministic
//	    package: iteration order provably does not reach any output.
//	//asyrgs:boundedloop <why>
//	    On or immediately above a `for {` loop in a solver package: the
//	    loop is bounded by local progress (e.g. a claimed counter
//	    reaching its budget) and needs no ctx poll.
//	//asyrgs:check <analyzer>
//	    Anywhere in a file: opts the whole package into the named
//	    analyzer regardless of its import path. Used by the testdata
//	    fixtures.

const directivePrefix = "//asyrgs:"

// directive is one parsed //asyrgs: comment.
type directive struct {
	name string // e.g. "noalloc", "check"
	arg  string // remainder after the name, trimmed
	file string
	line int
}

// parseDirective decodes a single comment, reporting ok=false for
// non-directive comments.
func parseDirective(c *ast.Comment, fset *token.FileSet) (directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return directive{}, false
	}
	body := strings.TrimPrefix(c.Text, directivePrefix)
	name, arg, _ := strings.Cut(body, " ")
	pos := fset.Position(c.Pos())
	return directive{
		name: strings.TrimSpace(name),
		arg:  strings.TrimSpace(arg),
		file: pos.Filename,
		line: pos.Line,
	}, true
}

// Directives returns every //asyrgs: directive in the package, scanning
// all comments of all files once and memoizing the result.
func (p *Package) Directives() []directive {
	p.dirsOnce.Do(func() {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if d, ok := parseDirective(c, p.Fset); ok {
						p.dirs = append(p.dirs, d)
					}
				}
			}
		}
	})
	return p.dirs
}

// OptedIn reports whether any file carries `//asyrgs:check <analyzer>`,
// enrolling the package in the named analyzer. The fixtures use this;
// production packages are enrolled by import path instead.
func (p *Package) OptedIn(analyzer string) bool {
	for _, d := range p.Directives() {
		if d.name == "check" && d.arg == analyzer {
			return true
		}
	}
	return false
}

// DirectiveAt reports whether a `//asyrgs:<name>` directive sits on the
// same line as pos or on the line immediately above it — the two places
// a suppression comment reads naturally.
func (p *Package) DirectiveAt(pos token.Pos, name string) bool {
	position := p.Fset.Position(pos)
	for _, d := range p.Directives() {
		if d.name == name && d.file == position.Filename &&
			(d.line == position.Line || d.line == position.Line-1) {
			return true
		}
	}
	return false
}

// FuncDirective reports whether the function's doc comment carries the
// named directive.
func FuncDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, directivePrefix+name) {
			return true
		}
	}
	return false
}

// PathIn reports whether the package's import path ends with one of the
// given suffixes — the enrolment test the production analyzers use so
// they hit this module's packages without hard-coding the module path.
func (p *Package) PathIn(suffixes ...string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(p.ImportPath, s) {
			return true
		}
	}
	return false
}
