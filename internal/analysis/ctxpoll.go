package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// loopPackages enrolls the packages whose loops execute solver work.
// Every registry method promises context cancellation; an unbounded
// loop that never observes ctx breaks that promise exactly where a
// stuck solve is most expensive (the serve admission gate holds a slot
// until the solver yields).
var loopPackages = []string{
	"internal/core",
	"internal/kaczmarz",
	"internal/lsq",
	"internal/distmem",
	"internal/method",
	// The prep store's background writer drains a queue the request
	// path feeds; its loops must stay provably terminable or Close
	// would hang the daemon's shutdown.
	"internal/store",
	// The fault layer sits inside store and distmem hot paths; any loop
	// it grows must stay provably bounded for the same reasons.
	"internal/fault",
}

// CtxPoll requires every `for { ... }` loop (nil condition) in the
// solver packages to stay honestly terminable: the body must poll
// ctx.Err()/ctx.Done(), or be one of two provably bounded shapes that
// are accepted automatically — a CAS retry loop (the loop exits once
// the compare-and-swap lands) and a drain loop whose select has a
// default arm that returns or breaks. Loops bounded by other local
// progress (a claimed counter reaching its budget) carry a
// `//asyrgs:boundedloop <why>` directive.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc: "require unbounded for loops in solver packages to reach a " +
		"ctx.Err()/ctx.Done() check, a bounded CAS/drain shape, or a " +
		"//asyrgs:boundedloop justification",
	Run: runCtxPoll,
}

func runCtxPoll(pass *Pass) error {
	pkg := pass.Pkg
	if !pkg.PathIn(loopPackages...) && !pkg.OptedIn("ctxpoll") {
		return nil
	}
	pass.WalkStack(func(n ast.Node, _ []ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if pkg.DirectiveAt(loop.Pos(), "boundedloop") {
			return true
		}
		if loopIsCancellable(pkg, loop) {
			return true
		}
		pass.Reportf(loop.Pos(),
			"unbounded for loop never polls ctx.Err()/ctx.Done(); solver loops must stay cancellable (//asyrgs:boundedloop <why> if bounded by local progress)")
		return true
	})
	return nil
}

// loopIsCancellable scans the loop body for an accepted termination
// witness.
func loopIsCancellable(pkg *Package, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// ctx.Err() / ctx.Done() / <-ctx.Done() on a context.Context.
			if n.Sel.Name == "Err" || n.Sel.Name == "Done" {
				if isContext(pkg.Info.TypeOf(n.X)) {
					found = true
				}
			}
			// CAS retry loop: terminates when the swap lands.
			if strings.HasPrefix(n.Sel.Name, "CompareAndSwap") {
				found = true
			}
		case *ast.Ident:
			if strings.HasPrefix(n.Name, "CompareAndSwap") {
				found = true
			}
		case *ast.SelectStmt:
			// Drain loop: a default arm that leaves the loop bounds it
			// by the queue's current backlog.
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm != nil {
					continue
				}
				for _, s := range cc.Body {
					switch s := s.(type) {
					case *ast.ReturnStmt:
						found = true
					case *ast.BranchStmt:
						if s.Tok.String() == "break" {
							found = true
						}
					}
				}
			}
		}
		return !found
	})
	return found
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
