package analysis

// All returns every analyzer in the suite, in stable order. cmd/asyvet
// derives its per-analyzer disable flags from this list.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		NoAllocWarm,
		PoolPut,
		BlockingSend,
		CtxPoll,
	}
}
