package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sync"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	dirsOnce sync.Once
	dirs     []directive
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves patterns with `go list` run in dir, then parses and
// type-checks every matched package with the source importer, so the
// loader works offline against the module and the standard library
// alone. The process working directory must be inside the module for
// intra-module imports to resolve (the source importer defers to the go
// command for module-aware path resolution).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	conf := types.Config{Importer: imp}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: typecheck %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// goList shells out to `go list -json` and decodes the object stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}
