// Package analysis is a self-contained static-analysis layer in the
// spirit of golang.org/x/tools/go/analysis, built only on the standard
// library so it carries no module dependencies. It exists to turn this
// repository's runtime invariants — Philox-pure randomness, zero-alloc
// warm paths, balanced pool Get/Put, non-blocking distmem sends, and
// cancellable solver loops — into build-time gates: each past incident
// class (the PR 3 send-retry deadlock, the PR 6 leader-cancel prep
// poisoning) gets an analyzer that rejects the pattern before it ships.
//
// The cmd/asyvet multichecker runs every analyzer over the module; the
// fixtures under testdata/src exercise each one against seeded positive
// and negative cases through the analysistest subpackage.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// An Analyzer describes one invariant checker. Run inspects a single
// type-checked package through its Pass and reports findings with
// Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-paragraph description shown by asyvet -help.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, pinned to a file position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the go-vet-style one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// A Pass connects one analyzer run to one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the packages and returns every
// diagnostic, sorted by file, line, column and analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// stackVisitor drives WalkStack through ast.Walk while maintaining the
// ancestor stack.
type stackVisitor struct {
	stack []ast.Node
	fn    func(n ast.Node, stack []ast.Node) bool
}

func (v *stackVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	if !v.fn(n, v.stack) {
		return nil // skip the subtree; nothing was pushed
	}
	v.stack = append(v.stack, n)
	return v
}

// WalkStack traverses every file of the pass's package in depth-first
// order. fn receives each node together with its ancestor stack
// (outermost first, not including the node itself); returning false
// skips the node's children.
func (p *Pass) WalkStack(fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Walk(&stackVisitor{fn: fn}, f)
	}
}
