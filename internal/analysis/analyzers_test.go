package analysis_test

import (
	"testing"

	"github.com/asynclinalg/asyrgs/internal/analysis"
	"github.com/asynclinalg/asyrgs/internal/analysis/analysistest"
)

// Each analyzer runs against its seeded fixture package: every line
// carrying a `// want` comment must fire (positives) and every other
// line must stay silent (negatives).

func TestDeterminismFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/determinism", analysis.Determinism)
}

func TestNoAllocWarmFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/noallocwarm", analysis.NoAllocWarm)
}

func TestPoolPutFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/poolput", analysis.PoolPut)
}

func TestBlockingSendFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/blockingsend", analysis.BlockingSend)
}

func TestCtxPollFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/ctxpoll", analysis.CtxPoll)
}

// TestAllStable pins the analyzer set: cmd/asyvet derives its disable
// flags from this list, so a rename is a CLI-breaking change.
func TestAllStable(t *testing.T) {
	want := []string{"determinism", "noallocwarm", "poolput", "blockingsend", "ctxpoll"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s must carry Doc and Run", a.Name)
		}
	}
}
