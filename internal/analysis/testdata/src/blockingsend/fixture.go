// Package sendfix seeds the blockingsend analyzer fixtures.
//
//asyrgs:check blockingsend
package sendfix

type update struct {
	idx   int
	delta float64
}

// BadBareSend is the PR 3 deadlock shape: an unconditional send that
// stalls the worker the moment the peer inbox is full.
func BadBareSend(inbox chan update, u update) {
	inbox <- u // want `blocking channel send outside a multi-arm select`
}

// BadSingleArm dresses the same stall in a select with no escape hatch.
func BadSingleArm(inbox chan update, u update) {
	select {
	case inbox <- u: // want `blocking channel send outside a multi-arm select`
	}
}

// GoodRetryDrain is the repaired shape: attempt the send, and on a full
// inbox fall through to drain our own queue before retrying.
func GoodRetryDrain(inbox, ours chan update, u update) {
	for delivered := false; !delivered; {
		select {
		case inbox <- u:
			delivered = true
		default:
			drain(ours)
		}
	}
}

// GoodCancelArm pairs the send with a termination arm.
func GoodCancelArm(inbox chan update, done chan struct{}, u update) {
	select {
	case inbox <- u:
	case <-done:
	}
}

func drain(ch chan update) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}
