// Package asyvetbad is the deliberately broken fixture for the
// cmd/asyvet integration test. It opts into every analyzer and plants
// exactly one violation per analyzer at a line the test pins down, so
// the test can assert the multichecker's exit code, its text report,
// and its -json shape end to end. Keep line numbers stable: the
// integration test asserts them.
//
//asyrgs:check determinism
//asyrgs:check noallocwarm
//asyrgs:check poolput
//asyrgs:check blockingsend
//asyrgs:check ctxpoll
package asyvetbad

import (
	"math/rand"
	"sync"
)

var itemPool sync.Pool

// Determinism reaches for the banned global generator.
func Determinism() float64 { return rand.Float64() }

// NoAlloc claims a zero-alloc contract and breaks it.
//
//asyrgs:noalloc
func NoAlloc(n int) []float64 { return make([]float64, n) }

// PoolLeak takes from the pool of a package that never calls Put.
func PoolLeak() any { return itemPool.Get() }

// BlockingSend stalls unconditionally on a full channel.
func BlockingSend(ch chan int, v int) { ch <- v }

// Spin loops forever with no cancellation poll.
func Spin(f func()) {
	for {
		f()
	}
}
