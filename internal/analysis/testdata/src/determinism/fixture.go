// Package determfix seeds the determinism analyzer fixtures.
//
//asyrgs:check determinism
package determfix

import (
	"math/rand" // want `deterministic package imports math/rand`
	"time"
)

var weights = map[string]float64{"diag": 2, "offdiag": 1}

// BadDraw uses the banned generator and the wall clock.
func BadDraw(out []float64) {
	out[0] = rand.Float64()
	start := time.Now() // want `wall-clock read time\.Now`
	_ = start
	var since = time.Since // want `wall-clock read time\.Since`
	_ = since
}

// BadOrder lets map iteration order reach the output slice.
func BadOrder(out []float64) {
	i := 0
	for _, w := range weights { // want `map iteration order is nondeterministic`
		out[i] = w
		i++
	}
}

// GoodOrder folds the map commutatively; order cannot reach the sum.
func GoodOrder() float64 {
	var sum float64
	//asyrgs:orderindep addition over the whole map is commutative
	for _, w := range weights {
		sum += w
	}
	return sum
}

// GoodTime keeps non-Now time uses: durations as data are fine.
func GoodTime(d time.Duration) time.Duration {
	return 2 * d
}
