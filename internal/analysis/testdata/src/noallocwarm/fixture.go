// Package noallocfix seeds the noallocwarm analyzer fixtures.
package noallocfix

type scratch struct {
	buf []float64
}

// BadWarm is annotated warm but allocates six different ways.
//
//asyrgs:noalloc
func BadWarm(dst []float64, n int) []float64 {
	tmp := make([]float64, n) // want `make in noalloc function BadWarm`
	dst = append(dst, tmp...) // want `append in noalloc function BadWarm`
	p := new(scratch)         // want `new in noalloc function BadWarm`
	p.buf = []float64{1, 2}   // want `slice literal in noalloc function BadWarm`
	q := &scratch{}           // want `&composite literal in noalloc function BadWarm`
	_ = q
	f := func() { _ = p } // want `closure in noalloc function BadWarm`
	f()
	return dst
}

// BadBoxing boxes a value into an interface and concatenates strings.
//
//asyrgs:noalloc
func BadBoxing(v float64, a, b string) (any, string) {
	boxed := any(v)     // want `conversion to interface .* in noalloc function BadBoxing boxes its operand`
	return boxed, a + b // want `string concatenation in noalloc function BadBoxing`
}

// BadSpawn launches a goroutine from a warm path.
//
//asyrgs:noalloc
func BadSpawn(done chan struct{}) {
	go notify(done) // want `go statement in noalloc function BadSpawn`
}

func notify(done chan struct{}) { close(done) }

// GoodWarm writes in place: nothing allocates.
//
//asyrgs:noalloc
func GoodWarm(dst []float64, s *scratch) {
	for i := range dst {
		dst[i] = 0
	}
	s.buf = dst
}

// GoodColdBranch documents its pool-miss allocation.
//
//asyrgs:noalloc
func GoodColdBranch(s *scratch, n int) []float64 {
	if cap(s.buf) < n {
		//asyrgs:alloc-ok cold resize; the warm path reuses the buffer
		s.buf = make([]float64, n)
	}
	return s.buf[:n]
}

// Unannotated is not a warm path; allocations are fine here.
func Unannotated(n int) []float64 {
	return make([]float64, n)
}
