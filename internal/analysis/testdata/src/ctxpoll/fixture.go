// Package ctxfix seeds the ctxpoll analyzer fixtures.
//
//asyrgs:check ctxpoll
package ctxfix

import (
	"context"
	"sync/atomic"
)

// BadSpin can run forever with no way to cancel it.
func BadSpin(ch chan float64, out []float64) {
	i := 0
	for { // want `unbounded for loop never polls ctx\.Err\(\)/ctx\.Done\(\)`
		v := <-ch
		out[i%len(out)] = v
		i++
	}
}

// GoodPoll checks the context every iteration.
func GoodPoll(ctx context.Context, ch chan float64, out []float64) {
	i := 0
	for {
		if ctx.Err() != nil {
			return
		}
		out[i%len(out)] = <-ch
		i++
	}
}

// GoodDoneArm selects on cancellation.
func GoodDoneArm(ctx context.Context, ch chan float64) {
	for {
		select {
		case <-ch:
		case <-ctx.Done():
			return
		}
	}
}

// GoodDrain empties a queue and leaves: bounded by the backlog.
func GoodDrain(ch chan float64) float64 {
	var sum float64
	for {
		select {
		case v := <-ch:
			sum += v
		default:
			return sum
		}
	}
}

// GoodCAS is the lock-free retry shape: it exits once the swap lands.
func GoodCAS(max *atomic.Uint64, v uint64) {
	for {
		cur := max.Load()
		if v <= cur || max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// GoodBounded is bounded by local progress and says why.
func GoodBounded(claims *atomic.Uint64, end uint64, out []float64) {
	//asyrgs:boundedloop terminates once the claimed counter passes end
	for {
		base := claims.Add(8) - 8
		if base >= end {
			return
		}
		for j := base; j < base+8 && j < end; j++ {
			out[j] = float64(j)
		}
	}
}
