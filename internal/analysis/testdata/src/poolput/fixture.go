// Package poolfix seeds the poolput analyzer fixtures.
package poolfix

import "sync"

type item struct {
	buf []byte
}

// leakPool is Get from but never Put back anywhere in the package.
var leakPool sync.Pool

// okPool is balanced at package level; the per-function cases below
// exercise the return-path rule against it.
var okPool = sync.Pool{New: func() any { return new(item) }}

// sink is a package-level home a pooled value must never escape to.
var sink *item

// BadLeak acquires from a pool that has no Put in the package, and
// consumes the value locally without releasing it.
func BadLeak() {
	v := leakPool.Get() // want `has Get but no Put anywhere in the package` `neither returned, deferred-Put, nor Put`
	_ = v
}

// BadEarlyReturn misses the release on its error path.
func BadEarlyReturn(fail bool) error {
	v := okPool.Get().(*item)
	if fail {
		return errFailed // want `return path without okPool\.Put`
	}
	okPool.Put(v)
	return nil
}

// BadEscape parks a pooled value in a package-level variable.
func BadEscape() {
	v := okPool.Get().(*item)
	sink = v // want `escapes to package-level sink`
	okPool.Put(v)
}

// GoodDefer releases on every path through a deferred Put.
func GoodDefer(fail bool) error {
	v := okPool.Get().(*item)
	defer okPool.Put(v)
	if fail {
		return errFailed
	}
	v.buf = v.buf[:0]
	return nil
}

// GoodLinear releases before its single return.
func GoodLinear() int {
	v := okPool.Get().(*item)
	n := len(v.buf)
	okPool.Put(v)
	return n
}

// GoodTransfer hands ownership to the caller (the acquire-helper
// idiom); the package-level balance covers the release.
func GoodTransfer() *item {
	v, ok := okPool.Get().(*item)
	if !ok {
		return new(item)
	}
	return v
}

type poolError string

func (e poolError) Error() string { return string(e) }

const errFailed = poolError("failed")
