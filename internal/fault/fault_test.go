package fault

import (
	"testing"
	"time"
)

// TestDeterministicSchedule pins the core property: the fault schedule
// is a pure function of (config, site, op-index).
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, ErrRate: 0.2, DropRate: 0.1, CorruptRate: 0.05, LatencyRate: 0.3, Latency: time.Millisecond}
	a := New(cfg, "store.get")
	b := New(cfg, "store.get")
	for i := uint64(0); i < 4096; i++ {
		if a.DecideAt(i) != b.DecideAt(i) {
			t.Fatalf("schedule diverged at op %d", i)
		}
	}
}

// TestSitesIndependent verifies two sites under one seed draw distinct
// schedules (folding the site label into the stream key works).
func TestSitesIndependent(t *testing.T) {
	cfg := Config{Seed: 7, ErrRate: 0.5}
	g := New(cfg, "store.get")
	p := New(cfg, "store.put")
	same := 0
	const n = 4096
	for i := uint64(0); i < n; i++ {
		if g.DecideAt(i).Err == p.DecideAt(i).Err {
			same++
		}
	}
	if same == n {
		t.Fatalf("sites store.get and store.put share an identical %d-op schedule", n)
	}
}

// TestRatesConverge checks the injected rates land near their targets
// over a long schedule — the decisions are real Bernoulli draws, not a
// fixed stride.
func TestRatesConverge(t *testing.T) {
	cfg := Config{Seed: 3, ErrRate: 0.2, DropRate: 0.1}
	in := New(cfg, "rates")
	const n = 100000
	var errs, drops int
	for i := uint64(0); i < n; i++ {
		d := in.DecideAt(i)
		if d.Err {
			errs++
		}
		if d.Drop {
			drops++
		}
	}
	if got := float64(errs) / n; got < 0.18 || got > 0.22 {
		t.Errorf("err rate %.4f, want ~0.20", got)
	}
	if got := float64(drops) / n; got < 0.08 || got > 0.12 {
		t.Errorf("drop rate %.4f, want ~0.10", got)
	}
}

// TestNilInjector pins the nil-receiver contract: a disabled site needs
// no guards anywhere.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	if d := in.Next(); !d.Clean() {
		t.Fatalf("nil injector decided %+v", d)
	}
	in.SleepFor(Decision{Delay: true}) // must not panic or sleep
	in.RecordErr()
	in.RecordDrop()
	in.RecordCorrupt()
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector stats %+v", s)
	}
	if New(Config{}, "off") != nil {
		t.Fatal("New with a zero config must return the nil injector")
	}
}

// TestSleeperInjected verifies injected latency flows through the
// configured sleeper (and never a real sleep in this test).
func TestSleeperInjected(t *testing.T) {
	var slept []time.Duration
	cfg := Config{
		Seed: 1, LatencyRate: 1, Latency: 250 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	in := New(cfg, "sleepy")
	d := in.Next()
	if !d.Delay {
		t.Fatal("LatencyRate=1 decision carries no delay")
	}
	in.SleepFor(d)
	in.SleepFor(Decision{}) // no delay: sleeper must not fire
	if len(slept) != 1 || slept[0] != 250*time.Millisecond {
		t.Fatalf("sleeper calls %v, want one 250ms call", slept)
	}
	if got := in.Stats().Delays; got != 1 {
		t.Fatalf("Delays = %d, want 1", got)
	}
}

// TestAuxPopulated checks faulted decisions carry auxiliary randomness
// and clean ones do not burn a draw.
func TestAuxPopulated(t *testing.T) {
	in := New(Config{Seed: 9, CorruptRate: 1}, "aux")
	d0, d1 := in.DecideAt(0), in.DecideAt(1)
	if !d0.Corrupt || !d1.Corrupt {
		t.Fatal("CorruptRate=1 decisions not corrupt")
	}
	if d0.Aux == d1.Aux {
		t.Fatal("aux randomness identical across ops")
	}
}

// TestNextSequences verifies Next advances the shared counter and the
// ops stat tracks it.
func TestNextSequences(t *testing.T) {
	in := New(Config{Seed: 5, ErrRate: 0.5}, "seq")
	want := make([]Decision, 10)
	for i := range want {
		want[i] = in.DecideAt(uint64(i))
	}
	for i := range want {
		if got := in.Next(); got != want[i] {
			t.Fatalf("Next()[%d] = %+v, want %+v", i, got, want[i])
		}
	}
	if got := in.Stats().Ops; got != 10 {
		t.Fatalf("Ops = %d, want 10", got)
	}
}
