// Package fault is the deterministic fault-injection layer behind the
// repository's resilience machinery: a per-site Injector that decides
// whether a given operation fails, loses its payload, corrupts it, or is
// delayed — as a pure function of (stream, op-index), the same Philox
// random-access discipline the solvers use for their direction draws.
// Two runs with the same seed inject byte-identical fault schedules, so
// chaos tests can assert exact accounting ("the store saw 37 injected
// errors and retried 31 of them") instead of eyeballing logs.
//
// The package deliberately owns no wall clock: injected latency is a
// Duration handed to an injectable sleeper (defaulting to time.Sleep),
// never a time.Now read, so the solver packages that consume injectors
// (internal/distmem, internal/store) stay clean under the repository's
// determinism analyzer. Callers that must not sleep (solver hot loops,
// unit tests) either ignore Decision.Delay or install a no-op sleeper.
//
// Sites: each fault site (a store backend's Get path, a distmem rank's
// outbox) constructs its own Injector from a shared Config plus a site
// label; the label is folded into the stream key, so two sites never
// share a fault schedule even under one seed.
package fault

import (
	"errors"
	"sync/atomic"
	"time"

	"github.com/asynclinalg/asyrgs/internal/rng"
)

// ErrInjected is the error every fault site surfaces for an injected
// failure, so consuming layers (and their tests) can tell manufactured
// faults from real ones with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// Config declares the fault mix one site should inject. The zero value
// injects nothing. Rates are probabilities in [0,1], evaluated
// independently per operation — one op can simultaneously be delayed and
// then fail, the way a slow disk times out.
type Config struct {
	// Seed keys the fault schedule; the site label is folded in, so one
	// seed drives distinct per-site schedules.
	Seed uint64
	// ErrRate is the probability an operation fails with ErrInjected.
	ErrRate float64
	// DropRate is the probability an operation's payload is silently
	// lost (an un-delivered message, a write that never lands).
	DropRate float64
	// CorruptRate is the probability an operation's payload is
	// bit-flipped in flight.
	CorruptRate float64
	// LatencyRate is the probability an operation is delayed by Latency.
	LatencyRate float64
	// Latency is the injected delay when the latency draw fires.
	Latency time.Duration
	// Sleep performs injected delays; nil means time.Sleep. Tests and
	// solver-adjacent sites install a no-op or virtual sleeper so a
	// fault schedule never costs wall time where it must not.
	Sleep func(time.Duration)
}

// Enabled reports whether the config can inject anything at all; sites
// use it to skip injector plumbing entirely on the common no-fault path.
func (c Config) Enabled() bool {
	return c.ErrRate > 0 || c.DropRate > 0 || c.CorruptRate > 0 ||
		(c.LatencyRate > 0 && c.Latency > 0)
}

// Decision is the fault verdict for one operation. Fields are
// independent draws; Aux is 64 bits of schedule-derived randomness for
// the caller's own use (which bit to flip, which byte to truncate at).
type Decision struct {
	Err     bool
	Drop    bool
	Corrupt bool
	Delay   bool
	Aux     uint64
}

// Clean reports a no-fault decision, the fast path's one branch.
func (d Decision) Clean() bool {
	return !d.Err && !d.Drop && !d.Corrupt && !d.Delay
}

// Stats is a snapshot of one injector's applied-fault counters. Ops
// counts sequenced operations (Next calls); the fault counters count
// faults the *site reported applying* (RecordErr etc.), not decisions —
// a corruption decided for a Get that failed anyway was never applied
// and is never counted, which is what lets chaos harnesses reconcile
// injector counts against the consuming layer's error counters exactly.
type Stats struct {
	Ops      uint64 `json:"ops"`
	Errs     uint64 `json:"errs"`
	Drops    uint64 `json:"drops"`
	Corrupts uint64 `json:"corrupts"`
	Delays   uint64 `json:"delays"`
}

// Injector decides faults for one site. The decision for op-index i is a
// pure function of (config, site, i): replayable, platform-independent,
// and computable by any goroutine without coordination. The only mutable
// state is the op counter used by Next and the applied-fault counters —
// both atomic, so an Injector is safe for concurrent use.
type Injector struct {
	cfg    Config
	stream rng.Stream
	aux    rng.Stream

	ops      atomic.Uint64
	errs     atomic.Uint64
	drops    atomic.Uint64
	corrupts atomic.Uint64
	delays   atomic.Uint64
}

// New builds the injector for one fault site. A nil receiver is the
// universal "no faults" injector: every method on a nil *Injector is
// safe and decides/records nothing, so call sites need no nil guards.
// New returns nil when cfg injects nothing.
func New(cfg Config, site string) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	seed := cfg.Seed ^ fnv64a(site)
	return &Injector{
		cfg:    cfg,
		stream: rng.NewStream(seed),
		// A distinct stream for Aux keeps the caller's auxiliary
		// randomness (bit positions, truncation offsets) uncorrelated
		// with the fault decisions themselves.
		aux: rng.NewStream(seed ^ 0xA5A5A5A5A5A5A5A5),
	}
}

// fnv64a is the FNV-1a hash of the site label — hash/maphash would be
// process-seeded and break cross-run determinism.
func fnv64a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Enabled reports whether this injector can inject anything.
func (in *Injector) Enabled() bool { return in != nil }

// DecideAt returns the fault verdict for op-index i: a pure function,
// so callers with a natural operation index (distmem's per-message
// (iteration, peer) coordinates) get replay-exact schedules without
// touching the shared counter.
func (in *Injector) DecideAt(i uint64) Decision {
	if in == nil {
		return Decision{}
	}
	b := in.stream.BlockAt(i)
	c := in.cfg
	d := Decision{
		Err:     uniform32(b[0]) < c.ErrRate,
		Drop:    uniform32(b[1]) < c.DropRate,
		Corrupt: uniform32(b[2]) < c.CorruptRate,
		Delay:   c.Latency > 0 && uniform32(b[3]) < c.LatencyRate,
	}
	if !d.Clean() {
		d.Aux = in.aux.Uint64At(i)
	}
	return d
}

// Next sequences one operation on the shared counter and returns its
// verdict — the call shape for sites without a natural op index (a
// store backend serving concurrent requests). Ordering between
// concurrent callers is whatever the atomic increment serializes, so
// Next schedules are deterministic only for serial callers; DecideAt is
// the fully deterministic form.
func (in *Injector) Next() Decision {
	if in == nil {
		return Decision{}
	}
	return in.DecideAt(in.ops.Add(1) - 1)
}

// SleepFor performs one injected delay through the configured sleeper
// and counts it. No-op when the decision carries no delay.
func (in *Injector) SleepFor(d Decision) {
	if in == nil || !d.Delay {
		return
	}
	in.delays.Add(1)
	if in.cfg.Sleep != nil {
		in.cfg.Sleep(in.cfg.Latency)
		return
	}
	time.Sleep(in.cfg.Latency)
}

// RecordErr counts one injected error the site actually surfaced.
func (in *Injector) RecordErr() {
	if in != nil {
		in.errs.Add(1)
	}
}

// RecordDrop counts one payload the site actually lost.
func (in *Injector) RecordDrop() {
	if in != nil {
		in.drops.Add(1)
	}
}

// RecordCorrupt counts one payload the site actually corrupted.
func (in *Injector) RecordCorrupt() {
	if in != nil {
		in.corrupts.Add(1)
	}
}

// Stats snapshots the applied-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Ops:      in.ops.Load(),
		Errs:     in.errs.Load(),
		Drops:    in.drops.Load(),
		Corrupts: in.corrupts.Load(),
		Delays:   in.delays.Load(),
	}
}

// uniform32 maps one 32-bit lane to [0,1). Four independent lanes per
// 128-bit block give the four fault classes independent coin flips from
// one Philox evaluation.
func uniform32(x uint32) float64 {
	return float64(x) / (1 << 32)
}
