package claim

import "testing"

func TestExplicitWins(t *testing.T) {
	if got := SizeFor(7, 1_000_000, 8, 64); got != 7 {
		t.Fatalf("explicit chunk: got %d, want 7", got)
	}
	if got := Size(300, 10, 1); got != 300 {
		t.Fatalf("explicit chunk may exceed the cap: got %d, want 300", got)
	}
}

func TestLowerBoundOne(t *testing.T) {
	if got := SizeFor(0, 10, 64, 64); got != 1 {
		t.Fatalf("tiny budgets must claim single iterations: got %d", got)
	}
}

func TestLegacyCapWithoutFootprint(t *testing.T) {
	if got := Size(0, 1<<30, 1); got != 256 {
		t.Fatalf("rowBytes=0 must keep the legacy 256 cap: got %d", got)
	}
	if MaxChunk(0) != 256 || MaxChunk(-5) != 256 {
		t.Fatal("MaxChunk must fall back to 256 without a footprint estimate")
	}
}

func TestCacheAwareCapShrinksWithRowBytes(t *testing.T) {
	small := MaxChunk(64)
	big := MaxChunk(64 << 10)
	if small < big {
		t.Fatalf("cap must not grow with row footprint: %d < %d", small, big)
	}
	for _, rb := range []int{1, 64, 4 << 10, 1 << 20} {
		c := MaxChunk(rb)
		if c < minChunkCap || c > maxChunkCap {
			t.Fatalf("MaxChunk(%d) = %d outside [%d, %d]", rb, c, minChunkCap, maxChunkCap)
		}
	}
	// A huge per-iteration footprint must pin the cap at the floor.
	if got := MaxChunk(1 << 30); got != minChunkCap {
		t.Fatalf("huge rows: got %d, want %d", got, minChunkCap)
	}
}

func TestSizeForUsesCap(t *testing.T) {
	rb := 1 << 20 // forces the minChunkCap floor regardless of probed L2
	if got := SizeFor(0, 1<<40, 1, rb); got != minChunkCap {
		t.Fatalf("huge budget must clamp to the cache-aware cap: got %d", got)
	}
}

func TestParseCacheSize(t *testing.T) {
	cases := map[string]int{
		"512K":  512 << 10,
		"1024K": 1 << 20,
		"2M":    2 << 20,
		"1G":    1 << 30,
		"65536": 65536,
		"":      0,
		"junk":  0,
		"-4K":   0,
		"K":     0,
		"0":     0,
	}
	for in, want := range cases {
		if got := parseCacheSize(in); got != want {
			t.Fatalf("parseCacheSize(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestL2ProbeMemoizedAndPositive(t *testing.T) {
	a, b := L2CacheBytes(), L2CacheBytes()
	if a != b || a <= 0 {
		t.Fatalf("L2CacheBytes must be positive and stable: %d, %d", a, b)
	}
}

func TestProbeL2MissingDir(t *testing.T) {
	if got := probeL2(t.TempDir() + "/nonexistent"); got != fallbackL2 {
		t.Fatalf("missing sysfs must fall back: got %d", got)
	}
}
