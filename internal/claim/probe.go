package claim

import (
	"os"
	"strconv"
	"strings"
	"sync"
)

// Cache-topology-aware chunk cap. A worker that claims a chunk of k
// iterations touches k·rowBytes of matrix/iterate data plus 4·k bytes of
// bulk-generated int32 directions before returning to the shared counter.
// Capping k so that footprint fits in half the per-core L2 (the other
// half is left to the iterate vector's working set and the neighbor
// hyperthread) keeps the streamed rows cache-resident across the
// direction-generation and execution passes of one chunk instead of
// evicting them in between.

const (
	// fallbackL2 is assumed when sysfs has no cache topology (non-Linux,
	// containers with masked sysfs): 256 KiB, the common per-core floor.
	fallbackL2 = 256 << 10

	// minChunkCap keeps tiny-L2 (or huge-row) systems from degrading to
	// per-iteration CAS traffic; maxChunkCap bounds tail imbalance on
	// huge caches the same way the legacy clamp did.
	minChunkCap = 16
	maxChunkCap = 4096
)

var l2Once struct {
	sync.Once
	bytes int
}

// L2CacheBytes returns the per-core L2 data-cache size, probed once from
// /sys/devices/system/cpu/cpu0/cache and memoized; fallbackL2 when the
// probe finds nothing. The probe allocates only on first use, keeping
// warm solve paths allocation-free.
func L2CacheBytes() int {
	l2Once.Do(func() {
		l2Once.bytes = probeL2("/sys/devices/system/cpu/cpu0/cache")
	})
	return l2Once.bytes
}

// probeL2 scans one CPU's cache index directories for a level-2 unified
// or data cache and parses its size ("512K", "1024K", "1M", plain bytes).
func probeL2(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fallbackL2
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "index") {
			continue
		}
		base := dir + "/" + e.Name()
		if readTrimmed(base+"/level") != "2" {
			continue
		}
		switch readTrimmed(base + "/type") {
		case "Unified", "Data":
		default:
			continue
		}
		if n := parseCacheSize(readTrimmed(base + "/size")); n > 0 {
			return n
		}
	}
	return fallbackL2
}

func readTrimmed(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

// parseCacheSize parses sysfs cache sizes: "512K", "2M", "1G" or a plain
// byte count. Returns 0 on anything unparseable.
func parseCacheSize(s string) int {
	if s == "" {
		return 0
	}
	mult := 1
	switch s[len(s)-1] {
	case 'K', 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'M', 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'G', 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0
	}
	return n * mult
}

// MaxChunk returns the chunk-size cap for a per-iteration footprint of
// rowBytes: half the L2 divided by the iteration footprint (row data plus
// the 4-byte direction entry), clamped to [minChunkCap, maxChunkCap].
// rowBytes <= 0 returns the legacy fixed cap of 256.
func MaxChunk(rowBytes int) int {
	if rowBytes <= 0 {
		return 256
	}
	c := (L2CacheBytes() / 2) / (rowBytes + 4)
	switch {
	case c < minChunkCap:
		return minChunkCap
	case c > maxChunkCap:
		return maxChunkCap
	}
	return c
}
