// Package claim sizes the chunked iteration-claiming granularity shared
// by the asynchronous coordinate solvers (core, kaczmarz, lsq): a
// worker grabs a block of global iteration indices from the shared
// atomic counter per CAS instead of one, taking the counter off the
// critical path. One definition keeps the heuristic from drifting
// across the solver families.
package claim

// Size resolves the claiming granularity. An explicit positive size
// wins; otherwise the chunk is total/(workers·16) clamped to [1, 256] —
// large enough that the shared counter stops being the bottleneck,
// small enough that P workers strand at most a few percent of the
// budget in partially-unfinished chunks at the tail.
func Size(explicit int, total uint64, workers int) int {
	if explicit > 0 {
		return explicit
	}
	if workers < 1 {
		workers = 1
	}
	k := int(total / uint64(workers*16))
	switch {
	case k < 1:
		return 1
	case k > 256:
		return 256
	}
	return k
}
