// Package claim sizes the chunked iteration-claiming granularity shared
// by the asynchronous coordinate solvers (core, kaczmarz, lsq): a
// worker grabs a block of global iteration indices from the shared
// atomic counter per CAS instead of one, taking the counter off the
// critical path. One definition keeps the heuristic from drifting
// across the solver families.
package claim

// Size resolves the claiming granularity with the legacy fixed [1, 256]
// clamp, for callers that cannot estimate their per-iteration footprint.
// It is SizeFor with rowBytes = 0.
func Size(explicit int, total uint64, workers int) int {
	return SizeFor(explicit, total, workers, 0)
}

// SizeFor resolves the claiming granularity. An explicit positive size
// wins; otherwise the chunk is total/(workers·16) — large enough that the
// shared counter stops being the bottleneck, small enough that P workers
// strand at most a few percent of the budget in partially-unfinished
// chunks at the tail — clamped to [1, MaxChunk(rowBytes)] so the
// bulk-generated direction buffer plus the row slices one chunk touches
// stay resident in L2 while the worker streams through them (see
// probe.go). rowBytes is the caller's estimate of bytes touched per
// iteration (mean row values + indices + iterate/rhs entries); rowBytes
// <= 0 falls back to the legacy 256-iteration cap.
func SizeFor(explicit int, total uint64, workers int, rowBytes int) int {
	if explicit > 0 {
		return explicit
	}
	if workers < 1 {
		workers = 1
	}
	k := int(total / uint64(workers*16))
	cap := MaxChunk(rowBytes)
	switch {
	case k < 1:
		return 1
	case k > cap:
		return cap
	}
	return k
}
