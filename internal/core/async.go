package core

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/asynclinalg/asyrgs/internal/atomicfloat"
	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// AsyncSweeps runs sweeps·n asynchronous iterations of AsyRGS with
// Options.Workers goroutines sharing the iterate x, then returns once every
// worker has drained. This is the inconsistent-read execution the paper
// evaluates: entries of x are read with plain loads while other workers
// update them, writes are atomic CAS adds (unless Options.NonAtomic), and
// there is no coordination beyond the global iteration counter that hands
// out direction indices.
//
// Because direction d_j is a pure function of (seed, j), the multiset of
// directions consumed is identical for every worker count; only the
// interleaving (the delays k(j)/K(j) of the governing iterations (8)/(9))
// changes. That is precisely the controlled comparison of the paper's §9.
func (s *Solver) AsyncSweeps(x, b []float64, sweeps int) {
	n := s.a.Rows
	if len(x) != n || len(b) != n {
		panic("core: AsyncSweeps shape mismatch")
	}
	workers := s.opts.Workers
	if workers <= 1 {
		s.Sweeps(x, b, sweeps)
		// A single worker never observes concurrent updates: every
		// iteration has delay zero. Recording them keeps the histogram
		// total invariant to the worker count.
		if s.opts.MeasureDelay {
			s.delayHist[0] += uint64(sweeps) * uint64(n)
		}
		return
	}
	total := uint64(sweeps) * uint64(n)
	start := s.next
	end := start + total

	if p := s.opts.SyncPeriod; p > 0 {
		// Occasional synchronization: run in barriers of p iterations.
		for lo := start; lo < end; lo += uint64(p) {
			hi := lo + uint64(p)
			if hi > end {
				hi = end
			}
			s.runAsyncRange(x, b, lo, hi, workers)
		}
	} else {
		s.runAsyncRange(x, b, start, end, workers)
	}
	s.next = end
	s.sweep += sweeps
}

// runAsyncRange executes global iterations [start,end) across the given
// number of workers and blocks until all have finished.
//
// In the default (uniform/weighted) modes the workers race over a shared
// iteration counter: whoever is scheduled claims the next index, so the
// budget is spent at the maximum rate the machine allows. In partitioned
// mode each worker instead receives its own contiguous slice of the index
// range: ownership ties coordinates to workers, so a shared counter would
// let a starved scheduler spend the whole budget inside one block. A
// per-worker budget guarantees every block receives its share regardless
// of scheduling — which is also how a distributed deployment behaves.
func (s *Solver) runAsyncRange(x, b []float64, start, end uint64, workers int) {
	stream := rng.NewStream(s.opts.Seed)
	smp := s.newSampler(true)
	chunk := s.chunkSize(end - start)
	var wg sync.WaitGroup
	if s.opts.Partitioned && workers > 1 {
		total := end - start
		var committed atomic.Uint64 // for delay measurement only
		for w := 0; w < workers; w++ {
			lo := start + uint64(w)*total/uint64(workers)
			hi := start + uint64(w+1)*total/uint64(workers)
			wg.Add(1)
			go func(w int, lo, hi uint64) {
				defer wg.Done()
				s.asyncWorkerOwned(x, b, stream, smp, lo, hi, w, chunk, &committed)
			}(w, lo, hi)
		}
		wg.Wait()
		return
	}
	var counter atomic.Uint64
	counter.Store(start)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.asyncWorker(x, b, stream, smp, &counter, end, w, chunk)
		}(w)
	}
	wg.Wait()
}

// asyncWorkerOwned runs the partitioned-mode inner loop: a fixed index
// slice [lo,hi) and single-writer updates within the worker's block. The
// owned range is walked chunk indices at a time so the direction buffer
// is generated in one pass per block, like the shared-counter path.
func (s *Solver) asyncWorkerOwned(x, b []float64, stream rng.Stream, smp sampler, lo, hi uint64, worker, chunk int, committed *atomic.Uint64) {
	a := s.a
	a32 := s.a32
	beta := s.beta
	nonAtomic := s.opts.NonAtomic
	measure := s.opts.MeasureDelay
	throttle := s.opts.Throttle
	picks := make([]int32, chunk)
	for base := lo; base < hi; base += uint64(chunk) {
		top := base + uint64(chunk)
		if top > hi {
			top = hi
		}
		m := int(top - base)
		smp.fill(stream, base, picks[:m], worker)
		for t := 0; t < m; t++ {
			j := base + uint64(t)
			if throttle != nil {
				throttle(worker, j)
			}
			r := int(picks[t])
			var dot float64
			switch {
			case a32 != nil && nonAtomic:
				dot = a32.RowDot(r, x)
			case a32 != nil:
				dot = a32.RowDotAtomic(r, x)
			case nonAtomic:
				dot = a.RowDot(r, x)
			default:
				dot = a.RowDotAtomic(r, x)
			}
			gamma := (b[r] - dot) * s.invD[r]
			if nonAtomic {
				x[r] += beta * gamma
			} else {
				atomicfloat.Add(&x[r], beta*gamma)
			}
			if measure {
				before := committed.Load()
				after := committed.Add(1)
				var d uint64
				if after > before+1 {
					d = after - before - 1
				}
				s.observeTau(d)
			}
		}
	}
}

// asyncWorker claims blocks of chunk iteration indices from the shared
// counter until the range is exhausted: one CAS per chunk instead of one
// per iteration, with the block's directions generated into a local
// buffer in a single pass. Each iteration is Algorithm 1's body. The
// direction consumed at global index j is unchanged by the chunking —
// the sampler is a pure function of (stream, j) — so every chunk size
// replays the identical direction multiset.
func (s *Solver) asyncWorker(x, b []float64, stream rng.Stream, smp sampler, counter *atomic.Uint64, end uint64, worker, chunk int) {
	a := s.a
	a32 := s.a32
	beta := s.beta
	nonAtomic := s.opts.NonAtomic
	measure := s.opts.MeasureDelay
	throttle := s.opts.Throttle
	picks := make([]int32, chunk)
	//asyrgs:boundedloop the claimed counter is monotone; every pass claims chunk>=1 indices and exits once base passes end
	for {
		base := counter.Add(uint64(chunk)) - uint64(chunk)
		if base >= end {
			return
		}
		top := base + uint64(chunk)
		if top > end {
			top = end
		}
		m := int(top - base)
		smp.fill(stream, base, picks[:m], worker)
		for t := 0; t < m; t++ {
			j := base + uint64(t)
			if throttle != nil {
				throttle(worker, j)
			}
			r := int(picks[t])
			// Read phase: other workers may commit updates mid-read — the
			// inconsistent-read model (iteration (9)). Atomic loads cost
			// nothing on mainstream hardware and keep the execution free of
			// data races; the NonAtomic ablation uses genuinely plain
			// accesses, reproducing the paper's §9 experiment exactly.
			var dot float64
			switch {
			case a32 != nil && nonAtomic:
				dot = a32.RowDot(r, x)
			case a32 != nil:
				dot = a32.RowDotAtomic(r, x)
			case nonAtomic:
				dot = a.RowDot(r, x)
			default:
				dot = a.RowDotAtomic(r, x)
			}
			gamma := (b[r] - dot) * s.invD[r]
			if nonAtomic {
				x[r] += beta * gamma
			} else {
				atomicfloat.Add(&x[r], beta*gamma)
			}
			if measure {
				// Updates committed by others while this iteration ran
				// bound the delay this iteration experienced:
				// τ̂ ≥ committed − j. Chunked claiming forces chunk = 1
				// here (see chunkSize), so the counter still counts
				// committed work.
				var d uint64
				if c := counter.Load(); c > j+1 {
					d = c - j - 1
				}
				s.observeTau(d)
			}
		}
	}
}

// observeTau raises the recorded max delay with a CAS loop and counts the
// observation into the power-of-two delay histogram.
func (s *Solver) observeTau(d uint64) {
	atomic.AddUint64(&s.delayHist[bits.Len64(d)], 1)
	for {
		cur := atomic.LoadUint64(&s.tau)
		if d <= cur || atomic.CompareAndSwapUint64(&s.tau, cur, d) {
			return
		}
	}
}

// AsyncSweepsDense is AsyncSweeps for a row-major multi-right-hand-side
// block: all columns share the direction sequence, and each coordinate
// update writes the Cols entries of row r (each atomically unless
// NonAtomic).
func (s *Solver) AsyncSweepsDense(x, b *vec.Dense, sweeps int) {
	n := s.a.Rows
	if x.Rows != n || b.Rows != n || x.Cols != b.Cols {
		panic("core: AsyncSweepsDense shape mismatch")
	}
	workers := s.opts.Workers
	if workers <= 1 {
		s.SweepsDense(x, b, sweeps)
		if s.opts.MeasureDelay {
			s.delayHist[0] += uint64(sweeps) * uint64(n)
		}
		return
	}
	total := uint64(sweeps) * uint64(n)
	start := s.next
	end := start + total
	run := func(lo, hi uint64) {
		stream := rng.NewStream(s.opts.Seed)
		smp := s.newSampler(true)
		chunk := s.chunkSize(hi - lo)
		var wg sync.WaitGroup
		if s.opts.Partitioned && workers > 1 {
			// Per-worker budgets for the same coverage reason as the
			// vector path (see runAsyncRange).
			span := hi - lo
			for w := 0; w < workers; w++ {
				wlo := lo + uint64(w)*span/uint64(workers)
				whi := lo + uint64(w+1)*span/uint64(workers)
				wg.Add(1)
				go func(w int, wlo, whi uint64) {
					defer wg.Done()
					var counter atomic.Uint64
					counter.Store(wlo)
					s.asyncWorkerDense(x, b, stream, smp, &counter, whi, w, chunk)
				}(w, wlo, whi)
			}
			wg.Wait()
			return
		}
		var counter atomic.Uint64
		counter.Store(lo)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s.asyncWorkerDense(x, b, stream, smp, &counter, hi, w, chunk)
			}(w)
		}
		wg.Wait()
	}
	if p := s.opts.SyncPeriod; p > 0 {
		for lo := start; lo < end; lo += uint64(p) {
			hi := lo + uint64(p)
			if hi > end {
				hi = end
			}
			run(lo, hi)
		}
	} else {
		run(start, end)
	}
	s.next = end
	s.sweep += sweeps
}

// asyncWorkerDense is asyncWorker for the row-major multi-RHS block:
// chunked claiming and buffered direction generation around the block
// update body.
func (s *Solver) asyncWorkerDense(x, b *vec.Dense, stream rng.Stream, smp sampler, counter *atomic.Uint64, end uint64, worker, chunk int) {
	c := x.Cols
	a := s.a
	a32 := s.a32
	beta := s.beta
	nonAtomic := s.opts.NonAtomic
	measure := s.opts.MeasureDelay
	throttle := s.opts.Throttle
	gamma := make([]float64, c)
	picks := make([]int32, chunk)
	//asyrgs:boundedloop the claimed counter is monotone; every pass claims chunk>=1 indices and exits once base passes end
	for {
		base := counter.Add(uint64(chunk)) - uint64(chunk)
		if base >= end {
			return
		}
		top := base + uint64(chunk)
		if top > end {
			top = end
		}
		m := int(top - base)
		smp.fill(stream, base, picks[:m], worker)
		for t := 0; t < m; t++ {
			j := base + uint64(t)
			if throttle != nil {
				throttle(worker, j)
			}
			r := int(picks[t])
			copy(gamma, b.Row(r))
			switch {
			case a32 != nil && nonAtomic:
				for k := a32.RowPtr[r]; k < a32.RowPtr[r+1]; k++ {
					sparse.Axpy(gamma, x.Row(a32.ColIdx[k]), -float64(a32.Vals[k]))
				}
			case a32 != nil:
				for k := a32.RowPtr[r]; k < a32.RowPtr[r+1]; k++ {
					sparse.AxpyAtomicRead(gamma, x.Row(a32.ColIdx[k]), -float64(a32.Vals[k]))
				}
			case nonAtomic:
				for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
					sparse.Axpy(gamma, x.Row(a.ColIdx[k]), -a.Vals[k])
				}
			default:
				for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
					sparse.AxpyAtomicRead(gamma, x.Row(a.ColIdx[k]), -a.Vals[k])
				}
			}
			scale := beta * s.invD[r]
			xrow := x.Row(r)
			if nonAtomic {
				sparse.Axpy(xrow, gamma, scale)
			} else {
				for col := 0; col < c; col++ {
					atomicfloat.Add(&xrow[col], scale*gamma[col])
				}
			}
			if measure {
				var d uint64
				if cnt := counter.Load(); cnt > j+1 {
					d = cnt - j - 1
				}
				s.observeTau(d)
			}
		}
	}
}

// SolveAsync iterates asynchronously until the relative residual drops
// below tol or maxSweeps sweeps are spent. The residual check is a
// synchronization point (as in the paper's occasional-synchronization
// scheme), performed every checkEvery sweeps (1 if zero).
func (s *Solver) SolveAsync(x, b []float64, tol float64, maxSweeps, checkEvery int) (Result, error) {
	if checkEvery <= 0 {
		checkEvery = 1
	}
	done := 0
	for done < maxSweeps {
		step := checkEvery
		if done+step > maxSweeps {
			step = maxSweeps - done
		}
		s.AsyncSweeps(x, b, step)
		done += step
		if res := s.Residual(x, b); res <= tol {
			return Result{Sweeps: done, Iterations: s.next, Residual: res, Converged: true, ObservedTau: s.ObservedTau()}, nil
		}
	}
	res := s.Residual(x, b)
	return Result{Sweeps: done, Iterations: s.next, Residual: res, ObservedTau: s.ObservedTau()}, ErrNotConverged
}

// Precondition approximates z ≈ A⁻¹·r by running the configured number of
// AsyRGS sweeps from a zero initial guess. It makes the Solver usable as
// the flexible (nondeterministic, iteration-varying) preconditioner of the
// paper's Flexible-CG experiments; the krylov package consumes it through
// its Preconditioner interface.
func (s *Solver) Precondition(z, r []float64, sweeps int) {
	for i := range z {
		z[i] = 0
	}
	s.AsyncSweeps(z, r, sweeps)
}
