package core

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/alias"
	"github.com/asynclinalg/asyrgs/internal/dense"
	"github.com/asynclinalg/asyrgs/internal/race"
	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// --- diagonal-weighted sampling ---

// weightedSamplers builds both implementations of the diagonal-weighted
// draw — the O(1) alias table and the O(log n) CDF ablation — for a
// diagonal, failing the test on invalid input.
func weightedSamplers(t *testing.T, diag []float64) (aliasSmp, cdfSmp sampler) {
	t.Helper()
	tab, err := alias.New(diag)
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := newWeightedCDF(diag)
	if err != nil {
		t.Fatal(err)
	}
	return sampler{kind: samplerWeightedAlias, tab: tab}, sampler{kind: samplerWeightedCDF, cdf: cdf}
}

func TestWeightedSamplerDistribution(t *testing.T) {
	// Diagonal (1, 3): coordinate 1 must be drawn ≈ 3× as often, by both
	// the alias and the CDF implementation.
	aliasSmp, cdfSmp := weightedSamplers(t, []float64{1, 3})
	stream := rng.NewStream(1)
	for name, smp := range map[string]sampler{"alias": aliasSmp, "cdf": cdfSmp} {
		counts := [2]int{}
		const draws = 100_000
		for j := uint64(0); j < draws; j++ {
			counts[smp.pick(stream, j, 0)]++
		}
		frac := float64(counts[1]) / draws
		if math.Abs(frac-0.75) > 0.01 {
			t.Fatalf("%s: coordinate 1 drawn %.3f of the time, want ≈ 0.75", name, frac)
		}
	}
}

func TestWeightedSamplerUnitDiagonalIsUniform(t *testing.T) {
	smp, _ := weightedSamplers(t, []float64{1, 1, 1, 1})
	stream := rng.NewStream(2)
	counts := [4]int{}
	const draws = 80_000
	for j := uint64(0); j < draws; j++ {
		counts[smp.pick(stream, j, 0)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/draws-0.25) > 0.01 {
			t.Fatalf("bucket %d has fraction %.3f, want ≈ 0.25", i, float64(c)/draws)
		}
	}
}

// TestAliasVsCDFMarginalEquivalence draws a large budget through both
// weighted implementations over a skewed diagonal and checks the
// empirical marginals agree within sampling noise: swapping the binary
// search for the alias table must not change the distribution.
func TestAliasVsCDFMarginalEquivalence(t *testing.T) {
	diag := []float64{4, 1, 0.5, 9, 2, 2, 6, 0.25}
	aliasSmp, cdfSmp := weightedSamplers(t, diag)
	stream := rng.NewStream(77)
	const draws = 200_000
	var aliasCounts, cdfCounts [8]float64
	for j := uint64(0); j < draws; j++ {
		aliasCounts[aliasSmp.pick(stream, j, 0)]++
		cdfCounts[cdfSmp.pick(stream, j, 0)]++
	}
	for i := range diag {
		fa := aliasCounts[i] / draws
		fc := cdfCounts[i] / draws
		if math.Abs(fa-fc) > 6e-3 {
			t.Fatalf("coordinate %d: alias marginal %.4f vs CDF marginal %.4f", i, fa, fc)
		}
	}
}

func TestWeightedCDFValidation(t *testing.T) {
	for name, diag := range map[string][]float64{
		"empty":    {},
		"zero":     {1, 0, 2},
		"negative": {1, -3},
		"nan":      {1, math.NaN()},
	} {
		if _, err := newWeightedCDF(diag); err == nil {
			t.Fatalf("%s diagonal must be rejected", name)
		}
	}
	if _, err := newWeightedCDF([]float64{1, 2, 3}); err != nil {
		t.Fatalf("valid diagonal rejected: %v", err)
	}
}

func TestDiagonalWeightedSolverConverges(t *testing.T) {
	a := workload.RandomSPD(60, 5, 1.5, 40)
	b := workload.RandomRHS(60, 41)
	want, err := dense.SolveCSR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(a, Options{Seed: 42, DiagonalWeighted: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 60)
	if res, err := s.Solve(x, b, 1e-9, 3000, 10); err != nil {
		t.Fatalf("weighted sampling did not converge: %+v", res)
	}
	if e := vec.RelErr(x, want); e > 1e-7 {
		t.Fatalf("weighted solution error %v", e)
	}
}

func TestDiagonalWeightedAsyncConverges(t *testing.T) {
	a := workload.RandomSPD(150, 5, 1.5, 43)
	b := workload.RandomRHS(150, 44)
	s, err := New(a, Options{Seed: 45, DiagonalWeighted: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 150)
	if res, err := s.SolveAsync(x, b, 1e-7, 1000, 10); err != nil {
		t.Fatalf("async weighted did not converge: %+v", res)
	}
}

func TestDiagonalWeightedRejectsNonPositiveDiagonal(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, -1) // non-zero, so base validation passes
	if _, err := New(coo.ToCSR(), Options{DiagonalWeighted: true}); err == nil {
		t.Fatal("negative diagonal must be rejected for weighted sampling")
	}
}

// --- partitioned (block-restricted) sampling ---

func TestPartitionedSamplerStaysInBlock(t *testing.T) {
	smp := sampler{kind: samplerPartitioned, n: 100, workers: 4}
	stream := rng.NewStream(3)
	for w := 0; w < 4; w++ {
		lo, hi := w*25, (w+1)*25
		for j := uint64(0); j < 2000; j++ {
			r := smp.pick(stream, j, w)
			if r < lo || r >= hi {
				t.Fatalf("worker %d drew coordinate %d outside [%d,%d)", w, r, lo, hi)
			}
		}
	}
}

func TestPartitionedSamplerMoreWorkersThanRows(t *testing.T) {
	smp := sampler{kind: samplerPartitioned, n: 3, workers: 8}
	stream := rng.NewStream(4)
	for w := 0; w < 8; w++ {
		r := smp.pick(stream, uint64(w), w)
		if r < 0 || r >= 3 {
			t.Fatalf("worker %d drew out-of-range coordinate %d", w, r)
		}
	}
}

func TestPartitionedAsyncConverges(t *testing.T) {
	a := workload.RandomSPD(200, 5, 1.5, 46)
	b := workload.RandomRHS(200, 47)
	s, err := New(a, Options{Seed: 48, Workers: 4, Partitioned: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 200)
	if res, err := s.SolveAsync(x, b, 1e-7, 1000, 10); err != nil {
		t.Fatalf("partitioned async did not converge: %+v", res)
	}
}

func TestPartitionedSingleWriterProperty(t *testing.T) {
	if race.Enabled {
		t.Skip("NonAtomic reads race by design even with single writers")
	}
	// With Partitioned + NonAtomic there is exactly one writer per
	// coordinate, so even the non-atomic variant is race-free on the
	// write side. Convergence must hold.
	a := workload.RandomSPD(200, 5, 1.5, 49)
	b := workload.RandomRHS(200, 50)
	s, err := New(a, Options{Seed: 51, Workers: 4, Partitioned: true, NonAtomic: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 200)
	if res, err := s.SolveAsync(x, b, 1e-6, 1000, 10); err != nil {
		t.Fatalf("partitioned non-atomic did not converge: %+v", res)
	}
}

func TestPartitionedIgnoredSynchronously(t *testing.T) {
	// The synchronous path must treat Partitioned as uniform (P = 1).
	a := workload.RandomSPD(30, 4, 1.5, 52)
	b := workload.RandomRHS(30, 53)
	s1, _ := New(a, Options{Seed: 54})
	s2, _ := New(a, Options{Seed: 54, Partitioned: true})
	x1 := make([]float64, 30)
	x2 := make([]float64, 30)
	s1.Sweeps(x1, b, 3)
	s2.Sweeps(x2, b, 3)
	if !vec.Equal(x1, x2, 0) {
		t.Fatal("Partitioned must not change the synchronous iteration")
	}
}

// --- fault injection ---

func TestThrottleIsInvoked(t *testing.T) {
	a := workload.RandomSPD(50, 4, 1.5, 55)
	b := workload.RandomRHS(50, 56)
	var calls atomic.Uint64
	s, err := New(a, Options{
		Seed: 57, Workers: 2,
		Throttle: func(worker int, j uint64) { calls.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 50)
	s.AsyncSweeps(x, b, 2)
	if got := calls.Load(); got != 100 {
		t.Fatalf("throttle called %d times, want 100 (2 sweeps × 50)", got)
	}
}

func TestSlowWorkerDoesNotPreventConvergence(t *testing.T) {
	// The Hook–Dingle failure mode: one processor is much slower than the
	// rest. With randomized directions no coordinate is starved, so the
	// solve must still converge to the same accuracy.
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥2 CPUs")
	}
	a := workload.RandomSPD(300, 6, 1.5, 58)
	b := workload.RandomRHS(300, 59)
	slow := func(worker int, j uint64) {
		if worker == 0 && j%8 == 0 {
			time.Sleep(50 * time.Microsecond) // worker 0 runs ~orders slower
		}
	}
	s, err := New(a, Options{Seed: 60, Workers: 4, Throttle: slow, MeasureDelay: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 300)
	res, err := s.SolveAsync(x, b, 1e-7, 800, 10)
	if err != nil {
		t.Fatalf("solve with a slow worker did not converge: %+v", res)
	}
}

func TestStalledWorkerDelaysButConverges(t *testing.T) {
	// Extreme injection: worker 0 stalls completely for the first part of
	// the run (it claims an index and sits on it). The other workers keep
	// the method converging.
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥2 CPUs")
	}
	a := workload.RandomSPD(200, 5, 1.5, 61)
	b := workload.RandomRHS(200, 62)
	var stallOnce atomic.Bool
	s, err := New(a, Options{
		Seed: 63, Workers: 4,
		Throttle: func(worker int, j uint64) {
			if worker == 0 && stallOnce.CompareAndSwap(false, true) {
				time.Sleep(20 * time.Millisecond)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 200)
	if res, err := s.SolveAsync(x, b, 1e-6, 800, 10); err != nil {
		t.Fatalf("solve with a stalled worker did not converge: %+v", res)
	}
}

// --- delay histogram ---

func TestDelayHistogramCollected(t *testing.T) {
	a := workload.RandomSPD(400, 6, 1.5, 64)
	b := workload.RandomRHS(400, 65)
	s, err := New(a, Options{Seed: 66, Workers: runtime.GOMAXPROCS(0), MeasureDelay: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 400)
	s.AsyncSweeps(x, b, 10)
	hist := s.DelayHistogram()
	var total uint64
	for _, c := range hist {
		total += c
	}
	if total != 10*400 {
		t.Fatalf("histogram counts %d iterations, want 4000", total)
	}
	s.Reset()
	for _, c := range s.DelayHistogram() {
		if c != 0 {
			t.Fatal("Reset must clear the histogram")
		}
	}
}

func TestDelayHistogramEmptyWithoutMeasure(t *testing.T) {
	a := workload.RandomSPD(50, 4, 1.5, 67)
	b := workload.RandomRHS(50, 68)
	s, _ := New(a, Options{Seed: 69, Workers: 2})
	x := make([]float64, 50)
	s.AsyncSweeps(x, b, 2)
	for _, c := range s.DelayHistogram() {
		if c != 0 {
			t.Fatal("histogram must stay empty when MeasureDelay is off")
		}
	}
}

// --- weighted vs uniform ablation sanity ---

func TestWeightedSamplingSkewedDiagonalRate(t *testing.T) {
	// The Leventhal–Lewis weighted distribution converges at rate
	// (1 − λmin(A)/tr(A)) per iteration. With a heavily skewed diagonal
	// the trace is huge, so weighted sampling is *slower* than uniform
	// sampling with diagonal normalisation (which sees the rescaled
	// spectrum) — but it must still make steady progress. Both facts are
	// asserted: monotone-ish decrease for weighted, and uniform being the
	// better choice here (why the library defaults to uniform).
	coo := sparse.NewCOO(40, 40)
	g := rng.NewSequential(70)
	for i := 0; i < 40; i++ {
		d := 1.0
		if i%8 == 0 {
			d = 100 // a few heavy diagonal entries
		}
		coo.Add(i, i, d)
		j := g.Intn(40)
		if j != i {
			coo.AddSym(i, j, 0.3*(g.Float64()-0.5))
		}
	}
	a := coo.ToCSR()
	b, xstar := workload.RHSForSolution(a, 71)
	e0 := a.ANormErr(make([]float64, 40), xstar)
	errAfter := func(weighted bool, sweeps int) float64 {
		s, err := New(a, Options{Seed: 72, DiagonalWeighted: weighted})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 40)
		s.Sweeps(x, b, sweeps)
		return a.ANormErr(x, xstar)
	}
	w40 := errAfter(true, 40)
	w400 := errAfter(true, 400)
	if w40 >= e0 {
		t.Fatalf("weighted sampling made no progress: %v vs initial %v", w40, e0)
	}
	if w400 >= w40 {
		t.Fatalf("weighted sampling stalled: %v after 400 sweeps vs %v after 40", w400, w40)
	}
	if u := errAfter(false, 40); u >= w40 {
		t.Fatalf("uniform sampling should win on a skewed diagonal: uniform %v vs weighted %v", u, w40)
	}
}

// --- theory-driven occasional synchronization ---

func TestSolveWithGuaranteeAchievesReduction(t *testing.T) {
	// Reference-scenario matrix with small ρ·n: the certificate applies
	// and the actual error must respect it (the bound is pessimistic, so
	// the achieved error is typically far better).
	lap := workload.Laplacian2D(16, 16)
	a, _, err := sparse.UnitDiagonalScale(lap)
	if err != nil {
		t.Fatal(err)
	}
	b, xstar := workload.RHSForSolution(a, 80)
	s, err := New(a, Options{Seed: 81, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	e0 := a.ANormErr(x, xstar)
	const eps = 0.05
	g, err := s.SolveWithGuarantee(x, b, eps, 0.1, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Epochs < 1 || g.EpochFactor <= 0 || g.EpochFactor >= 1 {
		t.Fatalf("bad guarantee %+v", g)
	}
	if g.ExpectedReduction > 0.1*eps*eps*1.0001 {
		t.Fatalf("certificate does not reach δ·ε²: %+v", g)
	}
	if e := a.ANormErr(x, xstar); e > eps*e0 {
		t.Fatalf("achieved error %v above the certified eps·e0 = %v", e, eps*e0)
	}
}

func TestSolveWithGuaranteeVacuousBound(t *testing.T) {
	// Huge τ with β = 1 breaks 2ρτ < 1: the call must refuse rather than
	// run without a certificate.
	lap := workload.Laplacian2D(8, 8)
	a, _, err := sparse.UnitDiagonalScale(lap)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := New(a, Options{Seed: 82, Workers: 2})
	x := make([]float64, a.Rows)
	b := workload.RandomRHS(a.Rows, 83)
	if _, err := s.SolveWithGuarantee(x, b, 0.1, 0.1, 1_000_000, 0, 0); err == nil {
		t.Fatal("vacuous bound must be reported")
	}
}

func TestSolveWithGuaranteeValidatesInputs(t *testing.T) {
	a := workload.RandomSPD(20, 4, 1.5, 84)
	s, _ := New(a, Options{Seed: 85})
	x := make([]float64, 20)
	b := workload.RandomRHS(20, 86)
	for _, bad := range [][2]float64{{0, 0.5}, {1.5, 0.5}, {0.1, 0}, {0.1, 1}} {
		if _, err := s.SolveWithGuarantee(x, b, bad[0], bad[1], 2, 0, 0); err == nil {
			t.Fatalf("eps=%v delta=%v should be rejected", bad[0], bad[1])
		}
	}
}

func TestSolveWithGuaranteeGeneralDiagonal(t *testing.T) {
	// Non-unit-diagonal SPD matrix: the certificate is evaluated on the
	// implicit unit-diagonal scaling.
	a := workload.RandomSPD(100, 4, 2.0, 87)
	b, xstar := workload.RHSForSolution(a, 88)
	s, err := New(a, Options{Seed: 89, Workers: 2, Beta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 100)
	e0 := a.ANormErr(x, xstar)
	g, err := s.SolveWithGuarantee(x, b, 0.1, 0.2, 2, 0, 0)
	if err != nil {
		t.Skipf("bound vacuous on this draw (%v) — acceptable", err)
	}
	if e := a.ANormErr(x, xstar); e > 0.1*e0 {
		t.Fatalf("achieved %v above certified %v (guarantee %+v)", e, 0.1*e0, g)
	}
}

func TestPartitionedCoverageUnderSkewedScheduling(t *testing.T) {
	// Partitioned mode must give every block its share of the budget even
	// if one worker runs arbitrarily faster than the rest (per-worker
	// budgets, not a shared counter). Throttle all but worker 0 heavily
	// for the first phase; all blocks must still receive updates.
	a := workload.RandomSPD(120, 4, 1.5, 90)
	b := workload.RandomRHS(120, 91)
	var phase atomic.Bool // false: skew phase
	s, err := New(a, Options{
		Seed: 92, Workers: 4, Partitioned: true,
		Throttle: func(w int, j uint64) {
			if !phase.Load() && w != 0 {
				time.Sleep(20 * time.Microsecond)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 120)
	s.AsyncSweeps(x, b, 2)
	phase.Store(true)
	for blk := 0; blk < 4; blk++ {
		lo, hi := blk*30, (blk+1)*30
		touched := false
		for i := lo; i < hi; i++ {
			if x[i] != 0 {
				touched = true
				break
			}
		}
		if !touched {
			t.Fatalf("block %d received no updates despite per-worker budgets", blk)
		}
	}
	// And the solve must converge from here.
	if res, err := s.SolveAsync(x, b, 1e-6, 2000, 20); err != nil {
		t.Fatalf("partitioned solve under past skew did not converge: %+v", res)
	}
}
