package core

import (
	"math"

	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// seqFillChunk is the direction-buffer block size of the synchronous
// paths. It only amortizes generator and dispatch overhead — the
// direction at index j is a pure function of (seed, j), so the sequence
// is independent of the block size.
const seqFillChunk = 512

// seqPicks returns the solver's reusable direction buffer, lazily sized.
// Retained across Reinit so a recycled Solver's warm solve allocates
// nothing. Synchronous paths only (one goroutine).
func (s *Solver) seqPicks() []int32 {
	if cap(s.pickBuf) < seqFillChunk {
		s.pickBuf = make([]int32, seqFillChunk)
	}
	return s.pickBuf[:seqFillChunk]
}

// Sweeps runs sweeps·n synchronous Randomized Gauss–Seidel iterations on x
// for the system A·x = b, continuing the solver's direction stream. One
// sweep (n single-coordinate updates) costs Θ(nnz(A)) — the same as one
// classical Gauss–Seidel pass.
//
//asyrgs:noalloc
func (s *Solver) Sweeps(x, b []float64, sweeps int) {
	n := s.a.Rows
	if len(x) != n || len(b) != n {
		panic("core: Sweeps shape mismatch")
	}
	stream := rng.NewStream(s.opts.Seed)
	smp := s.newSampler(false)
	picks := s.seqPicks()
	a32 := s.a32
	end := s.next + uint64(sweeps)*uint64(n)
	for base := s.next; base < end; {
		m := len(picks)
		if rem := end - base; rem < uint64(m) {
			m = int(rem)
		}
		smp.fill(stream, base, picks[:m], 0)
		for t := 0; t < m; t++ {
			r := int(picks[t])
			var dot float64
			if a32 != nil {
				dot = a32.RowDot(r, x)
			} else {
				dot = s.a.RowDot(r, x)
			}
			gamma := (b[r] - dot) * s.invD[r]
			x[r] += s.beta * gamma
		}
		base += uint64(m)
	}
	s.next = end
	s.sweep += sweeps
}

// SweepsDense runs sweeps·n synchronous iterations simultaneously on every
// column of the row-major block X for A·X = B. The direction r chosen at
// global iteration j is shared by all right-hand sides, matching the
// paper's multi-RHS experiment where all 51 systems are solved together.
func (s *Solver) SweepsDense(x, b *vec.Dense, sweeps int) {
	n := s.a.Rows
	if x.Rows != n || b.Rows != n || x.Cols != b.Cols {
		panic("core: SweepsDense shape mismatch")
	}
	c := x.Cols
	stream := rng.NewStream(s.opts.Seed)
	smp := s.newSampler(false)
	gamma := make([]float64, c)
	picks := s.seqPicks()
	end := s.next + uint64(sweeps)*uint64(n)
	for base := s.next; base < end; {
		m := len(picks)
		if rem := end - base; rem < uint64(m) {
			m = int(rem)
		}
		smp.fill(stream, base, picks[:m], 0)
		for t := 0; t < m; t++ {
			r := int(picks[t])
			copy(gamma, b.Row(r))
			if a32 := s.a32; a32 != nil {
				for k := a32.RowPtr[r]; k < a32.RowPtr[r+1]; k++ {
					sparse.Axpy(gamma, x.Row(a32.ColIdx[k]), -float64(a32.Vals[k]))
				}
			} else {
				for k := s.a.RowPtr[r]; k < s.a.RowPtr[r+1]; k++ {
					sparse.Axpy(gamma, x.Row(s.a.ColIdx[k]), -s.a.Vals[k])
				}
			}
			sparse.Axpy(x.Row(r), gamma, s.beta*s.invD[r])
		}
		base += uint64(m)
	}
	s.next = end
	s.sweep += sweeps
}

// Solve iterates synchronously until the relative residual drops below tol
// or maxSweeps sweeps have been spent, checking the residual every
// checkEvery sweeps (1 if zero).
func (s *Solver) Solve(x, b []float64, tol float64, maxSweeps, checkEvery int) (Result, error) {
	if checkEvery <= 0 {
		checkEvery = 1
	}
	done := 0
	for done < maxSweeps {
		step := checkEvery
		if done+step > maxSweeps {
			step = maxSweeps - done
		}
		s.Sweeps(x, b, step)
		done += step
		if res := s.Residual(x, b); res <= tol {
			return Result{Sweeps: done, Iterations: s.next, Residual: res, Converged: true}, nil
		}
	}
	res := s.Residual(x, b)
	return Result{Sweeps: done, Iterations: s.next, Residual: res}, ErrNotConverged
}

// ResidualDense returns ‖B−AX‖_F / ‖B‖_F.
func (s *Solver) ResidualDense(x, b *vec.Dense) float64 {
	ax := vec.NewDense(x.Rows, x.Cols)
	if s.a32 != nil {
		s.a32.MulDensePar(ax.Data, x.Data, x.Cols, s.opts.Workers, sparse.PartitionContiguous)
	} else {
		s.a.MulDense(ax.Data, x.Data, x.Cols, s.opts.Workers)
	}
	var num, den float64
	for i, v := range ax.Data {
		d := b.Data[i] - v
		num += d * d
		den += b.Data[i] * b.Data[i]
	}
	if den == 0 {
		return vec.Nrm2(ax.Data)
	}
	return math.Sqrt(num / den)
}
