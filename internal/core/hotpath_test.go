package core

// Hot-path regression tests for the chunked-claiming and alias-sampling
// rebuild: the direction consumed at global iteration j must be a pure
// function of (seed, j) — identical across worker counts, chunk sizes,
// and the buffered fill path — and the warm sequential solve must not
// allocate.

import (
	"sync/atomic"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/race"
	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// atomicCounter is a padded-enough per-iteration execution counter for
// the multiset test (one per index, so false sharing is irrelevant).
type atomicCounter struct{ v atomic.Uint64 }

// TestFillMatchesPickEverySampler checks the bulk fill used by chunked
// workers against per-index picks for every sampler kind and several
// chunk partitionings of the same index range.
func TestFillMatchesPickEverySampler(t *testing.T) {
	diag := []float64{1, 5, 2, 0.5, 3, 3, 1, 8, 2, 4}
	aliasSmp, cdfSmp := weightedSamplers(t, diag)
	samplers := map[string]sampler{
		"uniform":     {kind: samplerUniform, n: 10},
		"alias":       aliasSmp,
		"cdf":         cdfSmp,
		"partitioned": {kind: samplerPartitioned, n: 10, workers: 3},
	}
	stream := rng.NewStream(31)
	const total = 4096
	for name, smp := range samplers {
		want := make([]int32, total)
		for j := range want {
			want[j] = int32(smp.pick(stream, uint64(j), 1))
		}
		for _, chunk := range []int{1, 7, 64, 500, total} {
			got := make([]int32, total)
			for base := 0; base < total; base += chunk {
				top := base + chunk
				if top > total {
					top = total
				}
				smp.fill(stream, uint64(base), got[base:top], 1)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s chunk=%d: fill[%d] = %d, pick = %d", name, chunk, j, got[j], want[j])
				}
			}
		}
	}
}

// TestChunkSizeInvariantDirectionMultiset runs the asynchronous solver
// over the same budget at several claiming granularities and worker
// counts, recording every (iteration, worker) the throttle hook sees.
// The set of global iteration indices executed must be exactly
// [0, budget) for every configuration — chunked claiming drops and
// duplicates nothing — which, with the pure sampler, makes the direction
// multiset identical everywhere.
func TestChunkSizeInvariantDirectionMultiset(t *testing.T) {
	a := workload.RandomSPD(60, 5, 1.5, 9)
	b := workload.RandomRHS(60, 10)
	const sweeps = 3
	budget := uint64(sweeps) * 60
	for _, workers := range []int{2, 5} {
		for _, chunk := range []int{0, 1, 3, 64, 1000} {
			seen := make([]atomicCounter, budget)
			s, err := New(a, Options{
				Seed: 4, Workers: workers, Chunk: chunk,
				Throttle: func(_ int, j uint64) { seen[j].v.Add(1) },
			})
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, 60)
			s.AsyncSweeps(x, b, sweeps)
			for j := range seen {
				if got := seen[j].v.Load(); got != 1 {
					t.Fatalf("workers=%d chunk=%d: iteration %d executed %d times", workers, chunk, j, got)
				}
			}
		}
	}
}

// TestChunkedSolveMatchesUnchunkedSequentially checks end-to-end that
// the sequential iterate is bit-for-bit independent of the claiming
// granularity (one worker executes indices in order whatever the chunk).
func TestChunkedSolveMatchesUnchunkedSequentially(t *testing.T) {
	a := workload.RandomSPD(80, 6, 1.5, 12)
	b := workload.RandomRHS(80, 13)
	solve := func(chunk int) []float64 {
		s, err := New(a, Options{Seed: 21, Chunk: chunk, DiagonalWeighted: true})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 80)
		s.Sweeps(x, b, 5)
		return x
	}
	want := solve(0)
	for _, chunk := range []int{1, 16, 4096} {
		got := solve(chunk)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk=%d: iterate differs at %d (%g vs %g)", chunk, i, got[i], want[i])
			}
		}
	}
}

// TestWeightedAsyncCDFAblationConverges exercises the legacy CDF path
// (the hotpath grid's baseline) end to end.
func TestWeightedAsyncCDFAblationConverges(t *testing.T) {
	a := workload.RandomSPD(120, 5, 1.5, 30)
	b := workload.RandomRHS(120, 31)
	s, err := New(a, Options{Seed: 32, DiagonalWeighted: true, WeightedCDF: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 120)
	if res, err := s.SolveAsync(x, b, 1e-7, 2000, 10); err != nil {
		t.Fatalf("CDF ablation did not converge: %+v", res)
	}
}

// TestReinitRecyclesScratch checks the pool contract: a Solver recycled
// with Reinit replays the stream from index 0 with fresh statistics and
// produces the same iterate as a fresh Solver.
func TestReinitRecyclesScratch(t *testing.T) {
	a := workload.RandomSPD(50, 5, 1.5, 40)
	p, err := PrepareMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomRHS(50, 41)
	fresh, _ := NewFromPrep(p, Options{Seed: 8})
	xf := make([]float64, 50)
	fresh.Sweeps(xf, b, 4)

	s, _ := NewFromPrep(p, Options{Seed: 999, DiagonalWeighted: true})
	xw := make([]float64, 50)
	s.Sweeps(xw, b, 2)
	if err := s.Reinit(p, Options{Seed: 8}); err != nil {
		t.Fatal(err)
	}
	if s.Iterations() != 0 || s.ObservedTau() != 0 {
		t.Fatal("Reinit must reset the iteration stream and statistics")
	}
	xr := make([]float64, 50)
	s.Sweeps(xr, b, 4)
	if !vec.Equal(xr, xf, 0) {
		t.Fatal("recycled solver diverged from a fresh one")
	}
	if _, err := NewFromPrep(p, Options{Chunk: -1}); err == nil {
		t.Fatal("negative chunk must be rejected")
	}
}

// TestWarmSequentialSweepsZeroAlloc is the core-family allocation
// regression: after warm-up, a prepared sequential solve's sweep and
// residual path must not allocate (the scratch lives on the recycled
// Solver).
func TestWarmSequentialSweepsZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under -race")
	}
	a := workload.RandomSPD(200, 6, 1.5, 50)
	p, err := PrepareMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomRHS(200, 51)
	s, err := NewFromPrep(p, Options{Seed: 5, DiagonalWeighted: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 200)
	avg := testing.AllocsPerRun(20, func() {
		s.Sweeps(x, b, 1)
		_ = s.Residual(x, b)
	})
	if avg != 0 {
		t.Fatalf("warm sequential sweep allocated %.1f times per run, want 0", avg)
	}
}

// BenchmarkWeightedWarmSweep is the end-to-end acceptance benchmark for
// the alias rebuild: a warm diagonal-weighted sweep at n = 10^5 through
// the O(1) alias table versus the legacy O(log n) CDF search.
func BenchmarkWeightedWarmSweep(b *testing.B) {
	a := workload.RandomSPD(100_000, 6, 1.5, 1)
	rhs := workload.RandomRHS(100_000, 2)
	prep, err := PrepareMatrix(a)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cdf  bool
	}{{"alias", false}, {"cdf", true}} {
		b.Run(tc.name, func(b *testing.B) {
			s, err := NewFromPrep(prep, Options{Seed: 3, DiagonalWeighted: true, WeightedCDF: tc.cdf})
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, 100_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Sweeps(x, rhs, 1)
			}
		})
	}
}
