package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/spectral"
	"github.com/asynclinalg/asyrgs/internal/theory"
)

// ErrNoGuarantee is returned by SolveWithGuarantee when Theorem 3's
// progress coefficient ν_τ(β) is not positive at the solver's parameters,
// so no epoch count can certify the requested reduction.
var ErrNoGuarantee = errors.New("core: theorem bound is vacuous at these parameters (ν_τ(β) ≤ 0)")

// Guarantee describes the a-priori certificate computed by
// SolveWithGuarantee before any iteration runs.
type Guarantee struct {
	// Epochs is the number of synchronize-and-restart epochs executed.
	Epochs int
	// EpochIterations is the length of each epoch: max(n, T₀) as the
	// Theorem 2 discussion prescribes (λmax ≥ 1 for unit diagonal makes n
	// iterations always sufficient; for general matrices T₀ is used).
	EpochIterations int
	// EpochFactor is the certified per-epoch contraction 1 − ν_τ(β)/2κ.
	EpochFactor float64
	// ExpectedReduction bounds E‖x−x*‖²_A / E₀ after all epochs.
	ExpectedReduction float64
	// FailureProb is the Markov-inequality confidence: with probability
	// at least 1−FailureProb the A-norm error is reduced by the requested
	// eps factor.
	FailureProb float64
}

// SolveWithGuarantee runs the occasional-synchronization scheme of the
// paper's Theorem 2 discussion: asynchronous epochs separated by barriers,
// with the epoch count chosen *a priori* from Theorem 3 so that
//
//	Pr( ‖x − x*‖_A ≥ eps·‖x₀ − x*‖_A ) ≤ delta .
//
// Unlike Solve/SolveAsync it never inspects the residual to decide
// progress — the certificate is purely analytical, which is the form of
// guarantee the paper's theory delivers. tau is the delay bound assumed
// for the certificate (the reference-scenario guidance is τ = O(P); pass
// the worker count when in doubt). The spectral estimate is computed
// internally with a Lanczos sweep when lambdaMin/lambdaMax are zero.
func (s *Solver) SolveWithGuarantee(x, b []float64, eps, delta float64, tau int, lambdaMin, lambdaMax float64) (Guarantee, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return Guarantee{}, fmt.Errorf("core: need eps, delta in (0,1), got %g, %g", eps, delta)
	}
	if lambdaMin <= 0 || lambdaMax <= 0 {
		est := spectral.EstimateSPD(s.a, 2*minInt(s.a.Rows, 100), s.opts.Seed^0x5ca1ab1e)
		lambdaMin, lambdaMax = est.LambdaMin, est.LambdaMax
	}
	// The analysis lives in the unit-diagonal scaling; evaluate ρ there.
	scaled := s.a
	if !hasUnitDiag(s.diag) {
		sc, _, err := sparse.UnitDiagonalScale(s.a)
		if err != nil {
			return Guarantee{}, fmt.Errorf("core: cannot certify a matrix without positive diagonal: %w", err)
		}
		scaled = sc
	}
	p := theory.NewParams(scaled, lambdaMin, lambdaMax, tau, s.beta)
	factor, ok := p.ConsistentEpochFactor()
	if !ok {
		return Guarantee{}, fmt.Errorf("%w: %v", ErrNoGuarantee, p)
	}
	// Markov: Pr(‖e‖ ≥ eps‖e₀‖) = Pr(‖e‖² ≥ eps²‖e₀‖²) ≤ E/(eps²E₀).
	// Need factor^epochs ≤ delta·eps².
	target := delta * eps * eps
	epochs := int(math.Ceil(math.Log(target) / math.Log(factor)))
	if epochs < 1 {
		epochs = 1
	}
	epochLen := theory.EpochLength(lambdaMax, p.N)
	if epochLen < s.a.Rows {
		epochLen = s.a.Rows // n iterations always cover T₀ when λmax ≥ 1
	}
	g := Guarantee{
		Epochs:            epochs,
		EpochIterations:   epochLen,
		EpochFactor:       factor,
		ExpectedReduction: math.Pow(factor, float64(epochs)),
		FailureProb:       delta,
	}
	// Execute: each epoch is a barrier-separated asynchronous burst. The
	// epoch boundary is exactly the synchronization point of the scheme.
	sweepsPerEpoch := (epochLen + s.a.Rows - 1) / s.a.Rows
	for e := 0; e < epochs; e++ {
		s.AsyncSweeps(x, b, sweepsPerEpoch)
	}
	return g, nil
}

func hasUnitDiag(diag []float64) bool {
	for _, d := range diag {
		if math.Abs(d-1) > 1e-12 {
			return false
		}
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
