// Package core implements the paper's contribution: Randomized
// Gauss–Seidel (Leventhal–Lewis, with the Griebel–Oswald step size β) and
// its shared-memory asynchronous variant AsyRGS.
//
// Algorithm 1 of the paper, executed by every worker against the same
// shared iterate x:
//
//	loop
//	    pick r uniformly from {1,…,n}
//	    read the entries of x touched by row A_r
//	    γ ← (b_r − A_r·x) / A_rr
//	    x_r ← x_r + β·γ            (atomic write, Assumption A-1)
//
// Direction choices are made through a counter-based Philox stream indexed
// by a global iteration counter, so the sequence d₀,d₁,… is a pure function
// of the seed and identical for every worker count — the methodology the
// paper uses (via Random123) to isolate the effect of asynchronism from the
// effect of randomness.
//
// The package supports unit-diagonal and general SPD matrices (iteration
// (3) of the paper), single vectors and row-major multi-right-hand-side
// blocks, atomic and non-atomic writes (the paper's §9 ablation), and the
// occasional-synchronization scheme of the Theorem 2 discussion.
package core

import (
	"errors"
	"math"

	"github.com/asynclinalg/asyrgs/internal/alias"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/theory"
)

// Errors returned by solver construction and runs.
var (
	ErrNotSquare    = errors.New("core: matrix is not square")
	ErrZeroDiagonal = errors.New("core: matrix has a zero diagonal entry")
	ErrNotConverged = errors.New("core: solver did not reach the requested tolerance")
)

// Options configure a Solver. The zero value is usable: unit step size,
// one worker, atomic writes, seed 0.
type Options struct {
	// Beta is the step size β ∈ (0,2). Zero means 1 (plain Gauss–Seidel
	// steps). Theorem 3 shows β̃ = 1/(1+2ρτ) optimises the asynchronous
	// bound; use OptimalBeta to set it from the matrix.
	Beta float64

	// Workers is the number of concurrent goroutines P for the
	// asynchronous methods. Zero or one runs the synchronous iteration.
	Workers int

	// NonAtomic disables the atomic coordinate update, reproducing the
	// paper's "non atomic" ablation. The resulting races are benign on
	// mainstream hardware but the variant carries no convergence theorem;
	// it exists to measure whether Assumption A-1 matters in practice.
	NonAtomic bool

	// Seed selects the Philox direction stream.
	Seed uint64

	// SyncPeriod, when positive, inserts a full barrier across workers
	// every SyncPeriod iterations — the occasional-synchronization scheme
	// that upgrades Theorem 2(b)'s long-term rate to Theorem 2(a)'s
	// per-epoch rate. Zero runs free (no barriers).
	SyncPeriod int

	// MeasureDelay enables bookkeeping of the observed asynchrony bound
	// τ̂ (max number of other updates committed during one iteration) and
	// of the full delay histogram (see Solver.DelayHistogram).
	MeasureDelay bool

	// DiagonalWeighted samples coordinate r with probability A_rr/tr(A)
	// instead of uniformly — the general Leventhal–Lewis distribution for
	// non-unit-diagonal matrices. For unit-diagonal matrices it reduces
	// to uniform sampling. Requires a strictly positive diagonal. The
	// draw goes through an O(1) Walker/Vose alias table built once per
	// prepared matrix; set WeightedCDF for the legacy binary search.
	DiagonalWeighted bool

	// WeightedCDF routes the DiagonalWeighted draw through the O(log n)
	// binary search over the diagonal CDF instead of the alias table —
	// the ablation baseline of the hotpath benchmark grid. Ignored
	// without DiagonalWeighted.
	WeightedCDF bool

	// Float32 stores the matrix values in float32 while accumulating all
	// arithmetic in float64, halving value-array memory bandwidth on
	// systems too large for cache. The iteration then solves the exact
	// float64 system fl32(A)·x = b; relative to the original matrix the
	// achievable residual is floored around √nnz·2⁻²⁴. Sampling weights
	// stay on the float64 diagonal so direction sequences are unchanged.
	Float32 bool

	// Chunk is the number of global iteration indices a worker claims
	// from the shared counter at a time. One CAS per chunk instead of one
	// per iteration takes the counter off the critical path; the claimed
	// block's directions are generated into a local buffer in one pass.
	// Zero auto-sizes from the budget and worker count. Forced to 1 when
	// MeasureDelay is set (per-iteration claiming is what makes the delay
	// bookkeeping meaningful).
	Chunk int

	// Partitioned restricts each asynchronous worker to its own
	// contiguous block of ~n/P coordinates, making it the sole updater of
	// that block — the "more limited form of randomization" the paper
	// suggests for distributed memory (§1) and for reducing cache misses.
	// Writes need no atomicity (one writer per coordinate) but are kept
	// atomic unless NonAtomic is set, so the ablation stays orthogonal.
	// Ignored by the synchronous methods (P = 1 means one block = all).
	Partitioned bool

	// Throttle, when non-nil, is invoked before every asynchronous
	// iteration with the worker index and global iteration number. It
	// exists for fault injection — stalling a worker models the slow
	// processors of the Hook–Dingle analysis — and for experiments with
	// heterogeneous cores. It must be safe for concurrent use.
	Throttle func(worker int, iteration uint64)
}

// Solver holds an immutable matrix view plus solve options. A Solver is
// not safe for concurrent Solve/Sweeps calls; fork one per in-flight
// solve from a shared Prep (NewFromPrep), or recycle one with Reinit.
type Solver struct {
	a         *sparse.CSR
	a32       *sparse.CSR32 // non-nil under Options.Float32; hot loops read it instead of a
	diag      []float64
	invD      []float64    // 1/diag (1/fl32(diag) under Float32), hoisted out of the inner loop
	diagCDF   []float64    // cumulative A_rr/tr(A), for the WeightedCDF ablation
	diagAlias *alias.Table // O(1) alias table for DiagonalWeighted
	beta      float64
	opts      Options
	next      uint64 // global iteration index; advances across calls
	tau       uint64 // max observed delay (if MeasureDelay)
	sweep     int    // completed sweeps, for reporting
	// Reusable scratch, lazily sized and retained across Reinit so a
	// recycled Solver's warm Solve allocates nothing: direction-index
	// buffer for the synchronous chunked fill, residual vector.
	pickBuf    []int32
	resScratch []float64
	// rowBytes estimates the bytes one iteration touches (mean row values
	// + indices + iterate/rhs entries), feeding the cache-aware chunk cap.
	rowBytes int
	// delayHist[k] counts iterations whose observed delay fell in
	// [2^(k-1), 2^k) (bucket 0 is delay 0); updated atomically.
	delayHist [delayBuckets]uint64
}

// delayBuckets is the number of power-of-two delay histogram buckets; 2⁶³
// exceeds any possible delay, so the histogram never saturates.
const delayBuckets = 64

// New validates the matrix and constructs a Solver. The matrix must be
// square with non-zero diagonal; symmetry and positive definiteness are the
// caller's contract (the convergence theory needs SPD, the iteration itself
// only needs the diagonal). Callers that solve the same matrix repeatedly
// should PrepareMatrix once and fork Solvers with NewFromPrep instead.
func New(a *sparse.CSR, opts Options) (*Solver, error) {
	p, err := PrepareMatrix(a)
	if err != nil {
		return nil, err
	}
	return NewFromPrep(p, opts)
}

// OptimalBeta returns the bound-optimal asynchronous step size
// β̃ = 1/(1+2ρτ) for this matrix and a delay bound τ (Theorem 3). A
// reasonable τ when none is measured is the worker count P.
func (s *Solver) OptimalBeta(tau int) float64 {
	return theory.OptimalBeta(theory.Rho(s.a), tau)
}

// N returns the problem size.
func (s *Solver) N() int { return s.a.Rows }

// Beta returns the configured step size.
func (s *Solver) Beta() float64 { return s.beta }

// Matrix returns the underlying CSR matrix (shared, do not mutate).
func (s *Solver) Matrix() *sparse.CSR { return s.a }

// ObservedTau returns the largest measured asynchrony delay τ̂ so far.
// Zero unless Options.MeasureDelay was set and an asynchronous method ran.
func (s *Solver) ObservedTau() int { return int(s.tau) }

// Iterations returns the number of single-coordinate updates performed by
// this solver across all calls.
func (s *Solver) Iterations() uint64 { return s.next }

// Reset rewinds the direction stream and delay statistics so a fresh run
// replays the same direction sequence d₀,d₁,…
func (s *Solver) Reset() {
	s.next = 0
	s.tau = 0
	s.sweep = 0
	for i := range s.delayHist {
		s.delayHist[i] = 0
	}
}

// DelayHistogram returns the observed-delay histogram collected when
// Options.MeasureDelay is set: bucket 0 counts iterations that saw no
// concurrent updates, bucket k ≥ 1 counts delays in [2^(k-1), 2^k). The
// histogram lets experiments report the delay *distribution*, addressing
// the paper's conclusion that the worst-case τ is pessimistic and a
// probabilistic delay model would be more descriptive.
func (s *Solver) DelayHistogram() []uint64 {
	out := make([]uint64, 0, delayBuckets)
	last := 0
	for i, c := range s.delayHist {
		if c != 0 {
			last = i
		}
		out = append(out, c)
	}
	return out[:last+1]
}

// Result reports the outcome of a Solve call.
type Result struct {
	Sweeps      int     // sweeps performed (1 sweep = n coordinate updates)
	Iterations  uint64  // total coordinate updates
	Residual    float64 // final relative residual ‖b−Ax‖₂/‖b‖₂ (Frobenius for blocks)
	Converged   bool
	ObservedTau int // measured asynchrony (0 unless MeasureDelay)
}

// Residual returns the relative residual ‖b−Ax‖₂/‖b‖₂ (or the absolute
// residual norm when ‖b‖₂ = 0).
func (s *Solver) Residual(x, b []float64) float64 {
	n := s.a.Rows
	if cap(s.resScratch) < n {
		s.resScratch = make([]float64, n)
	}
	r := s.resScratch[:n]
	if s.a32 != nil {
		s.a32.MulVec(r, x)
	} else {
		s.a.MulVec(r, x)
	}
	var num, den float64
	for i := range r {
		d := b[i] - r[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}
