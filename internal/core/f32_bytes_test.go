package core

// The mixed-precision traffic claim, pinned on a system above the 100k
// size band: float32 value storage halves the value-array bytes and
// shrinks the per-iteration cache footprint the chunk auto-sizer works
// from, while the index arrays are shared (aliased, not copied) between
// the two views.

import (
	"testing"

	"github.com/asynclinalg/asyrgs/internal/workload"
)

func TestFloat32ReducesBytesPerIterationAt100k(t *testing.T) {
	// 320×320 grid Laplacian: n = 102 400 rows, ≥ 100k per the size bands.
	a := workload.Laplacian2D(320, 320)
	if a.Rows < 100_000 {
		t.Fatalf("test system has %d rows, want ≥ 100k", a.Rows)
	}
	prep, err := PrepareMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	s64, err := NewFromPrep(prep, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s32, err := NewFromPrep(prep, Options{Workers: 1, Float32: true})
	if err != nil {
		t.Fatal(err)
	}

	// Value-array traffic halves exactly: 4·nnz vs 8·nnz.
	a32, err := prep.Float32View()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a32.ValueBytes(), 4*a.NNZ(); got != want {
		t.Fatalf("f32 value array holds %d bytes, want %d", got, want)
	}
	if got, twice := a32.ValueBytes(), 8*a.NNZ(); 2*got != twice {
		t.Fatalf("f32 value bytes %d are not half of the f64 %d", got, twice)
	}

	// The index arrays are shared, not duplicated: the f32 view costs only
	// its value array on top of the parent CSR.
	if &a32.RowPtr[0] != &a.RowPtr[0] || &a32.ColIdx[0] != &a.ColIdx[0] {
		t.Fatal("f32 view must alias the parent index arrays")
	}

	// The chunk auto-sizer's per-iteration footprint estimate shrinks by
	// exactly the value-width difference over the mean row.
	meanNNZ := a.NNZ() / a.Rows
	if got, want := s64.rowBytes-s32.rowBytes, 4*meanNNZ; got != want {
		t.Fatalf("rowBytes shrank by %d, want 4·meanNNZ = %d (f64 %d, f32 %d)",
			got, want, s64.rowBytes, s32.rowBytes)
	}
	if s32.rowBytes >= s64.rowBytes {
		t.Fatalf("f32 footprint %d not below f64 %d", s32.rowBytes, s64.rowBytes)
	}

	// And the smaller footprint must actually still solve: a short
	// fixed-work run at n=102k makes progress in f32.
	x := make([]float64, a.Rows)
	b := workload.RandomRHS(a.Rows, 5)
	res, err := s32.Solve(x, b, 0, 2, 2)
	if err != nil && err != ErrNotConverged {
		t.Fatal(err)
	}
	if !(res.Residual > 0 && res.Residual < 1) {
		t.Fatalf("f32 solve made no progress at n=%d: %+v", a.Rows, res)
	}
}
