package core

import (
	"sort"

	"github.com/asynclinalg/asyrgs/internal/rng"
)

// sampler maps a global iteration index to the coordinate updated at that
// iteration. All implementations are pure functions of (stream, index), so
// every worker agrees on the direction sequence without coordination.
type sampler interface {
	// pick returns the coordinate for global iteration j when executed by
	// the given worker (worker matters only for partitioned sampling).
	pick(stream rng.Stream, j uint64, worker int) int
}

// uniformSampler draws uniformly over all n coordinates — the paper's
// headline distribution.
type uniformSampler struct{ n int }

func (s uniformSampler) pick(stream rng.Stream, j uint64, _ int) int {
	return stream.IntnAt(j, s.n)
}

// weightedSampler draws coordinate r with probability A_rr/tr(A), the
// general Leventhal–Lewis distribution. Selection is by binary search on
// the diagonal CDF, so it stays a pure function of (stream, j).
type weightedSampler struct {
	cdf []float64 // cdf[r] = Σ_{i≤r} A_ii / tr(A)
}

func newWeightedSampler(diag []float64) weightedSampler {
	cdf := make([]float64, len(diag))
	var total float64
	for i, d := range diag {
		total += d
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return weightedSampler{cdf: cdf}
}

func (s weightedSampler) pick(stream rng.Stream, j uint64, _ int) int {
	u := stream.Float64At(j)
	r := sort.SearchFloat64s(s.cdf, u)
	if r >= len(s.cdf) {
		r = len(s.cdf) - 1
	}
	return r
}

// partitionedSampler gives worker w exclusive ownership of the contiguous
// block [w·n/P, (w+1)·n/P) and draws uniformly within it — the restricted
// randomization of the paper's distributed-memory discussion. With equal
// blocks and workers drawing at the same rate, the marginal distribution
// over coordinates remains uniform; what changes is that no coordinate is
// ever contended.
type partitionedSampler struct {
	n, workers int
}

func (s partitionedSampler) pick(stream rng.Stream, j uint64, worker int) int {
	if s.workers <= 1 {
		return stream.IntnAt(j, s.n)
	}
	lo := worker * s.n / s.workers
	hi := (worker + 1) * s.n / s.workers
	if hi <= lo {
		// More workers than rows: clamp to a singleton block.
		lo = worker % s.n
		hi = lo + 1
	}
	return lo + stream.IntnAt(j, hi-lo)
}

// newSampler selects the sampler implied by the options. Partitioned takes
// precedence for the asynchronous path; the synchronous path (one worker)
// treats partitioned as uniform, which is the P = 1 special case.
func (s *Solver) newSampler(async bool) sampler {
	switch {
	case s.opts.Partitioned && async && s.opts.Workers > 1:
		return partitionedSampler{n: s.a.Rows, workers: s.opts.Workers}
	case s.opts.DiagonalWeighted:
		return weightedSampler{cdf: s.diagCDF}
	default:
		return uniformSampler{n: s.a.Rows}
	}
}
