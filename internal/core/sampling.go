package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/asynclinalg/asyrgs/internal/alias"
	"github.com/asynclinalg/asyrgs/internal/claim"
	"github.com/asynclinalg/asyrgs/internal/rng"
)

// samplerKind enumerates the direction distributions of the inner loop.
type samplerKind uint8

const (
	// samplerUniform draws uniformly over all n coordinates — the
	// paper's headline distribution.
	samplerUniform samplerKind = iota
	// samplerWeightedAlias draws coordinate r with probability
	// A_rr/tr(A) (the general Leventhal–Lewis distribution) through a
	// Walker/Vose alias table: O(1) per pick.
	samplerWeightedAlias
	// samplerWeightedCDF is the same distribution through the legacy
	// O(log n) binary search over the diagonal CDF, kept as the ablation
	// baseline for the hotpath benchmark grid.
	samplerWeightedCDF
	// samplerPartitioned gives worker w exclusive ownership of the
	// contiguous block [w·n/P, (w+1)·n/P) and draws uniformly within it —
	// the restricted randomization of the paper's distributed-memory
	// discussion. With equal blocks and workers drawing at the same rate
	// the marginal stays uniform; what changes is that no coordinate is
	// ever contended.
	samplerPartitioned
)

// sampler maps a global iteration index to the coordinate updated at
// that iteration. Every mode is a pure function of (stream, index) —
// plus the worker id in partitioned mode, where ownership is part of the
// contract — so all workers agree on the direction sequence without
// coordination. It is a concrete struct rather than an interface so the
// hot loop pays no dynamic dispatch and building one allocates nothing.
type sampler struct {
	kind    samplerKind
	n       int
	workers int
	tab     *alias.Table // samplerWeightedAlias
	cdf     []float64    // samplerWeightedCDF
}

// pick returns the coordinate for global iteration j when executed by
// the given worker (worker matters only for partitioned sampling).
func (s sampler) pick(stream rng.Stream, j uint64, worker int) int {
	switch s.kind {
	case samplerWeightedAlias:
		return s.tab.Pick(stream, j)
	case samplerWeightedCDF:
		u := stream.Float64At(j)
		r := sort.SearchFloat64s(s.cdf, u)
		if r >= len(s.cdf) {
			r = len(s.cdf) - 1
		}
		return r
	case samplerPartitioned:
		lo, hi := s.block(worker)
		return lo + stream.IntnAt(j, hi-lo)
	default:
		return stream.IntnAt(j, s.n)
	}
}

// fill maps global iterations [base, base+len(dst)) to coordinates in
// one pass — the chunked-claiming fast path. The distribution switch is
// hoisted out of the loop and each mode consumes its Philox blocks in a
// tight scan, so a worker that claimed a chunk touches the generator
// machinery once per index with no dispatch. fill(base, dst)[t] equals
// pick(base+t) exactly, for every chunk partitioning.
func (s sampler) fill(stream rng.Stream, base uint64, dst []int32, worker int) {
	switch s.kind {
	case samplerWeightedAlias:
		tab := s.tab
		for t := range dst {
			u1, u2 := stream.Uint64PairAt(base + uint64(t))
			dst[t] = int32(tab.PickUints(u1, u2))
		}
	case samplerWeightedCDF:
		cdf := s.cdf
		for t := range dst {
			u := stream.Float64At(base + uint64(t))
			r := sort.SearchFloat64s(cdf, u)
			if r >= len(cdf) {
				r = len(cdf) - 1
			}
			dst[t] = int32(r)
		}
	case samplerPartitioned:
		lo, hi := s.block(worker)
		for t := range dst {
			dst[t] = int32(lo + stream.IntnAt(base+uint64(t), hi-lo))
		}
	default:
		n := s.n
		for t := range dst {
			dst[t] = int32(stream.IntnAt(base+uint64(t), n))
		}
	}
}

// block returns worker w's owned coordinate range in partitioned mode.
func (s sampler) block(worker int) (lo, hi int) {
	if s.workers <= 1 {
		return 0, s.n
	}
	lo = worker * s.n / s.workers
	hi = (worker + 1) * s.n / s.workers
	if hi <= lo {
		// More workers than rows: clamp to a singleton block.
		lo = worker % s.n
		hi = lo + 1
	}
	return lo, hi
}

// newWeightedCDF builds the cumulative A_rr/tr(A) distribution for the
// CDF ablation path, validating the diagonal the same way the alias
// builder does: entries must be finite and positive (a zero or negative
// diagonal entry, or a non-positive trace, cannot define the
// Leventhal–Lewis distribution and used to produce a silently broken
// CDF).
func newWeightedCDF(diag []float64) ([]float64, error) {
	if err := validateWeights(diag); err != nil {
		return nil, err
	}
	cdf := make([]float64, len(diag))
	var total float64
	for i, d := range diag {
		total += d
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf, nil
}

// validateWeights enforces the diagonal-weighted sampling contract.
func validateWeights(diag []float64) error {
	if len(diag) == 0 {
		return fmt.Errorf("core: diagonal-weighted sampling needs a non-empty diagonal")
	}
	for i, d := range diag {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("core: diagonal-weighted sampling needs a finite diagonal, row %d has %g", i, d)
		}
		if d <= 0 {
			return fmt.Errorf("core: diagonal-weighted sampling needs a positive diagonal, row %d has %g", i, d)
		}
	}
	return nil
}

// newSampler selects the sampler implied by the options. Partitioned
// takes precedence for the asynchronous path; the synchronous path (one
// worker) treats partitioned as uniform, which is the P = 1 special
// case. The weighted distribution picks through the alias table unless
// the WeightedCDF ablation asks for the legacy binary search.
func (s *Solver) newSampler(async bool) sampler {
	switch {
	case s.opts.Partitioned && async && s.opts.Workers > 1:
		return sampler{kind: samplerPartitioned, n: s.a.Rows, workers: s.opts.Workers}
	case s.opts.DiagonalWeighted && s.opts.WeightedCDF:
		return sampler{kind: samplerWeightedCDF, cdf: s.diagCDF}
	case s.opts.DiagonalWeighted:
		return sampler{kind: samplerWeightedAlias, tab: s.diagAlias}
	default:
		return sampler{kind: samplerUniform, n: s.a.Rows}
	}
}

// chunkSize resolves the iteration-claiming granularity (see
// claim.Size). Delay measurement claims one iteration at a time: its
// committed-counter bookkeeping is only meaningful when a claimed index
// is executed immediately.
func (s *Solver) chunkSize(total uint64) int {
	if s.opts.MeasureDelay {
		return 1
	}
	return claim.SizeFor(s.opts.Chunk, total, s.opts.Workers, s.rowBytes)
}
