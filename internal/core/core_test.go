package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/asynclinalg/asyrgs/internal/dense"
	"github.com/asynclinalg/asyrgs/internal/race"
	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func testSPD(t *testing.T, n int, seed uint64) *sparse.CSR {
	t.Helper()
	return workload.RandomSPD(n, 6, 1.5, seed)
}

func TestNewValidation(t *testing.T) {
	rect := sparse.NewCOO(2, 3).ToCSR()
	if _, err := New(rect, Options{}); !errors.Is(err, ErrNotSquare) {
		t.Fatalf("want ErrNotSquare, got %v", err)
	}
	zero := sparse.NewCOO(2, 2)
	zero.Add(0, 0, 1)
	if _, err := New(zero.ToCSR(), Options{}); !errors.Is(err, ErrZeroDiagonal) {
		t.Fatalf("want ErrZeroDiagonal, got %v", err)
	}
	ok := sparse.Identity(3)
	if _, err := New(ok, Options{Beta: 2.5}); err == nil {
		t.Fatal("β outside (0,2) must be rejected")
	}
	if _, err := New(ok, Options{Workers: -1}); err == nil {
		t.Fatal("negative workers must be rejected")
	}
	s, err := New(ok, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Beta() != 1 || s.N() != 3 || s.Matrix() != ok {
		t.Fatal("defaults wrong")
	}
}

func TestSweepsMatchesHandRolledIteration(t *testing.T) {
	// Golden trajectory: replicate Algorithm 1 independently and compare
	// the iterates update-for-update.
	a := testSPD(t, 20, 1)
	b := workload.RandomRHS(20, 2)
	s, err := New(a, Options{Seed: 77, Beta: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 20)
	s.Sweeps(x, b, 3)

	// Reference: same stream, same update rule.
	ref := make([]float64, 20)
	stream := rng.NewStream(77)
	diag := a.Diag()
	invD := make([]float64, 20)
	for i, d := range diag {
		invD[i] = 1 / d
	}
	for j := uint64(0); j < 60; j++ {
		r := stream.IntnAt(j, 20)
		gamma := (b[r] - a.RowDot(r, ref)) * invD[r]
		ref[r] += 0.8 * gamma
	}
	if !vec.Equal(x, ref, 0) {
		t.Fatal("Sweeps diverged from the hand-rolled Algorithm 1")
	}
}

func TestSweepsConvergesToDirectSolution(t *testing.T) {
	a := testSPD(t, 40, 3)
	b := workload.RandomRHS(40, 4)
	want, err := dense.SolveCSR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := New(a, Options{Seed: 5})
	x := make([]float64, 40)
	res, err := s.Solve(x, b, 1e-10, 2000, 10)
	if err != nil {
		t.Fatalf("did not converge: %+v", res)
	}
	if !res.Converged || res.Residual > 1e-10 {
		t.Fatalf("bad result %+v", res)
	}
	if e := vec.RelErr(x, want); e > 1e-8 {
		t.Fatalf("solution error %v vs direct solve", e)
	}
}

func TestSweepsDenseMatchesPerColumn(t *testing.T) {
	// Each column of a multi-RHS solve must equal the single-RHS solve
	// with the same direction stream (directions are shared).
	a := testSPD(t, 15, 9)
	const c = 3
	bblk := workload.MultiRHS(15, c, 31)
	sBlk, _ := New(a, Options{Seed: 123})
	xblk := vec.NewDense(15, c)
	sBlk.SweepsDense(xblk, bblk, 5)

	for j := 0; j < c; j++ {
		bj := make([]float64, 15)
		bblk.Col(bj, j)
		sj, _ := New(a, Options{Seed: 123})
		xj := make([]float64, 15)
		sj.Sweeps(xj, bj, 5)
		for i := 0; i < 15; i++ {
			if math.Abs(xblk.At(i, j)-xj[i]) > 1e-13 {
				t.Fatalf("col %d row %d: block %v single %v", j, i, xblk.At(i, j), xj[i])
			}
		}
	}
}

func TestSweepsContinuesDirectionStream(t *testing.T) {
	// Two calls of k sweeps must equal one call of 2k sweeps: the
	// iteration counter persists across calls.
	a := testSPD(t, 12, 4)
	b := workload.RandomRHS(12, 8)
	s1, _ := New(a, Options{Seed: 6})
	x1 := make([]float64, 12)
	s1.Sweeps(x1, b, 4)

	s2, _ := New(a, Options{Seed: 6})
	x2 := make([]float64, 12)
	s2.Sweeps(x2, b, 2)
	s2.Sweeps(x2, b, 2)
	if !vec.Equal(x1, x2, 0) {
		t.Fatal("split sweeps diverged from contiguous sweeps")
	}
	if s1.Iterations() != s2.Iterations() {
		t.Fatal("iteration counters disagree")
	}
	s2.Reset()
	if s2.Iterations() != 0 {
		t.Fatal("Reset must rewind the stream")
	}
}

func TestAsyncSingleWorkerEqualsSync(t *testing.T) {
	a := testSPD(t, 25, 8)
	b := workload.RandomRHS(25, 9)
	sync, _ := New(a, Options{Seed: 2})
	xs := make([]float64, 25)
	sync.Sweeps(xs, b, 6)

	async, _ := New(a, Options{Seed: 2, Workers: 1})
	xa := make([]float64, 25)
	async.AsyncSweeps(xa, b, 6)
	if !vec.Equal(xs, xa, 0) {
		t.Fatal("Workers=1 async must reduce to the synchronous iteration")
	}
}

func TestAsyncSweepsConverges(t *testing.T) {
	a := testSPD(t, 300, 10)
	b := workload.RandomRHS(300, 11)
	s, _ := New(a, Options{Seed: 3, Workers: 8, MeasureDelay: true})
	x := make([]float64, 300)
	res, err := s.SolveAsync(x, b, 1e-8, 500, 5)
	if err != nil {
		t.Fatalf("async did not converge: %+v", res)
	}
	if res.ObservedTau < 0 || uint64(res.ObservedTau) > s.Iterations() {
		t.Fatalf("nonsense τ̂ = %d", res.ObservedTau)
	}
}

func TestAsyncNonAtomicConverges(t *testing.T) {
	if race.Enabled {
		t.Skip("the NonAtomic ablation races by design (paper §9)")
	}
	// The paper's non-atomic ablation: no convergence theorem, but it
	// must still work in practice on a diagonally dominant system.
	a := testSPD(t, 200, 12)
	b := workload.RandomRHS(200, 13)
	s, _ := New(a, Options{Seed: 4, Workers: 4, NonAtomic: true})
	x := make([]float64, 200)
	if _, err := s.SolveAsync(x, b, 1e-6, 500, 5); err != nil {
		t.Fatal("non-atomic variant failed to converge")
	}
}

func TestAsyncWithSyncPeriodConverges(t *testing.T) {
	a := testSPD(t, 200, 14)
	b := workload.RandomRHS(200, 15)
	s, _ := New(a, Options{Seed: 5, Workers: 4, SyncPeriod: 200})
	x := make([]float64, 200)
	if _, err := s.SolveAsync(x, b, 1e-6, 500, 5); err != nil {
		t.Fatal("occasional-synchronization variant failed to converge")
	}
}

func TestAsyncDenseConverges(t *testing.T) {
	a := testSPD(t, 150, 16)
	const c = 4
	b := workload.MultiRHS(150, c, 17)
	s, _ := New(a, Options{Seed: 6, Workers: 4})
	x := vec.NewDense(150, c)
	s.AsyncSweepsDense(x, b, 80)
	if res := s.ResidualDense(x, b); res > 1e-4 {
		t.Fatalf("multi-RHS async residual %v", res)
	}
	// Each column should agree with an independent solve to similar
	// accuracy (not exactly — interleaving differs).
	for j := 0; j < c; j++ {
		bj := make([]float64, 150)
		b.Col(bj, j)
		want, err := dense.SolveCSR(a, bj)
		if err != nil {
			t.Fatal(err)
		}
		xj := make([]float64, 150)
		x.Col(xj, j)
		if e := vec.RelErr(xj, want); e > 1e-3 {
			t.Fatalf("column %d error %v", j, e)
		}
	}
}

func TestAsyncDenseSingleWorkerEqualsSyncDense(t *testing.T) {
	a := testSPD(t, 30, 18)
	b := workload.MultiRHS(30, 2, 19)
	s1, _ := New(a, Options{Seed: 7})
	x1 := vec.NewDense(30, 2)
	s1.SweepsDense(x1, b, 4)
	s2, _ := New(a, Options{Seed: 7, Workers: 1})
	x2 := vec.NewDense(30, 2)
	s2.AsyncSweepsDense(x2, b, 4)
	if !vec.Equal(x1.Data, x2.Data, 0) {
		t.Fatal("Workers=1 dense async must match sync")
	}
}

func TestErrorMonotonicityInExpectation(t *testing.T) {
	// E‖x_m − x*‖²_A decreases per sweep in expectation; averaged over
	// seeds the measured trajectory must be decreasing across sweeps.
	a := testSPD(t, 60, 20)
	bRHS, xstar := workload.RHSForSolution(a, 21)
	const seeds = 12
	const sweeps = 6
	avg := make([]float64, sweeps+1)
	for sd := uint64(0); sd < seeds; sd++ {
		s, _ := New(a, Options{Seed: 100 + sd})
		x := make([]float64, 60)
		e := a.ANormErr(x, xstar)
		avg[0] += e * e
		for k := 1; k <= sweeps; k++ {
			s.Sweeps(x, bRHS, 1)
			e := a.ANormErr(x, xstar)
			avg[k] += e * e
		}
	}
	for k := 1; k <= sweeps; k++ {
		if avg[k] > avg[k-1] {
			t.Fatalf("average squared A-norm error rose at sweep %d: %v -> %v", k, avg[k-1], avg[k])
		}
	}
}

func TestBetaSweepProperty(t *testing.T) {
	// Any β in (0,2) must converge on an SPD system (eq. 2's guarantee).
	f := func(betaRaw uint8) bool {
		beta := 0.1 + 1.8*float64(betaRaw)/255*0.9 // (0.1, ~1.72)
		a := testSPD(t, 30, 22)
		b := workload.RandomRHS(30, 23)
		s, err := New(a, Options{Seed: 24, Beta: beta})
		if err != nil {
			return false
		}
		x := make([]float64, 30)
		before := s.Residual(x, b)
		s.Sweeps(x, b, 60)
		return s.Residual(x, b) < before*0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalBetaAccessor(t *testing.T) {
	a := testSPD(t, 20, 25)
	s, _ := New(a, Options{})
	bt := s.OptimalBeta(8)
	if bt <= 0 || bt > 1 {
		t.Fatalf("OptimalBeta = %v", bt)
	}
}

func TestPreconditionReducesResidual(t *testing.T) {
	a := testSPD(t, 100, 26)
	r := workload.RandomRHS(100, 27)
	s, _ := New(a, Options{Seed: 28, Workers: 2})
	z := make([]float64, 100)
	s.Precondition(z, r, 5)
	// z ≈ A⁻¹ r, so ‖r − Az‖ should be well below ‖r‖.
	az := make([]float64, 100)
	a.MulVec(az, z)
	vec.Sub(az, r, az)
	if vec.Nrm2(az) > 0.5*vec.Nrm2(r) {
		t.Fatalf("preconditioner too weak: %v vs %v", vec.Nrm2(az), vec.Nrm2(r))
	}
}

func TestSolveReportsNonConvergence(t *testing.T) {
	a := testSPD(t, 50, 29)
	b := workload.RandomRHS(50, 30)
	s, _ := New(a, Options{Seed: 31})
	x := make([]float64, 50)
	res, err := s.Solve(x, b, 1e-30, 2, 1)
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
	if res.Converged || res.Sweeps != 2 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestResidualZeroRHS(t *testing.T) {
	a := sparse.Identity(4)
	s, _ := New(a, Options{})
	x := []float64{1, 0, 0, 0}
	if got := s.Residual(x, make([]float64, 4)); math.Abs(got-1) > 1e-15 {
		t.Fatalf("Residual with zero b should be absolute: %v", got)
	}
}

func TestGeneralDiagonalEquivalence(t *testing.T) {
	// §3 Non-Unit Diagonal: running iteration (3) on B directly must give
	// y_j = D·x_j where x_j runs iteration (1) on A = D·B·D with RHS D·z,
	// using the same directions.
	b := testSPD(t, 18, 32)
	a, sc, err := sparse.UnitDiagonalScale(b)
	if err != nil {
		t.Fatal(err)
	}
	z := workload.RandomRHS(18, 33)

	sb, _ := New(b, Options{Seed: 55})
	y := make([]float64, 18)
	sb.Sweeps(y, z, 4)

	sa, _ := New(a, Options{Seed: 55})
	x := make([]float64, 18)
	dz := sc.RHSToUnit(z)
	sa.Sweeps(x, dz, 4)
	yFromX := sc.SolutionFromUnit(x)
	for i := range y {
		if math.Abs(y[i]-yFromX[i]) > 1e-11 {
			t.Fatalf("diagonal equivalence broken at %d: %v vs %v", i, y[i], yFromX[i])
		}
	}
}
