package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// prepCount counts PrepareMatrix calls; the Prepare/Solve pipeline tests
// use the delta to prove that cached prepared state never recomputes the
// diagonal extraction or sampling CDF.
var prepCount atomic.Uint64

// PrepCount returns the number of per-matrix preparations performed so
// far in this process.
func PrepCount() uint64 { return prepCount.Load() }

// Prep is the reusable per-matrix state of the core solver family: the
// validated diagonal, its reciprocal (hoisted out of the inner loop), and
// the lazily built diagonal-weighted sampling CDF. A Prep is immutable
// after construction and safe for concurrent use; any number of Solvers
// can be forked from it with NewFromPrep without re-running setup.
type Prep struct {
	a    *sparse.CSR
	diag []float64
	invD []float64

	cdfOnce sync.Once
	diagCDF []float64
	cdfErr  error
}

// PrepareMatrix validates the matrix (square, non-zero diagonal) and
// captures the per-matrix solver state: one Diag extraction and one
// reciprocal pass, paid once per matrix instead of once per solve.
func PrepareMatrix(a *sparse.CSR) (*Prep, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows, a.Cols)
	}
	prepCount.Add(1)
	diag := a.Diag()
	invD := make([]float64, len(diag))
	for i, d := range diag {
		if d == 0 {
			return nil, fmt.Errorf("%w: row %d", ErrZeroDiagonal, i)
		}
		invD[i] = 1 / d
	}
	return &Prep{a: a, diag: diag, invD: invD}, nil
}

// Matrix returns the prepared matrix (shared, do not mutate).
func (p *Prep) Matrix() *sparse.CSR { return p.a }

// weightedCDF returns the cumulative A_rr/tr(A) distribution for
// diagonal-weighted sampling, building and validating it on first use.
func (p *Prep) weightedCDF() ([]float64, error) {
	p.cdfOnce.Do(func() {
		for i, d := range p.diag {
			if d <= 0 {
				p.cdfErr = fmt.Errorf("core: diagonal-weighted sampling needs a positive diagonal, row %d has %g", i, d)
				return
			}
		}
		p.diagCDF = newWeightedSampler(p.diag).cdf
	})
	return p.diagCDF, p.cdfErr
}

// NewFromPrep forks a Solver from prepared per-matrix state. It performs
// only option validation — no matrix traversal — so it is cheap enough to
// call once per solve, giving each solve a fresh direction stream and
// delay statistics over the shared immutable Prep.
func NewFromPrep(p *Prep, opts Options) (*Solver, error) {
	beta := opts.Beta
	if beta == 0 {
		beta = 1
	}
	if beta <= 0 || beta >= 2 {
		return nil, fmt.Errorf("core: step size β=%g outside (0,2)", beta)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("core: negative worker count %d", opts.Workers)
	}
	s := &Solver{a: p.a, diag: p.diag, invD: p.invD, beta: beta, opts: opts}
	if opts.DiagonalWeighted {
		cdf, err := p.weightedCDF()
		if err != nil {
			return nil, err
		}
		s.diagCDF = cdf
	}
	return s, nil
}
