package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/asynclinalg/asyrgs/internal/alias"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// prepCount counts PrepareMatrix calls; the Prepare/Solve pipeline tests
// use the delta to prove that cached prepared state never recomputes the
// diagonal extraction or sampling CDF.
var prepCount atomic.Uint64

// PrepCount returns the number of per-matrix preparations performed so
// far in this process.
func PrepCount() uint64 { return prepCount.Load() }

// Prep is the reusable per-matrix state of the core solver family: the
// validated diagonal, its reciprocal (hoisted out of the inner loop), and
// the lazily built diagonal-weighted sampling structures — the O(1)
// Walker/Vose alias table plus the legacy CDF kept for the ablation
// path. A Prep is immutable after construction and safe for concurrent
// use; any number of Solvers can be forked from it with NewFromPrep
// without re-running setup.
type Prep struct {
	a    *sparse.CSR
	diag []float64
	invD []float64

	cdfOnce sync.Once
	diagCDF []float64
	cdfErr  error

	aliasOnce sync.Once
	diagAlias *alias.Table
	aliasErr  error
}

// PrepareMatrix validates the matrix (square, non-zero diagonal) and
// captures the per-matrix solver state: one Diag extraction and one
// reciprocal pass, paid once per matrix instead of once per solve.
func PrepareMatrix(a *sparse.CSR) (*Prep, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows, a.Cols)
	}
	prepCount.Add(1)
	diag := a.Diag()
	invD := make([]float64, len(diag))
	for i, d := range diag {
		if d == 0 {
			return nil, fmt.Errorf("%w: row %d", ErrZeroDiagonal, i)
		}
		invD[i] = 1 / d
	}
	return &Prep{a: a, diag: diag, invD: invD}, nil
}

// Matrix returns the prepared matrix (shared, do not mutate).
func (p *Prep) Matrix() *sparse.CSR { return p.a }

// weightedCDF returns the cumulative A_rr/tr(A) distribution for the
// WeightedCDF ablation, building and validating it on first use.
func (p *Prep) weightedCDF() ([]float64, error) {
	p.cdfOnce.Do(func() {
		p.diagCDF, p.cdfErr = newWeightedCDF(p.diag)
	})
	return p.diagCDF, p.cdfErr
}

// weightedAlias returns the O(1) alias table over A_rr/tr(A), building
// and validating it on first use. Construction is O(n), paid once per
// prepared matrix — which is what lets a serving deployment's prep cache
// amortize it across every warm diagonal-weighted solve.
func (p *Prep) weightedAlias() (*alias.Table, error) {
	p.aliasOnce.Do(func() {
		if err := validateWeights(p.diag); err != nil {
			p.aliasErr = err
			return
		}
		p.diagAlias, p.aliasErr = alias.New(p.diag)
	})
	return p.diagAlias, p.aliasErr
}

// NewFromPrep forks a Solver from prepared per-matrix state. It performs
// only option validation — no matrix traversal — so it is cheap enough to
// call once per solve, giving each solve a fresh direction stream and
// delay statistics over the shared immutable Prep.
func NewFromPrep(p *Prep, opts Options) (*Solver, error) {
	s := &Solver{}
	if err := s.Reinit(p, opts); err != nil {
		return nil, err
	}
	return s, nil
}

// Reinit points an existing Solver at prepared per-matrix state,
// resetting its direction stream and delay statistics while keeping its
// scratch buffers. Pools use it to recycle Solvers across warm solves so
// the prepared request path allocates nothing.
func (s *Solver) Reinit(p *Prep, opts Options) error {
	beta := opts.Beta
	if beta == 0 {
		beta = 1
	}
	if beta <= 0 || beta >= 2 {
		return fmt.Errorf("core: step size β=%g outside (0,2)", beta)
	}
	if opts.Workers < 0 {
		return fmt.Errorf("core: negative worker count %d", opts.Workers)
	}
	if opts.Chunk < 0 {
		return fmt.Errorf("core: negative claiming chunk %d", opts.Chunk)
	}
	s.a, s.diag, s.invD = p.a, p.diag, p.invD
	s.beta, s.opts = beta, opts
	s.diagCDF, s.diagAlias = nil, nil
	s.Reset()
	if opts.DiagonalWeighted {
		tab, err := p.weightedAlias()
		if err != nil {
			return err
		}
		s.diagAlias = tab
		if opts.WeightedCDF {
			cdf, err := p.weightedCDF()
			if err != nil {
				return err
			}
			s.diagCDF = cdf
		}
	}
	return nil
}
