package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/asynclinalg/asyrgs/internal/alias"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// prepCount counts PrepareMatrix calls; the Prepare/Solve pipeline tests
// use the delta to prove that cached prepared state never recomputes the
// diagonal extraction or sampling CDF.
var prepCount atomic.Uint64

// PrepCount returns the number of per-matrix preparations performed so
// far in this process.
func PrepCount() uint64 { return prepCount.Load() }

// Prep is the reusable per-matrix state of the core solver family: the
// validated diagonal, its reciprocal (hoisted out of the inner loop), and
// the lazily built diagonal-weighted sampling structures — the O(1)
// Walker/Vose alias table plus the legacy CDF kept for the ablation
// path. A Prep is immutable after construction and safe for concurrent
// use; any number of Solvers can be forked from it with NewFromPrep
// without re-running setup.
type Prep struct {
	a    *sparse.CSR
	diag []float64
	invD []float64

	cdfOnce sync.Once
	diagCDF []float64
	cdfErr  error

	aliasOnce sync.Once
	diagAlias *alias.Table
	aliasErr  error

	f32Once sync.Once
	a32     *sparse.CSR32
	invD32  []float64
	f32Err  error
}

// PrepareMatrix validates the matrix (square, non-zero diagonal) and
// captures the per-matrix solver state: one Diag extraction and one
// reciprocal pass, paid once per matrix instead of once per solve.
func PrepareMatrix(a *sparse.CSR) (*Prep, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows, a.Cols)
	}
	prepCount.Add(1)
	diag := a.Diag()
	invD := make([]float64, len(diag))
	for i, d := range diag {
		if d == 0 {
			return nil, fmt.Errorf("%w: row %d", ErrZeroDiagonal, i)
		}
		invD[i] = 1 / d
	}
	return &Prep{a: a, diag: diag, invD: invD}, nil
}

// Matrix returns the prepared matrix (shared, do not mutate).
func (p *Prep) Matrix() *sparse.CSR { return p.a }

// State exposes the serializable per-matrix state — the validated
// diagonal and its reciprocal — for the durable prep-store codec. The
// lazily memoized structures (CDF, alias table, float32 view) are
// deliberately absent: each is an O(n) rebuild from this state, cheaper
// to reconstruct than to ship and re-verify. Shared slices; do not
// mutate.
func (p *Prep) State() (diag, invD []float64) { return p.diag, p.invD }

// PrepFromState rebuilds a Prep over a from state captured by State on
// an identical matrix, skipping the O(nnz) diagonal extraction — the
// point of restoring from the durable store. It re-checks the shape and
// the non-zero-diagonal invariant (O(n)), so state that passed blob
// integrity checks but disagrees structurally with the matrix is
// rejected instead of poisoning solves. It does not count as a
// preparation in PrepCount.
func PrepFromState(a *sparse.CSR, diag, invD []float64) (*Prep, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows, a.Cols)
	}
	if len(diag) != a.Rows || len(invD) != a.Rows {
		return nil, fmt.Errorf("core: restored state sized %d/%d for a %d-row matrix", len(diag), len(invD), a.Rows)
	}
	for i, d := range diag {
		if d == 0 || invD[i] == 0 {
			return nil, fmt.Errorf("%w: row %d in restored state", ErrZeroDiagonal, i)
		}
	}
	return &Prep{a: a, diag: diag, invD: invD}, nil
}

// weightedCDF returns the cumulative A_rr/tr(A) distribution for the
// WeightedCDF ablation, building and validating it on first use.
func (p *Prep) weightedCDF() ([]float64, error) {
	p.cdfOnce.Do(func() {
		p.diagCDF, p.cdfErr = newWeightedCDF(p.diag)
	})
	return p.diagCDF, p.cdfErr
}

// weightedAlias returns the O(1) alias table over A_rr/tr(A), building
// and validating it on first use. Construction is O(n), paid once per
// prepared matrix — which is what lets a serving deployment's prep cache
// amortize it across every warm diagonal-weighted solve.
func (p *Prep) weightedAlias() (*alias.Table, error) {
	p.aliasOnce.Do(func() {
		if err := validateWeights(p.diag); err != nil {
			p.aliasErr = err
			return
		}
		p.diagAlias, p.aliasErr = alias.New(p.diag)
	})
	return p.diagAlias, p.aliasErr
}

// float32View returns the float32-value storage view of the matrix plus
// the reciprocal of the rounded diagonal, building both on first use. The
// hot loops divide by fl32(A_rr) — not A_rr — so the fixed point is the
// exact solution of the rounded system. Rounding that underflows a
// diagonal entry to zero is rejected.
func (p *Prep) float32View() (*sparse.CSR32, []float64, error) {
	p.f32Once.Do(func() {
		a32 := sparse.NewCSR32(p.a)
		invD32 := make([]float64, len(p.diag))
		for i, d := range p.diag {
			d32 := float64(float32(d))
			if d32 == 0 {
				p.f32Err = fmt.Errorf("%w: row %d underflows float32", ErrZeroDiagonal, i)
				return
			}
			invD32[i] = 1 / d32
		}
		p.a32, p.invD32 = a32, invD32
	})
	return p.a32, p.invD32, p.f32Err
}

// Float32View returns the memoized float32-storage view of the prepared
// matrix (see Options.Float32), building and validating it on first use.
// Callers that evaluate residuals outside a Solver — the registry's
// batched SpMM residual pass — read the same view the iteration uses.
func (p *Prep) Float32View() (*sparse.CSR32, error) {
	a32, _, err := p.float32View()
	return a32, err
}

// NewFromPrep forks a Solver from prepared per-matrix state. It performs
// only option validation — no matrix traversal — so it is cheap enough to
// call once per solve, giving each solve a fresh direction stream and
// delay statistics over the shared immutable Prep.
func NewFromPrep(p *Prep, opts Options) (*Solver, error) {
	s := &Solver{}
	if err := s.Reinit(p, opts); err != nil {
		return nil, err
	}
	return s, nil
}

// Reinit points an existing Solver at prepared per-matrix state,
// resetting its direction stream and delay statistics while keeping its
// scratch buffers. Pools use it to recycle Solvers across warm solves so
// the prepared request path allocates nothing.
//
//asyrgs:noalloc
func (s *Solver) Reinit(p *Prep, opts Options) error {
	beta := opts.Beta
	if beta == 0 {
		beta = 1
	}
	if beta <= 0 || beta >= 2 {
		return fmt.Errorf("core: step size β=%g outside (0,2)", beta)
	}
	if opts.Workers < 0 {
		return fmt.Errorf("core: negative worker count %d", opts.Workers)
	}
	if opts.Chunk < 0 {
		return fmt.Errorf("core: negative claiming chunk %d", opts.Chunk)
	}
	s.a, s.diag, s.invD = p.a, p.diag, p.invD
	s.a32 = nil
	valBytes := 8
	if opts.Float32 {
		a32, invD32, err := p.float32View()
		if err != nil {
			return err
		}
		s.a32, s.invD = a32, invD32
		valBytes = 4
	}
	// Per-iteration cache footprint for the chunk auto-sizer: mean row
	// values + int column indices, plus the x, b and invD entries touched.
	meanNNZ := 0
	if p.a.Rows > 0 {
		meanNNZ = p.a.NNZ() / p.a.Rows
	}
	s.rowBytes = meanNNZ*(valBytes+8) + 24
	s.beta, s.opts = beta, opts
	s.diagCDF, s.diagAlias = nil, nil
	s.Reset()
	if opts.DiagonalWeighted {
		tab, err := p.weightedAlias()
		if err != nil {
			return err
		}
		s.diagAlias = tab
		if opts.WeightedCDF {
			cdf, err := p.weightedCDF()
			if err != nil {
				return err
			}
			s.diagCDF = cdf
		}
	}
	return nil
}
