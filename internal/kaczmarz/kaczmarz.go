// Package kaczmarz implements the randomized Kaczmarz method of Strohmer
// and Vershynin and a shared-memory asynchronous variant in the style of
// Liu, Wright and Sridhar — the closest related work the paper discusses
// (§2). It serves as a baseline: Kaczmarz projects onto row hyperplanes of
// a consistent system, while AsyRGS descends along coordinates of an SPD
// system; both get linear rates from randomization.
package kaczmarz

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/asynclinalg/asyrgs/internal/alias"
	"github.com/asynclinalg/asyrgs/internal/claim"
	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// ErrNotConverged mirrors the solver packages' sentinel.
var ErrNotConverged = errors.New("kaczmarz: did not reach the requested tolerance")

// Options configure a Kaczmarz run.
type Options struct {
	// Beta is a step-size relaxation in (0,2); 0 means 1 (exact
	// projection onto the selected hyperplane).
	Beta float64
	// Workers > 1 runs the asynchronous variant.
	Workers int
	// Seed keys the row-selection stream.
	Seed uint64
	// Uniform selects rows uniformly instead of the Strohmer–Vershynin
	// ‖A_i‖² distribution.
	Uniform bool
	// WeightedCDF routes the norm-weighted draw through the legacy
	// O(log n) binary search over the row-norm CDF instead of the O(1)
	// alias table — the ablation baseline of the hotpath benchmark grid.
	WeightedCDF bool
	// Chunk is the number of iteration indices an asynchronous worker
	// claims from the shared counter at a time; zero auto-sizes from the
	// budget and worker count. Row selection stays a pure function of
	// (seed, j), so the chunk size never changes the projection multiset.
	Chunk int
	// Float32 stores the matrix values (and the row norms the projection
	// divides by) in float32-rounded form while accumulating in float64;
	// the iteration then projects onto the rows of fl32(A). Sampling
	// stays on the float64 norms, keeping draw sequences identical
	// across precisions.
	Float32 bool
}

// Solver holds the matrix and the row-sampling distribution.
type Solver struct {
	a         *sparse.CSR
	a32       *sparse.CSR32 // non-nil under Options.Float32
	rowNorm2  []float64     // ‖A_i‖² (of fl32(A) under Float32) — the projection divisor
	sampNorm2 []float64     // float64 ‖A_i‖², the sampling weights (rejection path)
	cdf       []float64     // cumulative ‖A_i‖²/‖A‖_F², for the CDF ablation
	tab       *alias.Table  // O(1) norm-weighted row draw
	opts      Options
	beta      float64
	next      uint64
	rowBytes  int // per-iteration cache footprint estimate for chunk sizing
}

// prepCount counts PrepareMatrix calls; the Prepare/Solve pipeline tests
// use the delta to prove cached prepared state never recomputes row norms.
var prepCount atomic.Uint64

// PrepCount returns the number of per-matrix preparations (row-norm and
// sampling-CDF passes) performed so far in this process.
func PrepCount() uint64 { return prepCount.Load() }

// Prep is the reusable per-matrix state of the Kaczmarz solvers: the row
// norms ‖A_i‖², the Strohmer–Vershynin sampling CDF (ablation path) and
// the O(1) alias table the hot loop draws through. Immutable after
// construction and safe for concurrent use; fork Solvers from it with
// NewFromPrep.
type Prep struct {
	a        *sparse.CSR
	rowNorm2 []float64
	cdf      []float64
	tab      *alias.Table

	f32Once    sync.Once
	a32        *sparse.CSR32
	rowNorm232 []float64
	f32Err     error
}

// PrepareMatrix computes the row norms and the norm-weighted sampling
// distribution for A, paid once per matrix instead of once per solve.
func PrepareMatrix(a *sparse.CSR) (*Prep, error) {
	if a.Rows == 0 {
		return nil, errors.New("kaczmarz: empty matrix")
	}
	prepCount.Add(1)
	p := &Prep{a: a,
		rowNorm2: make([]float64, a.Rows),
		cdf:      make([]float64, a.Rows),
	}
	var total float64
	for i := 0; i < a.Rows; i++ {
		var nz float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			nz += a.Vals[k] * a.Vals[k]
		}
		p.rowNorm2[i] = nz
		total += nz
		p.cdf[i] = total
	}
	if total == 0 {
		return nil, errors.New("kaczmarz: zero matrix")
	}
	for i := range p.cdf {
		p.cdf[i] /= total
	}
	// The alias table makes the norm-weighted draw O(1); squared norms
	// are non-negative and total > 0 was just checked, but the builder
	// re-validates (non-finite entries from overflowing rows surface
	// here with a clear error instead of a silently broken table).
	tab, err := alias.New(p.rowNorm2)
	if err != nil {
		return nil, fmt.Errorf("kaczmarz: building row-sampling table: %w", err)
	}
	p.tab = tab
	return p, nil
}

// State exposes the serializable per-matrix state — the squared row
// norms — for the durable prep-store codec. The CDF and alias table are
// absent: both are O(n) rebuilds from the norms, cheaper to reconstruct
// than to ship. Shared slice; do not mutate.
func (p *Prep) State() []float64 { return p.rowNorm2 }

// PrepFromState rebuilds a Prep over a from row norms captured by State
// on an identical matrix, skipping the O(nnz) norm pass. The sampling
// CDF and alias table are reconstructed (O(n)), which re-validates the
// norms: non-finite or negative entries and an all-zero matrix are
// rejected exactly as in PrepareMatrix. It does not count in PrepCount.
func PrepFromState(a *sparse.CSR, rowNorm2 []float64) (*Prep, error) {
	if a.Rows == 0 {
		return nil, errors.New("kaczmarz: empty matrix")
	}
	if len(rowNorm2) != a.Rows {
		return nil, fmt.Errorf("kaczmarz: restored state has %d row norms for a %d-row matrix", len(rowNorm2), a.Rows)
	}
	p := &Prep{a: a, rowNorm2: rowNorm2, cdf: make([]float64, a.Rows)}
	var total float64
	for i, nz := range rowNorm2 {
		if nz < 0 {
			return nil, fmt.Errorf("kaczmarz: restored row norm %d is negative", i)
		}
		total += nz
		p.cdf[i] = total
	}
	if total == 0 {
		return nil, errors.New("kaczmarz: zero matrix")
	}
	for i := range p.cdf {
		p.cdf[i] /= total
	}
	tab, err := alias.New(p.rowNorm2)
	if err != nil {
		return nil, fmt.Errorf("kaczmarz: rebuilding row-sampling table: %w", err)
	}
	p.tab = tab
	return p, nil
}

// Matrix returns the prepared matrix (shared, do not mutate).
func (p *Prep) Matrix() *sparse.CSR { return p.a }

// float32View returns the float32-value view of the matrix and the row
// norms of the rounded values, building both on first use. A nonzero row
// whose norm underflows float32 storage is rejected: it would be sampled
// (weights stay on the float64 norms) but have no finite projection.
func (p *Prep) float32View() (*sparse.CSR32, []float64, error) {
	p.f32Once.Do(func() {
		a32 := sparse.NewCSR32(p.a)
		n2 := make([]float64, a32.Rows)
		for i := 0; i < a32.Rows; i++ {
			var nz float64
			for k := a32.RowPtr[i]; k < a32.RowPtr[i+1]; k++ {
				v := float64(a32.Vals[k])
				nz += v * v
			}
			if nz == 0 && p.rowNorm2[i] > 0 {
				p.f32Err = fmt.Errorf("kaczmarz: row %d norm underflows float32", i)
				return
			}
			n2[i] = nz
		}
		p.a32, p.rowNorm232 = a32, n2
	})
	return p.a32, p.rowNorm232, p.f32Err
}

// NewFromPrep forks a Solver from prepared per-matrix state, validating
// only the options — no matrix traversal.
func NewFromPrep(p *Prep, opts Options) (*Solver, error) {
	beta := opts.Beta
	if beta == 0 {
		beta = 1
	}
	if beta <= 0 || beta >= 2 {
		return nil, errors.New("kaczmarz: step size outside (0,2)")
	}
	if opts.Chunk < 0 {
		return nil, errors.New("kaczmarz: negative claiming chunk")
	}
	s := &Solver{a: p.a, rowNorm2: p.rowNorm2, sampNorm2: p.rowNorm2,
		cdf: p.cdf, tab: p.tab, opts: opts, beta: beta}
	valBytes := 8
	if opts.Float32 {
		a32, n232, err := p.float32View()
		if err != nil {
			return nil, err
		}
		s.a32, s.rowNorm2 = a32, n232
		valBytes = 4
	}
	meanNNZ := 0
	if p.a.Rows > 0 {
		meanNNZ = p.a.NNZ() / p.a.Rows
	}
	// One projection reads and scatters a full row: values + indices for
	// both passes, plus the touched x entries and the b/norm scalars.
	s.rowBytes = meanNNZ*(valBytes+8+8) + 24
	return s, nil
}

// New validates and prepares a solver for A·x = b. Rows with zero norm are
// never selected. Callers that solve the same matrix repeatedly should
// PrepareMatrix once and fork Solvers with NewFromPrep instead.
func New(a *sparse.CSR, opts Options) (*Solver, error) {
	p, err := PrepareMatrix(a)
	if err != nil {
		return nil, err
	}
	return NewFromPrep(p, opts)
}

// pickRow maps iteration index j to a row according to the configured
// distribution; it skips zero rows under uniform sampling by rejection
// against consecutive sub-indices. The norm-weighted draw goes through
// the O(1) alias table (a zero-norm row has zero weight and is never
// drawn); WeightedCDF keeps the legacy binary search for ablations.
// Either way the row is a pure function of (seed, j).
func (s *Solver) pickRow(stream rng.Stream, j uint64) int {
	if s.opts.Uniform {
		//asyrgs:boundedloop rejection terminates because PrepareMatrix guarantees at least one row with positive norm
		for sub := uint64(0); ; sub++ {
			i := stream.IntnAt(j*31+sub, s.a.Rows)
			if s.sampNorm2[i] > 0 {
				return i
			}
		}
	}
	if s.opts.WeightedCDF {
		u := stream.Float64At(j)
		return sort.SearchFloat64s(s.cdf, u)
	}
	return s.tab.Pick(stream, j)
}

// step performs one Kaczmarz projection for row i on iterate x: a
// gather-dot to form the correction, then a scatter-axpy back over the
// row's support, both through the unrolled sparse kernels. concurrent
// selects atomic reads and CAS adds for the multi-worker path.
func (s *Solver) step(x, b []float64, i int, concurrent bool) {
	var dot float64
	switch {
	case s.a32 != nil && concurrent:
		dot = s.a32.RowDotAtomic(i, x)
	case s.a32 != nil:
		dot = s.a32.RowDot(i, x)
	case concurrent:
		dot = s.a.RowDotAtomic(i, x)
	default:
		dot = s.a.RowDot(i, x)
	}
	gamma := s.beta * (b[i] - dot) / s.rowNorm2[i]
	switch {
	case s.a32 != nil && concurrent:
		s.a32.RowAxpyAtomic(i, x, gamma)
	case s.a32 != nil:
		s.a32.RowAxpy(i, x, gamma)
	case concurrent:
		s.a.RowAxpyAtomic(i, x, gamma)
	default:
		s.a.RowAxpy(i, x, gamma)
	}
}

// Iterations runs m iterations (synchronously for Workers <= 1, otherwise
// asynchronously with atomic coordinate updates) and returns the relative
// residual.
func (s *Solver) Iterations(x, b []float64, m int) float64 {
	if len(x) != s.a.Cols || len(b) != s.a.Rows {
		panic("kaczmarz: shape mismatch")
	}
	stream := rng.NewStream(s.opts.Seed)
	start := s.next
	end := start + uint64(m)
	if s.opts.Workers <= 1 {
		for j := start; j < end; j++ {
			i := s.pickRow(stream, j)
			s.step(x, b, i, false)
		}
	} else {
		// Chunked claiming: one CAS per chunk of indices instead of one
		// per projection takes the shared counter off the critical path.
		chunk := s.chunkSize(end - start)
		var counter atomic.Uint64
		counter.Store(start)
		var wg sync.WaitGroup
		for w := 0; w < s.opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				//asyrgs:boundedloop the claimed counter is monotone; every pass claims chunk>=1 indices and exits once base passes end
				for {
					base := counter.Add(uint64(chunk)) - uint64(chunk)
					if base >= end {
						return
					}
					top := base + uint64(chunk)
					if top > end {
						top = end
					}
					for j := base; j < top; j++ {
						i := s.pickRow(stream, j)
						s.step(x, b, i, true)
					}
				}
			}()
		}
		wg.Wait()
	}
	s.next = end
	return s.Residual(x, b)
}

// chunkSize resolves the claiming granularity (see claim.SizeFor).
func (s *Solver) chunkSize(total uint64) int {
	return claim.SizeFor(s.opts.Chunk, total, s.opts.Workers, s.rowBytes)
}

// Solve iterates until the relative residual reaches tol or maxIter
// iterations are spent, checking every checkEvery iterations (n if zero).
func (s *Solver) Solve(x, b []float64, tol float64, maxIter, checkEvery int) (int, float64, error) {
	if checkEvery <= 0 {
		checkEvery = s.a.Cols
		if checkEvery == 0 {
			checkEvery = 1
		}
	}
	done := 0
	for done < maxIter {
		step := checkEvery
		if done+step > maxIter {
			step = maxIter - done
		}
		res := s.Iterations(x, b, step)
		done += step
		if res <= tol {
			return done, res, nil
		}
	}
	return done, s.Residual(x, b), ErrNotConverged
}

// Residual returns ‖b−Ax‖₂/‖b‖₂.
func (s *Solver) Residual(x, b []float64) float64 {
	r := make([]float64, s.a.Rows)
	if s.a32 != nil {
		s.a32.MulVec(r, x)
	} else {
		s.a.MulVec(r, x)
	}
	vec.Sub(r, b, r)
	nb := vec.Nrm2(b)
	if nb == 0 {
		nb = 1
	}
	return vec.Nrm2(r) / nb
}

// ExpectedRate returns the Strohmer–Vershynin per-iteration contraction
// factor 1 − λmin(AᵀA)/‖A‖_F² on E‖x−x*‖₂² for norm-weighted sampling.
func (s *Solver) ExpectedRate(lambdaMinATA float64) float64 {
	var frob2 float64
	for _, v := range s.rowNorm2 {
		frob2 += v
	}
	if frob2 == 0 {
		return 1
	}
	r := 1 - lambdaMinATA/frob2
	return math.Max(0, r)
}
