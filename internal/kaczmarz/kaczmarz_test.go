package kaczmarz

import (
	"math"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/dense"
	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(sparse.NewCOO(0, 0).ToCSR(), Options{}); err == nil {
		t.Fatal("empty matrix must be rejected")
	}
	if _, err := New(sparse.NewCOO(2, 2).ToCSR(), Options{}); err == nil {
		t.Fatal("zero matrix must be rejected")
	}
	if _, err := New(sparse.Identity(2), Options{Beta: 2}); err == nil {
		t.Fatal("β=2 must be rejected")
	}
}

func TestConvergesOnSquareSystem(t *testing.T) {
	a := workload.RandomSPD(40, 5, 1.5, 1) // nonsingular, consistent for any b
	b, xstar := workload.RHSForSolution(a, 2)
	s, err := New(a, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 40)
	iters, res, err := s.Solve(x, b, 1e-9, 200_000, 4000)
	if err != nil {
		t.Fatalf("Kaczmarz did not converge after %d iterations (res %v)", iters, res)
	}
	if e := vec.RelErr(x, xstar); e > 1e-7 {
		t.Fatalf("solution error %v", e)
	}
}

func TestConvergesOnConsistentOverdetermined(t *testing.T) {
	a := workload.RandomOverdetermined(80, 30, 4, 4)
	b, xstar := workload.RHSForSolution(a, 5) // consistent: b = A·x*
	s, _ := New(a, Options{Seed: 6})
	x := make([]float64, 30)
	_, res, err := s.Solve(x, b, 1e-9, 500_000, 5000)
	if err != nil {
		t.Fatalf("res %v: %v", res, err)
	}
	if e := vec.RelErr(x, xstar); e > 1e-6 {
		t.Fatalf("solution error %v", e)
	}
}

func TestUniformSamplingConverges(t *testing.T) {
	a := workload.RandomSPD(30, 4, 1.5, 7)
	b, _ := workload.RHSForSolution(a, 8)
	s, _ := New(a, Options{Seed: 9, Uniform: true})
	x := make([]float64, 30)
	if _, res, err := s.Solve(x, b, 1e-8, 200_000, 3000); err != nil {
		t.Fatalf("uniform sampling did not converge (res %v)", res)
	}
}

func TestAsyncConverges(t *testing.T) {
	a := workload.RandomSPD(100, 5, 1.5, 10)
	b, xstar := workload.RHSForSolution(a, 11)
	s, _ := New(a, Options{Seed: 12, Workers: 4, Beta: 0.8})
	x := make([]float64, 100)
	if _, res, err := s.Solve(x, b, 1e-7, 2_000_000, 20_000); err != nil {
		t.Fatalf("async Kaczmarz did not converge (res %v)", res)
	}
	if e := vec.RelErr(x, xstar); e > 1e-4 {
		t.Fatalf("async solution error %v", e)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := workload.RandomSPD(20, 4, 1.5, 13)
	b := workload.RandomRHS(20, 14)
	run := func() []float64 {
		s, _ := New(a, Options{Seed: 15})
		x := make([]float64, 20)
		s.Iterations(x, b, 500)
		return x
	}
	if !vec.Equal(run(), run(), 0) {
		t.Fatal("sequential Kaczmarz must be deterministic for a fixed seed")
	}
}

func TestRateMatchesTheoryOrder(t *testing.T) {
	// E‖x_m − x*‖² ≤ (1 − λmin(AᵀA)/‖A‖_F²)^m: check the measured decay
	// does not violate the bound grossly (single run, generous factor).
	a := workload.RandomSPD(30, 4, 2.0, 16)
	b, xstar := workload.RHSForSolution(a, 17)
	s, _ := New(a, Options{Seed: 18})
	x := make([]float64, 30)
	e0 := normSq(x, xstar)
	const m = 3000
	s.Iterations(x, b, m)
	em := normSq(x, xstar)
	gram := sparse.Gram(a)
	// crude λmin estimate via dense solve of smallest Rayleigh quotient is
	// overkill; Gershgorin lower bound suffices for a loose check.
	rate := s.ExpectedRate(1e-6) // ≈1; only sanity-check direction
	if rate <= 0 || rate > 1 {
		t.Fatalf("ExpectedRate = %v", rate)
	}
	if em > e0 {
		t.Fatalf("error grew: %v -> %v", e0, em)
	}
	_ = gram
}

func normSq(x, y []float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

func TestResidualMetric(t *testing.T) {
	a := sparse.Identity(3)
	s, _ := New(a, Options{})
	x := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	if res := s.Residual(x, b); res != 0 {
		t.Fatalf("Residual at solution = %v", res)
	}
	if res := s.Residual(make([]float64, 3), b); math.Abs(res-1) > 1e-15 {
		t.Fatalf("Residual at zero = %v, want 1", res)
	}
}

func TestExactSolutionReachedByProjectionOnIdentity(t *testing.T) {
	// On the identity each projection sets one coordinate exactly, so n·ln
	// coupon-collector iterations solve the system to machine precision.
	a := sparse.Identity(8)
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	s, _ := New(a, Options{Seed: 19})
	x := make([]float64, 8)
	s.Iterations(x, b, 500)
	if e := vec.RelErr(x, b); e > 1e-14 {
		t.Fatalf("identity system not solved exactly: %v", e)
	}
}

func TestDirectSolveAgreement(t *testing.T) {
	a := workload.RandomSPD(25, 4, 1.6, 20)
	b := workload.RandomRHS(25, 21)
	want, err := dense.SolveCSR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := New(a, Options{Seed: 22})
	x := make([]float64, 25)
	if _, res, err := s.Solve(x, b, 1e-10, 500_000, 5000); err != nil {
		t.Fatalf("res %v: %v", res, err)
	}
	if e := vec.RelErr(x, want); e > 1e-8 {
		t.Fatalf("Kaczmarz vs direct: %v", e)
	}
}

// TestAliasVsCDFRowMarginals checks that the O(1) alias draw and the
// legacy binary-search CDF draw select rows with the same marginal
// distribution over a large budget.
func TestAliasVsCDFRowMarginals(t *testing.T) {
	a := workload.RandomSPD(12, 4, 1.5, 60)
	sAlias, err := New(a, Options{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	sCDF, err := New(a, Options{Seed: 61, WeightedCDF: true})
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.NewStream(61)
	const draws = 200_000
	aliasCounts := make([]float64, a.Rows)
	cdfCounts := make([]float64, a.Rows)
	for j := uint64(0); j < draws; j++ {
		aliasCounts[sAlias.pickRow(stream, j)]++
		cdfCounts[sCDF.pickRow(stream, j)]++
	}
	for i := 0; i < a.Rows; i++ {
		if math.Abs(aliasCounts[i]-cdfCounts[i])/draws > 6e-3 {
			t.Fatalf("row %d: alias marginal %.4f vs CDF marginal %.4f",
				i, aliasCounts[i]/draws, cdfCounts[i]/draws)
		}
	}
}

// TestChunkedAsyncConverges runs the asynchronous variant at explicit
// claiming granularities; the projection multiset is chunk-invariant so
// every configuration must converge.
func TestChunkedAsyncConverges(t *testing.T) {
	a := workload.RandomSPD(60, 5, 1.5, 62)
	b, xstar := workload.RHSForSolution(a, 63)
	for _, chunk := range []int{0, 1, 64, 100000} {
		s, err := New(a, Options{Seed: 64, Workers: 4, Chunk: chunk})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 60)
		if _, res, err := s.Solve(x, b, 1e-8, 400000, 5000); err != nil {
			t.Fatalf("chunk=%d did not converge: residual %g", chunk, res)
		}
		if e := vec.RelErr(x, xstar); e > 1e-6 {
			t.Fatalf("chunk=%d solution error %g", chunk, e)
		}
	}
	if _, err := New(a, Options{Chunk: -2}); err == nil {
		t.Fatal("negative chunk must be rejected")
	}
}
