//go:build race

// Package race reports whether the race detector is active, so tests can
// skip the deliberately racy NonAtomic ablation (whose races are the
// paper's §9 experiment, not a bug) while everything else stays
// race-clean.
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
