// The deterministic in-process soak harness: every scenario in the
// catalogue runs against a self-hosted server through the direct-handler
// transport with a fixed request budget, race-clean in -short seconds,
// and the end-to-end accounting invariants are asserted — no request
// lost, client-observed coalescing exactly matching the server's
// counters, warm traffic hitting the prep cache, /metrics agreeing with
// the run. This is CI's load-smoke gate.
package load_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/load"
	"github.com/asynclinalg/asyrgs/internal/serve"
)

// soakOptions returns the per-scenario run shape: small fixed budgets so
// a full soak stays in -short time even under -race.
func soakOptions(scenario string) load.Options {
	return load.Options{
		Scenario:    scenario,
		Clients:     4,
		MaxRequests: 24,
		Duration:    2 * time.Minute, // safety cap; the budget governs
		Seed:        7,
		N:           64,
	}
}

func soakConfig() serve.Config {
	return serve.Config{
		MaxConcurrent: 4,
		CacheSize:     8,
		BatchWindow:   5 * time.Millisecond,
		SolveTimeout:  30 * time.Second,
	}
}

// checkAccounting asserts the scenario-independent invariants.
func checkAccounting(t *testing.T, rep load.Report, opts load.Options) {
	t.Helper()
	if rep.Requests != uint64(opts.MaxRequests) {
		t.Fatalf("issued %d requests, want the full budget of %d (duration cap hit?)",
			rep.Requests, opts.MaxRequests)
	}
	if sum := rep.OK + rep.Errors + rep.Rejected + rep.Cancelled; sum != rep.Requests {
		t.Fatalf("request lost: outcomes sum to %d of %d (%+v)", sum, rep.Requests, rep)
	}
	var histTotal uint64
	for _, c := range rep.LatencyHistUS {
		histTotal += c
	}
	if histTotal != rep.Requests {
		t.Fatalf("latency histogram holds %d observations for %d requests", histTotal, rep.Requests)
	}
	if rep.Server == nil {
		t.Fatal("in-process target must expose /stats deltas")
	}
	if rep.Server.Requests != rep.Requests {
		t.Fatalf("server saw %d requests, driver issued %d — a request was lost",
			rep.Server.Requests, rep.Requests)
	}
	if rep.DurationSec <= 0 || rep.ThroughputRPS <= 0 {
		t.Fatalf("missing wall-clock accounting: %+v", rep)
	}
}

func runScenario(t *testing.T, scenario string) (load.Report, *load.Target) {
	t.Helper()
	target := load.NewInProcessTarget(soakConfig())
	t.Cleanup(target.Close)
	opts := soakOptions(scenario)
	rep, err := load.Run(context.Background(), target, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep, opts)
	return rep, target
}

func TestSoakWarmRepeat(t *testing.T) {
	rep, target := runScenario(t, "warm-repeat")
	if rep.OK != rep.Requests {
		t.Fatalf("warm traffic must all succeed: %+v", rep)
	}
	if rep.Converged != rep.OK {
		t.Fatalf("warm solves must converge: %d of %d", rep.Converged, rep.OK)
	}
	if rep.PrepHitRate == 0 {
		t.Fatalf("repeat-solves never hit the prep cache: %+v", rep)
	}
	if rep.Server.PrepMisses != 1 {
		t.Fatalf("one matrix must prepare exactly once, got %d misses", rep.Server.PrepMisses)
	}
	// Client-observed coalescing must match the server's counter exactly:
	// each member of a shared batch counts once on both sides.
	if rep.CoalescedRequests != rep.Server.CoalescedRequests {
		t.Fatalf("coalescing accounting drifted: clients saw %d, server counted %d",
			rep.CoalescedRequests, rep.Server.CoalescedRequests)
	}
	if rep.P99US <= 0 || rep.P50US > rep.P99US {
		t.Fatalf("latency percentiles malformed: %+v", rep)
	}

	// /metrics must agree with the run: the requests counter moved by the
	// budget and the /solve histogram carries every request.
	resp, err := target.Client.Get(target.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	text := string(body)
	if !strings.Contains(text, "asyrgsd_requests_total 24") {
		t.Fatalf("/metrics requests_total does not match the run:\n%s", text)
	}
	if !strings.Contains(text, `asyrgsd_request_duration_seconds_count{endpoint="/solve"} 24`) {
		t.Fatalf("/metrics /solve histogram does not carry every request:\n%s", text)
	}
	if !strings.Contains(text, `asyrgsd_method_duration_seconds_count{method="asyrgs"} 24`) {
		t.Fatalf("/metrics per-method histogram missing:\n%s", text)
	}
	// Size-band routing: every request in this run solves an N=64 system,
	// so all 24 observations land in the small band and none elsewhere.
	if !strings.Contains(text, `asyrgsd_sizeband_duration_seconds_count{band="lt1k"} 24`) {
		t.Fatalf("/metrics size-band histogram did not route N=64 traffic to lt1k:\n%s", text)
	}
	for _, empty := range []string{"1k-100k", "gt100k"} {
		if !strings.Contains(text, `asyrgsd_sizeband_duration_seconds_count{band="`+empty+`"} 0`) {
			t.Fatalf("/metrics size band %q should be empty for N=64 traffic:\n%s", empty, text)
		}
	}
}

func TestSoakColdChurn(t *testing.T) {
	rep, _ := runScenario(t, "cold-churn")
	if rep.OK != rep.Requests {
		t.Fatalf("churn traffic must all succeed: %+v", rep)
	}
	if rep.Server.CacheMisses != rep.Requests {
		t.Fatalf("every churn request builds a distinct matrix: %d misses for %d requests",
			rep.Server.CacheMisses, rep.Requests)
	}
	if rep.CacheHitRate != 0 || rep.PrepHitRate != 0 {
		t.Fatalf("cold churn cannot hit caches: %+v", rep)
	}
}

func TestSoakBatchBurst(t *testing.T) {
	rep, _ := runScenario(t, "batch-burst")
	if rep.OK != rep.Requests {
		t.Fatalf("batch traffic must all succeed: %+v", rep)
	}
	if rep.Server.Batches == 0 {
		t.Fatal("no solve batches recorded")
	}
	if rep.CoalescedRequests != rep.Server.CoalescedRequests {
		t.Fatalf("batch accounting drifted: clients saw %d coalesced RHS, server counted %d",
			rep.CoalescedRequests, rep.Server.CoalescedRequests)
	}
	// Explicit 3-RHS batches are half the traffic: coalescing is
	// guaranteed even if no concurrent singles ever merged.
	if rep.CoalescedRequests == 0 {
		t.Fatal("explicit multi-RHS batches must register as coalesced work")
	}
}

func TestSoakDistmem(t *testing.T) {
	rep, _ := runScenario(t, "distmem")
	if rep.OK != rep.Requests || rep.Converged != rep.OK {
		t.Fatalf("distmem traffic must converge: %+v", rep)
	}
	if rep.PrepHitRate == 0 {
		t.Fatalf("one deployment shape must warm the prep cache: %+v", rep)
	}
}

func TestSoakCancel(t *testing.T) {
	rep, _ := runScenario(t, "cancel")
	if rep.Cancelled == 0 {
		t.Fatalf("cancel scenario produced no cancellations: %+v", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("interleaved warm solves must still be served: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("cancellations must shed, not error: %+v", rep)
	}
	if rep.Server.Errors != 0 {
		t.Fatalf("server counted abandoned work as errors: %+v", rep.Server)
	}
}

func TestSoakMixed(t *testing.T) {
	rep, _ := runScenario(t, "mixed")
	if rep.Errors != 0 {
		t.Fatalf("mixed traffic errored: %+v", rep)
	}
	if rep.OK != rep.Requests {
		t.Fatalf("mixed traffic must all be served: %+v", rep)
	}
	if rep.P99US <= 0 {
		t.Fatalf("no latency recorded: %+v", rep)
	}
}

// TestScenarioCatalogue: the catalogue is populated, sorted, and every
// entry is reachable by Lookup.
func TestScenarioCatalogue(t *testing.T) {
	all := load.Scenarios()
	if len(all) < 6 {
		t.Fatalf("catalogue too small: %d scenarios", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("catalogue not sorted at %q", all[i].Name)
		}
	}
	for _, s := range all {
		if s.Description == "" || s.Next == nil {
			t.Fatalf("scenario %q incomplete", s.Name)
		}
		if _, err := load.Lookup(s.Name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := load.Lookup("nope"); err == nil {
		t.Fatal("unknown scenario must error")
	}
}
