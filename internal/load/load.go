// Package load is the closed-loop load-generation subsystem for the
// asyrgsd serving layer: reusable traffic scenarios (cold-matrix churn,
// warm repeat-solves, coalescing batch bursts, sharded distmem solves,
// mid-flight cancellations, and a zipfian mixed-method workload) driven
// by N concurrent closed-loop clients against a serve.Server — in
// process through a direct-handler transport, or over the network
// against any base URL. Every request's latency lands in a
// stats.AtomicPow2Histogram; the Report carries throughput, interpolated
// p50/p95/p99, error and cache-hit rates, and a before/after delta of
// the server's own counters so harnesses can assert end-to-end
// invariants (no request lost, coalescing accounting exact, warm
// traffic hitting the prep cache).
//
// An open-loop mode (Options.OpenLoop) replaces the closed-loop clients
// with a Poisson arrival process at a target rate, measuring every
// latency from the request's intended departure instant so coordinated
// omission is impossible; Knee sweeps the offered rate geometrically to
// locate the server's capacity knee, the rate where tail latency
// explodes.
//
// cmd/asyload is the CLI face; the soak suite in this package runs every
// scenario race-clean in seconds and is CI's load-smoke gate.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/serve"
	"github.com/asynclinalg/asyrgs/internal/stats"
)

// Options configure one load run. The zero value is usable: it runs the
// mixed scenario with 4 clients for 5 seconds against small systems.
type Options struct {
	// Scenario is a catalogue name; see Scenarios.
	Scenario string
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// Duration bounds the run's wall time; a client issues no new request
	// after it elapses (in-flight requests complete). Zero means 5s.
	Duration time.Duration
	// MaxRequests bounds the total requests issued across all clients;
	// zero means unbounded (Duration governs). With both set, whichever
	// limit is reached first stops the run — a fixed request budget makes
	// soak runs deterministic in size.
	MaxRequests int
	// Seed keys every client's request stream.
	Seed uint64
	// N is the base problem dimension the scenarios scale from; zero
	// means 96.
	N int
	// RequestTimeout caps one request's wall time so a wedged server
	// cannot hang the driver; zero means 30s.
	RequestTimeout time.Duration
	// OpenLoop switches from closed-loop clients to an open-loop Poisson
	// arrival process: requests depart at Rate regardless of how fast
	// earlier ones complete, each on its own goroutine, and latency is
	// measured from the request's *intended* departure time. A server
	// falling behind therefore accrues queueing delay in the recorded
	// latencies instead of silently throttling the generator — the
	// closed-loop blind spot known as coordinated omission.
	OpenLoop bool
	// Rate is the open-loop target arrival rate in requests/sec; zero
	// means 100. Ignored in closed-loop mode.
	Rate float64
}

func (o Options) withDefaults() Options {
	if o.Scenario == "" {
		o.Scenario = "mixed"
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.N <= 0 {
		o.N = 96
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.OpenLoop && o.Rate <= 0 {
		o.Rate = 100
	}
	return o
}

// Target is the server under load: a base URL plus the client to reach
// it with.
type Target struct {
	BaseURL string
	Client  *http.Client
}

// Close releases the target's idle connections (a no-op for the
// in-process transport, which holds none).
func (t *Target) Close() { t.Client.CloseIdleConnections() }

// NewHTTPTarget points the driver at an already-running daemon.
func NewHTTPTarget(baseURL string) *Target {
	return &Target{BaseURL: baseURL, Client: &http.Client{}}
}

// handlerTransport dispatches requests straight into an http.Handler on
// the caller's goroutine — no sockets, no listener, fully deterministic
// scheduling for the in-process soak harness. Request contexts propagate
// into the handler unchanged, so client-side cancellation reaches the
// solve exactly as it does over a dropped connection.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// NewInProcessTarget self-hosts a fresh serve.Server behind a direct
// handler transport.
func NewInProcessTarget(cfg serve.Config) *Target {
	srv := serve.New(cfg)
	return &Target{
		BaseURL: "http://asyrgsd.inprocess",
		Client:  &http.Client{Transport: handlerTransport{h: srv.Handler()}},
	}
}

// Request is one unit of scenario traffic: the solve body plus an
// optional client-side cancellation deadline (the mid-flight abandon of
// the cancel scenario).
type Request struct {
	Solve       serve.SolveRequest
	CancelAfter time.Duration
}

// Report is the outcome of one load run — the BENCH_serve.json shape.
type Report struct {
	Scenario    string  `json:"scenario"`
	Clients     int     `json:"clients"`
	DurationSec float64 `json:"duration_sec"`

	// Outcome counts; Requests is their sum — every issued request is
	// accounted exactly once.
	Requests  uint64 `json:"requests"`
	OK        uint64 `json:"ok"`
	Errors    uint64 `json:"errors"`
	Rejected  uint64 `json:"rejected"`
	Cancelled uint64 `json:"cancelled"`

	// Converged counts OK responses that reached their tolerance.
	Converged uint64 `json:"converged"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50US         float64 `json:"p50_us"`
	P95US         float64 `json:"p95_us"`
	P99US         float64 `json:"p99_us"`
	MeanUS        float64 `json:"mean_us"`
	ErrorRate     float64 `json:"error_rate"`

	// Hit rates over OK responses, as the server reported them.
	CacheHitRate float64 `json:"cache_hit_rate"`
	PrepHitRate  float64 `json:"prep_hit_rate"`

	// CoalescedRequests counts right-hand sides served in shared batches
	// using the server's own accounting unit (each member of a coalesced
	// batch, each column of an explicit multi-RHS batch), so on a quiet
	// server it equals the coalesced_requests delta in Server.
	CoalescedRequests uint64 `json:"coalesced_requests"`

	// LatencyHistUS is the raw power-of-two latency histogram (µs):
	// bucket 0 = 0, bucket k = [2^(k-1), 2^k).
	LatencyHistUS []uint64 `json:"latency_hist_us"`

	// OpenLoop marks a run driven on a Poisson arrival schedule at
	// OfferedRPS requests/sec. Open-loop latencies include any queueing
	// delay behind the generator's own schedule (measured from intended
	// departure, not actual send), so compare ThroughputRPS against
	// OfferedRPS to see whether the server kept up.
	OpenLoop   bool    `json:"open_loop,omitempty"`
	OfferedRPS float64 `json:"offered_rps,omitempty"`

	// Server is the delta of the daemon's /stats counters across the run,
	// when the target exposes them.
	Server *ServerDelta `json:"server,omitempty"`
}

// ServerDelta is the change in the daemon's own counters across a run.
type ServerDelta struct {
	Requests          uint64 `json:"requests"`
	Solved            uint64 `json:"solved"`
	Errors            uint64 `json:"errors"`
	Rejected          uint64 `json:"rejected"`
	Batches           uint64 `json:"batches"`
	CoalescedRequests uint64 `json:"coalesced_requests"`
	CacheHits         uint64 `json:"cache_hits"`
	CacheMisses       uint64 `json:"cache_misses"`
	PrepHits          uint64 `json:"prep_hits"`
	PrepMisses        uint64 `json:"prep_misses"`
}

// WriteJSON writes the report as an indented JSON baseline (the CI
// artifact BENCH_serve.json).
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the human-facing summary.
func (r Report) String() string {
	var b bytes.Buffer
	if r.OpenLoop {
		fmt.Fprintf(&b, "scenario %s: open loop, %.1f req/s offered, %.2fs\n", r.Scenario, r.OfferedRPS, r.DurationSec)
	} else {
		fmt.Fprintf(&b, "scenario %s: %d clients, %.2fs\n", r.Scenario, r.Clients, r.DurationSec)
	}
	fmt.Fprintf(&b, "  requests    %d (%.1f req/s)  ok %d  errors %d  rejected %d  cancelled %d\n",
		r.Requests, r.ThroughputRPS, r.OK, r.Errors, r.Rejected, r.Cancelled)
	fmt.Fprintf(&b, "  latency     p50 %.2fms  p95 %.2fms  p99 %.2fms  mean %.2fms\n",
		r.P50US/1e3, r.P95US/1e3, r.P99US/1e3, r.MeanUS/1e3)
	fmt.Fprintf(&b, "  hit rates   matrix %.0f%%  prepared %.0f%%  coalesced RHS %d  converged %d/%d\n",
		100*r.CacheHitRate, 100*r.PrepHitRate, r.CoalescedRequests, r.Converged, r.OK)
	if r.Server != nil {
		fmt.Fprintf(&b, "  server      requests %d  solved %d  batches %d  coalesced %d  prep hit/miss %d/%d\n",
			r.Server.Requests, r.Server.Solved, r.Server.Batches, r.Server.CoalescedRequests,
			r.Server.PrepHits, r.Server.PrepMisses)
	}
	return b.String()
}

// counters aggregate client outcomes; all atomic so the closed loops
// never serialize on bookkeeping.
type counters struct {
	issued    atomic.Uint64
	ok        atomic.Uint64
	errs      atomic.Uint64
	rejected  atomic.Uint64
	cancelled atomic.Uint64
	converged atomic.Uint64
	cacheHits atomic.Uint64
	prepHits  atomic.Uint64
	coalesced atomic.Uint64
}

// Run drives the scenario against the target and reports. It returns an
// error only for unusable inputs (unknown scenario); request failures
// are counted, not returned — a load generator's job is to keep going.
func Run(ctx context.Context, target *Target, opts Options) (Report, error) {
	opts = opts.withDefaults()
	scen, err := Lookup(opts.Scenario)
	if err != nil {
		return Report{}, err
	}

	before, haveBefore := fetchStats(target, opts.RequestTimeout)

	var (
		cnt  counters
		hist stats.AtomicPow2Histogram
	)
	start := time.Now()
	if opts.OpenLoop {
		runOpen(ctx, target, opts, scen, &cnt, &hist)
	} else {
		runClosed(ctx, target, opts, scen, &cnt, &hist)
	}
	elapsed := time.Since(start)

	rep := Report{
		Scenario: opts.Scenario, Clients: opts.Clients, DurationSec: elapsed.Seconds(),
		Requests:  cnt.issued.Load(),
		OK:        cnt.ok.Load(),
		Errors:    cnt.errs.Load(),
		Rejected:  cnt.rejected.Load(),
		Cancelled: cnt.cancelled.Load(),
		Converged: cnt.converged.Load(),

		CoalescedRequests: cnt.coalesced.Load(),
	}
	if opts.OpenLoop {
		rep.OpenLoop = true
		rep.OfferedRPS = opts.Rate
	}
	snap := hist.Snapshot()
	rep.LatencyHistUS = snap.Counts
	rep.P50US = snap.Quantile(0.50)
	rep.P95US = snap.Quantile(0.95)
	rep.P99US = snap.Quantile(0.99)
	if n := snap.Total(); n > 0 {
		rep.MeanUS = float64(hist.Sum()) / float64(n)
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	}
	if rep.OK > 0 {
		rep.CacheHitRate = float64(cnt.cacheHits.Load()) / float64(rep.OK)
		rep.PrepHitRate = float64(cnt.prepHits.Load()) / float64(rep.OK)
	}
	if after, ok := fetchStats(target, opts.RequestTimeout); haveBefore && ok {
		rep.Server = &ServerDelta{
			Requests:          after.Requests - before.Requests,
			Solved:            after.Solved - before.Solved,
			Errors:            after.Errors - before.Errors,
			Rejected:          after.Rejected - before.Rejected,
			Batches:           after.Batches - before.Batches,
			CoalescedRequests: after.CoalescedRequests - before.CoalescedRequests,
			CacheHits:         after.Cache.Hits - before.Cache.Hits,
			CacheMisses:       after.Cache.Misses - before.Cache.Misses,
			PrepHits:          after.PrepCache.Hits - before.PrepCache.Hits,
			PrepMisses:        after.PrepCache.Misses - before.PrepCache.Misses,
		}
	}
	return rep, nil
}

// runClosed drives opts.Clients concurrent closed-loop clients: each
// issues its next request only after the previous one completes, so the
// offered load self-throttles to whatever the server sustains.
func runClosed(ctx context.Context, target *Target, opts Options, scen Scenario, cnt *counters, hist *stats.AtomicPow2Histogram) {
	deadline := time.Now().Add(opts.Duration)
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := rng.NewSequential(opts.Seed + uint64(c)*0x9e3779b97f4a7c15)
			for i := 0; ; i++ {
				if ctx.Err() != nil || time.Now().After(deadline) {
					return
				}
				if opts.MaxRequests > 0 {
					if cnt.issued.Add(1) > uint64(opts.MaxRequests) {
						cnt.issued.Add(^uint64(0)) // undo: budget spent, not issued
						return
					}
				} else {
					cnt.issued.Add(1)
				}
				req := scen.Next(opts, g, c, i)
				issue(ctx, target, opts, req, time.Time{}, cnt, hist)
			}
		}()
	}
	wg.Wait()
}

// runOpen drives an open-loop Poisson arrival process: a single
// dispatcher draws exponential inter-arrival gaps at opts.Rate, sleeps
// until each intended departure instant, and hands the request to a
// fresh goroutine — in-flight count is unbounded by design, so a server
// that cannot keep up builds visible queueing delay rather than slowing
// the generator down. Each request's latency is measured from its
// intended departure time (not the actual send), which is what makes
// coordinated omission impossible: a stall in the server delays the
// dispatcher not at all, and late departures charge the lateness to the
// request that suffered it.
//
// The dispatcher draws every request (scenario stream and gaps alike)
// from one sequential stream with client index 0, so a fixed
// (Seed, MaxRequests) budget issues a deterministic request sequence
// just as the closed loop does.
func runOpen(ctx context.Context, target *Target, opts Options, scen Scenario, cnt *counters, hist *stats.AtomicPow2Histogram) {
	g := rng.NewSequential(opts.Seed)
	deadline := time.Now().Add(opts.Duration)
	next := time.Now()
	var wg sync.WaitGroup
	for i := 0; ; i++ {
		if ctx.Err() != nil || time.Now().After(deadline) {
			break
		}
		if opts.MaxRequests > 0 && cnt.issued.Load() >= uint64(opts.MaxRequests) {
			break
		}
		if d := time.Until(next); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
			case <-t.C:
			}
			if ctx.Err() != nil {
				break
			}
		}
		cnt.issued.Add(1)
		req := scen.Next(opts, g, 0, i)
		intended := next
		wg.Add(1)
		go func() {
			defer wg.Done()
			issue(ctx, target, opts, req, intended, cnt, hist)
		}()
		// Exponential inter-arrival gap with mean 1/Rate seconds; the
		// 1-u argument keeps Log away from 0 (Float64 is in [0,1)).
		gap := -math.Log(1-g.Float64()) / opts.Rate
		next = next.Add(time.Duration(gap * float64(time.Second)))
	}
	wg.Wait()
}

// issue sends one request, classifies the outcome, and records latency.
// Every path increments exactly one outcome counter, so the report's
// accounting identity (requests = ok+errors+rejected+cancelled) holds by
// construction. A non-zero from is the latency origin (the open loop's
// intended departure instant); the zero value measures from the actual
// send, the closed-loop convention.
func issue(ctx context.Context, target *Target, opts Options, req Request, from time.Time, cnt *counters, hist *stats.AtomicPow2Histogram) {
	body, err := json.Marshal(req.Solve)
	if err != nil {
		cnt.errs.Add(1)
		return
	}
	rctx, cancel := context.WithTimeout(ctx, opts.RequestTimeout)
	defer cancel()
	// A mid-flight abandon is a plain cancellation (the client "goes
	// away"), which the server sheds rather than counting as an error —
	// exactly what a dropped connection looks like over the network.
	cancelling := req.CancelAfter > 0
	if cancelling {
		abandon := time.AfterFunc(req.CancelAfter, cancel)
		defer abandon.Stop()
	}

	start := from
	if start.IsZero() {
		start = time.Now()
	}
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, target.BaseURL+"/solve", bytes.NewReader(body))
	if err != nil {
		cnt.errs.Add(1)
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := target.Client.Do(hreq)
	if err != nil {
		hist.Observe(uint64(time.Since(start).Microseconds()))
		if cancelling && rctx.Err() != nil {
			cnt.cancelled.Add(1)
		} else {
			cnt.errs.Add(1)
		}
		return
	}
	var out serve.SolveResponse
	decErr := json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	hist.Observe(uint64(time.Since(start).Microseconds()))
	if cancelling && rctx.Err() != nil {
		// Our abandon fired: whatever the server managed to answer with
		// (usually its client-went-away 503), the request was cancelled.
		cnt.cancelled.Add(1)
		return
	}
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		cnt.rejected.Add(1)
		return
	case resp.StatusCode != http.StatusOK || decErr != nil:
		cnt.errs.Add(1)
		return
	}
	cnt.ok.Add(1)
	if out.Converged {
		cnt.converged.Add(1)
	}
	if out.CacheHit {
		cnt.cacheHits.Add(1)
	}
	if out.PrepHit {
		cnt.prepHits.Add(1)
	}
	// Mirror the server's coalesced_requests accounting: every RHS in a
	// shared batch counts once. A coalesced single-RHS response is one
	// member; an explicit multi-RHS response carries all its columns.
	if out.BatchSize > 1 {
		if len(req.Solve.Bs) > 0 {
			cnt.coalesced.Add(uint64(out.BatchSize))
		} else {
			cnt.coalesced.Add(1)
		}
	}
}

// fetchStats reads the target's /stats under the same timeout that
// protects solve requests — a wedged daemon must not hang the driver
// around the run either. ok is false when the endpoint is unreachable
// (a non-asyrgsd target).
func fetchStats(target *Target, timeout time.Duration) (serve.Stats, bool) {
	var st serve.Stats
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target.BaseURL+"/stats", nil)
	if err != nil {
		return st, false
	}
	resp, err := target.Client.Do(req)
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, false
	}
	return st, true
}
