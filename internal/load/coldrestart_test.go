package load

// The cold-restart scenario's own gate: the restored arm must actually
// restore (never silently fall back to a fresh Prepare), the accounting
// must be exact, and — on a quiet machine — the restore must be
// materially cheaper than the cold Prepare it replaces.

import (
	"context"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/race"
)

func TestColdRestart(t *testing.T) {
	opts := ColdRestartOptions{N: 10000, NNZ: 48, Trials: 3, Seed: 7}
	if testing.Short() {
		opts.N, opts.NNZ, opts.Trials = 2000, 16, 2
	}
	rep, err := ColdRestart(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restores != uint64(opts.Trials) || rep.Errors != 0 {
		t.Fatalf("restore accounting: %+v (want %d restores, 0 errors)", rep, opts.Trials)
	}
	if rep.ColdPrepMS <= 0 || rep.RestoredPrepMS <= 0 {
		t.Fatalf("degenerate latencies: %+v", rep)
	}

	// Timing gate: a generous factor — the real speedup is the CSC
	// transpose build vs a sequential decode, typically several-fold —
	// asserted only where timing is meaningful (the race detector and
	// -short's tiny systems make wall-clock comparisons noise).
	if race.Enabled || testing.Short() {
		t.Logf("cold-restart (timing gate skipped): %+v", rep)
		return
	}
	if rep.RestoredPrepMS >= rep.ColdPrepMS {
		t.Fatalf("restore (%.3f ms) not cheaper than cold Prepare (%.3f ms): %+v",
			rep.RestoredPrepMS, rep.ColdPrepMS, rep)
	}
	t.Logf("cold-restart: cold %.3f ms, restored %.3f ms (%.1fx)",
		rep.ColdPrepMS, rep.RestoredPrepMS, rep.Speedup)
}
