package load

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSLOCheck(t *testing.T) {
	baseline := Report{P99US: 1000, ErrorRate: 0.01}
	slo := SLO{P99Factor: 3, ErrorBand: 0.05}

	if err := slo.Check(Report{P99US: 2500, ErrorRate: 0.05}, baseline); err != nil {
		t.Fatalf("within bounds must pass: %v", err)
	}
	if err := slo.Check(Report{P99US: 3500, ErrorRate: 0}, baseline); !errors.Is(err, ErrSLO) {
		t.Fatalf("p99 regression must violate the SLO, got %v", err)
	}
	if err := slo.Check(Report{P99US: 100, ErrorRate: 0.2}, baseline); !errors.Is(err, ErrSLO) {
		t.Fatalf("error-rate regression must violate the SLO, got %v", err)
	}
	// Both bounds violated: the message names both.
	err := slo.Check(Report{P99US: 9000, ErrorRate: 0.9}, baseline)
	if !errors.Is(err, ErrSLO) {
		t.Fatal("double violation must fail")
	}
	if msg := err.Error(); !strings.Contains(msg, "p99") || !strings.Contains(msg, "error rate") {
		t.Fatalf("violation message incomplete: %s", msg)
	}

	// Disabled gates never fire; a zero-latency baseline skips the
	// latency gate instead of dividing by zero.
	if err := (SLO{P99Factor: 0, ErrorBand: -1}).Check(Report{P99US: 1e9, ErrorRate: 1}, baseline); err != nil {
		t.Fatalf("disabled gates must pass: %v", err)
	}
	if err := slo.Check(Report{P99US: 500}, Report{P99US: 0}); err != nil {
		t.Fatalf("empty baseline latency must skip the gate: %v", err)
	}
}

func TestReadBaselineRoundTrip(t *testing.T) {
	rep := Report{Scenario: "mixed", Clients: 4, P99US: 1234.5, ErrorRate: 0.02, Requests: 100}
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != rep.Scenario || got.P99US != rep.P99US || got.Requests != rep.Requests {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := ReadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline must error")
	}
}
