package load

// The capacity-knee sweep: step an open-loop Poisson arrival rate
// geometrically and watch the tail. A healthy server's p99 is roughly
// flat in offered rate until the rate crosses its service capacity;
// past that point the open-loop queue grows without bound and p99
// explodes by orders of magnitude within one step. The knee — the last
// offered rate the server absorbed with a sane tail — is a scalar
// capacity measure that closed-loop throughput cannot give (a closed
// loop self-throttles, so it never drives the server past saturation).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// KneeOptions configure one capacity sweep. The zero value sweeps the
// mixed scenario from 50 req/s, doubling for up to 8 steps of 2s each.
type KneeOptions struct {
	// Scenario is the traffic shape offered at every step.
	Scenario string
	// StartRate is the first offered rate in req/s; zero means 50. The
	// first step always completes and sets the tail-latency baseline, so
	// the reported knee is never below StartRate — start well under the
	// capacity you expect.
	StartRate float64
	// Factor multiplies the rate between steps; values ≤ 1 mean 2.
	Factor float64
	// Steps bounds the sweep length; zero means 8.
	Steps int
	// StepDuration bounds each step's wall time; zero means 2s.
	StepDuration time.Duration
	// StepRequests optionally bounds each step's request count (the
	// deterministic budget tests want); zero leaves the step governed by
	// StepDuration alone.
	StepRequests int
	// Seed keys the request streams; step k runs with Seed+k so steps
	// draw distinct traffic.
	Seed uint64
	// N is the base problem dimension, as in Options.N.
	N int
	// RequestTimeout caps one request's wall time, as in Options.
	RequestTimeout time.Duration
	// KneeP99Factor declares the knee when a step's p99 exceeds this
	// factor × the first step's p99; zero means 10.
	KneeP99Factor float64
	// KneeErrorRate declares the knee when a step's combined error and
	// rejection rate exceeds this fraction; zero means 0.05. Negative
	// disables the error criterion.
	KneeErrorRate float64
}

func (o KneeOptions) withDefaults() KneeOptions {
	if o.Scenario == "" {
		o.Scenario = "mixed"
	}
	if o.StartRate <= 0 {
		o.StartRate = 50
	}
	if o.Factor <= 1 {
		o.Factor = 2
	}
	if o.Steps <= 0 {
		o.Steps = 8
	}
	if o.StepDuration <= 0 {
		o.StepDuration = 2 * time.Second
	}
	if o.KneeP99Factor <= 0 {
		o.KneeP99Factor = 10
	}
	if o.KneeErrorRate == 0 {
		o.KneeErrorRate = 0.05
	}
	return o
}

// KneeReport is the outcome of one sweep — the BENCH_knee.json shape.
// Steps holds every per-rate open-loop Report in order, so offered vs
// achieved rate and the p99 curve are all in the artifact.
type KneeReport struct {
	Scenario string `json:"scenario"`
	// KneeRPS is the highest offered rate the server absorbed without
	// tripping the p99 or error criterion. When no step tripped, it is
	// the last rate swept (the sweep never reached capacity).
	KneeRPS float64 `json:"knee_rps"`
	// Saturated reports whether the sweep actually found the knee (some
	// step tripped a criterion) rather than running out of steps.
	Saturated bool `json:"saturated"`
	// BaseP99US is the first step's p99 — the tail-latency baseline the
	// p99-explosion criterion compares against.
	BaseP99US float64  `json:"base_p99_us"`
	Steps     []Report `json:"steps"`
}

// WriteJSON writes the sweep as an indented JSON artifact
// (BENCH_knee.json).
func (r KneeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the human-facing sweep summary.
func (r KneeReport) String() string {
	s := fmt.Sprintf("knee sweep %s: %d steps, knee %.1f req/s (base p99 %.2fms, saturated %v)\n",
		r.Scenario, len(r.Steps), r.KneeRPS, r.BaseP99US/1e3, r.Saturated)
	for _, st := range r.Steps {
		s += fmt.Sprintf("  offered %7.1f req/s  achieved %7.1f  p99 %9.2fms  errors %d  rejected %d\n",
			st.OfferedRPS, st.ThroughputRPS, st.P99US/1e3, st.Errors, st.Rejected)
	}
	return s
}

// ReadKneeBaseline loads a committed BENCH_knee.json sweep.
func ReadKneeBaseline(path string) (KneeReport, error) {
	var rep KneeReport
	f, err := os.Open(path)
	if err != nil {
		return rep, err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return rep, fmt.Errorf("load: parsing knee baseline %s: %w", path, err)
	}
	return rep, nil
}

// Knee sweeps the offered open-loop rate until the server's tail
// explodes or the steps run out. The first step is always taken in full
// and establishes the p99 baseline; each later step checks the knee
// criteria and, on a trip, ends the sweep with the previous rate as the
// knee. Returns an error only for unusable inputs or a cancelled
// context; an unhealthy server shows up in the report, not the error.
func Knee(ctx context.Context, target *Target, opts KneeOptions) (KneeReport, error) {
	opts = opts.withDefaults()
	rep := KneeReport{Scenario: opts.Scenario}
	rate := opts.StartRate
	for k := 0; k < opts.Steps; k++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		step, err := Run(ctx, target, Options{
			Scenario:       opts.Scenario,
			OpenLoop:       true,
			Rate:           rate,
			Duration:       opts.StepDuration,
			MaxRequests:    opts.StepRequests,
			Seed:           opts.Seed + uint64(k),
			N:              opts.N,
			RequestTimeout: opts.RequestTimeout,
		})
		if err != nil {
			return rep, err
		}
		rep.Steps = append(rep.Steps, step)
		if k == 0 {
			rep.BaseP99US = step.P99US
			rep.KneeRPS = rate
			rate *= opts.Factor
			continue
		}
		if tripped(step, rep.BaseP99US, opts) {
			rep.Saturated = true
			return rep, nil
		}
		rep.KneeRPS = rate
		rate *= opts.Factor
	}
	return rep, nil
}

// tripped applies the knee criteria to one step.
func tripped(step Report, baseP99 float64, opts KneeOptions) bool {
	if baseP99 > 0 && step.P99US > opts.KneeP99Factor*baseP99 {
		return true
	}
	if opts.KneeErrorRate >= 0 && step.Requests > 0 {
		bad := float64(step.Errors+step.Rejected) / float64(step.Requests)
		if bad > opts.KneeErrorRate {
			return true
		}
	}
	return false
}
