package load

// The cold-restart scenario measures the durable prep store's reason to
// exist: the latency of a restarted daemon's *first* request for a
// system it has served before. Without a store that request pays the
// full Prepare — an O(nnz) pass over the matrix; with a warmed store it
// restores the spilled state and pays only decode + validation, which
// for the core (AsyRGS) family is O(n): the persisted diagonal state is
// tiny next to the matrix it was extracted from, so the denser the
// system, the bigger the restore win. Both arms run on fresh in-process
// servers with empty caches, interleaved trial by trial so machine noise
// hits them symmetrically, and each arm reports its minimum prepare
// latency — the best-case number a deployment would tune against.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"github.com/asynclinalg/asyrgs/internal/serve"
	"github.com/asynclinalg/asyrgs/internal/store"
)

// ColdRestartOptions size the cold-restart measurement. The zero value
// is usable.
type ColdRestartOptions struct {
	// N is the system dimension and NNZ the nonzeros per row. The
	// restore win scales with NNZ: Prepare scans every stored entry
	// while the core family's persisted state stays two n-vectors. Zero
	// means 20000×64.
	N, NNZ int
	// Trials is the per-arm trial count; each arm reports its minimum.
	// Zero means 3.
	Trials int
	// Seed keys the generated matrix.
	Seed uint64
	// Method overrides the solver; zero means "asyrgs". It must be a
	// persistent method (one the store can restore); least-squares
	// methods run over an overdetermined system N×(N/4).
	Method string
}

func (o ColdRestartOptions) withDefaults() ColdRestartOptions {
	if o.N <= 0 {
		o.N = 20000
	}
	if o.NNZ <= 0 {
		o.NNZ = 64
	}
	if o.Trials <= 0 {
		o.Trials = 3
	}
	if o.Method == "" {
		o.Method = "asyrgs"
	}
	return o
}

// spec returns the matrix the scenario solves: SPD for the square-system
// methods, overdetermined for the least-squares family.
func (o ColdRestartOptions) spec() serve.MatrixSpec {
	switch o.Method {
	case "lsqcd", "lsqcd-async", "lsqcd-weighted":
		return serve.MatrixSpec{Kind: "overdetermined", Rows: o.N, Cols: o.N / 4, NNZ: o.NNZ, Seed: o.Seed}
	default:
		return serve.MatrixSpec{Kind: "randomspd", N: o.N, NNZ: o.NNZ, Seed: o.Seed}
	}
}

// ColdRestartReport is the cold-restart scenario's artifact
// (BENCH_coldstart.json).
type ColdRestartReport struct {
	Method string `json:"method"`
	N      int    `json:"n"`
	NNZ    int    `json:"nnz_per_row"`
	Trials int    `json:"trials"`
	// ColdPrepMS is the minimum first-request prepare latency on a fresh
	// daemon without a store (full Prepare); RestoredPrepMS the same
	// with a warmed store (restore path). Both are the server-measured
	// prepare phase, unquantized.
	ColdPrepMS     float64 `json:"cold_prep_ms"`
	RestoredPrepMS float64 `json:"restored_prep_ms"`
	// Speedup is ColdPrepMS / RestoredPrepMS.
	Speedup float64 `json:"speedup"`
	// Restores counts store restores across the restored arm's trials
	// (one per trial when the store works); Errors any store failures.
	Restores uint64 `json:"restores"`
	Errors   uint64 `json:"store_errors"`
}

// WriteJSON writes the report as an indented JSON artifact.
func (r ColdRestartReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func (r ColdRestartReport) String() string {
	return fmt.Sprintf(
		"cold-restart %s n=%d nnz/row=%d (min of %d):\n  cold Prepare   %.3f ms\n  store restore  %.3f ms\n  speedup        %.1fx\n",
		r.Method, r.N, r.NNZ, r.Trials, r.ColdPrepMS, r.RestoredPrepMS, r.Speedup)
}

// coldRestartSolve posts one solve straight into a server's handler and
// decodes the response. The solve itself is a single fixed-work sweep —
// the measurement reads the response's prepare-phase latency, so the
// iteration cost is irrelevant and kept minimal.
func coldRestartSolve(ctx context.Context, h http.Handler, solve serve.SolveRequest) (serve.SolveResponse, error) {
	body, err := json.Marshal(solve)
	if err != nil {
		return serve.SolveResponse{}, err
	}
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return serve.SolveResponse{}, fmt.Errorf("load: cold-restart solve status %d: %s", rec.Code, rec.Body.String())
	}
	var out serve.SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		return serve.SolveResponse{}, err
	}
	return out, nil
}

// ColdRestart runs the cold-restart measurement: warm a store once, then
// alternate fresh no-store daemons (full Prepare) with fresh
// store-backed daemons (restore) and compare their first-request prepare
// latencies. It fails loudly if the restored arm ever falls back to a
// fresh Prepare — a silent fallback would invalidate the comparison.
func ColdRestart(ctx context.Context, opts ColdRestartOptions) (ColdRestartReport, error) {
	o := opts.withDefaults()
	solve := serve.SolveRequest{
		Matrix:    o.spec(),
		Method:    o.Method,
		FixedWork: true, MaxSweeps: 1, CheckEvery: 1, Workers: 1,
	}
	rep := ColdRestartReport{Method: o.Method, N: o.N, NNZ: o.NNZ, Trials: o.Trials}

	// Warm the backend once: one solve spills the prepared state, Close
	// drains the writer so the blob is durable before any trial reads it.
	backend := store.NewMemory()
	warm := store.NewPrepStore(backend)
	warmSrv := serve.New(serve.Config{PrepStore: warm, BatchWindow: -1})
	out, err := coldRestartSolve(ctx, warmSrv.Handler(), solve)
	warm.Close()
	if err != nil {
		return rep, err
	}
	if out.PrepRestored || out.PrepHit {
		return rep, fmt.Errorf("load: warmup solve was not a fresh Prepare: %+v", out)
	}
	if c := warm.Counters(); c.Spills == 0 {
		return rep, fmt.Errorf("load: warmup did not spill (method %q not persistent?): %+v", o.Method, c)
	}

	for trial := 0; trial < o.Trials; trial++ {
		// Cold arm: fresh daemon, no store — the first request pays the
		// full Prepare.
		cold, err := coldRestartSolve(ctx, serve.New(serve.Config{BatchWindow: -1}).Handler(), solve)
		if err != nil {
			return rep, err
		}
		if cold.PrepHit || cold.PrepRestored {
			return rep, fmt.Errorf("load: cold trial %d did not run a fresh Prepare: %+v", trial, cold)
		}
		if rep.ColdPrepMS == 0 || cold.PrepMS < rep.ColdPrepMS {
			rep.ColdPrepMS = cold.PrepMS
		}

		// Restored arm: fresh daemon over the warmed backend — the first
		// request restores.
		ps := store.NewPrepStore(backend)
		restored, err := coldRestartSolve(ctx, serve.New(serve.Config{PrepStore: ps, BatchWindow: -1}).Handler(), solve)
		counters := ps.Counters()
		ps.Close()
		if err != nil {
			return rep, err
		}
		if !restored.PrepRestored {
			return rep, fmt.Errorf("load: restored trial %d fell back to a fresh Prepare (store errors: %d)", trial, counters.Errors)
		}
		if rep.RestoredPrepMS == 0 || restored.PrepMS < rep.RestoredPrepMS {
			rep.RestoredPrepMS = restored.PrepMS
		}
		rep.Restores += counters.Restores
		rep.Errors += counters.Errors
	}
	if rep.RestoredPrepMS > 0 {
		rep.Speedup = rep.ColdPrepMS / rep.RestoredPrepMS
	}
	return rep, nil
}
