// Open-loop and capacity-knee coverage: the Poisson arrival process
// keeps the exact accounting invariants of the closed loop, the
// per-stage server timings stay internally consistent with the endpoint
// latency under load, and the knee sweep produces a well-formed
// BENCH_knee.json artifact end to end.
package load_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/load"
	"github.com/asynclinalg/asyrgs/internal/serve"
)

func openLoopOptions(scenario string, rate float64) load.Options {
	return load.Options{
		Scenario:    scenario,
		OpenLoop:    true,
		Rate:        rate,
		MaxRequests: 24,
		Duration:    2 * time.Minute, // safety cap; the budget governs
		Seed:        7,
		N:           64,
	}
}

// TestSoakOpenLoopPoisson: the open-loop driver spends its whole
// request budget, loses nothing, and stamps the open-loop report
// fields.
func TestSoakOpenLoopPoisson(t *testing.T) {
	target := load.NewInProcessTarget(soakConfig())
	t.Cleanup(target.Close)
	opts := openLoopOptions("warm-repeat", 400)
	rep, err := load.Run(context.Background(), target, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep, opts)
	if !rep.OpenLoop || rep.OfferedRPS != 400 {
		t.Fatalf("open-loop fields not stamped: %+v", rep)
	}
	if rep.OK != rep.Requests {
		t.Fatalf("open-loop warm traffic must all succeed: %+v", rep)
	}
	if rep.Converged != rep.OK {
		t.Fatalf("open-loop warm solves must converge: %d of %d", rep.Converged, rep.OK)
	}
}

// TestStageTimingsConsistent: the per-stage histograms the server
// exposes must describe disjoint slices of the /solve handler — total
// stage time bounded above by total endpoint time (modulo clock skew
// slack), and the solve stage is not empty noise.
func TestStageTimingsConsistent(t *testing.T) {
	target := load.NewInProcessTarget(soakConfig())
	t.Cleanup(target.Close)
	opts := openLoopOptions("warm-repeat", 400)
	rep, err := load.Run(context.Background(), target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != rep.Requests {
		t.Fatalf("stage consistency needs a clean run: %+v", rep)
	}

	st, ok := fetchServeStats(t, target)
	if !ok {
		t.Fatal("in-process target must expose /stats")
	}
	solve, ok := st.Latency["/solve"]
	if !ok || solve.Count == 0 {
		t.Fatalf("no /solve endpoint latency recorded: %+v", st.Latency)
	}
	endpointTotalUS := solve.MeanUS * float64(solve.Count)

	var stageTotalUS float64
	for _, name := range []string{"build", "prepare", "queue", "solve", "respond"} {
		sum, ok := st.Stages[name]
		if !ok {
			t.Fatalf("stage %q missing: %+v", name, st.Stages)
		}
		if sum.Count == 0 {
			t.Fatalf("stage %q never observed: %+v", name, st.Stages)
		}
		stageTotalUS += sum.MeanUS * float64(sum.Count)
	}
	// The stages are disjoint sub-intervals of the handler: their total
	// must not exceed the endpoint total. Each stage clock truncates to
	// whole microseconds independently of the endpoint clock, so allow
	// 5% plus a few microseconds per request of measurement slack.
	slackUS := 0.05*endpointTotalUS + 5*float64(solve.Count)
	if stageTotalUS > endpointTotalUS+slackUS {
		t.Fatalf("stage totals exceed the endpoint total: stages %.0fµs, endpoint %.0fµs (+%.0fµs slack)",
			stageTotalUS, endpointTotalUS, slackUS)
	}
	// And they must account for a real share of it — the solve itself
	// dominates a solve server; if the stages sum to almost nothing the
	// clocks are not wired to the work.
	if stageTotalUS < 0.25*endpointTotalUS {
		t.Fatalf("stages account for only %.0fµs of %.0fµs endpoint time — stage clocks disconnected",
			stageTotalUS, endpointTotalUS)
	}
}

// fetchServeStats reads the target's /stats as the typed serve.Stats.
func fetchServeStats(t *testing.T, target *load.Target) (serve.Stats, bool) {
	t.Helper()
	var st serve.Stats
	resp, err := target.Client.Get(target.BaseURL + "/stats")
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	return st, true
}

// TestKneeSweep: a no-trip sweep walks every step and reports the last
// rate; a hair-trigger p99 criterion trips at step 1 and pins the knee
// to the start rate; the artifact round-trips through JSON; the SLO
// knee gate passes and fails where it should.
func TestKneeSweep(t *testing.T) {
	target := load.NewInProcessTarget(soakConfig())
	t.Cleanup(target.Close)

	base := load.KneeOptions{
		Scenario:     "warm-repeat",
		StartRate:    200,
		Factor:       2,
		Steps:        3,
		StepDuration: time.Minute, // safety cap; StepRequests governs
		StepRequests: 12,
		Seed:         7,
		N:            64,
		// Criteria that cannot trip: the sweep must run out of steps.
		KneeP99Factor: 1e12,
		KneeErrorRate: -1,
	}
	rep, err := load.Knee(context.Background(), target, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 3 {
		t.Fatalf("sweep took %d steps, want 3", len(rep.Steps))
	}
	if rep.Saturated {
		t.Fatalf("untrippable criteria reported saturation: %+v", rep)
	}
	if rep.KneeRPS != 800 {
		t.Fatalf("no-trip sweep must report the last rate 800, got %g", rep.KneeRPS)
	}
	if rep.BaseP99US != rep.Steps[0].P99US || rep.BaseP99US <= 0 {
		t.Fatalf("baseline p99 not taken from step 0: %+v", rep)
	}
	for k, step := range rep.Steps {
		if !step.OpenLoop {
			t.Fatalf("step %d not an open-loop run: %+v", k, step)
		}
		if step.Requests != 12 {
			t.Fatalf("step %d issued %d requests, want 12", k, step.Requests)
		}
		want := 200.0
		for i := 0; i < k; i++ {
			want *= 2
		}
		if step.OfferedRPS != want {
			t.Fatalf("step %d offered %g req/s, want %g", k, step.OfferedRPS, want)
		}
	}

	// A p99 criterion every step violates: the sweep must stop after the
	// first post-baseline step and keep the start rate as the knee.
	trip := base
	trip.KneeP99Factor = 1e-9
	tripped, err := load.Knee(context.Background(), target, trip)
	if err != nil {
		t.Fatal(err)
	}
	if !tripped.Saturated || len(tripped.Steps) != 2 || tripped.KneeRPS != 200 {
		t.Fatalf("hair-trigger sweep: saturated=%v steps=%d knee=%g, want true/2/200",
			tripped.Saturated, len(tripped.Steps), tripped.KneeRPS)
	}

	// Artifact round trip.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_knee.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := load.ReadKneeBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.KneeRPS != rep.KneeRPS || len(back.Steps) != len(rep.Steps) || back.BaseP99US != rep.BaseP99US {
		t.Fatalf("knee artifact did not round-trip: wrote %+v, read %+v", rep, back)
	}

	// The SLO knee gate: equal knees pass, an 8× capacity loss fails,
	// and a zero factor disables the gate.
	slo := load.SLO{KneeFactor: 2}
	if err := slo.CheckKnee(rep, back); err != nil {
		t.Fatalf("equal knees must pass the gate: %v", err)
	}
	regressed := rep
	regressed.KneeRPS = rep.KneeRPS / 8
	if err := slo.CheckKnee(regressed, back); err == nil {
		t.Fatal("an 8x knee regression must fail the 2x gate")
	}
	if err := (load.SLO{}).CheckKnee(regressed, back); err != nil {
		t.Fatalf("zero KneeFactor must disable the gate: %v", err)
	}
}
