package load

// The chaos harness is the end-to-end proof of the resilience layer: it
// self-hosts a daemon whose durable prep store sits on a FaultBackend,
// soaks it with store-churn traffic under injected errors and latency,
// takes the backend fully down to trip the circuit breaker, recovers
// it, and finishes with a distributed-memory solve under injected
// message loss. Check reconciles every counter exactly — requests are
// never lost, every injected error is either retried away or ends one
// failed operation, the breaker trips and closes again, and the async
// iteration converges despite the drops.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/asynclinalg/asyrgs/internal/dense"
	"github.com/asynclinalg/asyrgs/internal/distmem"
	"github.com/asynclinalg/asyrgs/internal/fault"
	"github.com/asynclinalg/asyrgs/internal/serve"
	"github.com/asynclinalg/asyrgs/internal/store"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// ChaosOptions configure the fault regime. The zero value runs the
// full default chaos mix.
type ChaosOptions struct {
	// StoreErrRate is the injected transient-error rate on store Get/Put
	// operations; zero means 0.2. Negative disables store errors.
	StoreErrRate float64
	// StoreLatency is the injected store-operation latency, applied to a
	// quarter of operations; zero means 200µs. Negative disables.
	StoreLatency time.Duration
	// DropRate is the distmem update-message loss rate; zero means 0.1.
	// Negative disables the distmem phase's faults.
	DropRate float64
	// Seed keys every injector and request stream.
	Seed uint64
	// Clients is the closed-loop client count; zero means 4.
	Clients int
	// Requests is the soak phase's request budget; zero means 160. The
	// outage and recovery phases issue a fixed fraction of it.
	Requests int
	// N is the base problem dimension; zero means 64.
	N int
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.StoreErrRate == 0 {
		o.StoreErrRate = 0.2
	} else if o.StoreErrRate < 0 {
		o.StoreErrRate = 0
	}
	if o.StoreLatency == 0 {
		o.StoreLatency = 200 * time.Microsecond
	} else if o.StoreLatency < 0 {
		o.StoreLatency = 0
	}
	if o.DropRate == 0 {
		o.DropRate = 0.1
	} else if o.DropRate < 0 {
		o.DropRate = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Requests <= 0 {
		o.Requests = 160
	}
	if o.N <= 0 {
		o.N = 64
	}
	return o
}

// ChaosDistmem is the distributed-memory phase's outcome: an async
// solve under deterministic message loss, checked against the dense
// solution.
type ChaosDistmem struct {
	Converged        bool    `json:"converged"`
	Rounds           int     `json:"rounds"`
	Residual         float64 `json:"residual"`
	RelErr           float64 `json:"rel_err"`
	MessagesSent     uint64  `json:"messages_sent"`
	MessagesDropped  uint64  `json:"messages_dropped"`
	MessagesDelayed  uint64  `json:"messages_delayed"`
	ObservedDropRate float64 `json:"observed_drop_rate"`
	TargetDropRate   float64 `json:"target_drop_rate"`
	Err              string  `json:"error,omitempty"`
}

// ChaosReport is the full chaos run: per-phase load reports plus the
// reconciled store/injector counters and the distmem phase.
type ChaosReport struct {
	Opts ChaosOptions `json:"options"`

	// Soak is the fault soak: store-churn traffic with injected store
	// errors and latency. Outage repeats it with the backend fully down;
	// Recovery repeats it after the backend returns and the breaker has
	// closed again.
	Soak     Report `json:"soak"`
	Outage   Report `json:"outage"`
	Recovery Report `json:"recovery"`

	// Store is the prep store's own accounting; StoreGets/StorePuts are
	// the injector's applied-fault counters per path, and DownDenied the
	// operations refused by the simulated total outage.
	Store        store.Counters `json:"store"`
	StoreGets    fault.Stats    `json:"store_get_faults"`
	StorePuts    fault.Stats    `json:"store_put_faults"`
	DownDenied   uint64         `json:"store_down_denied"`
	BreakerState string         `json:"breaker_state"`

	Distmem ChaosDistmem `json:"distmem"`
}

// RunChaos executes the chaos scenario end to end. Request failures and
// fault-accounting mismatches land in the report for Check; the
// returned error covers only an unusable run (context cancelled, setup
// failure).
func RunChaos(ctx context.Context, opts ChaosOptions) (ChaosReport, error) {
	opts = opts.withDefaults()
	rep := ChaosReport{Opts: opts}

	latencyRate := 0.0
	if opts.StoreLatency > 0 {
		latencyRate = 0.25
	}
	fb := store.NewFaultBackend(store.NewMemory(), fault.Config{
		Seed:        opts.Seed,
		ErrRate:     opts.StoreErrRate,
		LatencyRate: latencyRate,
		Latency:     opts.StoreLatency,
	})
	ps := store.NewPrepStoreWith(fb, store.Options{
		Retry: store.RetryConfig{
			Max: 4, Base: 100 * time.Microsecond, Cap: time.Millisecond, Seed: opts.Seed,
		},
		Breaker: store.BreakerConfig{
			Failures: 4, Probe: 10 * time.Millisecond, Clock: serve.MonotonicClock(),
		},
	})
	defer ps.Close()

	// An undersized prep LRU keeps the store-churn scenario's working set
	// spilling and restoring on nearly every request — the store is on
	// the hot path, where the injected faults can actually bite.
	target := NewInProcessTarget(serve.Config{
		PrepStore:     ps,
		PrepCacheSize: 2,
		MaxConcurrent: opts.Clients,
	})
	defer target.Close()

	phase := func(budget int) (Report, error) {
		return Run(ctx, target, Options{
			Scenario:    "store-churn",
			Clients:     opts.Clients,
			MaxRequests: budget,
			Duration:    time.Minute,
			Seed:        opts.Seed,
			N:           opts.N,
		})
	}

	var err error
	if rep.Soak, err = phase(opts.Requests); err != nil {
		return rep, err
	}

	// Total outage: every store operation fails instantly. The server
	// must keep answering (restores fall back to fresh Prepares) while
	// consecutive failures trip the breaker.
	fb.SetDown(true)
	if rep.Outage, err = phase(max(opts.Requests/4, 4*opts.Clients)); err != nil {
		return rep, err
	}

	// Recovery: the backend returns, and direct probe fetches walk the
	// breaker open → half-open → closed. A clean miss counts as breaker
	// success, so one admitted probe closes it.
	fb.SetDown(false)
	deadline := time.Now().Add(5 * time.Second)
	for ps.BreakerState() != "closed" && time.Now().Before(deadline) {
		ps.Fetch("chaos/breaker-probe")
		time.Sleep(2 * time.Millisecond)
	}
	if rep.Recovery, err = phase(max(opts.Requests/4, 4*opts.Clients)); err != nil {
		return rep, err
	}

	ps.Flush()
	rep.Store = ps.Counters()
	rep.StoreGets = fb.GetStats()
	rep.StorePuts = fb.PutStats()
	rep.DownDenied = fb.DownDenied()
	rep.BreakerState = ps.BreakerState()

	rep.Distmem = runChaosDistmem(opts)
	return rep, ctx.Err()
}

// runChaosDistmem solves one SPD system with the sharded async backend
// under injected message loss and checks the answer against the dense
// solution.
func runChaosDistmem(opts ChaosOptions) ChaosDistmem {
	const n = 200
	a := workload.RandomSPD(n, 5, 1.5, opts.Seed+17)
	b := workload.RandomRHS(n, opts.Seed+18)
	want, err := dense.SolveCSR(a, b)
	if err != nil {
		return ChaosDistmem{Err: err.Error(), TargetDropRate: opts.DropRate}
	}
	x := make([]float64, n)
	res, rounds, err := distmem.SolveToTol(a, x, b, 1e-8, 10, 200, distmem.Config{
		Workers: 4, QueueCap: 8, Seed: opts.Seed + 19,
		Fault: fault.Config{Seed: opts.Seed + 20, DropRate: opts.DropRate},
	})
	d := ChaosDistmem{
		Converged:       err == nil,
		Rounds:          rounds,
		Residual:        res.Residual,
		RelErr:          vec.RelErr(x, want),
		MessagesSent:    res.MessagesSent,
		MessagesDropped: res.MessagesDropped,
		MessagesDelayed: res.MessagesDelayed,
		TargetDropRate:  opts.DropRate,
	}
	if err != nil {
		d.Err = err.Error()
	}
	if total := d.MessagesSent + d.MessagesDropped; total > 0 {
		d.ObservedDropRate = float64(d.MessagesDropped) / float64(total)
	}
	return d
}

// Check asserts the chaos run's invariants, joining every violation
// into one error. A nil return means the resilience layer held: no
// request was lost in any phase, the fault accounting reconciles
// exactly, the breaker tripped under the outage and closed again, and
// the async iteration converged despite the message loss.
func (r ChaosReport) Check() error {
	var errs []error
	for _, ph := range []struct {
		name string
		rep  Report
	}{{"soak", r.Soak}, {"outage", r.Outage}, {"recovery", r.Recovery}} {
		if ph.rep.Requests == 0 {
			errs = append(errs, fmt.Errorf("%s phase issued no requests", ph.name))
			continue
		}
		if ph.rep.OK != ph.rep.Requests || ph.rep.Errors != 0 || ph.rep.Rejected != 0 {
			errs = append(errs, fmt.Errorf(
				"%s phase lost requests: %d issued, %d ok, %d errors, %d rejected",
				ph.name, ph.rep.Requests, ph.rep.OK, ph.rep.Errors, ph.rep.Rejected))
		}
		if ph.rep.Converged != ph.rep.OK {
			errs = append(errs, fmt.Errorf("%s phase: %d of %d answers did not converge",
				ph.name, ph.rep.OK-ph.rep.Converged, ph.rep.OK))
		}
	}

	// Every backend error — injected or outage-denied — is either
	// retried away or ends exactly one failed operation. Breaker-shed
	// operations never touch the backend and appear in neither side.
	injected := r.StoreGets.Errs + r.StorePuts.Errs + r.DownDenied
	if got := r.Store.Retries + r.Store.Failures; got != injected {
		errs = append(errs, fmt.Errorf(
			"store accounting mismatch: retries+failures = %d, injected+denied errors = %d",
			got, injected))
	}
	if r.Store.CorruptBlobs != r.StoreGets.Corrupts+r.StorePuts.Corrupts {
		errs = append(errs, fmt.Errorf("corrupt blobs %d != injected corruptions %d",
			r.Store.CorruptBlobs, r.StoreGets.Corrupts+r.StorePuts.Corrupts))
	}
	if r.Opts.StoreErrRate > 0 && r.Store.Retries == 0 {
		errs = append(errs, errors.New("store error injection exercised no retries"))
	}
	if r.Store.Spills == 0 || r.Store.Restores == 0 {
		errs = append(errs, fmt.Errorf(
			"store-churn did not exercise the store: %d spills, %d restores",
			r.Store.Spills, r.Store.Restores))
	}
	if r.Store.BreakerTrips == 0 {
		errs = append(errs, errors.New("total outage never tripped the circuit breaker"))
	}
	if r.BreakerState != "closed" {
		errs = append(errs, fmt.Errorf("breaker did not recover: final state %q", r.BreakerState))
	}

	d := r.Distmem
	if !d.Converged {
		errs = append(errs, fmt.Errorf("distmem did not converge under %.0f%% message loss: %s",
			100*d.TargetDropRate, d.Err))
	}
	if d.RelErr > 1e-6 {
		errs = append(errs, fmt.Errorf("distmem solution error %.3g vs dense", d.RelErr))
	}
	if d.TargetDropRate > 0 {
		if d.MessagesDropped == 0 {
			errs = append(errs, errors.New("distmem drop injection dropped nothing"))
		} else if d.ObservedDropRate < 0.5*d.TargetDropRate || d.ObservedDropRate > 1.5*d.TargetDropRate {
			errs = append(errs, fmt.Errorf("distmem observed drop rate %.4f, want ~%.2f",
				d.ObservedDropRate, d.TargetDropRate))
		}
	}
	return errors.Join(errs...)
}

// WriteJSON writes the chaos report as an indented JSON artifact.
func (r ChaosReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the human-facing chaos summary.
func (r ChaosReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "chaos: store err %.0f%% lat %v, distmem drop %.0f%%, seed %d\n",
		100*r.Opts.StoreErrRate, r.Opts.StoreLatency, 100*r.Opts.DropRate, r.Opts.Seed)
	for _, ph := range []struct {
		name string
		rep  Report
	}{{"soak", r.Soak}, {"outage", r.Outage}, {"recovery", r.Recovery}} {
		fmt.Fprintf(&b, "  %-9s %d requests, %d ok, %d errors, %d rejected (%.1f req/s)\n",
			ph.name, ph.rep.Requests, ph.rep.OK, ph.rep.Errors, ph.rep.Rejected, ph.rep.ThroughputRPS)
	}
	fmt.Fprintf(&b, "  store     spills %d  restores %d  retries %d  failures %d  injected errs %d  denied %d\n",
		r.Store.Spills, r.Store.Restores, r.Store.Retries, r.Store.Failures,
		r.StoreGets.Errs+r.StorePuts.Errs, r.DownDenied)
	fmt.Fprintf(&b, "  breaker   trips %d  rejects %d  final state %s\n",
		r.Store.BreakerTrips, r.Store.BreakerRejects, r.BreakerState)
	d := r.Distmem
	fmt.Fprintf(&b, "  distmem   converged=%v in %d rounds  relerr %.2g  dropped %d/%d (%.1f%%, target %.0f%%)\n",
		d.Converged, d.Rounds, d.RelErr, d.MessagesDropped, d.MessagesSent+d.MessagesDropped,
		100*d.ObservedDropRate, 100*d.TargetDropRate)
	return b.String()
}
