// The chaos gate: the full fault mix — injected store errors and
// latency, a total backend outage with breaker trip and recovery, and
// distmem message loss — soaked race-clean in -short seconds, with
// every invariant asserted through ChaosReport.Check.
package load_test

import (
	"context"
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/load"
)

// chaosOptions is the CI-sized chaos run: small fixed budgets, hot
// fault rates.
func chaosOptions() load.ChaosOptions {
	return load.ChaosOptions{
		StoreErrRate: 0.2,
		StoreLatency: 100 * time.Microsecond,
		DropRate:     0.1,
		Seed:         5,
		Clients:      4,
		Requests:     64,
		N:            48,
	}
}

// TestChaosSoak is the issue's acceptance run: with ~20% store error
// rate plus injected latency the server answers every request (restores
// fall back, the breaker trips on the outage and recovers, counters
// reconcile exactly), and distmem converges to tol under ~10% message
// loss — all asserted by Check.
func TestChaosSoak(t *testing.T) {
	rep, err := load.RunChaos(context.Background(), chaosOptions())
	if err != nil {
		t.Fatalf("chaos run unusable: %v", err)
	}
	t.Logf("\n%s", rep.String())
	if err := rep.Check(); err != nil {
		t.Fatalf("chaos invariants violated:\n%v", err)
	}
}

// TestChaosCleanConfig pins the baseline: with every fault rate
// disabled the harness injects nothing (all injector counters zero, no
// distmem loss), the outage phase alone drives the retry and breaker
// machinery through down-denials, and Check still passes — the
// invariants hold with and without injected noise.
func TestChaosCleanConfig(t *testing.T) {
	opts := chaosOptions()
	opts.StoreErrRate = -1 // negative disables in withDefaults
	opts.StoreLatency = -1
	opts.DropRate = -1
	rep, err := load.RunChaos(context.Background(), opts)
	if err != nil {
		t.Fatalf("clean run unusable: %v", err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("clean-config invariants violated:\n%v", err)
	}
	if s := rep.StoreGets; s.Errs != 0 || s.Corrupts != 0 || s.Delays != 0 {
		t.Fatalf("disabled injection still applied get faults: %+v", s)
	}
	if s := rep.StorePuts; s.Errs != 0 || s.Corrupts != 0 || s.Delays != 0 {
		t.Fatalf("disabled injection still applied put faults: %+v", s)
	}
	if d := rep.Distmem; d.MessagesDropped != 0 || d.MessagesDelayed != 0 {
		t.Fatalf("disabled injection still lost messages: %+v", d)
	}
	// The outage phase is fault-independent: the breaker must still trip
	// and recover, and its down-denials must reconcile as retries.
	if rep.DownDenied == 0 || rep.Store.Retries == 0 {
		t.Fatalf("outage phase idle: denied %d, retries %d", rep.DownDenied, rep.Store.Retries)
	}
	if rep.Store.BreakerTrips == 0 || rep.BreakerState != "closed" {
		t.Fatalf("outage/recovery cycle broken: trips %d, state %s",
			rep.Store.BreakerTrips, rep.BreakerState)
	}
}
