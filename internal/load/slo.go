package load

// The SLO gate: CI's load-smoke step compares a fresh load run against
// the committed BENCH_serve.json baseline and fails when tail latency or
// the error rate regress beyond a configurable band. Latency on shared
// CI runners is noisy, so the p99 bound is a multiplicative factor meant
// to catch order-of-magnitude regressions (a serialization point, an
// accidental O(n) in the request path), while the error-rate band is an
// absolute additive bound — errors should not be noisy at all.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// SLO bounds a load Report against a baseline Report.
type SLO struct {
	// P99Factor fails the check when the run's p99 latency exceeds
	// P99Factor × the baseline's p99. Zero or negative disables the
	// latency gate.
	P99Factor float64
	// ErrorBand fails the check when the run's error rate exceeds the
	// baseline's by more than this absolute amount. Negative disables
	// the error gate.
	ErrorBand float64
	// KneeFactor fails CheckKnee when the run's capacity knee falls
	// below the baseline's knee divided by this factor — a capacity
	// regression gate over the open-loop sweep. The knee is measured in
	// geometric rate steps, so a generous factor (≥ the sweep's step
	// Factor) keeps one-step jitter from failing CI. Zero or negative
	// disables the knee gate.
	KneeFactor float64
}

// ErrSLO marks a gate violation so drivers can map it to a distinct
// exit code.
var ErrSLO = errors.New("load: SLO violated")

// ReadBaseline loads a committed BENCH_serve.json report.
func ReadBaseline(path string) (Report, error) {
	var rep Report
	f, err := os.Open(path)
	if err != nil {
		return rep, err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return rep, fmt.Errorf("load: parsing baseline %s: %w", path, err)
	}
	return rep, nil
}

// Check compares a run against the baseline and returns an ErrSLO-
// wrapped error describing every violated bound, or nil. A baseline or
// run with no latency data (p99 = 0) skips the latency gate rather than
// dividing by zero.
func (s SLO) Check(rep, baseline Report) error {
	var violations []string
	if s.P99Factor > 0 && baseline.P99US > 0 && rep.P99US > s.P99Factor*baseline.P99US {
		violations = append(violations, fmt.Sprintf(
			"p99 %.0fµs exceeds %.1f× the baseline's %.0fµs",
			rep.P99US, s.P99Factor, baseline.P99US))
	}
	if s.ErrorBand >= 0 && rep.ErrorRate > baseline.ErrorRate+s.ErrorBand {
		violations = append(violations, fmt.Sprintf(
			"error rate %.3f exceeds the baseline's %.3f by more than %.3f",
			rep.ErrorRate, baseline.ErrorRate, s.ErrorBand))
	}
	if len(violations) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrSLO, strings.Join(violations, "; "))
}

// CheckKnee compares an open-loop sweep against its baseline and
// returns an ErrSLO-wrapped error when the measured capacity knee has
// regressed beyond the KneeFactor band. A baseline with no knee data
// (knee = 0) skips the gate.
func (s SLO) CheckKnee(rep, baseline KneeReport) error {
	if s.KneeFactor <= 0 || baseline.KneeRPS <= 0 {
		return nil
	}
	if rep.KneeRPS*s.KneeFactor < baseline.KneeRPS {
		return fmt.Errorf("%w: capacity knee %.1f req/s is below 1/%.1f of the baseline's %.1f req/s",
			ErrSLO, rep.KneeRPS, s.KneeFactor, baseline.KneeRPS)
	}
	return nil
}
