package load

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/serve"
)

// Scenario is one reusable traffic shape. Next is a pure function of the
// run options, the client's private deterministic stream, and the
// request's position — two runs with the same options issue the same
// request sequence per client, which is what lets the soak harness
// assert exact accounting invariants.
type Scenario struct {
	Name        string
	Description string
	Next        func(o Options, g *rng.Sequential, client, i int) Request
}

// scenarios is the catalogue; Register order is alphabetical via
// Scenarios().
var scenarios = map[string]Scenario{}

func register(s Scenario) { scenarios[s.Name] = s }

// Scenarios returns the catalogue sorted by name.
func Scenarios() []Scenario {
	out := make([]Scenario, 0, len(scenarios))
	for _, s := range scenarios {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup resolves a scenario name, listing the catalogue on a miss.
func Lookup(name string) (Scenario, error) {
	if s, ok := scenarios[name]; ok {
		return s, nil
	}
	names := make([]string, 0, len(scenarios))
	for _, s := range Scenarios() {
		names = append(names, s.Name)
	}
	return Scenario{}, fmt.Errorf("load: unknown scenario %q (known: %s)", name, strings.Join(names, ", "))
}

// gridSide returns the 2D-Laplacian grid side yielding about n unknowns.
func gridSide(n int) int {
	side := int(math.Sqrt(float64(n)))
	if side < 2 {
		side = 2
	}
	return side
}

// clientRHS draws a right-hand side from the client's stream.
func clientRHS(g *rng.Sequential, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*g.Float64() - 1
	}
	return b
}

// perRequestSeed spreads (client, i) into distinct 64-bit seeds.
func perRequestSeed(client, i int) uint64 {
	return uint64(client)<<32 | uint64(uint32(i))
}

// zipfCDFs caches the unnormalized cumulative power-law weights per
// (n, s), so the mixed scenario's hot loop stops recomputing the O(n)
// normalization (and its n math.Pow calls) on every single draw.
var zipfCDFs sync.Map // zipfCDFKey -> []float64

type zipfCDFKey struct {
	n int
	s float64
}

// zipfCDF returns the cumulative weights cum[r] = Σ_{k≤r} (k+1)^-s,
// building them once per (n, s). The partial sums are accumulated in
// the same left-to-right order the old per-draw walk used, so every
// entry is bit-identical to the running value that walk compared
// against.
func zipfCDF(n int, s float64) []float64 {
	key := zipfCDFKey{n: n, s: s}
	if v, ok := zipfCDFs.Load(key); ok {
		return v.([]float64)
	}
	cdf := make([]float64, n)
	var cum float64
	for r := 0; r < n; r++ {
		cum += math.Pow(float64(r+1), -s)
		cdf[r] = cum
	}
	v, _ := zipfCDFs.LoadOrStore(key, cdf)
	return v.([]float64)
}

// zipfPick draws a catalogue rank with P(r) ∝ 1/(r+1)^s — the skewed
// matrix popularity of real serving traffic (a few hot systems, a long
// cold tail). One uniform draw plus a binary search over the cached
// CDF; the draw sequence is exactly the old linear walk's (same single
// g.Float64() call, same partial sums, same tie rule u <= cum[r]).
func zipfPick(g *rng.Sequential, n int, s float64) int {
	cdf := zipfCDF(n, s)
	u := g.Float64() * cdf[n-1]
	if r := sort.SearchFloat64s(cdf, u); r < n {
		return r
	}
	return n - 1
}

func init() {
	register(Scenario{
		Name: "warm-repeat",
		Description: "every client repeat-solves one matrix with fresh right-hand sides: " +
			"after the first request the prep cache serves everything, and concurrent " +
			"identical requests coalesce into shared batches",
		Next: func(o Options, g *rng.Sequential, client, i int) Request {
			return Request{Solve: serve.SolveRequest{
				Matrix: serve.MatrixSpec{Kind: "randomspd", N: o.N, NNZ: 5, Seed: 1},
				Method: "asyrgs",
				Tol:    1e-6, MaxSweeps: 2000, Workers: 2,
				RHSSeed: perRequestSeed(client, i),
			}}
		},
	})

	register(Scenario{
		Name: "cold-churn",
		Description: "every request builds a distinct matrix, overflowing the built-matrix " +
			"and prepared-system LRUs: the all-miss path of cache eviction under load",
		Next: func(o Options, g *rng.Sequential, client, i int) Request {
			return Request{Solve: serve.SolveRequest{
				Matrix: serve.MatrixSpec{Kind: "randomspd", N: o.N, NNZ: 5, Seed: perRequestSeed(client, i) + 100},
				Method: "asyrgs",
				Tol:    1e-6, MaxSweeps: 2000, Workers: 2,
				RHSSeed: perRequestSeed(client, i),
			}}
		},
	})

	register(Scenario{
		Name: "batch-burst",
		Description: "alternating explicit multi-RHS batches and coalescable single solves " +
			"against one shared Laplacian — the batched-serving hot path",
		Next: func(o Options, g *rng.Sequential, client, i int) Request {
			side := gridSide(o.N)
			req := serve.SolveRequest{
				Matrix: serve.MatrixSpec{Kind: "laplacian2d", N: side},
				Method: "asyrgs",
				Tol:    1e-6, MaxSweeps: 4000, Workers: 2,
			}
			if i%2 == 0 {
				rows := side * side
				req.Bs = [][]float64{clientRHS(g, rows), clientRHS(g, rows), clientRHS(g, rows)}
			} else {
				req.RHSSeed = perRequestSeed(client, i)
			}
			return Request{Solve: req}
		},
	})

	register(Scenario{
		Name: "store-churn",
		Description: "cycles a small set of matrices through an undersized prepared-system LRU " +
			"so nearly every request evicts (spilling to the durable prep store) and restores " +
			"from it — the store-on-the-hot-path shape the chaos harness injects faults into",
		Next: func(o Options, g *rng.Sequential, client, i int) Request {
			return Request{Solve: serve.SolveRequest{
				// Four matrices against a two-entry prep LRU: the working set
				// never fits, so the durable store sees constant traffic.
				Matrix: serve.MatrixSpec{Kind: "randomspd", N: o.N, NNZ: 5, Seed: uint64(i%4) + 300},
				Method: "asyrgs",
				Tol:    1e-6, MaxSweeps: 2000, Workers: 2,
				RHSSeed: perRequestSeed(client, i),
			}}
		},
	})

	register(Scenario{
		Name: "distmem",
		Description: "sharded distributed-memory solves (asyrgs-distmem): the deployment-shape " +
			"prep key, per-rank queues and message accounting under concurrent load",
		Next: func(o Options, g *rng.Sequential, client, i int) Request {
			return Request{Solve: serve.SolveRequest{
				Matrix: serve.MatrixSpec{Kind: "randomspd", N: o.N, NNZ: 5, Seed: 2},
				Method: "asyrgs-distmem",
				Tol:    1e-6, MaxSweeps: 2000, Workers: 2, QueueCap: 2,
				RHSSeed: perRequestSeed(client, i),
			}}
		},
	})

	register(Scenario{
		Name: "cancel",
		Description: "mid-flight cancellations: unreachable-tolerance solves abandoned after " +
			"a few milliseconds, interleaved with normal warm solves — the server must shed " +
			"the abandoned work and keep serving",
		Next: func(o Options, g *rng.Sequential, client, i int) Request {
			side := gridSide(4 * o.N)
			if i%4 == 3 {
				return Request{Solve: serve.SolveRequest{
					Matrix: serve.MatrixSpec{Kind: "laplacian2d", N: side},
					Method: "asyrgs",
					Tol:    1e-6, MaxSweeps: 4000, Workers: 2,
					RHSSeed: perRequestSeed(client, i),
				}}
			}
			// Seed is part of the batch key but not the prep key: a unique
			// seed per request keeps abandoned solves out of shared batches
			// (whose multi-client context deliberately ignores one member's
			// cancellation) without losing prep-cache warmth.
			return Request{
				Solve: serve.SolveRequest{
					Matrix: serve.MatrixSpec{Kind: "laplacian2d", N: side},
					Method: "asyrgs",
					Tol:    1e-300, MaxSweeps: 1 << 30, Workers: 2,
					Seed:    perRequestSeed(client, i) + 1,
					RHSSeed: perRequestSeed(client, i),
				},
				CancelAfter: time.Duration(4+g.Intn(12)) * time.Millisecond,
			}
		},
	})

	register(Scenario{
		Name: "mixed",
		Description: "zipfian matrix popularity over the workload generators × a roster of " +
			"methods (shared-memory, Krylov, Kaczmarz, least-squares, sharded distmem), with " +
			"periodic explicit batches — the everything-at-once serving soak",
		Next: func(o Options, g *rng.Sequential, client, i int) Request {
			side := gridSide(o.N)
			type entry struct {
				spec     serve.MatrixSpec
				method   string
				sweeps   int
				workers  int
				queueCap int
			}
			catalogue := []entry{
				{serve.MatrixSpec{Kind: "laplacian2d", N: side}, "asyrgs", 4000, 2, 0},
				{serve.MatrixSpec{Kind: "randomspd", N: o.N, NNZ: 5, Seed: 1}, "asyrgs", 2000, 2, 0},
				{serve.MatrixSpec{Kind: "laplacian2d", N: side}, "cg", 2000, 2, 0},
				{serve.MatrixSpec{Kind: "randomspd", N: o.N, NNZ: 5, Seed: 1}, "kaczmarz", 80000, 2, 0},
				{serve.MatrixSpec{Kind: "randomspd", N: o.N, NNZ: 5, Seed: 2}, "asyrgs-distmem", 2000, 2, 2},
				{serve.MatrixSpec{Kind: "socialgram", N: o.N / 2, Seed: 8}, "fcg", 2000, 2, 0},
				{serve.MatrixSpec{Kind: "overdetermined", Rows: 2 * o.N, Cols: o.N / 2, NNZ: 4, Seed: 4}, "lsqcd", 40000, 0, 0},
				{serve.MatrixSpec{Kind: "randomspd", N: o.N, NNZ: 5, Seed: 5}, "rgs", 4000, 0, 0},
				{serve.MatrixSpec{Kind: "randomspd", N: o.N, NNZ: 5, Seed: 6}, "jacobi", 8000, 2, 0},
				{serve.MatrixSpec{Kind: "randomspd", N: o.N, NNZ: 5, Seed: 7}, "gs", 2000, 0, 0},
			}
			e := catalogue[zipfPick(g, len(catalogue), 1.1)]
			req := serve.SolveRequest{
				Matrix: e.spec, Method: e.method,
				Tol: 1e-6, MaxSweeps: e.sweeps, Workers: e.workers, QueueCap: e.queueCap,
				RHSSeed: perRequestSeed(client, i),
			}
			if i%8 == 7 && e.spec.Kind == "laplacian2d" {
				rows := side * side
				req.RHSSeed = 0
				req.Bs = [][]float64{clientRHS(g, rows), clientRHS(g, rows)}
			}
			return Request{Solve: req}
		},
	})
}
