package load

import (
	"math"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/rng"
)

// zipfPickLinear is the pre-optimization reference: recompute the
// normalization and walk the partial sums on every draw. zipfPick must
// reproduce its draw sequence exactly — same stream consumption, same
// rank for every uniform — or the deterministic soak accounting changes
// under our feet.
func zipfPickLinear(g *rng.Sequential, n int, s float64) int {
	var total float64
	for r := 0; r < n; r++ {
		total += math.Pow(float64(r+1), -s)
	}
	u := g.Float64() * total
	var cum float64
	for r := 0; r < n; r++ {
		cum += math.Pow(float64(r+1), -s)
		if u <= cum {
			return r
		}
	}
	return n - 1
}

func TestZipfPickMatchesLinearWalk(t *testing.T) {
	cases := []struct {
		n int
		s float64
	}{
		{10, 1.1}, // the mixed scenario's exact shape
		{1, 1.0},
		{3, 0.7},
		{128, 2.0},
		{64, 0.0}, // uniform degenerate case
	}
	for _, tc := range cases {
		for _, seed := range []uint64{1, 7, 0xdeadbeef} {
			gOld := rng.NewSequential(seed)
			gNew := rng.NewSequential(seed)
			for i := 0; i < 4000; i++ {
				want := zipfPickLinear(gOld, tc.n, tc.s)
				got := zipfPick(gNew, tc.n, tc.s)
				if got != want {
					t.Fatalf("n=%d s=%g seed=%d draw %d: binary search picked %d, linear walk %d",
						tc.n, tc.s, seed, i, got, want)
				}
			}
		}
	}
}

func TestZipfPickIsSkewed(t *testing.T) {
	g := rng.NewSequential(11)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[zipfPick(g, 10, 1.1)]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("zipf draw not skewed toward rank 0: %v", counts)
	}
	for r, c := range counts {
		if c == 0 {
			t.Fatalf("rank %d never drawn in 20000 tries: %v", r, counts)
		}
	}
}
