// Package workload generates the test problems of the experiment suite.
//
// The paper's evaluation matrix is proprietary: the Gram matrix of a
// 120,147-term term-frequency matrix from a social-media regression task
// (172.9M non-zeros, max row 117,182, mean 1,439, min 1 — highly skewed,
// ill-conditioned, essentially unstructured). SocialGram reproduces that
// *shape* at laptop scale: a synthetic term–document matrix with Zipf term
// popularity and Zipf document lengths whose Gram matrix inherits the
// skew (popular terms co-occur with everything → near-full rows; rare
// terms → near-empty rows), positive semidefiniteness by construction, and
// poor conditioning. The remaining generators (grid Laplacians, random
// diagonally dominant SPD, random overdetermined systems) cover the
// paper's "reference scenario" — bounded row counts C1…C2 with small
// C2/C1 — where the theory is sharpest.
package workload

import (
	"fmt"
	"math"

	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// SocialGramOptions shape the synthetic social-media Gram matrix.
type SocialGramOptions struct {
	// Terms is the Gram dimension n (the paper's 120,147, scaled down).
	Terms int
	// Docs is the number of documents (rows of the term–document matrix).
	Docs int
	// MeanDocLen is the mean number of distinct terms per document.
	MeanDocLen int
	// ZipfS is the exponent of the term-popularity distribution (≈1
	// matches natural language).
	ZipfS float64
	// Ridge is added to the diagonal to make the Gram matrix strictly
	// positive definite (it also models the regression regularizer that a
	// real training task applies). Relative to the diagonal mean.
	Ridge float64
	// Binary stores term incidence (0/1) instead of term frequency.
	// Binary incidence strengthens the relative off-diagonal coupling
	// (popular term pairs co-occur in almost every document), matching
	// the severe ill-conditioning of the paper's matrix; frequency
	// weighting inflates the diagonal and makes the system easier.
	Binary bool
	// Topics, when positive, draws each document mostly from one of
	// Topics latent term blocks instead of the flat Zipf distribution.
	// Topical correlation makes the Gram matrix nearly low-rank — the
	// ridge floors the small eigenvalues — reproducing the severe
	// ill-conditioning the paper reports for its real text data.
	Topics int
	// TopicMix is the probability that a word is drawn from the
	// document's topic block rather than the global distribution
	// (default 0.8 when Topics > 0).
	TopicMix float64
	// Seed keys all randomness.
	Seed uint64
}

// DefaultSocialGram returns the options used by the experiment harness: a
// laptop-scale analogue of the paper's matrix.
func DefaultSocialGram(terms int, seed uint64) SocialGramOptions {
	return SocialGramOptions{
		Terms:      terms,
		Docs:       3 * terms,
		MeanDocLen: 10,
		ZipfS:      1.2,
		Ridge:      0.01,
		Binary:     true,
		Topics:     max(8, terms/100),
		TopicMix:   0.8,
		Seed:       seed,
	}
}

// SocialGram builds the synthetic term–document matrix G and returns its
// Gram matrix A = GᵀG + ridge·mean(diag)·I (SPD, skewed rows) together
// with G itself (useful for the least-squares experiments).
func SocialGram(o SocialGramOptions) (gram, termDoc *sparse.CSR) {
	if o.Terms <= 1 || o.Docs <= 0 {
		panic(fmt.Sprintf("workload: SocialGram bad sizes terms=%d docs=%d", o.Terms, o.Docs))
	}
	g := rng.NewSequential(o.Seed)
	// Zipf CDF over terms: p(t) ∝ (t+1)^{-s}.
	cdf := make([]float64, o.Terms)
	var total float64
	for t := 0; t < o.Terms; t++ {
		total += math.Pow(float64(t+1), -o.ZipfS)
		cdf[t] = total
	}
	for t := range cdf {
		cdf[t] /= total
	}
	sampleTerm := func() int {
		u := g.Float64()
		lo, hi := 0, o.Terms-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	mix := o.TopicMix
	if mix == 0 {
		mix = 0.8
	}
	// Topic blocks partition the term ids; a document's topical words are
	// Zipf-distributed within its block.
	sampleTopicTerm := func(topic int) int {
		blockSize := (o.Terms + o.Topics - 1) / o.Topics
		lo := topic * blockSize
		hi := lo + blockSize
		if hi > o.Terms {
			hi = o.Terms
		}
		if hi <= lo {
			return sampleTerm()
		}
		// Zipf within the block via inverse-power transform of a uniform:
		// cheap and close enough for workload purposes.
		u := g.Float64()
		span := float64(hi - lo)
		idx := int(span * math.Pow(u, 2)) // quadratic bias toward the block head
		if idx >= hi-lo {
			idx = hi - lo - 1
		}
		return lo + idx
	}

	coo := sparse.NewCOO(o.Docs, o.Terms)
	seen := make(map[int]int, o.MeanDocLen*4)
	for d := 0; d < o.Docs; d++ {
		// Document length: geometric-ish around the mean, at least 1.
		length := 1 + int(float64(o.MeanDocLen)*(-math.Log(1-g.Float64())))
		if length > o.Terms {
			length = o.Terms
		}
		topic := 0
		if o.Topics > 0 {
			topic = g.Intn(o.Topics)
		}
		clear(seen)
		for w := 0; w < length; w++ {
			if o.Topics > 0 && g.Float64() < mix {
				seen[sampleTopicTerm(topic)]++
			} else {
				seen[sampleTerm()]++ // term frequency accumulates
			}
		}
		for t, f := range seen {
			if o.Binary {
				coo.Add(d, t, 1)
			} else {
				coo.Add(d, t, float64(f))
			}
		}
	}
	termDoc = coo.ToCSR()
	gram = sparse.Gram(termDoc)

	// Guarantee every diagonal entry exists and is strictly positive: a
	// term that never occurred gets a pure-ridge row (the paper removed
	// identically-zero rows/columns; the ridge keeps dimensions stable
	// instead, which does not change the solver behaviour on the support).
	diag := gram.Diag()
	var mean float64
	cnt := 0
	for _, v := range diag {
		if v > 0 {
			mean += v
			cnt++
		}
	}
	if cnt > 0 {
		mean /= float64(cnt)
	} else {
		mean = 1
	}
	ridge := o.Ridge * mean
	if ridge <= 0 {
		ridge = 1e-8 * mean
	}
	add := sparse.NewCOO(o.Terms, o.Terms)
	for i := 0; i < o.Terms; i++ {
		add.Add(i, i, ridge)
		cols, vals := gram.Row(i)
		for k, j := range cols {
			add.Add(i, j, vals[k])
		}
	}
	gram = add.ToCSR()
	return gram, termDoc
}

// Laplacian2D returns the (nx·ny)×(nx·ny) 5-point Dirichlet Laplacian of
// an nx×ny grid: the canonical reference-scenario SPD matrix (C1=3, C2=5).
func Laplacian2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	coo := sparse.NewCOO(n, n)
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			c := id(i, j)
			coo.Add(c, c, 4)
			if i > 0 {
				coo.Add(c, id(i-1, j), -1)
			}
			if i < nx-1 {
				coo.Add(c, id(i+1, j), -1)
			}
			if j > 0 {
				coo.Add(c, id(i, j-1), -1)
			}
			if j < ny-1 {
				coo.Add(c, id(i, j+1), -1)
			}
		}
	}
	return coo.ToCSR()
}

// Laplacian3D returns the 7-point Dirichlet Laplacian of an nx×ny×nz grid.
func Laplacian3D(nx, ny, nz int) *sparse.CSR {
	n := nx * ny * nz
	coo := sparse.NewCOO(n, n)
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				c := id(i, j, k)
				coo.Add(c, c, 6)
				if i > 0 {
					coo.Add(c, id(i-1, j, k), -1)
				}
				if i < nx-1 {
					coo.Add(c, id(i+1, j, k), -1)
				}
				if j > 0 {
					coo.Add(c, id(i, j-1, k), -1)
				}
				if j < ny-1 {
					coo.Add(c, id(i, j+1, k), -1)
				}
				if k > 0 {
					coo.Add(c, id(i, j, k-1), -1)
				}
				if k < nz-1 {
					coo.Add(c, id(i, j, k+1), -1)
				}
			}
		}
	}
	return coo.ToCSR()
}

// RandomSPD returns an n×n symmetric strictly diagonally dominant (hence
// SPD) matrix with about nnzPerRow off-diagonal entries per row, values
// uniform in [-1,1], and diagonal = dominance × (row absolute sum).
// dominance must exceed 1.
func RandomSPD(n, nnzPerRow int, dominance float64, seed uint64) *sparse.CSR {
	if dominance <= 1 {
		panic("workload: RandomSPD needs dominance > 1")
	}
	g := rng.NewSequential(seed)
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow/2+1; k++ {
			j := g.Intn(n)
			if j == i {
				continue
			}
			v := 2*g.Float64() - 1
			coo.AddSym(i, j, v)
		}
	}
	m := coo.ToCSR()
	// Set the diagonal from the assembled off-diagonal row sums.
	final := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		cols, vals := m.Row(i)
		var sum float64
		for k, j := range cols {
			if j != i {
				sum += math.Abs(vals[k])
				final.Add(i, j, vals[k])
			}
		}
		if sum == 0 {
			sum = 1
		}
		final.Add(i, i, dominance*sum)
	}
	return final.ToCSR()
}

// RandomOverdetermined returns a rows×cols full-column-rank-ish sparse
// matrix for the least-squares experiments: each row holds nnzPerRow
// uniform entries, and every column receives at least one entry so no
// column is empty.
func RandomOverdetermined(rows, cols, nnzPerRow int, seed uint64) *sparse.CSR {
	if rows < cols {
		panic("workload: RandomOverdetermined needs rows >= cols")
	}
	g := rng.NewSequential(seed)
	coo := sparse.NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		for k := 0; k < nnzPerRow; k++ {
			coo.Add(i, g.Intn(cols), 2*g.Float64()-1)
		}
	}
	// Guarantee full column support (and help full rank) with a scattered
	// strong diagonal band.
	for j := 0; j < cols; j++ {
		coo.Add(j, j, 2+g.Float64())
	}
	return coo.ToCSR()
}

// RHSForSolution returns b = A·x* for a random solution x* with entries
// uniform in [-1,1], along with x*. Experiments that measure A-norm error
// need a known exact solution; the paper built one the same way (solve to
// low residual, then re-pose with b = A·x*).
func RHSForSolution(a *sparse.CSR, seed uint64) (b, xstar []float64) {
	b = make([]float64, a.Rows)
	xstar = make([]float64, a.Cols)
	RHSForSolutionInto(a, seed, b, xstar)
	return b, xstar
}

// RHSForSolutionInto is RHSForSolution writing into caller-owned buffers
// (len(b) = Rows, len(xstar) = Cols) — the pooled-buffer path of the
// serving layer, producing bit-identical values to RHSForSolution.
func RHSForSolutionInto(a *sparse.CSR, seed uint64, b, xstar []float64) {
	g := rng.NewSequential(seed)
	for i := range xstar {
		xstar[i] = 2*g.Float64() - 1
	}
	a.MulVec(b, xstar)
}

// RandomRHS returns a right-hand side with entries uniform in [-1,1].
func RandomRHS(n int, seed uint64) []float64 {
	b := make([]float64, n)
	RandomRHSInto(seed, b)
	return b
}

// RandomRHSInto is RandomRHS writing into a caller-owned buffer — the
// pooled-buffer path of the serving layer, producing bit-identical
// values to RandomRHS.
func RandomRHSInto(seed uint64, b []float64) {
	g := rng.NewSequential(seed)
	for i := range b {
		b[i] = 2*g.Float64() - 1
	}
}

// MultiRHS returns an n×cols row-major block of uniform [-1,1] right-hand
// sides — the analogue of the paper's 51 label-prediction columns.
func MultiRHS(n, cols int, seed uint64) *vec.Dense {
	g := rng.NewSequential(seed)
	d := vec.NewDense(n, cols)
	for i := range d.Data {
		d.Data[i] = 2*g.Float64() - 1
	}
	return d
}

// Describe formats the headline statistics of a matrix the way the paper
// reports its test system (size, non-zeros, row-size skew).
func Describe(name string, a *sparse.CSR) string {
	st := a.Stats()
	return fmt.Sprintf("%s: %d x %d, nnz=%d, row nnz min/mean/max = %d/%.1f/%d",
		name, a.Rows, a.Cols, a.NNZ(), st.Min, st.Mean, st.Max)
}
