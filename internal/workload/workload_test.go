package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

func TestSocialGramShape(t *testing.T) {
	opts := DefaultSocialGram(200, 1)
	gram, termDoc := SocialGram(opts)
	if gram.Rows != 200 || gram.Cols != 200 {
		t.Fatalf("Gram shape %dx%d", gram.Rows, gram.Cols)
	}
	if termDoc.Rows != opts.Docs || termDoc.Cols != 200 {
		t.Fatalf("term-doc shape %dx%d", termDoc.Rows, termDoc.Cols)
	}
	if !gram.IsSymmetric(1e-10) {
		t.Fatal("Gram matrix must be symmetric")
	}
	for i, d := range gram.Diag() {
		if d <= 0 {
			t.Fatalf("diagonal %d = %v not positive", i, d)
		}
	}
}

func TestSocialGramIsPositiveDefinite(t *testing.T) {
	gram, _ := SocialGram(DefaultSocialGram(100, 2))
	g := rng.NewSequential(3)
	for trial := 0; trial < 30; trial++ {
		x := make([]float64, 100)
		for i := range x {
			x[i] = g.Float64() - 0.5
		}
		if q := gram.QuadForm(x); q <= 0 {
			t.Fatalf("quadratic form %v not positive", q)
		}
	}
}

func TestSocialGramRowSkew(t *testing.T) {
	// The defining property of the paper's matrix: max ≫ mean ≫ min row
	// sizes (117,182 / 1,439 / 1 in the paper).
	gram, _ := SocialGram(DefaultSocialGram(400, 4))
	st := gram.Stats()
	if float64(st.Max) < 3*st.Mean {
		t.Fatalf("row sizes not skewed enough: max=%d mean=%.1f", st.Max, st.Mean)
	}
	if st.Min > int(st.Mean/2)+1 {
		t.Fatalf("min row size %d too close to mean %.1f", st.Min, st.Mean)
	}
}

func TestSocialGramDeterministic(t *testing.T) {
	a1, _ := SocialGram(DefaultSocialGram(80, 7))
	a2, _ := SocialGram(DefaultSocialGram(80, 7))
	if a1.NNZ() != a2.NNZ() {
		t.Fatal("same seed must give the same matrix")
	}
	for k := range a1.Vals {
		if a1.Vals[k] != a2.Vals[k] || a1.ColIdx[k] != a2.ColIdx[k] {
			t.Fatal("same seed must give identical entries")
		}
	}
	a3, _ := SocialGram(DefaultSocialGram(80, 8))
	if a3.NNZ() == a1.NNZ() {
		same := true
		for k := range a1.Vals {
			if a1.Vals[k] != a3.Vals[k] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds should differ")
		}
	}
}

func TestSocialGramMatchesExplicitGramPlusRidge(t *testing.T) {
	opts := DefaultSocialGram(60, 9)
	gram, termDoc := SocialGram(opts)
	explicit := sparse.Gram(termDoc)
	// gram = explicit + ridge·I: off-diagonals must agree exactly.
	for i := 0; i < 60; i++ {
		cols, vals := explicit.Row(i)
		for k, j := range cols {
			if i == j {
				continue
			}
			if math.Abs(gram.At(i, j)-vals[k]) > 1e-12 {
				t.Fatalf("off-diagonal (%d,%d) differs", i, j)
			}
		}
		if gram.At(i, i) <= explicit.At(i, i) {
			t.Fatalf("diagonal %d must include a positive ridge", i)
		}
	}
}

func TestLaplacian2DStructure(t *testing.T) {
	a := Laplacian2D(4, 5)
	if a.Rows != 20 || !a.IsSymmetric(0) {
		t.Fatal("bad 2D Laplacian")
	}
	// Interior row: diagonal 4 with four −1 neighbours → zero row sum;
	// corner rows sum to 2.
	rowSum := func(i int) float64 {
		_, vals := a.Row(i)
		var s float64
		for _, v := range vals {
			s += v
		}
		return s
	}
	if rowSum(0) != 2 { // corner: two neighbours
		t.Fatalf("corner row sum %v, want 2", rowSum(0))
	}
	interior := 1*5 + 2 // (1,2) interior for 4x5
	if rowSum(interior) != 0 {
		t.Fatalf("interior row sum %v, want 0", rowSum(interior))
	}
}

func TestLaplacian3DStructure(t *testing.T) {
	a := Laplacian3D(3, 3, 3)
	if a.Rows != 27 || !a.IsSymmetric(0) {
		t.Fatal("bad 3D Laplacian")
	}
	center := (1*3+1)*3 + 1
	cols, vals := a.Row(center)
	if len(cols) != 7 {
		t.Fatalf("center row has %d entries, want 7", len(cols))
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	if s != 0 {
		t.Fatalf("center row sum %v", s)
	}
}

func TestRandomSPDDominance(t *testing.T) {
	a := RandomSPD(50, 6, 1.5, 10)
	if !a.IsSymmetric(1e-12) {
		t.Fatal("RandomSPD must be symmetric")
	}
	for i := 0; i < 50; i++ {
		cols, vals := a.Row(i)
		var off, diag float64
		for k, j := range cols {
			if j == i {
				diag = vals[k]
			} else {
				off += math.Abs(vals[k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not strictly dominant: diag %v off %v", i, diag, off)
		}
	}
}

func TestRandomSPDRejectsBadDominance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dominance <= 1 must panic")
		}
	}()
	RandomSPD(5, 2, 1.0, 1)
}

func TestRandomOverdeterminedColumns(t *testing.T) {
	a := RandomOverdetermined(40, 15, 3, 11)
	csc := a.ToCSC()
	for j := 0; j < 15; j++ {
		if csc.ColNorm2Sq(j) == 0 {
			t.Fatalf("column %d is empty", j)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rows < cols must panic")
		}
	}()
	RandomOverdetermined(3, 5, 2, 1)
}

func TestRHSForSolutionConsistency(t *testing.T) {
	a := RandomSPD(30, 4, 1.5, 12)
	b, xstar := RHSForSolution(a, 13)
	ax := make([]float64, 30)
	a.MulVec(ax, xstar)
	for i := range b {
		if b[i] != ax[i] {
			t.Fatal("b must equal A·x* exactly")
		}
	}
}

func TestRandomRHSAndMultiRHS(t *testing.T) {
	b := RandomRHS(100, 14)
	for _, v := range b {
		if v < -1 || v > 1 {
			t.Fatalf("RHS entry %v outside [-1,1]", v)
		}
	}
	d := MultiRHS(10, 3, 15)
	if d.Rows != 10 || d.Cols != 3 {
		t.Fatal("MultiRHS shape")
	}
	if d.FrobNorm() == 0 {
		t.Fatal("MultiRHS should be non-zero")
	}
}

func TestDescribe(t *testing.T) {
	a := Laplacian2D(3, 3)
	s := Describe("lap", a)
	if !strings.Contains(s, "lap") || !strings.Contains(s, "9 x 9") {
		t.Fatalf("Describe = %q", s)
	}
}

func TestLaplacianEigenvaluesPositiveProperty(t *testing.T) {
	// Dirichlet Laplacians are SPD: random quadratic forms are positive.
	f := func(seed uint64, size uint8) bool {
		m := int(size%6) + 2
		a := Laplacian2D(m, m)
		g := rng.NewSequential(seed)
		x := make([]float64, m*m)
		nonzero := false
		for i := range x {
			x[i] = g.Float64() - 0.5
			if x[i] != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		return a.QuadForm(x) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
