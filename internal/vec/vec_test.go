package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths should panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNrm2(t *testing.T) {
	if got := Nrm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Nrm2 = %v, want 5", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Fatalf("Nrm2(nil) = %v, want 0", got)
	}
}

func TestNrm2Overflow(t *testing.T) {
	// Naive sum-of-squares would overflow; the scaled loop must not.
	x := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt(2)
	if got := Nrm2(x); math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Nrm2 overflow-guard failed: got %v want %v", got, want)
	}
}

func TestNrm2Underflow(t *testing.T) {
	x := []float64{1e-200, 1e-200}
	want := 1e-200 * math.Sqrt(2)
	if got := Nrm2(x); math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Nrm2 underflow-guard failed: got %v want %v", got, want)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, -4}, y)
	if y[0] != 7 || y[1] != -7 {
		t.Fatalf("Axpy = %v", y)
	}
	// alpha = 0 must be a no-op.
	Axpy(0, []float64{math.NaN(), math.NaN()}, y)
	if y[0] != 7 || y[1] != -7 {
		t.Fatalf("Axpy with zero alpha changed y: %v", y)
	}
}

func TestScalCopyFill(t *testing.T) {
	x := []float64{1, 2}
	Scal(3, x)
	if x[0] != 3 || x[1] != 6 {
		t.Fatalf("Scal = %v", x)
	}
	dst := make([]float64, 2)
	Copy(dst, x)
	if dst[0] != 3 || dst[1] != 6 {
		t.Fatalf("Copy = %v", dst)
	}
	Fill(dst, -1)
	if dst[0] != -1 || dst[1] != -1 {
		t.Fatalf("Fill = %v", dst)
	}
}

func TestSubAddMaxAbsSum(t *testing.T) {
	d := make([]float64, 2)
	Sub(d, []float64{5, 1}, []float64{2, 4})
	if d[0] != 3 || d[1] != -3 {
		t.Fatalf("Sub = %v", d)
	}
	Add(d, []float64{5, 1}, []float64{2, 4})
	if d[0] != 7 || d[1] != 5 {
		t.Fatalf("Add = %v", d)
	}
	if got := MaxAbs([]float64{-9, 3}); got != 9 {
		t.Fatalf("MaxAbs = %v", got)
	}
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Fatalf("Sum = %v", got)
	}
}

func TestEqualRelErr(t *testing.T) {
	if !Equal([]float64{1, 2}, []float64{1 + 1e-12, 2}, 1e-9) {
		t.Fatal("Equal should tolerate 1e-12")
	}
	if Equal([]float64{1}, []float64{1, 2}, 1) {
		t.Fatal("Equal should reject length mismatch")
	}
	if got := RelErr([]float64{2, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-15 {
		t.Fatalf("RelErr = %v, want 1", got)
	}
	if got := RelErr([]float64{3, 4}, []float64{0, 0}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("RelErr with zero ref = %v, want 5", got)
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		x, y := clip(xs[:n]), clip(ys[:n])
		lhs := math.Abs(Dot(x, y))
		rhs := Nrm2(x) * Nrm2(y)
		return lhs <= rhs*(1+1e-12)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		x, y := clip(xs[:n]), clip(ys[:n])
		s := make([]float64, n)
		Add(s, x, y)
		return Nrm2(s) <= (Nrm2(x)+Nrm2(y))*(1+1e-12)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// clip replaces non-finite quick-generated values so properties test
// algebra rather than NaN propagation.
func clip(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 1
		}
		// keep magnitudes sane so products do not overflow
		out[i] = math.Mod(v, 1e6)
	}
	return out
}

func TestDotParMatchesSerial(t *testing.T) {
	n := 100_000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%97) / 97
		y[i] = float64(i%89) / 89
	}
	serial := Dot(x, y)
	par := DotPar(x, y)
	if math.Abs(serial-par) > 1e-6*math.Abs(serial) {
		t.Fatalf("DotPar = %v, serial = %v", par, serial)
	}
}

func TestAxpyParMatchesSerial(t *testing.T) {
	n := 50_000
	x := make([]float64, n)
	y1 := make([]float64, n)
	y2 := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 13)
		y1[i] = float64(i % 7)
		y2[i] = y1[i]
	}
	Axpy(0.5, x, y1)
	AxpyPar(0.5, x, y2)
	if !Equal(y1, y2, 0) {
		t.Fatal("AxpyPar diverged from Axpy")
	}
}

func TestDense(t *testing.T) {
	d := NewDense(3, 2)
	d.Set(1, 1, 5)
	if d.At(1, 1) != 5 {
		t.Fatalf("At = %v", d.At(1, 1))
	}
	row := d.Row(1)
	if len(row) != 2 || row[1] != 5 {
		t.Fatalf("Row = %v", row)
	}
	row[0] = 7 // aliasing
	if d.At(1, 0) != 7 {
		t.Fatal("Row must alias storage")
	}
	col := make([]float64, 3)
	d.Col(col, 0)
	if col[1] != 7 {
		t.Fatalf("Col = %v", col)
	}
	d.SetCol(1, []float64{1, 2, 3})
	if d.At(2, 1) != 3 {
		t.Fatal("SetCol failed")
	}
	c := d.Clone()
	c.Set(0, 0, 99)
	if d.At(0, 0) == 99 {
		t.Fatal("Clone must deep-copy")
	}
	if got := d.FrobNorm(); got == 0 {
		t.Fatal("FrobNorm should be non-zero")
	}
	e := NewDense(3, 2)
	e.AddScaled(2, d)
	if e.At(1, 0) != 14 {
		t.Fatalf("AddScaled = %v", e.At(1, 0))
	}
	diff := NewDense(3, 2)
	e.SubInto(diff, d)
	if diff.At(1, 0) != 7 {
		t.Fatalf("SubInto = %v", diff.At(1, 0))
	}
	d.Zero()
	if d.FrobNorm() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestDenseShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense with negative dims should panic")
		}
	}()
	NewDense(-1, 2)
}
