package vec

import "fmt"

// Dense is a row-major dense matrix. The paper's experiment stores the
// 120,147×51 right-hand-side and solution blocks row-major "to improve
// locality"; Dense reproduces that layout: Row(i) is a contiguous slice of
// the Cols entries of row i, so per-coordinate solver updates touch one
// cache line per right-hand side block.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense allocates a zero Rows×Cols row-major block.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: NewDense negative dimension %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns row i as a slice aliasing the underlying storage.
func (d *Dense) Row(i int) []float64 {
	return d.Data[i*d.Cols : (i+1)*d.Cols]
}

// At returns element (i,j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns element (i,j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// Col copies column j into dst, which must have length Rows.
func (d *Dense) Col(dst []float64, j int) {
	if len(dst) != d.Rows {
		panic("vec: Dense.Col length mismatch")
	}
	for i := 0; i < d.Rows; i++ {
		dst[i] = d.Data[i*d.Cols+j]
	}
}

// SetCol writes src (length Rows) into column j.
func (d *Dense) SetCol(j int, src []float64) {
	if len(src) != d.Rows {
		panic("vec: Dense.SetCol length mismatch")
	}
	for i := 0; i < d.Rows; i++ {
		d.Data[i*d.Cols+j] = src[i]
	}
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.Rows, d.Cols)
	copy(c.Data, d.Data)
	return c
}

// Zero resets every entry to zero.
func (d *Dense) Zero() { Fill(d.Data, 0) }

// FrobNorm returns the Frobenius norm of the block.
func (d *Dense) FrobNorm() float64 { return Nrm2(d.Data) }

// AddScaled computes d ← d + alpha·o entrywise.
func (d *Dense) AddScaled(alpha float64, o *Dense) {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		panic("vec: Dense.AddScaled shape mismatch")
	}
	Axpy(alpha, o.Data, d.Data)
}

// SubInto computes dst ← d − o entrywise.
func (d *Dense) SubInto(dst, o *Dense) {
	if d.Rows != o.Rows || d.Cols != o.Cols || dst.Rows != d.Rows || dst.Cols != d.Cols {
		panic("vec: Dense.SubInto shape mismatch")
	}
	Sub(dst.Data, d.Data, o.Data)
}
