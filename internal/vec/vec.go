// Package vec provides dense vector kernels (BLAS level-1 style) and a
// row-major dense block type used for multi-right-hand-side solves.
//
// All operations are written against plain []float64 slices so that they
// compose with the sparse kernels and the atomic shared-state solvers
// without copies. Parallel variants split work across goroutines; they are
// intended for the long vectors that arise in the solvers (n in the
// thousands or more) and fall back to the serial path for short inputs.
package vec

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Dot returns the Euclidean inner product x·y. It panics if the lengths
// differ, because a silent truncation would corrupt a solver invisibly.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Nrm2 returns the Euclidean norm ‖x‖₂ using scaled accumulation to avoid
// overflow/underflow for extreme magnitudes.
func Nrm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y ← y + alpha·x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x ← alpha·x.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst; the lengths must match.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: Copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Fill sets every entry of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Sub computes dst ← x − y.
func Sub(dst, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("vec: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Add computes dst ← x + y.
func Add(dst, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("vec: Add length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// MaxAbs returns max_i |x_i|, or 0 for an empty slice.
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the entries of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Equal reports whether x and y agree entrywise to within tol (absolute).
func Equal(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i, v := range x {
		if math.Abs(v-y[i]) > tol {
			return false
		}
	}
	return true
}

// RelErr returns ‖x−y‖₂ / ‖y‖₂, or ‖x‖₂ when y is zero. It is the
// convergence metric used throughout the experiment harness.
func RelErr(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vec: RelErr length mismatch")
	}
	d := make([]float64, len(x))
	Sub(d, x, y)
	ny := Nrm2(y)
	if ny == 0 {
		return Nrm2(d)
	}
	return Nrm2(d) / ny
}

// parallelThreshold is the minimum length for which the parallel kernels
// split work; below it goroutine overhead dominates.
const parallelThreshold = 4096

// parallelFor runs body over [0,n) split into roughly equal contiguous
// chunks, one per available CPU. body receives the half-open range [lo,hi).
func parallelFor(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < parallelThreshold || workers <= 1 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// DotPar is a parallel Dot for long vectors.
func DotPar(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: DotPar length mismatch %d != %d", len(x), len(y)))
	}
	n := len(x)
	if n < parallelThreshold {
		return Dot(x, y)
	}
	var mu sync.Mutex
	var total float64
	parallelFor(n, func(lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += x[i] * y[i]
		}
		mu.Lock()
		total += s
		mu.Unlock()
	})
	return total
}

// AxpyPar is a parallel Axpy for long vectors.
func AxpyPar(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("vec: AxpyPar length mismatch")
	}
	if alpha == 0 {
		return
	}
	parallelFor(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	})
}
