package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// postSolveErr is postSolve without t.Fatal: safe off the test
// goroutine; a nil response means the request never got out.
func postSolveErr(ts *httptest.Server, req SolveRequest) (SolveResponse, *http.Response) {
	var out SolveResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, nil
	}
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		_ = json.NewDecoder(resp.Body).Decode(&out)
	}
	return out, resp
}

// postSolveCtx posts a solve under the caller's context, so a test can
// model a client disconnecting mid-request.
func postSolveCtx(ctx context.Context, ts *httptest.Server, req SolveRequest) (SolveResponse, *http.Response) {
	var out SolveResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, nil
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/solve", bytes.NewReader(body))
	if err != nil {
		return out, nil
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return out, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		_ = json.NewDecoder(resp.Body).Decode(&out)
	}
	return out, resp
}

// TestAdaptiveDeadline pins the batching policy: when a leader waits,
// for how long, as a pure function of rate history and gate contention.
func TestAdaptiveDeadline(t *testing.T) {
	const window = 100 * time.Millisecond
	cases := []struct {
		name   string
		gapNS  float64
		window time.Duration
		target int
		busy   bool
		want   time.Duration
	}{
		{"disabled window", 1e3, 0, 4, true, 0},
		{"idle server runs immediately", 1e3, window, 4, false, 0},
		{"no history pays the window once", -1, window, 4, true, window},
		{"sparse arrivals skip the wait", float64(2 * window), window, 4, true, 0},
		{"fast arrivals wait a few gaps", float64(time.Millisecond), window, 4, true, 3 * time.Millisecond},
		{"wait clamps to the window", float64(90 * time.Millisecond), window, 8, true, window},
	}
	for _, c := range cases {
		if got := adaptiveDeadline(c.gapNS, c.window, c.target, c.busy); got != c.want {
			t.Errorf("%s: adaptiveDeadline(%g, %v, %d, %v) = %v, want %v",
				c.name, c.gapNS, c.window, c.target, c.busy, got, c.want)
		}
	}
}

// TestIdleRequestSkipsBatchWindow: a single request on an otherwise-idle
// server must not pay the coalescing window — the old coalescer slept
// the full fixed window whenever any gate slot was in use, and even the
// adaptive one must see an idle gate as "run now".
func TestIdleRequestSkipsBatchWindow(t *testing.T) {
	const window = 300 * time.Millisecond
	ts := newTestServer(t, Config{BatchWindow: window})
	start := time.Now()
	out, resp := postSolve(t, ts, SolveRequest{
		Matrix: MatrixSpec{Kind: "laplacian2d", N: 8},
		Method: "cg", Tol: 1e-6, MaxSweeps: 500,
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK || !out.Converged {
		t.Fatalf("status %d, out %+v", resp.StatusCode, out)
	}
	if elapsed >= window/2 {
		t.Fatalf("idle request took %v — it paid the %v batch window", elapsed, window)
	}
}

// TestBatchFlushOnWidthTarget: with a deliberately enormous window, a
// batch reaching its width target must flush immediately — the size
// half of size-or-deadline.
func TestBatchFlushOnWidthTarget(t *testing.T) {
	const clients = 3
	srv := New(Config{MaxConcurrent: 2, BatchWindow: 10 * time.Second, BatchTarget: clients})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy one gate slot so the leader sees contention and would wait
	// out its (10s) deadline if the width trigger were broken.
	srv.gate <- struct{}{}
	defer func() { <-srv.gate }()

	var wg sync.WaitGroup
	outs := make([]SolveResponse, clients)
	codes := make([]int, clients)
	start := time.Now()
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i], codes[i] = postSolveCode(t, ts, SolveRequest{
				Matrix: MatrixSpec{Kind: "randomspd", N: 120, NNZ: 5, Seed: 1},
				Method: "asyrgs", Tol: 1e-6, MaxSweeps: 2000, Workers: 2,
				RHSSeed: uint64(i),
			})
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed >= 5*time.Second {
		t.Fatalf("batch took %v — the width target did not flush it before the 10s window", elapsed)
	}
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if outs[i].BatchSize != clients {
			t.Fatalf("client %d: batch size %d, want %d (all: %+v)", i, outs[i].BatchSize, clients, outs)
		}
	}
}

// postSolveCode is postSolve for concurrent use: it reports failures via
// the returned status code instead of t.Fatal (which must not be called
// off the test goroutine).
func postSolveCode(t *testing.T, ts *httptest.Server, req SolveRequest) (SolveResponse, int) {
	t.Helper()
	out, resp := postSolveErr(ts, req)
	if resp == nil {
		return out, 0
	}
	return out, resp.StatusCode
}

// TestOversizedGeneratorSpecRejected: the dimension guard must bound the
// grid generators' *resulting* unknown count, not the grid side — and do
// it before allocation, with a 400.
func TestOversizedGeneratorSpecRejected(t *testing.T) {
	ts := newTestServer(t, Config{MaxDim: 1100})
	// 34² = 1156 > 1100: over the limit even though the side is tiny.
	_, resp := postSolve(t, ts, SolveRequest{
		Matrix: MatrixSpec{Kind: "laplacian2d", N: 34}, Method: "cg", Tol: 1e-6,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("laplacian2d 34² unknowns: status %d, want 400", resp.StatusCode)
	}
	// 11³ = 1331 > 1100.
	_, resp = postSolve(t, ts, SolveRequest{
		Matrix: MatrixSpec{Kind: "laplacian3d", N: 11}, Method: "cg", Tol: 1e-6,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("laplacian3d 11³ unknowns: status %d, want 400", resp.StatusCode)
	}
	// 33² = 1089 ≤ 1100: just under the limit must still work.
	out, resp := postSolve(t, ts, SolveRequest{
		Matrix: MatrixSpec{Kind: "laplacian2d", N: 33}, Method: "cg", Tol: 1e-6, MaxSweeps: 2000,
	})
	if resp.StatusCode != http.StatusOK || !out.Converged {
		t.Fatalf("laplacian2d 33² unknowns: status %d, out %+v", resp.StatusCode, out)
	}

	// A side so large n³ overflows int64 must saturate, not wrap into an
	// "acceptable" dimension.
	ts2 := newTestServer(t, Config{})
	_, resp = postSolve(t, ts2, SolveRequest{
		Matrix: MatrixSpec{Kind: "laplacian3d", N: 3_000_000}, Method: "cg", Tol: 1e-6,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("overflowing laplacian3d spec: status %d, want 400", resp.StatusCode)
	}
}

// TestMatrixSpecKeyCanonicalization: a spec relying on generator
// defaults and the same spec with the defaults spelled out must share
// one cache entry — the key is computed over the canonical spec, not
// the raw wire form.
func TestMatrixSpecKeyCanonicalization(t *testing.T) {
	ts := newTestServer(t, Config{})
	out, resp := postSolve(t, ts, SolveRequest{
		// NNZ and Dominance left zero: build defaults them to 6 and 1.5.
		Matrix: MatrixSpec{Kind: "randomspd", N: 100, Seed: 3},
		Method: "cg", Tol: 1e-6, MaxSweeps: 500,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out2, resp := postSolve(t, ts, SolveRequest{
		Matrix: MatrixSpec{Kind: "randomspd", N: 100, NNZ: 6, Dominance: 1.5, Seed: 3},
		Method: "cg", Tol: 1e-6, MaxSweeps: 500, RHSSeed: 9,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out2.MatrixKey != out.MatrixKey {
		t.Fatalf("defaulted and explicit specs got different keys: %q vs %q", out.MatrixKey, out2.MatrixKey)
	}
	if !out2.CacheHit || !out2.PrepHit {
		t.Fatalf("explicit-defaults request must hit both caches: %+v", out2)
	}
	var st Stats
	getJSON(t, ts, "/stats", &st)
	if st.Cache.Misses != 1 {
		t.Fatalf("one matrix, one miss: got %d misses", st.Cache.Misses)
	}
}

// slowPrepMethod wraps a real method with a Prepare that takes long
// enough to cancel a leader under — the regression rig for the shared
// prep-build poisoning bug.
type slowPrepMethod struct {
	inner   method.Method
	started chan struct{}
	delay   time.Duration
}

func (m *slowPrepMethod) Name() string      { return "slowprep-test" }
func (m *slowPrepMethod) Kind() method.Kind { return m.inner.Kind() }

func (m *slowPrepMethod) Solve(ctx context.Context, a *sparse.CSR, b, x []float64, opts method.Opts) (method.Result, error) {
	return m.inner.Solve(ctx, a, b, x, opts)
}

func (m *slowPrepMethod) Prepare(ctx context.Context, a *sparse.CSR, opts method.Opts) (method.PreparedSystem, error) {
	select {
	case m.started <- struct{}{}:
	default:
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(m.delay):
	}
	return method.Prepare(ctx, m.inner, a, opts)
}

var (
	slowPrep     *slowPrepMethod
	slowPrepOnce sync.Once
)

// registerSlowPrep installs the test method once per process (Register
// panics on duplicates, and -count>1 reruns tests in one binary).
func registerSlowPrep(t *testing.T) *slowPrepMethod {
	t.Helper()
	slowPrepOnce.Do(func() {
		inner, err := method.Get("cg")
		if err != nil {
			t.Fatal(err)
		}
		slowPrep = &slowPrepMethod{inner: inner, started: make(chan struct{}, 8), delay: 250 * time.Millisecond}
		method.Register(slowPrep)
	})
	return slowPrep
}

// TestPrepareSurvivesLeaderCancel: the leader of a shared prep build
// disconnects mid-Prepare; the follower waiting on the same once-latch
// must still be served. Before the fix, Prepare ran under the leader's
// request context, so the leader's cancellation failed every waiter
// with context.Canceled.
func TestPrepareSurvivesLeaderCancel(t *testing.T) {
	sp := registerSlowPrep(t)
	for len(sp.started) > 0 { // drain any earlier run's signals
		<-sp.started
	}
	ts := newTestServer(t, Config{})

	req := SolveRequest{
		Matrix: MatrixSpec{Kind: "laplacian2d", N: 8},
		Method: "slowprep-test", Tol: 1e-6, MaxSweeps: 2000,
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		postSolveCtx(leaderCtx, ts, req)
	}()

	// Wait until the leader is inside Prepare, then race a follower in
	// and cut the leader's connection.
	select {
	case <-sp.started:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached Prepare")
	}
	followerDone := make(chan struct{})
	var out SolveResponse
	var code int
	go func() {
		defer close(followerDone)
		var resp *http.Response
		out, resp = postSolveErr(ts, req)
		if resp != nil {
			code = resp.StatusCode
		}
	}()
	time.Sleep(30 * time.Millisecond) // let the follower join the latch
	cancelLeader()
	<-leaderDone

	select {
	case <-followerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("follower never completed")
	}
	if code != http.StatusOK {
		t.Fatalf("follower status %d, want 200 — leader cancellation poisoned the shared prep build", code)
	}
	if !out.Converged {
		t.Fatalf("follower did not converge: %+v", out)
	}

	// The prepared system must also have landed in the cache: a fresh
	// request hits it.
	out3, resp := postSolve(t, ts, req)
	if resp.StatusCode != http.StatusOK || !out3.PrepHit {
		t.Fatalf("post-cancel request should hit the prep cache: status %d, %+v", resp.StatusCode, out3)
	}
}

// TestStatsStagesBlock: every stage appears in /stats with sane counts,
// and /metrics exposes the stage histograms.
func TestStatsStagesBlock(t *testing.T) {
	ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		out, resp := postSolve(t, ts, SolveRequest{
			Matrix: MatrixSpec{Kind: "randomspd", N: 100, NNZ: 5, Seed: 2},
			Method: "cg", Tol: 1e-6, MaxSweeps: 500, RHSSeed: uint64(i),
		})
		if resp.StatusCode != http.StatusOK || !out.Converged {
			t.Fatalf("request %d: status %d, %+v", i, resp.StatusCode, out)
		}
	}
	var st Stats
	getJSON(t, ts, "/stats", &st)
	for _, stage := range stageNames {
		sum, ok := st.Stages[stage]
		if !ok {
			t.Fatalf("stage %q missing from /stats stages block: %+v", stage, st.Stages)
		}
		if sum.Count != 3 {
			t.Fatalf("stage %q observed %d times, want 3", stage, sum.Count)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, stage := range stageNames {
		if !strings.Contains(body, `asyrgsd_stage_duration_seconds_count{stage="`+stage+`"}`) {
			t.Fatalf("/metrics missing stage %q histogram", stage)
		}
	}
}
