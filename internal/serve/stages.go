package serve

// Per-stage request timing. Every solve request that reaches the solver
// records how long it spent in each processing stage, into one lock-free
// power-of-two histogram per stage (microseconds, like the endpoint and
// per-method latencies):
//
//	build    — materializing the matrix (cache hits record ~0)
//	prepare  — the method's Prepare phase (prep-cache hits record ~0)
//	queue    — from solve-ready to solve-start: the coalescing wait plus
//	           the admission-gate wait
//	solve    — the batched solve itself
//	respond  — assembling and writing the JSON response
//
// The stages are disjoint sub-intervals of the handler, so per request
// their sum is bounded by the /solve endpoint latency (what is left out
// is the fixed request machinery: body decode, validation, RHS
// generation). The soak harness asserts that consistency end to end.
// Summaries appear as the "stages" block of GET /stats; the raw
// cumulative histograms as asyrgsd_stage_duration_seconds on /metrics.

import (
	"time"
)

// stageNames fixes the stage set and its exposition order.
var stageNames = []string{"build", "prepare", "queue", "solve", "respond"}

// observeStage records one stage duration. The histogram map is built
// complete at construction, so the lookup needs no lock.
func (s *Server) observeStage(stage string, d time.Duration) {
	s.stageLat[stage].ObserveDuration(d)
}

// stageSummaries builds the /stats stages block: every stage always
// appears, so dashboards see a stable shape from the first request.
func (s *Server) stageSummaries() map[string]LatencySummary {
	out := make(map[string]LatencySummary, len(stageNames))
	for _, st := range stageNames {
		h := s.stageLat[st]
		out[st] = summarize(h.Snapshot(), h.Sum())
	}
	return out
}
