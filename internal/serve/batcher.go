package serve

// The adaptive size-or-deadline coalescer. The first request for a
// (prepared system × solver knobs) batch key becomes the leader of a
// pending batch; concurrent identical requests append themselves as
// followers. The batch flushes when either
//
//   - it reaches a width target (derived from observed batch widths, or
//     pinned by Config.BatchTarget), or
//   - the leader's deadline expires.
//
// The deadline adapts to the observed same-key arrival rate: an EWMA of
// inter-arrival gaps estimates how long collecting the remaining width
// would take, clamped to [0, BatchWindow]. Three regimes fall out:
//
//   - idle server (no solve holds the admission gate): deadline 0, the
//     request runs immediately and pays no window sleep;
//   - sparse traffic (gaps at least the window): followers are too
//     unlikely to be worth the latency, deadline 0;
//   - saturated traffic (gaps far below the window): the deadline is a
//     few observed gaps, so a batch stops paying the full window once
//     arrivals are fast — the width target usually fires first anyway.
//
// This is the MerkleBatcher shape of time-bounded audit-log batching
// (flush on size OR deadline, stamp per-stage times), adapted to solve
// coalescing where the "size" is the multi-RHS width.

import (
	"math"
	"sync"
	"time"

	"github.com/asynclinalg/asyrgs/internal/method"
)

// ewmaAlpha weighs new observations into the gap and width EWMAs: heavy
// enough to track a load shift within a few batches, light enough that
// one straggler does not reset the estimate.
const ewmaAlpha = 0.3

// maxRateKeys bounds the per-key arrival-rate map. Batch keys are
// unbounded in principle (they embed solver knobs), so on overflow the
// map is dropped wholesale: the cost is re-learning a few EWMAs, never
// unbounded memory.
const maxRateKeys = 4096

// arrivalRate is the per-batch-key arrival model.
type arrivalRate struct {
	last  time.Time
	gapNS float64 // EWMA of inter-arrival gaps; 0 until two arrivals seen
}

// pendingBatch collects same-key solve items until flush.
type pendingBatch struct {
	items []*solveItem
	// full is closed once the batch holds target items, waking the
	// leader before its deadline.
	full   chan struct{}
	target int
	// fullClosed guards the single close; mutated under the coalescer
	// lock only.
	fullClosed bool
}

// coalescer is the adaptive batcher state. All maps and EWMAs are
// guarded by mu; the waiting itself happens outside the lock.
type coalescer struct {
	window time.Duration // Config.BatchWindow (deadline ceiling)
	pinned int           // Config.BatchTarget; 0 adapts
	maxT   int           // adaptive width-target ceiling

	mu        sync.Mutex
	pending   map[string]*pendingBatch
	rates     map[string]*arrivalRate
	widthEWMA float64 // EWMA of flushed batch widths
}

func newCoalescer(cfg Config) *coalescer {
	maxT := 4 * cfg.MaxConcurrent
	if maxT < 4 {
		maxT = 4
	}
	return &coalescer{
		window:    cfg.BatchWindow,
		pinned:    cfg.BatchTarget,
		maxT:      maxT,
		pending:   map[string]*pendingBatch{},
		rates:     map[string]*arrivalRate{},
		widthEWMA: 1,
	}
}

// noteArrival folds one arrival into the key's gap EWMA and returns the
// updated estimate in nanoseconds (negative until two arrivals have been
// seen — no rate information yet). Caller holds mu.
func (c *coalescer) noteArrival(key string, now time.Time) float64 {
	r, ok := c.rates[key]
	if !ok {
		if len(c.rates) >= maxRateKeys {
			clear(c.rates)
		}
		c.rates[key] = &arrivalRate{last: now}
		return -1
	}
	gap := float64(now.Sub(r.last))
	r.last = now
	if gap < 0 {
		gap = 0
	}
	if r.gapNS == 0 {
		r.gapNS = gap
	} else {
		r.gapNS = ewmaAlpha*gap + (1-ewmaAlpha)*r.gapNS
	}
	if r.gapNS <= 0 {
		// Two arrivals in the same clock tick: call it one nanosecond so
		// the estimate stays a usable rate rather than "no history".
		r.gapNS = 1
	}
	return r.gapNS
}

// widthTarget returns the current flush width. Caller holds mu.
func (c *coalescer) widthTarget() int {
	if c.pinned > 0 {
		return c.pinned
	}
	t := int(math.Ceil(2 * c.widthEWMA))
	if t < 2 {
		t = 2
	}
	if t > c.maxT {
		t = c.maxT
	}
	return t
}

// recordWidth folds a flushed batch's width into the EWMA. Caller holds
// mu.
func (c *coalescer) recordWidth(w int) {
	c.widthEWMA = ewmaAlpha*float64(w) + (1-ewmaAlpha)*c.widthEWMA
}

// adaptiveDeadline computes how long a leader should wait for followers.
// gapNS is the key's inter-arrival EWMA (negative = no history), target
// the batch width being collected, busy whether any solve currently
// holds the admission gate. Pure function of its inputs, so the policy
// is unit-testable without a server.
func adaptiveDeadline(gapNS float64, window time.Duration, target int, busy bool) time.Duration {
	if window <= 0 {
		return 0
	}
	if !busy {
		// Idle server: nothing queues behind in-flight work, so waiting
		// buys nothing — run immediately.
		return 0
	}
	if gapNS < 0 {
		// No rate history for this key yet: pay the configured window
		// once; the next batch will have an estimate.
		return window
	}
	if gapNS >= float64(window) {
		// Arrivals are sparser than the window itself: a follower within
		// the window is unlikely, don't tax latency for it.
		return 0
	}
	// Wait about as long as collecting the remaining width should take at
	// the observed rate, never more than the configured window.
	d := time.Duration(gapNS * float64(target-1))
	if d > window {
		d = window
	}
	return d
}

// solveCoalesced runs one right-hand side, merging it with concurrent
// requests for the same prepared system and solver knobs under the
// adaptive size-or-deadline policy described at the top of this file.
func (s *Server) solveCoalesced(batchKey string, ps method.PreparedSystem, opts method.Opts, it *solveItem) {
	if s.cfg.BatchWindow < 0 {
		s.runBatch(ps, opts, []*solveItem{it})
		return
	}
	c := s.coal
	now := time.Now()
	c.mu.Lock()
	gapNS := c.noteArrival(batchKey, now)
	if bt, ok := c.pending[batchKey]; ok {
		// Follower: join the pending batch; reaching the width target
		// flushes it early.
		bt.items = append(bt.items, it)
		if len(bt.items) >= bt.target && !bt.fullClosed {
			bt.fullClosed = true
			close(bt.full)
		}
		c.mu.Unlock()
		<-it.done
		return
	}
	bt := &pendingBatch{items: []*solveItem{it}, full: make(chan struct{}), target: c.widthTarget()}
	c.pending[batchKey] = bt
	c.mu.Unlock()

	// Leader: wait for followers until the batch fills or the adaptive
	// deadline expires. Contention is "some solve holds the gate" — the
	// exact condition under which followers queue up behind in-flight
	// work and batching pays.
	if wait := adaptiveDeadline(gapNS, s.cfg.BatchWindow, bt.target, len(s.gate) > 0); wait > 0 {
		deadline := time.NewTimer(wait)
		select {
		case <-bt.full:
		case <-deadline.C:
		}
		deadline.Stop()
	}

	c.mu.Lock()
	delete(c.pending, batchKey)
	items := bt.items
	c.recordWidth(len(items))
	c.mu.Unlock()
	s.runBatch(ps, opts, items)
}
