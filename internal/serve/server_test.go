package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postSolve(t *testing.T, ts *httptest.Server, req SolveRequest) (SolveResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SolveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return out, resp
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHealthzAndMethods(t *testing.T) {
	ts := newTestServer(t, Config{})
	var health map[string]string
	getJSON(t, ts, "/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}
	var methods []struct{ Name, Kind string }
	getJSON(t, ts, "/methods", &methods)
	seen := map[string]bool{}
	for _, m := range methods {
		seen[m.Name] = true
	}
	for _, want := range []string{"asyrgs", "cg", "fcg", "kaczmarz", "lsqcd"} {
		if !seen[want] {
			t.Fatalf("/methods missing %q: %v", want, methods)
		}
	}
}

func TestSolveGeneratorSpec(t *testing.T) {
	ts := newTestServer(t, Config{})
	out, resp := postSolve(t, ts, SolveRequest{
		Matrix: MatrixSpec{Kind: "randomspd", N: 200, NNZ: 5, Seed: 4},
		Method: "asyrgs", Tol: 1e-6, MaxSweeps: 500, Workers: 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !out.Converged || out.Residual > 1e-6 {
		t.Fatalf("did not converge: %+v", out)
	}
	if out.CacheHit {
		t.Fatal("first request must be a cache miss")
	}
	if out.ANormErr == nil || *out.ANormErr > 1e-2 {
		t.Fatalf("generated-RHS solve must report the A-norm error: %+v", out)
	}

	// A repeated right-hand side against the same matrix skips setup.
	out2, _ := postSolve(t, ts, SolveRequest{
		Matrix: MatrixSpec{Kind: "randomspd", N: 200, NNZ: 5, Seed: 4},
		Method: "cg", Tol: 1e-8, RHSSeed: 99,
	})
	if !out2.CacheHit {
		t.Fatal("second request for the same spec must hit the cache")
	}
	if out2.MatrixKey != out.MatrixKey {
		t.Fatalf("cache keys differ for identical specs: %q vs %q", out.MatrixKey, out2.MatrixKey)
	}
}

func TestSolveInlineMatrixMarket(t *testing.T) {
	ts := newTestServer(t, Config{})
	mm := `%%MatrixMarket matrix coordinate real general
3 3 5
1 1 4.0
2 2 4.0
3 3 4.0
1 2 1.0
2 1 1.0
`
	out, resp := postSolve(t, ts, SolveRequest{
		Matrix: MatrixSpec{Kind: "mm", MM: mm},
		Method: "gs", Tol: 1e-8, B: []float64{1, 2, 3}, IncludeSolution: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !out.Converged || len(out.X) != 3 {
		t.Fatalf("bad solve: %+v", out)
	}
	// Check the returned solution satisfies row 3: 4·x₃ = 3.
	if got := out.X[2]; got < 0.74 || got > 0.76 {
		t.Fatalf("x[2] = %v, want 0.75", got)
	}
}

func TestSolveLeastSquares(t *testing.T) {
	ts := newTestServer(t, Config{})
	out, resp := postSolve(t, ts, SolveRequest{
		Matrix: MatrixSpec{Kind: "overdetermined", Rows: 80, Cols: 30, NNZ: 4, Seed: 2},
		Method: "lsqcd", Tol: 1e-8, MaxSweeps: 20000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Kind != "least-squares" || !out.Converged {
		t.Fatalf("bad least-squares solve: %+v", out)
	}
}

func TestSolveRejectsBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []SolveRequest{
		{Matrix: MatrixSpec{Kind: "nope", N: 10}, Method: "cg"},
		{Matrix: MatrixSpec{Kind: "laplacian2d", N: 4}, Method: "no-such-method"},
		{Matrix: MatrixSpec{Kind: "laplacian2d", N: 4}, Method: "cg", B: []float64{1, 2}},
		{Matrix: MatrixSpec{Kind: "overdetermined", Rows: 40, Cols: 10, Seed: 1}, Method: "cg"},
		{Matrix: MatrixSpec{Kind: "mm", MM: "not a matrix"}, Method: "cg"},
	}
	for i, req := range cases {
		_, resp := postSolve(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	// Unknown JSON fields are rejected too (catches client typos).
	resp, err := http.Post(ts.URL+"/solve", "application/json",
		strings.NewReader(`{"matrix":{"kind":"laplacian2d","n":4},"metod":"cg"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentSolves hammers the daemon with overlapping requests for a
// small set of matrices — run under -race this exercises the admission
// gate, the cache's shared-build path, and the stats counters.
func TestConcurrentSolves(t *testing.T) {
	ts := newTestServer(t, Config{MaxConcurrent: 4, CacheSize: 4})
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := MatrixSpec{Kind: "randomspd", N: 120, NNZ: 5, Seed: uint64(i % 3)}
			methodName := []string{"asyrgs", "cg", "rgs", "gs"}[i%4]
			body, _ := json.Marshal(SolveRequest{
				Matrix: spec, Method: methodName, Tol: 1e-6, MaxSweeps: 500,
				Workers: 2, RHSSeed: uint64(i),
			})
			resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			var out SolveResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if !out.Converged {
				errs <- fmt.Errorf("client %d: did not converge: %+v", i, out)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var stats Stats
	getJSON(t, ts, "/stats", &stats)
	if stats.Solved != clients {
		t.Fatalf("stats.Solved = %d, want %d", stats.Solved, clients)
	}
	if stats.Cache.Misses != 3 {
		t.Fatalf("3 distinct specs should build exactly 3 matrices, got %d misses (hits %d)",
			stats.Cache.Misses, stats.Cache.Hits)
	}
	if stats.Cache.Hits != clients-3 {
		t.Fatalf("cache hits = %d, want %d", stats.Cache.Hits, clients-3)
	}
	if stats.InFlight != 0 {
		t.Fatalf("in-flight count leaked: %d", stats.InFlight)
	}
	total := uint64(0)
	for _, c := range stats.PerMethod {
		total += c
	}
	if total != clients {
		t.Fatalf("per-method counts sum to %d, want %d", total, clients)
	}
}

// TestAdmissionGateRejects verifies the worker-pool gate sheds load with
// 503 instead of queueing without bound.
func TestAdmissionGateRejects(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueTimeout: 30 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only slot directly.
	srv.gate <- struct{}{}
	defer func() { <-srv.gate }()

	body, _ := json.Marshal(SolveRequest{
		Matrix: MatrixSpec{Kind: "laplacian2d", N: 4}, Method: "cg", Tol: 1e-6,
	})
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	// The 503 must hint a backoff: Retry-After derived from the queue
	// timeout, rounded up to a whole second (30ms → "1").
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	var stats Stats
	getJSON(t, ts, "/stats", &stats)
	if stats.Rejected != 1 {
		t.Fatalf("stats.Rejected = %d, want 1", stats.Rejected)
	}
}

func TestSolveTimeoutReturns504(t *testing.T) {
	ts := newTestServer(t, Config{SolveTimeout: 25 * time.Millisecond})
	_, resp := postSolve(t, ts, SolveRequest{
		// An unreachable tolerance with an enormous budget: only the
		// per-request timeout can end this solve.
		Matrix: MatrixSpec{Kind: "laplacian2d", N: 24, Seed: 1},
		Method: "asyrgs", Tol: 1e-300, MaxSweeps: 1 << 30, Workers: 2,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}
