package serve

// End-to-end tests for the serving-layer precision knob: the request
// field is canonicalized and validated up front, flows into the
// prepared-system cache key (f32 and f64 never share an entry), and an
// f32 solve converges at a tolerance above the float32 storage floor.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPrecisionKnobEndToEnd(t *testing.T) {
	ts := newTestServer(t, Config{})
	spec := MatrixSpec{Kind: "randomspd", N: 300, NNZ: 5, Seed: 4}

	// f32 solve converges at a tolerance well above √nnz·2⁻²⁴.
	out, resp := postSolve(t, ts, SolveRequest{
		Matrix: spec, Method: "asyrgs", Tol: 1e-4, MaxSweeps: 2000, Workers: 2,
		Precision: "f32",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("f32 solve status %d", resp.StatusCode)
	}
	if !out.Converged || out.Residual > 1e-4 {
		t.Fatalf("f32 solve did not converge: %+v", out)
	}

	// The same matrix at f64 must prepare separately: matrix cache hit,
	// prep cache miss (the PrepKey differs).
	out64, _ := postSolve(t, ts, SolveRequest{
		Matrix: spec, Method: "asyrgs", Tol: 1e-6, MaxSweeps: 2000, Workers: 2,
	})
	if !out64.CacheHit {
		t.Fatal("f64 request over the same spec must hit the matrix cache")
	}
	if out64.PrepHit {
		t.Fatal("f64 request must not reuse the f32 prepared system")
	}

	// Spelling variants canonicalize to one prep entry: "float32" after
	// "f32" is a prep hit.
	outAlias, _ := postSolve(t, ts, SolveRequest{
		Matrix: spec, Method: "asyrgs", Tol: 1e-4, MaxSweeps: 2000, Workers: 2,
		Precision: "float32",
	})
	if !outAlias.PrepHit {
		t.Fatal("\"float32\" must share the prepared system keyed \"f32\"")
	}

	var st Stats
	getJSON(t, ts, "/stats", &st)
	if st.PrepCache.Misses != 2 {
		t.Fatalf("want exactly 2 prepared systems (f32, f64), got %d misses", st.PrepCache.Misses)
	}
}

func TestPrecisionKnobRejections(t *testing.T) {
	ts := newTestServer(t, Config{})
	post := func(req SolveRequest) (int, string) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	// Unknown spelling is rejected before any matrix work.
	code, msg := post(SolveRequest{
		Matrix: MatrixSpec{Kind: "randomspd", N: 32, NNZ: 4}, Method: "asyrgs",
		Precision: "double",
	})
	if code != http.StatusBadRequest || !strings.Contains(msg, "precision") {
		t.Fatalf("unknown precision: status %d, body %q", code, msg)
	}

	// A method without an f32 path fails preparation as a client error.
	code, msg = post(SolveRequest{
		Matrix: MatrixSpec{Kind: "randomspd", N: 32, NNZ: 4}, Method: "cg",
		Tol: 1e-6, Precision: "f32",
	})
	if code != http.StatusBadRequest || !strings.Contains(msg, "f32") {
		t.Fatalf("cg+f32: status %d, body %q", code, msg)
	}
}

// TestSizeBandRouting pins bandFor and the /stats surface: requests land
// in the band of their matrix dimension and nowhere else.
func TestSizeBandRouting(t *testing.T) {
	if got := bandFor(999); got != "lt1k" {
		t.Fatalf("bandFor(999) = %q", got)
	}
	if got := bandFor(1000); got != "1k-100k" {
		t.Fatalf("bandFor(1000) = %q", got)
	}
	if got := bandFor(100000); got != "1k-100k" {
		t.Fatalf("bandFor(100000) = %q", got)
	}
	if got := bandFor(100001); got != "gt100k" {
		t.Fatalf("bandFor(100001) = %q", got)
	}

	srv := New(Config{BatchWindow: -1})
	h := srv.Handler()
	solveN := func(n, times int) {
		body, _ := json.Marshal(SolveRequest{
			Matrix: MatrixSpec{Kind: "randomspd", N: n, NNZ: 4, Seed: 3},
			Method: "asyrgs", FixedWork: true, MaxSweeps: 1, CheckEvery: 1, Workers: 1,
		})
		for i := 0; i < times; i++ {
			req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("n=%d: status %d: %s", n, rec.Code, rec.Body.String())
			}
		}
	}
	solveN(64, 3)
	solveN(1500, 2)

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.SizeBands == nil {
		t.Fatal("/stats missing size_bands")
	}
	want := map[string]uint64{"lt1k": 3, "1k-100k": 2, "gt100k": 0}
	for band, n := range want {
		got, ok := st.SizeBands[band]
		if !ok {
			t.Fatalf("size band %q missing from /stats", band)
		}
		if got.Count != n {
			t.Fatalf("band %q holds %d observations, want %d", band, got.Count, n)
		}
	}

	// The same counts appear on /metrics as labelled histogram series.
	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	text := rec.Body.String()
	for _, line := range []string{
		`asyrgsd_sizeband_duration_seconds_count{band="lt1k"} 3`,
		`asyrgsd_sizeband_duration_seconds_count{band="1k-100k"} 2`,
		`asyrgsd_sizeband_duration_seconds_count{band="gt100k"} 0`,
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("/metrics missing %q:\n%s", line, text)
		}
	}
}
