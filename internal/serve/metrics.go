package serve

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/asynclinalg/asyrgs/internal/stats"
)

// LatencySummary reports one latency histogram's headline numbers in
// microseconds: streaming mean plus interpolated percentiles over the
// power-of-two buckets. MaxUS is the upper edge of the highest occupied
// bucket (an upper bound on the worst observation, not the observation
// itself).
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// summarize condenses one histogram snapshot. The snapshot is taken in a
// single atomic pass, so the percentiles are internally consistent; the
// separately-read sum can lag it by in-flight observations, which skews
// the transient mean by at most those requests — the counters themselves
// are never torn.
func summarize(snap stats.Pow2Histogram, sumUS uint64) LatencySummary {
	s := LatencySummary{Count: snap.Total()}
	if s.Count == 0 {
		return s
	}
	s.MeanUS = float64(sumUS) / float64(s.Count)
	s.P50US = snap.Quantile(0.50)
	s.P95US = snap.Quantile(0.95)
	s.P99US = snap.Quantile(0.99)
	s.MaxUS = float64(snap.QuantileUpperBound(1))
	return s
}

// endpoints are the histogram-tracked routes, fixed at construction so
// request handling needs no map writes (the histograms themselves are
// lock-free).
var endpoints = []string{"/solve", "/methods", "/healthz", "/readyz", "/stats", "/metrics"}

// timed wraps a handler, recording its wall time in microseconds into
// the endpoint's latency histogram. It is also the outermost panic
// backstop: the solve and cache paths contain their own panics, so
// anything reaching here is a handler-level fault — counted, answered
// 500 when the response has not started, and never fatal to the daemon.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.endpointLat[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.errs.Add(1)
				writeJSON(w, http.StatusInternalServerError,
					map[string]string{"error": fmt.Sprintf("internal panic: %v", rec)})
			}
			hist.Observe(uint64(time.Since(start).Microseconds()))
		}()
		h(w, r)
	}
}

// handleMetrics serves the counters and latency histograms in Prometheus
// text exposition format. Histogram buckets reuse the power-of-two
// microsecond buckets: bucket k's upper edge is 2^k µs, rendered as
// seconds the way Prometheus duration histograms expect.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.counterSnapshot()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("asyrgsd_requests_total", "Solve requests received.", st.Requests)
	counter("asyrgsd_solved_total", "Solve requests answered with a well-formed result.", st.Solved)
	counter("asyrgsd_errors_total", "Requests failed with a client or solve error.", st.Errors)
	counter("asyrgsd_rejected_total", "Requests shed at the admission gate.", st.Rejected)
	counter("asyrgsd_panics_total", "Worker panics contained by the serving layer.", st.Panics)
	counter("asyrgsd_batches_total", "Solve batches executed behind the admission gate.", st.Batches)
	counter("asyrgsd_coalesced_requests_total", "Requests that shared a batch with at least one other.", st.CoalescedRequests)

	fmt.Fprintf(&b, "# HELP asyrgsd_in_flight Solve items currently executing.\n# TYPE asyrgsd_in_flight gauge\nasyrgsd_in_flight %d\n", st.InFlight)
	fmt.Fprintf(&b, "# HELP asyrgsd_uptime_seconds Daemon uptime.\n# TYPE asyrgsd_uptime_seconds gauge\nasyrgsd_uptime_seconds %g\n", st.UptimeSec)

	fmt.Fprintf(&b, "# HELP asyrgsd_cache_events_total Session-cache events by cache and kind.\n# TYPE asyrgsd_cache_events_total counter\n")
	for _, c := range []struct {
		name string
		cs   CacheStats
	}{{"matrix", st.Cache}, {"prepared", st.PrepCache}} {
		fmt.Fprintf(&b, "asyrgsd_cache_events_total{cache=%q,event=\"hit\"} %d\n", c.name, c.cs.Hits)
		fmt.Fprintf(&b, "asyrgsd_cache_events_total{cache=%q,event=\"miss\"} %d\n", c.name, c.cs.Misses)
		fmt.Fprintf(&b, "asyrgsd_cache_events_total{cache=%q,event=\"eviction\"} %d\n", c.name, c.cs.Evictions)
		fmt.Fprintf(&b, "asyrgsd_cache_events_total{cache=%q,event=\"drop\"} %d\n", c.name, c.cs.Drops)
		fmt.Fprintf(&b, "asyrgsd_cache_events_total{cache=%q,event=\"evict_skip\"} %d\n", c.name, c.cs.EvictSkips)
	}

	if ss := st.PrepStore; ss != nil {
		counter("asyrgsd_prep_restores_total", "Prepared systems rebuilt from the durable prep store.", ss.Restores)
		counter("asyrgsd_prep_spills_total", "Prepared systems written to the durable prep store.", ss.Spills)
		counter("asyrgsd_store_errors_total", "Durable prep-store read, decode or write failures.", ss.Errors)
		counter("asyrgsd_spill_drops_total", "Spills dropped because the store's write queue was full.", ss.Dropped)
		counter("asyrgsd_store_retries_total", "Backend operations re-attempted after a transient failure.", ss.Retries)
		counter("asyrgsd_store_failures_total", "Backend operations that exhausted their retry budget.", ss.Failures)
		counter("asyrgsd_store_breaker_rejects_total", "Operations refused while the circuit breaker was open.", ss.BreakerRejects)
		counter("asyrgsd_store_breaker_trips_total", "Circuit breaker closed-to-open transitions.", ss.BreakerTrips)
		counter("asyrgsd_store_corrupt_blobs_total", "Blobs that failed envelope or hash verification on read.", ss.CorruptBlobs)
		fmt.Fprintf(&b, "# HELP asyrgsd_prep_store_blobs Blobs currently held by the durable prep store.\n# TYPE asyrgsd_prep_store_blobs gauge\nasyrgsd_prep_store_blobs %d\n", ss.Blobs)
		fmt.Fprintf(&b, "# HELP asyrgsd_store_breaker_state Circuit breaker state (one-hot by state label).\n# TYPE asyrgsd_store_breaker_state gauge\n")
		for _, state := range []string{"closed", "open", "half-open", "disabled"} {
			v := 0
			if ss.BreakerState == state {
				v = 1
			}
			fmt.Fprintf(&b, "asyrgsd_store_breaker_state{state=%q} %d\n", state, v)
		}
	}

	fmt.Fprintf(&b, "# HELP asyrgsd_method_requests_total Solved requests by registry method.\n# TYPE asyrgsd_method_requests_total counter\n")
	for _, name := range sortedKeys(st.PerMethod) {
		fmt.Fprintf(&b, "asyrgsd_method_requests_total{method=%q} %d\n", name, st.PerMethod[name])
	}

	fmt.Fprintf(&b, "# HELP asyrgsd_request_duration_seconds Request wall time by endpoint.\n# TYPE asyrgsd_request_duration_seconds histogram\n")
	for _, ep := range endpoints {
		h := s.endpointLat[ep]
		promHistogram(&b, "asyrgsd_request_duration_seconds", "endpoint", ep, h.Snapshot(), h.Sum())
	}

	fmt.Fprintf(&b, "# HELP asyrgsd_method_duration_seconds Solve request wall time by registry method.\n# TYPE asyrgsd_method_duration_seconds histogram\n")
	for _, name := range sortedKeys(s.methodLat) {
		h := s.methodLat[name]
		if snap := h.Snapshot(); snap.Total() > 0 {
			promHistogram(&b, "asyrgsd_method_duration_seconds", "method", name, snap, h.Sum())
		}
	}

	fmt.Fprintf(&b, "# HELP asyrgsd_stage_duration_seconds Solve request wall time by processing stage.\n# TYPE asyrgsd_stage_duration_seconds histogram\n")
	for _, st := range stageNames {
		h := s.stageLat[st]
		promHistogram(&b, "asyrgsd_stage_duration_seconds", "stage", st, h.Snapshot(), h.Sum())
	}

	fmt.Fprintf(&b, "# HELP asyrgsd_sizeband_duration_seconds Solved request wall time by matrix size band.\n# TYPE asyrgsd_sizeband_duration_seconds histogram\n")
	for _, band := range bandNames {
		h := s.bandLat[band]
		promHistogram(&b, "asyrgsd_sizeband_duration_seconds", "band", band, h.Snapshot(), h.Sum())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}

// promHistogram renders one labelled histogram series: cumulative bucket
// counts at the power-of-two upper edges (µs converted to seconds), the
// +Inf bucket, the observation sum and the count.
func promHistogram(b *strings.Builder, metric, label, lv string, snap stats.Pow2Histogram, sumUS uint64) {
	var cum uint64
	for k, c := range snap.Counts {
		cum += c
		le := 0.0
		if k > 0 {
			le = math.Ldexp(1, k) / 1e6
		}
		fmt.Fprintf(b, "%s_bucket{%s=%q,le=\"%g\"} %d\n", metric, label, lv, le, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", metric, label, lv, cum)
	fmt.Fprintf(b, "%s_sum{%s=%q} %g\n", metric, label, lv, float64(sumUS)/1e6)
	fmt.Fprintf(b, "%s_count{%s=%q} %d\n", metric, label, lv, cum)
}

// sortedKeys returns a map's keys sorted, for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
