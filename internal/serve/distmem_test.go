// Serving-layer coverage for the sharded distributed-memory backend:
// asyrgs-distmem must serve through the daemon with prepared-state cache
// hits on warm solves, report its communication accounting over the
// wire, and keep differently-sharded deployments in separate prep-cache
// entries.
package serve

import (
	"net/http"
	"testing"
)

func TestDistmemServesWithPrepCacheHits(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := SolveRequest{
		Matrix: MatrixSpec{Kind: "randomspd", N: 150, NNZ: 5, Seed: 4},
		Method: "asyrgs-distmem", Tol: 1e-6, MaxSweeps: 2000,
		Workers: 4, QueueCap: 2, CheckEvery: 5,
	}
	cold, resp := postSolve(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !cold.Converged || cold.Residual > 1e-6 {
		t.Fatalf("did not converge: %+v", cold)
	}
	if cold.PrepHit {
		t.Fatal("first request must miss the prepared-system cache")
	}
	if cold.Messages == 0 || cold.MaxQueue == 0 {
		t.Fatalf("sharded solve must report traffic and backlog: %+v", cold)
	}

	// Warm solve: same deployment shape, fresh right-hand side — the
	// prepared partition/diagonal/streams are reused (prep_hit).
	warmReq := req
	warmReq.RHSSeed = 99
	warm, _ := postSolve(t, ts, warmReq)
	if !warm.CacheHit || !warm.PrepHit {
		t.Fatalf("warm solve must hit both caches: %+v", warm)
	}

	// A different deployment shape over the same matrix must not share
	// prepared state: the PrepKey separates it.
	resharded := req
	resharded.Workers = 2
	out, _ := postSolve(t, ts, resharded)
	if out.PrepHit {
		t.Fatal("a different worker count must re-prepare (new partition)")
	}

	var stats Stats
	getJSON(t, ts, "/stats", &stats)
	if stats.PrepCache.Hits == 0 {
		t.Fatalf("prep_hit counter did not increment: %+v", stats.PrepCache)
	}
	if stats.PerMethod["asyrgs-distmem"] != 3 {
		t.Fatalf("per-method counter: %v", stats.PerMethod)
	}
}

func TestDistmemExplicitBatchOverOnePool(t *testing.T) {
	ts := newTestServer(t, Config{})
	n := 64
	bs := make([][]float64, 3)
	for j := range bs {
		bs[j] = make([]float64, n)
		for i := range bs[j] {
			bs[j][i] = float64((i+j)%7) - 3
		}
	}
	out, resp := postSolve(t, ts, SolveRequest{
		Matrix: MatrixSpec{Kind: "laplacian2d", N: 8},
		Method: "asyrgs-distmem", Tol: 1e-8, MaxSweeps: 5000,
		Workers: 2, CheckEvery: 10, Bs: bs,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Batch) != 3 || out.BatchSize != 3 {
		t.Fatalf("batch shape: %+v", out)
	}
	if !out.Converged {
		t.Fatalf("batch did not converge: %+v", out)
	}
}
