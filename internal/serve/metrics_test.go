package serve

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// TestStatsLatencySummaries: /stats carries per-endpoint and per-method
// latency blocks whose counts track the traffic served.
func TestStatsLatencySummaries(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := SolveRequest{
		Matrix: MatrixSpec{Kind: "laplacian2d", N: 6},
		Method: "asyrgs", Tol: 1e-6, MaxSweeps: 2000, Workers: 2,
	}
	for i := 0; i < 3; i++ {
		req.RHSSeed = uint64(i)
		if _, resp := postSolve(t, ts, req); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
	}

	var stats Stats
	getJSON(t, ts, "/stats", &stats)
	sl, ok := stats.Latency["/solve"]
	if !ok || sl.Count != 3 {
		t.Fatalf("/solve latency block missing or wrong count: %+v", stats.Latency)
	}
	if sl.P50US < 0 || sl.P95US < sl.P50US || sl.P99US < sl.P95US {
		t.Fatalf("percentiles not monotone: %+v", sl)
	}
	if sl.MaxUS < sl.P99US || sl.MeanUS <= 0 {
		t.Fatalf("mean/max inconsistent: %+v", sl)
	}
	ml, ok := stats.MethodLatency["asyrgs"]
	if !ok || ml.Count != 3 {
		t.Fatalf("asyrgs method latency missing: %+v", stats.MethodLatency)
	}
	if _, ok := stats.MethodLatency["cg"]; ok {
		t.Fatal("methods that served nothing must not appear in method_latency")
	}
}

// promLines fetches /metrics and returns its lines.
func promLines(t *testing.T, url string) []string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines
}

// promValue returns the value of the first line with the given prefix.
func promValue(t *testing.T, lines []string, prefix string) float64 {
	t.Helper()
	for _, l := range lines {
		if strings.HasPrefix(l, prefix) {
			fields := strings.Fields(l)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", l, err)
			}
			return v
		}
	}
	t.Fatalf("no metric line with prefix %q", prefix)
	return 0
}

// TestMetricsEndpoint: /metrics exposes the counters and cumulative
// latency histograms in Prometheus text format, consistent with /stats.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := SolveRequest{
		Matrix: MatrixSpec{Kind: "randomspd", N: 100, NNZ: 5, Seed: 6},
		Method: "cg", Tol: 1e-8,
	}
	for i := 0; i < 2; i++ {
		req.RHSSeed = uint64(i)
		if _, resp := postSolve(t, ts, req); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
	}

	lines := promLines(t, ts.URL)
	if got := promValue(t, lines, "asyrgsd_requests_total"); got != 2 {
		t.Fatalf("requests_total = %v, want 2", got)
	}
	if got := promValue(t, lines, "asyrgsd_solved_total"); got != 2 {
		t.Fatalf("solved_total = %v, want 2", got)
	}
	if got := promValue(t, lines, `asyrgsd_cache_events_total{cache="matrix",event="hit"}`); got != 1 {
		t.Fatalf("matrix cache hits = %v, want 1", got)
	}
	if got := promValue(t, lines, `asyrgsd_method_requests_total{method="cg"}`); got != 2 {
		t.Fatalf("method_requests_total{cg} = %v, want 2", got)
	}

	// The /solve histogram: cumulative buckets ending in +Inf == count.
	var bucketVals []float64
	for _, l := range lines {
		if strings.HasPrefix(l, `asyrgsd_request_duration_seconds_bucket{endpoint="/solve"`) {
			fields := strings.Fields(l)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", l, err)
			}
			bucketVals = append(bucketVals, v)
		}
	}
	if len(bucketVals) < 2 {
		t.Fatalf("no /solve histogram buckets rendered:\n%s", strings.Join(lines, "\n"))
	}
	for i := 1; i < len(bucketVals); i++ {
		if bucketVals[i] < bucketVals[i-1] {
			t.Fatalf("histogram buckets not cumulative: %v", bucketVals)
		}
	}
	inf := bucketVals[len(bucketVals)-1]
	if inf != 2 {
		t.Fatalf("+Inf bucket = %v, want 2", inf)
	}
	if got := promValue(t, lines, `asyrgsd_request_duration_seconds_count{endpoint="/solve"}`); got != inf {
		t.Fatalf("histogram count %v != +Inf bucket %v", got, inf)
	}
	if got := promValue(t, lines, `asyrgsd_request_duration_seconds_sum{endpoint="/solve"}`); got <= 0 {
		t.Fatalf("histogram sum = %v, want > 0", got)
	}
	if got := promValue(t, lines, fmt.Sprintf(`asyrgsd_method_duration_seconds_count{method=%q}`, "cg")); got != 2 {
		t.Fatalf("method histogram count = %v, want 2", got)
	}
}
