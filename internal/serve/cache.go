package serve

import (
	"container/list"
	"sync"
)

// sessionCache is a small generic LRU keyed by string, used twice by the
// daemon: once for built matrices (so repeated requests skip parsing or
// regeneration) and once for prepared solver systems keyed by
// matrix×method×prep-opts (so a cache hit also skips Gram/row-norm/
// diagonal preparation — the Prepare phase of the pipeline). Concurrent
// requests for the same key share one build: the first request constructs
// the value under the entry's once-latch while the rest wait on it, and a
// failed build is not cached.
type sessionCache[V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

// session is one cached entry.
type session[V any] struct {
	key  string
	once sync.Once
	v    V
	err  error
}

func newSessionCache[V any](max int) *sessionCache[V] {
	if max < 1 {
		max = 1
	}
	return &sessionCache[V]{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// getOrBuild returns the cached value for key, building it with build on
// a miss. The boolean reports a cache hit.
func (c *sessionCache[V]) getOrBuild(key string, build func() (V, error)) (V, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		s := el.Value.(*session[V])
		s.once.Do(func() {}) // wait for the in-flight build, if any
		return s.v, true, s.err
	}
	c.misses++
	s := &session[V]{key: key}
	el := c.ll.PushFront(s)
	c.items[key] = el
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*session[V]).key)
		c.evictions++
	}
	c.mu.Unlock()

	s.once.Do(func() { s.v, s.err = build() })
	if s.err != nil {
		// Do not cache failures: drop the entry if still present.
		c.mu.Lock()
		if el, ok := c.items[key]; ok && el.Value.(*session[V]) == s {
			c.ll.Remove(el)
			delete(c.items, key)
		}
		c.mu.Unlock()
	}
	return s.v, false, s.err
}

// len returns the number of cached sessions.
func (c *sessionCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// counters returns a snapshot of the hit/miss/eviction counters.
func (c *sessionCache[V]) counters() (hits, misses, evictions uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}

// stats packages the counters as the /stats cache block.
func (c *sessionCache[V]) stats(capacity int) CacheStats {
	hits, misses, evictions, size := c.counters()
	return CacheStats{Hits: hits, Misses: misses, Evictions: evictions, Size: size, Capacity: capacity}
}
