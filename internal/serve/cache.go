package serve

import (
	"container/list"
	"sync"

	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// sessionCache is a small LRU of prepared matrices keyed by matrix hash,
// so repeated right-hand sides against the same system skip parsing or
// regeneration. Concurrent requests for the same key share one build: the
// first request constructs the matrix under the entry's once-latch while
// the rest wait on it, and a failed build is not cached.
type sessionCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

// session is one prepared system.
type session struct {
	key  string
	once sync.Once
	a    *sparse.CSR
	err  error
}

func newSessionCache(max int) *sessionCache {
	if max < 1 {
		max = 1
	}
	return &sessionCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// getOrBuild returns the cached matrix for key, building it with build on
// a miss. The boolean reports a cache hit.
func (c *sessionCache) getOrBuild(key string, build func() (*sparse.CSR, error)) (*sparse.CSR, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		s := el.Value.(*session)
		s.once.Do(func() {}) // wait for the in-flight build, if any
		return s.a, true, s.err
	}
	c.misses++
	s := &session{key: key}
	el := c.ll.PushFront(s)
	c.items[key] = el
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*session).key)
		c.evictions++
	}
	c.mu.Unlock()

	s.once.Do(func() { s.a, s.err = build() })
	if s.err != nil {
		// Do not cache failures: drop the entry if still present.
		c.mu.Lock()
		if el, ok := c.items[key]; ok && el.Value.(*session) == s {
			c.ll.Remove(el)
			delete(c.items, key)
		}
		c.mu.Unlock()
	}
	return s.a, false, s.err
}

// len returns the number of cached sessions.
func (c *sessionCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// counters returns a snapshot of the hit/miss/eviction counters.
func (c *sessionCache) counters() (hits, misses, evictions uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}
