package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// sessionCache is a small generic LRU keyed by string, used twice by the
// daemon: once for built matrices (so repeated requests skip parsing or
// regeneration) and once for prepared solver systems keyed by
// matrix×method×prep-opts (so a cache hit also skips Gram/row-norm/
// diagonal preparation — the Prepare phase of the pipeline). Concurrent
// requests for the same key share one build: the first request constructs
// the value under the entry's once-latch while the rest wait on it, and a
// failed build is never served from cache — a waiter that joined a build
// which then fails gets the error but counts no hit, and an arrival that
// finds a resolved failure (the window between a failed build and its
// removal) drops it and rebuilds instead of replaying the error.
//
// Counter invariant, asserted in tests: at any quiescent point,
// size == misses − evictions − drops (every entry was created by exactly
// one miss and leaves by exactly one eviction or failed-build drop).
type sessionCache[V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	// onEvict, when non-nil, observes each successfully built value as
	// capacity eviction removes it (the prep cache's spill-to-store
	// hook). It runs outside the cache lock on the inserting goroutine.
	onEvict func(key string, v V)

	hits      uint64
	misses    uint64
	evictions uint64
	// drops counts failed builds removed from the cache (they occupied
	// an entry between insertion and the builder's cleanup).
	drops uint64
	// evictSkips counts still-building entries passed over by the
	// eviction scan; each skip is a duplicated-Prepare the old victim
	// policy would have caused.
	evictSkips uint64
}

// session is one cached entry. resolved flips (atomically, after the
// once completes) when the build has finished, which lets the eviction
// scan and the warm hit path inspect completion without touching the
// once-latch.
type session[V any] struct {
	key      string
	once     sync.Once
	build    func() (V, error)
	v        V
	err      error
	resolved atomic.Bool
}

// await runs the entry's build exactly once and blocks callers until it
// has resolved. The resolved fast path keeps warm hits from
// constructing the once closure (and keeps them allocation-free).
func (s *session[V]) await() {
	if s.resolved.Load() {
		return
	}
	s.once.Do(func() {
		s.v, s.err = s.build()
		s.build = nil // the closure may pin request-sized state
		s.resolved.Store(true)
	})
}

func newSessionCache[V any](max int) *sessionCache[V] {
	if max < 1 {
		max = 1
	}
	return &sessionCache[V]{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// evictedPair carries an evicted entry to the onEvict hook outside the
// lock.
type evictedPair[V any] struct {
	key string
	v   V
}

// evictLocked trims the cache toward max, skipping entries whose build
// is still in flight — evicting one would detach a running build and
// make the next same-key arrival duplicate it. Skipped entries leave
// the cache temporarily over capacity; every later insertion and build
// resolution re-scans, so the cache converges back to max once builds
// settle. keep (the caller's own just-resolved entry, nil on the insert
// path) is never chosen as a victim. Returns the successfully built
// victims for the onEvict hook.
func (c *sessionCache[V]) evictLocked(keep *session[V]) []evictedPair[V] {
	var out []evictedPair[V]
	over := c.ll.Len() - c.max
	for el := c.ll.Back(); el != nil && over > 0; {
		prev := el.Prev()
		s := el.Value.(*session[V])
		if s == keep {
			el = prev
			continue
		}
		if !s.resolved.Load() {
			c.evictSkips++
			el = prev
			continue
		}
		c.ll.Remove(el)
		delete(c.items, s.key)
		c.evictions++
		over--
		if s.err == nil && c.onEvict != nil {
			out = append(out, evictedPair[V]{key: s.key, v: s.v})
		}
		el = prev
	}
	return out
}

// getOrBuild returns the cached value for key, building it with build on
// a miss. The boolean reports a cache hit — true only when a
// successfully built value was shared.
func (c *sessionCache[V]) getOrBuild(key string, build func() (V, error)) (V, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		s := el.Value.(*session[V])
		if s.resolved.Load() && s.err != nil {
			// A failed build its builder has not yet removed: treat it
			// as a miss and rebuild rather than replaying the error.
			c.ll.Remove(el)
			delete(c.items, key)
			c.drops++
		} else {
			c.ll.MoveToFront(el)
			c.mu.Unlock()
			s.await()
			if s.err != nil {
				// The joined build failed; its builder drops the entry.
				// No hit: the caller got an error, not a cached value.
				var zero V
				return zero, false, s.err
			}
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return s.v, true, nil
		}
	}
	c.misses++
	s := &session[V]{key: key, build: build}
	el := c.ll.PushFront(s)
	c.items[key] = el
	evicted := c.evictLocked(nil)
	c.mu.Unlock()
	for _, ev := range evicted {
		c.onEvict(ev.key, ev.v)
	}

	s.await()
	c.mu.Lock()
	if s.err != nil {
		// Do not cache failures: drop the entry if still present (a
		// concurrent stale-failure arrival may have dropped it first,
		// or an eviction scan removed the resolved failure).
		if el, ok := c.items[key]; ok && el.Value.(*session[V]) == s {
			c.ll.Remove(el)
			delete(c.items, key)
			c.drops++
		}
	}
	// Re-scan for capacity: eviction scans that ran while this build
	// was in flight skipped it and possibly others, so the resolution is
	// what shrinks an over-full cache back to max. The fresh entry
	// itself is exempt — it is the most recently used value.
	evicted = c.evictLocked(s)
	c.mu.Unlock()
	for _, ev := range evicted {
		c.onEvict(ev.key, ev.v)
	}
	return s.v, false, s.err
}

// len returns the number of cached sessions.
func (c *sessionCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// counters returns a snapshot of the accounting counters.
func (c *sessionCache[V]) counters() (hits, misses, evictions, drops, evictSkips uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.drops, c.evictSkips, c.ll.Len()
}

// stats packages the counters as the /stats cache block.
func (c *sessionCache[V]) stats(capacity int) CacheStats {
	hits, misses, evictions, drops, evictSkips, size := c.counters()
	return CacheStats{
		Hits: hits, Misses: misses, Evictions: evictions,
		Drops: drops, EvictSkips: evictSkips,
		Size: size, Capacity: capacity,
	}
}
