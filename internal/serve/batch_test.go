package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/kaczmarz"
	"github.com/asynclinalg/asyrgs/internal/lsq"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// TestFixedWorkRequest: fixed_work runs the exact sweep budget with no
// convergence target — the mode that was unreachable over HTTP while
// handleSolve silently rewrote Tol <= 0 to 1e-6.
func TestFixedWorkRequest(t *testing.T) {
	ts := newTestServer(t, Config{})
	out, resp := postSolve(t, ts, SolveRequest{
		Matrix:    MatrixSpec{Kind: "laplacian2d", N: 8},
		Method:    "asyrgs",
		FixedWork: true, MaxSweeps: 7, Workers: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Sweeps != 7 {
		t.Fatalf("fixed-work run must spend the whole budget: %+v", out)
	}
	if out.Converged {
		t.Fatalf("fixed-work runs never report convergence: %+v", out)
	}
}

// TestExplicitBatchRequest: the "bs" field solves several right-hand
// sides together against one prepared system.
func TestExplicitBatchRequest(t *testing.T) {
	ts := newTestServer(t, Config{})
	n := 8 * 8
	bs := make([][]float64, 3)
	for j := range bs {
		bs[j] = make([]float64, n)
		bs[j][j] = 1
	}
	out, resp := postSolve(t, ts, SolveRequest{
		Matrix: MatrixSpec{Kind: "laplacian2d", N: 8},
		Method: "asyrgs", Tol: 1e-8, MaxSweeps: 5000, Workers: 2,
		Bs: bs, IncludeSolution: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Batch) != 3 || out.BatchSize != 3 {
		t.Fatalf("batch response malformed: batch=%d size=%d", len(out.Batch), out.BatchSize)
	}
	if !out.Converged {
		t.Fatalf("batch did not converge: %+v", out)
	}
	for j, e := range out.Batch {
		if !e.Converged || e.Residual > 1e-8 || len(e.X) != n {
			t.Fatalf("batch entry %d: %+v", j, e)
		}
	}
	// b and bs together must be rejected.
	_, resp = postSolve(t, ts, SolveRequest{
		Matrix: MatrixSpec{Kind: "laplacian2d", N: 8},
		B:      make([]float64, n), Bs: bs,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("b+bs: status %d, want 400", resp.StatusCode)
	}
}

// TestPrepCacheReuse: a second request for the same (matrix, method,
// prep-opts) hits the prepared-system cache and performs zero additional
// preparations — the serving-path statement of the pipeline's guarantee.
func TestPrepCacheReuse(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := SolveRequest{
		Matrix: MatrixSpec{Kind: "randomspd", N: 150, NNZ: 5, Seed: 8},
		Method: "kaczmarz", Tol: 1e-6, MaxSweeps: 5000, Workers: 2,
	}
	out, resp := postSolve(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.PrepHit {
		t.Fatal("first request cannot hit the prep cache")
	}

	before := kaczmarz.PrepCount() + core.PrepCount() + lsq.PrepCount() + sparse.GramCount()
	req.RHSSeed = 42
	out2, resp := postSolve(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !out2.PrepHit || !out2.CacheHit {
		t.Fatalf("second request must hit both caches: %+v", out2)
	}
	if after := kaczmarz.PrepCount() + core.PrepCount() + lsq.PrepCount() + sparse.GramCount(); after != before {
		t.Fatalf("warm request re-prepared state: %d preparations", after-before)
	}

	var stats Stats
	getJSON(t, ts, "/stats", &stats)
	if stats.PrepCache.Hits < 1 || stats.PrepCache.Misses < 1 {
		t.Fatalf("prep cache counters not reported: %+v", stats.PrepCache)
	}
}

// TestCoalescedBatchedServing: concurrent requests for one prepared
// system and identical solver knobs coalesce into fewer batched solves
// behind the admission gate. Run under -race this also exercises the
// batcher's synchronization.
func TestCoalescedBatchedServing(t *testing.T) {
	ts := newTestServer(t, Config{MaxConcurrent: 2, BatchWindow: 150 * time.Millisecond})
	const clients = 8
	var wg sync.WaitGroup
	sizes := make([]int, clients)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(SolveRequest{
				Matrix: MatrixSpec{Kind: "randomspd", N: 150, NNZ: 5, Seed: 1},
				Method: "asyrgs", Tol: 1e-6, MaxSweeps: 2000, Workers: 2,
				RHSSeed: uint64(i),
			})
			resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			var out SolveResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if !out.Converged {
				errs <- fmt.Errorf("client %d did not converge: %+v", i, out)
				return
			}
			sizes[i] = out.BatchSize
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var stats Stats
	getJSON(t, ts, "/stats", &stats)
	if stats.Solved != clients {
		t.Fatalf("solved %d, want %d", stats.Solved, clients)
	}
	if stats.Batches >= clients {
		t.Fatalf("no coalescing happened: %d batches for %d requests (batch sizes %v)",
			stats.Batches, clients, sizes)
	}
	if stats.CoalescedRequests == 0 {
		t.Fatal("coalesced_requests counter never moved")
	}
	// Every request reports the size of the batch that served it.
	coalesced := 0
	for _, s := range sizes {
		if s > 1 {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Fatalf("no request reports a shared batch: %v", sizes)
	}
}
