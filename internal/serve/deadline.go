package serve

import (
	"context"
	"time"
)

// deadlineCtx is a poolable replacement for context.WithTimeout on the
// batch solve path. The standard constructor allocates a timer, a cancel
// closure and the context value itself on every batch — per-request
// garbage on the warmest path in the daemon — where all the batch
// context actually has to do is make Err() report DeadlineExceeded once
// the solve budget elapses.
//
// Semantics relative to context.WithTimeout:
//
//   - Err() reports the parent's error first, then DeadlineExceeded once
//     the deadline passes. Every solver family checks cancellation by
//     polling Err() between chunks of work (core, kaczmarz, lsq, distmem
//     and the krylov wrappers all do), so the budget is enforced exactly
//     where it was before.
//   - Done() passes through to the parent: the channel fires on client
//     disconnect but not on deadline expiry. No consumer of the batch
//     context selects on Done() — the solve path is poll-based — so
//     nothing observes the difference; a future Done-based waiter would
//     still unblock on client disconnect and at solve completion.
//   - Deadline() reports the earlier of the parent's deadline and the
//     solve budget, so cooperative callers see the true bound.
//
// A deadlineCtx is embedded in the pooled solveItem and reinitialized
// per batch; it needs no cancel/stop because nothing runs until expiry.
type deadlineCtx struct {
	parent   context.Context
	deadline time.Time
}

// reset points the context at a parent with a fresh budget.
//
//asyrgs:noalloc
func (d *deadlineCtx) reset(parent context.Context, timeout time.Duration) {
	d.parent, d.deadline = parent, time.Now().Add(timeout)
}

func (d *deadlineCtx) Deadline() (time.Time, bool) {
	if pd, ok := d.parent.Deadline(); ok && pd.Before(d.deadline) {
		return pd, true
	}
	return d.deadline, true
}

func (d *deadlineCtx) Done() <-chan struct{} { return d.parent.Done() }

func (d *deadlineCtx) Err() error {
	if err := d.parent.Err(); err != nil {
		return err
	}
	if time.Now().After(d.deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

func (d *deadlineCtx) Value(key any) any { return d.parent.Value(key) }
