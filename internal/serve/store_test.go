package serve

// End-to-end tests for the durable prep store behind the prepared-system
// LRU: a fresh daemon over a warmed store restores prepared state
// without re-running Prepare, a corrupted blob falls back to a fresh
// Prepare (counted, never served), and LRU eviction spills state to the
// store instead of destroying it.

import (
	"net/http"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/store"
)

// storeSpec is the one matrix these tests solve; the prep key below must
// track it.
func storeSpec() MatrixSpec { return MatrixSpec{Kind: "randomspd", N: 200, NNZ: 5, Seed: 9} }

// storePrepKey reproduces the server's prepared-system cache key for
// storeSpec + asyrgs at default (f64) precision, which is also the
// store's blob key.
func storePrepKey() string {
	return SolveRequest{Matrix: storeSpec(), Method: "asyrgs"}.prepKey(storeSpec().key()) + "|p=f64"
}

// warmStore runs one solve against a fresh server wired to ps, then
// flushes so the spill is durable in ps's backend.
func warmStore(t *testing.T, ps *store.PrepStore) SolveResponse {
	t.Helper()
	ts := newTestServer(t, Config{PrepStore: ps})
	defer ts.Close()
	out, resp := postSolve(t, ts, SolveRequest{
		Matrix: storeSpec(), Method: "asyrgs", Tol: 1e-6, MaxSweeps: 3000, Workers: 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve status %d", resp.StatusCode)
	}
	if out.PrepHit || out.PrepRestored {
		t.Fatalf("first solve must be a cold fresh Prepare: %+v", out)
	}
	ps.Flush()
	return out
}

// TestPrepStoreRestoreSkipsPrepare is the tentpole's end-to-end promise:
// a restarted daemon (new server, new store instance, surviving backend)
// serves its first request by restoring the spilled prepared state —
// zero instrumented Prepare work — and reports it on the response and on
// /stats and /metrics.
func TestPrepStoreRestoreSkipsPrepare(t *testing.T) {
	backend := store.NewMemory()

	st1 := store.NewPrepStore(backend)
	warmStore(t, st1)
	if c := st1.Counters(); c.Spills == 0 {
		t.Fatalf("warm build did not spill: %+v", c)
	}
	st1.Close()
	if n, err := backend.Len(); err != nil || n == 0 {
		t.Fatalf("backend holds no blobs after flush (n=%d, err=%v)", n, err)
	}

	// "Restart": a fresh store over the surviving backend, a fresh server
	// with an empty prep LRU.
	st2 := store.NewPrepStore(backend)
	defer st2.Close()
	ts := newTestServer(t, Config{PrepStore: st2})
	defer ts.Close()

	before := core.PrepCount()
	out, resp := postSolve(t, ts, SolveRequest{
		Matrix: storeSpec(), Method: "asyrgs", Tol: 1e-6, MaxSweeps: 3000, Workers: 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored solve status %d", resp.StatusCode)
	}
	if !out.PrepRestored {
		t.Fatalf("restarted daemon must restore from the store: %+v", out)
	}
	if out.PrepHit {
		t.Fatal("restore is a prep-LRU miss, not a hit")
	}
	if d := core.PrepCount() - before; d != 0 {
		t.Fatalf("restore ran %d instrumented preparations, want 0", d)
	}
	if !out.Converged {
		t.Fatalf("restored system did not converge: %+v", out)
	}

	var st Stats
	getJSON(t, ts, "/stats", &st)
	if st.PrepStore == nil {
		t.Fatal("/stats missing prep_store block")
	}
	if st.PrepStore.Restores != 1 || st.PrepStore.Errors != 0 {
		t.Fatalf("prep_store counters: %+v", st.PrepStore)
	}
}

// TestPrepStoreCorruptBlobFallsBack flips one payload byte in the stored
// blob: the restore must fail closed — counted as a store error, blob
// discarded — and the request must succeed via a fresh Prepare.
func TestPrepStoreCorruptBlobFallsBack(t *testing.T) {
	backend := store.NewMemory()
	st1 := store.NewPrepStore(backend)
	warmStore(t, st1)
	st1.Close()

	blob, err := backend.Get(storePrepKey())
	if err != nil {
		t.Fatalf("spilled blob not found under the computed prep key: %v", err)
	}
	blob[len(blob)-1] ^= 0xff
	if err := backend.Put(storePrepKey(), blob); err != nil {
		t.Fatal(err)
	}

	st2 := store.NewPrepStore(backend)
	defer st2.Close()
	ts := newTestServer(t, Config{PrepStore: st2})
	defer ts.Close()
	out, resp := postSolve(t, ts, SolveRequest{
		Matrix: storeSpec(), Method: "asyrgs", Tol: 1e-6, MaxSweeps: 3000, Workers: 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback solve status %d", resp.StatusCode)
	}
	if out.PrepRestored || out.PrepHit {
		t.Fatalf("corrupted blob must not restore: %+v", out)
	}
	if !out.Converged {
		t.Fatalf("fallback solve did not converge: %+v", out)
	}

	var stt Stats
	getJSON(t, ts, "/stats", &stt)
	if stt.PrepStore == nil || stt.PrepStore.Errors == 0 {
		t.Fatalf("corrupted blob must count a store error: %+v", stt.PrepStore)
	}
	if stt.PrepStore.Restores != 0 {
		t.Fatalf("corrupted blob must not count as a restore: %+v", stt.PrepStore)
	}
}

// TestPrepStoreEvictionSpills pins the demotion path: with a one-entry
// prep LRU, preparing a second system evicts the first, and the eviction
// hook spills it — both systems end up durable.
func TestPrepStoreEvictionSpills(t *testing.T) {
	backend := store.NewMemory()
	ps := store.NewPrepStore(backend)
	defer ps.Close()
	ts := newTestServer(t, Config{PrepStore: ps, PrepCacheSize: 1})
	defer ts.Close()

	for _, m := range []string{"asyrgs", "kaczmarz"} {
		_, resp := postSolve(t, ts, SolveRequest{
			Matrix: storeSpec(), Method: m, Tol: 1e-6, MaxSweeps: 5000, Workers: 2,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s solve status %d", m, resp.StatusCode)
		}
	}
	ps.Flush()
	if n, err := backend.Len(); err != nil || n != 2 {
		t.Fatalf("backend holds %d blobs (err=%v), want 2 (fresh spill + eviction spill)", n, err)
	}
	if c := ps.Counters(); c.Spills < 2 {
		t.Fatalf("want at least 2 spills (build + eviction), got %+v", c)
	}
}
