// Package serve implements the asyrgsd HTTP serving layer: a JSON API
// that accepts MatrixMarket-or-generator-spec solve requests, dispatches
// them through the unified method registry, keeps a small LRU of prepared
// systems keyed by matrix hash so repeated right-hand sides skip setup,
// and bounds concurrency with a worker-pool admission gate.
//
// Endpoints:
//
//	POST /solve    one solve request (SolveRequest → SolveResponse)
//	GET  /methods  the registry roster with kinds
//	GET  /healthz  liveness probe
//	GET  /stats    request, cache and per-method counters
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// Config sizes the daemon. The zero value is usable.
type Config struct {
	// MaxConcurrent bounds in-flight solves (the admission gate); zero
	// means GOMAXPROCS.
	MaxConcurrent int
	// QueueTimeout is how long a request may wait for an admission slot
	// before being rejected with 503; zero means 5s.
	QueueTimeout time.Duration
	// CacheSize is the prepared-system LRU capacity; zero means 16.
	CacheSize int
	// SolveTimeout caps one solve's wall time; zero means 60s.
	SolveTimeout time.Duration
	// MaxDim rejects generator specs larger than this dimension; zero
	// means 1 << 20.
	MaxDim int
	// MaxBodyBytes caps the request body (inline MatrixMarket text can
	// be large); zero means 64 MiB.
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 60 * time.Second
	}
	if c.MaxDim <= 0 {
		c.MaxDim = 1 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// MatrixSpec identifies the system to solve: either an inline
// MatrixMarket text or a named generator with its parameters. The spec's
// canonical form is hashed into the session-cache key.
type MatrixSpec struct {
	// Kind is one of mm|laplacian2d|laplacian3d|randomspd|socialgram|
	// overdetermined.
	Kind string `json:"kind"`
	// MM is the inline MatrixMarket coordinate text (kind "mm").
	MM string `json:"mm,omitempty"`
	// N is the generator dimension (grid side for Laplacians).
	N int `json:"n,omitempty"`
	// Rows/Cols size the overdetermined generator.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// NNZ is the per-row fill of the random generators.
	NNZ int `json:"nnz,omitempty"`
	// Dominance is the diagonal dominance of randomspd.
	Dominance float64 `json:"dominance,omitempty"`
	// Seed keys the generator.
	Seed uint64 `json:"seed,omitempty"`
}

// key returns the canonical cache key: the kind plus a short content
// hash of the spec.
func (s MatrixSpec) key() string {
	h := sha256.New()
	if s.Kind == "mm" {
		h.Write([]byte(s.MM))
	} else {
		fmt.Fprintf(h, "%s|%d|%d|%d|%d|%g|%d", s.Kind, s.N, s.Rows, s.Cols, s.NNZ, s.Dominance, s.Seed)
	}
	return s.Kind + ":" + hex.EncodeToString(h.Sum(nil))[:16]
}

// build materializes the spec into a CSR matrix.
func (s MatrixSpec) build(maxDim int) (*sparse.CSR, error) {
	if s.Kind != "mm" {
		if s.N > maxDim || s.Rows > maxDim || s.Cols > maxDim {
			return nil, fmt.Errorf("spec dimension exceeds the daemon limit %d", maxDim)
		}
	}
	nnz := s.NNZ
	if nnz <= 0 {
		nnz = 6
	}
	switch s.Kind {
	case "mm":
		a, err := sparse.ReadMM(strings.NewReader(s.MM))
		if err != nil {
			return nil, fmt.Errorf("parsing MatrixMarket body: %w", err)
		}
		if a.Rows > maxDim || a.Cols > maxDim {
			return nil, fmt.Errorf("matrix dimension exceeds the daemon limit %d", maxDim)
		}
		return a, nil
	case "laplacian2d":
		if s.N < 2 {
			return nil, errors.New("laplacian2d needs n >= 2 (grid side)")
		}
		return workload.Laplacian2D(s.N, s.N), nil
	case "laplacian3d":
		if s.N < 2 {
			return nil, errors.New("laplacian3d needs n >= 2 (grid side)")
		}
		return workload.Laplacian3D(s.N, s.N, s.N), nil
	case "randomspd":
		if s.N < 1 {
			return nil, errors.New("randomspd needs n >= 1")
		}
		dom := s.Dominance
		if dom <= 0 {
			dom = 1.5
		}
		return workload.RandomSPD(s.N, nnz, dom, s.Seed), nil
	case "socialgram":
		if s.N < 1 {
			return nil, errors.New("socialgram needs n >= 1")
		}
		gram, _ := workload.SocialGram(workload.DefaultSocialGram(s.N, s.Seed))
		return gram, nil
	case "overdetermined":
		if s.Rows < 1 || s.Cols < 1 || s.Rows < s.Cols {
			return nil, errors.New("overdetermined needs rows >= cols >= 1")
		}
		return workload.RandomOverdetermined(s.Rows, s.Cols, nnz, s.Seed), nil
	default:
		return nil, fmt.Errorf("unknown matrix kind %q (want mm|laplacian2d|laplacian3d|randomspd|socialgram|overdetermined)", s.Kind)
	}
}

// SolveRequest is the POST /solve body.
type SolveRequest struct {
	Matrix MatrixSpec `json:"matrix"`
	// Method is a registry name; see GET /methods.
	Method string `json:"method"`
	// B is the right-hand side; when empty one is generated from a known
	// solution (b = A·x*, SPD kinds) or uniformly (least squares), keyed
	// by RHSSeed.
	B       []float64 `json:"b,omitempty"`
	RHSSeed uint64    `json:"rhs_seed,omitempty"`
	// Solver knobs, mapped onto method.Opts.
	Tol        float64 `json:"tol,omitempty"`
	MaxSweeps  int     `json:"max_sweeps,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	Beta       float64 `json:"beta,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Inner      int     `json:"inner,omitempty"`
	CheckEvery int     `json:"check_every,omitempty"`
	// MeasureDelay enables asynchrony bookkeeping (observed_tau in the
	// response) at a small per-iteration instrumentation cost.
	MeasureDelay bool `json:"measure_delay,omitempty"`
	// IncludeSolution returns the iterate in the response (large!).
	IncludeSolution bool `json:"include_solution,omitempty"`
}

// SolveResponse is the POST /solve reply.
type SolveResponse struct {
	Method      string    `json:"method"`
	Kind        string    `json:"kind"`
	MatrixKey   string    `json:"matrix_key"`
	CacheHit    bool      `json:"cache_hit"`
	Rows        int       `json:"rows"`
	Cols        int       `json:"cols"`
	Residual    float64   `json:"residual"`
	Converged   bool      `json:"converged"`
	Sweeps      int       `json:"sweeps"`
	Iterations  uint64    `json:"iterations"`
	WallMS      float64   `json:"wall_ms"`
	ObservedTau int       `json:"observed_tau"`
	ANormErr    *float64  `json:"a_norm_err,omitempty"`
	X           []float64 `json:"x,omitempty"`
}

// Stats is the GET /stats reply.
type Stats struct {
	Requests  uint64            `json:"requests"`
	Solved    uint64            `json:"solved"`
	Errors    uint64            `json:"errors"`
	Rejected  uint64            `json:"rejected"`
	InFlight  int64             `json:"in_flight"`
	UptimeSec float64           `json:"uptime_sec"`
	Cache     CacheStats        `json:"cache"`
	PerMethod map[string]uint64 `json:"per_method"`
}

// CacheStats reports the session cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// Server is the asyrgsd HTTP daemon state.
type Server struct {
	cfg   Config
	cache *sessionCache
	gate  chan struct{}
	mux   *http.ServeMux
	start time.Time

	requests atomic.Uint64
	solved   atomic.Uint64
	errs     atomic.Uint64
	rejected atomic.Uint64
	inFlight atomic.Int64

	methodMu sync.Mutex
	byMethod map[string]uint64
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    newSessionCache(cfg.CacheSize),
		gate:     make(chan struct{}, cfg.MaxConcurrent),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		byMethod: map[string]uint64{},
	}
	s.mux.HandleFunc("POST /solve", s.handleSolve)
	s.mux.HandleFunc("GET /methods", s.handleMethods)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errs.Add(1)
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// reject sheds a request at the admission gate: counted as rejected, not
// as an error, so the errors counter keeps its alerting signal.
func (s *Server) reject(w http.ResponseWriter, format string, args ...any) {
	s.rejected.Add(1)
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMethods(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	var out []entry
	for _, m := range method.All() {
		out = append(out, entry{Name: m.Name(), Kind: m.Kind().String()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	hits, misses, evictions, size := s.cache.counters()
	s.methodMu.Lock()
	perMethod := make(map[string]uint64, len(s.byMethod))
	for k, v := range s.byMethod {
		perMethod[k] = v
	}
	s.methodMu.Unlock()
	writeJSON(w, http.StatusOK, Stats{
		Requests:  s.requests.Load(),
		Solved:    s.solved.Load(),
		Errors:    s.errs.Load(),
		Rejected:  s.rejected.Load(),
		InFlight:  s.inFlight.Load(),
		UptimeSec: time.Since(s.start).Seconds(),
		Cache: CacheStats{
			Hits: hits, Misses: misses, Evictions: evictions,
			Size: size, Capacity: s.cfg.CacheSize,
		},
		PerMethod: perMethod,
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)

	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Method == "" {
		req.Method = "asyrgs"
	}
	// Fixed-work mode (Tol <= 0) is a bench-harness convention; API
	// clients omitting tol expect a sensible convergence target.
	if req.Tol <= 0 {
		req.Tol = 1e-6
	}
	m, err := method.Get(req.Method)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Admission gate: bound concurrent solves, waiting at most
	// QueueTimeout for a slot.
	admit := time.NewTimer(s.cfg.QueueTimeout)
	defer admit.Stop()
	select {
	case s.gate <- struct{}{}:
		defer func() { <-s.gate }()
	case <-admit.C:
		s.reject(w, "server at capacity (%d in flight); retry later", s.cfg.MaxConcurrent)
		return
	case <-r.Context().Done():
		s.reject(w, "client went away while queued")
		return
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	key := req.Matrix.key()
	a, hit, err := s.cache.getOrBuild(key, func() (*sparse.CSR, error) {
		return req.Matrix.build(s.cfg.MaxDim)
	})
	if err != nil {
		s.fail(w, http.StatusBadRequest, "building matrix: %v", err)
		return
	}
	if m.Kind() == method.SPD && a.Rows != a.Cols {
		s.fail(w, http.StatusBadRequest, "method %q needs a square system, matrix is %dx%d", req.Method, a.Rows, a.Cols)
		return
	}
	if m.Kind() == method.LeastSquares && a.Rows < a.Cols {
		s.fail(w, http.StatusBadRequest, "method %q needs rows >= cols, matrix is %dx%d", req.Method, a.Rows, a.Cols)
		return
	}

	// Right-hand side: supplied, or generated (with a known solution for
	// SPD systems so the response can report the A-norm error).
	b := req.B
	var xstar []float64
	if len(b) == 0 {
		if m.Kind() == method.SPD {
			b, xstar = workload.RHSForSolution(a, req.RHSSeed)
		} else {
			b = workload.RandomRHS(a.Rows, req.RHSSeed)
		}
	} else if len(b) != a.Rows {
		s.fail(w, http.StatusBadRequest, "right-hand side has %d entries, matrix has %d rows", len(b), a.Rows)
		return
	}

	// The solve context honours both client disconnects and the server's
	// per-request budget.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SolveTimeout)
	defer cancel()

	x := make([]float64, a.Cols)
	res, err := m.Solve(ctx, a, b, x, method.Opts{
		Tol: req.Tol, MaxSweeps: req.MaxSweeps, Workers: req.Workers,
		Beta: req.Beta, Seed: req.Seed, Inner: req.Inner,
		CheckEvery: req.CheckEvery, XStar: xstar,
		MeasureDelay: req.MeasureDelay,
	})
	switch {
	case err == nil || errors.Is(err, method.ErrNotConverged):
		// A budget-exhausted solve is still a well-formed answer.
	case ctx.Err() != nil && errors.Is(err, ctx.Err()):
		s.fail(w, http.StatusGatewayTimeout, "solve cancelled: %v", err)
		return
	default:
		s.fail(w, http.StatusBadRequest, "solve failed: %v", err)
		return
	}

	s.solved.Add(1)
	s.methodMu.Lock()
	s.byMethod[req.Method]++
	s.methodMu.Unlock()

	resp := SolveResponse{
		Method: res.Method, Kind: m.Kind().String(), MatrixKey: key, CacheHit: hit,
		Rows: a.Rows, Cols: a.Cols,
		Residual: res.Residual, Converged: res.Converged,
		Sweeps: res.Sweeps, Iterations: res.Iterations,
		WallMS: float64(res.Wall) / float64(time.Millisecond), ObservedTau: res.ObservedTau,
	}
	if !math.IsNaN(res.ANormErr) {
		resp.ANormErr = &res.ANormErr
	}
	if req.IncludeSolution {
		resp.X = x
	}
	writeJSON(w, http.StatusOK, resp)
}
