// Package serve implements the asyrgsd HTTP serving layer: a JSON API
// that accepts MatrixMarket-or-generator-spec solve requests and
// dispatches them through the two-phase Prepare/Solve pipeline of the
// unified method registry. Two LRUs make repeated traffic cheap — one of
// built matrices keyed by matrix hash, one of prepared solver systems
// keyed by matrix×method×prep-opts, so a warm request pays only
// iteration cost (no parsing, no Gram/row-norm/diagonal setup). A
// worker-pool admission gate bounds concurrency, and concurrent requests
// for the same prepared system are coalesced into one batched multi-RHS
// solve behind the gate.
//
// Endpoints:
//
//	POST /solve    one solve request (SolveRequest → SolveResponse);
//	               set "bs" for an explicit multi-RHS batch
//	GET  /methods  the registry roster with kinds
//	GET  /healthz  liveness probe
//	GET  /stats    request, cache, batching and per-method counters plus
//	               per-endpoint and per-method latency summaries
//	GET  /metrics  the same counters and the raw latency histograms in
//	               Prometheus text exposition format
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/stats"
	"github.com/asynclinalg/asyrgs/internal/store"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// Config sizes the daemon. The zero value is usable.
type Config struct {
	// MaxConcurrent bounds in-flight solve batches (the admission gate);
	// zero means GOMAXPROCS.
	MaxConcurrent int
	// QueueTimeout is how long a request may wait for an admission slot
	// before being rejected with 503; zero means 5s.
	QueueTimeout time.Duration
	// CacheSize is the built-matrix LRU capacity; zero means 16.
	CacheSize int
	// PrepCacheSize is the prepared-system LRU capacity; zero means
	// 4×CacheSize (several methods per cached matrix).
	PrepCacheSize int
	// BatchWindow caps how long the first request for a prepared system
	// waits for concurrent same-key requests to coalesce into one batched
	// multi-RHS solve. The actual wait adapts: it shrinks toward the
	// observed same-key arrival rate and ends early when the batch
	// reaches its width target, so an idle server runs immediately and a
	// saturated one stops paying the full window per batch. Zero means
	// 2ms; negative disables coalescing.
	BatchWindow time.Duration
	// BatchTarget pins the coalescer's flush width: a pending batch
	// flushes as soon as it holds this many right-hand sides. Zero
	// adapts the target from observed batch widths (clamped to
	// [2, 4×MaxConcurrent]).
	BatchTarget int
	// SolveTimeout caps one solve batch's wall time; zero means 60s.
	SolveTimeout time.Duration
	// MaxDim rejects generator specs larger than this dimension; zero
	// means 1 << 20.
	MaxDim int
	// MaxBodyBytes caps the request body (inline MatrixMarket text can
	// be large); zero means 64 MiB.
	MaxBodyBytes int64
	// PrepStore, when non-nil, is the durable prepared-system store
	// behind the prep LRU: misses try a restore before running Prepare,
	// successful fresh builds and evicted entries spill to it on a
	// background writer. Nil disables persistence. The server does not
	// own the store — the caller Closes it after the server stops.
	PrepStore *store.PrepStore
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.PrepCacheSize <= 0 {
		c.PrepCacheSize = 4 * c.CacheSize
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 60 * time.Second
	}
	if c.MaxDim <= 0 {
		c.MaxDim = 1 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// MatrixSpec identifies the system to solve: either an inline
// MatrixMarket text or a named generator with its parameters. The spec's
// canonical form is hashed into the session-cache key.
type MatrixSpec struct {
	// Kind is one of mm|laplacian2d|laplacian3d|randomspd|socialgram|
	// overdetermined.
	Kind string `json:"kind"`
	// MM is the inline MatrixMarket coordinate text (kind "mm").
	MM string `json:"mm,omitempty"`
	// N is the generator dimension (grid side for Laplacians).
	N int `json:"n,omitempty"`
	// Rows/Cols size the overdetermined generator.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// NNZ is the per-row fill of the random generators.
	NNZ int `json:"nnz,omitempty"`
	// Dominance is the diagonal dominance of randomspd.
	Dominance float64 `json:"dominance,omitempty"`
	// Seed keys the generator.
	Seed uint64 `json:"seed,omitempty"`
}

// canonical returns the spec with per-kind defaults applied and fields
// the kind's generator never reads zeroed out. key() hashes this form,
// so two specs that build the identical matrix — {randomspd, NNZ:0} and
// {randomspd, NNZ:6}, or a Laplacian with a stray seed — share one
// cache entry instead of building and preparing the same system twice.
// build consumes the canonical form too, so defaults live here alone.
func (s MatrixSpec) canonical() MatrixSpec {
	c := MatrixSpec{Kind: s.Kind}
	switch s.Kind {
	case "mm":
		c.MM = s.MM
	case "laplacian2d", "laplacian3d":
		c.N = s.N
	case "randomspd":
		c.N, c.NNZ, c.Dominance, c.Seed = s.N, s.NNZ, s.Dominance, s.Seed
		if c.NNZ <= 0 {
			c.NNZ = 6
		}
		if c.Dominance <= 0 {
			c.Dominance = 1.5
		}
	case "socialgram":
		c.N, c.Seed = s.N, s.Seed
	case "overdetermined":
		c.Rows, c.Cols, c.NNZ, c.Seed = s.Rows, s.Cols, s.NNZ, s.Seed
		if c.NNZ <= 0 {
			c.NNZ = 6
		}
	default:
		// Unknown kinds keep their raw fields; build rejects them anyway.
		c = s
	}
	return c
}

// key returns the canonical cache key: the kind plus a short content
// hash of the canonicalized spec.
func (s MatrixSpec) key() string {
	c := s.canonical()
	h := sha256.New()
	if c.Kind == "mm" {
		h.Write([]byte(c.MM))
	} else {
		fmt.Fprintf(h, "%s|%d|%d|%d|%d|%g|%d", c.Kind, c.N, c.Rows, c.Cols, c.NNZ, c.Dominance, c.Seed)
	}
	return c.Kind + ":" + hex.EncodeToString(h.Sum(nil))[:16]
}

// satMul multiplies two non-negative int64s, saturating at MaxInt64 so
// a hostile spec cannot overflow the dimension guard into acceptance.
func satMul(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// dims returns the dimensions the generator kinds will materialize —
// the grid-side field N expands to N² (laplacian2d) or N³ (laplacian3d)
// unknowns, which is what the daemon's MaxDim guard must bound; the
// spec field itself bounds nothing. "mm" returns zeros (its dimensions
// are known only after parsing) and unknown kinds return zeros too.
func (s MatrixSpec) dims() (rows, cols int64) {
	n := int64(s.N)
	switch s.Kind {
	case "laplacian2d":
		d := satMul(n, n)
		return d, d
	case "laplacian3d":
		d := satMul(satMul(n, n), n)
		return d, d
	case "randomspd", "socialgram":
		return n, n
	case "overdetermined":
		return int64(s.Rows), int64(s.Cols)
	default:
		return 0, 0
	}
}

// build materializes the spec into a CSR matrix. The dimension guard
// checks what the generator will actually allocate — a laplacian3d
// request with n=65536 describes a ~2.8e14-unknown system even though
// every spec field is small, and must be rejected before allocation.
func (s MatrixSpec) build(maxDim int) (*sparse.CSR, error) {
	s = s.canonical()
	if s.Kind != "mm" {
		if rows, cols := s.dims(); rows > int64(maxDim) || cols > int64(maxDim) {
			return nil, fmt.Errorf("generated system would be %d x %d, exceeding the daemon's dimension limit %d", rows, cols, maxDim)
		}
	}
	switch s.Kind {
	case "mm":
		a, err := sparse.ReadMM(strings.NewReader(s.MM))
		if err != nil {
			return nil, fmt.Errorf("parsing MatrixMarket body: %w", err)
		}
		if a.Rows > maxDim || a.Cols > maxDim {
			return nil, fmt.Errorf("matrix dimension exceeds the daemon limit %d", maxDim)
		}
		return a, nil
	case "laplacian2d":
		if s.N < 2 {
			return nil, errors.New("laplacian2d needs n >= 2 (grid side)")
		}
		return workload.Laplacian2D(s.N, s.N), nil
	case "laplacian3d":
		if s.N < 2 {
			return nil, errors.New("laplacian3d needs n >= 2 (grid side)")
		}
		return workload.Laplacian3D(s.N, s.N, s.N), nil
	case "randomspd":
		if s.N < 1 {
			return nil, errors.New("randomspd needs n >= 1")
		}
		return workload.RandomSPD(s.N, s.NNZ, s.Dominance, s.Seed), nil
	case "socialgram":
		if s.N < 1 {
			return nil, errors.New("socialgram needs n >= 1")
		}
		gram, _ := workload.SocialGram(workload.DefaultSocialGram(s.N, s.Seed))
		return gram, nil
	case "overdetermined":
		if s.Rows < 1 || s.Cols < 1 || s.Rows < s.Cols {
			return nil, errors.New("overdetermined needs rows >= cols >= 1")
		}
		return workload.RandomOverdetermined(s.Rows, s.Cols, s.NNZ, s.Seed), nil
	default:
		return nil, fmt.Errorf("unknown matrix kind %q (want mm|laplacian2d|laplacian3d|randomspd|socialgram|overdetermined)", s.Kind)
	}
}

// SolveRequest is the POST /solve body.
type SolveRequest struct {
	Matrix MatrixSpec `json:"matrix"`
	// Method is a registry name; see GET /methods.
	Method string `json:"method"`
	// B is the right-hand side; when empty one is generated from a known
	// solution (b = A·x*, SPD kinds) or uniformly (least squares), keyed
	// by RHSSeed.
	B       []float64 `json:"b,omitempty"`
	RHSSeed uint64    `json:"rhs_seed,omitempty"`
	// Bs is an explicit multi-RHS batch: all right-hand sides are solved
	// together against one prepared system (SolveResponse.Batch holds the
	// per-RHS outcomes). Mutually exclusive with B.
	Bs [][]float64 `json:"bs,omitempty"`
	// Solver knobs, mapped onto method.Opts.
	Tol        float64 `json:"tol,omitempty"`
	MaxSweeps  int     `json:"max_sweeps,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	Beta       float64 `json:"beta,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Inner      int     `json:"inner,omitempty"`
	CheckEvery int     `json:"check_every,omitempty"`
	// QueueCap is the per-peer message-queue budget of the sharded
	// distributed-memory backend (asyrgs-distmem); other methods ignore
	// it.
	QueueCap int `json:"queue_cap,omitempty"`
	// Chunk is the iteration-claiming granularity of the asynchronous
	// coordinate methods (indices grabbed from the shared counter per
	// CAS); zero auto-sizes. The direction sequence is chunk-invariant,
	// so this is purely a performance knob.
	Chunk int `json:"chunk,omitempty"`
	// Precision selects the matrix value-storage precision: "" or "f64"
	// is native float64; "f32" stores values as float32 with float64
	// accumulation (halved value bandwidth, residual floor ~√nnz·2⁻²⁴;
	// coordinate methods only). Consumed at Prepare time, so it is part
	// of the prepared-system cache key.
	Precision string `json:"precision,omitempty"`
	// FixedWork runs the bench-style fixed-sweep mode: the solver spends
	// the whole MaxSweeps budget with no convergence target (tol is
	// ignored). Without it, a missing or non-positive tol defaults to
	// 1e-6.
	FixedWork bool `json:"fixed_work,omitempty"`
	// MeasureDelay enables asynchrony bookkeeping (observed_tau in the
	// response) at a small per-iteration instrumentation cost.
	MeasureDelay bool `json:"measure_delay,omitempty"`
	// IncludeSolution returns the iterate in the response (large!).
	IncludeSolution bool `json:"include_solution,omitempty"`
}

// prepKey keys the prepared-system LRU: matrix × method × the options
// the method's preparation consumes. Every built-in Prepare depends only
// on the matrix (solver knobs like workers/beta/seed configure the
// iteration, not the prepared state), so the prep-opts component is
// empty: traffic varying only solver knobs still shares one prepared
// entry. A method whose Prepare consumed an option would need that
// option appended here.
func (r SolveRequest) prepKey(matrixKey string) string {
	return matrixKey + "|" + r.Method
}

// batchKey keys request coalescing: only requests that would run the
// identical solve (same prepared system, same solver knobs) may share a
// batched solve. The right-hand side is deliberately absent — it is the
// per-item payload.
func (r SolveRequest) batchKey(matrixKey string) string {
	return fmt.Sprintf("%s|t%g|m%d|w%d|b%g|s%d|i%d|c%d|q%d|k%d|f%v|d%v|p%s",
		r.prepKey(matrixKey), r.Tol, r.MaxSweeps, r.Workers, r.Beta, r.Seed, r.Inner,
		r.CheckEvery, r.QueueCap, r.Chunk, r.FixedWork, r.MeasureDelay, r.Precision)
}

// opts maps the request knobs onto method.Opts. FixedWork zeroes the
// tolerance, which is the registry's fixed-sweep convention.
func (r SolveRequest) opts() method.Opts {
	tol := r.Tol
	if r.FixedWork {
		tol = 0
	}
	return method.Opts{
		Tol: tol, MaxSweeps: r.MaxSweeps, Workers: r.Workers,
		Beta: r.Beta, Seed: r.Seed, Inner: r.Inner,
		CheckEvery: r.CheckEvery, QueueCap: r.QueueCap, Chunk: r.Chunk,
		MeasureDelay: r.MeasureDelay, Precision: r.Precision,
	}
}

// BatchEntry is one right-hand side's outcome inside a batched response.
type BatchEntry struct {
	Residual  float64   `json:"residual"`
	Converged bool      `json:"converged"`
	Sweeps    int       `json:"sweeps"`
	X         []float64 `json:"x,omitempty"`
}

// SolveResponse is the POST /solve reply.
type SolveResponse struct {
	Method    string `json:"method"`
	Kind      string `json:"kind"`
	MatrixKey string `json:"matrix_key"`
	// CacheHit reports a built-matrix cache hit; PrepHit a prepared-system
	// cache hit (the request skipped the Prepare phase entirely).
	CacheHit bool `json:"cache_hit"`
	PrepHit  bool `json:"prep_hit"`
	// PrepRestored reports that this request's prepared system was
	// rebuilt from the durable prep store instead of a fresh Prepare.
	// Only the request that ran the build sees it; concurrent requests
	// that joined the same build report PrepHit.
	PrepRestored bool `json:"prep_restored,omitempty"`
	// PrepMS is the wall time of this request's prepare phase — cache
	// lookup, restore or fresh preparation, and any admission-gate wait.
	// Unquantized (the /stats stage histograms bucket by powers of two),
	// so cold-restart benchmarks can compare restore against Prepare.
	PrepMS float64 `json:"prep_ms"`
	// BatchSize is the number of right-hand sides solved together in the
	// batch this request was part of (explicit bs entries, or coalesced
	// concurrent requests; 1 when the solve ran alone).
	BatchSize   int     `json:"batch_size,omitempty"`
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	Residual    float64 `json:"residual"`
	Converged   bool    `json:"converged"`
	Sweeps      int     `json:"sweeps"`
	Iterations  uint64  `json:"iterations"`
	WallMS      float64 `json:"wall_ms"`
	ObservedTau int     `json:"observed_tau"`
	// Messages and MaxQueue report the sharded backend's network traffic
	// and worst inbox backlog; zero (omitted) for shared-memory methods.
	Messages uint64    `json:"messages,omitempty"`
	MaxQueue int       `json:"max_queue,omitempty"`
	ANormErr *float64  `json:"a_norm_err,omitempty"`
	X        []float64 `json:"x,omitempty"`
	// Batch holds the per-RHS outcomes of an explicit bs request; the
	// top-level Residual/Converged then summarize the worst column.
	Batch []BatchEntry `json:"batch,omitempty"`
}

// Stats is the GET /stats reply.
type Stats struct {
	Requests uint64 `json:"requests"`
	Solved   uint64 `json:"solved"`
	Errors   uint64 `json:"errors"`
	Rejected uint64 `json:"rejected"`
	// Panics counts worker panics contained by the serving layer (each
	// one answered 500 instead of killing the daemon).
	Panics    uint64  `json:"panics"`
	InFlight  int64   `json:"in_flight"`
	UptimeSec float64 `json:"uptime_sec"`
	// Cache counts the built-matrix LRU; PrepCache the prepared-system
	// LRU (a PrepCache hit skips Gram/row-norm/diagonal preparation).
	Cache     CacheStats `json:"cache"`
	PrepCache CacheStats `json:"prep_cache"`
	// PrepStore reports durable prep-store traffic; absent when the
	// server runs without a store.
	PrepStore *PrepStoreStats `json:"prep_store,omitempty"`
	// Batches counts solve batches executed behind the admission gate;
	// CoalescedRequests counts requests that shared a batch with at least
	// one other concurrent request.
	Batches           uint64            `json:"batches"`
	CoalescedRequests uint64            `json:"coalesced_requests"`
	PerMethod         map[string]uint64 `json:"per_method"`
	// Latency summarizes request wall time per endpoint; MethodLatency
	// per registry method (microseconds, power-of-two buckets — the raw
	// cumulative histograms are on GET /metrics). Only methods that have
	// served at least one request appear.
	Latency       map[string]LatencySummary `json:"latency"`
	MethodLatency map[string]LatencySummary `json:"method_latency,omitempty"`
	// Stages summarizes per-request processing-stage durations
	// (build/prepare/queue/solve/respond, see stages.go); every stage
	// always appears so the block has a stable shape.
	Stages map[string]LatencySummary `json:"stages"`
	// SizeBands summarizes solved-request wall time by matrix size band
	// (bands.go: n < 1k, 1k–100k, > 100k); every band always appears.
	SizeBands map[string]LatencySummary `json:"size_bands"`
}

// CacheStats reports one session cache's counters. The invariant
// size == misses − evictions − drops holds at any quiescent point:
// every entry is created by exactly one miss and removed by exactly one
// eviction or failed-build drop.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Drops counts failed builds removed from the cache (never served
	// as hits).
	Drops uint64 `json:"drops"`
	// EvictSkips counts still-building entries the eviction scan passed
	// over instead of detaching an in-flight Prepare.
	EvictSkips uint64 `json:"evict_skips"`
	Size       int    `json:"size"`
	Capacity   int    `json:"capacity"`
}

// PrepStoreStats reports the durable prep store's traffic: restore,
// spill, error, retry and breaker counters plus the number of blobs
// currently held and the circuit breaker's current state.
type PrepStoreStats struct {
	store.Counters
	Blobs int `json:"blobs"`
	// BreakerState is "closed", "open", "half-open", or "disabled" when
	// the store runs without a breaker. /readyz reports degraded while
	// it is "open".
	BreakerState string `json:"breaker_state"`
}

// errAtCapacity marks work shed at the admission gate.
var errAtCapacity = errors.New("serve: at capacity")

// errPanic marks a request whose build, prepare or solve panicked. The
// panic is contained (recovered, counted in panics_total) and converted
// into this error so the request fails with HTTP 500 while the daemon
// and every other in-flight request keep running.
var errPanic = errors.New("serve: worker panic")

// acquireGateCtx claims an admission slot, waiting at most QueueTimeout
// and aborting when parent ends. It returns nil on success (the caller
// must releaseGate), errAtCapacity on timeout, or the parent's error.
// An uncontended acquire takes the non-blocking fast path, so the warm
// request path pays no timer setup; a parent already cancelled is shed
// before claiming a slot.
func (s *Server) acquireGateCtx(parent context.Context) error {
	if err := parent.Err(); err != nil {
		return err
	}
	select {
	case s.gate <- struct{}{}:
		return nil
	default:
	}
	admit := time.NewTimer(s.cfg.QueueTimeout)
	defer admit.Stop()
	select {
	case s.gate <- struct{}{}:
		return nil
	case <-admit.C:
		return errAtCapacity
	case <-parent.Done():
		return parent.Err()
	}
}

// acquireGate is acquireGateCtx without a client to abort for (the
// cache-build paths). Callers that receive true must releaseGate.
func (s *Server) acquireGate() bool {
	return s.acquireGateCtx(context.Background()) == nil
}

func (s *Server) releaseGate() { <-s.gate }

// solveItem is one right-hand side travelling through a solve batch.
// Items are pooled: the done channel (capacity 1, completion delivered
// by a token send) and the sized float64 buffers survive reuse, so a
// warm request allocates no per-request vectors.
type solveItem struct {
	b, x []float64
	// rctx is the originating request's context; it cancels the solve
	// only when the batch serves no other client.
	rctx context.Context
	res  method.Result
	err  error
	// batchSize, done and the stage timestamps are written by the batch
	// leader before the completion token is sent. enqueuedAt is stamped
	// by the owning handler when the item becomes solve-ready;
	// solveStart/solveEnd bracket the batched solve (zero when the batch
	// was shed before solving).
	batchSize  int
	done       chan struct{}
	enqueuedAt time.Time
	solveStart time.Time
	solveEnd   time.Time
	// Pooled backing storage: the iterate, a generated right-hand side,
	// its known solution, and the A-norm-error difference vector. b/x
	// above point into these on the pooled path (but to request-owned or
	// escaping slices otherwise).
	xBuf, bBuf, xsBuf, dBuf []float64
	// self avoids a slice allocation for single-item batches.
	self [1]*solveItem
	// dctx is the batch's pooled deadline context (see deadline.go); the
	// batch leader's item hosts it, sparing the context.WithTimeout
	// allocations per batch.
	dctx deadlineCtx
}

// getItem returns a recycled solve item.
//
//asyrgs:noalloc
func (s *Server) getItem() *solveItem {
	if v, ok := s.itemPool.Get().(*solveItem); ok {
		select {
		case <-v.done: // drain the previous batch's completion token
		default:
		}
		return v
	}
	//asyrgs:alloc-ok cold pool-miss path; steady state always hits the pool
	return &solveItem{done: make(chan struct{}, 1)}
}

// putItem recycles an item once no other goroutine can touch it (its
// batch completed and the response no longer references its buffers).
// Request-scoped references are dropped here, not at getItem, so an
// idle pool does not pin a finished request's context or a client's
// decoded right-hand side.
//
//asyrgs:noalloc
func (s *Server) putItem(it *solveItem) {
	it.b, it.x, it.rctx = nil, nil, nil
	it.dctx.parent = nil
	it.res, it.err, it.batchSize = method.Result{}, nil, 0
	it.enqueuedAt, it.solveStart, it.solveEnd = time.Time{}, time.Time{}, time.Time{}
	it.self[0] = nil
	s.itemPool.Put(it)
}

// sized returns buf resized to n, reallocating only when it cannot hold
// n entries. Contents are unspecified; callers overwrite.
func sized(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// itemIterate readies the zero initial guess for an item. When the
// response will carry the solution the slice must escape the pool, so it
// is allocated fresh; otherwise the item's recycled buffer is used.
//
//asyrgs:noalloc
func (s *Server) itemIterate(it *solveItem, n int, escapes bool) []float64 {
	if escapes {
		//asyrgs:alloc-ok the solution slice escapes into the response, so it cannot come from the pooled buffer
		return make([]float64, n)
	}
	it.xBuf = sized(it.xBuf, n)
	x := it.xBuf
	for i := range x {
		x[i] = 0
	}
	return x
}

// Server is the asyrgsd HTTP daemon state.
type Server struct {
	cfg         Config
	matrixCache *sessionCache[*sparse.CSR]
	prepCache   *sessionCache[method.PreparedSystem]
	prepStore   *store.PrepStore
	gate        chan struct{}
	mux         *http.ServeMux
	start       time.Time

	// coal is the adaptive size-or-deadline coalescer (batcher.go).
	coal *coalescer

	// retryAfter is the precomputed Retry-After header value for 503
	// responses, derived from the queue timeout at construction.
	retryAfter string

	requests  atomic.Uint64
	solved    atomic.Uint64
	errs      atomic.Uint64
	rejected  atomic.Uint64
	panics    atomic.Uint64
	inFlight  atomic.Int64
	batches   atomic.Uint64
	coalesced atomic.Uint64

	methodMu sync.Mutex
	byMethod map[string]uint64

	// itemPool recycles solveItems with their done channels and sized
	// right-hand-side/iterate buffers across requests, so warm traffic
	// allocates no per-request vectors (O(1) garbage per request
	// regardless of matrix dimension).
	itemPool sync.Pool

	// Latency histograms (µs): per endpoint, per registry method, and
	// per processing stage (stages.go). All maps are built complete at
	// construction and never written afterwards, so handlers read them
	// without locking; the histograms themselves are atomic.
	endpointLat map[string]*stats.AtomicPow2Histogram
	methodLat   map[string]*stats.AtomicPow2Histogram
	stageLat    map[string]*stats.AtomicPow2Histogram
	// bandLat routes solved-request latency by matrix size band
	// (bands.go), so dimension-dominated latency populations are not
	// mixed in one histogram.
	bandLat map[string]*stats.AtomicPow2Histogram
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		matrixCache: newSessionCache[*sparse.CSR](cfg.CacheSize),
		prepCache:   newSessionCache[method.PreparedSystem](cfg.PrepCacheSize),
		prepStore:   cfg.PrepStore,
		gate:        make(chan struct{}, cfg.MaxConcurrent),
		mux:         http.NewServeMux(),
		start:       time.Now(),
		coal:        newCoalescer(cfg),
		byMethod:    map[string]uint64{},
		endpointLat: map[string]*stats.AtomicPow2Histogram{},
		methodLat:   map[string]*stats.AtomicPow2Histogram{},
		stageLat:    map[string]*stats.AtomicPow2Histogram{},
		bandLat:     map[string]*stats.AtomicPow2Histogram{},
	}
	// Retry-After must be a positive integer of seconds; round the queue
	// timeout up so sub-second timeouts still hint a 1s backoff.
	s.retryAfter = strconv.Itoa(int(math.Ceil(cfg.QueueTimeout.Seconds())))
	if s.retryAfter == "0" {
		s.retryAfter = "1"
	}
	if s.prepStore != nil {
		// Evicted prepared systems spill before leaving memory, so LRU
		// pressure demotes state to the store instead of destroying it.
		// The hook runs outside the cache lock; encoding runs on the
		// store's writer goroutine.
		s.prepCache.onEvict = s.spillPrepared
	}
	for _, ep := range endpoints {
		s.endpointLat[ep] = &stats.AtomicPow2Histogram{}
	}
	for _, name := range method.Names() {
		s.methodLat[name] = &stats.AtomicPow2Histogram{}
	}
	for _, st := range stageNames {
		s.stageLat[st] = &stats.AtomicPow2Histogram{}
	}
	for _, band := range bandNames {
		s.bandLat[band] = &stats.AtomicPow2Histogram{}
	}
	s.mux.HandleFunc("POST /solve", s.timed("/solve", s.handleSolve))
	s.mux.HandleFunc("GET /methods", s.timed("/methods", s.handleMethods))
	s.mux.HandleFunc("GET /healthz", s.timed("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.timed("/readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /stats", s.timed("/stats", s.handleStats))
	s.mux.HandleFunc("GET /metrics", s.timed("/metrics", s.handleMetrics))
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// MonotonicClock returns a store.Clock backed by the process monotonic
// clock. It lives here rather than in the store because the solver-tier
// packages (store included) may not read the wall clock themselves —
// the serving layer is where real time is allowed to enter.
func MonotonicClock() store.Clock {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errs.Add(1)
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// reject sheds a request at the admission gate: counted as rejected, not
// as an error, so the errors counter keeps its alerting signal. The 503
// carries a Retry-After derived from the queue timeout — the server's
// own shedding horizon is the honest backoff hint.
func (s *Server) reject(w http.ResponseWriter, format string, args ...any) {
	s.rejected.Add(1)
	w.Header().Set("Retry-After", s.retryAfter)
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe, distinct from liveness: the
// daemon is alive whenever /healthz answers, but reports degraded here
// while the prep store's circuit breaker is open (the durable tier is
// being shed and every prep-cache miss pays a fresh Prepare). Degraded
// is 503 so orchestrators can steer traffic away without restarting a
// healthy process.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.prepStore != nil {
		if state := s.prepStore.BreakerState(); state == "open" {
			w.Header().Set("Retry-After", s.retryAfter)
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"status": "degraded", "reason": "prep-store circuit breaker open",
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMethods(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	var out []entry
	for _, m := range method.All() {
		out = append(out, entry{Name: m.Name(), Kind: m.Kind().String()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshot())
}

// counterSnapshot assembles the counter fields shared by GET /stats and
// GET /metrics. Every field is read from an atomic or under its mutex
// (the per-method map copy, the cache counters), so a snapshot taken
// under concurrent load is free of torn reads: each counter is a value
// that existed at some instant during the call.
func (s *Server) counterSnapshot() Stats {
	s.methodMu.Lock()
	perMethod := make(map[string]uint64, len(s.byMethod))
	for k, v := range s.byMethod {
		perMethod[k] = v
	}
	s.methodMu.Unlock()
	var storeStats *PrepStoreStats
	if s.prepStore != nil {
		storeStats = &PrepStoreStats{
			Counters:     s.prepStore.Counters(),
			Blobs:        s.prepStore.Len(),
			BreakerState: s.prepStore.BreakerState(),
		}
	}
	return Stats{
		Requests:          s.requests.Load(),
		Solved:            s.solved.Load(),
		Errors:            s.errs.Load(),
		Rejected:          s.rejected.Load(),
		Panics:            s.panics.Load(),
		InFlight:          s.inFlight.Load(),
		UptimeSec:         time.Since(s.start).Seconds(),
		Cache:             s.matrixCache.stats(s.cfg.CacheSize),
		PrepCache:         s.prepCache.stats(s.cfg.PrepCacheSize),
		PrepStore:         storeStats,
		Batches:           s.batches.Load(),
		CoalescedRequests: s.coalesced.Load(),
		PerMethod:         perMethod,
	}
}

// snapshot is the full GET /stats reply: the counters plus the latency
// summaries (each histogram snapshot is one atomic pass per bucket).
// GET /metrics skips the summarization and renders the raw histograms
// itself.
func (s *Server) snapshot() Stats {
	st := s.counterSnapshot()
	st.Latency = make(map[string]LatencySummary, len(s.endpointLat))
	for ep, h := range s.endpointLat {
		st.Latency[ep] = summarize(h.Snapshot(), h.Sum())
	}
	st.MethodLatency = make(map[string]LatencySummary)
	for name, h := range s.methodLat {
		if snap := h.Snapshot(); snap.Total() > 0 {
			st.MethodLatency[name] = summarize(snap, h.Sum())
		}
	}
	st.Stages = s.stageSummaries()
	st.SizeBands = s.bandSummaries()
	return st
}

// runBatch executes one solve batch behind the admission gate and
// publishes every item's outcome. It is the only place solves run.
//
// The batch context carries the server's per-solve budget. When the
// batch serves exactly one client it is also derived from that client's
// request context, so an abandoned request stops burning its admission
// slot; a coalesced batch serves several clients, so there one client
// going away must not cancel the others' solve.
func (s *Server) runBatch(ps method.PreparedSystem, opts method.Opts, items []*solveItem) {
	defer func() {
		for _, it := range items {
			it.batchSize = len(items)
			// Completion token instead of close so the channel survives
			// pooling; each item sees exactly one send per batch.
			it.done <- struct{}{}
		}
	}()
	// Contain solver panics: every item (the leader's and each coalesced
	// follower's) gets errPanic and its completion token still arrives —
	// registered after the token defer, so it runs first and the tokens
	// carry the error. The gate-release and in-flight defers below also
	// still run, so a panicking method cannot leak an admission slot.
	defer func() {
		if rec := recover(); rec != nil {
			s.panics.Add(1)
			for _, it := range items {
				it.err = fmt.Errorf("%w: %v", errPanic, rec)
			}
		}
	}()

	// "One client" covers both a solo request and an explicit bs batch:
	// every item then carries the same request context.
	parent := context.Background()
	if items[0].rctx != nil {
		shared := true
		for _, it := range items[1:] {
			if it.rctx != items[0].rctx {
				shared = false
				break
			}
		}
		if shared {
			parent = items[0].rctx
		}
	}

	// Admission gate: bound concurrent solve batches, waiting at most
	// QueueTimeout for a slot and shedding the batch if its only client
	// goes away (or already went away) while queued.
	switch err := s.acquireGateCtx(parent); {
	case err == nil:
		defer s.releaseGate()
	default:
		for _, it := range items {
			it.err = err
		}
		return
	}
	s.inFlight.Add(int64(len(items)))
	defer s.inFlight.Add(-int64(len(items)))
	s.batches.Add(1)
	if len(items) > 1 {
		s.coalesced.Add(uint64(len(items)))
	}

	// The solve budget rides the leader item's pooled deadline context
	// instead of context.WithTimeout: every solver polls Err() between
	// chunks of work, and the pooled form sheds the timer, cancel closure
	// and context allocations per batch (see deadline.go).
	items[0].dctx.reset(parent, s.cfg.SolveTimeout)
	ctx := &items[0].dctx

	// Stage clocks: solveStart/solveEnd bracket the solve itself; the
	// gap from each item's enqueuedAt to solveStart is its queue stage
	// (coalescing wait plus gate wait). Written before the completion
	// token, read by each handler after it.
	solveStart := time.Now()
	for _, it := range items {
		it.solveStart = solveStart
	}
	defer func() {
		end := time.Now()
		for _, it := range items {
			it.solveEnd = end
		}
	}()

	if len(items) == 1 {
		it := items[0]
		it.res, it.err = ps.Solve(ctx, it.b, it.x, opts)
		return
	}
	bs := make([][]float64, len(items))
	xs := make([][]float64, len(items))
	for i, it := range items {
		bs[i] = it.b
		xs[i] = it.x
	}
	results, err := ps.SolveBatch(ctx, bs, xs, opts)
	for i, it := range items {
		if i < len(results) {
			it.res = results[i]
		}
		it.err = err
	}
}

// spillPrepared enqueues ps's prepared state for durable storage; it is
// both the prep cache's eviction hook and the fresh-build spill path.
// Non-persistent methods are skipped. The enqueue is non-blocking and
// encoding runs on the store's writer goroutine, so neither eviction nor
// the request path ever waits on serialization or backend I/O.
func (s *Server) spillPrepared(prepKey string, ps method.PreparedSystem) {
	if s.prepStore == nil {
		return
	}
	m, err := method.Get(ps.Method())
	if err != nil {
		return
	}
	pp, ok := method.AsPersistent(m)
	if !ok {
		return
	}
	s.prepStore.Spill(prepKey, func() ([]byte, error) { return pp.EncodePrepared(ps) })
}

// restorePrepared tries to rebuild a prepared system from the durable
// store. Any failure — no store, non-persistent method, missing or
// corrupted blob, undecodable payload — reports false and the caller
// falls back to a fresh Prepare; a blob whose envelope verified but
// whose payload does not decode is counted as a store error and
// discarded so the next miss rebuilds fresh instead of retrying it.
func (s *Server) restorePrepared(prepKey string, m method.Method, a *sparse.CSR, opts method.Opts) (method.PreparedSystem, bool) {
	if s.prepStore == nil {
		return nil, false
	}
	pp, ok := method.AsPersistent(m)
	if !ok {
		return nil, false
	}
	payload, ok := s.prepStore.Fetch(prepKey)
	if !ok {
		return nil, false
	}
	ps, err := pp.DecodePrepared(a, payload, opts)
	if err != nil {
		s.prepStore.CountError(prepKey)
		return nil, false
	}
	s.prepStore.CountRestore()
	return ps, true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	start := time.Now()

	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Method == "" {
		req.Method = "asyrgs"
	}
	// API clients omitting tol expect a sensible convergence target;
	// fixed-work mode is requested explicitly via fixed_work.
	if req.Tol <= 0 && !req.FixedWork {
		req.Tol = 1e-6
	}
	if len(req.B) > 0 && len(req.Bs) > 0 {
		s.fail(w, http.StatusBadRequest, "b and bs are mutually exclusive")
		return
	}
	// Canonicalize the precision up front: an unknown spelling is a client
	// error, and the canonical form keeps batch and prep-cache keys from
	// splitting on equivalent spellings ("" vs "f64").
	prec, err := method.CanonPrecision(req.Precision)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.Precision = prec
	m, err := method.Get(req.Method)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Per-method latency covers the whole request — cache lookups,
	// queueing at the gate, and the solve itself — which is what a client
	// of that method experiences.
	if hist := s.methodLat[req.Method]; hist != nil {
		defer func() { hist.Observe(uint64(time.Since(start).Microseconds())) }()
	}

	// Phase 1 — prepare (or fetch) the per-matrix state. Both caches use
	// a shared once-latch per key, so a thundering herd for one system
	// builds and prepares it exactly once; the build/prepare closures run
	// under the admission gate, so a burst of *distinct* systems cannot
	// drive setup concurrency past MaxConcurrent either (cache hits skip
	// the gate entirely).
	key := req.Matrix.key()
	buildStart := time.Now()
	a, hit, err := s.matrixCache.getOrBuild(key, func() (a *sparse.CSR, err error) {
		// Recover inside the build closure: a panic here would consume
		// the cache entry's once-latch without resolving it, wedging the
		// key for every future request. Converted to an error, the entry
		// resolves as a failed build and is dropped normally.
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				err = fmt.Errorf("%w: %v", errPanic, rec)
			}
		}()
		if !s.acquireGate() {
			return nil, errAtCapacity
		}
		defer s.releaseGate()
		return req.Matrix.build(s.cfg.MaxDim)
	})
	s.observeStage("build", time.Since(buildStart))
	switch {
	case errors.Is(err, errAtCapacity):
		s.reject(w, "server at capacity (%d batches in flight); retry later", s.cfg.MaxConcurrent)
		return
	case errors.Is(err, errPanic):
		s.fail(w, http.StatusInternalServerError, "building matrix: %v", err)
		return
	case err != nil:
		s.fail(w, http.StatusBadRequest, "building matrix: %v", err)
		return
	}
	if m.Kind() == method.SPD && a.Rows != a.Cols {
		s.fail(w, http.StatusBadRequest, "method %q needs a square system, matrix is %dx%d", req.Method, a.Rows, a.Cols)
		return
	}
	if m.Kind() == method.LeastSquares && a.Rows < a.Cols {
		s.fail(w, http.StatusBadRequest, "method %q needs rows >= cols, matrix is %dx%d", req.Method, a.Rows, a.Cols)
		return
	}
	opts := req.opts()
	prepKey := req.prepKey(key)
	if pk, ok := m.(method.PrepKeyer); ok {
		// A method whose Prepare consumes options contributes exactly
		// those fields to the cache key, so differently-prepared systems
		// never share an entry.
		prepKey += "|" + pk.PrepKey(opts)
	}
	prepStart := time.Now()
	// prepRestored is written at most once, inside the build closure, and
	// read only after getOrBuild returns; the cache's once-latch orders
	// the write before every return, whichever goroutine ran the build.
	var prepRestored bool
	ps, prepHit, err := s.prepCache.getOrBuild(prepKey, func() (ps method.PreparedSystem, err error) {
		// Same once-latch poisoning hazard as the matrix build above: a
		// panicking Prepare must resolve the entry with an error, not
		// wedge the key.
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				err = fmt.Errorf("%w: %v", errPanic, rec)
			}
		}()
		if !s.acquireGate() {
			return nil, errAtCapacity
		}
		defer s.releaseGate()
		// A prep-LRU miss tries the durable store first: restoring skips
		// the Prepare pass entirely (decode validates structure; the
		// store already verified integrity).
		if ps, ok := s.restorePrepared(prepKey, m, a, opts); ok {
			prepRestored = true
			return ps, nil
		}
		// The prepared system is shared by every coalesced waiter and by
		// all future cache hits, so the build must not ride the first
		// arrival's request context: a leader disconnecting mid-Prepare
		// would fail every live follower with context.Canceled. Detach to
		// the server's lifetime, capped by the per-solve budget.
		pctx, cancel := context.WithTimeout(context.Background(), s.cfg.SolveTimeout)
		defer cancel()
		ps, err = method.Prepare(pctx, m, a, opts)
		if err == nil {
			// Spill freshly built state immediately (not only on
			// eviction), so a restart after a crash still finds it.
			s.spillPrepared(prepKey, ps)
		}
		return ps, err
	})
	prepWall := time.Since(prepStart)
	s.observeStage("prepare", prepWall)
	switch {
	case errors.Is(err, errAtCapacity):
		s.reject(w, "server at capacity (%d batches in flight); retry later", s.cfg.MaxConcurrent)
		return
	case errors.Is(err, errPanic):
		s.fail(w, http.StatusInternalServerError, "preparing system: %v", err)
		return
	case err != nil:
		s.fail(w, http.StatusBadRequest, "preparing system: %v", err)
		return
	}

	// Right-hand sides: explicit batch, explicit single, or generated
	// (with a known solution for SPD systems so the response can report
	// the A-norm error). Items come from the pool: on the warm path the
	// iterate and any generated right-hand side land in recycled buffers,
	// so per-request garbage stays O(1) in the matrix dimension.
	var items []*solveItem
	// Recycle on every exit path — success, rejection, or error — so
	// pool churn does not spike exactly when the server is shedding
	// load. By the time the handler returns, each item's batch (if any)
	// has delivered its completion token and the response has been
	// written, so nothing references the pooled buffers (escaping
	// iterates are allocated fresh, see itemIterate).
	defer func() {
		for _, bi := range items {
			s.putItem(bi)
		}
	}()
	var xstar []float64
	explicitBatch := len(req.Bs) > 0
	switch {
	case explicitBatch:
		for i, b := range req.Bs {
			if len(b) != a.Rows {
				s.fail(w, http.StatusBadRequest, "bs[%d] has %d entries, matrix has %d rows", i, len(b), a.Rows)
				return
			}
			it := s.getItem()
			it.b, it.rctx = b, r.Context()
			it.x = s.itemIterate(it, a.Cols, req.IncludeSolution)
			items = append(items, it)
		}
	default:
		it := s.getItem()
		it.rctx = r.Context()
		it.self[0] = it
		items = it.self[:]
		b := req.B
		if len(b) == 0 {
			it.bBuf = sized(it.bBuf, a.Rows)
			b = it.bBuf
			if m.Kind() == method.SPD {
				it.xsBuf = sized(it.xsBuf, a.Cols)
				workload.RHSForSolutionInto(a, req.RHSSeed, b, it.xsBuf)
				xstar = it.xsBuf
			} else {
				workload.RandomRHSInto(req.RHSSeed, b)
			}
		} else if len(b) != a.Rows {
			s.fail(w, http.StatusBadRequest, "right-hand side has %d entries, matrix has %d rows", len(b), a.Rows)
			return
		}
		it.b = b
		it.x = s.itemIterate(it, a.Cols, req.IncludeSolution)
	}

	// Phase 2 — solve. An explicit bs request is already a batch; a
	// single-RHS request is coalesced with concurrent identical requests.
	// The enqueue stamp starts each item's queue stage (coalescing wait
	// plus admission-gate wait, ended by the batch's solveStart).
	enqueuedAt := time.Now()
	for _, bi := range items {
		bi.enqueuedAt = enqueuedAt
	}
	if explicitBatch {
		s.runBatch(ps, opts, items)
	} else {
		s.solveCoalesced(req.batchKey(key), ps, opts, items[0])
	}

	it := items[0]
	// Queue and solve stages, once per request (an explicit batch's
	// items share one batch, so the first item carries the timestamps).
	// A batch shed at the gate never started solving and records neither.
	if !it.solveStart.IsZero() {
		s.observeStage("queue", it.solveStart.Sub(it.enqueuedAt))
		s.observeStage("solve", it.solveEnd.Sub(it.solveStart))
	}
	switch {
	case it.err == nil || errors.Is(it.err, method.ErrNotConverged):
		// A budget-exhausted solve is still a well-formed answer.
	case errors.Is(it.err, errAtCapacity):
		s.reject(w, "server at capacity (%d batches in flight); retry later", s.cfg.MaxConcurrent)
		return
	case errors.Is(it.err, context.DeadlineExceeded):
		s.fail(w, http.StatusGatewayTimeout, "solve cancelled: %v", it.err)
		return
	case errors.Is(it.err, context.Canceled):
		// Only a single-client batch is ever cancelled, and only by its
		// own client going away — shed, not an error.
		s.reject(w, "client went away during solve")
		return
	case errors.Is(it.err, errPanic):
		// A contained worker panic: the daemon survives, the request
		// reports a server fault (the input may be fine; the method is
		// not).
		s.fail(w, http.StatusInternalServerError, "solve failed: %v", it.err)
		return
	default:
		s.fail(w, http.StatusBadRequest, "solve failed: %v", it.err)
		return
	}

	s.solved.Add(1)
	s.observeBand(a.Rows, time.Since(start))
	s.methodMu.Lock()
	s.byMethod[req.Method]++
	s.methodMu.Unlock()

	respondStart := time.Now()
	resp := SolveResponse{
		Method: it.res.Method, Kind: m.Kind().String(), MatrixKey: key,
		CacheHit: hit, PrepHit: prepHit, PrepRestored: prepRestored,
		PrepMS:    float64(prepWall) / float64(time.Millisecond),
		BatchSize: it.batchSize,
		Rows:      a.Rows, Cols: a.Cols,
		Residual: it.res.Residual, Converged: it.res.Converged,
		Sweeps: it.res.Sweeps, Iterations: it.res.Iterations,
		WallMS: float64(it.res.Wall) / float64(time.Millisecond), ObservedTau: it.res.ObservedTau,
		Messages: it.res.Messages, MaxQueue: it.res.MaxQueue,
	}
	if xstar != nil && a.Rows == a.Cols {
		if nx := a.ANorm(xstar); nx > 0 {
			// ‖x−x*‖_A through the item's pooled difference buffer
			// (sparse.ANormErr would allocate an n-vector per request).
			it.dBuf = sized(it.dBuf, len(xstar))
			for i := range it.dBuf {
				it.dBuf[i] = it.x[i] - xstar[i]
			}
			v := a.ANorm(it.dBuf) / nx
			resp.ANormErr = &v
		}
	}
	if explicitBatch {
		for _, bi := range items {
			entry := BatchEntry{Residual: bi.res.Residual, Converged: bi.res.Converged, Sweeps: bi.res.Sweeps}
			if req.IncludeSolution {
				entry.X = bi.x
			}
			resp.Batch = append(resp.Batch, entry)
			if bi.res.Residual > resp.Residual {
				resp.Residual = bi.res.Residual
			}
			resp.Converged = resp.Converged && bi.res.Converged
			if bi.res.Sweeps > resp.Sweeps {
				resp.Sweeps = bi.res.Sweeps
			}
		}
	} else if req.IncludeSolution {
		resp.X = it.x
	}
	writeJSON(w, http.StatusOK, resp)
	s.observeStage("respond", time.Since(respondStart))
}
