package serve

// Allocation regression tests for the pooled warm request path. The
// direct-handler solve path recycles solve items, iterate buffers and
// generated right-hand sides, so a warm request's garbage is O(1) in
// the matrix dimension: the remaining per-request allocations are the
// fixed HTTP/JSON machinery (request decode, response encode — the
// per-request context and timer were removed from the uncontended gate
// path). The tests pin both properties: the allocation count stays
// under a fixed budget, and the allocated bytes per warm request do not
// grow with the problem size.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/race"
)

// discardWriter is a ResponseWriter that drops the body, so the
// measurement excludes recorder bookkeeping (JSON encoding itself still
// runs — it is part of the fixed per-request overhead).
type discardWriter struct {
	h    http.Header
	code int
}

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(code int)        { d.code = code }

// warmRequest drives one /solve request through the handler and fails
// the test on a non-200.
func warmRequest(t testing.TB, h http.Handler, body []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := &discardWriter{h: http.Header{}}
	h.ServeHTTP(w, req)
	if w.code != 0 && w.code != http.StatusOK {
		t.Fatalf("warm request failed with status %d", w.code)
	}
}

// solveBody builds a fixed-work single-RHS request against a generated
// SPD system of dimension n.
func solveBody(t testing.TB, n int) []byte {
	t.Helper()
	body, err := json.Marshal(SolveRequest{
		Matrix:    MatrixSpec{Kind: "randomspd", N: n, NNZ: 4, Seed: 3},
		Method:    "asyrgs",
		FixedWork: true, MaxSweeps: 1, CheckEvery: 1, Workers: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// measureWarm returns the average allocation count and byte volume per
// warm request at dimension n.
func measureWarm(t *testing.T, n, runs int) (allocs, bytesPer float64) {
	t.Helper()
	srv := New(Config{BatchWindow: -1}) // no coalescing window on this path
	h := srv.Handler()
	body := solveBody(t, n)
	warmRequest(t, h, body) // populate matrix + prep caches, warm the pools
	warmRequest(t, h, body)

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		warmRequest(t, h, body)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs),
		float64(after.TotalAlloc-before.TotalAlloc) / float64(runs)
}

func TestWarmRequestGarbageIndependentOfDimension(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under -race")
	}
	const runs = 60
	allocsSmall, bytesSmall := measureWarm(t, 64, runs)
	allocsBig, bytesBig := measureWarm(t, 1024, runs)
	t.Logf("n=64: %.1f allocs, %.0f B/request; n=1024: %.1f allocs, %.0f B/request",
		allocsSmall, bytesSmall, allocsBig, bytesBig)

	// Fixed per-request overhead (decode, encode, handler bookkeeping):
	// ~47 allocations today, after the pooled deadline context shed the
	// per-batch context.WithTimeout machinery. The budget leaves ~30%
	// headroom without letting even a few stray per-request allocations
	// regress silently.
	if allocsBig > 62 {
		t.Fatalf("warm request made %.1f allocations, want the pooled fixed overhead (≤ 62)", allocsBig)
	}
	// The pooled path's byte volume must not scale with the dimension: a
	// 16× larger system used to cost three extra 8 KiB vectors per
	// request (iterate, generated RHS, known solution). With pooling both
	// sizes pay only the fixed machinery; allow 2× for noise where an
	// unpooled path shows >5×.
	if bytesBig > 2*bytesSmall+2048 {
		t.Fatalf("warm request bytes grew with dimension: %.0f B at n=64 vs %.0f B at n=1024", bytesSmall, bytesBig)
	}
}

// TestPooledItemsAreReused pins the mechanism itself: after a warm
// request completes, the next identical request must reuse the pooled
// iterate buffer rather than allocate a new one.
func TestPooledItemsAreReused(t *testing.T) {
	if race.Enabled {
		t.Skip("sync.Pool deliberately drops items under -race")
	}
	srv := New(Config{BatchWindow: -1})
	it := srv.getItem()
	it.xBuf = sized(it.xBuf, 128)
	buf := &it.xBuf[0]
	srv.putItem(it)
	it2 := srv.getItem()
	if len(it2.xBuf) == 0 || &it2.xBuf[0] != buf {
		t.Fatal("recycled item did not retain its iterate buffer")
	}
	// A stale completion token must not leak into the next batch.
	it2.done <- struct{}{}
	srv.putItem(it2)
	it3 := srv.getItem()
	select {
	case <-it3.done:
		t.Fatal("recycled item carried a stale completion token")
	default:
	}
}

// TestChunkKnobReachesSolver checks the serve-level plumbing of the
// claiming-granularity knob: an explicit chunk is accepted and the
// request still runs the exact budget (the direction sequence is
// chunk-invariant, so only accounting can tell the difference).
func TestChunkKnobReachesSolver(t *testing.T) {
	srv := New(Config{BatchWindow: -1})
	for _, chunk := range []int{0, 1, 64} {
		body, _ := json.Marshal(SolveRequest{
			Matrix:    MatrixSpec{Kind: "randomspd", N: 96, NNZ: 4, Seed: 5},
			Method:    "asyrgs",
			FixedWork: true, MaxSweeps: 2, CheckEvery: 2, Workers: 2, Chunk: chunk,
		})
		req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("chunk=%d: status %d: %s", chunk, rec.Code, rec.Body.String())
		}
		var resp SolveResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if want := uint64(2 * 96); resp.Iterations != want {
			t.Fatalf("chunk=%d: %d iterations, want %d", chunk, resp.Iterations, want)
		}
	}
	// A negative chunk is rejected at solver construction, surfacing as a
	// client error rather than a crash.
	body, _ := json.Marshal(SolveRequest{
		Matrix: MatrixSpec{Kind: "randomspd", N: 32, NNZ: 4}, Method: "asyrgs", Chunk: -1,
	})
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("negative chunk: status %d, want 400", rec.Code)
	}
}
