package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func tinyMatrix() (*sparse.CSR, error) { return workload.RandomSPD(10, 3, 1.5, 1), nil }

func TestCacheLRUEviction(t *testing.T) {
	c := newSessionCache[*sparse.CSR](2)
	for i := 0; i < 3; i++ {
		if _, hit, err := c.getOrBuild(fmt.Sprintf("k%d", i), tinyMatrix); hit || err != nil {
			t.Fatalf("k%d: hit=%v err=%v", i, hit, err)
		}
	}
	// k0 is the least recently used and must have been evicted.
	if _, hit, _ := c.getOrBuild("k0", tinyMatrix); hit {
		t.Fatal("k0 should have been evicted")
	}
	hits, misses, evictions, drops, _, size := c.counters()
	if hits != 0 || misses != 4 || evictions < 1 || drops != 0 || size != 2 {
		t.Fatalf("counters: hits=%d misses=%d evictions=%d drops=%d size=%d", hits, misses, evictions, drops, size)
	}
}

func TestCacheTouchRefreshesRecency(t *testing.T) {
	c := newSessionCache[*sparse.CSR](2)
	c.getOrBuild("a", tinyMatrix)
	c.getOrBuild("b", tinyMatrix)
	c.getOrBuild("a", tinyMatrix) // touch a: b becomes LRU
	c.getOrBuild("c", tinyMatrix) // evicts b
	if _, hit, _ := c.getOrBuild("a", tinyMatrix); !hit {
		t.Fatal("a was touched and must survive")
	}
	if _, hit, _ := c.getOrBuild("b", tinyMatrix); hit {
		t.Fatal("b must have been evicted")
	}
}

func TestCacheFailedBuildNotCached(t *testing.T) {
	c := newSessionCache[*sparse.CSR](4)
	boom := errors.New("boom")
	if _, _, err := c.getOrBuild("bad", func() (*sparse.CSR, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	// The failure must not be cached: the next lookup rebuilds.
	if _, hit, err := c.getOrBuild("bad", tinyMatrix); hit || err != nil {
		t.Fatalf("failed build was cached: hit=%v err=%v", hit, err)
	}
}

// TestCacheSharedBuild: concurrent requests for one key run the builder
// exactly once; everyone gets the same matrix.
func TestCacheSharedBuild(t *testing.T) {
	c := newSessionCache[*sparse.CSR](4)
	var builds atomic.Int64
	build := func() (*sparse.CSR, error) {
		builds.Add(1)
		return workload.RandomSPD(50, 4, 1.5, 9), nil
	}
	const clients = 8
	out := make([]*sparse.CSR, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, _, err := c.getOrBuild("shared", build)
			if err != nil {
				t.Error(err)
			}
			out[i] = a
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times, want 1", n)
	}
	for i := 1; i < clients; i++ {
		if out[i] != out[0] {
			t.Fatal("clients received different matrices for one key")
		}
	}
}

// A caller that joins an in-flight build which then fails must receive
// the error as a miss: no hit counted, hit=false. The entry is staged
// exactly as a creator leaves it mid-build (unresolved, build pending),
// so the join path runs deterministically in this goroutine.
func TestCacheFailedJoinCountsNoHit(t *testing.T) {
	c := newSessionCache[*sparse.CSR](4)
	boom := errors.New("boom")
	s := &session[*sparse.CSR]{key: "k", build: func() (*sparse.CSR, error) { return nil, boom }}
	c.items["k"] = c.ll.PushFront(s)
	c.misses++

	_, hit, err := c.getOrBuild("k", func() (*sparse.CSR, error) {
		t.Error("joiner must wait on the in-flight build, not rebuild")
		return nil, nil
	})
	if hit {
		t.Fatal("joining a failed build counted as a hit")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	hits, _, _, _, _, _ := c.counters()
	if hits != 0 {
		t.Fatalf("hits = %d, want 0 (the build failed)", hits)
	}
}

// An arrival in the window between a failed build resolving and its
// builder removing the entry must not be handed the cached error: the
// entry is dropped and rebuilt as a miss.
func TestCacheStaleFailureRebuilt(t *testing.T) {
	c := newSessionCache[*sparse.CSR](4)
	boom := errors.New("boom")
	s := &session[*sparse.CSR]{key: "k", build: func() (*sparse.CSR, error) { return nil, boom }}
	s.await() // resolve the failure; the builder has not yet dropped it
	c.items["k"] = c.ll.PushFront(s)
	c.misses++

	a, hit, err := c.getOrBuild("k", tinyMatrix)
	if err != nil || hit || a == nil {
		t.Fatalf("stale failure replayed: a=%v hit=%v err=%v", a, hit, err)
	}
	hits, misses, evictions, drops, _, size := c.counters()
	if hits != 0 || misses != 2 || drops != 1 || size != 1 {
		t.Fatalf("counters: hits=%d misses=%d drops=%d size=%d", hits, misses, drops, size)
	}
	if want := misses - evictions - drops; uint64(size) != want {
		t.Fatalf("invariant: size=%d, misses-evictions-drops=%d", size, want)
	}
}

// Eviction must pass over a still-building entry: evicting it would
// detach the in-flight build and make the next same-key request
// silently duplicate an expensive Prepare.
func TestCacheEvictionSkipsInFlight(t *testing.T) {
	c := newSessionCache[*sparse.CSR](1)
	started := make(chan struct{})
	release := make(chan struct{})
	var aBuilds atomic.Int64
	creatorDone := make(chan struct{})
	go func() {
		defer close(creatorDone)
		_, _, err := c.getOrBuild("a", func() (*sparse.CSR, error) {
			aBuilds.Add(1)
			close(started)
			<-release
			return tinyMatrix()
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-started

	// Inserting "b" overflows capacity 1, but the in-flight "a" must
	// survive the eviction scan.
	if _, _, err := c.getOrBuild("b", tinyMatrix); err != nil {
		t.Fatal(err)
	}
	_, _, _, _, skips, size := c.counters()
	if skips == 0 {
		t.Fatal("eviction scan did not record skipping the in-flight entry")
	}
	if size != 2 {
		t.Fatalf("size = %d, want 2 (temporarily over capacity)", size)
	}

	// A second request for "a" must join the one in-flight build.
	joinerDone := make(chan struct{})
	go func() {
		defer close(joinerDone)
		_, hit, err := c.getOrBuild("a", func() (*sparse.CSR, error) {
			aBuilds.Add(1)
			return tinyMatrix()
		})
		if err != nil || !hit {
			t.Errorf("joiner: hit=%v err=%v", hit, err)
		}
	}()
	close(release)
	<-creatorDone
	<-joinerDone
	if n := aBuilds.Load(); n != 1 {
		t.Fatalf("'a' built %d times, want 1 (eviction duplicated the build)", n)
	}

	// With everything resolved, the next insertion trims back to cap.
	if _, _, err := c.getOrBuild("c", tinyMatrix); err != nil {
		t.Fatal(err)
	}
	hits, misses, evictions, drops, _, size := c.counters()
	if size != 1 {
		t.Fatalf("size = %d after trim, want 1", size)
	}
	if want := misses - evictions - drops; uint64(size) != want {
		t.Fatalf("invariant: size=%d misses=%d evictions=%d drops=%d", size, misses, evictions, drops)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (the joiner)", hits)
	}
}

// The accounting invariant size == misses − evictions − drops must hold
// at quiescence under concurrent hits, misses, failures, shared builds
// and evictions — the combined regression for the three accounting
// fixes (failed-join hits, stale-failure replay, in-flight eviction).
func TestCacheCounterInvariantUnderChurn(t *testing.T) {
	c := newSessionCache[int](4)
	boom := errors.New("boom")
	const goroutines, ops, keys = 8, 300, 11
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("k%d", (g*7+i*13)%keys)
				fail := (g+i)%5 == 0
				v, hit, err := c.getOrBuild(key, func() (int, error) {
					if fail {
						return 0, boom
					}
					return 1, nil
				})
				if hit && (err != nil || v != 1) {
					t.Errorf("hit with v=%d err=%v", v, err)
				}
			}
		}()
	}
	wg.Wait()
	hits, misses, evictions, drops, _, size := c.counters()
	if want := misses - evictions - drops; uint64(size) != want {
		t.Fatalf("invariant broken: size=%d misses=%d evictions=%d drops=%d (want size=%d)",
			size, misses, evictions, drops, want)
	}
	if size != c.len() || size > 2*keys {
		t.Fatalf("size bookkeeping: size=%d len=%d", size, c.len())
	}
	_ = hits
}

// onEvict must observe every successfully built entry that capacity
// eviction removes — the prep cache's spill-on-eviction hook — and must
// not observe dropped failures.
func TestCacheOnEvictHook(t *testing.T) {
	c := newSessionCache[int](1)
	var evicted []string
	c.onEvict = func(key string, v int) {
		if v != 1 {
			t.Errorf("onEvict(%q, %d)", key, v)
		}
		evicted = append(evicted, key)
	}
	one := func() (int, error) { return 1, nil }
	c.getOrBuild("a", one)
	c.getOrBuild("bad", func() (int, error) { return 0, errors.New("boom") })
	c.getOrBuild("b", one) // evicts a
	c.getOrBuild("c", one) // evicts b
	if len(evicted) != 2 || evicted[0] != "a" || evicted[1] != "b" {
		t.Fatalf("evicted = %v, want [a b]", evicted)
	}
}

func TestMatrixSpecKeyStability(t *testing.T) {
	a := MatrixSpec{Kind: "randomspd", N: 100, NNZ: 6, Seed: 3}
	b := MatrixSpec{Kind: "randomspd", N: 100, NNZ: 6, Seed: 3}
	if a.key() != b.key() {
		t.Fatal("identical specs must share a key")
	}
	for _, other := range []MatrixSpec{
		{Kind: "randomspd", N: 101, NNZ: 6, Seed: 3},
		{Kind: "randomspd", N: 100, NNZ: 6, Seed: 4},
		{Kind: "laplacian2d", N: 100},
		{Kind: "mm", MM: "x"},
	} {
		if a.key() == other.key() {
			t.Fatalf("distinct specs collide: %+v vs %+v", a, other)
		}
	}
}
