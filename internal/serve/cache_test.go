package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func tinyMatrix() (*sparse.CSR, error) { return workload.RandomSPD(10, 3, 1.5, 1), nil }

func TestCacheLRUEviction(t *testing.T) {
	c := newSessionCache[*sparse.CSR](2)
	for i := 0; i < 3; i++ {
		if _, hit, err := c.getOrBuild(fmt.Sprintf("k%d", i), tinyMatrix); hit || err != nil {
			t.Fatalf("k%d: hit=%v err=%v", i, hit, err)
		}
	}
	// k0 is the least recently used and must have been evicted.
	if _, hit, _ := c.getOrBuild("k0", tinyMatrix); hit {
		t.Fatal("k0 should have been evicted")
	}
	hits, misses, evictions, size := c.counters()
	if hits != 0 || misses != 4 || evictions < 1 || size != 2 {
		t.Fatalf("counters: hits=%d misses=%d evictions=%d size=%d", hits, misses, evictions, size)
	}
}

func TestCacheTouchRefreshesRecency(t *testing.T) {
	c := newSessionCache[*sparse.CSR](2)
	c.getOrBuild("a", tinyMatrix)
	c.getOrBuild("b", tinyMatrix)
	c.getOrBuild("a", tinyMatrix) // touch a: b becomes LRU
	c.getOrBuild("c", tinyMatrix) // evicts b
	if _, hit, _ := c.getOrBuild("a", tinyMatrix); !hit {
		t.Fatal("a was touched and must survive")
	}
	if _, hit, _ := c.getOrBuild("b", tinyMatrix); hit {
		t.Fatal("b must have been evicted")
	}
}

func TestCacheFailedBuildNotCached(t *testing.T) {
	c := newSessionCache[*sparse.CSR](4)
	boom := errors.New("boom")
	if _, _, err := c.getOrBuild("bad", func() (*sparse.CSR, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	// The failure must not be cached: the next lookup rebuilds.
	if _, hit, err := c.getOrBuild("bad", tinyMatrix); hit || err != nil {
		t.Fatalf("failed build was cached: hit=%v err=%v", hit, err)
	}
}

// TestCacheSharedBuild: concurrent requests for one key run the builder
// exactly once; everyone gets the same matrix.
func TestCacheSharedBuild(t *testing.T) {
	c := newSessionCache[*sparse.CSR](4)
	var builds atomic.Int64
	build := func() (*sparse.CSR, error) {
		builds.Add(1)
		return workload.RandomSPD(50, 4, 1.5, 9), nil
	}
	const clients = 8
	out := make([]*sparse.CSR, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, _, err := c.getOrBuild("shared", build)
			if err != nil {
				t.Error(err)
			}
			out[i] = a
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times, want 1", n)
	}
	for i := 1; i < clients; i++ {
		if out[i] != out[0] {
			t.Fatal("clients received different matrices for one key")
		}
	}
}

func TestMatrixSpecKeyStability(t *testing.T) {
	a := MatrixSpec{Kind: "randomspd", N: 100, NNZ: 6, Seed: 3}
	b := MatrixSpec{Kind: "randomspd", N: 100, NNZ: 6, Seed: 3}
	if a.key() != b.key() {
		t.Fatal("identical specs must share a key")
	}
	for _, other := range []MatrixSpec{
		{Kind: "randomspd", N: 101, NNZ: 6, Seed: 3},
		{Kind: "randomspd", N: 100, NNZ: 6, Seed: 4},
		{Kind: "laplacian2d", N: 100},
		{Kind: "mm", MM: "x"},
	} {
		if a.key() == other.key() {
			t.Fatalf("distinct specs collide: %+v vs %+v", a, other)
		}
	}
}
