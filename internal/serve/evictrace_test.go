package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/kaczmarz"
)

// TestPrepCacheEvictionRace: with a prepared-system LRU of capacity 1,
// concurrent solves on two matrices force evictions to race in-flight
// coalesced batches. The once-latch contract must hold regardless: no
// panic, every request answered, and exactly one preparation per
// prep-cache miss (an evicted entry's in-flight build completes and is
// used by its waiters; it is never re-run, and a fresh miss builds a
// fresh entry). Run under -race this is the eviction/coalescing
// synchronization regression test.
func TestPrepCacheEvictionRace(t *testing.T) {
	srv := New(Config{CacheSize: 4, PrepCacheSize: 1, MaxConcurrent: 2, BatchWindow: 5 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	specs := []MatrixSpec{
		{Kind: "randomspd", N: 100, NNZ: 5, Seed: 31},
		{Kind: "randomspd", N: 100, NNZ: 5, Seed: 32},
	}
	methods := []string{"asyrgs", "kaczmarz"}
	prepsBefore := core.PrepCount() + kaczmarz.PrepCount()

	const clients, perClient = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// Independent parities cover the full 2 matrices × 2 methods
				// cross product of prep keys within every client.
				spec, methodName := specs[i%2], methods[(c+i/2)%2]
				budget := 2000
				if methodName == "kaczmarz" {
					budget = 80000
				}
				body, _ := json.Marshal(SolveRequest{
					Matrix: spec, Method: methodName,
					Tol: 1e-6, MaxSweeps: budget, Workers: 2,
					RHSSeed: uint64(c*perClient + i),
				})
				resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var out SolveResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d req %d: status %d", c, i, resp.StatusCode)
					return
				}
				if !out.Converged {
					errs <- fmt.Errorf("client %d req %d did not converge: %+v", c, i, out)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var stats Stats
	getJSON(t, ts, "/stats", &stats)
	if stats.Solved != clients*perClient {
		t.Fatalf("solved %d, want %d", stats.Solved, clients*perClient)
	}
	// Four distinct prep keys (2 matrices × 2 methods) through a cache of
	// one entry: eviction must have churned.
	if stats.PrepCache.Misses < 4 {
		t.Fatalf("prep cache never churned: %+v", stats.PrepCache)
	}
	if stats.PrepCache.Size != 1 {
		t.Fatalf("prep cache exceeded its capacity: %+v", stats.PrepCache)
	}
	if stats.PrepCache.Evictions != stats.PrepCache.Misses-1 {
		t.Fatalf("every miss beyond the first must evict: %+v", stats.PrepCache)
	}
	// The exactness invariant: one preparation per miss, none double-run
	// by an eviction racing the build, none lost.
	prepped := core.PrepCount() + kaczmarz.PrepCount() - prepsBefore
	if prepped != stats.PrepCache.Misses {
		t.Fatalf("preparations (%d) != prep-cache misses (%d): eviction raced a build",
			prepped, stats.PrepCache.Misses)
	}
}
