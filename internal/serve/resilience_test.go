package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/fault"
	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/store"
)

// panicSolveMethod panics inside Solve — on the batch path, behind the
// admission gate.
type panicSolveMethod struct{}

func (panicSolveMethod) Name() string      { return "panic-solve" }
func (panicSolveMethod) Kind() method.Kind { return method.SPD }
func (panicSolveMethod) Solve(context.Context, *sparse.CSR, []float64, []float64, method.Opts) (method.Result, error) {
	panic("injected solver panic")
}

// panicPrepMethod panics inside Prepare — inside the prep cache's
// once-latched build closure, the poisoning hazard.
type panicPrepMethod struct{}

func (panicPrepMethod) Name() string      { return "panic-prepare" }
func (panicPrepMethod) Kind() method.Kind { return method.SPD }
func (panicPrepMethod) Solve(context.Context, *sparse.CSR, []float64, []float64, method.Opts) (method.Result, error) {
	panic("unreachable: prepare panics first")
}
func (panicPrepMethod) Prepare(context.Context, *sparse.CSR, method.Opts) (method.PreparedSystem, error) {
	panic("injected prepare panic")
}

var registerPanicMethodsOnce sync.Once

func registerPanicMethods() {
	registerPanicMethodsOnce.Do(func() {
		method.Register(panicSolveMethod{})
		method.Register(panicPrepMethod{})
	})
}

// TestPanicInSolveContained: a panicking solver answers 500, counts in
// panics, and leaves the daemon fully serviceable — including the
// admission slot the panicking batch held.
func TestPanicInSolveContained(t *testing.T) {
	registerPanicMethods()
	ts := newTestServer(t, Config{MaxConcurrent: 1})

	spec := MatrixSpec{Kind: "laplacian2d", N: 4}
	_, resp := postSolve(t, ts, SolveRequest{Matrix: spec, Method: "panic-solve", Tol: 1e-6})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking solve: status %d, want 500", resp.StatusCode)
	}

	// The daemon survived and the single admission slot was released:
	// a normal solve on the same matrix must succeed.
	out, resp := postSolve(t, ts, SolveRequest{Matrix: spec, Method: "cg", Tol: 1e-8})
	if resp.StatusCode != http.StatusOK || !out.Converged {
		t.Fatalf("post-panic solve: status %d, %+v", resp.StatusCode, out)
	}
	var st Stats
	getJSON(t, ts, "/stats", &st)
	if st.Panics != 1 {
		t.Fatalf("stats.Panics = %d, want 1", st.Panics)
	}
}

// TestPanicInPrepareContained: a panic inside the once-latched prep
// build must resolve the cache entry with an error (500), not wedge the
// key — a second request re-runs the build instead of hanging forever.
func TestPanicInPrepareContained(t *testing.T) {
	registerPanicMethods()
	ts := newTestServer(t, Config{})

	spec := MatrixSpec{Kind: "laplacian2d", N: 4}
	for i := 1; i <= 2; i++ {
		_, resp := postSolve(t, ts, SolveRequest{Matrix: spec, Method: "panic-prepare", Tol: 1e-6})
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500", i, resp.StatusCode)
		}
	}
	var st Stats
	getJSON(t, ts, "/stats", &st)
	if st.Panics != 2 {
		t.Fatalf("stats.Panics = %d, want 2 (one per rebuilt entry)", st.Panics)
	}
	// And the matrix itself is fine for healthy methods.
	out, resp := postSolve(t, ts, SolveRequest{Matrix: spec, Method: "cg", Tol: 1e-8})
	if resp.StatusCode != http.StatusOK || !out.Converged {
		t.Fatalf("healthy solve after prepare panics: status %d, %+v", resp.StatusCode, out)
	}
}

// getReadyz fetches /readyz without the 200-only helper.
func getReadyz(t *testing.T, ts *httptest.Server) (int, map[string]string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestReadyzNoStore: without a prep store there is no degraded mode.
func TestReadyzNoStore(t *testing.T) {
	ts := newTestServer(t, Config{})
	code, body := getReadyz(t, ts)
	if code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz = %d %v, want 200 ready", code, body)
	}
}

// TestReadyzTracksBreaker drives the full degradation cycle: ready →
// breaker trips on a dead backend → degraded (503, distinct from the
// still-green /healthz) → backend recovers, probe closes the breaker →
// ready again.
func TestReadyzTracksBreaker(t *testing.T) {
	var mu sync.Mutex
	now := time.Duration(0)
	clock := func() time.Duration { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now += d; mu.Unlock() }

	fb := store.NewFaultBackend(store.NewMemory(), fault.Config{})
	ps := store.NewPrepStoreWith(fb, store.Options{
		Breaker: store.BreakerConfig{Failures: 1, Probe: time.Second, Clock: clock},
	})
	defer ps.Close()
	ts := newTestServer(t, Config{PrepStore: ps})

	if code, _ := getReadyz(t, ts); code != http.StatusOK {
		t.Fatalf("fresh server readyz = %d, want 200", code)
	}

	fb.SetDown(true)
	ps.Fetch("k") // one failure trips the Failures=1 breaker
	code, body := getReadyz(t, ts)
	if code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("readyz with open breaker = %d %v, want 503 degraded", code, body)
	}
	// Liveness is unchanged: degraded is not dead.
	var health map[string]string
	getJSON(t, ts, "/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz during degradation: %v", health)
	}
	var st Stats
	getJSON(t, ts, "/stats", &st)
	if st.PrepStore == nil || st.PrepStore.BreakerState != "open" {
		t.Fatalf("stats breaker state = %+v, want open", st.PrepStore)
	}

	fb.SetDown(false)
	advance(2 * time.Second)
	ps.Fetch("k") // the probe: a clean miss closes the breaker
	if code, body := getReadyz(t, ts); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz after recovery = %d %v, want 200 ready", code, body)
	}
}
