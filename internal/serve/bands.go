package serve

// Per-matrix-size-band request latency. Solve latency is dominated by
// the system's dimension, so one aggregate latency histogram mixes
// incomparable populations; routing each solved request into a size band
// keeps a small-system regression visible under large-system traffic
// and vice versa. Bands are fixed (three covers the regimes the bench
// grids exercise: toy, cache-resident, memory-bound) so the exposition
// shape is stable. Summaries appear as the "size_bands" block of GET
// /stats; the raw cumulative histograms as
// asyrgsd_sizeband_duration_seconds on /metrics.

import "time"

// bandNames fixes the band set and its exposition order.
var bandNames = []string{"lt1k", "1k-100k", "gt100k"}

// bandFor buckets a system by row count: n < 1k, 1k ≤ n ≤ 100k,
// n > 100k.
func bandFor(rows int) string {
	switch {
	case rows < 1_000:
		return "lt1k"
	case rows <= 100_000:
		return "1k-100k"
	default:
		return "gt100k"
	}
}

// observeBand records one solved request's wall time into its matrix's
// size band. The histogram map is built complete at construction, so the
// lookup needs no lock.
func (s *Server) observeBand(rows int, d time.Duration) {
	s.bandLat[bandFor(rows)].ObserveDuration(d)
}

// bandSummaries builds the /stats size_bands block: every band always
// appears, so dashboards see a stable shape from the first request.
func (s *Server) bandSummaries() map[string]LatencySummary {
	out := make(map[string]LatencySummary, len(bandNames))
	for _, band := range bandNames {
		h := s.bandLat[band]
		out[band] = summarize(h.Snapshot(), h.Sum())
	}
	return out
}
