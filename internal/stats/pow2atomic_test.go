package stats

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPow2Bucket(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 62, 63}, {1<<63 + 5, 64},
	}
	for _, c := range cases {
		if got := Pow2Bucket(c.v); got != c.want {
			t.Fatalf("Pow2Bucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestAtomicPow2HistogramObserveAndSnapshot(t *testing.T) {
	var h AtomicPow2Histogram
	for _, v := range []uint64{0, 1, 3, 100, 100, 5000} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Total() != 6 {
		t.Fatalf("total = %d, want 6", snap.Total())
	}
	if h.Sum() != 0+1+3+100+100+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if snap.Counts[0] != 1 || snap.Counts[1] != 1 || snap.Counts[2] != 1 {
		t.Fatalf("low buckets wrong: %v", snap.Counts)
	}
	// 100 falls in [64,128) = bucket 7; 5000 in [4096,8192) = bucket 13.
	if snap.Counts[7] != 2 || snap.Counts[13] != 1 {
		t.Fatalf("high buckets wrong: %v", snap.Counts)
	}
	if len(snap.Counts) != 14 {
		t.Fatalf("snapshot not trimmed to top bucket: len %d", len(snap.Counts))
	}
}

func TestAtomicPow2HistogramConcurrent(t *testing.T) {
	var h AtomicPow2Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Total(); got != workers*per {
		t.Fatalf("lost observations: %d of %d", got, workers*per)
	}
}

func TestPow2HistogramQuantile(t *testing.T) {
	// 10 zeros, 10 values in [4,8): p50 is 0, p75+ interpolates in bucket 3.
	h := Pow2Histogram{Counts: []uint64{10, 0, 0, 10}}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("p50 = %v, want 0", q)
	}
	for _, q := range []float64{0.75, 0.9, 0.99} {
		v := h.Quantile(q)
		if v < 4 || v > 8 {
			t.Fatalf("q%.2f = %v, want within bucket [4,8]", q, v)
		}
	}
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 = %v, want the bucket's upper edge 8", q)
	}
	if q := (Pow2Histogram{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

// TestQuantileBoundedByUpperBoundProperty: the interpolated quantile never
// exceeds the conservative QuantileUpperBound, and is monotone in q.
func TestQuantileBoundedByUpperBoundProperty(t *testing.T) {
	f := func(raw []uint16, q10 uint8) bool {
		counts := make([]uint64, len(raw))
		for i, v := range raw {
			counts[i] = uint64(v % 100)
		}
		h := Pow2Histogram{Counts: counts}
		if h.Total() == 0 {
			return true
		}
		q := float64(q10%11) / 10
		v := h.Quantile(q)
		if v > float64(h.QuantileUpperBound(q)) && h.QuantileUpperBound(q) != 0 {
			return false
		}
		return v <= h.Quantile(1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
