// Package stats provides the small summary-statistics toolkit the
// experiment harness uses: streaming mean/variance, quantiles, and
// power-of-two histograms for delay distributions. The paper's conclusion
// argues that the worst-case delay τ is a pessimistic summary of real
// executions and that delay *distributions* are more descriptive; this
// package turns the solver's measured histograms into reportable numbers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds streaming moments of a sample.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary (Welford's algorithm).
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Summary) Max() float64 { return s.max }

// String renders "mean ± std [min, max] (n)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.3g [%.4g, %.4g] (n=%d)", s.Mean(), s.Std(), s.min, s.max, s.n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation; xs is copied, not mutated.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Pow2Histogram interprets counts as a power-of-two histogram (bucket 0 =
// value 0, bucket k ≥ 1 = values in [2^(k-1), 2^k)), the format produced
// by core.Solver.DelayHistogram.
type Pow2Histogram struct {
	Counts []uint64
}

// Total returns the number of observations.
func (h Pow2Histogram) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// FractionZero returns the fraction of observations equal to zero — for a
// delay histogram, the fraction of perfectly fresh reads.
func (h Pow2Histogram) FractionZero() float64 {
	t := h.Total()
	if t == 0 || len(h.Counts) == 0 {
		return 0
	}
	return float64(h.Counts[0]) / float64(t)
}

// QuantileUpperBound returns an upper bound on the q-quantile: the upper
// edge of the first bucket whose cumulative count reaches q·total.
func (h Pow2Histogram) QuantileUpperBound(q float64) uint64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(t)))
	var cum uint64
	for k, c := range h.Counts {
		cum += c
		if cum >= target {
			if k == 0 {
				return 0
			}
			return 1 << uint(k) // upper edge of bucket k
		}
	}
	if n := len(h.Counts); n > 0 {
		return 1 << uint(n)
	}
	return 0
}

// MeanUpperBound returns an upper bound on the mean using each bucket's
// upper edge.
func (h Pow2Histogram) MeanUpperBound() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	var sum float64
	for k, c := range h.Counts {
		if k == 0 {
			continue
		}
		sum += float64(c) * float64(uint64(1)<<uint(k))
	}
	return sum / float64(t)
}

// String renders the non-empty buckets compactly:
// "0:123 [1,2):45 [2,4):6 …".
func (h Pow2Histogram) String() string {
	var b strings.Builder
	for k, c := range h.Counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if k == 0 {
			fmt.Fprintf(&b, "0:%d", c)
		} else {
			fmt.Fprintf(&b, "[%d,%d):%d", uint64(1)<<uint(k-1), uint64(1)<<uint(k), c)
		}
	}
	if b.Len() == 0 {
		return "(empty)"
	}
	return b.String()
}
