package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Fatalf("mean = %v n = %d", s.Mean(), s.N())
	}
	if math.Abs(s.Var()-2.5) > 1e-12 {
		t.Fatalf("var = %v, want 2.5", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("range [%v,%v]", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 {
		t.Fatal("empty summary should be zero")
	}
	s.Add(7)
	if s.Mean() != 7 || s.Var() != 0 || s.Min() != 7 || s.Max() != 7 {
		t.Fatal("single-sample summary wrong")
	}
}

func TestSummaryMatchesNaiveProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) < 2 {
			return true
		}
		var s Summary
		var sum float64
		for _, v := range xs {
			s.Add(v)
			sum += v
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, v := range xs {
			ss += (v - mean) * (v - mean)
		}
		naiveVar := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(naiveVar))
		return math.Abs(s.Mean()-mean) < 1e-9*math.Max(1, math.Abs(mean)) &&
			math.Abs(s.Var()-naiveVar) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestPow2HistogramBasics(t *testing.T) {
	h := Pow2Histogram{Counts: []uint64{90, 5, 3, 2}}
	if h.Total() != 100 {
		t.Fatalf("Total = %d", h.Total())
	}
	if got := h.FractionZero(); got != 0.9 {
		t.Fatalf("FractionZero = %v", got)
	}
	// 90% of mass is at zero, so the 0.5-quantile bound is 0.
	if got := h.QuantileUpperBound(0.5); got != 0 {
		t.Fatalf("q50 bound = %d", got)
	}
	// The 0.99 quantile needs 99 observations: 90+5+3 = 98 < 99, so it
	// lands in bucket 3 → upper edge 8.
	if got := h.QuantileUpperBound(0.99); got != 8 {
		t.Fatalf("q99 bound = %d, want 8", got)
	}
	mean := h.MeanUpperBound()
	want := (5.0*2 + 3.0*4 + 2.0*8) / 100
	if math.Abs(mean-want) > 1e-12 {
		t.Fatalf("mean bound = %v, want %v", mean, want)
	}
	s := h.String()
	if !strings.Contains(s, "0:90") || !strings.Contains(s, "[4,8):2") {
		t.Fatalf("String = %q", s)
	}
}

func TestPow2HistogramEmpty(t *testing.T) {
	h := Pow2Histogram{}
	if h.Total() != 0 || h.FractionZero() != 0 || h.QuantileUpperBound(0.5) != 0 || h.MeanUpperBound() != 0 {
		t.Fatal("empty histogram should be all zeros")
	}
	if h.String() != "(empty)" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestQuantileUpperBoundMonotoneProperty(t *testing.T) {
	f := func(counts []uint16) bool {
		if len(counts) > 20 {
			counts = counts[:20]
		}
		h := Pow2Histogram{Counts: make([]uint64, len(counts))}
		for i, c := range counts {
			h.Counts[i] = uint64(c)
		}
		prev := uint64(0)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			b := h.QuantileUpperBound(q)
			if b < prev {
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
