package stats

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Pow2Bucket returns the histogram bucket of a value under the package's
// power-of-two convention: bucket 0 holds the value 0, bucket k ≥ 1 holds
// values in [2^(k-1), 2^k).
func Pow2Bucket(v uint64) int { return bits.Len64(v) }

// AtomicPow2Histogram is a fixed-size power-of-two histogram safe for
// concurrent Observe calls — the recording shape the serving layer and
// the load generator use for request latencies (in microseconds). It
// shares the bucket convention of Pow2Histogram, which a Snapshot
// returns for reporting.
//
// All state is atomic: Observe is lock-free, and Snapshot reads each
// bucket atomically in one pass so the quantiles computed from it are
// internally consistent (no torn multi-word reads; concurrent Observes
// land either wholly before or wholly after the snapshot's pass over
// their bucket).
type AtomicPow2Histogram struct {
	counts [65]atomic.Uint64 // bucket 64 holds values ≥ 2^63
	sum    atomic.Uint64
}

// Observe folds one observation into the histogram.
func (h *AtomicPow2Histogram) Observe(v uint64) {
	h.counts[Pow2Bucket(v)].Add(1)
	h.sum.Add(v)
}

// ObserveDuration folds one duration into the histogram under the
// package's latency convention (microseconds); negative durations clamp
// to zero so a stepped-on monotonic clock cannot corrupt the buckets.
func (h *AtomicPow2Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d.Microseconds()))
}

// Sum returns the running total of all observed values.
func (h *AtomicPow2Histogram) Sum() uint64 { return h.sum.Load() }

// Snapshot returns the current counts as a Pow2Histogram, trimmed to the
// highest non-empty bucket.
func (h *AtomicPow2Histogram) Snapshot() Pow2Histogram {
	counts := make([]uint64, len(h.counts))
	top := 0
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		if counts[i] != 0 {
			top = i
		}
	}
	return Pow2Histogram{Counts: counts[:top+1]}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) estimated by linear
// interpolation within the bucket that contains it: bucket k ≥ 1 spans
// [2^(k-1), 2^k), and the returned value assumes observations are spread
// uniformly across the bucket. Unlike QuantileUpperBound this is a point
// estimate, not a bound; it is exact for bucket 0 (the value 0) and never
// exceeds the bucket's upper edge. Returns 0 for an empty histogram.
func (h Pow2Histogram) Quantile(q float64) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(t)
	if target < 1 {
		target = 1
	}
	var cum float64
	for k, c := range h.Counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc >= target {
			if k == 0 {
				return 0
			}
			lo := float64(uint64(1) << uint(k-1))
			return lo + (target-cum)/fc*lo // lo + frac·(hi−lo), hi = 2·lo
		}
		cum += fc
	}
	// Rounding pushed the target past the last bucket: return that
	// bucket's upper edge (bucket k spans up to 2^k).
	return math.Ldexp(1, len(h.Counts)-1)
}
