// Package theory evaluates the convergence bounds proved in the paper:
// equation (2) for synchronous Randomized Gauss–Seidel, Theorems 2 and 3
// for the consistent-read asynchronous model, Theorem 4 for the
// inconsistent-read model, and Theorem 5 for the asynchronous least-squares
// iteration. The experiment harness compares measured error trajectories
// against these curves, and the solvers use OptimalBeta to pick step sizes.
package theory

import (
	"fmt"
	"math"

	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// Rho returns ρ = (1/n)‖A‖∞ = max_l (1/n) Σ_r |A_lr|, the interference
// parameter of the consistent-read bounds (Theorems 2 and 3).
func Rho(a *sparse.CSR) float64 {
	if a.Rows == 0 {
		return 0
	}
	return a.InfNorm() / float64(a.Rows)
}

// Rho2 returns ρ₂ = max_l (1/n) Σ_r A_lr², the interference parameter of
// the inconsistent-read bound (Theorem 4). For unit-diagonal matrices
// ρ₂ ≤ ρ always holds.
func Rho2(a *sparse.CSR) float64 {
	if a.Rows == 0 {
		return 0
	}
	var max float64
	for i := 0; i < a.Rows; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Vals[k] * a.Vals[k]
		}
		if s > max {
			max = s
		}
	}
	return max / float64(a.Rows)
}

// NuTau returns ν_τ(β) = 2β − β² − 2ρτβ², the progress coefficient of the
// consistent-read bound (Theorem 3). With β = 1 it reduces to Theorem 2's
// ν_τ = 1 − 2ρτ. The bound is useful only when the result is positive.
func NuTau(beta, rho float64, tau int) float64 {
	return 2*beta - beta*beta - 2*rho*float64(tau)*beta*beta
}

// OmegaTau returns ω_τ(β) = 2β(1 − β − ρ₂τ²β/2), the progress coefficient
// of the inconsistent-read bound (Theorem 4). Positive only for β strictly
// below 1.
func OmegaTau(beta, rho2 float64, tau int) float64 {
	t := float64(tau)
	return 2 * beta * (1 - beta - rho2*t*t*beta/2)
}

// OptimalBeta returns β̃ = 1/(1+2ρτ), the step size maximising ν_τ(β)
// (Theorem 3 discussion). It yields ν_τ(β̃) = 1/(1+2ρτ).
func OptimalBeta(rho float64, tau int) float64 {
	return 1 / (1 + 2*rho*float64(tau))
}

// OptimalBetaInconsistent returns the β maximising ω_τ(β) = 2β − 2β²(1 +
// ρ₂τ²/2), namely β* = 1/(2 + ρ₂τ²).
func OptimalBetaInconsistent(rho2 float64, tau int) float64 {
	t := float64(tau)
	return 1 / (2 + rho2*t*t)
}

// Chi returns χ(β) = ρτ²β²λmax(1−λmax/n)^(−2τ)/n, the residual-staleness
// term of Theorem 3(b) (Theorem 2(b) is the β=1 case).
func Chi(beta, rho float64, tau int, lambdaMax float64, n int) float64 {
	t := float64(tau)
	dmax := 1 - lambdaMax/float64(n)
	return rho * t * t * beta * beta * lambdaMax * math.Pow(dmax, -2*t) / float64(n)
}

// Psi returns ψ(β) = ρ₂τ³β²λmax(1−λmax/n)^(−2τ)/n, Theorem 4(b)'s
// staleness term.
func Psi(beta, rho2 float64, tau int, lambdaMax float64, n int) float64 {
	t := float64(tau)
	dmax := 1 - lambdaMax/float64(n)
	return rho2 * t * t * t * beta * beta * lambdaMax * math.Pow(dmax, -2*t) / float64(n)
}

// EpochLength returns T₀ = ⌈log(1/2)/log(1−λmax/n)⌉ ≈ 0.693·n/λmax, the
// number of iterations after which Theorems 2–4 guarantee a constant-factor
// reduction of the expected squared A-norm error.
func EpochLength(lambdaMax float64, n int) int {
	d := 1 - lambdaMax/float64(n)
	if d <= 0 || d >= 1 {
		// λmax ≥ n collapses the epoch to a single iteration; λmax ≤ 0 is
		// not SPD, but return something sane rather than looping forever.
		return 1
	}
	return int(math.Ceil(math.Log(0.5) / math.Log(d)))
}

// SyncBound returns the synchronous Randomized Gauss–Seidel bound of
// equation (2): E_m / E₀ ≤ (1 − β(2−β)λmin/n)^m.
func SyncBound(m int, beta, lambdaMin float64, n int) float64 {
	rate := 1 - beta*(2-beta)*lambdaMin/float64(n)
	if rate < 0 {
		rate = 0
	}
	return math.Pow(rate, float64(m))
}

// SyncIterations returns the iteration count after which, per Markov's
// inequality, Pr(‖x_m − x*‖_A ≥ ε‖x₀ − x*‖_A) ≤ δ for synchronous RGS:
// m ≥ n / (β(2−β)λmin) · ln(1/(δε²)).
func SyncIterations(eps, delta, beta, lambdaMin float64, n int) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		panic("theory: SyncIterations needs eps > 0 and delta in (0,1)")
	}
	m := float64(n) / (beta * (2 - beta) * lambdaMin) * math.Log(1/(delta*eps*eps))
	return int(math.Ceil(m))
}

// Params bundles everything needed to evaluate the asynchronous bounds for
// one (matrix, τ, β) configuration.
type Params struct {
	N         int
	LambdaMin float64
	LambdaMax float64
	Kappa     float64
	Rho       float64
	Rho2      float64
	Tau       int
	Beta      float64
}

// NewParams computes ρ and ρ₂ from the matrix and fills in the spectral
// data supplied by the caller (use spectral.EstimateSPD when the exact
// values are unknown).
func NewParams(a *sparse.CSR, lambdaMin, lambdaMax float64, tau int, beta float64) Params {
	return Params{
		N:         a.Rows,
		LambdaMin: lambdaMin,
		LambdaMax: lambdaMax,
		Kappa:     lambdaMax / lambdaMin,
		Rho:       Rho(a),
		Rho2:      Rho2(a),
		Tau:       tau,
		Beta:      beta,
	}
}

// ConsistentEpochFactor returns the per-T₀-epoch contraction guaranteed by
// Theorem 3(a): 1 − ν_τ(β)/2κ, together with whether the theorem applies
// (ν_τ(β) > 0).
func (p Params) ConsistentEpochFactor() (factor float64, ok bool) {
	nu := NuTau(p.Beta, p.Rho, p.Tau)
	if nu <= 0 {
		return 1, false
	}
	return 1 - nu/(2*p.Kappa), true
}

// InconsistentEpochFactor returns Theorem 4(a)'s per-epoch contraction
// 1 − ω_τ(β)/2κ and whether ω_τ(β) > 0.
func (p Params) InconsistentEpochFactor() (factor float64, ok bool) {
	om := OmegaTau(p.Beta, p.Rho2, p.Tau)
	if om <= 0 {
		return 1, false
	}
	return 1 - om/(2*p.Kappa), true
}

// ConsistentBound returns Theorem 3(b)'s bound on E_m/E₀ for iteration m
// in the free-running (no occasional synchronization) consistent-read
// model. It returns 1 when the theorem does not apply at these parameters.
func (p Params) ConsistentBound(m int) float64 {
	nu := NuTau(p.Beta, p.Rho, p.Tau)
	if nu <= 0 {
		return 1
	}
	t0 := EpochLength(p.LambdaMax, p.N)
	T := t0 + p.Tau
	r := m / T
	if r < 1 {
		return 1
	}
	first := 1 - nu/(2*p.Kappa)
	dmax := 1 - p.LambdaMax/float64(p.N)
	rest := 1 - nu*math.Pow(dmax, float64(p.Tau))/(2*p.Kappa) + Chi(p.Beta, p.Rho, p.Tau, p.LambdaMax, p.N)
	if rest > 1 {
		rest = 1 // the bound is vacuous past this point but never grows
	}
	if rest < 0 {
		rest = 0
	}
	return first * math.Pow(rest, float64(r-1))
}

// InconsistentBound returns Theorem 4(b)'s bound on E_m/E₀ for the
// free-running inconsistent-read model, or 1 when it does not apply.
func (p Params) InconsistentBound(m int) float64 {
	om := OmegaTau(p.Beta, p.Rho2, p.Tau)
	if om <= 0 {
		return 1
	}
	t0 := EpochLength(p.LambdaMax, p.N)
	T := t0 + p.Tau
	r := m / T
	if r < 1 {
		return 1
	}
	first := 1 - om/(2*p.Kappa)
	dmax := 1 - p.LambdaMax/float64(p.N)
	rest := 1 - om*math.Pow(dmax, float64(p.Tau))/(2*p.Kappa) + Psi(p.Beta, p.Rho2, p.Tau, p.LambdaMax, p.N)
	if rest > 1 {
		rest = 1
	}
	if rest < 0 {
		rest = 0
	}
	return first * math.Pow(rest, float64(r-1))
}

// SyncedBound returns the bound for the occasional-synchronization scheme
// of the Theorem 2 discussion: after s synchronization epochs of at least
// max(n, T₀) iterations each, E ≤ (1 − ν_τ(β)/2κ)^s · E₀ (consistent read).
func (p Params) SyncedBound(epochs int) float64 {
	f, ok := p.ConsistentEpochFactor()
	if !ok {
		return 1
	}
	return math.Pow(f, float64(epochs))
}

// OuterEpochs returns the number of synchronize-and-restart epochs needed
// to guarantee an expected-error reduction by factor eps² in the scheme of
// the Theorem 2 discussion: O(κ/ν_τ) epochs.
func (p Params) OuterEpochs(eps float64) int {
	f, ok := p.ConsistentEpochFactor()
	if !ok || eps <= 0 || eps >= 1 {
		return 0
	}
	return int(math.Ceil(math.Log(eps*eps) / math.Log(f)))
}

// String renders the parameter set for experiment logs.
func (p Params) String() string {
	return fmt.Sprintf("n=%d λmin=%.4g λmax=%.4g κ=%.4g ρ=%.4g (ρ·n=%.3g) ρ₂=%.4g τ=%d β=%.3g",
		p.N, p.LambdaMin, p.LambdaMax, p.Kappa, p.Rho, p.Rho*float64(p.N), p.Rho2, p.Tau, p.Beta)
}
