package theory

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func unitLaplacian(t *testing.T, m int) *sparse.CSR {
	t.Helper()
	a, _, err := sparse.UnitDiagonalScale(workload.Laplacian2D(m, m))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRhoMatchesDefinition(t *testing.T) {
	a := unitLaplacian(t, 6)
	n := float64(a.Rows)
	// ρ = (1/n)·max row abs sum. For the scaled 5-point interior row:
	// 1 + 4·(1/4) = 2, so ρ·n = 2.
	if got := Rho(a) * n; math.Abs(got-2) > 1e-12 {
		t.Fatalf("ρ·n = %v, want 2", got)
	}
}

func TestRho2MatchesDefinition(t *testing.T) {
	a := unitLaplacian(t, 6)
	n := float64(a.Rows)
	// interior row: 1 + 4·(1/16) = 1.25
	if got := Rho2(a) * n; math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("ρ₂·n = %v, want 1.25", got)
	}
}

func TestRho2LessEqualRhoForUnitDiagonal(t *testing.T) {
	// Unit diagonal forces |A_ij| ≤ 1, so A_ij² ≤ |A_ij| entrywise and
	// ρ₂ ≤ ρ — the paper's §7 discussion.
	f := func(seed uint64, size uint8) bool {
		n := int(size%30) + 4
		b := workload.RandomSPD(n, 5, 1.5, seed)
		a, _, err := sparse.UnitDiagonalScale(b)
		if err != nil {
			return true // skip degenerate draws
		}
		return Rho2(a) <= Rho(a)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNuTauSpecialCases(t *testing.T) {
	// β = 1 reduces to Theorem 2's ν_τ = 1 − 2ρτ.
	if got := NuTau(1, 0.01, 10); math.Abs(got-(1-0.2)) > 1e-15 {
		t.Fatalf("NuTau(1) = %v, want 0.8", got)
	}
	// τ = 0 (synchronous) gives β(2−β).
	if got := NuTau(0.5, 123, 0); math.Abs(got-0.75) > 1e-15 {
		t.Fatalf("NuTau(τ=0) = %v, want 0.75", got)
	}
}

func TestOptimalBetaMaximizesNu(t *testing.T) {
	rho := 0.003
	tau := 40
	opt := OptimalBeta(rho, tau)
	best := NuTau(opt, rho, tau)
	// ν_τ(β̃) = 1/(1+2ρτ), the closed form from the paper.
	if math.Abs(best-1/(1+2*rho*float64(tau))) > 1e-12 {
		t.Fatalf("ν_τ(β̃) = %v, want %v", best, 1/(1+2*rho*float64(tau)))
	}
	for _, b := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.2} {
		if NuTau(b, rho, tau) > best+1e-12 {
			t.Fatalf("β=%v beats the 'optimal' β̃=%v", b, opt)
		}
	}
}

func TestOptimalBetaInconsistentMaximizesOmega(t *testing.T) {
	rho2 := 0.002
	tau := 30
	opt := OptimalBetaInconsistent(rho2, tau)
	best := OmegaTau(opt, rho2, tau)
	for _, b := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 0.99} {
		if OmegaTau(b, rho2, tau) > best+1e-12 {
			t.Fatalf("β=%v beats the 'optimal' %v", b, opt)
		}
	}
	if best <= 0 {
		t.Fatal("ω at the optimum must be positive")
	}
}

func TestOmegaRequiresBetaBelowOne(t *testing.T) {
	// Theorem 4 guarantees convergence only for β < 1: at β = 1 the
	// progress coefficient is non-positive for any τ ≥ 1.
	if OmegaTau(1, 0.5, 1) > 0 {
		t.Fatal("ω_τ(1) must not be positive")
	}
}

func TestEpochLength(t *testing.T) {
	n := 1000
	lmax := 2.0
	got := EpochLength(lmax, n)
	approx := 0.693 * float64(n) / lmax
	if math.Abs(float64(got)-approx) > 0.01*approx {
		t.Fatalf("EpochLength = %d, want ≈ %v", got, approx)
	}
	// λmax ≥ n: collapses to 1 rather than panicking.
	if EpochLength(float64(n), n) != 1 {
		t.Fatal("degenerate epoch should be 1")
	}
}

func TestSyncBoundMonotoneDecreasing(t *testing.T) {
	prev := 1.0
	for m := 1; m < 2000; m += 100 {
		b := SyncBound(m, 1, 0.05, 100)
		if b > prev+1e-15 {
			t.Fatalf("SyncBound must be nonincreasing; rose at m=%d", m)
		}
		prev = b
	}
	if prev >= 1 {
		t.Fatal("SyncBound should actually decrease")
	}
}

func TestSyncIterations(t *testing.T) {
	m := SyncIterations(0.1, 0.1, 1, 0.05, 100)
	// Markov guarantee: the bound at m must be below δ·ε².
	if SyncBound(m, 1, 0.05, 100) > 0.1*0.01*1.0001 {
		t.Fatalf("SyncIterations=%d does not satisfy the Markov bound", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid eps should panic")
		}
	}()
	SyncIterations(0, 0.5, 1, 0.05, 100)
}

func TestParamsAndEpochFactors(t *testing.T) {
	a := unitLaplacian(t, 8)
	p := NewParams(a, 0.05, 1.9, 4, 1)
	if math.Abs(p.Kappa-38) > 1e-10 {
		t.Fatalf("κ = %v", p.Kappa)
	}
	f, ok := p.ConsistentEpochFactor()
	if !ok {
		t.Fatalf("bound should apply: ρ·n=%v τ=%d", p.Rho*float64(p.N), p.Tau)
	}
	if f <= 0 || f >= 1 {
		t.Fatalf("epoch factor %v outside (0,1)", f)
	}
	// Larger τ with β=1 eventually breaks 2ρτ < 1.
	pBad := NewParams(a, 0.05, 1.9, 100_000, 1)
	if _, ok := pBad.ConsistentEpochFactor(); ok {
		t.Fatal("bound must be vacuous for huge τ")
	}
}

func TestBoundsDecreaseWithM(t *testing.T) {
	a := unitLaplacian(t, 8)
	p := NewParams(a, 0.05, 1.9, 2, OptimalBeta(Rho(a), 2))
	t0 := EpochLength(p.LambdaMax, p.N)
	T := t0 + p.Tau
	prev := math.Inf(1)
	for r := 1; r <= 6; r++ {
		b := p.ConsistentBound(r * T)
		if b > prev+1e-15 {
			t.Fatalf("ConsistentBound rose at r=%d", r)
		}
		prev = b
	}
	if prev >= 1 {
		t.Fatal("ConsistentBound should be informative here")
	}
	prevI := math.Inf(1)
	pI := NewParams(a, 0.05, 1.9, 2, OptimalBetaInconsistent(Rho2(a), 2))
	for r := 1; r <= 6; r++ {
		b := pI.InconsistentBound(r * T)
		if b > prevI+1e-15 {
			t.Fatalf("InconsistentBound rose at r=%d", r)
		}
		prevI = b
	}
}

func TestConsistentBeatsInconsistentShape(t *testing.T) {
	// With matched optimal step sizes, the consistent-read epoch factor is
	// at least as good (≤) as the inconsistent one for τ ≥ 1 on the
	// reference matrix — the gap the paper's §7 discussion describes.
	a := unitLaplacian(t, 10)
	for _, tau := range []int{1, 4, 16} {
		pc := NewParams(a, 0.05, 1.9, tau, OptimalBeta(Rho(a), tau))
		pi := NewParams(a, 0.05, 1.9, tau, OptimalBetaInconsistent(Rho2(a), tau))
		fc, ok1 := pc.ConsistentEpochFactor()
		fi, ok2 := pi.InconsistentEpochFactor()
		if !ok1 || !ok2 {
			t.Fatalf("bounds vacuous at τ=%d", tau)
		}
		if fc > fi+1e-12 {
			t.Fatalf("τ=%d: consistent factor %v worse than inconsistent %v", tau, fc, fi)
		}
	}
}

func TestSyncedBoundAndOuterEpochs(t *testing.T) {
	a := unitLaplacian(t, 8)
	p := NewParams(a, 0.05, 1.9, 2, 1)
	e := p.OuterEpochs(0.01)
	if e <= 0 {
		t.Fatal("OuterEpochs should be positive")
	}
	if p.SyncedBound(e) > 0.01*0.01*1.001 {
		t.Fatalf("SyncedBound(%d) = %v does not reach ε²", e, p.SyncedBound(e))
	}
}

func TestChiPsiPositiveAndScaling(t *testing.T) {
	chi1 := Chi(1, 0.001, 10, 2, 1000)
	chi2 := Chi(1, 0.001, 20, 2, 1000)
	if chi1 <= 0 || chi2 <= chi1 {
		t.Fatalf("χ must be positive and grow with τ: %v %v", chi1, chi2)
	}
	psi1 := Psi(0.5, 0.001, 10, 2, 1000)
	psi2 := Psi(0.5, 0.001, 20, 2, 1000)
	if psi1 <= 0 || psi2 <= psi1 {
		t.Fatalf("ψ must be positive and grow with τ: %v %v", psi1, psi2)
	}
}

func TestParamsString(t *testing.T) {
	a := unitLaplacian(t, 4)
	s := NewParams(a, 0.1, 1.9, 3, 0.5).String()
	if s == "" {
		t.Fatal("String should render")
	}
}

func TestRhoEmptyMatrix(t *testing.T) {
	empty := sparse.NewCOO(0, 0).ToCSR()
	if Rho(empty) != 0 || Rho2(empty) != 0 {
		t.Fatal("empty matrix should have zero interference")
	}
}

func TestNuOmegaRandomConsistency(t *testing.T) {
	// ν_τ(β) ≥ ω_τ(β) cannot be asserted in general, but both must agree
	// at τ=0 up to their definitions: ν_0(β) = β(2−β), ω_0(β) = 2β(1−β).
	g := rng.NewSequential(9)
	for i := 0; i < 100; i++ {
		beta := g.Float64()
		nu := NuTau(beta, 0.5, 0)
		om := OmegaTau(beta, 0.5, 0)
		if math.Abs(nu-beta*(2-beta)) > 1e-12 {
			t.Fatalf("ν_0 mismatch at β=%v", beta)
		}
		if math.Abs(om-2*beta*(1-beta)) > 1e-12 {
			t.Fatalf("ω_0 mismatch at β=%v", beta)
		}
	}
}
