// Package lsq implements §8 of the paper: randomized coordinate descent
// for the overdetermined least-squares problem min_x ‖A·x − b‖₂ (which
// subsumes unsymmetric square systems), in both the classical sequential
// form (iteration (20), Leventhal–Lewis) and the asynchronous form
// (iteration (21)) that AsyRGS's strategy induces.
//
// The sequential iteration keeps the residual r = b − A·x in memory and
// updates it after every coordinate step, costing O(nnz(A e_j)) per step.
// The asynchronous iteration cannot keep r (updates to it are not atomic),
// so each step recomputes the needed residual entries from scratch:
//
//	γ_j = (A e_j)ᵀ (b − A·x_{K(j)}) / ‖A e_j‖² ,  x_{j+1} = x_j + βγ_j e_j ,
//
// costing O(Σ_i nnz(A_i)) over the rows i where column j is non-zero —
// the cost trade-off §8 quantifies as at most O(C2²/C1) per step.
// Iteration (21) is exactly AsyRGS applied to AᵀA·x = Aᵀb, so Theorem 4's
// guarantees transfer with ρ₂ computed from X = AᵀA (Theorem 5).
package lsq

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/asynclinalg/asyrgs/internal/alias"
	"github.com/asynclinalg/asyrgs/internal/atomicfloat"
	"github.com/asynclinalg/asyrgs/internal/claim"
	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// ErrNotConverged mirrors the solver packages' sentinel.
var ErrNotConverged = errors.New("lsq: did not reach the requested tolerance")

// Options configure a least-squares coordinate-descent solver.
type Options struct {
	// Beta is the step size. Theorem 5 requires β < 1 for the
	// asynchronous variant; 0 means 1 for the sequential solver and 0.5
	// for the asynchronous one.
	Beta float64
	// Workers > 1 runs the asynchronous iteration (21).
	Workers int
	// Seed keys the column-selection stream.
	Seed uint64
	// NormWeighted selects column j with probability ‖A e_j‖²/‖A‖_F² —
	// the general Leventhal–Lewis distribution for coordinate descent on
	// the normal equations — through an O(1) alias table built once per
	// prepared matrix. Off, columns are drawn uniformly.
	NormWeighted bool
	// Chunk is the number of iteration indices an asynchronous worker
	// claims from the shared counter at a time; zero auto-sizes from the
	// budget and worker count. Column selection stays a pure function of
	// (seed, j), so the chunk size never changes the update multiset.
	Chunk int
	// Float32 stores both matrix views' values (and the column norms the
	// step divides by) in float32-rounded form while accumulating in
	// float64; the iteration then descends on the normal equations of
	// fl32(A). Sampling stays on the float64 norms, keeping draw
	// sequences identical across precisions.
	Float32 bool
}

// Solver holds CSR and CSC views of A plus column norms.
type Solver struct {
	a        *sparse.CSR
	csc      *sparse.CSC
	a32      *sparse.CSR32 // non-nil under Options.Float32
	csc32    *sparse.CSC32 // non-nil under Options.Float32
	colNorm2 []float64     // ‖A e_j‖² (of fl32(A) under Float32) — the step divisor
	tab      *alias.Table  // nil unless NormWeighted
	beta     float64
	opts     Options
	next     uint64
	rowBytes int // per-iteration cache footprint estimate for chunk sizing
}

// prepCount counts PrepareMatrix calls; the Prepare/Solve pipeline tests
// use the delta to prove cached prepared state never rebuilds the CSC
// transpose or the column norms.
var prepCount atomic.Uint64

// PrepCount returns the number of per-matrix preparations (CSC builds and
// column-norm passes) performed so far in this process.
func PrepCount() uint64 { return prepCount.Load() }

// Prep is the reusable per-matrix state of the least-squares solvers: the
// CSC column view of A (one transpose pass), the squared column norms
// ‖A e_j‖², and the lazily built norm-weighted alias table. Immutable
// after construction (the alias latch is internally synchronized) and
// safe for concurrent use; fork Solvers from it with NewFromPrep.
type Prep struct {
	a        *sparse.CSR
	csc      *sparse.CSC
	colNorm2 []float64

	aliasOnce sync.Once
	tab       *alias.Table
	aliasErr  error

	f32Once    sync.Once
	a32        *sparse.CSR32
	csc32      *sparse.CSC32
	colNorm232 []float64
	f32Err     error
}

// float32View returns the float32-value views of both matrix layouts and
// the column norms of the rounded values, building them on first use. A
// column whose norm underflows float32 storage is rejected (it would
// still be sampled but have no finite step).
func (p *Prep) float32View() (*sparse.CSR32, *sparse.CSC32, []float64, error) {
	p.f32Once.Do(func() {
		a32 := sparse.NewCSR32(p.a)
		csc32 := sparse.NewCSC32(p.csc)
		norms := make([]float64, p.a.Cols)
		for j := 0; j < p.a.Cols; j++ {
			norms[j] = csc32.ColNorm2Sq(j)
			if norms[j] == 0 {
				p.f32Err = fmt.Errorf("lsq: column %d norm underflows float32", j)
				return
			}
		}
		p.a32, p.csc32, p.colNorm232 = a32, csc32, norms
	})
	return p.a32, p.csc32, p.colNorm232, p.f32Err
}

// colAlias returns the ‖A e_j‖²-weighted alias table, building it on
// first use — once per prepared matrix, so a serving prep cache
// amortizes construction across every warm norm-weighted solve.
func (p *Prep) colAlias() (*alias.Table, error) {
	p.aliasOnce.Do(func() {
		p.tab, p.aliasErr = alias.New(p.colNorm2)
		if p.aliasErr != nil {
			p.aliasErr = fmt.Errorf("lsq: building column-sampling table: %w", p.aliasErr)
		}
	})
	return p.tab, p.aliasErr
}

// PrepareMatrix validates A (rows >= cols, no zero columns) and builds
// the column view plus norms, paid once per matrix instead of per solve.
func PrepareMatrix(a *sparse.CSR) (*Prep, error) {
	if a.Rows < a.Cols {
		return nil, errors.New("lsq: system must have at least as many rows as columns")
	}
	prepCount.Add(1)
	csc := a.ToCSC()
	norms := make([]float64, a.Cols)
	for j := 0; j < a.Cols; j++ {
		norms[j] = csc.ColNorm2Sq(j)
		if norms[j] == 0 {
			return nil, errors.New("lsq: matrix has a zero column")
		}
	}
	return &Prep{a: a, csc: csc, colNorm2: norms}, nil
}

// Matrix returns the prepared matrix (shared, do not mutate).
func (p *Prep) Matrix() *sparse.CSR { return p.a }

// State exposes the serializable per-matrix state — the CSC column view
// (the expensive transpose pass) and the squared column norms — for the
// durable prep-store codec. The alias table and float32 views are
// absent: each rebuilds lazily from this state. Shared; do not mutate.
func (p *Prep) State() (*sparse.CSC, []float64) { return p.csc, p.colNorm2 }

// PrepFromState rebuilds a Prep over a from state captured by State on
// an identical matrix, skipping the transpose and norm passes. The CSC
// structure is revalidated against a's shape — pointer monotonicity,
// nnz agreement, row indices in range, positive norms — with one O(nnz)
// comparison scan (far cheaper than the O(nnz log) transpose it
// replaces), so structurally damaged state can never index out of
// bounds in the hot loop. It does not count in PrepCount.
func PrepFromState(a *sparse.CSR, csc *sparse.CSC, colNorm2 []float64) (*Prep, error) {
	if a.Rows < a.Cols {
		return nil, errors.New("lsq: system must have at least as many rows as columns")
	}
	if csc == nil || csc.Rows != a.Rows || csc.Cols != a.Cols {
		return nil, errors.New("lsq: restored column view disagrees with the matrix shape")
	}
	nnz := a.NNZ()
	if len(csc.ColPtr) != a.Cols+1 || len(csc.RowIdx) != nnz || len(csc.Vals) != nnz ||
		csc.ColPtr[0] != 0 || csc.ColPtr[a.Cols] != nnz {
		return nil, errors.New("lsq: restored column view has inconsistent structure")
	}
	for j := 0; j < a.Cols; j++ {
		if csc.ColPtr[j] > csc.ColPtr[j+1] {
			return nil, errors.New("lsq: restored column pointers are not monotone")
		}
	}
	for _, i := range csc.RowIdx {
		if i < 0 || i >= a.Rows {
			return nil, errors.New("lsq: restored row index out of range")
		}
	}
	if len(colNorm2) != a.Cols {
		return nil, errors.New("lsq: restored norms disagree with the matrix shape")
	}
	for j, n := range colNorm2 {
		if !(n > 0) {
			return nil, fmt.Errorf("lsq: restored norm of column %d is not positive", j)
		}
	}
	return &Prep{a: a, csc: csc, colNorm2: colNorm2}, nil
}

// NewFromPrep forks a Solver from prepared per-matrix state, validating
// only the options — no transpose or norm computation (the norm-weighted
// alias table is memoized inside the Prep).
func NewFromPrep(p *Prep, opts Options) (*Solver, error) {
	beta := opts.Beta
	if beta == 0 {
		if opts.Workers > 1 {
			beta = 0.5
		} else {
			beta = 1
		}
	}
	if beta <= 0 || beta >= 2 {
		return nil, errors.New("lsq: step size outside (0,2)")
	}
	if opts.Chunk < 0 {
		return nil, errors.New("lsq: negative claiming chunk")
	}
	s := &Solver{a: p.a, csc: p.csc, colNorm2: p.colNorm2, beta: beta, opts: opts}
	valBytes := 8
	if opts.Float32 {
		a32, csc32, norms, err := p.float32View()
		if err != nil {
			return nil, err
		}
		s.a32, s.csc32, s.colNorm2 = a32, csc32, norms
		valBytes = 4
	}
	if opts.NormWeighted {
		tab, err := p.colAlias()
		if err != nil {
			return nil, err
		}
		s.tab = tab
	}
	// The async step walks one column and re-derives each touched row's
	// product: roughly column nnz × mean row nnz entries of values+indices.
	meanColNNZ, meanRowNNZ := 0, 0
	if p.a.Cols > 0 {
		meanColNNZ = p.a.NNZ() / p.a.Cols
	}
	if p.a.Rows > 0 {
		meanRowNNZ = p.a.NNZ() / p.a.Rows
	}
	s.rowBytes = meanColNNZ*(1+meanRowNNZ)*(valBytes+8) + 24
	return s, nil
}

// New validates A (must have no zero columns) and builds the solver.
// Callers that solve the same matrix repeatedly should PrepareMatrix once
// and fork Solvers with NewFromPrep instead.
func New(a *sparse.CSR, opts Options) (*Solver, error) {
	p, err := PrepareMatrix(a)
	if err != nil {
		return nil, err
	}
	return NewFromPrep(p, opts)
}

// Iterations runs m coordinate steps on x and returns nothing; use
// ResidualNorm or LSQResidual for progress metrics.
func (s *Solver) Iterations(x, b []float64, m int) {
	if len(x) != s.a.Cols || len(b) != s.a.Rows {
		panic("lsq: shape mismatch")
	}
	stream := rng.NewStream(s.opts.Seed)
	start := s.next
	end := start + uint64(m)
	if s.opts.Workers <= 1 {
		s.runSequential(x, b, stream, start, end)
	} else {
		s.runAsync(x, b, stream, start, end)
	}
	s.next = end
}

// pickCol maps iteration index it to a column: uniform, or the
// ‖A e_j‖²-weighted O(1) alias draw under NormWeighted. A pure function
// of (seed, it) either way.
func (s *Solver) pickCol(stream rng.Stream, it uint64) int {
	if s.tab != nil {
		return s.tab.Pick(stream, it)
	}
	return stream.IntnAt(it, s.a.Cols)
}

// runSequential is iteration (20): the residual r = b − A·x is maintained
// incrementally, giving the cheap O(nnz(col)) step.
func (s *Solver) runSequential(x, b []float64, stream rng.Stream, start, end uint64) {
	r := make([]float64, s.a.Rows)
	s.mulVec(r, x)
	vec.Sub(r, b, r)
	if s.csc32 != nil {
		for it := start; it < end; it++ {
			j := s.pickCol(stream, it)
			rows, vals := s.csc32.Col(j)
			var g float64
			for k, i := range rows {
				g += float64(vals[k]) * r[i]
			}
			gamma := s.beta * g / s.colNorm2[j]
			x[j] += gamma
			for k, i := range rows {
				r[i] -= gamma * float64(vals[k])
			}
		}
		return
	}
	for it := start; it < end; it++ {
		j := s.pickCol(stream, it)
		rows, vals := s.csc.Col(j)
		var g float64
		for k, i := range rows {
			g += vals[k] * r[i]
		}
		gamma := s.beta * g / s.colNorm2[j]
		x[j] += gamma
		for k, i := range rows {
			r[i] -= gamma * vals[k]
		}
	}
}

// runAsync is iteration (21): workers share x, each step recomputes the
// relevant residual entries (A_i·x for rows i touching column j) with
// plain reads, and commits the single-coordinate update atomically.
func (s *Solver) runAsync(x, b []float64, stream rng.Stream, start, end uint64) {
	// Chunked claiming: one CAS per chunk of indices instead of one per
	// coordinate step takes the shared counter off the critical path.
	chunk := s.chunkSize(end - start)
	var counter atomic.Uint64
	counter.Store(start)
	var wg sync.WaitGroup
	for w := 0; w < s.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			//asyrgs:boundedloop the claimed counter is monotone; every pass claims chunk>=1 indices and exits once base passes end
			for {
				base := counter.Add(uint64(chunk)) - uint64(chunk)
				if base >= end {
					return
				}
				top := base + uint64(chunk)
				if top > end {
					top = end
				}
				if s.csc32 != nil {
					for it := base; it < top; it++ {
						j := s.pickCol(stream, it)
						rows, vals := s.csc32.Col(j)
						var g float64
						for k, i := range rows {
							g += float64(vals[k]) * (b[i] - s.a32.RowDotAtomic(i, x))
						}
						atomicfloat.Add(&x[j], s.beta*g/s.colNorm2[j])
					}
					continue
				}
				for it := base; it < top; it++ {
					j := s.pickCol(stream, it)
					rows, vals := s.csc.Col(j)
					var g float64
					for k, i := range rows {
						g += vals[k] * (b[i] - s.a.RowDotAtomic(i, x))
					}
					atomicfloat.Add(&x[j], s.beta*g/s.colNorm2[j])
				}
			}
		}()
	}
	wg.Wait()
}

// chunkSize resolves the claiming granularity (see claim.SizeFor).
func (s *Solver) chunkSize(total uint64) int {
	return claim.SizeFor(s.opts.Chunk, total, s.opts.Workers, s.rowBytes)
}

// mulVec computes r ← A·x through the active-precision view.
func (s *Solver) mulVec(r, x []float64) {
	if s.a32 != nil {
		s.a32.MulVec(r, x)
	} else {
		s.a.MulVec(r, x)
	}
}

// LSQResidual returns ‖Aᵀ(b − A·x)‖₂, the least-squares optimality
// residual: zero exactly at the minimizer x* = (AᵀA)⁻¹Aᵀb. Under Float32
// both products go through the rounded views, so it vanishes at the
// minimizer of the rounded system.
func (s *Solver) LSQResidual(x, b []float64) float64 {
	r := make([]float64, s.a.Rows)
	s.mulVec(r, x)
	vec.Sub(r, b, r)
	atr := make([]float64, s.a.Cols)
	if s.csc32 != nil {
		s.csc32.MulTransVec(atr, r)
	} else {
		s.csc.MulTransVec(atr, r)
	}
	return vec.Nrm2(atr)
}

// ResidualNorm returns ‖b − A·x‖₂ (does not vanish for inconsistent
// systems; compare against the optimal value).
func (s *Solver) ResidualNorm(x, b []float64) float64 {
	r := make([]float64, s.a.Rows)
	s.mulVec(r, x)
	vec.Sub(r, b, r)
	return vec.Nrm2(r)
}

// Solve iterates until the normal-equation residual ‖Aᵀ(b−Ax)‖₂ drops
// below tol or maxIter steps are spent, checking every checkEvery steps
// (one sweep = Cols steps if zero).
func (s *Solver) Solve(x, b []float64, tol float64, maxIter, checkEvery int) (int, float64, error) {
	if checkEvery <= 0 {
		checkEvery = s.a.Cols
	}
	done := 0
	for done < maxIter {
		step := checkEvery
		if done+step > maxIter {
			step = maxIter - done
		}
		s.Iterations(x, b, step)
		done += step
		if res := s.LSQResidual(x, b); res <= tol {
			return done, res, nil
		}
	}
	return done, s.LSQResidual(x, b), ErrNotConverged
}

// Normal returns the explicit normal-equation system (AᵀA, Aᵀb), the SPD
// system iteration (21) implicitly solves — used by the tests to
// cross-check the asynchronous solver against AsyRGS on AᵀA.
func (s *Solver) Normal(b []float64) (*sparse.CSR, []float64) {
	ata := sparse.Gram(s.a)
	atb := make([]float64, s.a.Cols)
	s.csc.MulTransVec(atb, b)
	return ata, atb
}
