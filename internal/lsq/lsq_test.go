package lsq

import (
	"testing"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/dense"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// lsqReference computes the least-squares minimiser via the dense normal
// equations.
func lsqReference(t *testing.T, a *sparse.CSR, b []float64) []float64 {
	t.Helper()
	ata := sparse.Gram(a)
	atb := make([]float64, a.Cols)
	a.ToCSC().MulTransVec(atb, b)
	x, err := dense.SolveCSR(ata, atb)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestNewValidation(t *testing.T) {
	if _, err := New(sparse.NewCOO(2, 3).ToCSR(), Options{}); err == nil {
		t.Fatal("underdetermined matrix must be rejected")
	}
	coo := sparse.NewCOO(3, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 0, 1) // column 1 empty
	if _, err := New(coo.ToCSR(), Options{}); err == nil {
		t.Fatal("zero column must be rejected")
	}
	if _, err := New(workload.RandomOverdetermined(6, 3, 2, 1), Options{Beta: -1}); err == nil {
		t.Fatal("negative β must be rejected")
	}
}

func TestSequentialConvergesToLeastSquares(t *testing.T) {
	a := workload.RandomOverdetermined(60, 20, 4, 2)
	b := workload.RandomRHS(60, 3) // generically inconsistent
	want := lsqReference(t, a, b)
	s, err := New(a, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 20)
	iters, res, err := s.Solve(x, b, 1e-9, 500_000, 2000)
	if err != nil {
		t.Fatalf("did not converge after %d iterations (‖Aᵀr‖ = %v)", iters, res)
	}
	if e := vec.RelErr(x, want); e > 1e-6 {
		t.Fatalf("minimiser error %v", e)
	}
}

func TestSequentialConsistentSystemReachesExact(t *testing.T) {
	a := workload.RandomOverdetermined(50, 15, 4, 5)
	b, xstar := workload.RHSForSolution(a, 6)
	s, _ := New(a, Options{Seed: 7})
	x := make([]float64, 15)
	if _, res, err := s.Solve(x, b, 1e-10, 500_000, 2000); err != nil {
		t.Fatalf("res %v: %v", res, err)
	}
	if e := vec.RelErr(x, xstar); e > 1e-7 {
		t.Fatalf("consistent-system error %v", e)
	}
}

func TestAsyncConverges(t *testing.T) {
	a := workload.RandomOverdetermined(120, 40, 5, 8)
	b := workload.RandomRHS(120, 9)
	want := lsqReference(t, a, b)
	s, _ := New(a, Options{Seed: 10, Workers: 4, Beta: 0.9})
	x := make([]float64, 40)
	if _, res, err := s.Solve(x, b, 1e-7, 3_000_000, 20_000); err != nil {
		t.Fatalf("async lsq did not converge (‖Aᵀr‖ %v)", res)
	}
	if e := vec.RelErr(x, want); e > 1e-4 {
		t.Fatalf("async minimiser error %v", e)
	}
}

func TestAsyncDefaultBetaBelowOne(t *testing.T) {
	// Theorem 5 needs β < 1 asynchronously; the zero-value default must
	// respect that.
	a := workload.RandomOverdetermined(20, 8, 3, 11)
	s, err := New(a, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.beta >= 1 {
		t.Fatalf("async default β = %v, want < 1", s.beta)
	}
	sSeq, _ := New(a, Options{})
	if sSeq.beta != 1 {
		t.Fatalf("sequential default β = %v, want 1", sSeq.beta)
	}
}

func TestIterationEquivalenceWithAsyRGSOnNormalEquations(t *testing.T) {
	// §8: iteration (21) is AsyRGS applied to AᵀA x = Aᵀb. With one
	// worker and the same direction stream, the trajectories must agree
	// after accounting for the diagonal normalisation: AsyRGS on AᵀA with
	// general diagonal divides by (AᵀA)_jj = ‖A e_j‖², exactly like (21).
	a := workload.RandomOverdetermined(30, 10, 3, 12)
	b := workload.RandomRHS(30, 13)

	s, _ := New(a, Options{Seed: 14, Beta: 0.7})
	x1 := make([]float64, 10)
	s.Iterations(x1, b, 400)

	ata, atb := s.Normal(b)
	rgs, err := core.New(ata, core.Options{Seed: 14, Beta: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, 10)
	rgs.Sweeps(x2, atb, 40) // 40 sweeps × 10 cols = 400 iterations
	if !vec.Equal(x1, x2, 1e-9) {
		t.Fatalf("lsq iteration diverged from AsyRGS on the normal equations:\n%v\n%v", x1, x2)
	}
}

func TestLSQResidualVanishesAtMinimiser(t *testing.T) {
	a := workload.RandomOverdetermined(40, 12, 4, 15)
	b := workload.RandomRHS(40, 16)
	want := lsqReference(t, a, b)
	s, _ := New(a, Options{})
	if res := s.LSQResidual(want, b); res > 1e-8 {
		t.Fatalf("‖Aᵀr‖ at the minimiser = %v", res)
	}
	// The plain residual must equal ‖b−Ax‖ and be non-zero for an
	// inconsistent system.
	if rn := s.ResidualNorm(want, b); rn <= 0 {
		t.Fatal("inconsistent system should have positive residual")
	}
}

func TestSquareUnsymmetricSystem(t *testing.T) {
	// §8 covers unsymmetric nonsingular square systems as a special case.
	coo := sparse.NewCOO(3, 3)
	coo.Add(0, 0, 3)
	coo.Add(0, 1, 1)
	coo.Add(1, 1, 2)
	coo.Add(1, 2, -1)
	coo.Add(2, 0, 1)
	coo.Add(2, 2, 4)
	a := coo.ToCSR()
	want := []float64{1, -2, 0.5}
	b := make([]float64, 3)
	a.MulVec(b, want)
	s, err := New(a, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 3)
	if _, res, err := s.Solve(x, b, 1e-12, 500_000, 1000); err != nil {
		t.Fatalf("res %v: %v", res, err)
	}
	if e := vec.RelErr(x, want); e > 1e-9 {
		t.Fatalf("unsymmetric solve error %v", e)
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	a := workload.RandomOverdetermined(25, 8, 3, 18)
	b := workload.RandomRHS(25, 19)
	run := func() []float64 {
		s, _ := New(a, Options{Seed: 20})
		x := make([]float64, 8)
		s.Iterations(x, b, 300)
		return x
	}
	if !vec.Equal(run(), run(), 0) {
		t.Fatal("sequential lsq must be deterministic")
	}
}

// TestNormWeightedConverges runs the ‖A e_j‖²-weighted alias draw (the
// general Leventhal–Lewis distribution) through both the sequential and
// the asynchronous iteration, at explicit claiming granularities, and
// checks convergence to the least-squares minimizer.
func TestNormWeightedConverges(t *testing.T) {
	a := workload.RandomOverdetermined(90, 30, 5, 70)
	b := workload.RandomRHS(a.Rows, 71)

	// Normal-equations reference.
	ata, atb := func() (*sparse.CSR, []float64) {
		s, _ := New(a, Options{})
		return s.Normal(b)
	}()
	xref, err := dense.SolveCSR(ata, atb)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		workers int
		chunk   int
	}{
		{"sequential", 1, 0},
		{"async", 4, 0},
		{"async-chunk1", 4, 1},
		{"async-chunk128", 4, 128},
	} {
		s, err := New(a, Options{Seed: 72, Workers: tc.workers, Chunk: tc.chunk, NormWeighted: true})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Cols)
		if _, res, err := s.Solve(x, b, 1e-9, 300000, 3000); err != nil {
			t.Fatalf("%s: did not converge: residual %g", tc.name, res)
		}
		if e := vec.RelErr(x, xref); e > 1e-5 {
			t.Fatalf("%s: solution error %g vs normal equations", tc.name, e)
		}
	}
}

// TestNormWeightedAliasBuiltOncePerPrep checks the amortization contract:
// repeated forks off one Prep share a single alias table.
func TestNormWeightedAliasBuiltOncePerPrep(t *testing.T) {
	a := workload.RandomOverdetermined(40, 15, 4, 73)
	p, err := PrepareMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewFromPrep(p, Options{NormWeighted: true})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewFromPrep(p, Options{NormWeighted: true, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s1.tab == nil || s1.tab != s2.tab {
		t.Fatal("forked solvers must share the Prep's alias table")
	}
	if _, err := NewFromPrep(p, Options{Chunk: -1}); err == nil {
		t.Fatal("negative chunk must be rejected")
	}
}
