// Package distmem emulates the distributed-memory deployment of the
// restricted-randomization solver that the paper's introduction sketches
// as future work: "in a distributed memory setting it is desirable that
// each processor owns and be the sole updater of only a subset of the
// entries. To allow this, a more limited form of randomization should be
// used."
//
// Each worker owns a contiguous block of coordinates, keeps a private full
// copy of the iterate, performs Randomized Gauss–Seidel steps restricted
// to its block against its (stale) copy, and ships every committed update
// to the other workers through bounded message queues. The queue capacity
// is the communication budget: a full queue exerts backpressure, so the
// staleness any worker can accumulate is bounded by
// (workers−1)·capacity + workers in-flight updates — a physical, tunable
// realisation of Assumption A-3's delay bound τ. Message passing is the
// only communication; no memory is shared between workers (the iterate
// copies are private and exchanged by value), making this a faithful
// single-process model of an MPI-style deployment.
package distmem

import (
	"fmt"
	"sync"

	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// Config configures a distributed solve.
type Config struct {
	// Workers is the number of emulated ranks; each owns ~n/Workers
	// consecutive coordinates.
	Workers int
	// QueueCap is the per-link message-queue capacity (the communication
	// budget). Minimum 1.
	QueueCap int
	// Beta is the step size; 0 means 1.
	Beta float64
	// Seed keys the per-worker direction streams.
	Seed uint64
}

// update is one committed coordinate delta, the only message type on the
// emulated network.
type update struct {
	idx   int
	delta float64
}

// Result reports a distributed run.
type Result struct {
	// Residual is the relative residual of the assembled solution.
	Residual float64
	// MessagesSent counts total updates shipped across the network.
	MessagesSent uint64
	// MaxQueueLen is the largest backlog observed on any link at a send.
	MaxQueueLen int
}

// Solve runs sweeps·(block size) restricted-randomization Gauss–Seidel
// iterations on every worker and assembles the solution from the owner
// blocks. x is both the initial guess and the output.
func Solve(a *sparse.CSR, x, b []float64, sweeps int, cfg Config) (Result, error) {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n {
		return Result{}, fmt.Errorf("distmem: shape mismatch n=%d len(x)=%d len(b)=%d", n, len(x), len(b))
	}
	w := cfg.Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	cap := cfg.QueueCap
	if cap < 1 {
		cap = 1
	}
	beta := cfg.Beta
	if beta == 0 {
		beta = 1
	}
	diag := a.Diag()
	for i, d := range diag {
		if d == 0 {
			return Result{}, fmt.Errorf("distmem: zero diagonal at row %d", i)
		}
	}

	// One inbox per worker; everyone else sends into it.
	inboxes := make([]chan update, w)
	for i := range inboxes {
		inboxes[i] = make(chan update, cap*(w-1)+1)
	}

	var sent atomic64
	var maxQ atomicMax

	var iterate sync.WaitGroup // phase 1: everyone still sending
	var drain sync.WaitGroup   // phase 2: final drains
	results := make([][]float64, w)

	for id := 0; id < w; id++ {
		lo := id * n / w
		hi := (id + 1) * n / w
		iterate.Add(1)
		drain.Add(1)
		go func(id, lo, hi int) {
			local := append([]float64(nil), x...)
			stream := rng.NewStream(cfg.Seed ^ (uint64(id) * 0x9E3779B97F4A7C15))
			inbox := inboxes[id]

			applyAll := func() {
				for {
					select {
					case u := <-inbox:
						local[u.idx] += u.delta
					default:
						return
					}
				}
			}
			// send delivers to every peer, draining our own inbox while a
			// peer's queue is full so rings of full queues cannot deadlock.
			send := func(u update) {
				for peer := 0; peer < w; peer++ {
					if peer == id {
						continue
					}
					if q := len(inboxes[peer]); q > 0 {
						maxQ.observe(q)
					}
					for {
						select {
						case inboxes[peer] <- u:
						default:
							applyAll()
							inboxes[peer] <- u
						}
						break
					}
					sent.add(1)
				}
			}

			iters := sweeps * (hi - lo)
			for j := 0; j < iters; j++ {
				applyAll()
				r := lo + stream.IntnAt(uint64(j), hi-lo)
				gamma := (b[r] - a.RowDot(r, local)) / diag[r]
				delta := beta * gamma
				local[r] += delta
				send(update{idx: r, delta: delta})
			}
			iterate.Done()
			// Final drain: consume peers' remaining traffic until the
			// coordinator closes our inbox.
			for u := range inbox {
				local[u.idx] += u.delta
			}
			results[id] = local
			drain.Done()
		}(id, lo, hi)
	}

	iterate.Wait()
	for _, ch := range inboxes {
		close(ch)
	}
	drain.Wait()

	// Assemble: each coordinate comes from its owner, which holds the
	// authoritative (and only ever locally written) value.
	for id := 0; id < w; id++ {
		lo := id * n / w
		hi := (id + 1) * n / w
		copy(x[lo:hi], results[id][lo:hi])
	}

	// Relative residual of the assembled iterate.
	var num, den float64
	for i := 0; i < n; i++ {
		r := b[i] - a.RowDot(i, x)
		num += r * r
		den += b[i] * b[i]
	}
	res := Result{MessagesSent: sent.load(), MaxQueueLen: maxQ.load()}
	if den == 0 {
		res.Residual = sqrt(num)
	} else {
		res.Residual = sqrt(num / den)
	}
	return res, nil
}

// SolveToTol repeats Solve in rounds of `sweepsPerRound` until the
// residual drops below tol or maxRounds is exhausted. Each round is a
// global synchronization (the natural restart point of the occasional-
// synchronization scheme in a distributed deployment).
func SolveToTol(a *sparse.CSR, x, b []float64, tol float64, sweepsPerRound, maxRounds int, cfg Config) (Result, int, error) {
	var last Result
	for round := 1; round <= maxRounds; round++ {
		res, err := Solve(a, x, b, sweepsPerRound, cfg)
		if err != nil {
			return res, round, err
		}
		last = res
		last.MessagesSent += 0
		if res.Residual <= tol {
			return res, round, nil
		}
	}
	return last, maxRounds, fmt.Errorf("distmem: residual %g above tol %g after %d rounds", last.Residual, tol, maxRounds)
}
