// Package distmem is the sharded distributed-memory execution backend of
// the restricted-randomization solver that the paper's introduction
// sketches as future work: "in a distributed memory setting it is
// desirable that each processor owns and be the sole updater of only a
// subset of the entries. To allow this, a more limited form of
// randomization should be used."
//
// Each worker owns a contiguous block of coordinates (equal-width, or
// nnz-balanced via the Config.BalanceNNZ partitioner), keeps a private
// full copy of the iterate, performs Randomized Gauss–Seidel steps
// restricted to its block against its (stale) copy, and ships every
// committed update to the other workers through bounded message queues.
// Each worker has one shared inbox sized QueueCap·(w−1)+1 — room for
// QueueCap in-flight updates from each of the other w−1 ranks plus one —
// into which every peer sends. The queue capacity is the communication
// budget: a full inbox exerts backpressure, so the staleness any worker
// can accumulate is bounded by (workers−1)·QueueCap + workers in-flight
// updates — a physical, tunable realisation of Assumption A-3's delay
// bound τ. Message passing is the only communication; no memory is shared
// between workers (the iterate copies are private and exchanged by
// value), making this a faithful single-process model of an MPI-style
// deployment.
//
// The package follows the repository's two-phase shape: Prepare captures
// the per-matrix state (ownership partition, validated diagonal, one
// direction-stream key per worker) once, NewSolver forks a persistent
// pool of worker goroutines from it, and each Solve/SolveToTol round
// reuses that pool instead of respawning goroutines. Per-worker stream
// offsets advance across rounds, so every round samples fresh coordinates
// and the restricted randomization stays i.i.d. over a whole run.
package distmem

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/asynclinalg/asyrgs/internal/alias"
	"github.com/asynclinalg/asyrgs/internal/fault"
	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// Config configures a distributed solve.
type Config struct {
	// Workers is the number of emulated ranks; each owns a contiguous
	// coordinate block.
	Workers int
	// QueueCap is each peer's share of a worker's inbox (the
	// communication budget): every inbox holds QueueCap·(workers−1)+1
	// messages. Minimum 1.
	QueueCap int
	// Beta is the step size; 0 means 1.
	Beta float64
	// Seed keys the per-worker direction streams.
	Seed uint64
	// BalanceNNZ selects the nnz-balanced partitioner instead of
	// equal-width contiguous blocks, so per-round work stays balanced on
	// matrices with skewed row densities.
	BalanceNNZ bool
	// DiagonalWeighted draws each rank's coordinates with probability
	// proportional to A_rr within its owned block (the Leventhal–Lewis
	// distribution restricted to the block) instead of uniformly, through
	// one O(1) Walker/Vose alias table per rank built once by Prepare.
	// The draw stays a pure function of (rank stream, iteration index),
	// so direction sequences remain deterministic and replay-free across
	// rounds. Requires a positive diagonal.
	DiagonalWeighted bool
	// Fault injects message loss and delay at each rank's outbox: a Drop
	// decision loses the update (the owner's block stays authoritative,
	// peers just converge on staler views), a Delay decision defers
	// delivery to the end of the round — the maximum staleness the round
	// structure allows, realized deterministically without sleeping. The
	// decision for (iteration, peer) is a pure function of the seed, so
	// dropped/delayed counts are replay-exact. Err/Corrupt rates are
	// ignored here (the emulated network loses or reorders, it does not
	// flip bits); set Latency to any positive duration to arm DelayRate.
	Fault fault.Config
}

// update is one committed coordinate delta, the only message type on the
// emulated network.
type update struct {
	idx   int
	delta float64
}

// deferredMsg is one update held back by an injected Delay decision,
// delivered at the end of its round.
type deferredMsg struct {
	peer int
	u    update
}

// Result reports a distributed run.
type Result struct {
	// Residual is the relative residual of the assembled solution.
	Residual float64
	// MessagesSent counts total updates shipped across the network; over
	// a multi-round run it accumulates across rounds.
	MessagesSent uint64
	// MaxQueueLen is the largest inbox backlog observed at a send; over a
	// multi-round run it is the maximum across rounds.
	MaxQueueLen int
	// MessagesDropped counts updates lost to injected faults
	// (Config.Fault); deterministic under a fixed seed. Accumulates
	// across rounds.
	MessagesDropped uint64
	// MessagesDelayed counts updates deferred to the end of their round
	// by injected faults; such updates still count in MessagesSent when
	// they finally deliver. Accumulates across rounds.
	MessagesDelayed uint64
}

// Prepared is the per-matrix state of the sharded backend, captured once
// by Prepare: the ownership partition, the validated diagonal, and one
// direction-stream key per worker. A Prepared is immutable and safe for
// concurrent use; fork Solvers from it to run.
type Prepared struct {
	a        *sparse.CSR
	part     Partition
	diag     []float64
	streams  []rng.Stream
	beta     float64
	queueCap int
	// tabs holds one alias table per rank over its owned diagonal slice;
	// nil when sampling is uniform (Config.DiagonalWeighted unset).
	tabs []*alias.Table
	// faults holds one injector per rank's outbox; nil when Config.Fault
	// injects nothing (the common case costs one nil check per send).
	faults []*fault.Injector
}

// Prepare validates the system and captures the sharded per-matrix state.
func Prepare(a *sparse.CSR, cfg Config) (*Prepared, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("distmem: matrix is %dx%d, need square", a.Rows, a.Cols)
	}
	w := cfg.Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	queueCap := cfg.QueueCap
	if queueCap < 1 {
		queueCap = 1
	}
	beta := cfg.Beta
	if beta == 0 {
		beta = 1
	}
	diag := a.Diag()
	for i, d := range diag {
		if d == 0 {
			return nil, fmt.Errorf("distmem: zero diagonal at row %d", i)
		}
	}
	part := Contiguous(n, w)
	if cfg.BalanceNNZ {
		part = NNZBalanced(a, w)
	}
	streams := make([]rng.Stream, w)
	for i := range streams {
		streams[i] = rng.NewStream(cfg.Seed ^ (uint64(i) * 0x9E3779B97F4A7C15))
	}
	var tabs []*alias.Table
	if cfg.DiagonalWeighted {
		// One table per rank over its owned diagonal slice, built once
		// here so every round (and every forked Solver) pays O(1) per
		// draw. The alias builder rejects negative weights; zero entries
		// were rejected above, so each block's distribution is valid.
		tabs = make([]*alias.Table, w)
		for id := 0; id < w; id++ {
			lo, hi := part.Block(id)
			tab, err := alias.New(diag[lo:hi])
			if err != nil {
				return nil, fmt.Errorf("distmem: diagonal-weighted sampling on rank %d block [%d,%d): %w", id, lo, hi, err)
			}
			tabs[id] = tab
		}
	}
	var faults []*fault.Injector
	if cfg.Fault.Enabled() {
		faults = make([]*fault.Injector, w)
		for id := range faults {
			faults[id] = fault.New(cfg.Fault, fmt.Sprintf("distmem.rank%d", id))
		}
	}
	return &Prepared{a: a, part: part, diag: diag, streams: streams, beta: beta, queueCap: queueCap, tabs: tabs, faults: faults}, nil
}

// Workers returns the rank count of the prepared deployment.
func (p *Prepared) Workers() int { return p.part.Workers() }

// Partition returns the ownership map (shared, do not mutate).
func (p *Prepared) Partition() Partition { return p.part }

// roundCmd is one round's work order, delivered to every pool worker.
type roundCmd struct {
	ctx     context.Context
	x, b    []float64
	sweeps  int
	base    uint64 // stream offset: iteration j samples index base+j
	inboxes []chan update
	sent    *atomic64
	dropped *atomic64
	delayed *atomic64
	maxQ    *atomicMax
	pick    func(worker, idx int) // test hook; nil outside tests
}

// Solver runs synchronized rounds of restricted-randomization sweeps on a
// persistent pool of worker goroutines forked from a Prepared. The pool
// is spawned once by NewSolver and reused by every round (and every
// right-hand side) until Close; per-worker stream offsets advance each
// round so rounds never replay a coordinate sequence. A Solver is not
// safe for concurrent use — fork one per in-flight solve.
type Solver struct {
	p       *Prepared
	cmds    []chan roundCmd
	iterate sync.WaitGroup // phase 1 of a round: everyone still sending
	drain   sync.WaitGroup // phase 2 of a round: final drains
	base    []uint64       // per-worker stream offset, advanced per round
	closed  bool
	onPick  func(worker, idx int) // test hook: observes sampled coordinates
}

// NewSolver spawns the persistent worker pool. Callers must Close it.
func (p *Prepared) NewSolver() *Solver {
	w := p.part.Workers()
	s := &Solver{p: p, cmds: make([]chan roundCmd, w), base: make([]uint64, w)}
	for id := 0; id < w; id++ {
		s.cmds[id] = make(chan roundCmd)
		go s.worker(id)
	}
	return s
}

// Close stops the worker pool; the Solver must not be used afterwards.
// Close is idempotent.
func (s *Solver) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, ch := range s.cmds {
		close(ch)
	}
}

// worker is one emulated rank: it lives for the Solver's lifetime and
// executes one roundCmd at a time. Its private iterate copy is a
// persistent buffer, refreshed from the shared x at every round start.
func (s *Solver) worker(id int) {
	p := s.p
	lo, hi := p.part.Block(id)
	w := p.part.Workers()
	local := make([]float64, p.a.Rows)
	stream := p.streams[id]
	var tab *alias.Table // non-nil: diagonal-weighted draw within the block
	if p.tabs != nil {
		tab = p.tabs[id]
	}
	var inj *fault.Injector // nil decides nothing: the no-fault fast path
	if p.faults != nil {
		inj = p.faults[id]
	}
	for cmd := range s.cmds[id] {
		copy(local, cmd.x)
		inbox := cmd.inboxes[id]

		applyAll := func() {
			for {
				select {
				case u := <-inbox:
					local[u.idx] += u.delta
				default:
					return
				}
			}
		}
		// deliver ships one committed update to one peer. A full peer
		// inbox is never blocked on: the non-blocking attempt is retried,
		// draining our own inbox between attempts, so a cycle of workers
		// with full inboxes always makes progress — somebody's inbox
		// gains room because everybody keeps consuming while waiting.
		deliver := func(peer int, u update) {
			if q := len(cmd.inboxes[peer]); q > 0 {
				cmd.maxQ.observe(q)
			}
			for delivered := false; !delivered; {
				select {
				case cmd.inboxes[peer] <- u:
					delivered = true
				default:
					applyAll()
					runtime.Gosched()
				}
			}
			cmd.sent.add(1)
		}
		// send fans one update out to every peer, consulting the fault
		// schedule per (iteration, peer): a dropped update is never
		// delivered, a delayed one is deferred to the end of the round —
		// the worst staleness the round structure allows.
		var deferred []deferredMsg
		send := func(at uint64, u update) {
			ord := uint64(0)
			for peer := 0; peer < w; peer++ {
				if peer == id {
					continue
				}
				d := inj.DecideAt(at*uint64(w-1) + ord)
				ord++
				switch {
				case d.Drop:
					inj.RecordDrop()
					cmd.dropped.add(1)
				case d.Delay:
					cmd.delayed.add(1)
					deferred = append(deferred, deferredMsg{peer: peer, u: u})
				default:
					deliver(peer, u)
				}
			}
		}

		iters := cmd.sweeps * (hi - lo)
		for j := 0; j < iters; j++ {
			// Poll cancellation cheaply; on cancel stop iterating but
			// still run the drain phase below so peers' in-flight sends
			// complete and the round terminates cleanly.
			if j&63 == 0 && cmd.ctx.Err() != nil {
				break
			}
			applyAll()
			var r int
			if tab != nil {
				r = lo + tab.Pick(stream, cmd.base+uint64(j))
			} else {
				r = lo + stream.IntnAt(cmd.base+uint64(j), hi-lo)
			}
			if cmd.pick != nil {
				cmd.pick(id, r)
			}
			gamma := (cmd.b[r] - p.a.RowDot(r, local)) / p.diag[r]
			delta := p.beta * gamma
			local[r] += delta
			send(cmd.base+uint64(j), update{idx: r, delta: delta})
		}
		// Flush delayed traffic before the iterate barrier: every peer is
		// still consuming (their final drain runs until the coordinator
		// closes the inboxes after this barrier), so delivery terminates.
		for _, m := range deferred {
			deliver(m.peer, m.u)
		}
		s.iterate.Done()
		// Final drain: consume peers' remaining traffic until the
		// coordinator closes this round's inbox, then publish the
		// authoritative (sole-updated) owner block.
		for u := range inbox {
			local[u.idx] += u.delta
		}
		copy(cmd.x[lo:hi], local[lo:hi])
		s.drain.Done()
	}
}

// round runs one synchronized round over the pool: fresh inboxes, a work
// order per worker, an iterate barrier, a drain barrier. On return x
// holds each owner's authoritative block. The stream offsets advance by
// the full round even when ctx cancels it early, so a resumed run never
// replays coordinates.
func (s *Solver) round(ctx context.Context, x, b []float64, sweeps int) (messages, dropped, delayed uint64, maxQueue int, err error) {
	p := s.p
	w := p.part.Workers()
	inboxes := make([]chan update, w)
	for i := range inboxes {
		inboxes[i] = make(chan update, p.queueCap*(w-1)+1)
	}
	var sent, drops, delays atomic64
	var maxQ atomicMax
	s.iterate.Add(w)
	s.drain.Add(w)
	for id := 0; id < w; id++ {
		lo, hi := p.part.Block(id)
		cmd := roundCmd{
			ctx: ctx, x: x, b: b, sweeps: sweeps, base: s.base[id],
			inboxes: inboxes, sent: &sent, dropped: &drops, delayed: &delays,
			maxQ: &maxQ, pick: s.onPick,
		}
		// Pool workers sit between rounds here, so the work order lands
		// as soon as the worker is scheduled. The cancellation arm keeps
		// the dispatch non-blocking: if ctx dies mid-dispatch, stand in
		// for the unreached worker at both barriers so the round still
		// terminates cleanly (its block simply goes un-updated).
		select {
		case s.cmds[id] <- cmd:
		case <-ctx.Done():
			s.iterate.Done()
			s.drain.Done()
		}
		s.base[id] += uint64(sweeps * (hi - lo))
	}
	s.iterate.Wait()
	for _, ch := range inboxes {
		close(ch)
	}
	s.drain.Wait()
	return sent.load(), drops.load(), delays.load(), maxQ.load(), ctx.Err()
}

// Solve runs one round of sweeps·(block size) restricted-randomization
// Gauss–Seidel iterations on every pool worker and assembles the solution
// from the owner blocks. x is both the initial guess and the output. A
// cancelled ctx stops the round early and returns the context's error
// alongside the partial result.
func (s *Solver) Solve(ctx context.Context, x, b []float64, sweeps int) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := s.p.a.Rows
	if len(x) != n || len(b) != n {
		return Result{}, fmt.Errorf("distmem: shape mismatch n=%d len(x)=%d len(b)=%d", n, len(x), len(b))
	}
	msgs, dropped, delayed, maxQ, err := s.round(ctx, x, b, sweeps)
	return Result{
		Residual:        relResidual(s.p.a, x, b),
		MessagesSent:    msgs,
		MaxQueueLen:     maxQ,
		MessagesDropped: dropped,
		MessagesDelayed: delayed,
	}, err
}

// SolveToTol repeats rounds of sweepsPerRound sweeps until the residual
// drops below tol or maxRounds is exhausted. Each round boundary is a
// global synchronization (the natural restart point of the occasional-
// synchronization scheme in a distributed deployment). The returned
// Result accumulates MessagesSent (sum) and MaxQueueLen (max) across
// rounds and reports the final round's residual; the int is the number of
// rounds run.
func (s *Solver) SolveToTol(ctx context.Context, x, b []float64, tol float64, sweepsPerRound, maxRounds int) (Result, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var total Result
	for round := 1; round <= maxRounds; round++ {
		res, err := s.Solve(ctx, x, b, sweepsPerRound)
		total.Residual = res.Residual
		total.MessagesSent += res.MessagesSent
		total.MessagesDropped += res.MessagesDropped
		total.MessagesDelayed += res.MessagesDelayed
		if res.MaxQueueLen > total.MaxQueueLen {
			total.MaxQueueLen = res.MaxQueueLen
		}
		if err != nil {
			return total, round, err
		}
		if res.Residual <= tol {
			return total, round, nil
		}
	}
	return total, maxRounds, fmt.Errorf("distmem: residual %g above tol %g after %d rounds", total.Residual, tol, maxRounds)
}

// Solve is the one-shot convenience path: Prepare plus a single round on
// a fresh pool. x is both the initial guess and the output.
func Solve(a *sparse.CSR, x, b []float64, sweeps int, cfg Config) (Result, error) {
	p, err := Prepare(a, cfg)
	if err != nil {
		return Result{}, err
	}
	s := p.NewSolver()
	defer s.Close()
	return s.Solve(context.Background(), x, b, sweeps)
}

// SolveToTol is the one-shot convenience path for a multi-round run: one
// Prepare, one persistent pool reused across every round.
func SolveToTol(a *sparse.CSR, x, b []float64, tol float64, sweepsPerRound, maxRounds int, cfg Config) (Result, int, error) {
	p, err := Prepare(a, cfg)
	if err != nil {
		return Result{}, 0, err
	}
	s := p.NewSolver()
	defer s.Close()
	return s.SolveToTol(context.Background(), x, b, tol, sweepsPerRound, maxRounds)
}

// relResidual is ‖b−Ax‖₂/‖b‖₂ (absolute when ‖b‖₂ = 0).
func relResidual(a *sparse.CSR, x, b []float64) float64 {
	var num, den float64
	for i := 0; i < a.Rows; i++ {
		r := b[i] - a.RowDot(i, x)
		num += r * r
		den += b[i] * b[i]
	}
	if den == 0 {
		return sqrt(num)
	}
	return sqrt(num / den)
}
