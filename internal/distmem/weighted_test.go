package distmem

// Tests for the diagonal-weighted rank-local draw: per-rank alias tables
// built once by Prepare, O(1) per pick, deterministic per (rank stream,
// iteration index).

import (
	"context"
	"sync"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// skewedSPD builds a diagonal matrix whose entries grow linearly, so the
// weighted distribution is strongly non-uniform and trivially SPD.
func skewedSPD(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, float64(i+1))
	}
	return coo.ToCSR()
}

func TestWeightedConverges(t *testing.T) {
	a := workload.RandomSPD(150, 4, 1.5, 11)
	b := workload.RandomRHS(150, 3)
	x := make([]float64, 150)
	cfg := Config{Workers: 4, QueueCap: 4, Seed: 5, DiagonalWeighted: true}
	if _, _, err := SolveToTol(a, x, b, 1e-6, 10, 200, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedDrawDeterministicAndInBlock pins the sampling contract:
// the weighted draw is a pure function of (rank stream, iteration
// index) — two solvers from one Prepared replay identical per-rank
// sequences — and every draw lands in the drawing rank's owned block.
func TestWeightedDrawDeterministicAndInBlock(t *testing.T) {
	a := skewedSPD(64)
	b := workload.RandomRHS(64, 1)
	cfg := Config{Workers: 4, QueueCap: 4, Seed: 9, DiagonalWeighted: true}

	run := func() map[int][]int {
		p, err := Prepare(a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := p.NewSolver()
		defer s.Close()
		var mu sync.Mutex
		picks := map[int][]int{}
		s.onPick = func(worker, idx int) {
			mu.Lock()
			picks[worker] = append(picks[worker], idx)
			mu.Unlock()
		}
		x := make([]float64, 64)
		if _, err := s.Solve(context.Background(), x, b, 3); err != nil {
			t.Fatal(err)
		}
		return picks
	}

	first := run()
	second := run()
	p, err := Prepare(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		lo, hi := p.Partition().Block(w)
		if len(first[w]) == 0 {
			t.Fatalf("rank %d drew nothing", w)
		}
		for _, idx := range first[w] {
			if idx < lo || idx >= hi {
				t.Fatalf("rank %d drew %d outside its block [%d,%d)", w, idx, lo, hi)
			}
		}
		if len(first[w]) != len(second[w]) {
			t.Fatalf("rank %d drew %d then %d coordinates", w, len(first[w]), len(second[w]))
		}
		for i := range first[w] {
			if first[w][i] != second[w][i] {
				t.Fatalf("rank %d pick %d: %d vs %d across identical runs", w, i, first[w][i], second[w][i])
			}
		}
	}
}

// TestWeightedDrawFollowsDiagonal checks the distribution itself on one
// rank: with diag ∝ i+1, the top half of the coordinates carries ~75% of
// the weight, so its draw share must be far above the uniform 50%.
func TestWeightedDrawFollowsDiagonal(t *testing.T) {
	const n = 64
	a := skewedSPD(n)
	b := workload.RandomRHS(n, 1)
	p, err := Prepare(a, Config{Workers: 1, QueueCap: 1, Seed: 2, DiagonalWeighted: true})
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSolver()
	defer s.Close()
	topHalf, total := 0, 0
	s.onPick = func(_, idx int) {
		if idx >= n/2 {
			topHalf++
		}
		total++
	}
	x := make([]float64, n)
	if _, err := s.Solve(context.Background(), x, b, 50); err != nil {
		t.Fatal(err)
	}
	// Expected share: sum(i+1, i in [n/2, n)) / sum(i+1, i in [0, n)) = 0.75.
	share := float64(topHalf) / float64(total)
	if share < 0.65 || share > 0.85 {
		t.Fatalf("top-half draw share %.3f over %d draws, want ≈0.75", share, total)
	}
}

func TestWeightedRejectsNegativeDiagonal(t *testing.T) {
	coo := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		coo.Add(i, i, 1)
	}
	coo.Add(2, 2, -3) // dedup sums to -2
	a := coo.ToCSR()
	if _, err := Prepare(a, Config{Workers: 2, DiagonalWeighted: true}); err == nil {
		t.Fatal("negative diagonal must fail weighted preparation")
	}
	// The same matrix is fine for the uniform draw (non-SPD, but
	// preparation only requires a non-zero diagonal).
	if _, err := Prepare(a, Config{Workers: 2}); err != nil {
		t.Fatalf("uniform preparation rejected a non-zero diagonal: %v", err)
	}
}
