package distmem

import (
	"testing"

	"github.com/asynclinalg/asyrgs/internal/dense"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func TestSingleWorkerMatchesSequentialRestrictedRGS(t *testing.T) {
	// One rank owns everything: the run is plain sequential randomized
	// Gauss–Seidel with the per-worker stream; no messages are sent.
	a := workload.RandomSPD(50, 4, 1.5, 1)
	b := workload.RandomRHS(50, 2)
	x := make([]float64, 50)
	res, err := Solve(a, x, b, 20, Config{Workers: 1, QueueCap: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesSent != 0 {
		t.Fatalf("single worker sent %d messages", res.MessagesSent)
	}
	if res.Residual > 1e-3 {
		t.Fatalf("residual %v", res.Residual)
	}
}

func TestDistributedConverges(t *testing.T) {
	a := workload.RandomSPD(200, 5, 1.5, 4)
	b := workload.RandomRHS(200, 5)
	want, err := dense.SolveCSR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 200)
	res, rounds, err := SolveToTol(a, x, b, 1e-8, 10, 100, Config{Workers: 4, QueueCap: 8, Seed: 6})
	if err != nil {
		t.Fatalf("after %d rounds: %v (res %v)", rounds, err, res)
	}
	if e := vec.RelErr(x, want); e > 1e-6 {
		t.Fatalf("solution error %v", e)
	}
	if res.MessagesSent == 0 {
		t.Fatal("multi-worker run must communicate")
	}
}

func TestTinyQueueStillConverges(t *testing.T) {
	// QueueCap 1 maximises backpressure (freshest possible reads at the
	// price of send stalls); the iteration must stay correct.
	a := workload.RandomSPD(120, 4, 1.5, 7)
	b := workload.RandomRHS(120, 8)
	x := make([]float64, 120)
	if _, _, err := SolveToTol(a, x, b, 1e-6, 10, 100, Config{Workers: 6, QueueCap: 1, Seed: 9}); err != nil {
		t.Fatal(err)
	}
}

func TestManyWorkersNoDeadlock(t *testing.T) {
	// More workers than cores with minimal queues: the drain-on-block
	// send must prevent cyclic full-queue deadlock.
	a := workload.RandomSPD(160, 4, 1.5, 10)
	b := workload.RandomRHS(160, 11)
	x := make([]float64, 160)
	res, err := Solve(a, x, b, 5, Config{Workers: 16, QueueCap: 1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual >= 1 {
		t.Fatalf("no progress: %v", res.Residual)
	}
}

func TestQueueCapacityTradesMessagesForStaleness(t *testing.T) {
	// Larger queues admit more in-flight staleness; the message count is
	// the same (every update is shipped to every peer) but the observed
	// backlog grows. Assert the backlog ordering, the physical knob the
	// emulation exposes.
	a := workload.RandomSPD(300, 5, 1.5, 13)
	b := workload.RandomRHS(300, 14)
	run := func(cap int) Result {
		x := make([]float64, 300)
		res, err := Solve(a, x, b, 10, Config{Workers: 4, QueueCap: cap, Seed: 15})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(1)
	large := run(64)
	if small.MessagesSent != large.MessagesSent {
		t.Fatalf("message counts differ: %d vs %d", small.MessagesSent, large.MessagesSent)
	}
	if large.MaxQueueLen < small.MaxQueueLen {
		t.Fatalf("larger queues should admit at least as much backlog: %d vs %d", large.MaxQueueLen, small.MaxQueueLen)
	}
	if small.Residual > 10*large.Residual && small.Residual > 1e-6 {
		t.Fatalf("fresher reads should not be much worse: %v vs %v", small.Residual, large.Residual)
	}
}

func TestValidation(t *testing.T) {
	a := workload.RandomSPD(10, 3, 1.5, 16)
	x := make([]float64, 9) // wrong length
	if _, err := Solve(a, x, make([]float64, 10), 1, Config{Workers: 2}); err == nil {
		t.Fatal("shape mismatch must error")
	}
	bad := workload.Laplacian2D(3, 3).Clone()
	// zero out a diagonal entry
	for k := bad.RowPtr[0]; k < bad.RowPtr[1]; k++ {
		if bad.ColIdx[k] == 0 {
			bad.Vals[k] = 0
		}
	}
	if _, err := Solve(bad, make([]float64, 9), make([]float64, 9), 1, Config{Workers: 2}); err == nil {
		t.Fatal("zero diagonal must error")
	}
}

func TestOwnershipAssembly(t *testing.T) {
	// The assembled solution must take each coordinate from its owner:
	// run one sweep and verify x changed in every block (owners iterate
	// over their whole block at least once... statistically; assert at
	// least half the blocks changed to stay robust).
	a := workload.RandomSPD(80, 4, 1.5, 17)
	b := workload.RandomRHS(80, 18)
	x := make([]float64, 80)
	if _, err := Solve(a, x, b, 3, Config{Workers: 4, QueueCap: 4, Seed: 19}); err != nil {
		t.Fatal(err)
	}
	changedBlocks := 0
	for w := 0; w < 4; w++ {
		lo, hi := w*20, (w+1)*20
		for i := lo; i < hi; i++ {
			if x[i] != 0 {
				changedBlocks++
				break
			}
		}
	}
	if changedBlocks < 2 {
		t.Fatalf("only %d blocks show owner updates", changedBlocks)
	}
}
