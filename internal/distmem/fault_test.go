package distmem

import (
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/dense"
	"github.com/asynclinalg/asyrgs/internal/fault"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// TestConvergesUnderMessageLoss is the paper's tolerance claim finally
// asserted under injected loss: with ~10% of update messages dropped
// the async iteration must still reach tol, inside a relaxed round
// budget (the clean run below converges well under half of it).
func TestConvergesUnderMessageLoss(t *testing.T) {
	a := workload.RandomSPD(200, 5, 1.5, 4)
	b := workload.RandomRHS(200, 5)
	want, err := dense.SolveCSR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 200)
	cfg := Config{Workers: 4, QueueCap: 8, Seed: 6, Fault: fault.Config{Seed: 21, DropRate: 0.1}}
	res, rounds, err := SolveToTol(a, x, b, 1e-8, 10, 200, cfg)
	if err != nil {
		t.Fatalf("after %d rounds: %v (res %v)", rounds, err, res)
	}
	if e := vec.RelErr(x, want); e > 1e-6 {
		t.Fatalf("solution error %v under 10%% drops", e)
	}
	if res.MessagesDropped == 0 {
		t.Fatal("DropRate 0.1 dropped nothing; the test exercised no faults")
	}
	total := res.MessagesSent + res.MessagesDropped
	if rate := float64(res.MessagesDropped) / float64(total); rate < 0.05 || rate > 0.15 {
		t.Fatalf("observed drop rate %.4f, want ~0.10", rate)
	}
}

// TestConvergesUnderMessageDelay: delayed updates are delivered at the
// end of their round — the maximum in-round staleness — and the
// iteration still converges. Delayed messages count in MessagesSent
// when they land, so sent+dropped covers every committed update.
func TestConvergesUnderMessageDelay(t *testing.T) {
	a := workload.RandomSPD(160, 4, 1.5, 7)
	b := workload.RandomRHS(160, 8)
	x := make([]float64, 160)
	cfg := Config{
		Workers: 4, QueueCap: 8, Seed: 9,
		// Latency arms the delay draw; distmem realizes Delay logically
		// (defer to round end) and never sleeps, so the duration's value
		// is irrelevant here.
		Fault: fault.Config{Seed: 22, LatencyRate: 0.2, Latency: time.Nanosecond},
	}
	res, rounds, err := SolveToTol(a, x, b, 1e-8, 10, 200, cfg)
	if err != nil {
		t.Fatalf("after %d rounds: %v (res %v)", rounds, err, res)
	}
	if res.MessagesDelayed == 0 {
		t.Fatal("LatencyRate 0.2 delayed nothing")
	}
	if res.MessagesDropped != 0 {
		t.Fatalf("delay-only config dropped %d messages", res.MessagesDropped)
	}
}

// TestFaultAccountingDeterministic pins the replay property the chaos
// harness relies on: under a fixed (config, seed) every run loses and
// defers exactly the same messages, because each decision is a pure
// function of (rank, iteration, peer) — no wall clock, no scheduler
// dependence.
func TestFaultAccountingDeterministic(t *testing.T) {
	a := workload.RandomSPD(120, 4, 1.5, 10)
	b := workload.RandomRHS(120, 11)
	run := func() Result {
		x := make([]float64, 120)
		res, err := Solve(a, x, b, 10, Config{
			Workers: 4, QueueCap: 4, Seed: 12,
			Fault: fault.Config{Seed: 33, DropRate: 0.1, LatencyRate: 0.1, Latency: time.Nanosecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.MessagesDropped != r2.MessagesDropped || r1.MessagesDelayed != r2.MessagesDelayed {
		t.Fatalf("fault accounting not deterministic: %d/%d dropped, %d/%d delayed",
			r1.MessagesDropped, r2.MessagesDropped, r1.MessagesDelayed, r2.MessagesDelayed)
	}
	if r1.MessagesSent != r2.MessagesSent {
		t.Fatalf("sent counts differ under a fixed fault schedule: %d vs %d", r1.MessagesSent, r2.MessagesSent)
	}
	// Every committed update is accounted exactly once per peer: w·(w−1)
	// fan-out over sweeps·n iterations, minus nothing.
	iters := uint64(10 * 120) // sweeps · n, summed over owners
	if got := r1.MessagesSent + r1.MessagesDropped; got != iters*3 {
		t.Fatalf("sent+dropped = %d, want %d (every update × 3 peers)", got, iters*3)
	}
}

// TestOwnerBlocksSurviveDrops: drops lose peer views, never owner
// state — the assembled solution still takes every coordinate from its
// sole updater, so even 50% loss yields a consistent (if slower)
// iteration that makes progress.
func TestOwnerBlocksSurviveDrops(t *testing.T) {
	a := workload.RandomSPD(160, 4, 1.5, 13)
	b := workload.RandomRHS(160, 14)
	x := make([]float64, 160)
	res, err := Solve(a, x, b, 10, Config{
		Workers: 4, QueueCap: 4, Seed: 15,
		Fault: fault.Config{Seed: 44, DropRate: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual >= 1 {
		t.Fatalf("no progress under 50%% loss: residual %v", res.Residual)
	}
}

// TestZeroFaultConfigIsFree: a zero Fault config must leave results
// byte-identical to the pre-fault path (nil injectors, no accounting).
func TestZeroFaultConfigIsFree(t *testing.T) {
	a := workload.RandomSPD(80, 4, 1.5, 17)
	b := workload.RandomRHS(80, 18)
	solve := func(cfg Config) ([]float64, Result) {
		x := make([]float64, 80)
		res, err := Solve(a, x, b, 5, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return x, res
	}
	_, r1 := solve(Config{Workers: 4, QueueCap: 4, Seed: 19})
	_, r2 := solve(Config{Workers: 4, QueueCap: 4, Seed: 19, Fault: fault.Config{Seed: 99}})
	if r2.MessagesDropped != 0 || r2.MessagesDelayed != 0 {
		t.Fatalf("zero-rate fault config injected: %+v", r2)
	}
	// Message counts are schedule-independent (every committed update
	// fans out to every peer); solutions are not bit-identical because
	// async application order varies run to run even without faults.
	if r1.MessagesSent != r2.MessagesSent {
		t.Fatalf("message counts differ: %d vs %d", r1.MessagesSent, r2.MessagesSent)
	}
}
