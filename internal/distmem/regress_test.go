// Regression tests for the sharded backend's historical bugs: the
// send-retry deadlock window (a blocking send after one drain attempt),
// the per-round-only message/backlog accounting of SolveToTol, and the
// per-round seed reuse that replayed identical coordinate sequences.
package distmem

import (
	"context"
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/workload"
)

// TestSendRetryNoDeadlock provokes the old deadlock shape: QueueCap=1
// with many more workers than cores forces inboxes full on nearly every
// send, so a ring of workers blocked on each other's full queues used to
// deadlock once the single drain-and-retry attempt fell through to a
// plain blocking send. The fixed send retries (draining between
// attempts) until it succeeds; the timeout guard turns a regression into
// a test failure instead of a hung suite.
func TestSendRetryNoDeadlock(t *testing.T) {
	a := workload.RandomSPD(256, 4, 1.5, 21)
	b := workload.RandomRHS(256, 22)
	done := make(chan Result, 1)
	go func() {
		x := make([]float64, 256)
		res, err := Solve(a, x, b, 8, Config{Workers: 32, QueueCap: 1, Seed: 23})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	select {
	case res := <-done:
		if res.MessagesSent == 0 {
			t.Fatal("32-worker run must communicate")
		}
		if res.Residual >= 1 {
			t.Fatalf("no progress: %v", res.Residual)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("send deadlocked: full-queue cycle did not drain (old unconditional-break bug)")
	}
}

// TestSolveToTolAccumulatesAcrossRounds: SolveToTol must report the sum
// of messages and the max backlog over every round, not the final
// round's numbers. The message count of one round is deterministic —
// every worker performs sweeps·(block size) iterations and ships each
// update to the other w−1 ranks — so R rounds must report exactly R
// times one round's traffic.
func TestSolveToTolAccumulatesAcrossRounds(t *testing.T) {
	a := workload.RandomSPD(120, 4, 1.5, 31)
	b := workload.RandomRHS(120, 32)
	cfg := Config{Workers: 4, QueueCap: 2, Seed: 33}
	const sweeps = 3

	x1 := make([]float64, 120)
	oneRound, err := Solve(a, x1, b, sweeps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perRound := oneRound.MessagesSent
	if perRound != uint64(sweeps*120*(4-1)) {
		t.Fatalf("unexpected per-round traffic: %d", perRound)
	}

	const rounds = 5
	x := make([]float64, 120)
	// tol = 0 is unreachable, so exactly maxRounds rounds run.
	res, ran, err := SolveToTol(a, x, b, 0, sweeps, rounds, cfg)
	if err == nil {
		t.Fatal("tol 0 must exhaust the round budget with an error")
	}
	if ran != rounds {
		t.Fatalf("ran %d rounds, want %d", ran, rounds)
	}
	if res.MessagesSent != uint64(rounds)*perRound {
		t.Fatalf("messages not accumulated: got %d, want %d rounds x %d", res.MessagesSent, rounds, perRound)
	}
	if res.MaxQueueLen < oneRound.MaxQueueLen {
		t.Fatalf("max backlog must be the max over rounds: got %d, single round saw %d", res.MaxQueueLen, oneRound.MaxQueueLen)
	}
}

// TestRoundsSampleFreshCoordinates: each round must advance the
// per-worker stream offsets, so no round replays the previous round's
// coordinate sequence (the old code passed the same seed and offset 0 to
// every round, making rounds identically sampled instead of i.i.d.).
func TestRoundsSampleFreshCoordinates(t *testing.T) {
	a := workload.RandomSPD(64, 4, 1.5, 41)
	b := workload.RandomRHS(64, 42)
	p, err := Prepare(a, Config{Workers: 2, QueueCap: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSolver()
	defer s.Close()

	const sweeps = 2
	picks := map[int][][]int{} // worker -> per-round coordinate sequences
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	round := 0
	s.onPick = func(worker, idx int) {
		<-mu
		for len(picks[worker]) <= round {
			picks[worker] = append(picks[worker], nil)
		}
		picks[worker][round] = append(picks[worker][round], idx)
		mu <- struct{}{}
	}
	x := make([]float64, 64)
	for r := 0; r < 2; r++ {
		round = r
		if _, err := s.Solve(context.Background(), x, b, sweeps); err != nil {
			t.Fatal(err)
		}
	}
	for worker, rounds := range picks {
		if len(rounds) != 2 {
			t.Fatalf("worker %d recorded %d rounds", worker, len(rounds))
		}
		if len(rounds[0]) == 0 || len(rounds[0]) != len(rounds[1]) {
			t.Fatalf("worker %d: uneven rounds %d vs %d", worker, len(rounds[0]), len(rounds[1]))
		}
		same := true
		for j := range rounds[0] {
			if rounds[0][j] != rounds[1][j] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("worker %d replayed the identical coordinate sequence across rounds: %v", worker, rounds[0])
		}
	}
}

// TestPersistentPoolReuse: a Solver must survive many rounds and
// right-hand sides on one set of goroutines, and its offsets must keep
// advancing monotonically.
func TestPersistentPoolReuse(t *testing.T) {
	a := workload.RandomSPD(100, 4, 1.5, 51)
	p, err := Prepare(a, Config{Workers: 4, QueueCap: 2, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSolver()
	defer s.Close()
	for rhs := 0; rhs < 3; rhs++ {
		b := workload.RandomRHS(100, uint64(60+rhs))
		x := make([]float64, 100)
		res, _, err := s.SolveToTol(context.Background(), x, b, 1e-8, 5, 200)
		if err != nil {
			t.Fatalf("rhs %d: %v (res %+v)", rhs, err, res)
		}
	}
	for id, base := range s.base {
		if base == 0 {
			t.Fatalf("worker %d stream offset never advanced", id)
		}
	}
}

// TestSolveHonoursContext: a cancelled context stops a round early
// without deadlocking the pool, and the Solver stays usable afterwards.
func TestSolveHonoursContext(t *testing.T) {
	a := workload.RandomSPD(200, 4, 1.5, 71)
	b := workload.RandomRHS(200, 72)
	p, err := Prepare(a, Config{Workers: 8, QueueCap: 1, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSolver()
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := make([]float64, 200)
	if _, err := s.Solve(ctx, x, b, 50); err == nil {
		t.Fatal("cancelled round must report the context error")
	}
	// The pool must still run a healthy round after a cancelled one.
	if _, err := s.Solve(context.Background(), x, b, 2); err != nil {
		t.Fatalf("pool unusable after cancellation: %v", err)
	}
}

// TestNNZBalancedPartition: the balanced partitioner must produce a
// valid ownership map whose worst block nonzero count beats equal-width
// blocks on a matrix with strongly skewed row densities.
func TestNNZBalancedPartition(t *testing.T) {
	// A Gram-style matrix: social workloads concentrate nnz in few rows.
	gram, _ := workload.SocialGram(workload.DefaultSocialGram(400, 81))
	const w = 8
	part := NNZBalanced(gram, w)
	if part.Workers() != w {
		t.Fatalf("want %d blocks, got %d", w, part.Workers())
	}
	if part.Bounds[0] != 0 || part.Bounds[w] != gram.Rows {
		t.Fatalf("bounds must cover [0,n): %v", part.Bounds)
	}
	blockNNZ := func(p Partition) (worst int) {
		for i := 0; i < p.Workers(); i++ {
			lo, hi := p.Block(i)
			if hi <= lo {
				t.Fatalf("empty block %d: %v", i, p.Bounds)
			}
			if nz := gram.RowPtr[hi] - gram.RowPtr[lo]; nz > worst {
				worst = nz
			}
		}
		return worst
	}
	balanced := blockNNZ(part)
	uniform := blockNNZ(Contiguous(gram.Rows, w))
	if balanced > uniform {
		t.Fatalf("nnz-balanced worst block (%d nnz) worse than equal-width (%d nnz)", balanced, uniform)
	}
	for i := 0; i < gram.Rows; i += 37 {
		owner := part.Owner(i)
		if lo, hi := part.Block(owner); i < lo || i >= hi {
			t.Fatalf("Owner(%d) = %d but block is [%d,%d)", i, owner, lo, hi)
		}
	}
	// A balanced solve must still converge.
	b := workload.RandomRHS(gram.Rows, 82)
	x := make([]float64, gram.Rows)
	if _, _, err := SolveToTol(gram, x, b, 1e-6, 10, 200, Config{Workers: w, QueueCap: 4, Seed: 83, BalanceNNZ: true}); err != nil {
		t.Fatal(err)
	}
}
