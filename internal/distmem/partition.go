package distmem

import "github.com/asynclinalg/asyrgs/internal/sparse"

// Partition is the coordinate-ownership map of a sharded run: worker i
// owns — and is the sole updater of — the contiguous coordinate block
// [Bounds[i], Bounds[i+1]). Bounds is strictly increasing with
// Bounds[0] = 0 and Bounds[len(Bounds)-1] = n, so every coordinate has
// exactly one owner and no block is empty.
type Partition struct {
	Bounds []int
}

// Workers returns the number of blocks.
func (p Partition) Workers() int { return len(p.Bounds) - 1 }

// Block returns worker i's half-open coordinate range [lo, hi).
func (p Partition) Block(i int) (lo, hi int) { return p.Bounds[i], p.Bounds[i+1] }

// Owner returns the worker owning coordinate idx (binary search).
func (p Partition) Owner(idx int) int {
	lo, hi := 0, p.Workers()-1
	for lo < hi {
		mid := (lo + hi) / 2
		if idx >= p.Bounds[mid+1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contiguous splits n coordinates into w equal-width contiguous blocks
// (the last blocks are one shorter when w does not divide n). It panics
// unless 1 <= w <= n.
func Contiguous(n, w int) Partition {
	if w < 1 || w > n {
		panic("distmem: Contiguous needs 1 <= workers <= n")
	}
	b := make([]int, w+1)
	for i := 0; i <= w; i++ {
		b[i] = i * n / w
	}
	return Partition{Bounds: b}
}

// NNZBalanced splits the rows of a into w contiguous blocks of roughly
// equal nonzero count, so ranks owning dense rows own fewer of them and
// per-round work stays balanced on skewed matrices (each restricted
// Gauss–Seidel step costs one RowDot, i.e. the row's nnz). Every block is
// non-empty. It panics unless 1 <= w <= a.Rows.
func NNZBalanced(a *sparse.CSR, w int) Partition {
	n := a.Rows
	if w < 1 || w > n {
		panic("distmem: NNZBalanced needs 1 <= workers <= rows")
	}
	bounds := make([]int, w+1)
	bounds[w] = n
	total := int64(a.RowPtr[n])
	prev := 0
	for i := 1; i < w; i++ {
		target := total * int64(i) / int64(w)
		b := prev + 1       // keep block i-1 non-empty
		maxB := n - (w - i) // leave one row for each remaining block
		for b < maxB && int64(a.RowPtr[b]) < target {
			b++
		}
		bounds[i] = b
		prev = b
	}
	return Partition{Bounds: bounds}
}
