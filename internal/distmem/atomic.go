package distmem

import (
	"math"
	"sync/atomic"
)

// atomic64 is a tiny counter wrapper keeping the main file readable.
type atomic64 struct{ v uint64 }

func (a *atomic64) add(d uint64) { atomic.AddUint64(&a.v, d) }
func (a *atomic64) load() uint64 { return atomic.LoadUint64(&a.v) }

// atomicMax tracks a maximum with CAS.
type atomicMax struct{ v int64 }

func (m *atomicMax) observe(x int) {
	for {
		cur := atomic.LoadInt64(&m.v)
		if int64(x) <= cur || atomic.CompareAndSwapInt64(&m.v, cur, int64(x)) {
			return
		}
	}
}

func (m *atomicMax) load() int { return int(atomic.LoadInt64(&m.v)) }

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
