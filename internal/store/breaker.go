package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen reports an operation rejected without touching the
// backend because the circuit breaker is open. Callers treat it as a
// miss (serving degrades to a fresh Prepare), never as a store error.
var ErrBreakerOpen = errors.New("store: circuit breaker open")

// Clock is an injected monotonic time source: a duration since some
// fixed origin. The store package may not read the wall clock itself
// (the determinism analyzer bans time.Now here), so the breaker's probe
// timer runs on whatever clock the caller supplies — serve wires a real
// monotonic clock, tests wire a hand-cranked fake.
type Clock func() time.Duration

// BreakerConfig declares the circuit breaker guarding a PrepStore's
// backend. The zero value disables the breaker.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that trips the breaker
	// open; <= 0 disables the breaker.
	Failures int
	// Probe is how long the breaker stays open before letting one
	// half-open probe through.
	Probe time.Duration
	// Clock drives the probe timer; nil disables the breaker.
	Clock Clock
}

// Enabled reports whether the config describes a working breaker.
func (c BreakerConfig) Enabled() bool {
	return c.Failures > 0 && c.Probe > 0 && c.Clock != nil
}

// breaker states. The machine is the classic three-state breaker:
// closed counts consecutive failures; open rejects everything until the
// probe timer fires; half-open admits exactly one probe whose outcome
// decides closed vs open again.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the state machine. All transitions run under mu; trips is
// additionally atomic so counter snapshots never take the lock.
type breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    int
	fails    int           // consecutive failures while closed
	openedAt time.Duration // clock reading at the open transition
	probing  bool          // a half-open probe is in flight

	trips atomic.Uint64
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg}
}

// allow reports whether the next operation may touch the backend. In
// the open state it also advances to half-open once the probe interval
// has elapsed, in which case the calling operation *is* the probe;
// concurrent callers during a probe are rejected, so exactly one
// request pays for the experiment.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.cfg.Clock()-b.openedAt < b.cfg.Probe {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records one operation that completed against the backend.
// A successful half-open probe closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == breakerHalfOpen {
		b.state = breakerClosed
		b.probing = false
	}
}

// failure records one operation that exhausted its retries. Reaching
// the consecutive-failure threshold while closed trips the breaker; a
// failed half-open probe reopens it (and re-arms the probe timer).
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.cfg.Failures {
			b.trip()
		}
	case breakerHalfOpen:
		b.probing = false
		b.trip()
	}
}

// trip moves to open under mu and stamps the probe timer.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.fails = 0
	b.openedAt = b.cfg.Clock()
	b.trips.Add(1)
}

// stateName reports the current state for /stats and /readyz. A nil
// breaker (store built without one) reads "disabled".
func (b *breaker) stateName() string {
	if b == nil {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// tripCount reports the lifetime number of closed→open transitions.
func (b *breaker) tripCount() uint64 {
	if b == nil {
		return 0
	}
	return b.trips.Load()
}
