package store

import (
	"bytes"
	"testing"
)

// FuzzBlobDecode drives arbitrary bytes through the envelope decoder:
// it must never panic or over-allocate, a successful decode must carry
// an internally consistent hash (re-encoding reproduces a decodable
// blob), and an honest re-encode of whatever was decoded must round-trip.
func FuzzBlobDecode(f *testing.F) {
	f.Add("k", EncodeBlob("k", []byte("payload")))
	f.Add("k", EncodeBlob("other-key", []byte("payload")))
	f.Add("lap2d:abcd|asyrgs|p=f64", EncodeBlob("lap2d:abcd|asyrgs|p=f64", nil))
	f.Add("k", []byte("ASPS"))
	f.Add("k", []byte{})
	long := EncodeBlob("k", bytes.Repeat([]byte{0xAB}, 4096))
	long[9]++ // corrupt the key-length prefix
	f.Add("k", long)
	f.Fuzz(func(t *testing.T, key string, blob []byte) {
		payload, err := DecodeBlob(key, blob)
		if err != nil {
			return
		}
		// A blob the verifier accepted must round-trip bit-exactly.
		back, err := DecodeBlob(key, EncodeBlob(key, payload))
		if err != nil {
			t.Fatalf("re-encode of accepted payload rejected: %v", err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatalf("round-trip mismatch: %x vs %x", back, payload)
		}
	})
}

// FuzzDecFields drives the typed decoder over arbitrary bytes: every
// read must either succeed or latch an error — never panic, never
// allocate beyond the input's own size class.
func FuzzDecFields(f *testing.F) {
	var e Enc
	e.F64s([]float64{1, 2, 3})
	e.Ints([]int{4, 5})
	e.Str("s")
	f.Add(e.Bytes())
	f.Fuzz(func(t *testing.T, buf []byte) {
		d := NewDec(buf)
		_ = d.F64s()
		_ = d.Ints()
		_ = d.Str()
		_ = d.Bytes64()
		_ = d.U8()
		_ = d.Close()
	})
}
