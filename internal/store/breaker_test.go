package store

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-cranked monotonic clock for breaker tests — the
// satellite requirement is explicit: table-driven, no sleeps.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func newTestBreaker(failures int, probe time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{}
	return newBreaker(BreakerConfig{Failures: failures, Probe: probe, Clock: clk.Now}), clk
}

// TestBreakerTransitions drives the full state machine through a
// scripted sequence of outcomes and clock advances.
func TestBreakerTransitions(t *testing.T) {
	const (
		opOK      = "ok"      // allow must admit; report success
		opFail    = "fail"    // allow must admit; report failure
		opDenied  = "denied"  // allow must reject
		opAdvance = "advance" // crank the clock past the probe interval
	)
	cases := []struct {
		name      string
		script    []string
		wantState string
		wantTrips uint64
	}{
		{"stays closed below threshold", []string{opFail, opFail, opOK, opFail, opFail}, "closed", 0},
		{"success resets the failure count", []string{opFail, opFail, opOK, opFail, opFail, opOK}, "closed", 0},
		{"trips open at N consecutive failures", []string{opFail, opFail, opFail}, "open", 1},
		{"open rejects before the probe timer", []string{opFail, opFail, opFail, opDenied, opDenied}, "open", 1},
		{"half-open probe success closes", []string{opFail, opFail, opFail, opAdvance, opOK}, "closed", 1},
		{"half-open probe failure reopens", []string{opFail, opFail, opFail, opAdvance, opFail}, "open", 2},
		{"reopened breaker re-arms its probe timer", []string{opFail, opFail, opFail, opAdvance, opFail, opDenied, opAdvance, opOK}, "closed", 2},
		{"closed again counts failures from zero", []string{opFail, opFail, opFail, opAdvance, opOK, opFail, opFail}, "closed", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, clk := newTestBreaker(3, time.Second)
			for i, step := range tc.script {
				switch step {
				case opOK, opFail:
					if !b.allow() {
						t.Fatalf("step %d (%s): allow() = false in state %s", i, step, b.stateName())
					}
					if step == opOK {
						b.success()
					} else {
						b.failure()
					}
				case opDenied:
					if b.allow() {
						t.Fatalf("step %d: allow() = true, want rejection in state %s", i, b.stateName())
					}
				case opAdvance:
					clk.Advance(time.Second)
				}
			}
			if got := b.stateName(); got != tc.wantState {
				t.Errorf("state = %q, want %q", got, tc.wantState)
			}
			if got := b.tripCount(); got != tc.wantTrips {
				t.Errorf("trips = %d, want %d", got, tc.wantTrips)
			}
		})
	}
}

// TestBreakerSingleProbe pins the half-open concurrency contract: after
// the probe timer fires, exactly one caller is admitted as the probe no
// matter how many race for it; everyone else is rejected until the
// probe reports.
func TestBreakerSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	if !b.allow() {
		t.Fatal("closed breaker rejected")
	}
	b.failure() // threshold 1: trips immediately
	clk.Advance(2 * time.Second)

	const callers = 32
	var admitted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.allow() {
				mu.Lock()
				admitted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if admitted != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", admitted)
	}
	if got := b.stateName(); got != "half-open" {
		t.Fatalf("state = %q, want half-open while probe in flight", got)
	}
	b.success()
	if got := b.stateName(); got != "closed" {
		t.Fatalf("state after probe success = %q, want closed", got)
	}
	if !b.allow() {
		t.Fatal("closed breaker rejected after recovery")
	}
}

// TestBreakerDisabled covers the nil breaker every plain NewPrepStore
// carries.
func TestBreakerDisabled(t *testing.T) {
	var b *breaker
	if got := b.stateName(); got != "disabled" {
		t.Fatalf("nil breaker state = %q, want disabled", got)
	}
	if got := b.tripCount(); got != 0 {
		t.Fatalf("nil breaker trips = %d, want 0", got)
	}
	cfgs := []BreakerConfig{
		{},
		{Failures: 3},
		{Failures: 3, Probe: time.Second},
		{Probe: time.Second, Clock: (&fakeClock{}).Now},
	}
	for i, cfg := range cfgs {
		if cfg.Enabled() {
			t.Errorf("config %d (%+v) reports enabled", i, cfg)
		}
	}
}
