package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
)

// The blob envelope is the on-backend frame around a method-encoded
// payload. Layout (little-endian):
//
//	magic   [4]byte  "ASPS"
//	version u16      envelope format (1)
//	key     str      the content-addressed prepKey, echoed for pairing
//	sum     [32]byte sha256 of the payload
//	payload bytes64  the method family's encoded prepared state
//
// DecodeBlob re-derives the payload hash and compares it to the stored
// sum, so any bit flip, truncation, or splice between Put and Get fails
// verification. The key echo defends against backend-level misfiling: a
// blob returned for the wrong key (a buggy backend, a hand-moved file)
// is rejected even though its hash is internally consistent.

// blobMagic brands every envelope ("ASyrgs Prepared System").
var blobMagic = [4]byte{'A', 'S', 'P', 'S'}

// blobVersion is the current envelope format. Decoders reject other
// versions, so a future layout change can never be misparsed as v1.
const blobVersion = 1

// EncodeBlob frames a payload for storage under key.
func EncodeBlob(key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var e Enc
	e.buf = make([]byte, 0, len(key)+len(payload)+64)
	e.buf = append(e.buf, blobMagic[:]...)
	e.U32(blobVersion)
	e.Str(key)
	e.buf = append(e.buf, sum[:]...)
	e.Bytes64(payload)
	return e.Bytes()
}

// DecodeBlob verifies an envelope read back for key and returns its
// payload. Any structural damage, version or key mismatch, or hash
// mismatch returns an error wrapping ErrCorrupt — callers treat all of
// them as "this blob does not exist" and fall back to a fresh Prepare.
func DecodeBlob(key string, blob []byte) ([]byte, error) {
	d := NewDec(blob)
	magic := d.take(4)
	if d.Err() == nil && !bytes.Equal(magic, blobMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := d.U32(); d.Err() == nil && v != blobVersion {
		return nil, fmt.Errorf("%w: envelope version %d, want %d", ErrCorrupt, v, blobVersion)
	}
	if k := d.Str(); d.Err() == nil && k != key {
		return nil, fmt.Errorf("%w: blob is keyed %q, wanted %q", ErrCorrupt, k, key)
	}
	sum := d.take(sha256.Size)
	payload := d.Bytes64()
	if err := d.Close(); err != nil {
		return nil, err
	}
	if got := sha256.Sum256(payload); !bytes.Equal(sum, got[:]) {
		return nil, fmt.Errorf("%w: payload hash mismatch", ErrCorrupt)
	}
	return payload, nil
}
