// Package store is the durable tier behind the daemon's prepared-system
// LRU: a content-addressed blob store with pluggable backends and
// integrity-checked load. Prepared solver state (Gram/CSC views, norms,
// sampling weights) is expensive to rebuild and cheap to serialize, so a
// restart or eviction no longer throws the Prepare work away — blobs are
// keyed by the serving layer's prepKey (matrix hash × method ×
// prep-opts) and verified with sha256 on every read, so a corrupted or
// truncated blob degrades to a fresh Prepare instead of wrong state.
//
// The package has three layers:
//
//   - Backend: a minimal blob interface (Put/Get/Delete/Len) with a
//     process-memory implementation and a local-directory implementation;
//     an S3-compatible backend slots in behind the same four calls.
//   - the blob envelope (blob.go): a versioned binary frame carrying the
//     key echo and the payload's sha256, checked on decode.
//   - PrepStore (prepstore.go): the serving-facing wrapper that restores
//     synchronously and spills through one bounded background writer, so
//     encoding and backend writes never run on a request path.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// ErrNotFound reports a key with no stored blob. Backends must return it
// (or wrap it) from Get and Delete for absent keys so callers can tell a
// miss from an I/O failure.
var ErrNotFound = errors.New("store: blob not found")

// Backend is the pluggable blob layer: a flat keyed byte store with no
// semantics beyond durability of Put. Implementations must be safe for
// concurrent use. The interface is deliberately the intersection of a
// process map, a directory, and an S3-style object store — Put is a full
// overwrite, Get returns the whole blob, and listing is reduced to a
// count (the store is content-addressed, so enumeration is never needed
// to serve traffic).
type Backend interface {
	// Put durably stores blob under key, replacing any previous value.
	Put(key string, blob []byte) error
	// Get returns the blob stored under key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// Delete removes key's blob; deleting an absent key is ErrNotFound.
	Delete(key string) error
	// Len returns the number of stored blobs (diagnostics only).
	Len() (int, error)
}

// Memory is the in-process Backend: a mutex-guarded map. It makes the
// spill/restore machinery testable without touching disk and doubles as
// a shared cache tier when several servers run in one process.
type Memory struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemory returns an empty in-process backend.
func NewMemory() *Memory {
	return &Memory{blobs: map[string][]byte{}}
}

// Put stores a private copy of blob, so callers may reuse their buffer.
func (m *Memory) Put(key string, blob []byte) error {
	cp := make([]byte, len(blob))
	copy(cp, blob)
	m.mu.Lock()
	m.blobs[key] = cp
	m.mu.Unlock()
	return nil
}

// Get returns the stored blob. The returned slice is shared — callers
// must not mutate it (DecodeBlob only reads).
func (m *Memory) Get(key string) ([]byte, error) {
	m.mu.Lock()
	blob, ok := m.blobs[key]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return blob, nil
}

// Delete removes the blob.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[key]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	delete(m.blobs, key)
	return nil
}

// Len returns the number of stored blobs.
func (m *Memory) Len() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blobs), nil
}

// Dir is the local-filesystem Backend: one file per blob under a root
// directory, written atomically (temp file + rename) so a crash mid-Put
// never leaves a torn blob where Get can find it. File names embed a
// sanitized prefix of the key for operator readability plus the key's
// full sha256, which is what actually addresses the blob — two distinct
// keys can never collide on one file.
type Dir struct {
	root string
}

// blobExt marks the backend's files, so a sweep of the directory can
// tell its blobs from anything else living there.
const blobExt = ".asps"

// NewDir opens (creating if needed) a directory-backed store rooted at
// root.
func NewDir(root string) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating blob dir: %w", err)
	}
	return &Dir{root: root}, nil
}

// Root returns the backing directory.
func (d *Dir) Root() string { return d.root }

// path maps a key to its file. The readable prefix keeps `ls` useful;
// the sha256 hex makes the mapping injective regardless of what
// characters the key contains.
func (d *Dir) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	var pfx strings.Builder
	for _, r := range key {
		if pfx.Len() >= 40 {
			break
		}
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
			pfx.WriteRune(r)
		default:
			pfx.WriteByte('_')
		}
	}
	return filepath.Join(d.root, pfx.String()+"-"+hex.EncodeToString(sum[:])+blobExt)
}

// Put writes the blob to a temp file in the same directory and renames
// it over the final name — atomic on POSIX filesystems, so readers see
// either the old blob or the new one, never a prefix.
func (d *Dir) Put(key string, blob []byte) error {
	dst := d.path(key)
	tmp, err := os.CreateTemp(d.root, ".put-*")
	if err != nil {
		return fmt.Errorf("store: creating temp blob: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("store: writing blob: %w", err)
	}
	// Fsync before rename: the rename's atomicity only orders metadata,
	// so on non-ordered filesystems a crash shortly after Put could
	// otherwise surface a zero-length or partial blob under the final
	// name. The envelope check would catch it, but the store must not
	// manufacture corrupt blobs itself.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("store: syncing blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: closing blob: %w", err)
	}
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: publishing blob: %w", err)
	}
	return nil
}

// Get reads the whole blob file.
func (d *Dir) Get(key string) ([]byte, error) {
	blob, err := os.ReadFile(d.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading blob: %w", err)
	}
	return blob, nil
}

// Delete removes the blob file.
func (d *Dir) Delete(key string) error {
	err := os.Remove(d.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err != nil {
		return fmt.Errorf("store: deleting blob: %w", err)
	}
	return nil
}

// Len counts the store's blob files under the root.
func (d *Dir) Len() (int, error) {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return 0, fmt.Errorf("store: listing blob dir: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), blobExt) {
			n++
		}
	}
	return n, nil
}
