package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Enc and Dec are the store's little-endian binary codec, shared by the
// blob envelope and by the method-family payload codecs. They exist so
// the per-family serializers stay declarative (a sequence of typed
// appends and reads) and so every decode path inherits one set of
// defensive bounds checks: a length prefix is validated against the
// bytes actually remaining before anything is allocated, which keeps a
// corrupted or adversarial payload from requesting an absurd slice.

// ErrCorrupt reports a payload that failed structural decoding: a
// truncated field, a length prefix exceeding the remaining bytes, or a
// trailing-garbage mismatch.
var ErrCorrupt = errors.New("store: corrupt payload")

// Enc appends typed fields to a growing buffer.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Int appends a non-negative int as a uint64.
func (e *Enc) Int(v int) { e.U64(uint64(v)) }

// Bytes64 appends a length-prefixed byte slice.
func (e *Enc) Bytes64(v []byte) {
	e.U64(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// Str appends a length-prefixed string.
func (e *Enc) Str(v string) {
	e.U64(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// F64s appends a length-prefixed float64 slice as raw IEEE-754 bits.
func (e *Enc) F64s(v []float64) {
	e.U64(uint64(len(v)))
	for _, f := range v {
		e.U64(math.Float64bits(f))
	}
}

// Ints appends a length-prefixed []int, each entry as a uint64.
func (e *Enc) Ints(v []int) {
	e.U64(uint64(len(v)))
	for _, i := range v {
		e.U64(uint64(i))
	}
}

// Dec consumes typed fields from a buffer. The first malformed read
// latches Err and every later read returns zero values, so decoders can
// read a whole record and check the error once at the end.
type Dec struct {
	buf []byte
	err error
}

// NewDec wraps a buffer for decoding.
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// Err returns the latched decode error, nil while the stream is healthy.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Dec) Remaining() int { return len(d.buf) }

// Close verifies the stream was consumed exactly: trailing bytes latch
// ErrCorrupt (a well-formed record has no slack).
func (d *Dec) Close() error {
	if d.err == nil && len(d.buf) != 0 {
		d.err = fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf))
	}
	return d.err
}

// take consumes n bytes, latching ErrCorrupt on underflow.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes, have %d", ErrCorrupt, n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads a uint64 and narrows it to a non-negative int, latching
// ErrCorrupt if the value does not fit.
func (d *Dec) Int() int {
	v := d.U64()
	if d.err != nil {
		return 0
	}
	if v > math.MaxInt64 || int64(v) < 0 || uint64(int(v)) != v {
		d.err = fmt.Errorf("%w: integer %d out of range", ErrCorrupt, v)
		return 0
	}
	return int(v)
}

// sliceLen validates a length prefix against the remaining bytes at
// elemSize bytes per element before any allocation happens.
func (d *Dec) sliceLen(elemSize int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.buf))/uint64(elemSize) {
		d.err = fmt.Errorf("%w: slice of %d elements exceeds %d remaining bytes", ErrCorrupt, n, len(d.buf))
		return 0
	}
	return int(n)
}

// Bytes64 reads a length-prefixed byte slice (a copy).
func (d *Dec) Bytes64() []byte {
	n := d.sliceLen(1)
	b := d.take(n)
	if b == nil {
		return nil
	}
	cp := make([]byte, n)
	copy(cp, b)
	return cp
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.sliceLen(1)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// F64s reads a length-prefixed float64 slice.
func (d *Dec) F64s() []float64 {
	n := d.sliceLen(8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(d.U64())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Ints reads a length-prefixed []int.
func (d *Dec) Ints() []int {
	n := d.sliceLen(8)
	if d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	if d.err != nil {
		return nil
	}
	return out
}
