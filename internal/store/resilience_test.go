package store

import (
	"errors"
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/fault"
)

// noSleep is the injected retry sleeper for tests: backoff schedules
// must cost no wall time.
func noSleep(time.Duration) {}

// spillSync spills key/payload and flushes so the write has landed (or
// failed) before the test inspects counters.
func spillSync(s *PrepStore, key string, payload []byte) {
	s.Spill(key, func() ([]byte, error) { return payload, nil })
	s.Flush()
}

// TestRetryRecoversTransientErrors drives Fetch against a backend that
// injects errors and checks (a) the payload still comes back, and (b)
// the injected-error count reconciles exactly against Retries+Failures
// — the identity the chaos soak later asserts end to end.
func TestRetryRecoversTransientErrors(t *testing.T) {
	fb := NewFaultBackend(NewMemory(), fault.Config{Seed: 11, ErrRate: 0.3})
	s := NewPrepStoreWith(fb, Options{Retry: RetryConfig{Max: 4, Seed: 11, Sleep: noSleep}})
	defer s.Close()

	spillSync(s, "k", []byte("payload"))
	hits := 0
	for i := 0; i < 200; i++ {
		if payload, ok := s.Fetch("k"); ok {
			hits++
			if string(payload) != "payload" {
				t.Fatalf("Fetch returned %q", payload)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no Fetch succeeded despite a 4-retry budget against 30% errors")
	}
	c := s.Counters()
	inj := fb.GetStats().Errs + fb.PutStats().Errs
	if inj == 0 {
		t.Fatal("injector applied no errors; test exercises nothing")
	}
	if got := c.Retries + c.Failures; got != inj {
		t.Fatalf("accounting drifted: injected %d errors, Retries+Failures = %d", inj, got)
	}
}

// TestRetryExhaustionCountsFailure pins the budget: Max retries, then
// one Failure and one store error, and the caller sees a miss.
func TestRetryExhaustionCountsFailure(t *testing.T) {
	fb := NewFaultBackend(NewMemory(), fault.Config{Seed: 1, ErrRate: 1})
	s := NewPrepStoreWith(fb, Options{Retry: RetryConfig{Max: 3, Sleep: noSleep}})
	defer s.Close()

	if _, ok := s.Fetch("k"); ok {
		t.Fatal("Fetch succeeded against an always-failing backend")
	}
	c := s.Counters()
	if c.Retries != 3 || c.Failures != 1 || c.Errors != 1 {
		t.Fatalf("counters = %+v, want 3 retries, 1 failure, 1 error", c)
	}
	if got := fb.GetStats().Errs; got != 4 {
		t.Fatalf("injected errors = %d, want 4 (1 attempt + 3 retries)", got)
	}
}

// TestCorruptGetFallsBack: a bit-flipped read fails verification, counts
// one corrupt blob, deletes it, and reports a miss — and the injector's
// applied-corruption count reconciles exactly with CorruptBlobs.
func TestCorruptGetFallsBack(t *testing.T) {
	fb := NewFaultBackend(NewMemory(), fault.Config{Seed: 2, CorruptRate: 1})
	s := NewPrepStoreWith(fb, Options{})
	defer s.Close()

	spillSync(s, "k", []byte("payload"))
	if _, ok := s.Fetch("k"); ok {
		t.Fatal("Fetch returned a corrupted blob as valid")
	}
	c := s.Counters()
	if c.CorruptBlobs != 1 {
		t.Fatalf("CorruptBlobs = %d, want 1", c.CorruptBlobs)
	}
	if got := fb.GetStats().Corrupts; got != c.CorruptBlobs {
		t.Fatalf("injector corrupted %d, store counted %d", got, c.CorruptBlobs)
	}
	// The poisoned blob was deleted: the next miss re-prepares instead
	// of re-failing forever.
	if _, err := fb.Inner().Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt blob not deleted: %v", err)
	}
}

// TestShortWriteSurvived is the Dir.Put durability satellite: a Put
// truncated in flight (the FaultBackend's short-write mode) must leave
// the store serving misses, not corrupt payloads — against the real
// directory backend whose fsync+rename path this PR hardens.
func TestShortWriteSurvived(t *testing.T) {
	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fb := NewFaultBackend(dir, fault.Config{Seed: 5, CorruptRate: 1})
	s := NewPrepStoreWith(fb, Options{})
	defer s.Close()

	spillSync(s, "k", []byte("a payload long enough to truncate meaningfully"))
	if got := fb.PutStats().Corrupts; got != 1 {
		t.Fatalf("put-path corruptions = %d, want 1 (short write applied)", got)
	}
	// Fetch must reject the truncated blob. Note the read path also
	// corrupts here (CorruptRate 1), but either way a miss is the only
	// acceptable outcome.
	if _, ok := s.Fetch("k"); ok {
		t.Fatal("Fetch served a short-written blob")
	}
	if c := s.Counters(); c.CorruptBlobs == 0 {
		t.Fatalf("counters = %+v, want the short write surfaced as a corrupt blob", c)
	}
}

// TestBreakerShedsDeadBackend wires store+breaker against a backend in
// total outage: after Failures consecutive losses the breaker opens and
// further Fetches are refused without touching the backend; once the
// backend recovers and the probe timer fires, one probe closes the
// breaker and service resumes.
func TestBreakerShedsDeadBackend(t *testing.T) {
	clk := &fakeClock{}
	fb := NewFaultBackend(NewMemory(), fault.Config{})
	s := NewPrepStoreWith(fb, Options{
		Retry:   RetryConfig{Max: 1, Sleep: noSleep},
		Breaker: BreakerConfig{Failures: 3, Probe: time.Second, Clock: clk.Now},
	})
	defer s.Close()

	spillSync(s, "k", []byte("payload"))
	fb.SetDown(true)

	for i := 0; i < 3; i++ {
		if _, ok := s.Fetch("k"); ok {
			t.Fatalf("Fetch %d succeeded against a down backend", i)
		}
	}
	if got := s.BreakerState(); got != "open" {
		t.Fatalf("breaker state = %q after 3 consecutive failures, want open", got)
	}
	denied := fb.DownDenied()
	if _, ok := s.Fetch("k"); ok {
		t.Fatal("Fetch succeeded while breaker open")
	}
	if fb.DownDenied() != denied {
		t.Fatal("open breaker still let a request through to the backend")
	}
	c := s.Counters()
	if c.BreakerTrips != 1 || c.BreakerRejects != 1 {
		t.Fatalf("counters = %+v, want 1 trip and 1 reject", c)
	}

	fb.SetDown(false)
	clk.Advance(2 * time.Second)
	if payload, ok := s.Fetch("k"); !ok || string(payload) != "payload" {
		t.Fatalf("probe Fetch = %q, %v; want payload, true", payload, ok)
	}
	if got := s.BreakerState(); got != "closed" {
		t.Fatalf("breaker state = %q after successful probe, want closed", got)
	}
}

// TestBreakerOpenDropsSpills: with the breaker open, queued spills are
// shed at the do() gate (BreakerRejects), not counted as store errors.
func TestBreakerOpenDropsSpills(t *testing.T) {
	clk := &fakeClock{}
	fb := NewFaultBackend(NewMemory(), fault.Config{})
	s := NewPrepStoreWith(fb, Options{
		Breaker: BreakerConfig{Failures: 1, Probe: time.Hour, Clock: clk.Now},
	})
	defer s.Close()

	fb.SetDown(true)
	s.Fetch("k") // one failure trips the breaker
	if got := s.BreakerState(); got != "open" {
		t.Fatalf("breaker state = %q, want open", got)
	}
	spillSync(s, "k", []byte("payload"))
	c := s.Counters()
	if c.Spills != 0 || c.BreakerRejects != 1 {
		t.Fatalf("counters = %+v, want 0 spills and 1 breaker reject", c)
	}
	if c.Errors != 1 {
		t.Fatalf("Errors = %d, want 1 (the tripping fetch only; shed spill is not an error)", c.Errors)
	}
}

// TestPlainStoreUnchanged guards the seed behavior: a store built with
// NewPrepStore has no retries, no breaker, and identical miss handling.
func TestPlainStoreUnchanged(t *testing.T) {
	fb := NewFaultBackend(NewMemory(), fault.Config{Seed: 3, ErrRate: 1})
	s := NewPrepStore(fb)
	defer s.Close()

	if _, ok := s.Fetch("k"); ok {
		t.Fatal("Fetch succeeded against an always-failing backend")
	}
	c := s.Counters()
	if c.Retries != 0 || c.BreakerRejects != 0 || c.BreakerTrips != 0 {
		t.Fatalf("plain store grew resilience counters: %+v", c)
	}
	if c.Errors != 1 || c.Failures != 1 {
		t.Fatalf("counters = %+v, want exactly 1 error and 1 failure", c)
	}
	if got := s.BreakerState(); got != "disabled" {
		t.Fatalf("BreakerState = %q, want disabled", got)
	}
}
