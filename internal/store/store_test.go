package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// backends under test, each fresh per call.
func testBackends(t *testing.T) map[string]Backend {
	t.Helper()
	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatalf("NewDir: %v", err)
	}
	return map[string]Backend{"memory": NewMemory(), "dir": dir}
}

func TestBackendRoundTrip(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			key := "lap2d:abcd|asyrgs|p=f64"
			if _, err := b.Get(key); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get on empty backend: %v, want ErrNotFound", err)
			}
			if err := b.Put(key, []byte("v1")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if err := b.Put(key, []byte("v2")); err != nil {
				t.Fatalf("overwrite Put: %v", err)
			}
			got, err := b.Get(key)
			if err != nil || string(got) != "v2" {
				t.Fatalf("Get = %q, %v; want v2", got, err)
			}
			if n, err := b.Len(); err != nil || n != 1 {
				t.Fatalf("Len = %d, %v; want 1", n, err)
			}
			if err := b.Delete(key); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if err := b.Delete(key); !errors.Is(err, ErrNotFound) {
				t.Fatalf("second Delete: %v, want ErrNotFound", err)
			}
			if n, _ := b.Len(); n != 0 {
				t.Fatalf("Len after delete = %d, want 0", n)
			}
		})
	}
}

// Two keys that share a sanitized prefix must land in distinct files:
// the full-key hash in the file name is what addresses the blob.
func TestDirKeysNeverCollide(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1 := strings.Repeat("x", 60) + "|one"
	k2 := strings.Repeat("x", 60) + "|two"
	if err := d.Put(k1, []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(k2, []byte("2")); err != nil {
		t.Fatal(err)
	}
	v1, _ := d.Get(k1)
	v2, _ := d.Get(k2)
	if string(v1) != "1" || string(v2) != "2" {
		t.Fatalf("collided: %q %q", v1, v2)
	}
}

// A failed Put attempt must not leave temp litter the Len sweep counts.
func TestDirLenIgnoresForeignFiles(t *testing.T) {
	root := t.TempDir()
	d, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := d.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 (foreign files ignored)", n, err)
	}
}

func TestBlobRoundTrip(t *testing.T) {
	payload := []byte("prepared-system-payload")
	blob := EncodeBlob("key-1", payload)
	got, err := DecodeBlob("key-1", blob)
	if err != nil {
		t.Fatalf("DecodeBlob: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
}

func TestBlobRejectsWrongKey(t *testing.T) {
	blob := EncodeBlob("key-1", []byte("p"))
	if _, err := DecodeBlob("key-2", blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong-key decode: %v, want ErrCorrupt", err)
	}
}

// Every single-byte flip and every truncation must fail verification —
// the property the serving layer's never-serve-wrong-state fallback
// rests on.
func TestBlobDetectsCorruption(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	blob := EncodeBlob("k", payload)
	for i := range blob {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x01
		if got, err := DecodeBlob("k", bad); err == nil {
			t.Fatalf("flip at byte %d decoded to %q", i, got)
		}
	}
	for n := 0; n < len(blob); n++ {
		if got, err := DecodeBlob("k", blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded to %q", n, got)
		}
	}
}

// A hostile length prefix must be rejected before allocation, not OOM.
func TestDecRejectsHugeLengths(t *testing.T) {
	var e Enc
	e.U64(1 << 60) // claims 2^60 float64s
	d := NewDec(e.Bytes())
	if v := d.F64s(); v != nil || d.Err() == nil {
		t.Fatalf("F64s = %v, err = %v; want nil, ErrCorrupt", v, d.Err())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var e Enc
	e.U8(7)
	e.U32(1 << 30)
	e.Int(42)
	e.Str("hello")
	e.F64s([]float64{1.5, -2.25, 0})
	e.Ints([]int{3, 1, 4, 1, 5})
	e.Bytes64([]byte{9, 9})

	d := NewDec(e.Bytes())
	if v := d.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if v := d.U32(); v != 1<<30 {
		t.Fatalf("U32 = %d", v)
	}
	if v := d.Int(); v != 42 {
		t.Fatalf("Int = %d", v)
	}
	if v := d.Str(); v != "hello" {
		t.Fatalf("Str = %q", v)
	}
	if v := d.F64s(); len(v) != 3 || v[1] != -2.25 {
		t.Fatalf("F64s = %v", v)
	}
	if v := d.Ints(); len(v) != 5 || v[2] != 4 {
		t.Fatalf("Ints = %v", v)
	}
	if v := d.Bytes64(); len(v) != 2 || v[0] != 9 {
		t.Fatalf("Bytes64 = %v", v)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestPrepStoreSpillAndFetch(t *testing.T) {
	s := NewPrepStore(NewMemory())
	defer s.Close()
	s.Spill("k", func() ([]byte, error) { return []byte("payload"), nil })
	s.Flush()
	payload, ok := s.Fetch("k")
	if !ok || string(payload) != "payload" {
		t.Fatalf("Fetch = %q, %v", payload, ok)
	}
	s.CountRestore()
	c := s.Counters()
	if c.Spills != 1 || c.Restores != 1 || c.Errors != 0 || c.Dropped != 0 {
		t.Fatalf("counters = %+v", c)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestPrepStoreCorruptBlobIsErrorAndDeleted(t *testing.T) {
	b := NewMemory()
	s := NewPrepStore(b)
	defer s.Close()
	if err := b.Put("k", []byte("not an envelope")); err != nil {
		t.Fatal(err)
	}
	if payload, ok := s.Fetch("k"); ok {
		t.Fatalf("corrupt Fetch returned %q", payload)
	}
	if c := s.Counters(); c.Errors != 1 {
		t.Fatalf("errors = %d, want 1", c.Errors)
	}
	if _, err := b.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt blob not deleted: %v", err)
	}
	// The deleted blob cannot fail twice.
	if _, ok := s.Fetch("k"); ok {
		t.Fatal("second Fetch hit")
	}
	if c := s.Counters(); c.Errors != 1 {
		t.Fatalf("errors after re-Fetch = %d, want 1", c.Errors)
	}
}

func TestPrepStoreCountErrorDeletes(t *testing.T) {
	b := NewMemory()
	s := NewPrepStore(b)
	defer s.Close()
	if err := b.Put("k", EncodeBlob("k", []byte("verifies-but-wont-decode"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Fetch("k"); !ok {
		t.Fatal("Fetch miss on valid envelope")
	}
	s.CountError("k")
	if c := s.Counters(); c.Errors != 1 {
		t.Fatalf("errors = %d", c.Errors)
	}
	if _, err := b.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("blob survived CountError: %v", err)
	}
}

func TestPrepStoreEncodeFailureCounted(t *testing.T) {
	s := NewPrepStore(NewMemory())
	defer s.Close()
	s.Spill("k", func() ([]byte, error) { return nil, errors.New("encode boom") })
	s.Flush()
	c := s.Counters()
	if c.Errors != 1 || c.Spills != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestPrepStoreFullQueueDrops(t *testing.T) {
	s := NewPrepStore(NewMemory())
	gate := make(chan struct{})
	// The first spill's encoder parks the writer, so later spills pile
	// into the bounded queue and overflow must drop, not block.
	s.Spill("blocker", func() ([]byte, error) { <-gate; return []byte("b"), nil })
	for i := 0; i < spillQueueCap+8; i++ {
		s.Spill("k", func() ([]byte, error) { return []byte("v"), nil })
	}
	c := s.Counters()
	if c.Dropped == 0 {
		t.Fatalf("no drops with overfull queue: %+v", c)
	}
	close(gate)
	s.Close()
}

func TestPrepStoreSpillAfterCloseDropped(t *testing.T) {
	s := NewPrepStore(NewMemory())
	s.Close()
	s.Close() // idempotent
	s.Spill("k", func() ([]byte, error) { return []byte("v"), nil })
	s.Flush() // trivial on a closed store
	if c := s.Counters(); c.Dropped != 1 || c.Spills != 0 {
		t.Fatalf("counters = %+v", c)
	}
}
