package store

import (
	"fmt"
	"sync/atomic"

	"github.com/asynclinalg/asyrgs/internal/fault"
)

// FaultBackend wraps any Backend with deterministic fault injection on
// the Put and Get paths: injected errors, injected latency, bit-flip
// corruption on reads, and short (truncated) writes. Delete and Len
// pass through untouched — they are housekeeping, and faulting them
// would only blur the accounting the chaos harness reconciles.
//
// Each path gets its own fault site ("store.get", "store.put"), so one
// seed drives independent schedules and per-path applied-fault stats.
// The wrapper also models a total outage: while Down, every Put/Get
// fails immediately (counted separately from injected errors), which is
// what drives the circuit breaker's trip-and-recover phase in tests.
type FaultBackend struct {
	inner Backend
	get   *fault.Injector
	put   *fault.Injector

	down       atomic.Bool
	downDenied atomic.Uint64
}

// NewFaultBackend wraps inner with the fault mix in cfg. A zero cfg
// yields a transparent wrapper (nil injectors decide nothing).
func NewFaultBackend(inner Backend, cfg fault.Config) *FaultBackend {
	return &FaultBackend{
		inner: inner,
		get:   fault.New(cfg, "store.get"),
		put:   fault.New(cfg, "store.put"),
	}
}

// Inner returns the wrapped backend.
func (f *FaultBackend) Inner() Backend { return f.inner }

// SetDown toggles the total-outage mode.
func (f *FaultBackend) SetDown(v bool) { f.down.Store(v) }

// DownDenied reports operations rejected while the backend was Down.
func (f *FaultBackend) DownDenied() uint64 { return f.downDenied.Load() }

// GetStats and PutStats snapshot the applied-fault counters per path.
func (f *FaultBackend) GetStats() fault.Stats { return f.get.Stats() }
func (f *FaultBackend) PutStats() fault.Stats { return f.put.Stats() }

// Put stores the blob, possibly delayed, failed, or truncated. A
// corrupt decision becomes a short write — only a prefix of the blob
// reaches the inner backend, the way a crash mid-write or a lying disk
// loses the tail — which the envelope check catches on the next read.
func (f *FaultBackend) Put(key string, blob []byte) error {
	if f.down.Load() {
		f.downDenied.Add(1)
		return fmt.Errorf("%w: backend down (put %q)", fault.ErrInjected, key)
	}
	d := f.put.Next()
	f.put.SleepFor(d)
	if d.Err {
		f.put.RecordErr()
		return fmt.Errorf("%w: put %q", fault.ErrInjected, key)
	}
	if d.Corrupt && len(blob) > 1 {
		f.put.RecordCorrupt()
		blob = blob[:d.Aux%uint64(len(blob))]
	}
	return f.inner.Put(key, blob)
}

// Get returns the blob, possibly delayed, failed, or with one bit
// flipped at a schedule-derived position. The flip happens on a private
// copy, so backends that share their storage (Memory) are not poisoned
// for later reads.
func (f *FaultBackend) Get(key string) ([]byte, error) {
	if f.down.Load() {
		f.downDenied.Add(1)
		return nil, fmt.Errorf("%w: backend down (get %q)", fault.ErrInjected, key)
	}
	d := f.get.Next()
	f.get.SleepFor(d)
	if d.Err {
		f.get.RecordErr()
		return nil, fmt.Errorf("%w: get %q", fault.ErrInjected, key)
	}
	blob, err := f.inner.Get(key)
	if err != nil {
		return nil, err
	}
	if d.Corrupt && len(blob) > 0 {
		f.get.RecordCorrupt()
		cp := make([]byte, len(blob))
		copy(cp, blob)
		bit := d.Aux % uint64(len(cp)*8)
		cp[bit/8] ^= 1 << (bit % 8)
		blob = cp
	}
	return blob, nil
}

// Delete passes through.
func (f *FaultBackend) Delete(key string) error { return f.inner.Delete(key) }

// Len passes through.
func (f *FaultBackend) Len() (int, error) { return f.inner.Len() }
