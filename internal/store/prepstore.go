package store

import (
	"errors"
	"sync"
	"sync/atomic"
)

// spillQueueCap bounds the background writer's queue. A full queue drops
// the spill (counted) instead of blocking the caller: the store is an
// optimization tier, and the worst case of a drop is re-preparing after
// the next restart — never a stalled request.
const spillQueueCap = 64

// Counters is a snapshot of the store's activity, surfaced on /stats
// and /metrics.
type Counters struct {
	// Restores counts prepared systems successfully decoded from the
	// backend (each one is a method.Prepare that did not run).
	Restores uint64 `json:"prep_restores"`
	// Spills counts prepared systems durably written by the background
	// writer.
	Spills uint64 `json:"prep_spills"`
	// Errors counts failed store interactions: backend I/O failures,
	// integrity-check failures, and payload-decode failures. Corrupted
	// blobs are deleted when counted, so one bad blob is one error, not
	// one per request.
	Errors uint64 `json:"store_errors"`
	// Dropped counts spills discarded because the writer queue was full.
	Dropped uint64 `json:"spill_drops"`
}

// spillReq is one unit of background-writer work: either a pending
// spill (enc non-nil) or a flush token (flushed non-nil).
type spillReq struct {
	key     string
	enc     func() ([]byte, error)
	flushed chan struct{}
}

// PrepStore is the serving-facing durable tier: synchronous verified
// reads (Fetch) plus asynchronous writes through one bounded background
// writer goroutine. Payload encoding runs inside the writer too, so a
// spill costs the request path one non-blocking channel send.
//
// The restore flow is split between the store and its caller because
// only the caller can run the method-family decoder: Fetch returns a
// verified payload, then the caller reports CountRestore on a
// successful decode or CountError on a failed one (which also deletes
// the poisoned blob, so it is rebuilt rather than re-failed forever).
type PrepStore struct {
	backend Backend

	queue chan spillReq
	wg    sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool

	restores atomic.Uint64
	spills   atomic.Uint64
	errs     atomic.Uint64
	dropped  atomic.Uint64
}

// NewPrepStore wraps a backend and starts the background writer. Callers
// own the store's lifecycle and must Close it to stop the writer.
func NewPrepStore(backend Backend) *PrepStore {
	s := &PrepStore{backend: backend, queue: make(chan spillReq, spillQueueCap)}
	s.wg.Add(1)
	go s.writer()
	return s
}

// Backend returns the underlying blob backend.
func (s *PrepStore) Backend() Backend { return s.backend }

// Fetch returns the integrity-verified payload stored under key, or
// false when the key is absent. A blob that exists but fails envelope
// or hash verification counts one store error, is deleted so it cannot
// fail again, and reports absent — the caller falls back to a fresh
// Prepare.
func (s *PrepStore) Fetch(key string) ([]byte, bool) {
	blob, err := s.backend.Get(key)
	if errors.Is(err, ErrNotFound) {
		return nil, false
	}
	if err != nil {
		s.errs.Add(1)
		return nil, false
	}
	payload, err := DecodeBlob(key, blob)
	if err != nil {
		s.discard(key)
		return nil, false
	}
	return payload, true
}

// CountRestore records one prepared system successfully rebuilt from a
// fetched payload.
func (s *PrepStore) CountRestore() { s.restores.Add(1) }

// CountError records a payload that verified but failed the method
// family's decode, deleting the blob so the next miss re-prepares and
// re-spills instead of replaying the failure.
func (s *PrepStore) CountError(key string) { s.discard(key) }

// discard counts one error against key and best-effort deletes its blob.
func (s *PrepStore) discard(key string) {
	s.errs.Add(1)
	if err := s.backend.Delete(key); err != nil && !errors.Is(err, ErrNotFound) {
		s.errs.Add(1)
	}
}

// Spill queues the prepared system under key for background persistence.
// enc is invoked on the writer goroutine — never on the caller's — and
// its payload is framed and written to the backend. A full queue drops
// the request (counted in Dropped); a closed store drops it too.
func (s *PrepStore) Spill(key string, enc func() ([]byte, error)) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		s.dropped.Add(1)
		return
	}
	select {
	case s.queue <- spillReq{key: key, enc: enc}:
	default:
		s.dropped.Add(1)
	}
}

// Flush blocks until every spill queued before the call has been
// written (or failed). A closed store flushes trivially.
func (s *PrepStore) Flush() {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return
	}
	done := make(chan struct{})
	// The blocking send is safe: the writer is draining this queue and
	// the store cannot close while the read-lock is held.
	s.queue <- spillReq{flushed: done}
	s.closeMu.RUnlock()
	<-done
}

// Close drains outstanding spills and stops the writer. Spill calls
// racing or following Close are dropped (counted). Close is idempotent
// and does not close the backend — the caller owns it.
func (s *PrepStore) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.closeMu.Unlock()
	s.wg.Wait()
}

// Counters snapshots the store's activity counters.
func (s *PrepStore) Counters() Counters {
	return Counters{
		Restores: s.restores.Load(),
		Spills:   s.spills.Load(),
		Errors:   s.errs.Load(),
		Dropped:  s.dropped.Load(),
	}
}

// Len reports the backend's blob count (diagnostics; -1 when the
// backend cannot list).
func (s *PrepStore) Len() int {
	n, err := s.backend.Len()
	if err != nil {
		return -1
	}
	return n
}

// writer is the single background goroutine: it encodes, frames, and
// writes queued spills until Close. One writer serializes backend
// writes, so spill volume can never amplify into unbounded concurrent
// encoding.
func (s *PrepStore) writer() {
	defer s.wg.Done()
	for req := range s.queue {
		if req.flushed != nil {
			close(req.flushed)
			continue
		}
		payload, err := req.enc()
		if err != nil {
			s.errs.Add(1)
			continue
		}
		if err := s.backend.Put(req.key, EncodeBlob(req.key, payload)); err != nil {
			s.errs.Add(1)
			continue
		}
		s.spills.Add(1)
	}
}
