package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asynclinalg/asyrgs/internal/rng"
)

// spillQueueCap bounds the background writer's queue. A full queue drops
// the spill (counted) instead of blocking the caller: the store is an
// optimization tier, and the worst case of a drop is re-preparing after
// the next restart — never a stalled request.
const spillQueueCap = 64

// Counters is a snapshot of the store's activity, surfaced on /stats
// and /metrics.
type Counters struct {
	// Restores counts prepared systems successfully decoded from the
	// backend (each one is a method.Prepare that did not run).
	Restores uint64 `json:"prep_restores"`
	// Spills counts prepared systems durably written by the background
	// writer.
	Spills uint64 `json:"prep_spills"`
	// Errors counts failed store interactions: backend I/O failures,
	// integrity-check failures, and payload-decode failures. Corrupted
	// blobs are deleted when counted, so one bad blob is one error, not
	// one per request.
	Errors uint64 `json:"store_errors"`
	// Dropped counts spills discarded because the writer queue was full.
	Dropped uint64 `json:"spill_drops"`
	// Retries counts backend operations re-attempted after a transient
	// failure. Together with Failures it reconciles exactly against an
	// injector's error count: every backend error is either retried away
	// or ends one failed operation.
	Retries uint64 `json:"store_retries"`
	// Failures counts operations that exhausted their retry budget.
	Failures uint64 `json:"store_failures"`
	// BreakerRejects counts operations refused without touching the
	// backend because the circuit breaker was open. Deliberate shedding,
	// not an error: the caller degrades to a fresh Prepare.
	BreakerRejects uint64 `json:"breaker_rejects"`
	// BreakerTrips counts closed→open breaker transitions.
	BreakerTrips uint64 `json:"breaker_trips"`
	// CorruptBlobs counts blobs fetched intact from the backend that
	// failed envelope or hash verification — the integrity layer doing
	// its job against torn writes and bit rot.
	CorruptBlobs uint64 `json:"corrupt_blobs"`
}

// RetryConfig bounds the retry loop around transient backend failures.
// The zero value means one attempt, no retries.
type RetryConfig struct {
	// Max is the number of re-attempts after the first try; <= 0
	// disables retries.
	Max int
	// Base is the first backoff; Cap bounds the growth. Unset values
	// default to 1ms / 100ms when Max > 0.
	Base, Cap time.Duration
	// Seed keys the Philox jitter stream (decorrelated-jitter backoff
	// needs randomness, and math/rand is banned in this package).
	Seed uint64
	// Sleep performs the backoff; nil means time.Sleep. Tests inject a
	// recorder so retry schedules cost no wall time.
	Sleep func(time.Duration)
}

// Options configures the resilience layer around a PrepStore's backend.
type Options struct {
	Retry   RetryConfig
	Breaker BreakerConfig
}

// spillReq is one unit of background-writer work: either a pending
// spill (enc non-nil) or a flush token (flushed non-nil).
type spillReq struct {
	key     string
	enc     func() ([]byte, error)
	flushed chan struct{}
}

// PrepStore is the serving-facing durable tier: synchronous verified
// reads (Fetch) plus asynchronous writes through one bounded background
// writer goroutine. Payload encoding runs inside the writer too, so a
// spill costs the request path one non-blocking channel send.
//
// The restore flow is split between the store and its caller because
// only the caller can run the method-family decoder: Fetch returns a
// verified payload, then the caller reports CountRestore on a
// successful decode or CountError on a failed one (which also deletes
// the poisoned blob, so it is rebuilt rather than re-failed forever).
type PrepStore struct {
	backend Backend

	retry     RetryConfig
	jitter    rng.Stream
	jitterCtr atomic.Uint64
	br        *breaker

	queue chan spillReq
	wg    sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool

	restores       atomic.Uint64
	spills         atomic.Uint64
	errs           atomic.Uint64
	dropped        atomic.Uint64
	retries        atomic.Uint64
	failures       atomic.Uint64
	breakerRejects atomic.Uint64
	corruptBlobs   atomic.Uint64
}

// NewPrepStore wraps a backend and starts the background writer. Callers
// own the store's lifecycle and must Close it to stop the writer.
func NewPrepStore(backend Backend) *PrepStore {
	return NewPrepStoreWith(backend, Options{})
}

// NewPrepStoreWith is NewPrepStore plus the resilience layer: bounded
// retry with decorrelated-jitter backoff on transient Put/Get failures,
// and an optional circuit breaker so a dead backend stops costing
// per-miss latency (misses are refused instantly and serving degrades
// to fresh Prepares until a probe succeeds).
func NewPrepStoreWith(backend Backend, opts Options) *PrepStore {
	s := &PrepStore{
		backend: backend,
		retry:   opts.Retry,
		queue:   make(chan spillReq, spillQueueCap),
	}
	if s.retry.Max > 0 {
		if s.retry.Base <= 0 {
			s.retry.Base = time.Millisecond
		}
		if s.retry.Cap <= 0 {
			s.retry.Cap = 100 * time.Millisecond
		}
		s.jitter = rng.NewStream(opts.Retry.Seed ^ 0x6a69747465720a51)
	}
	if opts.Breaker.Enabled() {
		s.br = newBreaker(opts.Breaker)
	}
	s.wg.Add(1)
	go s.writer()
	return s
}

// do runs one backend operation through the breaker gate and the retry
// loop. ErrNotFound is a miss, not a failure: it returns immediately
// and counts as success for the breaker. Only the operation's final
// outcome (after retries) feeds the breaker, so one flaky op cannot
// trip it.
func (s *PrepStore) do(op func() error) error {
	if s.br != nil && !s.br.allow() {
		s.breakerRejects.Add(1)
		return ErrBreakerOpen
	}
	backoff := s.retry.Base
	var err error
	//asyrgs:boundedloop retry loop is capped at retry.Max re-attempts
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || errors.Is(err, ErrNotFound) {
			if s.br != nil {
				s.br.success()
			}
			return err
		}
		if attempt >= s.retry.Max {
			break
		}
		s.retries.Add(1)
		s.sleep(backoff)
		backoff = s.nextBackoff(backoff)
	}
	s.failures.Add(1)
	if s.br != nil {
		s.br.failure()
	}
	return err
}

// nextBackoff is one step of AWS-style decorrelated jitter:
// next = min(cap, base + u·(3·prev − base)), u uniform in [0,1) drawn
// from a Philox stream so the schedule is replayable under a seed.
func (s *PrepStore) nextBackoff(prev time.Duration) time.Duration {
	span := 3*prev - s.retry.Base
	if span < 0 {
		span = 0
	}
	u := s.jitter.Float64At(s.jitterCtr.Add(1) - 1)
	next := s.retry.Base + time.Duration(u*float64(span))
	if next > s.retry.Cap {
		next = s.retry.Cap
	}
	return next
}

// sleep performs one backoff through the injected sleeper.
func (s *PrepStore) sleep(d time.Duration) {
	if s.retry.Sleep != nil {
		s.retry.Sleep(d)
		return
	}
	time.Sleep(d)
}

// BreakerState reports the circuit breaker's current state ("closed",
// "open", "half-open", or "disabled" when no breaker is configured) for
// /stats and /readyz.
func (s *PrepStore) BreakerState() string { return s.br.stateName() }

// Backend returns the underlying blob backend.
func (s *PrepStore) Backend() Backend { return s.backend }

// Fetch returns the integrity-verified payload stored under key, or
// false when the key is absent. A blob that exists but fails envelope
// or hash verification counts one store error, is deleted so it cannot
// fail again, and reports absent — the caller falls back to a fresh
// Prepare.
func (s *PrepStore) Fetch(key string) ([]byte, bool) {
	var blob []byte
	err := s.do(func() error {
		var gerr error
		blob, gerr = s.backend.Get(key)
		return gerr
	})
	if errors.Is(err, ErrNotFound) || errors.Is(err, ErrBreakerOpen) {
		return nil, false
	}
	if err != nil {
		s.errs.Add(1)
		return nil, false
	}
	payload, err := DecodeBlob(key, blob)
	if err != nil {
		s.corruptBlobs.Add(1)
		s.discard(key)
		return nil, false
	}
	return payload, true
}

// CountRestore records one prepared system successfully rebuilt from a
// fetched payload.
func (s *PrepStore) CountRestore() { s.restores.Add(1) }

// CountError records a payload that verified but failed the method
// family's decode, deleting the blob so the next miss re-prepares and
// re-spills instead of replaying the failure.
func (s *PrepStore) CountError(key string) { s.discard(key) }

// discard counts one error against key and best-effort deletes its blob.
func (s *PrepStore) discard(key string) {
	s.errs.Add(1)
	if err := s.backend.Delete(key); err != nil && !errors.Is(err, ErrNotFound) {
		s.errs.Add(1)
	}
}

// Spill queues the prepared system under key for background persistence.
// enc is invoked on the writer goroutine — never on the caller's — and
// its payload is framed and written to the backend. A full queue drops
// the request (counted in Dropped); a closed store drops it too.
func (s *PrepStore) Spill(key string, enc func() ([]byte, error)) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		s.dropped.Add(1)
		return
	}
	select {
	case s.queue <- spillReq{key: key, enc: enc}:
	default:
		s.dropped.Add(1)
	}
}

// Flush blocks until every spill queued before the call has been
// written (or failed). A closed store flushes trivially.
func (s *PrepStore) Flush() {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return
	}
	done := make(chan struct{})
	// The blocking send is safe: the writer is draining this queue and
	// the store cannot close while the read-lock is held.
	s.queue <- spillReq{flushed: done}
	s.closeMu.RUnlock()
	<-done
}

// Close drains outstanding spills and stops the writer. Spill calls
// racing or following Close are dropped (counted). Close is idempotent
// and does not close the backend — the caller owns it.
func (s *PrepStore) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.closeMu.Unlock()
	s.wg.Wait()
}

// Counters snapshots the store's activity counters.
func (s *PrepStore) Counters() Counters {
	return Counters{
		Restores:       s.restores.Load(),
		Spills:         s.spills.Load(),
		Errors:         s.errs.Load(),
		Dropped:        s.dropped.Load(),
		Retries:        s.retries.Load(),
		Failures:       s.failures.Load(),
		BreakerRejects: s.breakerRejects.Load(),
		BreakerTrips:   s.br.tripCount(),
		CorruptBlobs:   s.corruptBlobs.Load(),
	}
}

// Len reports the backend's blob count (diagnostics; -1 when the
// backend cannot list).
func (s *PrepStore) Len() int {
	n, err := s.backend.Len()
	if err != nil {
		return -1
	}
	return n
}

// writer is the single background goroutine: it encodes, frames, and
// writes queued spills until Close. One writer serializes backend
// writes, so spill volume can never amplify into unbounded concurrent
// encoding.
func (s *PrepStore) writer() {
	defer s.wg.Done()
	for req := range s.queue {
		if req.flushed != nil {
			close(req.flushed)
			continue
		}
		payload, err := req.enc()
		if err != nil {
			s.errs.Add(1)
			continue
		}
		blob := EncodeBlob(req.key, payload)
		err = s.do(func() error { return s.backend.Put(req.key, blob) })
		if errors.Is(err, ErrBreakerOpen) {
			// Deliberate shedding, already counted in BreakerRejects;
			// the prepared system simply is not persisted this time.
			continue
		}
		if err != nil {
			s.errs.Add(1)
			continue
		}
		s.spills.Add(1)
	}
}
