// Package alias implements Walker/Vose alias tables: O(n) construction,
// O(1) weighted sampling. The solver packages use it for the
// Leventhal–Lewis diagonal-weighted draw (core), the Strohmer–Vershynin
// row-norm draw (kaczmarz) and the column-norm draw of the §8
// least-squares coordinate descent (lsq), replacing the O(log n) binary
// search over a CDF that used to sit on every iteration of the hot loop.
//
// A pick stays a pure function of (stream, j): both randoms it needs —
// the slot index and the acceptance threshold — come from the two 64-bit
// halves of the single 128-bit Philox block at counter j, so every
// worker count and every claiming granularity replays the identical
// direction multiset, exactly like the CDF draw it replaces (the
// mapping from block to coordinate differs, the distribution does not).
package alias

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"github.com/asynclinalg/asyrgs/internal/rng"
)

// Errors returned by New for weight vectors that cannot define a
// sampling distribution.
var (
	ErrEmpty          = errors.New("alias: empty weight vector")
	ErrNegativeWeight = errors.New("alias: negative weight")
	ErrBadWeight      = errors.New("alias: non-finite weight")
	ErrZeroTotal      = errors.New("alias: weights sum to zero (non-positive trace)")
)

// Table is a Vose alias table over n slots. Immutable after construction
// and safe for concurrent use by any number of goroutines.
type Table struct {
	// prob[i] is the probability, scaled to [0,1], of keeping slot i when
	// the uniform slot draw lands on it; otherwise the draw is redirected
	// to alias[i].
	prob  []float64
	alias []int32
}

// New builds the alias table for the (unnormalized) weight vector w in
// O(n) time using Vose's two-worklist construction. Weights must be
// finite and non-negative with a positive sum; a zero weight is legal
// and that slot is simply never drawn.
func New(w []float64) (*Table, error) {
	n := len(w)
	if n == 0 {
		return nil, ErrEmpty
	}
	var total float64
	for i, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: entry %d is %v", ErrBadWeight, i, v)
		}
		if v < 0 {
			return nil, fmt.Errorf("%w: entry %d is %g", ErrNegativeWeight, i, v)
		}
		total += v
	}
	if total <= 0 {
		return nil, ErrZeroTotal
	}

	t := &Table{prob: make([]float64, n), alias: make([]int32, n)}
	// Scaled weights: p[i] = w[i]·n/total, so the average is exactly 1.
	// Slots below 1 are "small" and get topped up by a "large" donor.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	scale := float64(n) / total
	for i, v := range w {
		scaled[i] = v * scale
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		// The donor gave (1 − scaled[s]) of its mass to slot s.
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are exactly 1 up to rounding; they keep their own slot.
	for _, l := range large {
		t.prob[l] = 1
		t.alias[l] = l
	}
	for _, s := range small {
		t.prob[s] = 1
		t.alias[s] = s
	}
	return t, nil
}

// N returns the number of slots.
func (t *Table) N() int { return len(t.prob) }

// Pick returns the slot drawn at stream index j: one Philox block, one
// multiply-shift reduction, one comparison — O(1) regardless of n.
func (t *Table) Pick(stream rng.Stream, j uint64) int {
	u1, u2 := stream.Uint64PairAt(j)
	return t.PickUints(u1, u2)
}

// PickUints maps two independent uniform 64-bit values to a slot. It is
// the buffered-path entry point: chunked workers generate their randoms
// in one pass and feed them through here without re-invoking Philox.
func (t *Table) PickUints(u1, u2 uint64) int {
	i := reduce(u1, len(t.prob))
	if float64(u2>>11)/(1<<53) < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// reduce maps a uniform 64-bit value to [0,n) with Lemire's
// multiply-shift (unbiased to 2⁻⁶⁴), matching rng.Stream.IntnAt.
func reduce(u uint64, n int) int {
	hi, _ := bits.Mul64(u, uint64(n))
	return int(hi)
}
