package alias

import (
	"math"
	"sort"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/rng"
)

// chiSquare returns the χ² statistic of observed counts against expected
// probabilities over total draws. Zero-probability cells must stay empty
// and are excluded from the statistic (their expectation is 0).
func chiSquare(t *testing.T, counts []uint64, probs []float64, total uint64) float64 {
	t.Helper()
	var x2 float64
	for i, p := range probs {
		if p == 0 {
			if counts[i] != 0 {
				t.Fatalf("zero-weight slot %d was drawn %d times", i, counts[i])
			}
			continue
		}
		e := p * float64(total)
		d := float64(counts[i]) - e
		x2 += d * d / e
	}
	return x2
}

// TestChiSquareGoodnessOfFit draws from a skewed weight vector and
// checks the empirical distribution against the exact one. The critical
// value is χ²_{0.999} for the cell count, approximated with the
// Wilson–Hilferty transform, so a correct sampler fails with
// probability ≈ 1e-3 (the seed is fixed, so the test is deterministic).
func TestChiSquareGoodnessOfFit(t *testing.T) {
	w := []float64{1, 3, 0, 10, 0.5, 7, 2.25, 0.001, 5, 100}
	tab, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range w {
		total += v
	}
	probs := make([]float64, len(w))
	for i, v := range w {
		probs[i] = v / total
	}

	stream := rng.NewStream(12345)
	const draws = 400_000
	counts := make([]uint64, len(w))
	for j := uint64(0); j < draws; j++ {
		counts[tab.Pick(stream, j)]++
	}
	x2 := chiSquare(t, counts, probs, draws)

	// Cells with non-zero probability: 8 → 7 degrees of freedom.
	k := 0
	for _, p := range probs {
		if p > 0 {
			k++
		}
	}
	df := float64(k - 1)
	// Wilson–Hilferty: χ²_q ≈ df·(1 − 2/(9df) + z_q·sqrt(2/(9df)))³,
	// z_{0.999} ≈ 3.09.
	crit := df * math.Pow(1-2/(9*df)+3.09*math.Sqrt(2/(9*df)), 3)
	if x2 > crit {
		t.Fatalf("χ² = %.2f exceeds the 99.9%% critical value %.2f (df=%v)", x2, crit, df)
	}
}

// TestMarginalEquivalenceWithCDF draws the same budget through the alias
// table and through the binary-search CDF it replaces and checks the two
// empirical marginals agree within sampling noise — the direct check
// that swapping the data structure did not change the distribution.
func TestMarginalEquivalenceWithCDF(t *testing.T) {
	w := []float64{2, 1, 4, 0.25, 8, 1, 1, 6}
	tab, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	cdf := make([]float64, len(w))
	var total float64
	for i, v := range w {
		total += v
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}

	stream := rng.NewStream(99)
	const draws = 300_000
	aliasCounts := make([]float64, len(w))
	cdfCounts := make([]float64, len(w))
	for j := uint64(0); j < draws; j++ {
		aliasCounts[tab.Pick(stream, j)]++
		u := stream.Float64At(j)
		r := sort.SearchFloat64s(cdf, u)
		if r >= len(cdf) {
			r = len(cdf) - 1
		}
		cdfCounts[r]++
	}
	for i := range w {
		fa := aliasCounts[i] / draws
		fc := cdfCounts[i] / draws
		// Binomial std dev at p≈0.34 over 3e5 draws is < 1e-3; allow 5σ.
		if math.Abs(fa-fc) > 5e-3 {
			t.Fatalf("slot %d: alias marginal %.4f vs CDF marginal %.4f", i, fa, fc)
		}
	}
}

// TestPickIsPureFunctionOfStreamAndIndex replays picks in shuffled order
// and across reconstructed tables: the draw at index j must not depend
// on call order, table instance, or anything else.
func TestPickIsPureFunctionOfStreamAndIndex(t *testing.T) {
	w := []float64{1, 2, 3, 4, 5}
	t1, _ := New(w)
	t2, _ := New(w)
	stream := rng.NewStream(7)
	const n = 10_000
	forward := make([]int, n)
	for j := 0; j < n; j++ {
		forward[j] = t1.Pick(stream, uint64(j))
	}
	for j := n - 1; j >= 0; j-- {
		if got := t2.Pick(stream, uint64(j)); got != forward[j] {
			t.Fatalf("pick(%d) = %d on replay, was %d", j, got, forward[j])
		}
	}
}

func TestPickUintsMatchesPick(t *testing.T) {
	tab, _ := New([]float64{3, 1, 4, 1, 5, 9})
	stream := rng.NewStream(11)
	for j := uint64(0); j < 5000; j++ {
		u1, u2 := stream.Uint64PairAt(j)
		if tab.PickUints(u1, u2) != tab.Pick(stream, j) {
			t.Fatalf("PickUints disagrees with Pick at index %d", j)
		}
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		w    []float64
		want error
	}{
		{"empty", nil, ErrEmpty},
		{"negative", []float64{1, -2, 3}, ErrNegativeWeight},
		{"nan", []float64{1, math.NaN()}, ErrBadWeight},
		{"inf", []float64{math.Inf(1), 1}, ErrBadWeight},
		{"zero-total", []float64{0, 0, 0}, ErrZeroTotal},
	}
	for _, tc := range cases {
		if _, err := New(tc.w); err == nil {
			t.Fatalf("%s: want error, got nil", tc.name)
		} else if !errorsIs(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// errorsIs avoids importing errors just for the test.
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestSingleSlot(t *testing.T) {
	tab, err := New([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.NewStream(0)
	for j := uint64(0); j < 100; j++ {
		if tab.Pick(stream, j) != 0 {
			t.Fatal("single-slot table must always pick 0")
		}
	}
}

// BenchmarkAliasVsCDF is the acceptance benchmark: at large n the O(1)
// alias pick must beat the O(log n) binary search. Both draw from the
// identical Philox stream so the comparison isolates the selection
// structure.
func BenchmarkAliasVsCDF(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 17} {
		w := make([]float64, n)
		g := rng.NewSequential(5)
		for i := range w {
			w[i] = 0.5 + g.Float64()
		}
		tab, err := New(w)
		if err != nil {
			b.Fatal(err)
		}
		cdf := make([]float64, n)
		var total float64
		for i, v := range w {
			total += v
			cdf[i] = total
		}
		for i := range cdf {
			cdf[i] /= total
		}
		stream := rng.NewStream(1)

		b.Run(benchName("alias", n), func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				sink += tab.Pick(stream, uint64(i))
			}
			benchSink = sink
		})
		b.Run(benchName("cdf", n), func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				u := stream.Float64At(uint64(i))
				r := sort.SearchFloat64s(cdf, u)
				if r >= n {
					r = n - 1
				}
				sink += r
			}
			benchSink = sink
		})
	}
}

var benchSink int

func benchName(kind string, n int) string {
	switch n {
	case 1 << 10:
		return kind + "/n=1k"
	default:
		return kind + "/n=128k"
	}
}
