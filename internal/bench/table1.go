package bench

import (
	"runtime"
	"time"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/krylov"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// Table1Row is one row of Table 1: Flexible-CG preconditioned by AsyRGS,
// varying the number of inner (preconditioner) sweeps.
type Table1Row struct {
	InnerSweeps int
	OuterIters  int
	MatOps      int // OuterIters × (InnerSweeps + 1)
	Time        time.Duration
	MatOpsPerS  float64
}

// Table1 reproduces Table 1: Flexible-CG with AsyRGS (inconsistent read)
// as preconditioner, solving the social-media system to relative residual
// 1e-8, for inner sweep counts {30,20,10,5,3,2,1}. The reported values are
// medians over Cfg.Repeats runs (the paper uses 5). The paper's shape:
// outer iterations fall as inner sweeps grow, total mat-ops mostly grow,
// mat-ops/sec grows (more work in the efficient asynchronous part), and
// total time is minimised at ~2 inner sweeps.
func (r *Runner) Table1(tol float64, workers int) []Table1Row {
	r.Prepare()
	if tol <= 0 {
		tol = 1e-8
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) * 4 // the paper's 64 threads on 16 cores
	}
	inner := []int{30, 20, 10, 5, 3, 2, 1}
	rows := make([]Table1Row, 0, len(inner))
	r.printf("\n== Table 1: Flexible-CG + AsyRGS preconditioner (tol=%.0e, %d threads, median of %d) ==\n", tol, workers, r.Cfg.Repeats)
	r.printf("%-8s %-8s %-16s %-12s %-12s\n", "inner", "outer", "outer*(inner+1)", "time", "mat-ops/s")
	for _, is := range inner {
		row := r.runFCGOnce(tol, workers, is)
		rows = append(rows, row)
		r.printf("%-8d %-8d %-16d %-12v %-12.2f\n", row.InnerSweeps, row.OuterIters, row.MatOps, row.Time.Round(time.Millisecond), row.MatOpsPerS)
	}
	return rows
}

// runFCGOnce runs the FCG+AsyRGS combination Repeats times and returns the
// median row for the given inner sweep count.
func (r *Runner) runFCGOnce(tol float64, workers, innerSweeps int) Table1Row {
	repeats := r.Cfg.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	outers := make([]int, 0, repeats)
	times := make([]time.Duration, 0, repeats)
	for rep := 0; rep < repeats; rep++ {
		solver, err := core.New(r.Gram, core.Options{Workers: workers, Seed: r.Cfg.Seed})
		if err != nil {
			panic(err)
		}
		pre := krylov.PrecondFunc(func(z, rr []float64) {
			solver.Precondition(z, rr, innerSweeps)
		})
		x := make([]float64, r.Gram.Rows)
		var res krylov.FCGResult
		d := timeIt(func() {
			res, _ = krylov.FlexibleCG(r.Gram, x, r.b1, pre, krylov.FCGOptions{
				Tol: tol, MaxIter: 4000, Workers: workers,
				Partition: sparse.PartitionRoundRobin,
			})
		})
		outers = append(outers, res.Iterations)
		times = append(times, d)
	}
	outer := medianInt(outers)
	t := median(times)
	matOps := outer * (innerSweeps + 1)
	return Table1Row{
		InnerSweeps: innerSweeps,
		OuterIters:  outer,
		MatOps:      matOps,
		Time:        t,
		MatOpsPerS:  float64(matOps) / t.Seconds(),
	}
}

// Fig3Row is one row of Figure 3: FCG+AsyRGS across thread counts for a
// fixed inner sweep count.
type Fig3Row struct {
	Threads    int
	Inner      int
	Time       time.Duration
	OuterIters int
	Speedup    float64 // vs the 1-thread row of the same inner count
}

// Fig3 reproduces Figure 3 (left: time to convergence; right: outer
// iteration count) for inner sweep counts 2 and 10 across the thread
// sweep. The paper's shape: good speedups for both configurations
// (≈32 at 64 threads for 2 sweeps, ≈30 for 10), and an outer iteration
// count that does not grow with threads but is more variable at 2 sweeps.
func (r *Runner) Fig3(tol float64) []Fig3Row {
	r.Prepare()
	if tol <= 0 {
		tol = 1e-8
	}
	rows := make([]Fig3Row, 0, 2*len(r.Cfg.Threads))
	r.printf("\n== Figure 3: Flexible-CG + AsyRGS across threads (tol=%.0e, median of %d) ==\n", tol, r.Cfg.Repeats)
	r.printf("%-8s %-8s %-12s %-8s %-8s\n", "threads", "inner", "time", "outer", "speedup")
	for _, innerSweeps := range []int{2, 10} {
		var base time.Duration
		for _, th := range r.Cfg.Threads {
			repeats := r.Cfg.Repeats
			if repeats <= 0 {
				repeats = 1
			}
			outers := make([]int, 0, repeats)
			times := make([]time.Duration, 0, repeats)
			for rep := 0; rep < repeats; rep++ {
				solver, err := core.New(r.Gram, core.Options{Workers: th, Seed: r.Cfg.Seed})
				if err != nil {
					panic(err)
				}
				pre := krylov.PrecondFunc(func(z, rr []float64) {
					solver.Precondition(z, rr, innerSweeps)
				})
				x := make([]float64, r.Gram.Rows)
				var res krylov.FCGResult
				d := timeIt(func() {
					res, _ = krylov.FlexibleCG(r.Gram, x, r.b1, pre, krylov.FCGOptions{
						Tol: tol, MaxIter: 4000, Workers: th,
						Partition: sparse.PartitionRoundRobin,
					})
				})
				outers = append(outers, res.Iterations)
				times = append(times, d)
			}
			t := median(times)
			if base == 0 {
				base = t
			}
			row := Fig3Row{
				Threads: th, Inner: innerSweeps, Time: t,
				OuterIters: medianInt(outers),
				Speedup:    float64(base) / float64(t),
			}
			rows = append(rows, row)
			r.printf("%-8d %-8d %-12v %-8d %-8.2f\n", th, innerSweeps, t.Round(time.Millisecond), row.OuterIters, row.Speedup)
		}
	}
	return rows
}
