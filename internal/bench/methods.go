package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"github.com/asynclinalg/asyrgs/internal/method"
)

// MethodRow is one row of the cross-method comparison table.
type MethodRow struct {
	Method    string
	Time      time.Duration
	Sweeps    int
	Residual  float64
	Converged bool
	ANormErr  float64
	Tau       int
}

// MethodTable solves the social-media system with every registered SPD
// method at a common tolerance and budget — the registry-driven scenario
// sweep: a newly registered solver shows up here (and in the conformance
// suite) without touching any driver code.
func (r *Runner) MethodTable(tol float64, maxSweeps, workers int) []MethodRow {
	r.Prepare()
	if tol <= 0 {
		tol = 1e-6
	}
	if maxSweeps <= 0 {
		maxSweeps = 500
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	prec, err := method.CanonPrecision(r.Cfg.Precision)
	if err != nil {
		panic(err)
	}
	ms := method.ByKind(method.SPD)
	rows := make([]MethodRow, 0, len(ms))
	r.printf("\n== Method table: every registered SPD method (tol=%.0e, budget %d sweeps, %d workers, %s storage) ==\n", tol, maxSweeps, workers, prec)
	r.printf("%-20s %-12s %-8s %-14s %-10s %-14s %-6s\n", "method", "time", "sweeps", "rel residual", "converged", "A-norm err", "tau")
	for _, m := range ms {
		opts := method.Opts{
			Tol: tol, MaxSweeps: maxSweeps, CheckEvery: 5,
			Workers: workers, Seed: r.Cfg.Seed, XStar: r.xStar,
			MeasureDelay: true, Precision: prec,
		}
		if prec != "f64" {
			// Krylov/stationary methods have no f32 storage path; skip them
			// rather than abort the table.
			if _, err := method.Prepare(context.Background(), m, r.Gram, opts); err != nil {
				r.printf("%-20s skipped: %v\n", m.Name(), err)
				continue
			}
		}
		res := runRegistry(m.Name(), r.Gram, r.bStar, opts)
		row := MethodRow{
			Method: res.Method, Time: res.Wall, Sweeps: res.Sweeps,
			Residual: res.Residual, Converged: res.Converged,
			ANormErr: res.ANormErr, Tau: res.ObservedTau,
		}
		rows = append(rows, row)
		anorm := "n/a"
		if !math.IsNaN(row.ANormErr) {
			anorm = fmt.Sprintf("%.6e", row.ANormErr)
		}
		r.printf("%-20s %-12v %-8d %-14.6e %-10v %-14s %-6d\n",
			row.Method, row.Time.Round(time.Microsecond), row.Sweeps, row.Residual, row.Converged, anorm, row.Tau)
	}
	return rows
}
