package bench

import (
	"context"
	"encoding/json"
	"io"
	"time"

	"github.com/asynclinalg/asyrgs/internal/load"
	"github.com/asynclinalg/asyrgs/internal/serve"
)

// ServeLoadRow is one scenario's closed-loop serving measurement: the
// latency distribution and hit rates of a fixed request budget driven
// against a fresh in-process server.
type ServeLoadRow struct {
	Scenario      string  `json:"scenario"`
	Clients       int     `json:"clients"`
	Requests      uint64  `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	ErrorRate     float64 `json:"error_rate"`
	PrepHitRate   float64 `json:"prep_hit_rate"`
	CoalescedRHS  uint64  `json:"coalesced_rhs"`
	Cancelled     uint64  `json:"cancelled"`
}

// ServeLoad runs every traffic scenario of the load subsystem against a
// fresh in-process serve.Server and reports one row per scenario — the
// serving-layer analogue of the solver ablation tables: instead of
// residual-vs-threads, request-latency-vs-traffic-shape. perScenario
// is the request budget per scenario; <= 0 means 48.
func (r *Runner) ServeLoad(clients, perScenario int) []ServeLoadRow {
	if clients <= 0 {
		clients = 4
	}
	if perScenario <= 0 {
		perScenario = 48
	}
	r.printf("\n== Serving under load: closed-loop scenarios, %d clients x %d requests ==\n", clients, perScenario)
	r.printf("%-12s %-10s %-10s %-10s %-10s %-8s %-8s\n",
		"scenario", "req/s", "p50ms", "p99ms", "errors", "prep%", "coalesced")
	var rows []ServeLoadRow
	for _, sc := range load.Scenarios() {
		target := load.NewInProcessTarget(serve.Config{BatchWindow: 2 * time.Millisecond})
		rep, err := load.Run(context.Background(), target, load.Options{
			Scenario:    sc.Name,
			Clients:     clients,
			MaxRequests: perScenario,
			Duration:    2 * time.Minute,
			Seed:        r.Cfg.Seed,
			N:           96,
		})
		target.Close()
		if err != nil {
			panic(err)
		}
		row := ServeLoadRow{
			Scenario: sc.Name, Clients: clients, Requests: rep.Requests,
			ThroughputRPS: rep.ThroughputRPS,
			P50MS:         rep.P50US / 1e3, P95MS: rep.P95US / 1e3, P99MS: rep.P99US / 1e3,
			ErrorRate: rep.ErrorRate, PrepHitRate: rep.PrepHitRate,
			CoalescedRHS: rep.CoalescedRequests, Cancelled: rep.Cancelled,
		}
		rows = append(rows, row)
		r.printf("%-12s %-10.1f %-10.3f %-10.3f %-10.3f %-8.0f %-8d\n",
			row.Scenario, row.ThroughputRPS, row.P50MS, row.P99MS, row.ErrorRate,
			100*row.PrepHitRate, row.CoalescedRHS)
	}
	return rows
}

// WriteServeLoadJSON writes the serve-load rows as an indented JSON
// baseline (the asybench -exp serve artifact; cmd/asyload writes the
// richer single-scenario BENCH_serve.json report).
func WriteServeLoadJSON(w io.Writer, rows []ServeLoadRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
