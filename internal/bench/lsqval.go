package bench

import (
	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/lsq"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func newCoreSolver(r *Runner, workers, syncPeriod int) (*core.Solver, error) {
	return core.New(r.Gram, core.Options{Workers: workers, Seed: r.Cfg.Seed, SyncPeriod: syncPeriod})
}

// LSQRow is one row of the §8 least-squares validation.
type LSQRow struct {
	Workers  int
	Sweeps   int
	Residual float64 // ‖Aᵀ(b−Ax)‖₂ after the budget
}

// LSQValidation exercises §8 (Theorem 5): randomized coordinate descent on
// an overdetermined system, sequentially (iteration (20)) and
// asynchronously (iteration (21)), reporting the normal-equation residual
// after a fixed sweep budget. The asynchronous runs use β < 1 as
// Theorem 5 requires.
func (r *Runner) LSQValidation(rows, cols, sweeps int, workerList []int) []LSQRow {
	if rows <= 0 {
		rows = 2000
	}
	if cols <= 0 {
		cols = 500
	}
	if sweeps <= 0 {
		sweeps = 50
	}
	if len(workerList) == 0 {
		workerList = []int{1, 4, 16}
	}
	a := workload.RandomOverdetermined(rows, cols, 6, r.Cfg.Seed+7)
	b := workload.RandomRHS(rows, r.Cfg.Seed+8)
	r.printf("\n== §8 least squares: randomized CD, sync (it. 20) vs async (it. 21) ==\n")
	r.printf("system: %s, %d sweeps\n", workload.Describe("overdetermined", a), sweeps)
	r.printf("%-10s %-14s\n", "workers", "‖Aᵀr‖₂")
	out := make([]LSQRow, 0, len(workerList))
	for _, w := range workerList {
		beta := 1.0
		if w > 1 {
			beta = 0.9 // Theorem 5 needs β < 1 for the asynchronous runs
		}
		solver, err := lsq.New(a, lsq.Options{Workers: w, Seed: r.Cfg.Seed, Beta: beta})
		if err != nil {
			panic(err)
		}
		x := make([]float64, cols)
		solver.Iterations(x, b, sweeps*cols)
		res := solver.LSQResidual(x, b)
		out = append(out, LSQRow{Workers: w, Sweeps: sweeps, Residual: res})
		r.printf("%-10d %-14.6e\n", w, res)
	}
	return out
}
