// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation section (§9), plus validation experiments for
// the analytical results (Theorems 2–5). Each runner prints the same rows
// or series the paper reports, on the synthetic workload documented in
// DESIGN.md, and returns the measurements so tests and benchmarks can
// assert on the qualitative shape (who wins, how it scales).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// Config sizes the experiment suite. The defaults reproduce the paper's
// experiments at laptop scale.
type Config struct {
	// Terms is the Gram dimension of the synthetic social-media matrix
	// (the paper's n = 120,147, scaled).
	Terms int
	// RHSCols is the number of right-hand sides solved together (the
	// paper's 51 label columns, scaled).
	RHSCols int
	// Threads is the list of worker counts to sweep (the paper's
	// 1,2,4,…,64 hardware threads).
	Threads []int
	// Sweeps is the sweep budget of the fixed-work experiments (paper: 10).
	Sweeps int
	// Repeats is the number of runs whose median is reported where the
	// paper uses medians (Table 1, Figure 3: 5 runs).
	Repeats int
	// Seed keys workload generation and solver streams.
	Seed uint64
	// Precision selects the matrix value storage for the registry-driven
	// experiments ("f64" default, "f32" for float32 values with float64
	// accumulation); methods without an f32 path are skipped with a note.
	Precision string
	// Out receives the printed tables; nil discards them.
	Out io.Writer
}

// Default returns the configuration used by cmd/asybench and the
// benchmarks: small enough to regenerate every figure in minutes.
func Default() Config {
	return Config{
		Terms:   1500,
		RHSCols: 16,
		Threads: []int{1, 2, 4, 8, 16, 32, 64},
		Sweeps:  10,
		Repeats: 5,
		Seed:    42,
		Out:     nil,
	}
}

// Runner caches the generated workload across experiments.
type Runner struct {
	Cfg      Config
	Gram     *sparse.CSR // the synthetic social-media Gram matrix
	TermDoc  *sparse.CSR // its underlying term–document matrix
	B        *vec.Dense  // multi-RHS block
	b1       []float64   // single RHS
	bStar    []float64   // RHS with known solution (b = A·x*)
	xStar    []float64
	prepared bool
}

// NewRunner builds a runner; the workload is generated lazily.
func NewRunner(cfg Config) *Runner {
	if cfg.Terms == 0 {
		cfg = Default()
	}
	return &Runner{Cfg: cfg}
}

// Prepare generates the workload once.
func (r *Runner) Prepare() {
	if r.prepared {
		return
	}
	opts := workload.DefaultSocialGram(r.Cfg.Terms, r.Cfg.Seed)
	r.Gram, r.TermDoc = workload.SocialGram(opts)
	r.B = workload.MultiRHS(r.Gram.Rows, r.Cfg.RHSCols, r.Cfg.Seed+1)
	r.b1 = workload.RandomRHS(r.Gram.Rows, r.Cfg.Seed+2)
	r.bStar, r.xStar = workload.RHSForSolution(r.Gram, r.Cfg.Seed+3)
	r.prepared = true
	r.printf("workload: %s\n", workload.Describe("social-gram", r.Gram))
}

func (r *Runner) printf(format string, args ...any) {
	if r.Cfg.Out != nil {
		fmt.Fprintf(r.Cfg.Out, format, args...)
	}
}

// timeIt returns the wall-clock duration of f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// median returns the median of ds (ds is sorted in place).
func median(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// medianInt returns the median of xs (sorted in place).
func medianInt(xs []int) int {
	sort.Ints(xs)
	return xs[len(xs)/2]
}

// medianFloat returns the median of xs (sorted in place).
func medianFloat(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// clampWorkers reminds readers that thread counts beyond the physical core
// count still exercise asynchrony (delays grow with P) but cannot add
// wall-clock speedup; the tables annotate such rows.
func clampWorkers(w int) (workers int, oversubscribed bool) {
	max := runtime.GOMAXPROCS(0)
	return w, w > max
}
