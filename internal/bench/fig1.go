package bench

import (
	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/krylov"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// Fig1Point is one sample of the Figure 1 series.
type Fig1Point struct {
	Sweep       int
	RGSResidual float64
	CGResidual  float64
}

// Fig1 reproduces Figure 1: the relative residual ‖AX−B‖_F/‖B‖_F of
// synchronous Randomized Gauss–Seidel (per sweep) and CG (per iteration)
// on the social-media Gram system with all right-hand sides solved
// together. The paper's shape: RGS drops faster for the first sweeps
// (the big-data regime needs ~1e-2), CG wins at high accuracy.
func (r *Runner) Fig1(sweeps int) []Fig1Point {
	r.Prepare()
	if sweeps <= 0 {
		sweeps = 200
	}
	a := r.Gram
	c := r.B.Cols

	// Randomized Gauss–Seidel, general diagonal (iteration (3)).
	rgs, err := core.New(a, core.Options{Seed: r.Cfg.Seed})
	if err != nil {
		panic(err)
	}
	xr := vec.NewDense(a.Rows, c)
	rgsRes := make([]float64, sweeps+1)
	rgsRes[0] = rgs.ResidualDense(xr, r.B)
	for s := 1; s <= sweeps; s++ {
		rgs.SweepsDense(xr, r.B, 1)
		rgsRes[s] = rgs.ResidualDense(xr, r.B)
	}

	// CG on the same block.
	xc := vec.NewDense(a.Rows, c)
	var cgHist []float64
	_, _ = krylov.CGDense(a, xc, r.B, krylov.CGOptions{
		Tol:       1e-16, // run the full budget; Figure 1 plots the trajectory
		MaxIter:   sweeps,
		Workers:   1,
		Partition: sparse.PartitionRoundRobin,
	}, &cgHist)

	pts := make([]Fig1Point, sweeps+1)
	r.printf("\n== Figure 1: relative residual, Randomized G-S vs CG (n=%d, rhs=%d) ==\n", a.Rows, c)
	r.printf("%-8s %-14s %-14s\n", "sweep", "RGS", "CG")
	for s := 0; s <= sweeps; s++ {
		cg := cgHist[len(cgHist)-1]
		if s < len(cgHist) {
			cg = cgHist[s]
		}
		pts[s] = Fig1Point{Sweep: s, RGSResidual: rgsRes[s], CGResidual: cg}
		if s%10 == 0 || s == sweeps {
			r.printf("%-8d %-14.6e %-14.6e\n", s, rgsRes[s], cg)
		}
	}
	return pts
}
