package bench

import (
	"math"

	"github.com/asynclinalg/asyrgs/internal/sim"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/spectral"
	"github.com/asynclinalg/asyrgs/internal/theory"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// TheoryRow is one configuration of the bound-validation experiment.
type TheoryRow struct {
	Model     string // "consistent" | "inconsistent"
	Tau       int
	Beta      float64
	Sweeps    int
	Measured  float64 // measured E_m / E_0 (mean over trials)
	Bound     float64 // theoretical bound on E_m / E_0 (1 if vacuous)
	BoundOK   bool    // measured ≤ bound (for applicable bounds)
	NuOrOmega float64 // ν_τ(β) or ω_τ(β)
}

// TheoryValidation exercises Theorems 2–4 on a matrix where the bounds are
// meaningful (the reference scenario): a unit-diagonal-scaled 2D Laplacian.
// It runs the *enforced* bounded-delay simulator (iterations (8) and (9))
// with worst-case fixed delays, averages E_m over trials, and compares
// against the corresponding bound. The paper notes the bounds are
// pessimistic; the assertion is measured ≤ bound, not tightness.
func (r *Runner) TheoryValidation(grid int, taus []int, sweeps, trials int) []TheoryRow {
	if grid <= 0 {
		grid = 20
	}
	if sweeps <= 0 {
		sweeps = 40
	}
	if trials <= 0 {
		trials = 8
	}
	if len(taus) == 0 {
		taus = []int{2, 8, 32}
	}
	lap := workload.Laplacian2D(grid, grid)
	a, _, err := sparse.UnitDiagonalScale(lap)
	if err != nil {
		panic(err)
	}
	est := spectral.EstimateSPD(a, 100, r.Cfg.Seed)
	n := a.Rows
	m := sweeps * n

	r.printf("\n== Theory validation: enforced-delay simulator vs Theorems 2-4 ==\n")
	r.printf("matrix: %s; λmin=%.4g λmax=%.4g κ=%.4g ρ·n=%.3g ρ₂·n=%.3g\n",
		workload.Describe("laplacian2d(unit-diag)", a), est.LambdaMin, est.LambdaMax, est.Cond,
		theory.Rho(a)*float64(n), theory.Rho2(a)*float64(n))
	r.printf("%-14s %-6s %-8s %-8s %-14s %-14s %-8s\n", "model", "tau", "beta", "nu/omega", "measured", "bound", "holds")

	var rows []TheoryRow
	for _, tau := range taus {
		rho := theory.Rho(a)
		rho2 := theory.Rho2(a)

		// Consistent read with the bound-optimal β̃.
		betaC := theory.OptimalBeta(rho, tau)
		p := theory.NewParams(a, est.LambdaMin, est.LambdaMax, tau, betaC)
		measured := r.simAverage(a, m, tau, betaC, trials, true)
		bound := p.ConsistentBound(m)
		nu := theory.NuTau(betaC, rho, tau)
		row := TheoryRow{Model: "consistent", Tau: tau, Beta: betaC, Sweeps: sweeps,
			Measured: measured, Bound: bound, NuOrOmega: nu,
			BoundOK: bound >= 1 || measured <= bound}
		rows = append(rows, row)
		r.printf("%-14s %-6d %-8.3f %-8.3f %-14.6e %-14.6e %-8v\n", row.Model, tau, betaC, nu, measured, bound, row.BoundOK)

		// Inconsistent read with its optimal β.
		betaI := theory.OptimalBetaInconsistent(rho2, tau)
		pI := theory.NewParams(a, est.LambdaMin, est.LambdaMax, tau, betaI)
		measuredI := r.simAverage(a, m, tau, betaI, trials, false)
		boundI := pI.InconsistentBound(m)
		om := theory.OmegaTau(betaI, rho2, tau)
		rowI := TheoryRow{Model: "inconsistent", Tau: tau, Beta: betaI, Sweeps: sweeps,
			Measured: measuredI, Bound: boundI, NuOrOmega: om,
			BoundOK: boundI >= 1 || measuredI <= boundI}
		rows = append(rows, rowI)
		r.printf("%-14s %-6d %-8.3f %-8.3f %-14.6e %-14.6e %-8v\n", rowI.Model, tau, betaI, om, measuredI, boundI, rowI.BoundOK)
	}
	return rows
}

// simAverage runs the enforced-delay simulator `trials` times with
// distinct direction seeds and returns the average final E_m / E_0.
func (r *Runner) simAverage(a *sparse.CSR, m, tau int, beta float64, trials int, consistent bool) float64 {
	n := a.Rows
	var sum float64
	for t := 0; t < trials; t++ {
		seed := r.Cfg.Seed + uint64(1000+t)
		b, xstar := workload.RHSForSolution(a, seed)
		x0 := make([]float64, n)
		model := sim.FixedDelay{T: tau}
		cfg := sim.Config{Beta: beta, Seed: seed, Stride: m}
		var tr sim.Trace
		if consistent {
			tr = sim.RunConsistent(a, b, x0, xstar, m, model, cfg)
		} else {
			tr = sim.RunInconsistent(a, b, x0, xstar, m, model, cfg)
		}
		e0 := tr.Errors[0]
		em := tr.Errors[len(tr.Errors)-1]
		if e0 > 0 {
			sum += em / e0
		}
	}
	return sum / float64(trials)
}

// BetaRow is one row of the step-size ablation.
type BetaRow struct {
	Beta  float64
	Error float64 // E_m/E_0 under the enforced consistent-read model
}

// BetaSweep is the Theorem 3 ablation: with a fixed enforced delay τ, the
// error after a fixed budget as a function of β, showing that β̃ =
// 1/(1+2ρτ) (marked) beats β = 1 when delays are adversarial.
func (r *Runner) BetaSweep(grid, tau, sweeps int, betas []float64) []BetaRow {
	if grid <= 0 {
		grid = 16
	}
	if sweeps <= 0 {
		sweeps = 30
	}
	if len(betas) == 0 {
		betas = []float64{0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5}
	}
	lap := workload.Laplacian2D(grid, grid)
	a, _, err := sparse.UnitDiagonalScale(lap)
	if err != nil {
		panic(err)
	}
	n := a.Rows
	m := sweeps * n
	opt := theory.OptimalBeta(theory.Rho(a), tau)
	r.printf("\n== Step-size ablation (enforced consistent read, tau=%d, optimal β̃=%.3f) ==\n", tau, opt)
	r.printf("%-8s %-14s\n", "beta", "E_m/E_0")
	rows := make([]BetaRow, 0, len(betas)+1)
	all := append(append([]float64(nil), betas...), opt)
	for _, beta := range all {
		e := r.simAverage(a, m, tau, beta, 4, true)
		rows = append(rows, BetaRow{Beta: beta, Error: e})
		mark := ""
		if beta == opt {
			mark = "  <- β̃"
		}
		r.printf("%-8.3f %-14.6e%s\n", beta, e, mark)
	}
	return rows
}

// SyncRow is one row of the occasional-synchronization ablation.
type SyncRow struct {
	SyncPeriod int // iterations between barriers; 0 = free-running
	Error      float64
}

// SyncPeriodSweep measures the effect of the Theorem 2 discussion's
// occasional-synchronization scheme in the real asynchronous solver: the
// A-norm error after a fixed sweep budget for different barrier periods.
func (r *Runner) SyncPeriodSweep(workers, sweeps int, periods []int) []SyncRow {
	r.Prepare()
	if sweeps <= 0 {
		sweeps = r.Cfg.Sweeps
	}
	if len(periods) == 0 {
		n := r.Gram.Rows
		periods = []int{0, 4 * n, n, n / 4}
	}
	normX := r.Gram.ANorm(r.xStar)
	r.printf("\n== Occasional-synchronization ablation (%d workers, %d sweeps) ==\n", workers, sweeps)
	r.printf("%-12s %-14s\n", "period", "rel A-norm err")
	rows := make([]SyncRow, 0, len(periods))
	for _, p := range periods {
		solver, err := newCoreSolver(r, workers, p)
		if err != nil {
			panic(err)
		}
		x := make([]float64, r.Gram.Rows)
		solver.AsyncSweeps(x, r.bStar, sweeps)
		e := r.Gram.ANormErr(x, r.xStar) / normX
		rows = append(rows, SyncRow{SyncPeriod: p, Error: e})
		r.printf("%-12d %-14.6e\n", p, e)
	}
	return rows
}

// RhoReport prints the interference parameters of the workload matrix the
// way §9 reports them (ρ ≈ 231/n, ρ₂ ≈ 8.9/n for the paper's matrix) and
// the derived ν/ω values.
func (r *Runner) RhoReport(taus []int) {
	r.Prepare()
	if len(taus) == 0 {
		taus = []int{200}
	}
	// The paper's ρ, ρ₂ refer to the unit-diagonal matrix (its iteration
	// (3) handles the general diagonal, the analysis the scaled one).
	a, _, err := sparse.UnitDiagonalScale(r.Gram)
	if err != nil {
		panic(err)
	}
	n := float64(a.Rows)
	rho := theory.Rho(a)
	rho2 := theory.Rho2(a)
	r.printf("\n== Interference parameters (paper: ρ≈231/n, ρ₂≈8.9/n; ν200(1.0)=0.618... style) ==\n")
	r.printf("ρ·n = %.2f, ρ₂·n = %.2f\n", rho*n, rho2*n)
	for _, tau := range taus {
		r.printf("ν_%d(1.0) = %.4f, ν_%d(β̃=%.3f) = %.4f, ω_%d(0.25) = %.4f\n",
			tau, theory.NuTau(1, rho, tau),
			tau, theory.OptimalBeta(rho, tau), theory.NuTau(theory.OptimalBeta(rho, tau), rho, tau),
			tau, theory.OmegaTau(0.25, rho2, tau))
	}
	if !math.IsInf(rho, 0) && rho*n > 0 {
		r.printf("reference-scenario check: ρ = O(1/n) iff ρ·n stays bounded as n grows\n")
	}
}
