package bench

import (
	"runtime"
	"time"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/distmem"
	"github.com/asynclinalg/asyrgs/internal/krylov"
	"github.com/asynclinalg/asyrgs/internal/stats"
)

// DelayRow is one row of the delay-distribution report.
type DelayRow struct {
	Threads      int
	ObservedTau  int     // worst case (the τ the theorems use)
	FractionZero float64 // fraction of perfectly fresh reads
	P99Bound     uint64  // upper bound on the 99th-percentile delay
	MeanBound    float64 // upper bound on the mean delay
}

// DelayDistribution measures the delay distribution of real asynchronous
// executions across thread counts — the experiment the paper's conclusion
// calls for: the worst-case τ is orders of magnitude above the typical
// delay, which is why the (τ-based) bounds are pessimistic while practice
// is close to synchronous.
func (r *Runner) DelayDistribution(sweeps int) []DelayRow {
	r.Prepare()
	if sweeps <= 0 {
		sweeps = r.Cfg.Sweeps
	}
	rows := make([]DelayRow, 0, len(r.Cfg.Threads))
	r.printf("\n== Delay distribution of real asynchronous executions (%d sweeps) ==\n", sweeps)
	r.printf("%-8s %-10s %-10s %-10s %-10s\n", "threads", "tau-hat", "frac-0", "p99<=", "mean<=")
	for _, th := range r.Cfg.Threads {
		if th < 2 {
			continue
		}
		solver, err := core.New(r.Gram, core.Options{Workers: th, Seed: r.Cfg.Seed, MeasureDelay: true})
		if err != nil {
			panic(err)
		}
		x := make([]float64, r.Gram.Rows)
		solver.AsyncSweeps(x, r.bStar, sweeps)
		h := stats.Pow2Histogram{Counts: solver.DelayHistogram()}
		row := DelayRow{
			Threads:      th,
			ObservedTau:  solver.ObservedTau(),
			FractionZero: h.FractionZero(),
			P99Bound:     h.QuantileUpperBound(0.99),
			MeanBound:    h.MeanUpperBound(),
		}
		rows = append(rows, row)
		r.printf("%-8d %-10d %-10.3f %-10d %-10.1f\n", th, row.ObservedTau, row.FractionZero, row.P99Bound, row.MeanBound)
	}
	return rows
}

// SamplingRow is one row of the sampling-strategy ablation.
type SamplingRow struct {
	Strategy string
	Time     time.Duration
	Residual float64
}

// SamplingAblation compares the three direction distributions after a
// fixed sweep budget on the social-media matrix: uniform (the paper's
// algorithm), diagonal-weighted (general Leventhal–Lewis), and
// block-partitioned (the restricted randomization the paper proposes for
// distributed memory — single writer per coordinate, better locality, but
// coupled blocks converge more slowly).
func (r *Runner) SamplingAblation(workers, sweeps int) []SamplingRow {
	r.Prepare()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if sweeps <= 0 {
		sweeps = r.Cfg.Sweeps
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"uniform", core.Options{Workers: workers, Seed: r.Cfg.Seed}},
		{"diag-weighted", core.Options{Workers: workers, Seed: r.Cfg.Seed, DiagonalWeighted: true}},
		{"partitioned", core.Options{Workers: workers, Seed: r.Cfg.Seed, Partitioned: true}},
	}
	rows := make([]SamplingRow, 0, len(configs))
	r.printf("\n== Sampling ablation (%d workers, %d sweeps) ==\n", workers, sweeps)
	r.printf("%-16s %-12s %-14s\n", "strategy", "time", "rel residual")
	for _, cfg := range configs {
		solver, err := core.New(r.Gram, cfg.opts)
		if err != nil {
			panic(err)
		}
		x := make([]float64, r.Gram.Rows)
		d := timeIt(func() { solver.AsyncSweeps(x, r.b1, sweeps) })
		res := solver.Residual(x, r.b1)
		rows = append(rows, SamplingRow{Strategy: cfg.name, Time: d, Residual: res})
		r.printf("%-16s %-12v %-14.6e\n", cfg.name, d.Round(time.Microsecond), res)
	}
	return rows
}

// FaultRow is one row of the fault-injection experiment.
type FaultRow struct {
	Scenario string
	Residual float64
	Tau      int
}

// FaultInjection measures the robustness claim of the paper's §2
// discussion of Hook–Dingle: a deterministic asynchronous method can be
// crippled by one slow processor repeatedly serving stale updates for the
// same coordinates, while randomization spreads the staleness uniformly.
// We run AsyRGS with a healthy worker pool, with one slow worker, and with
// half the pool slow, and report the residual after a fixed budget.
func (r *Runner) FaultInjection(workers, sweeps int) []FaultRow {
	r.Prepare()
	if workers <= 0 {
		workers = 8
	}
	if sweeps <= 0 {
		sweeps = r.Cfg.Sweeps
	}
	scenarios := []struct {
		name     string
		throttle func(worker int, j uint64)
	}{
		{"healthy", nil},
		{"one-slow", func(w int, j uint64) {
			if w == 0 && j%4 == 0 {
				spin(2000)
			}
		}},
		{"half-slow", func(w int, j uint64) {
			if w%2 == 0 && j%4 == 0 {
				spin(2000)
			}
		}},
	}
	rows := make([]FaultRow, 0, len(scenarios))
	r.printf("\n== Fault injection: slow workers under randomized directions (%d workers, %d sweeps) ==\n", workers, sweeps)
	r.printf("%-12s %-14s %-10s\n", "scenario", "rel residual", "tau-hat")
	for _, sc := range scenarios {
		solver, err := core.New(r.Gram, core.Options{
			Workers: workers, Seed: r.Cfg.Seed,
			Throttle: sc.throttle, MeasureDelay: true,
		})
		if err != nil {
			panic(err)
		}
		x := make([]float64, r.Gram.Rows)
		solver.AsyncSweeps(x, r.b1, sweeps)
		rows = append(rows, FaultRow{Scenario: sc.name, Residual: solver.Residual(x, r.b1), Tau: solver.ObservedTau()})
		r.printf("%-12s %-14.6e %-10d\n", sc.name, rows[len(rows)-1].Residual, rows[len(rows)-1].Tau)
	}
	return rows
}

// spin burns roughly the given number of loop iterations without
// sleeping, so the injected slowness does not release the OS thread (a
// sleep would let the scheduler hide the fault).
func spin(iters int) {
	x := 1.0
	for i := 0; i < iters; i++ {
		x = x*1.0000001 + 1e-9
	}
	if x < 0 {
		panic("unreachable")
	}
}

// DistRow is one row of the distributed-memory emulation experiment.
type DistRow struct {
	QueueCap int
	Residual float64
	Messages uint64
	MaxQueue int
	Time     time.Duration
}

// DistMem runs the message-passing emulation (internal/distmem) of the
// restricted-randomization solver across communication-buffer capacities,
// the knob that physically realises the delay bound τ in a distributed
// deployment — the paper's "extend to massively parallel systems" future
// work, made measurable.
func (r *Runner) DistMem(workers, sweeps int, caps []int) []DistRow {
	r.Prepare()
	if workers <= 0 {
		workers = 8
	}
	if sweeps <= 0 {
		sweeps = r.Cfg.Sweeps
	}
	if len(caps) == 0 {
		caps = []int{1, 4, 16, 64}
	}
	rows := make([]DistRow, 0, len(caps))
	r.printf("\n== Distributed-memory emulation (%d ranks, %d sweeps) ==\n", workers, sweeps)
	r.printf("%-10s %-14s %-12s %-10s %-10s\n", "queue-cap", "rel residual", "messages", "max-queue", "time")
	for _, c := range caps {
		x := make([]float64, r.Gram.Rows)
		var res distmem.Result
		var err error
		d := timeIt(func() {
			res, err = distmem.Solve(r.Gram, x, r.b1, sweeps, distmem.Config{
				Workers: workers, QueueCap: c, Seed: r.Cfg.Seed,
			})
		})
		if err != nil {
			panic(err)
		}
		rows = append(rows, DistRow{QueueCap: c, Residual: res.Residual, Messages: res.MessagesSent, MaxQueue: res.MaxQueueLen, Time: d})
		r.printf("%-10d %-14.6e %-12d %-10d %-10v\n", c, res.Residual, res.MessagesSent, res.MaxQueueLen, d.Round(time.Microsecond))
	}
	return rows
}

// ClassicRow compares classical asynchronous Jacobi against AsyRGS.
type ClassicRow struct {
	Method   string
	Scenario string
	Residual float64
}

// ClassicVsRandomized pits deterministic chaotic-relaxation Jacobi against
// AsyRGS at equal sweep budgets, healthy and with a starved block/worker —
// the §2 Hook–Dingle motivation for randomization, head to head.
func (r *Runner) ClassicVsRandomized(workers, sweeps int) []ClassicRow {
	r.Prepare()
	if workers <= 0 {
		workers = 8
	}
	if sweeps <= 0 {
		sweeps = r.Cfg.Sweeps
	}
	var rows []ClassicRow
	emit := func(method, scenario string, res float64) {
		rows = append(rows, ClassicRow{method, scenario, res})
		r.printf("%-12s %-12s %-14.6e\n", method, scenario, res)
	}
	r.printf("\n== Classic async Jacobi vs AsyRGS (%d workers, %d sweeps) ==\n", workers, sweeps)
	r.printf("%-12s %-12s %-14s\n", "method", "scenario", "rel residual")

	// Healthy runs.
	xj := make([]float64, r.Gram.Rows)
	jres := krylov.AsyncJacobi(r.Gram, xj, r.b1, sweeps, workers)
	emit("jacobi", "healthy", jres.Residual)
	s, err := core.New(r.Gram, core.Options{Workers: workers, Seed: r.Cfg.Seed})
	if err != nil {
		panic(err)
	}
	xr := make([]float64, r.Gram.Rows)
	s.AsyncSweeps(xr, r.b1, sweeps)
	emit("asyrgs", "healthy", s.Residual(xr, r.b1))

	// Starved: worker 0 runs far slower in both methods.
	slowJ := func(w, i int) {
		if w == 0 {
			spin(400)
		}
	}
	xjs := make([]float64, r.Gram.Rows)
	jsres := krylov.AsyncJacobiThrottled(r.Gram, xjs, r.b1, sweeps, workers, slowJ)
	emit("jacobi", "one-slow", jsres.Residual)

	slowR := func(w int, j uint64) {
		if w == 0 {
			spin(400)
		}
	}
	s2, err := core.New(r.Gram, core.Options{Workers: workers, Seed: r.Cfg.Seed, Throttle: slowR})
	if err != nil {
		panic(err)
	}
	xrs := make([]float64, r.Gram.Rows)
	s2.AsyncSweeps(xrs, r.b1, sweeps)
	emit("asyrgs", "one-slow", s2.Residual(xrs, r.b1))
	return rows
}
