package bench

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"runtime"
	"time"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/stats"
)

// runRegistry dispatches one fixed-work run (Tol <= 0 runs the exact
// sweep budget) through the method registry's Prepare/Solve pipeline —
// the single entry point all ablation tables share instead of per-method
// construction code.
func runRegistry(name string, a *sparse.CSR, b []float64, opts method.Opts) method.Result {
	ps := prepareRegistry(name, a, opts)
	x := make([]float64, a.Cols)
	res, err := ps.Solve(context.Background(), b, x, opts)
	if err != nil && !errors.Is(err, method.ErrNotConverged) {
		panic(err)
	}
	return res
}

// prepareRegistry captures the per-matrix state for one registry method,
// panicking on misconfiguration (bench workloads are internally built).
func prepareRegistry(name string, a *sparse.CSR, opts method.Opts) method.PreparedSystem {
	m, err := method.Get(name)
	if err != nil {
		panic(err)
	}
	ps, err := method.Prepare(context.Background(), m, a, opts)
	if err != nil {
		panic(err)
	}
	return ps
}

// DelayRow is one row of the delay-distribution report.
type DelayRow struct {
	Threads      int
	ObservedTau  int     // worst case (the τ the theorems use)
	FractionZero float64 // fraction of perfectly fresh reads
	P99Bound     uint64  // upper bound on the 99th-percentile delay
	MeanBound    float64 // upper bound on the mean delay
}

// DelayDistribution measures the delay distribution of real asynchronous
// executions across thread counts — the experiment the paper's conclusion
// calls for: the worst-case τ is orders of magnitude above the typical
// delay, which is why the (τ-based) bounds are pessimistic while practice
// is close to synchronous.
func (r *Runner) DelayDistribution(sweeps int) []DelayRow {
	r.Prepare()
	if sweeps <= 0 {
		sweeps = r.Cfg.Sweeps
	}
	rows := make([]DelayRow, 0, len(r.Cfg.Threads))
	r.printf("\n== Delay distribution of real asynchronous executions (%d sweeps) ==\n", sweeps)
	r.printf("%-8s %-10s %-10s %-10s %-10s\n", "threads", "tau-hat", "frac-0", "p99<=", "mean<=")
	for _, th := range r.Cfg.Threads {
		if th < 2 {
			continue
		}
		solver, err := core.New(r.Gram, core.Options{Workers: th, Seed: r.Cfg.Seed, MeasureDelay: true})
		if err != nil {
			panic(err)
		}
		x := make([]float64, r.Gram.Rows)
		solver.AsyncSweeps(x, r.bStar, sweeps)
		h := stats.Pow2Histogram{Counts: solver.DelayHistogram()}
		row := DelayRow{
			Threads:      th,
			ObservedTau:  solver.ObservedTau(),
			FractionZero: h.FractionZero(),
			P99Bound:     h.QuantileUpperBound(0.99),
			MeanBound:    h.MeanUpperBound(),
		}
		rows = append(rows, row)
		r.printf("%-8d %-10d %-10.3f %-10d %-10.1f\n", th, row.ObservedTau, row.FractionZero, row.P99Bound, row.MeanBound)
	}
	return rows
}

// SamplingRow is one row of the sampling-strategy ablation.
type SamplingRow struct {
	Strategy string
	Time     time.Duration
	Residual float64
}

// SamplingAblation compares the three direction distributions after a
// fixed sweep budget on the social-media matrix: uniform (the paper's
// algorithm), diagonal-weighted (general Leventhal–Lewis), and
// block-partitioned (the restricted randomization the paper proposes for
// distributed memory — single writer per coordinate, better locality, but
// coupled blocks converge more slowly). Each strategy is one registry
// entry; the table is pure data.
func (r *Runner) SamplingAblation(workers, sweeps int) []SamplingRow {
	r.Prepare()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if sweeps <= 0 {
		sweeps = r.Cfg.Sweeps
	}
	strategies := []string{"asyrgs", "asyrgs-weighted", "asyrgs-partitioned"}
	rows := make([]SamplingRow, 0, len(strategies))
	r.printf("\n== Sampling ablation (%d workers, %d sweeps) ==\n", workers, sweeps)
	r.printf("%-20s %-12s %-14s\n", "strategy", "time", "rel residual")
	for _, name := range strategies {
		res := runRegistry(name, r.Gram, r.b1, method.Opts{
			MaxSweeps: sweeps, CheckEvery: sweeps,
			Workers: workers, Seed: r.Cfg.Seed,
		})
		rows = append(rows, SamplingRow{Strategy: name, Time: res.Wall, Residual: res.Residual})
		r.printf("%-20s %-12v %-14.6e\n", name, res.Wall.Round(time.Microsecond), res.Residual)
	}
	return rows
}

// FaultRow is one row of the fault-injection experiment.
type FaultRow struct {
	Scenario string
	Residual float64
	Tau      int
}

// FaultInjection measures the robustness claim of the paper's §2
// discussion of Hook–Dingle: a deterministic asynchronous method can be
// crippled by one slow processor repeatedly serving stale updates for the
// same coordinates, while randomization spreads the staleness uniformly.
// We run AsyRGS with a healthy worker pool, with one slow worker, and with
// half the pool slow, and report the residual after a fixed budget.
func (r *Runner) FaultInjection(workers, sweeps int) []FaultRow {
	r.Prepare()
	if workers <= 0 {
		workers = 8
	}
	if sweeps <= 0 {
		sweeps = r.Cfg.Sweeps
	}
	scenarios := []struct {
		name     string
		throttle func(worker int, j uint64)
	}{
		{"healthy", nil},
		{"one-slow", func(w int, j uint64) {
			if w == 0 && j%4 == 0 {
				spin(2000)
			}
		}},
		{"half-slow", func(w int, j uint64) {
			if w%2 == 0 && j%4 == 0 {
				spin(2000)
			}
		}},
	}
	rows := make([]FaultRow, 0, len(scenarios))
	r.printf("\n== Fault injection: slow workers under randomized directions (%d workers, %d sweeps) ==\n", workers, sweeps)
	r.printf("%-12s %-14s %-10s\n", "scenario", "rel residual", "tau-hat")
	for _, sc := range scenarios {
		res := runRegistry("asyrgs", r.Gram, r.b1, method.Opts{
			MaxSweeps: sweeps, CheckEvery: sweeps,
			Workers: workers, Seed: r.Cfg.Seed, Throttle: sc.throttle,
			MeasureDelay: true,
		})
		rows = append(rows, FaultRow{Scenario: sc.name, Residual: res.Residual, Tau: res.ObservedTau})
		r.printf("%-12s %-14.6e %-10d\n", sc.name, rows[len(rows)-1].Residual, rows[len(rows)-1].Tau)
	}
	return rows
}

// spin burns roughly the given number of loop iterations without
// sleeping, so the injected slowness does not release the OS thread (a
// sleep would let the scheduler hide the fault).
func spin(iters int) {
	x := 1.0
	for i := 0; i < iters; i++ {
		x = x*1.0000001 + 1e-9
	}
	if x < 0 {
		panic("unreachable")
	}
}

// DistRow is one row of the sharded distributed-memory experiment: one
// (worker count, queue capacity) deployment shape at fixed work.
type DistRow struct {
	Workers  int     `json:"workers"`
	QueueCap int     `json:"queue_cap"`
	Sweeps   int     `json:"sweeps"`
	Residual float64 `json:"residual"`
	Messages uint64  `json:"messages"`
	MaxQueue int     `json:"max_queue"`
	TimeMS   float64 `json:"time_ms"`
}

// DistMem sweeps the sharded backend (asyrgs-distmem, dispatched through
// the registry) over worker counts and communication-buffer capacities —
// the knobs that physically realise the delay bound τ in a distributed
// deployment, the paper's "extend to massively parallel systems" future
// work made measurable. Residual, message traffic, worst inbox backlog
// and wall time come from the registry's normalized Result.
func (r *Runner) DistMem(workers []int, sweeps int, caps []int) []DistRow {
	r.Prepare()
	if len(workers) == 0 {
		workers = []int{2, 4, 8}
	}
	if sweeps <= 0 {
		sweeps = r.Cfg.Sweeps
	}
	if len(caps) == 0 {
		caps = []int{1, 4, 16, 64}
	}
	rows := make([]DistRow, 0, len(workers)*len(caps))
	r.printf("\n== Sharded distributed-memory backend (asyrgs-distmem, %d sweeps) ==\n", sweeps)
	r.printf("%-8s %-10s %-14s %-12s %-10s %-10s\n", "ranks", "queue-cap", "rel residual", "messages", "max-queue", "time")
	for _, w := range workers {
		for _, c := range caps {
			res := runRegistry("asyrgs-distmem", r.Gram, r.b1, method.Opts{
				MaxSweeps: sweeps, CheckEvery: sweeps,
				Workers: w, QueueCap: c, Seed: r.Cfg.Seed,
			})
			rows = append(rows, DistRow{
				Workers: w, QueueCap: c, Sweeps: res.Sweeps,
				Residual: res.Residual, Messages: res.Messages,
				MaxQueue: res.MaxQueue, TimeMS: ms(res.Wall),
			})
			r.printf("%-8d %-10d %-14.6e %-12d %-10d %-10v\n",
				w, c, res.Residual, res.Messages, res.MaxQueue, res.Wall.Round(time.Microsecond))
		}
	}
	return rows
}

// WriteDistMemJSON writes the sharded-backend rows as an indented JSON
// baseline (the CI artifact BENCH_distmem.json).
func WriteDistMemJSON(w io.Writer, rows []DistRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// ClassicRow compares classical asynchronous Jacobi against AsyRGS.
type ClassicRow struct {
	Method   string
	Scenario string
	Residual float64
}

// ClassicVsRandomized pits deterministic chaotic-relaxation Jacobi against
// AsyRGS at equal sweep budgets, healthy and with a starved block/worker —
// the §2 Hook–Dingle motivation for randomization, head to head. Both
// contenders dispatch through the registry; the scenario grid is data.
func (r *Runner) ClassicVsRandomized(workers, sweeps int) []ClassicRow {
	r.Prepare()
	if workers <= 0 {
		workers = 8
	}
	if sweeps <= 0 {
		sweeps = r.Cfg.Sweeps
	}
	slow := func(w int, _ uint64) {
		if w == 0 {
			spin(400)
		}
	}
	scenarios := []struct {
		name     string
		throttle func(worker int, iteration uint64)
	}{
		{"healthy", nil},
		{"one-slow", slow},
	}
	var rows []ClassicRow
	r.printf("\n== Classic async Jacobi vs AsyRGS (%d workers, %d sweeps) ==\n", workers, sweeps)
	r.printf("%-12s %-12s %-14s\n", "method", "scenario", "rel residual")
	for _, sc := range scenarios {
		for _, name := range []string{"asyncjacobi", "asyrgs"} {
			res := runRegistry(name, r.Gram, r.b1, method.Opts{
				MaxSweeps: sweeps, CheckEvery: sweeps,
				Workers: workers, Seed: r.Cfg.Seed, Throttle: sc.throttle,
			})
			rows = append(rows, ClassicRow{Method: name, Scenario: sc.name, Residual: res.Residual})
			r.printf("%-12s %-12s %-14.6e\n", name, sc.name, res.Residual)
		}
	}
	return rows
}
