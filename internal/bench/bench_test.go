package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/race"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// tinyConfig keeps the integration tests fast while still exercising every
// experiment path end to end.
func tinyConfig() Config {
	return Config{
		Terms:   250,
		RHSCols: 4,
		Threads: []int{1, 2, 4},
		Sweeps:  6,
		Repeats: 1,
		Seed:    7,
		Out:     io.Discard,
	}
}

func TestFig1Shape(t *testing.T) {
	r := NewRunner(tinyConfig())
	pts := r.Fig1(60)
	if len(pts) != 61 {
		t.Fatalf("expected 61 samples, got %d", len(pts))
	}
	// Both solvers must make progress over the run.
	if pts[60].RGSResidual >= pts[0].RGSResidual {
		t.Fatal("RGS made no progress")
	}
	if pts[60].CGResidual >= pts[0].CGResidual {
		t.Fatal("CG made no progress")
	}
	// The paper's long-run shape: CG ahead of RGS at the end.
	if pts[60].CGResidual > pts[60].RGSResidual {
		t.Fatalf("expected CG to win in the long run: CG=%v RGS=%v", pts[60].CGResidual, pts[60].RGSResidual)
	}
	// And RGS should be no worse than CG somewhere early (the fast
	// initial-progress property the paper emphasises).
	early := false
	for s := 1; s <= 20; s++ {
		if pts[s].RGSResidual <= pts[s].CGResidual {
			early = true
			break
		}
	}
	if !early {
		t.Fatal("RGS never led CG early — the Figure 1 shape is lost")
	}
}

func TestFig2LeftShape(t *testing.T) {
	r := NewRunner(tinyConfig())
	rows := r.Fig2Left()
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(rows))
	}
	for _, row := range rows {
		if row.AsyRGSTime <= 0 || row.CGTime <= 0 {
			t.Fatalf("non-positive timing: %+v", row)
		}
	}
	if rows[0].AsyRGSSpeedup != 1 {
		t.Fatal("first row must be the speedup baseline")
	}
}

func TestFig2CenterShape(t *testing.T) {
	if race.Enabled {
		t.Skip("runs the deliberately racy NonAtomic ablation")
	}
	r := NewRunner(tinyConfig())
	rows := r.Fig2Center()
	for _, row := range rows {
		if row.Async <= 0 || row.AsyncNonAtomic <= 0 || row.Sync <= 0 {
			t.Fatalf("residuals must be positive: %+v", row)
		}
		// Paper shape: async within one order of magnitude of sync.
		if row.Async > 50*row.Sync {
			t.Fatalf("async residual %v catastrophically worse than sync %v at %d threads", row.Async, row.Sync, row.Threads)
		}
	}
}

func TestFig2RightShape(t *testing.T) {
	if race.Enabled {
		t.Skip("runs the deliberately racy NonAtomic ablation")
	}
	r := NewRunner(tinyConfig())
	rows := r.Fig2Right()
	for _, row := range rows {
		if row.Async <= 0 || row.Sync <= 0 {
			t.Fatalf("errors must be positive: %+v", row)
		}
		if row.Async > 50*row.Sync {
			t.Fatalf("async A-norm error %v catastrophically worse than sync %v", row.Async, row.Sync)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	cfg := tinyConfig()
	r := NewRunner(cfg)
	rows := r.Table1(1e-6, 4)
	if len(rows) != 7 {
		t.Fatalf("Table 1 must have 7 rows, got %d", len(rows))
	}
	// Inner sweeps are listed descending; outer iterations must be
	// (weakly) increasing as the preconditioner weakens.
	for i := 1; i < len(rows); i++ {
		if rows[i].InnerSweeps >= rows[i-1].InnerSweeps {
			t.Fatal("inner sweeps must descend")
		}
	}
	if rows[len(rows)-1].OuterIters < rows[0].OuterIters {
		t.Fatalf("1 inner sweep should need at least as many outer iterations as 30: %d vs %d",
			rows[len(rows)-1].OuterIters, rows[0].OuterIters)
	}
	for _, row := range rows {
		if row.MatOps != row.OuterIters*(row.InnerSweeps+1) {
			t.Fatalf("mat-ops accounting wrong: %+v", row)
		}
		if row.Time <= 0 || row.MatOpsPerS <= 0 {
			t.Fatalf("bad timing: %+v", row)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	cfg := tinyConfig()
	cfg.Threads = []int{1, 2}
	r := NewRunner(cfg)
	rows := r.Fig3(1e-6)
	if len(rows) != 4 { // 2 inner sweep counts × 2 thread counts
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	for _, row := range rows {
		if row.OuterIters <= 0 || row.Time <= 0 {
			t.Fatalf("bad row: %+v", row)
		}
	}
}

func TestTheoryValidationBoundsHold(t *testing.T) {
	r := NewRunner(tinyConfig())
	rows := r.TheoryValidation(12, []int{2, 6}, 25, 4)
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	for _, row := range rows {
		if !row.BoundOK {
			t.Fatalf("bound violated: %+v", row)
		}
		if row.Measured <= 0 {
			t.Fatalf("no progress measured: %+v", row)
		}
	}
}

func TestBetaSweepOptimalNotWorst(t *testing.T) {
	r := NewRunner(tinyConfig())
	rows := r.BetaSweep(10, 12, 20, []float64{0.25, 1.0})
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(rows))
	}
	// The last row is β̃; under adversarial delay it must not be the worst
	// of the sampled step sizes.
	opt := rows[len(rows)-1].Error
	worst := 0.0
	for _, row := range rows[:len(rows)-1] {
		if row.Error > worst {
			worst = row.Error
		}
	}
	if opt > worst {
		t.Fatalf("β̃ error %v worse than every sampled β (worst %v)", opt, worst)
	}
}

func TestSyncPeriodSweepRuns(t *testing.T) {
	r := NewRunner(tinyConfig())
	rows := r.SyncPeriodSweep(4, 6, []int{0, 500})
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, row := range rows {
		if row.Error <= 0 {
			t.Fatalf("bad row %+v", row)
		}
	}
}

func TestLSQValidationConverges(t *testing.T) {
	r := NewRunner(tinyConfig())
	rows := r.LSQValidation(400, 100, 40, []int{1, 4})
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, row := range rows {
		if row.Residual > 1 {
			t.Fatalf("lsq residual did not drop: %+v", row)
		}
	}
}

func TestRhoReportPrints(t *testing.T) {
	var sb strings.Builder
	cfg := tinyConfig()
	cfg.Out = &sb
	r := NewRunner(cfg)
	r.RhoReport([]int{10})
	out := sb.String()
	if !strings.Contains(out, "ρ·n") || !strings.Contains(out, "ν_10") {
		t.Fatalf("report missing fields:\n%s", out)
	}
}

func TestRunnerPrepareIdempotent(t *testing.T) {
	r := NewRunner(tinyConfig())
	r.Prepare()
	g := r.Gram
	r.Prepare()
	if r.Gram != g {
		t.Fatal("Prepare must be idempotent")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := Default()
	if cfg.Terms <= 0 || cfg.RHSCols <= 0 || len(cfg.Threads) == 0 {
		t.Fatalf("bad default config %+v", cfg)
	}
	// NewRunner must substitute defaults for a zero config.
	r := NewRunner(Config{})
	if r.Cfg.Terms == 0 {
		t.Fatal("NewRunner should fill in defaults")
	}
}

func TestDelayDistributionRows(t *testing.T) {
	r := NewRunner(tinyConfig())
	rows := r.DelayDistribution(4)
	if len(rows) == 0 {
		t.Fatal("no delay rows")
	}
	for _, row := range rows {
		if row.FractionZero < 0 || row.FractionZero > 1 {
			t.Fatalf("bad fraction %+v", row)
		}
		if uint64(row.ObservedTau) < row.P99Bound/4 && row.ObservedTau > 0 {
			// τ̂ is the max, p99 bound is a bucket edge ≤ 2·max.
			t.Fatalf("inconsistent tail stats %+v", row)
		}
	}
}

func TestSamplingAblationRows(t *testing.T) {
	r := NewRunner(tinyConfig())
	rows := r.SamplingAblation(4, 6)
	if len(rows) != 3 {
		t.Fatalf("want 3 strategies, got %d", len(rows))
	}
	for _, row := range rows {
		if row.Residual <= 0 || row.Residual > 1 {
			t.Fatalf("strategy %s made no progress: %v", row.Strategy, row.Residual)
		}
	}
}

func TestFaultInjectionRows(t *testing.T) {
	r := NewRunner(tinyConfig())
	rows := r.FaultInjection(4, 4)
	if len(rows) != 3 {
		t.Fatalf("want 3 scenarios, got %d", len(rows))
	}
	healthy := rows[0].Residual
	for _, row := range rows[1:] {
		// Randomization keeps slow-worker runs within an order of
		// magnitude of the healthy run.
		if row.Residual > 50*healthy {
			t.Fatalf("scenario %s catastrophically degraded: %v vs healthy %v", row.Scenario, row.Residual, healthy)
		}
	}
}

func TestDistMemRows(t *testing.T) {
	r := NewRunner(tinyConfig())
	rows := r.DistMem([]int{2, 4}, 4, []int{1, 16})
	if len(rows) != 4 {
		t.Fatalf("want 4 rows (2 worker counts x 2 caps), got %d", len(rows))
	}
	for _, row := range rows {
		if row.Residual <= 0 || row.Residual >= 1 {
			t.Fatalf("no progress at w=%d cap=%d: %v", row.Workers, row.QueueCap, row.Residual)
		}
		if row.Messages == 0 {
			t.Fatalf("no communication at w=%d cap=%d", row.Workers, row.QueueCap)
		}
		if row.Sweeps != 4 {
			t.Fatalf("fixed-work row ran %d sweeps", row.Sweeps)
		}
	}
	var buf bytes.Buffer
	if err := WriteDistMemJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []DistRow
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("baseline not valid JSON: %v", err)
	}
	if len(decoded) != len(rows) || decoded[0].Workers != 2 {
		t.Fatalf("baseline round-trip mismatch: %+v", decoded)
	}
}

func TestClassicVsRandomizedRows(t *testing.T) {
	r := NewRunner(tinyConfig())
	rows := r.ClassicVsRandomized(4, 4)
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	for _, row := range rows {
		if row.Residual <= 0 {
			t.Fatalf("bad row %+v", row)
		}
	}
	// AsyRGS under a slow worker must stay close to its healthy run.
	var healthy, slow float64
	for _, row := range rows {
		if row.Method == "asyrgs" {
			if row.Scenario == "healthy" {
				healthy = row.Residual
			} else {
				slow = row.Residual
			}
		}
	}
	if slow > 20*healthy {
		t.Fatalf("asyrgs slow-worker run degraded: %v vs %v", slow, healthy)
	}
}

func TestMethodTableRows(t *testing.T) {
	if race.Enabled {
		t.Skip("the table includes the deliberately racy NonAtomic ablation")
	}
	r := NewRunner(tinyConfig())
	rows := r.MethodTable(1e-4, 400, 2)
	if len(rows) < 8 {
		t.Fatalf("method table should cover every registered SPD method, got %d rows", len(rows))
	}
	seen := map[string]bool{}
	for _, row := range rows {
		seen[row.Method] = true
		if row.Residual <= 0 || row.Sweeps <= 0 {
			t.Fatalf("bad row %+v", row)
		}
	}
	for _, want := range []string{"asyrgs", "rgs", "cg", "fcg", "gs"} {
		if !seen[want] {
			t.Fatalf("method table missing %q", want)
		}
	}
}

func TestHotpathGridShape(t *testing.T) {
	r := NewRunner(tinyConfig())
	rows := r.Hotpath(2, []int{1, 2}, []int{1, 0})
	// 3 samplers × 2 worker counts × (2 chunk sizes at the default
	// precision/kernel + 3 precision×kernel ablations at auto chunk).
	if len(rows) != 30 {
		t.Fatalf("hotpath grid has %d rows, want 30", len(rows))
	}
	samplers := map[string]bool{}
	cells := map[[2]string]bool{}
	for _, row := range rows {
		samplers[row.Sampler] = true
		cells[[2]string{row.Precision, row.Kernel}] = true
		if row.WallMS <= 0 || row.NSPerIter <= 0 || row.Iterations == 0 {
			t.Fatalf("bad hotpath row %+v", row)
		}
		if row.BytesPerIter <= 0 {
			t.Fatalf("hotpath row missing bytes/iter estimate: %+v", row)
		}
	}
	for _, want := range []string{"uniform", "weighted-alias", "weighted-cdf"} {
		if !samplers[want] {
			t.Fatalf("hotpath grid missing sampler %q", want)
		}
	}
	kernel := sparse.KernelName()
	for _, want := range [][2]string{
		{"f64", kernel}, {"f64", "scalar"}, {"f32", kernel}, {"f32", "scalar"},
	} {
		if !cells[want] {
			t.Fatalf("hotpath grid missing precision×kernel cell %v", want)
		}
	}
	// f32 storage must report a strictly smaller per-iteration footprint.
	var by = map[string]int{}
	for _, row := range rows {
		by[row.Precision] = row.BytesPerIter
	}
	if by["f32"] >= by["f64"] {
		t.Fatalf("f32 bytes/iter %d not below f64 %d", by["f32"], by["f64"])
	}
}
