package bench

import (
	"time"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/krylov"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// Fig2LeftRow is one row of the Figure 2 (left) timing sweep.
type Fig2LeftRow struct {
	Threads        int
	AsyRGSTime     time.Duration
	CGTime         time.Duration
	AsyRGSSpeedup  float64 // vs 1 thread
	CGSpeedup      float64
	Oversubscribed bool // threads exceed GOMAXPROCS; wall-clock flattens here
}

// Fig2Left reproduces Figure 2 (left): wall-clock time of 10 sweeps of
// AsyRGS (inconsistent read) and of 10 CG iterations on the multi-RHS
// social-media system, across thread counts. The paper's shape: AsyRGS
// scales almost linearly (speedup ≈48 at 64 threads), CG strays from
// linear as threads grow, and single-thread RGS is slightly faster than CG.
func (r *Runner) Fig2Left() []Fig2LeftRow {
	r.Prepare()
	a := r.Gram
	sweeps := r.Cfg.Sweeps
	rows := make([]Fig2LeftRow, 0, len(r.Cfg.Threads))
	var base Fig2LeftRow
	r.printf("\n== Figure 2 (left): time of %d sweeps, AsyRGS vs CG ==\n", sweeps)
	r.printf("%-8s %-12s %-12s %-10s %-10s %s\n", "threads", "AsyRGS", "CG", "spd(RGS)", "spd(CG)", "")
	for _, th := range r.Cfg.Threads {
		_, over := clampWorkers(th)
		// AsyRGS: 10 sweeps, multi-RHS, fixed direction stream.
		solver, err := core.New(a, core.Options{Workers: th, Seed: r.Cfg.Seed})
		if err != nil {
			panic(err)
		}
		x := vec.NewDense(a.Rows, r.B.Cols)
		asyTime := timeIt(func() { solver.AsyncSweepsDense(x, r.B, sweeps) })

		// CG: 10 iterations, round-robin partitioned SpMV.
		xc := vec.NewDense(a.Rows, r.B.Cols)
		cgTime := timeIt(func() {
			_, _ = krylov.CGDense(a, xc, r.B, krylov.CGOptions{
				Tol: 1e-16, MaxIter: sweeps, Workers: th,
				Partition: sparse.PartitionRoundRobin,
			}, nil)
		})

		row := Fig2LeftRow{Threads: th, AsyRGSTime: asyTime, CGTime: cgTime, Oversubscribed: over}
		if len(rows) == 0 {
			base = row
		}
		row.AsyRGSSpeedup = float64(base.AsyRGSTime) / float64(asyTime)
		row.CGSpeedup = float64(base.CGTime) / float64(cgTime)
		rows = append(rows, row)
		note := ""
		if over {
			note = "(oversubscribed)"
		}
		r.printf("%-8d %-12v %-12v %-10.2f %-10.2f %s\n", th, asyTime.Round(time.Microsecond), cgTime.Round(time.Microsecond), row.AsyRGSSpeedup, row.CGSpeedup, note)
	}
	return rows
}

// Fig2CenterRow is one row of the Figure 2 (center/right) quality sweep.
type Fig2CenterRow struct {
	Threads        int
	Async          float64 // AsyRGS with atomic writes
	AsyncNonAtomic float64 // the non-atomic ablation
	Sync           float64 // synchronous RGS reference (thread-independent)
}

// Fig2Center reproduces Figure 2 (center): the relative residual after 10
// sweeps for AsyRGS, the non-atomic AsyRGS variant, and synchronous RGS,
// with the direction sequence fixed across thread counts (Random123
// methodology). The paper's shape: the asynchronous residuals sit slightly
// above the synchronous one but within the same order of magnitude, with
// no consistent advantage for atomic writes.
func (r *Runner) Fig2Center() []Fig2CenterRow {
	r.Prepare()
	a := r.Gram
	sweeps := r.Cfg.Sweeps

	// Synchronous reference, computed once.
	syncSolver, err := core.New(a, core.Options{Seed: r.Cfg.Seed})
	if err != nil {
		panic(err)
	}
	xs := vec.NewDense(a.Rows, r.B.Cols)
	syncSolver.SweepsDense(xs, r.B, sweeps)
	syncRes := syncSolver.ResidualDense(xs, r.B)

	rows := make([]Fig2CenterRow, 0, len(r.Cfg.Threads))
	r.printf("\n== Figure 2 (center): relative residual after %d sweeps ==\n", sweeps)
	r.printf("%-8s %-14s %-14s %-14s\n", "threads", "AsyRGS", "non-atomic", "sync RGS")
	for _, th := range r.Cfg.Threads {
		if th < 2 {
			rows = append(rows, Fig2CenterRow{Threads: th, Async: syncRes, AsyncNonAtomic: syncRes, Sync: syncRes})
			r.printf("%-8d %-14.6e %-14.6e %-14.6e\n", th, syncRes, syncRes, syncRes)
			continue
		}
		row := Fig2CenterRow{Threads: th, Sync: syncRes}
		for _, nonAtomic := range []bool{false, true} {
			solver, err := core.New(a, core.Options{Workers: th, Seed: r.Cfg.Seed, NonAtomic: nonAtomic})
			if err != nil {
				panic(err)
			}
			x := vec.NewDense(a.Rows, r.B.Cols)
			solver.AsyncSweepsDense(x, r.B, sweeps)
			res := solver.ResidualDense(x, r.B)
			if nonAtomic {
				row.AsyncNonAtomic = res
			} else {
				row.Async = res
			}
		}
		rows = append(rows, row)
		r.printf("%-8d %-14.6e %-14.6e %-14.6e\n", th, row.Async, row.AsyncNonAtomic, row.Sync)
	}
	return rows
}

// Fig2RightRow is one row of the Figure 2 (right) A-norm sweep.
type Fig2RightRow struct {
	Threads        int
	Async          float64
	AsyncNonAtomic float64
	Sync           float64
}

// Fig2Right reproduces Figure 2 (right): the relative A-norm error
// ‖x−x*‖_A/‖x*‖_A after 10 sweeps on a single right-hand side constructed
// from a known solution (b = A·x*), for AsyRGS, non-atomic AsyRGS, and
// synchronous RGS. The paper's shape: asynchronous errors track the
// synchronous one closely and are sometimes better.
func (r *Runner) Fig2Right() []Fig2RightRow {
	r.Prepare()
	a := r.Gram
	sweeps := r.Cfg.Sweeps
	normX := a.ANorm(r.xStar)

	syncSolver, err := core.New(a, core.Options{Seed: r.Cfg.Seed})
	if err != nil {
		panic(err)
	}
	xs := make([]float64, a.Rows)
	syncSolver.Sweeps(xs, r.bStar, sweeps)
	syncErr := a.ANormErr(xs, r.xStar) / normX

	rows := make([]Fig2RightRow, 0, len(r.Cfg.Threads))
	r.printf("\n== Figure 2 (right): relative A-norm of error after %d sweeps ==\n", sweeps)
	r.printf("%-8s %-14s %-14s %-14s\n", "threads", "AsyRGS", "non-atomic", "sync RGS")
	for _, th := range r.Cfg.Threads {
		if th < 2 {
			rows = append(rows, Fig2RightRow{Threads: th, Async: syncErr, AsyncNonAtomic: syncErr, Sync: syncErr})
			r.printf("%-8d %-14.6e %-14.6e %-14.6e\n", th, syncErr, syncErr, syncErr)
			continue
		}
		row := Fig2RightRow{Threads: th, Sync: syncErr}
		for _, nonAtomic := range []bool{false, true} {
			solver, err := core.New(a, core.Options{Workers: th, Seed: r.Cfg.Seed, NonAtomic: nonAtomic})
			if err != nil {
				panic(err)
			}
			x := make([]float64, a.Rows)
			solver.AsyncSweeps(x, r.bStar, sweeps)
			e := a.ANormErr(x, r.xStar) / normX
			if nonAtomic {
				row.AsyncNonAtomic = e
			} else {
				row.Async = e
			}
		}
		rows = append(rows, row)
		r.printf("%-8d %-14.6e %-14.6e %-14.6e\n", th, row.Async, row.AsyncNonAtomic, row.Sync)
	}
	return rows
}
