package bench

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"time"

	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// PrepareRow is one row of the prepared-vs-cold amortization report: the
// median wall time of a cold solve (Prepare + Solve per request, the
// pre-pipeline serving cost) against a warm solve (Solve over a cached
// PreparedSystem) at identical fixed work.
type PrepareRow struct {
	Method   string  `json:"method"`
	Workload string  `json:"workload"`
	Rows     int     `json:"rows"`
	Cols     int     `json:"cols"`
	Sweeps   int     `json:"sweeps"`
	Repeats  int     `json:"repeats"`
	PrepareM float64 `json:"prepare_ms"` // median Prepare wall time
	ColdMS   float64 `json:"cold_ms"`    // median Prepare+Solve wall time
	WarmMS   float64 `json:"warm_ms"`    // median Solve-only wall time
	Speedup  float64 `json:"speedup"`    // ColdMS / WarmMS
}

// PreparedVsCold measures what the two-phase pipeline buys a serving
// deployment: for each method family whose preparation is substantial
// (Gram/CSC construction for least squares, row norms for Kaczmarz,
// diagonal extraction for AsyRGS), it times cold solves — preparation
// re-done per request, as every Method.Solve call does — against warm
// solves over one PreparedSystem, at a fixed sweep budget small enough
// that setup dominates. sweeps <= 0 means 2.
func (r *Runner) PreparedVsCold(sweeps int) []PrepareRow {
	r.Prepare()
	if sweeps <= 0 {
		sweeps = 2
	}
	repeats := r.Cfg.Repeats
	if repeats < 1 {
		repeats = 3
	}
	type scenario struct {
		methodName string
		workload   string
		a          *sparse.CSR
		b          []float64
	}
	lsqRHS := workload.RandomRHS(r.TermDoc.Rows, r.Cfg.Seed+7)
	scenarios := []scenario{
		// The least-squares workload is the headline case: preparation
		// builds the CSC view and column norms of the term-document
		// matrix, dwarfing a few coordinate-descent sweeps.
		{"lsqcd", "term-doc", r.TermDoc, lsqRHS},
		{"lsqcd-async", "term-doc", r.TermDoc, lsqRHS},
		{"kaczmarz", "social-gram", r.Gram, r.bStar},
		{"asyrgs", "social-gram", r.Gram, r.bStar},
	}

	r.printf("\n== Prepared vs cold: amortizing per-matrix setup across solves (%d fixed sweeps, median of %d) ==\n", sweeps, repeats)
	r.printf("%-14s %-12s %-10s %-10s %-10s %-8s\n", "method", "workload", "prep", "cold", "warm", "speedup")
	rows := make([]PrepareRow, 0, len(scenarios))
	opts := method.Opts{Tol: 0, MaxSweeps: sweeps, CheckEvery: sweeps, Seed: r.Cfg.Seed}
	for _, sc := range scenarios {
		m, err := method.Get(sc.methodName)
		if err != nil {
			panic(err)
		}
		prepDs := make([]time.Duration, 0, repeats)
		coldDs := make([]time.Duration, 0, repeats)
		warmDs := make([]time.Duration, 0, repeats)
		ps := prepareRegistry(sc.methodName, sc.a, opts)
		for rep := 0; rep < repeats; rep++ {
			prepDs = append(prepDs, timeIt(func() {
				if _, err := method.Prepare(context.Background(), m, sc.a, opts); err != nil {
					panic(err)
				}
			}))
			x := make([]float64, sc.a.Cols)
			coldDs = append(coldDs, timeIt(func() {
				if _, err := m.Solve(context.Background(), sc.a, sc.b, x, opts); err != nil && !errors.Is(err, method.ErrNotConverged) {
					panic(err)
				}
			}))
			xw := make([]float64, sc.a.Cols)
			warmDs = append(warmDs, timeIt(func() {
				if _, err := ps.Solve(context.Background(), sc.b, xw, opts); err != nil && !errors.Is(err, method.ErrNotConverged) {
					panic(err)
				}
			}))
		}
		row := PrepareRow{
			Method: sc.methodName, Workload: sc.workload,
			Rows: sc.a.Rows, Cols: sc.a.Cols,
			Sweeps: sweeps, Repeats: repeats,
			PrepareM: ms(median(prepDs)), ColdMS: ms(median(coldDs)), WarmMS: ms(median(warmDs)),
		}
		if row.WarmMS > 0 {
			row.Speedup = row.ColdMS / row.WarmMS
		}
		rows = append(rows, row)
		r.printf("%-14s %-12s %-10.3f %-10.3f %-10.3f %-8.2f\n",
			row.Method, row.Workload, row.PrepareM, row.ColdMS, row.WarmMS, row.Speedup)
	}
	return rows
}

// ms converts a duration to milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WritePrepareJSON writes the prepared-vs-cold rows as an indented JSON
// baseline (the CI artifact BENCH_prepare.json).
func WritePrepareJSON(w io.Writer, rows []PrepareRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
