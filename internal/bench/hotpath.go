package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"github.com/asynclinalg/asyrgs/internal/core"
)

// HotpathRow is one cell of the sampler × workers × chunk-size grid that
// measures the rebuilt inner loop: O(1) alias sampling against the
// legacy binary-search CDF, and chunked iteration claiming against
// one-CAS-per-iteration, at fixed work. The BENCH_hotpath.json artifact
// CI regenerates on every PR is the serialized grid.
type HotpathRow struct {
	// Sampler is uniform | weighted-alias | weighted-cdf.
	Sampler string `json:"sampler"`
	Workers int    `json:"workers"`
	// Chunk is the claiming granularity; 0 reports the auto-sized default.
	Chunk      int     `json:"chunk"`
	Sweeps     int     `json:"sweeps"`
	Iterations uint64  `json:"iterations"`
	WallMS     float64 `json:"wall_ms"`     // median over Repeats
	NSPerIter  float64 `json:"ns_per_iter"` // WallMS normalised per coordinate update
}

// hotpathSampler names one sampler configuration of the grid.
type hotpathSampler struct {
	name string
	opts core.Options
}

// Hotpath sweeps the direction-sampling and iteration-claiming hot path
// over sampler implementations, worker counts and claiming chunk sizes,
// running fixed-work asynchronous sweeps on the Gram workload. Nil
// workers/chunks select defaults sized for CI. The direction multiset is
// identical across every cell of a sampler row (pure function of
// (seed, j)), so the grid isolates the cost of the selection structure
// and of counter contention.
func (r *Runner) Hotpath(sweeps int, workers, chunks []int) []HotpathRow {
	r.Prepare()
	if sweeps <= 0 {
		sweeps = 4
	}
	if workers == nil {
		// Oversubscription (workers beyond GOMAXPROCS) still exercises
		// counter claiming — the paper's thread sweep does the same — so
		// the default grid is fixed, plus the machine's width when larger.
		workers = []int{1, 2, 4}
		if max := runtime.GOMAXPROCS(0); max > 4 {
			workers = append(workers, max)
		}
	}
	if chunks == nil {
		chunks = []int{1, 16, 64, 0}
	}
	repeats := r.Cfg.Repeats
	if repeats < 1 {
		repeats = 3
	}
	samplers := []hotpathSampler{
		{"uniform", core.Options{}},
		{"weighted-alias", core.Options{DiagonalWeighted: true}},
		{"weighted-cdf", core.Options{DiagonalWeighted: true, WeightedCDF: true}},
	}

	prep, err := core.PrepareMatrix(r.Gram)
	if err != nil {
		panic(err)
	}
	n := r.Gram.Rows
	iters := uint64(sweeps) * uint64(n)

	r.printf("\n== Hotpath grid: sampler × workers × chunk (%d fixed sweeps on n=%d, median of %d) ==\n", sweeps, n, repeats)
	r.printf("%-16s %-8s %-7s %-10s %-10s\n", "sampler", "workers", "chunk", "wall-ms", "ns/iter")
	var rows []HotpathRow
	for _, smp := range samplers {
		for _, w := range workers {
			for _, chunk := range chunks {
				opts := smp.opts
				opts.Workers = w
				opts.Chunk = chunk
				opts.Seed = r.Cfg.Seed
				ds := make([]time.Duration, 0, repeats)
				for rep := 0; rep < repeats; rep++ {
					s, err := core.NewFromPrep(prep, opts)
					if err != nil {
						panic(err)
					}
					x := make([]float64, n)
					ds = append(ds, timeIt(func() { s.AsyncSweeps(x, r.b1, sweeps) }))
				}
				med := median(ds)
				row := HotpathRow{
					Sampler: smp.name, Workers: w, Chunk: chunk,
					Sweeps: sweeps, Iterations: iters,
					WallMS:    ms(med),
					NSPerIter: float64(med.Nanoseconds()) / float64(iters),
				}
				rows = append(rows, row)
				r.printf("%-16s %-8d %-7d %-10.3f %-10.1f\n", row.Sampler, row.Workers, row.Chunk, row.WallMS, row.NSPerIter)
			}
		}
	}
	return rows
}

// WriteHotpathJSON writes the hotpath grid as an indented JSON baseline
// (the CI artifact BENCH_hotpath.json).
func WriteHotpathJSON(w io.Writer, rows []HotpathRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
