package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// HotpathRow is one cell of the sampler × workers × chunk × precision ×
// kernel grid that measures the rebuilt inner loop: O(1) alias sampling
// against the legacy binary-search CDF, chunked iteration claiming
// against one-CAS-per-iteration, float32 value storage against float64,
// and the unrolled row kernels against the scalar ablation baseline —
// all at fixed work. The BENCH_hotpath.json artifact CI regenerates on
// every PR is the serialized grid.
type HotpathRow struct {
	// Sampler is uniform | weighted-alias | weighted-cdf.
	Sampler string `json:"sampler"`
	// Precision is the matrix value-storage width: f64 | f32.
	Precision string `json:"precision"`
	// Kernel names the row-dot/axpy dispatch in effect: "scalar" is the
	// ablation baseline, otherwise the build's unrolled variant
	// ("unroll4", or "unroll8-v3" under GOAMD64=v3).
	Kernel  string `json:"kernel"`
	Workers int    `json:"workers"`
	// Chunk is the claiming granularity; 0 reports the auto-sized default.
	Chunk      int     `json:"chunk"`
	Sweeps     int     `json:"sweeps"`
	Iterations uint64  `json:"iterations"`
	WallMS     float64 `json:"wall_ms"`     // median over Repeats
	NSPerIter  float64 `json:"ns_per_iter"` // WallMS normalised per coordinate update
	// BytesPerIter is the estimated cache footprint of one coordinate
	// update (mean row values + column indices + touched vector entries)
	// — the quantity the chunk auto-sizer fits to L2, halved on the value
	// side by f32 storage.
	BytesPerIter int `json:"bytes_per_iter"`
}

// hotpathSampler names one sampler configuration of the grid.
type hotpathSampler struct {
	name string
	opts core.Options
}

// hotpathVariant is one precision × kernel cell. The default variant
// (f64, build kernels) sweeps the full chunk grid; the ablation variants
// run at the auto-sized chunk only, keeping the grid linear rather than
// fully crossed in its cheap dimensions.
type hotpathVariant struct {
	precision string
	kernel    string
	f32       bool
	scalar    bool
}

// Hotpath sweeps the direction-sampling and iteration-claiming hot path
// over sampler implementations, worker counts, claiming chunk sizes,
// value-storage precisions and kernel dispatch, running fixed-work
// asynchronous sweeps on the Gram workload. Nil workers/chunks select
// defaults sized for CI. The direction multiset is identical across
// every cell of a sampler row (pure function of (seed, j), with weights
// kept float64 even at f32 storage), so the grid isolates the cost of
// the selection structure, counter contention, memory traffic and
// kernel shape.
func (r *Runner) Hotpath(sweeps int, workers, chunks []int) []HotpathRow {
	r.Prepare()
	if sweeps <= 0 {
		sweeps = 4
	}
	if workers == nil {
		// Oversubscription (workers beyond GOMAXPROCS) still exercises
		// counter claiming — the paper's thread sweep does the same — so
		// the default grid is fixed, plus the machine's width when larger.
		workers = []int{1, 2, 4}
		if max := runtime.GOMAXPROCS(0); max > 4 {
			workers = append(workers, max)
		}
	}
	if chunks == nil {
		chunks = []int{1, 16, 64, 0}
	}
	repeats := r.Cfg.Repeats
	if repeats < 1 {
		repeats = 3
	}
	samplers := []hotpathSampler{
		{"uniform", core.Options{}},
		{"weighted-alias", core.Options{DiagonalWeighted: true}},
		{"weighted-cdf", core.Options{DiagonalWeighted: true, WeightedCDF: true}},
	}
	variants := []hotpathVariant{
		{"f64", sparse.KernelName(), false, false},
		{"f64", "scalar", false, true},
		{"f32", sparse.KernelName(), true, false},
		{"f32", "scalar", true, true},
	}

	prep, err := core.PrepareMatrix(r.Gram)
	if err != nil {
		panic(err)
	}
	n := r.Gram.Rows
	meanNNZ := r.Gram.NNZ() / n
	iters := uint64(sweeps) * uint64(n)

	defer sparse.SetScalarKernels(sparse.ScalarKernels())

	cell := func(smp hotpathSampler, v hotpathVariant, w, chunk int) HotpathRow {
		sparse.SetScalarKernels(v.scalar)
		opts := smp.opts
		opts.Workers = w
		opts.Chunk = chunk
		opts.Seed = r.Cfg.Seed
		opts.Float32 = v.f32
		ds := make([]time.Duration, 0, repeats)
		for rep := 0; rep < repeats; rep++ {
			s, err := core.NewFromPrep(prep, opts)
			if err != nil {
				panic(err)
			}
			x := make([]float64, n)
			ds = append(ds, timeIt(func() { s.AsyncSweeps(x, r.b1, sweeps) }))
		}
		med := median(ds)
		valBytes := 8
		if v.f32 {
			valBytes = 4
		}
		row := HotpathRow{
			Sampler: smp.name, Precision: v.precision, Kernel: v.kernel,
			Workers: w, Chunk: chunk,
			Sweeps: sweeps, Iterations: iters,
			WallMS:       ms(med),
			NSPerIter:    float64(med.Nanoseconds()) / float64(iters),
			BytesPerIter: meanNNZ*(valBytes+8) + 24,
		}
		r.printf("%-16s %-5s %-12s %-8d %-7d %-10.3f %-10.1f\n",
			row.Sampler, row.Precision, row.Kernel, row.Workers, row.Chunk, row.WallMS, row.NSPerIter)
		return row
	}

	r.printf("\n== Hotpath grid: sampler × precision × kernel × workers × chunk (%d fixed sweeps on n=%d, median of %d) ==\n", sweeps, n, repeats)
	r.printf("%-16s %-5s %-12s %-8s %-7s %-10s %-10s\n", "sampler", "prec", "kernel", "workers", "chunk", "wall-ms", "ns/iter")
	var rows []HotpathRow
	for _, smp := range samplers {
		for _, w := range workers {
			// Chunk sweep at the default precision and kernel dispatch.
			for _, chunk := range chunks {
				rows = append(rows, cell(smp, variants[0], w, chunk))
			}
			// Precision × kernel ablations at the auto-sized chunk.
			for _, v := range variants[1:] {
				rows = append(rows, cell(smp, v, w, 0))
			}
		}
	}
	return rows
}

// WriteHotpathJSON writes the hotpath grid as an indented JSON baseline
// (the CI artifact BENCH_hotpath.json).
func WriteHotpathJSON(w io.Writer, rows []HotpathRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
