// Tests for the sharded distributed-memory registry method beyond what
// the conformance and cancellation suites already assert: prep-key
// separation of deployment shapes, communication accounting in the
// normalized Result, and batch solves over one shared worker pool.
package method

import (
	"context"
	"errors"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/workload"
)

func TestDistmemPrepKeySeparatesDeployments(t *testing.T) {
	m, err := Get("asyrgs-distmem")
	if err != nil {
		t.Fatal(err)
	}
	pk, ok := m.(PrepKeyer)
	if !ok {
		t.Fatal("asyrgs-distmem must implement PrepKeyer: its Prepare consumes Opts")
	}
	base := Opts{Workers: 4, QueueCap: 8, Seed: 1}
	if pk.PrepKey(base) != pk.PrepKey(base) {
		t.Fatal("PrepKey must be deterministic")
	}
	variants := []Opts{
		{Workers: 8, QueueCap: 8, Seed: 1},
		{Workers: 4, QueueCap: 2, Seed: 1},
		{Workers: 4, QueueCap: 8, Seed: 9},
		{Workers: 4, QueueCap: 8, Seed: 1, Beta: 0.5},
	}
	for i, v := range variants {
		if pk.PrepKey(v) == pk.PrepKey(base) {
			t.Fatalf("variant %d must get its own prepared-state key", i)
		}
	}
	// Iteration-only knobs must not fragment the cache key.
	warm := base
	warm.Tol, warm.MaxSweeps, warm.CheckEvery = 1e-8, 77, 3
	if pk.PrepKey(warm) != pk.PrepKey(base) {
		t.Fatal("iteration knobs (tol/budget/check-every) must not change the prep key")
	}
	// The key is canonical: an omitted beta resolves to the backend's
	// default of 1, so beta:0 and beta:1 traffic shares one entry.
	canon := base
	canon.Beta = 1
	if pk.PrepKey(canon) != pk.PrepKey(base) {
		t.Fatal("beta 0 (default) and beta 1 must share a prep key")
	}
}

func TestDistmemReportsCommunication(t *testing.T) {
	a := workload.RandomSPD(150, 4, 1.5, 5)
	b := workload.RandomRHS(150, 6)
	m, err := Get("asyrgs-distmem")
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 150)
	res, err := m.Solve(context.Background(), a, b, x, Opts{
		Tol: 1e-6, MaxSweeps: 2000, Workers: 4, QueueCap: 2, Seed: 7, CheckEvery: 5,
	})
	if err != nil {
		t.Fatalf("%v (result %+v)", err, res)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.Messages == 0 {
		t.Fatal("sharded solve must report network traffic in Result.Messages")
	}
	// Messages accumulate across every convergence-check round: with
	// CheckEvery=5 and >5 sweeps there were multiple rounds, so the total
	// must exceed a single round's deterministic traffic.
	if res.Sweeps > 5 && res.Messages <= uint64(5*150*3) {
		t.Fatalf("messages look per-round, not accumulated: %d over %d sweeps", res.Messages, res.Sweeps)
	}
	if res.MaxQueue <= 0 {
		t.Fatal("backpressured run must observe a positive backlog")
	}
	if res.MaxQueue > 2*(4-1)+1 {
		t.Fatalf("backlog %d exceeds the physical inbox bound %d", res.MaxQueue, 2*3+1)
	}
}

func TestDistmemSolveBatchSharesOnePool(t *testing.T) {
	a := workload.Laplacian2D(10, 10)
	m, err := Get("asyrgs-distmem")
	if err != nil {
		t.Fatal(err)
	}
	opts := Opts{Tol: 1e-8, MaxSweeps: 5000, Workers: 2, QueueCap: 4, Seed: 3, CheckEvery: 10}
	ps, err := Prepare(context.Background(), m, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	const c = 4
	bs := make([][]float64, c)
	xs := make([][]float64, c)
	for j := range bs {
		bs[j] = workload.RandomRHS(a.Rows, uint64(j+1))
		xs[j] = make([]float64, a.Cols)
	}
	results, err := ps.SolveBatch(context.Background(), bs, xs, opts)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(results) != c {
		t.Fatalf("want %d results, got %d", c, len(results))
	}
	for j, res := range results {
		if !res.Converged || res.Residual > 1e-8 {
			t.Fatalf("column %d: %+v", j, res)
		}
		if res.Messages == 0 {
			t.Fatalf("column %d reports no traffic", j)
		}
	}
	// A second batch against the same prepared system must work too (the
	// prepared state is reusable; each batch forks a fresh pool).
	x2 := make([]float64, a.Cols)
	if _, err := ps.Solve(context.Background(), bs[0], x2, opts); err != nil {
		t.Fatalf("warm solve after batch: %v", err)
	}
}

func TestDistmemFixedWorkMode(t *testing.T) {
	a := workload.RandomSPD(80, 4, 1.5, 11)
	b := workload.RandomRHS(80, 12)
	m, err := Get("asyrgs-distmem")
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 80)
	res, err := m.Solve(context.Background(), a, b, x, Opts{
		Tol: 0, MaxSweeps: 6, Workers: 2, CheckEvery: 6,
	})
	if err != nil {
		t.Fatalf("fixed-work mode must not error: %v", err)
	}
	if res.Sweeps != 6 || res.Converged {
		t.Fatalf("fixed-work contract violated: %+v", res)
	}
	if !(res.Residual > 0 && res.Residual < 1) {
		t.Fatalf("made no progress: %v", res.Residual)
	}
}

func TestDistmemRejectsBadSystems(t *testing.T) {
	m, err := Get("asyrgs-distmem")
	if err != nil {
		t.Fatal(err)
	}
	tall := workload.RandomOverdetermined(20, 10, 3, 13)
	if _, err := m.Solve(context.Background(), tall, make([]float64, 20), make([]float64, 10), Opts{Tol: 1e-6}); err == nil {
		t.Fatal("rectangular system must be rejected")
	}
	if _, err := Prepare(context.Background(), m, tall, Opts{}); err == nil {
		t.Fatal("Prepare must reject rectangular systems")
	}
}

// TestDistmemBatchStickyNotConverged mirrors the solveColumns contract:
// a column exhausting its budget reports ErrNotConverged after the rest
// of the batch still ran.
func TestDistmemBatchStickyNotConverged(t *testing.T) {
	a := workload.Laplacian2D(8, 8)
	m, _ := Get("asyrgs-distmem")
	ps, err := Prepare(context.Background(), m, a, Opts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bs := [][]float64{workload.RandomRHS(a.Rows, 1), workload.RandomRHS(a.Rows, 2)}
	xs := [][]float64{make([]float64, a.Cols), make([]float64, a.Cols)}
	results, err := ps.SolveBatch(context.Background(), bs, xs, Opts{
		Tol: 1e-14, MaxSweeps: 2, Workers: 2, CheckEvery: 1,
	})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("unconverged columns must not abort the batch: %d results", len(results))
	}
}
