// The metamorphic conformance layer: every registry method must be
// invariant under problem transformations that provably preserve the
// solution. Scale invariance — solving (αA, αb) for α > 0 gives the
// same iterates, because every update and every relative residual of
// the method families here is homogeneous in α (with α a power of two
// the floating-point trajectory is bit-for-bit identical for
// deterministic methods). Permutation invariance — solving the
// symmetrically permuted system (PᵀAP, Pᵀb) gives the permuted
// solution. One table-driven harness covers every SPD method; the
// least-squares roster gets the analogous scale and column-permutation
// relations. Like the conformance suite, registering a new method
// enrols it here automatically.
package method_test

import (
	"context"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// deterministicTrajectory names the methods whose solve path is a pure
// function of (matrix, b, opts) — sequential or fixed-partition
// iterations with no asynchronous scheduling. For these, scaling by a
// power of two must reproduce the exact trajectory: same sweep count,
// same final residual. Asynchronous methods (asyrgs*, asyncjacobi,
// lsqcd-async, asyrgs-distmem) only promise convergence to the same
// solution.
var deterministicTrajectory = map[string]bool{
	"rgs": true, "gs": true, "cg": true, "jacobi": true, "lsqcd": true,
}

// scaleCSR returns α·A.
func scaleCSR(a *sparse.CSR, alpha float64) *sparse.CSR {
	s := a.Clone()
	for i := range s.Vals {
		s.Vals[i] *= alpha
	}
	return s
}

// scaleVec returns α·v.
func scaleVec(v []float64, alpha float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = alpha * v[i]
	}
	return out
}

// permuteSym builds PᵀAP for the permutation p (new index i holds old
// index p[i]), i.e. (PᵀAP)[i][j] = A[p[i]][p[j]].
func permuteSym(a *sparse.CSR, p []int) *sparse.CSR {
	inv := make([]int, len(p))
	for newi, oldi := range p {
		inv[oldi] = newi
	}
	coo := sparse.NewCOO(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			coo.Add(inv[i], inv[j], vals[k])
		}
	}
	return coo.ToCSR()
}

// permuteCols builds A·P (columns reordered: new column j holds old
// column p[j]); rows are untouched, so b is shared.
func permuteCols(a *sparse.CSR, p []int) *sparse.CSR {
	inv := make([]int, len(p))
	for newj, oldj := range p {
		inv[oldj] = newj
	}
	coo := sparse.NewCOO(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			coo.Add(i, inv[j], vals[k])
		}
	}
	return coo.ToCSR()
}

// permuteVec returns v reindexed by p: out[i] = v[p[i]].
func permuteVec(v []float64, p []int) []float64 {
	out := make([]float64, len(v))
	for i, pi := range p {
		out[i] = v[pi]
	}
	return out
}

func TestMetamorphicSPD(t *testing.T) {
	const (
		tol   = 1e-6
		alpha = 4.0 // a power of two: exact in floating point
	)
	systems := []struct {
		name string
		a    *sparse.CSR
	}{
		{"laplacian2d", workload.Laplacian2D(8, 8)},
		{"randomspd", workload.RandomSPD(150, 6, 1.5, 7)},
	}
	for _, sys := range systems {
		a := sys.a
		b, _ := workload.RHSForSolution(a, 11)
		perm := rng.NewSequential(29).Perm(a.Rows)

		for _, m := range method.ByKind(method.SPD) {
			m := m
			opts := method.Opts{
				Tol: tol, MaxSweeps: budgetFor(m.Name()),
				Workers: 2, Seed: 3, CheckEvery: 10,
			}
			solve := func(t *testing.T, sa *sparse.CSR, sb []float64) ([]float64, method.Result) {
				t.Helper()
				x := make([]float64, sa.Cols)
				res, err := m.Solve(context.Background(), sa, sb, x, opts)
				if err != nil {
					t.Fatalf("solve: %v (result %+v)", err, res)
				}
				if !res.Converged || res.Residual > tol {
					t.Fatalf("did not converge: %+v", res)
				}
				return x, res
			}

			t.Run(sys.name+"/"+m.Name()+"/scale", func(t *testing.T) {
				skipNonAtomicUnderRace(t, m.Name())
				x0, res0 := solve(t, a, b)
				x1, res1 := solve(t, scaleCSR(a, alpha), scaleVec(b, alpha))
				if d := relDiff(x1, x0); d > 2e-3 {
					t.Fatalf("scaled solution drifted by %.3e", d)
				}
				if deterministicTrajectory[m.Name()] {
					// Power-of-two scaling is exact: the relative-residual
					// trajectory, and hence the stopping point, must be
					// identical.
					if res1.Sweeps != res0.Sweeps {
						t.Fatalf("scaled trajectory stopped at %d sweeps, base at %d",
							res1.Sweeps, res0.Sweeps)
					}
					if diff := res1.Residual - res0.Residual; diff > 1e-12 || diff < -1e-12 {
						t.Fatalf("scaled residual %.17g != base %.17g", res1.Residual, res0.Residual)
					}
				}
			})

			t.Run(sys.name+"/"+m.Name()+"/permute", func(t *testing.T) {
				skipNonAtomicUnderRace(t, m.Name())
				x0, _ := solve(t, a, b)
				x2, _ := solve(t, permuteSym(a, perm), permuteVec(b, perm))
				// x2[i] approximates x0[perm[i]].
				if d := relDiff(x2, permuteVec(x0, perm)); d > 2e-3 {
					t.Fatalf("permuted solution drifted by %.3e", d)
				}
			})
		}
	}
}

func TestMetamorphicLeastSquares(t *testing.T) {
	const (
		tol   = 1e-8
		alpha = 4.0
	)
	a := workload.RandomOverdetermined(120, 40, 5, 9)
	b := workload.RandomRHS(a.Rows, 13)
	perm := rng.NewSequential(31).Perm(a.Cols)

	for _, m := range method.ByKind(method.LeastSquares) {
		m := m
		opts := method.Opts{Tol: tol, MaxSweeps: 40000, Workers: 2, Seed: 5, CheckEvery: 25}
		solve := func(t *testing.T, sa *sparse.CSR, sb []float64) ([]float64, method.Result) {
			t.Helper()
			x := make([]float64, sa.Cols)
			res, err := m.Solve(context.Background(), sa, sb, x, opts)
			if err != nil {
				t.Fatalf("solve: %v (result %+v)", err, res)
			}
			if !res.Converged || res.Residual > tol {
				t.Fatalf("did not converge: %+v", res)
			}
			return x, res
		}

		t.Run(m.Name()+"/scale", func(t *testing.T) {
			// The normal-equation residual ‖Aᵀ(b−Ax)‖/‖Aᵀb‖ is homogeneous
			// of degree zero in α, so the scaled problem has the same
			// minimizer and the same stopping behaviour.
			x0, res0 := solve(t, a, b)
			x1, res1 := solve(t, scaleCSR(a, alpha), scaleVec(b, alpha))
			if d := relDiff(x1, x0); d > 1e-3 {
				t.Fatalf("scaled solution drifted by %.3e", d)
			}
			if deterministicTrajectory[m.Name()] {
				if res1.Sweeps != res0.Sweeps {
					t.Fatalf("scaled trajectory stopped at %d sweeps, base at %d",
						res1.Sweeps, res0.Sweeps)
				}
				if diff := res1.Residual - res0.Residual; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("scaled residual %.17g != base %.17g", res1.Residual, res0.Residual)
				}
			}
		})

		t.Run(m.Name()+"/permute-cols", func(t *testing.T) {
			// min ‖(AP)y − b‖ is minimized by y = Pᵀx̂: permuting the
			// columns permutes the coordinates of the least-squares
			// solution.
			x0, _ := solve(t, a, b)
			x2, _ := solve(t, permuteCols(a, perm), b)
			if d := relDiff(x2, permuteVec(x0, perm)); d > 1e-3 {
				t.Fatalf("column-permuted solution drifted by %.3e", d)
			}
		})
	}
}
