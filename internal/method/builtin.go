package method

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/kaczmarz"
	"github.com/asynclinalg/asyrgs/internal/krylov"
	"github.com/asynclinalg/asyrgs/internal/lsq"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// The built-in registry: every solver family of the repository. Variants
// are separate entries so drivers and ablation tables are pure data.
func init() {
	Register(&funcMethod{name: "asyrgs", kind: SPD,
		solve: coreSolve("asyrgs", core.Options{}, false)})
	Register(&funcMethod{name: "asyrgs-nonatomic", kind: SPD,
		solve: coreSolve("asyrgs-nonatomic", core.Options{NonAtomic: true}, false)})
	Register(&funcMethod{name: "asyrgs-partitioned", kind: SPD,
		solve: coreSolve("asyrgs-partitioned", core.Options{Partitioned: true}, false)})
	Register(&funcMethod{name: "asyrgs-weighted", kind: SPD,
		solve: coreSolve("asyrgs-weighted", core.Options{DiagonalWeighted: true}, false)})
	Register(&funcMethod{name: "rgs", kind: SPD,
		solve: coreSolve("rgs", core.Options{}, true)})
	Register(&funcMethod{name: "cg", kind: SPD, solve: cgSolve})
	Register(&funcMethod{name: "fcg", kind: SPD, solve: fcgSolve})
	Register(&funcMethod{name: "jacobi", kind: SPD, solve: jacobiSolve})
	Register(&funcMethod{name: "gs", kind: SPD, solve: gsSolve})
	Register(&funcMethod{name: "asyncjacobi", kind: SPD, solve: asyncJacobiSolve})
	Register(&funcMethod{name: "kaczmarz", kind: SPD, solve: kaczmarzSolve})
	Register(&funcMethod{name: "lsqcd", kind: LeastSquares,
		solve: lsqSolve("lsqcd", true)})
	Register(&funcMethod{name: "lsqcd-async", kind: LeastSquares,
		solve: lsqSolve("lsqcd-async", false)})
}

// coreSolve builds the solve function for the core AsyRGS/RGS family.
// base carries the variant flags; sequential forces one worker (the
// synchronous Randomized Gauss–Seidel iteration).
func coreSolve(name string, base core.Options, sequential bool) func(context.Context, *sparse.CSR, []float64, []float64, Opts) (Result, error) {
	return func(ctx context.Context, a *sparse.CSR, b, x []float64, opts Opts) (Result, error) {
		opts = opts.withDefaults()
		co := base
		co.Workers = opts.Workers
		if sequential {
			co.Workers = 1
		}
		co.Beta = opts.Beta
		co.Seed = opts.Seed
		co.MeasureDelay = opts.MeasureDelay
		co.Throttle = opts.Throttle
		s, err := core.New(a, co)
		if err != nil {
			return Result{}, err
		}
		start := time.Now()
		var res Result
		for res.Sweeps < opts.MaxSweeps {
			if err := ctx.Err(); err != nil {
				return res, ctxErr(name, ctx)
			}
			step := min(opts.CheckEvery, opts.MaxSweeps-res.Sweeps)
			s.AsyncSweeps(x, b, step)
			res.Sweeps += step
			res.Residual = s.Residual(x, b)
			if opts.converged(res.Residual) {
				res.Converged = true
				break
			}
		}
		res.Iterations = s.Iterations()
		res.ObservedTau = s.ObservedTau()
		return res, finish(&res, a, x, opts, start, SPD)
	}
}

// cgSolve wraps (parallel-SpMV) conjugate gradients; cancellation is
// handled inside the CG loop so the recurrence is never restarted.
func cgSolve(ctx context.Context, a *sparse.CSR, b, x []float64, opts Opts) (Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	cgRes, err := krylov.CG(a, x, b, krylov.CGOptions{
		Tol: effectiveTol(opts.Tol), MaxIter: opts.MaxSweeps, Workers: opts.Workers,
		Partition: sparse.PartitionRoundRobin, Ctx: ctx,
	})
	res := Result{
		Residual: cgRes.Residual, Converged: cgRes.Converged,
		Sweeps: cgRes.Iterations, Iterations: uint64(cgRes.Iterations),
	}
	if isCtxErr(err) {
		res.Wall = time.Since(start)
		return res, ctxErr("cg", ctx)
	}
	return res, finish(&res, a, x, opts, start, SPD)
}

// fcgSolve wraps the paper's recommended high-accuracy configuration:
// Flexible-CG preconditioned by Opts.Inner sweeps of AsyRGS.
func fcgSolve(ctx context.Context, a *sparse.CSR, b, x []float64, opts Opts) (Result, error) {
	opts = opts.withDefaults()
	s, err := core.New(a, core.Options{
		Workers: opts.Workers, Beta: opts.Beta, Seed: opts.Seed,
		Throttle: opts.Throttle,
	})
	if err != nil {
		return Result{}, err
	}
	pre := krylov.PrecondFunc(func(z, r []float64) { s.Precondition(z, r, opts.Inner) })
	start := time.Now()
	fcgRes, err := krylov.FlexibleCG(a, x, b, pre, krylov.FCGOptions{
		Tol: effectiveTol(opts.Tol), MaxIter: opts.MaxSweeps, Workers: opts.Workers,
		Partition: sparse.PartitionRoundRobin, Ctx: ctx,
	})
	res := Result{
		Residual: fcgRes.Residual, Converged: fcgRes.Converged,
		Sweeps: fcgRes.Iterations, Iterations: s.Iterations(),
	}
	if isCtxErr(err) {
		res.Wall = time.Since(start)
		return res, ctxErr("fcg", ctx)
	}
	return res, finish(&res, a, x, opts, start, SPD)
}

// effectiveTol maps the registry's "non-positive tolerance = fixed work"
// convention onto the Krylov solvers, whose option structs replace a
// non-positive tolerance with their own defaults: an unreachably small
// positive value runs the full budget.
func effectiveTol(tol float64) float64 {
	if tol <= 0 {
		return 1e-300
	}
	return tol
}

// isCtxErr reports whether a solver error came from context
// cancellation.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// jacobiSolve chunks classical Jacobi sweeps; the iterate carries all
// state, so chunking is exact.
func jacobiSolve(ctx context.Context, a *sparse.CSR, b, x []float64, opts Opts) (Result, error) {
	return chunkedStationary(ctx, "jacobi", a, b, x, opts, func(chunk int, tol float64) krylov.StationaryResult {
		return krylov.Jacobi(a, x, b, chunk, tol, opts.Workers)
	})
}

// gsSolve chunks deterministic forward Gauss–Seidel sweeps.
func gsSolve(ctx context.Context, a *sparse.CSR, b, x []float64, opts Opts) (Result, error) {
	return chunkedStationary(ctx, "gs", a, b, x, opts, func(chunk int, tol float64) krylov.StationaryResult {
		return krylov.GaussSeidel(a, x, b, chunk, tol)
	})
}

// asyncJacobiSolve chunks the chaotic-relaxation baseline; the throttled
// variant is selected when a fault-injection hook is present.
func asyncJacobiSolve(ctx context.Context, a *sparse.CSR, b, x []float64, opts Opts) (Result, error) {
	var iter atomic.Uint64 // the throttle hook is invoked from every worker
	return chunkedStationary(ctx, "asyncjacobi", a, b, x, opts, func(chunk int, tol float64) krylov.StationaryResult {
		if opts.Throttle != nil {
			return krylov.AsyncJacobiThrottled(a, x, b, chunk, opts.Workers, func(w, i int) {
				opts.Throttle(w, iter.Add(1)-1)
			})
		}
		return krylov.AsyncJacobi(a, x, b, chunk, opts.Workers)
	})
}

// chunkedStationary runs a stationary iteration CheckEvery sweeps at a
// time, checking the context between chunks. Each chunk call re-runs the
// underlying iteration's setup and a trailing residual matvec, so when
// the caller did not pick a granularity the default is a larger chunk
// than the shared CheckEvery=1 (the iterations stop early within a chunk
// once tol is met, so a big chunk cannot overshoot).
func chunkedStationary(ctx context.Context, name string, a *sparse.CSR, b, x []float64, opts Opts, sweep func(chunk int, tol float64) krylov.StationaryResult) (Result, error) {
	if opts.CheckEvery <= 0 {
		opts.CheckEvery = 16
	}
	opts = opts.withDefaults()
	n := uint64(a.Rows)
	start := time.Now()
	var res Result
	for res.Sweeps < opts.MaxSweeps {
		if err := ctx.Err(); err != nil {
			return res, ctxErr(name, ctx)
		}
		step := min(opts.CheckEvery, opts.MaxSweeps-res.Sweeps)
		sr := sweep(step, opts.Tol)
		res.Sweeps += sr.Sweeps
		res.Iterations += uint64(sr.Sweeps) * n
		res.Residual = sr.Residual
		if opts.converged(res.Residual) {
			res.Converged = true
			break
		}
	}
	return res, finish(&res, a, x, opts, start, SPD)
}

// kaczmarzSolve wraps randomized Kaczmarz; one sweep is n row
// projections.
func kaczmarzSolve(ctx context.Context, a *sparse.CSR, b, x []float64, opts Opts) (Result, error) {
	opts = opts.withDefaults()
	s, err := kaczmarz.New(a, kaczmarz.Options{
		Workers: opts.Workers, Seed: opts.Seed, Beta: opts.Beta,
	})
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	var res Result
	for res.Sweeps < opts.MaxSweeps {
		if err := ctx.Err(); err != nil {
			return res, ctxErr("kaczmarz", ctx)
		}
		step := min(opts.CheckEvery, opts.MaxSweeps-res.Sweeps)
		res.Residual = s.Iterations(x, b, step*a.Rows)
		res.Sweeps += step
		res.Iterations += uint64(step) * uint64(a.Rows)
		if opts.converged(res.Residual) {
			res.Converged = true
			break
		}
	}
	return res, finish(&res, a, x, opts, start, SPD)
}

// lsqSolve builds the solve function for the §8 least-squares coordinate
// descent: sequential iteration (20) or asynchronous iteration (21). One
// sweep is Cols coordinate steps; residuals are relative normal-equation
// residuals ‖Aᵀ(b−Ax)‖₂/‖Aᵀb‖₂.
func lsqSolve(name string, sequential bool) func(context.Context, *sparse.CSR, []float64, []float64, Opts) (Result, error) {
	return func(ctx context.Context, a *sparse.CSR, b, x []float64, opts Opts) (Result, error) {
		opts = opts.withDefaults()
		workers := opts.Workers
		if sequential {
			workers = 1
		}
		s, err := lsq.New(a, lsq.Options{Workers: workers, Seed: opts.Seed, Beta: opts.Beta})
		if err != nil {
			return Result{}, err
		}
		// ‖Aᵀb‖₂ is the optimality residual at x = 0; reuse the solver's
		// CSC view instead of building another transpose.
		normATb := s.LSQResidual(make([]float64, a.Cols), b)
		if normATb == 0 {
			normATb = 1
		}
		start := time.Now()
		var res Result
		for res.Sweeps < opts.MaxSweeps {
			if err := ctx.Err(); err != nil {
				return res, ctxErr(name, ctx)
			}
			step := min(opts.CheckEvery, opts.MaxSweeps-res.Sweeps)
			s.Iterations(x, b, step*a.Cols)
			res.Sweeps += step
			res.Iterations += uint64(step) * uint64(a.Cols)
			res.Residual = s.LSQResidual(x, b) / normATb
			if opts.converged(res.Residual) {
				res.Converged = true
				break
			}
		}
		return res, finish(&res, a, x, opts, start, LeastSquares)
	}
}
