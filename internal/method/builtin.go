package method

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/kaczmarz"
	"github.com/asynclinalg/asyrgs/internal/krylov"
	"github.com/asynclinalg/asyrgs/internal/lsq"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// The built-in registry: every solver family of the repository, wired
// through the two-phase Prepare/Solve pipeline. Variants are separate
// entries so drivers and ablation tables are pure data; each entry's
// prepare hook captures the family's per-matrix state once.
func init() {
	registerCore := func(name string, baseOpts core.Options, sequential bool) {
		Register(&funcMethod{name: name, kind: SPD,
			prepare: corePrepare(name, baseOpts, sequential),
			encode:  coreEncode,
			decode:  coreDecode(name, baseOpts, sequential)})
	}
	registerCore("asyrgs", core.Options{}, false)
	registerCore("asyrgs-nonatomic", core.Options{NonAtomic: true}, false)
	registerCore("asyrgs-partitioned", core.Options{Partitioned: true}, false)
	registerCore("asyrgs-weighted", core.Options{DiagonalWeighted: true}, false)
	registerCore("rgs", core.Options{}, true)
	Register(&funcMethod{name: "cg", kind: SPD, prepare: cgPrepare})
	Register(&funcMethod{name: "fcg", kind: SPD, prepare: fcgPrepare})
	Register(&funcMethod{name: "jacobi", kind: SPD, prepare: stationaryPrepare("jacobi")})
	Register(&funcMethod{name: "gs", kind: SPD, prepare: stationaryPrepare("gs")})
	Register(&funcMethod{name: "asyncjacobi", kind: SPD, prepare: stationaryPrepare("asyncjacobi")})
	Register(&funcMethod{name: "kaczmarz", kind: SPD, prepare: kaczmarzPrepare,
		encode: kaczmarzEncode, decode: kaczmarzDecode})
	registerLSQ := func(name string, sequential, weighted bool) {
		Register(&funcMethod{name: name, kind: LeastSquares,
			prepare: lsqPrepare(name, sequential, weighted),
			encode:  lsqEncode,
			decode:  lsqDecode(name, sequential, weighted)})
	}
	registerLSQ("lsqcd", true, false)
	registerLSQ("lsqcd-async", false, false)
	registerLSQ("lsqcd-weighted", true, true)
}

// resolvePrecision canonicalizes opts.Precision, reporting whether the
// float32 storage view was requested.
func resolvePrecision(opts Opts) (bool, error) {
	p, err := CanonPrecision(opts.Precision)
	if err != nil {
		return false, err
	}
	return p == "f32", nil
}

// rejectF32 is the prepare-time guard of the methods without a float32
// path: the Krylov recurrences and stationary baselines are not robust
// to a perturbed operator at their registered tolerances, and the
// sharded backend keeps one storage format across ranks.
func rejectF32(name string, opts Opts) error {
	f32, err := resolvePrecision(opts)
	if err != nil {
		return err
	}
	if f32 {
		return fmt.Errorf("method: %s does not support precision \"f32\"", name)
	}
	return nil
}

// ---------------------------------------------------------------------------
// AsyRGS / RGS family

// corePrepared holds the reusable per-matrix state of the core family
// (validated diagonal, reciprocal, alias table / sampling CDF) plus the
// variant flags. Each Solve runs a recycled core.Solver over the shared
// core.Prep — the pool keeps warm solves allocation-free while the
// direction stream and delay statistics stay per-solve and preparation
// is paid exactly once.
type corePrepared struct {
	preparedBase
	prep       *core.Prep
	baseOpts   core.Options
	sequential bool
	// a32 is non-nil when the system was prepared with Precision "f32":
	// forked solvers iterate on the float32-storage view and the batched
	// residual pass reads the same view, so convergence is judged against
	// the system actually being solved.
	a32 *sparse.CSR32
	// pool recycles solvers (with their direction and residual scratch)
	// across solves; concurrent solves each draw their own.
	pool sync.Pool
}

// corePrepare builds the prepare hook for an AsyRGS/RGS variant. base
// carries the variant flags; sequential forces one worker (the
// synchronous Randomized Gauss–Seidel iteration).
func corePrepare(name string, baseOpts core.Options, sequential bool) prepareFunc {
	return func(_ context.Context, a *sparse.CSR, opts Opts) (PreparedSystem, error) {
		prep, err := core.PrepareMatrix(a)
		if err != nil {
			return nil, err
		}
		return finishCorePrepared(name, baseOpts, sequential, a, prep, opts)
	}
}

// finishCorePrepared applies the post-PrepareMatrix option handling —
// precision views and weighted-sampling validation — shared by fresh
// preparation and store restores, so both paths build identical systems.
func finishCorePrepared(name string, baseOpts core.Options, sequential bool, a *sparse.CSR, prep *core.Prep, opts Opts) (PreparedSystem, error) {
	f32, err := resolvePrecision(opts)
	if err != nil {
		return nil, err
	}
	p := &corePrepared{
		preparedBase: base(name, SPD, a),
		prep:         prep, baseOpts: baseOpts, sequential: sequential,
	}
	if f32 {
		// Build the rounded view eagerly so underflow surfaces at
		// prepare time and the serving prep cache amortizes the copy.
		if p.a32, err = prep.Float32View(); err != nil {
			return nil, err
		}
		p.baseOpts.Float32 = true
	}
	if baseOpts.DiagonalWeighted {
		// Surface the positive-diagonal requirement at prepare time;
		// the CDF itself is memoized inside the Prep.
		if _, err := core.NewFromPrep(prep, baseOpts); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// fork readies a per-solve core.Solver over the shared prepared state,
// recycling a pooled one when available so the warm path allocates
// nothing. Callers must release the solver when the solve is done.
//
//asyrgs:noalloc
func (p *corePrepared) fork(opts Opts) (*core.Solver, error) {
	co := p.baseOpts
	co.Workers = opts.Workers
	if p.sequential {
		co.Workers = 1
	}
	co.Beta = opts.Beta
	co.Seed = opts.Seed
	co.Chunk = opts.Chunk
	co.MeasureDelay = opts.MeasureDelay
	co.Throttle = opts.Throttle
	if v := p.pool.Get(); v != nil {
		s := v.(*core.Solver)
		if err := s.Reinit(p.prep, co); err != nil {
			return nil, err
		}
		return s, nil
	}
	return core.NewFromPrep(p.prep, co)
}

// release returns a forked solver (and its scratch) to the pool.
//
//asyrgs:noalloc
func (p *corePrepared) release(s *core.Solver) { p.pool.Put(s) }

//asyrgs:noalloc
func (p *corePrepared) Solve(ctx context.Context, b, x []float64, opts Opts) (Result, error) {
	opts = opts.withDefaults()
	s, err := p.fork(opts)
	if err != nil {
		return Result{}, err
	}
	defer p.release(s)
	start := time.Now()
	res := Result{Method: p.name}
	for res.Sweeps < opts.MaxSweeps {
		if err := ctx.Err(); err != nil {
			return res, ctxErr(p.name, ctx)
		}
		step := min(opts.CheckEvery, opts.MaxSweeps-res.Sweeps)
		s.AsyncSweeps(x, b, step)
		res.Sweeps += step
		res.Residual = s.Residual(x, b)
		if opts.converged(res.Residual) {
			res.Converged = true
			break
		}
	}
	res.Iterations = s.Iterations()
	res.ObservedTau = s.ObservedTau()
	return res, finish(&res, p.a, x, opts, start, SPD)
}

// SolveBatch runs every right-hand side together through the core block
// iteration: each coordinate update touches the whole row-major RHS block
// (the paper's multi-RHS locality trick), and convergence is checked for
// all columns with one SpMM residual pass per CheckEvery sweeps.
func (p *corePrepared) SolveBatch(ctx context.Context, bs, xs [][]float64, opts Opts) ([]Result, error) {
	if len(bs) != len(xs) {
		panic("method: SolveBatch needs one initial guess per right-hand side")
	}
	c := len(bs)
	if c == 0 {
		return nil, nil
	}
	if c == 1 {
		res, err := p.Solve(ctx, bs[0], xs[0], opts)
		return []Result{res}, err
	}
	opts = opts.withDefaults()
	s, err := p.fork(opts)
	if err != nil {
		return nil, err
	}
	defer p.release(s)
	n := p.a.Rows
	bblk := vec.NewDense(n, c)
	xblk := vec.NewDense(n, c)
	for j := range bs {
		if len(bs[j]) != n || len(xs[j]) != n {
			panic("method: SolveBatch shape mismatch")
		}
		bblk.SetCol(j, bs[j])
		xblk.SetCol(j, xs[j])
	}
	flush := func() {
		for j := range xs {
			xblk.Col(xs[j], j)
		}
	}

	start := time.Now()
	results := make([]Result, c)
	done := 0
	var residuals []float64
	for done < opts.MaxSweeps {
		if err := ctx.Err(); err != nil {
			flush()
			stampBatch(results, p.name, start)
			return results, ctxErr(p.name, ctx)
		}
		step := min(opts.CheckEvery, opts.MaxSweeps-done)
		s.AsyncSweepsDense(xblk, bblk, step)
		done += step
		if p.a32 != nil {
			residuals = p.a32.BatchRelResiduals(bblk.Data, xblk.Data, c, opts.Workers)
		} else {
			residuals = p.a.BatchRelResiduals(bblk.Data, xblk.Data, c, opts.Workers)
		}
		all := true
		for _, r := range residuals {
			if !opts.converged(r) {
				all = false
				break
			}
		}
		if all {
			break
		}
	}
	flush()
	var firstErr error
	for j := range results {
		results[j] = Result{
			Residual: residuals[j], Converged: opts.converged(residuals[j]),
			Sweeps: done, Iterations: s.Iterations(), ObservedTau: s.ObservedTau(),
		}
		if !results[j].Converged && opts.Tol > 0 && firstErr == nil {
			firstErr = ErrNotConverged
		}
	}
	stampBatch(results, p.name, start)
	return results, firstErr
}

// ---------------------------------------------------------------------------
// Krylov methods

// cgPrepared wraps (parallel-SpMV) conjugate gradients. CG keeps no
// per-matrix state beyond the matrix itself, so preparation is trivially
// cheap; it still participates in the pipeline so serving caches treat
// every method uniformly.
type cgPrepared struct {
	preparedBase
}

func cgPrepare(_ context.Context, a *sparse.CSR, opts Opts) (PreparedSystem, error) {
	if err := rejectF32("cg", opts); err != nil {
		return nil, err
	}
	return &cgPrepared{preparedBase: base("cg", SPD, a)}, nil
}

func (p *cgPrepared) Solve(ctx context.Context, b, x []float64, opts Opts) (Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	cgRes, err := krylov.CG(p.a, x, b, krylov.CGOptions{
		Tol: effectiveTol(opts.Tol), MaxIter: opts.MaxSweeps, Workers: opts.Workers,
		Partition: sparse.PartitionRoundRobin, Ctx: ctx,
	})
	res := Result{
		Method:   p.name,
		Residual: cgRes.Residual, Converged: cgRes.Converged,
		Sweeps: cgRes.Iterations, Iterations: uint64(cgRes.Iterations),
	}
	if isCtxErr(err) {
		res.Wall = time.Since(start)
		return res, ctxErr(p.name, ctx)
	}
	return res, finish(&res, p.a, x, opts, start, SPD)
}

func (p *cgPrepared) SolveBatch(ctx context.Context, bs, xs [][]float64, opts Opts) ([]Result, error) {
	return solveColumns(ctx, p, bs, xs, opts)
}

// fcgPrepared is the paper's recommended high-accuracy configuration:
// Flexible-CG preconditioned by Opts.Inner sweeps of AsyRGS. The prepared
// state is the preconditioner's core.Prep — the expensive part of FCG
// setup — shared across solves.
type fcgPrepared struct {
	preparedBase
	prep *core.Prep
}

func fcgPrepare(_ context.Context, a *sparse.CSR, opts Opts) (PreparedSystem, error) {
	if err := rejectF32("fcg", opts); err != nil {
		return nil, err
	}
	prep, err := core.PrepareMatrix(a)
	if err != nil {
		return nil, err
	}
	return &fcgPrepared{preparedBase: base("fcg", SPD, a), prep: prep}, nil
}

func (p *fcgPrepared) Solve(ctx context.Context, b, x []float64, opts Opts) (Result, error) {
	opts = opts.withDefaults()
	s, err := core.NewFromPrep(p.prep, core.Options{
		Workers: opts.Workers, Beta: opts.Beta, Seed: opts.Seed,
		Throttle: opts.Throttle,
	})
	if err != nil {
		return Result{}, err
	}
	pre := krylov.PrecondFunc(func(z, r []float64) { s.Precondition(z, r, opts.Inner) })
	start := time.Now()
	fcgRes, err := krylov.FlexibleCG(p.a, x, b, pre, krylov.FCGOptions{
		Tol: effectiveTol(opts.Tol), MaxIter: opts.MaxSweeps, Workers: opts.Workers,
		Partition: sparse.PartitionRoundRobin, Ctx: ctx,
	})
	res := Result{
		Method:   p.name,
		Residual: fcgRes.Residual, Converged: fcgRes.Converged,
		Sweeps: fcgRes.Iterations, Iterations: s.Iterations(),
	}
	if isCtxErr(err) {
		res.Wall = time.Since(start)
		return res, ctxErr(p.name, ctx)
	}
	return res, finish(&res, p.a, x, opts, start, SPD)
}

func (p *fcgPrepared) SolveBatch(ctx context.Context, bs, xs [][]float64, opts Opts) ([]Result, error) {
	return solveColumns(ctx, p, bs, xs, opts)
}

// effectiveTol maps the registry's "non-positive tolerance = fixed work"
// convention onto the Krylov solvers, whose option structs replace a
// non-positive tolerance with their own defaults: an unreachably small
// positive value runs the full budget.
func effectiveTol(tol float64) float64 {
	if tol <= 0 {
		return 1e-300
	}
	return tol
}

// isCtxErr reports whether a solver error came from context
// cancellation.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ---------------------------------------------------------------------------
// Classical stationary baselines

// stationaryPrepared holds the prepared state of the Jacobi, Gauss–Seidel
// and chaotic-relaxation baselines: the reciprocal diagonal, extracted
// once per matrix instead of once per chunk of sweeps.
type stationaryPrepared struct {
	preparedBase
	inv []float64
}

func stationaryPrepare(name string) prepareFunc {
	return func(_ context.Context, a *sparse.CSR, opts Opts) (PreparedSystem, error) {
		if err := rejectF32(name, opts); err != nil {
			return nil, err
		}
		if a.Rows != a.Cols {
			return nil, errors.New("method: " + name + " needs a square matrix")
		}
		return &stationaryPrepared{
			preparedBase: base(name, SPD, a),
			inv:          krylov.InvDiag(a),
		}, nil
	}
}

func (p *stationaryPrepared) Solve(ctx context.Context, b, x []float64, opts Opts) (Result, error) {
	switch p.name {
	case "jacobi":
		return chunkedStationary(ctx, p.name, p.a, b, x, opts, func(chunk int, tol float64) krylov.StationaryResult {
			return krylov.JacobiWithInv(p.a, p.inv, x, b, chunk, tol, opts.Workers)
		})
	case "gs":
		return chunkedStationary(ctx, p.name, p.a, b, x, opts, func(chunk int, tol float64) krylov.StationaryResult {
			return krylov.GaussSeidelWithInv(p.a, p.inv, x, b, chunk, tol)
		})
	default: // asyncjacobi
		var iter atomic.Uint64 // the throttle hook is invoked from every worker
		return chunkedStationary(ctx, p.name, p.a, b, x, opts, func(chunk int, tol float64) krylov.StationaryResult {
			if opts.Throttle != nil {
				return krylov.AsyncJacobiThrottledWithInv(p.a, p.inv, x, b, chunk, opts.Workers, func(w, i int) {
					opts.Throttle(w, iter.Add(1)-1)
				})
			}
			return krylov.AsyncJacobiWithInv(p.a, p.inv, x, b, chunk, opts.Workers)
		})
	}
}

func (p *stationaryPrepared) SolveBatch(ctx context.Context, bs, xs [][]float64, opts Opts) ([]Result, error) {
	return solveColumns(ctx, p, bs, xs, opts)
}

// chunkedStationary runs a stationary iteration CheckEvery sweeps at a
// time, checking the context between chunks. Each chunk call re-runs a
// trailing residual matvec, so when the caller did not pick a granularity
// the default is a larger chunk than the shared CheckEvery=1 (the
// iterations stop early within a chunk once tol is met, so a big chunk
// cannot overshoot).
func chunkedStationary(ctx context.Context, name string, a *sparse.CSR, b, x []float64, opts Opts, sweep func(chunk int, tol float64) krylov.StationaryResult) (Result, error) {
	if opts.CheckEvery <= 0 {
		opts.CheckEvery = 16
	}
	opts = opts.withDefaults()
	n := uint64(a.Rows)
	start := time.Now()
	res := Result{Method: name}
	for res.Sweeps < opts.MaxSweeps {
		if err := ctx.Err(); err != nil {
			return res, ctxErr(name, ctx)
		}
		step := min(opts.CheckEvery, opts.MaxSweeps-res.Sweeps)
		sr := sweep(step, opts.Tol)
		res.Sweeps += sr.Sweeps
		res.Iterations += uint64(sr.Sweeps) * n
		res.Residual = sr.Residual
		if opts.converged(res.Residual) {
			res.Converged = true
			break
		}
	}
	return res, finish(&res, a, x, opts, start, SPD)
}

// ---------------------------------------------------------------------------
// Randomized Kaczmarz

// kaczmarzPrepared holds the Kaczmarz row norms and sampling CDF; one
// sweep is n row projections.
type kaczmarzPrepared struct {
	preparedBase
	prep *kaczmarz.Prep
	f32  bool
}

func kaczmarzPrepare(_ context.Context, a *sparse.CSR, opts Opts) (PreparedSystem, error) {
	prep, err := kaczmarz.PrepareMatrix(a)
	if err != nil {
		return nil, err
	}
	return finishKaczmarzPrepared(a, prep, opts)
}

// finishKaczmarzPrepared applies the post-PrepareMatrix option handling
// shared by fresh preparation and store restores.
func finishKaczmarzPrepared(a *sparse.CSR, prep *kaczmarz.Prep, opts Opts) (PreparedSystem, error) {
	f32, err := resolvePrecision(opts)
	if err != nil {
		return nil, err
	}
	if f32 {
		// Build and validate the rounded view eagerly (norm underflow is
		// a prepare-time error); the Prep memoizes it for every fork.
		if _, err := kaczmarz.NewFromPrep(prep, kaczmarz.Options{Float32: true}); err != nil {
			return nil, err
		}
	}
	return &kaczmarzPrepared{preparedBase: base("kaczmarz", SPD, a), prep: prep, f32: f32}, nil
}

func (p *kaczmarzPrepared) Solve(ctx context.Context, b, x []float64, opts Opts) (Result, error) {
	opts = opts.withDefaults()
	s, err := kaczmarz.NewFromPrep(p.prep, kaczmarz.Options{
		Workers: opts.Workers, Seed: opts.Seed, Beta: opts.Beta, Chunk: opts.Chunk,
		Float32: p.f32,
	})
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	res := Result{Method: p.name}
	for res.Sweeps < opts.MaxSweeps {
		if err := ctx.Err(); err != nil {
			return res, ctxErr(p.name, ctx)
		}
		step := min(opts.CheckEvery, opts.MaxSweeps-res.Sweeps)
		res.Residual = s.Iterations(x, b, step*p.a.Rows)
		res.Sweeps += step
		res.Iterations += uint64(step) * uint64(p.a.Rows)
		if opts.converged(res.Residual) {
			res.Converged = true
			break
		}
	}
	return res, finish(&res, p.a, x, opts, start, SPD)
}

func (p *kaczmarzPrepared) SolveBatch(ctx context.Context, bs, xs [][]float64, opts Opts) ([]Result, error) {
	return solveColumns(ctx, p, bs, xs, opts)
}

// ---------------------------------------------------------------------------
// §8 least-squares coordinate descent

// lsqPrepared holds the CSC view and column norms of the §8 least-squares
// coordinate descent: sequential iteration (20) or asynchronous iteration
// (21), drawing columns uniformly or — for lsqcd-weighted — with the
// ‖A e_j‖²-weighted alias table (the general Leventhal–Lewis
// distribution). One sweep is Cols coordinate steps; residuals are
// relative normal-equation residuals ‖Aᵀ(b−Ax)‖₂/‖Aᵀb‖₂.
type lsqPrepared struct {
	preparedBase
	prep       *lsq.Prep
	sequential bool
	weighted   bool
	f32        bool
}

func lsqPrepare(name string, sequential, weighted bool) prepareFunc {
	return func(_ context.Context, a *sparse.CSR, opts Opts) (PreparedSystem, error) {
		prep, err := lsq.PrepareMatrix(a)
		if err != nil {
			return nil, err
		}
		return finishLSQPrepared(name, sequential, weighted, a, prep, opts)
	}
}

// finishLSQPrepared applies the post-PrepareMatrix option handling
// shared by fresh preparation and store restores.
func finishLSQPrepared(name string, sequential, weighted bool, a *sparse.CSR, prep *lsq.Prep, opts Opts) (PreparedSystem, error) {
	f32, err := resolvePrecision(opts)
	if err != nil {
		return nil, err
	}
	if weighted || f32 {
		// Surface alias-table and rounded-view validation at prepare
		// time; both are memoized inside the Prep, so the serving prep
		// cache amortizes their construction.
		if _, err := lsq.NewFromPrep(prep, lsq.Options{NormWeighted: weighted, Float32: f32}); err != nil {
			return nil, err
		}
	}
	return &lsqPrepared{
		preparedBase: base(name, LeastSquares, a),
		prep:         prep, sequential: sequential, weighted: weighted, f32: f32,
	}, nil
}

func (p *lsqPrepared) Solve(ctx context.Context, b, x []float64, opts Opts) (Result, error) {
	opts = opts.withDefaults()
	workers := opts.Workers
	if p.sequential {
		workers = 1
	}
	s, err := lsq.NewFromPrep(p.prep, lsq.Options{
		Workers: workers, Seed: opts.Seed, Beta: opts.Beta,
		NormWeighted: p.weighted, Chunk: opts.Chunk, Float32: p.f32,
	})
	if err != nil {
		return Result{}, err
	}
	// ‖Aᵀb‖₂ is the optimality residual at x = 0; reuse the solver's
	// CSC view instead of building another transpose.
	normATb := s.LSQResidual(make([]float64, p.a.Cols), b)
	if normATb == 0 {
		normATb = 1
	}
	start := time.Now()
	res := Result{Method: p.name}
	for res.Sweeps < opts.MaxSweeps {
		if err := ctx.Err(); err != nil {
			return res, ctxErr(p.name, ctx)
		}
		step := min(opts.CheckEvery, opts.MaxSweeps-res.Sweeps)
		s.Iterations(x, b, step*p.a.Cols)
		res.Sweeps += step
		res.Iterations += uint64(step) * uint64(p.a.Cols)
		res.Residual = s.LSQResidual(x, b) / normATb
		if opts.converged(res.Residual) {
			res.Converged = true
			break
		}
	}
	return res, finish(&res, p.a, x, opts, start, LeastSquares)
}

func (p *lsqPrepared) SolveBatch(ctx context.Context, bs, xs [][]float64, opts Opts) ([]Result, error) {
	return solveColumns(ctx, p, bs, xs, opts)
}
