// The sharded distributed-memory backend behind the registry:
// asyrgs-distmem runs restricted randomization — each rank owns and
// sole-updates a contiguous coordinate block, exchanging committed
// updates over bounded message queues — which is the paper's named
// future-work deployment promoted to a first-class serving method. The
// backend participates fully in the two-phase pipeline: Prepare captures
// the partition (nnz-balanced), diagonal and per-rank direction streams
// once, and every Solve forks a persistent worker pool that is reused
// across convergence-check rounds and across the columns of a batch.
package method

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/asynclinalg/asyrgs/internal/distmem"
	"github.com/asynclinalg/asyrgs/internal/sparse"
)

func init() {
	Register(distmemMethod{})
}

// distmemMethod adapts internal/distmem to the registry. Unlike the
// funcMethod built-ins its Prepare consumes Opts — the worker count,
// queue budget, step size and seed are deployment shape, baked into the
// partition and streams — so it implements PrepKeyer and serving caches
// key prepared state by those fields.
type distmemMethod struct{}

func (distmemMethod) Name() string { return "asyrgs-distmem" }
func (distmemMethod) Kind() Kind   { return SPD }

// distmemConfig maps the normalized options onto the backend's
// deployment shape. Exactly these fields appear in PrepKey.
func distmemConfig(opts Opts) distmem.Config {
	opts = opts.withDefaults()
	queueCap := opts.QueueCap
	if queueCap <= 0 {
		queueCap = 4
	}
	beta := opts.Beta
	if beta == 0 {
		beta = 1 // distmem.Prepare's own default, resolved here so PrepKey is canonical
	}
	return distmem.Config{
		Workers: opts.Workers, QueueCap: queueCap,
		Beta: beta, Seed: opts.Seed,
		BalanceNNZ: true,
	}
}

// PrepKey canonicalizes the Opts fields Prepare consumes, so prepared-
// system caches never share an entry between differently-sharded
// deployments of the same matrix. (Worker counts above the matrix
// dimension clamp inside Prepare but key distinctly — the key cannot
// see the matrix; such requests are degenerate anyway.)
func (distmemMethod) PrepKey(opts Opts) string {
	cfg := distmemConfig(opts)
	return fmt.Sprintf("w%d|q%d|b%g|s%d", cfg.Workers, cfg.QueueCap, cfg.Beta, cfg.Seed)
}

// Prepare captures the sharded per-matrix state: ownership partition,
// validated diagonal, and one direction-stream key per rank.
func (m distmemMethod) Prepare(_ context.Context, a *sparse.CSR, opts Opts) (PreparedSystem, error) {
	if err := rejectF32(m.Name(), opts); err != nil {
		return nil, err
	}
	prep, err := distmem.Prepare(a, distmemConfig(opts))
	if err != nil {
		return nil, err
	}
	return &distmemPrepared{preparedBase: base(m.Name(), SPD, a), prep: prep}, nil
}

// Solve is the one-shot convenience path: prepare plus a single solve.
func (m distmemMethod) Solve(ctx context.Context, a *sparse.CSR, b, x []float64, opts Opts) (Result, error) {
	ps, err := m.Prepare(ctx, a, opts)
	if err != nil {
		return Result{}, err
	}
	res, err := ps.Solve(ctx, b, x, opts)
	res.Method = m.Name()
	return res, err
}

// distmemPrepared is the backend's PreparedSystem: immutable shared
// state (partition, diagonal, streams) from which each Solve forks its
// own persistent worker pool.
type distmemPrepared struct {
	preparedBase
	prep *distmem.Prepared
}

func (p *distmemPrepared) Solve(ctx context.Context, b, x []float64, opts Opts) (Result, error) {
	opts = distmemCheckEvery(opts).withDefaults()
	s := p.prep.NewSolver()
	defer s.Close()
	return p.solveOn(ctx, s, b, x, opts)
}

// distmemCheckEvery raises the unset residual-check granularity above
// the shared CheckEvery=1 default: every round pays pool barriers,
// fresh inbox allocation, per-rank iterate copies and an O(nnz)
// residual, so one-sweep rounds would be dominated by setup (the same
// reasoning as chunkedStationary's default).
func distmemCheckEvery(opts Opts) Opts {
	if opts.CheckEvery <= 0 {
		opts.CheckEvery = 16
	}
	return opts
}

// solveOn runs one right-hand side over an already-running worker pool.
// Solve and SolveBatch share it, so a batch reuses one pool — and one
// set of ever-advancing stream offsets — across rounds and columns
// instead of respawning every goroutine per round.
func (p *distmemPrepared) solveOn(ctx context.Context, s *distmem.Solver, b, x []float64, opts Opts) (Result, error) {
	start := time.Now()
	res := Result{Method: p.name}
	for res.Sweeps < opts.MaxSweeps {
		if err := ctx.Err(); err != nil {
			res.Wall = time.Since(start)
			return res, ctxErr(p.name, ctx)
		}
		step := min(opts.CheckEvery, opts.MaxSweeps-res.Sweeps)
		dres, err := s.Solve(ctx, x, b, step)
		res.Messages += dres.MessagesSent
		if dres.MaxQueueLen > res.MaxQueue {
			res.MaxQueue = dres.MaxQueueLen
		}
		if err != nil {
			if isCtxErr(err) {
				res.Wall = time.Since(start)
				return res, ctxErr(p.name, ctx)
			}
			return res, err
		}
		res.Sweeps += step
		res.Iterations += uint64(step) * uint64(p.a.Rows)
		res.Residual = dres.Residual
		if opts.converged(res.Residual) {
			res.Converged = true
			break
		}
	}
	return res, finish(&res, p.a, x, opts, start, SPD)
}

// SolveBatch solves the columns sequentially over one shared worker
// pool: preparation and pool spawn are paid zero additional times per
// right-hand side. Error semantics match solveColumns (sticky
// ErrNotConverged, first hard error aborts).
func (p *distmemPrepared) SolveBatch(ctx context.Context, bs, xs [][]float64, opts Opts) ([]Result, error) {
	if len(bs) != len(xs) {
		panic("method: SolveBatch needs one initial guess per right-hand side")
	}
	opts = distmemCheckEvery(opts).withDefaults()
	opts.XStar = nil
	s := p.prep.NewSolver()
	defer s.Close()
	results := make([]Result, 0, len(bs))
	var firstErr error
	for i := range bs {
		res, err := p.solveOn(ctx, s, bs[i], xs[i], opts)
		results = append(results, res)
		if err != nil {
			if errors.Is(err, ErrNotConverged) {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			return results, err
		}
	}
	return results, firstErr
}
