// Mixed-precision conformance: the coordinate-descent families accept
// Opts{Precision: "f32"} and converge on the float32-rounded system
// fl32(A)·x = b, so the suite runs them at tolerances above the storage
// floor √nnz·2⁻²⁴ and compares against the float64 reference with a
// bound that absorbs the κ(A)·2⁻²⁴ perturbation of the solution. The
// Krylov and stationary methods, and the sharded distmem backend,
// reject the knob outright — those rejections are pinned here too, as
// is the prep-cache key separation the serving layer relies on.
package method_test

import (
	"context"
	"strings"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/krylov"
	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// f32SPD and f32LSQ are the rosters that support float32 storage — the
// coordinate families whose per-iteration work is row dots and axpys
// over the value array. Deliberately a hand-written list, not a registry
// query: adding a method that supports f32 means adding it here, so the
// suite cannot silently skip it.
var f32SPD = []string{
	"asyrgs", "asyrgs-nonatomic", "asyrgs-partitioned", "asyrgs-weighted",
	"rgs", "kaczmarz",
}

var f32LSQ = []string{"lsqcd", "lsqcd-async", "lsqcd-weighted"}

// f32Rejectors must refuse the knob: Krylov recurrences and the
// stationary splittings have no float32 storage path, and the distmem
// backend owns its own replicated state.
var f32Rejectors = []string{"cg", "fcg", "jacobi", "gs", "asyncjacobi", "asyrgs-distmem"}

func TestFloat32SPDConformance(t *testing.T) {
	// The f32 storage floor for these systems is ≈ √nnz·2⁻²⁴ ≈ 3e-6;
	// 1e-4 is comfortably above it while still forcing real convergence.
	const tol = 1e-4
	systems := []struct {
		name string
		a    *sparse.CSR
	}{
		{"laplacian2d", workload.Laplacian2D(8, 8)},
		{"randomspd", workload.RandomSPD(150, 6, 1.5, 7)},
	}
	for _, sys := range systems {
		a := sys.a
		b, _ := workload.RHSForSolution(a, 11)

		xref := make([]float64, a.Cols)
		if _, err := krylov.CG(a, xref, b, krylov.CGOptions{Tol: 1e-10}); err != nil {
			t.Fatalf("%s: CG reference failed: %v", sys.name, err)
		}

		for _, name := range f32SPD {
			name := name
			t.Run(sys.name+"/"+name, func(t *testing.T) {
				skipNonAtomicUnderRace(t, name)
				m, err := method.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				x := make([]float64, a.Cols)
				res, err := m.Solve(context.Background(), a, b, x, method.Opts{
					Tol: tol, MaxSweeps: budgetFor(name),
					Workers: 2, Seed: 3, CheckEvery: 10, Precision: "f32",
				})
				if err != nil {
					t.Fatalf("solve: %v (result %+v)", err, res)
				}
				if !res.Converged || res.Residual > tol {
					t.Fatalf("did not converge: %+v", res)
				}
				// The f32 iterate solves fl32(A)·x = b; its distance to the
				// f64 solution is bounded by κ(A)·(tol + 2⁻²⁴). The 8×8
				// Laplacian's κ ≈ 40 dominates: 40·1e-4 = 4e-3, observed
				// ≈ 1.3e-3.
				if d := relDiff(x, xref); d > 5e-3 {
					t.Fatalf("f32 solution disagrees with f64 CG reference by %.3e", d)
				}
			})
		}
	}
}

func TestFloat32LeastSquaresConformance(t *testing.T) {
	// Normal-equation residuals square the conditioning, so the LSQ floor
	// sits higher than the SPD one; 5e-4 is achievable on this system.
	const tol = 5e-4
	a := workload.RandomOverdetermined(120, 40, 5, 9)
	b := workload.RandomRHS(a.Rows, 13)

	ata := sparse.Gram(a)
	atb := make([]float64, a.Cols)
	a.ToCSC().MulTransVec(atb, b)
	xref := make([]float64, a.Cols)
	if _, err := krylov.CG(ata, xref, atb, krylov.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatalf("normal-equations reference failed: %v", err)
	}

	for _, name := range f32LSQ {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := method.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, a.Cols)
			res, err := m.Solve(context.Background(), a, b, x, method.Opts{
				Tol: tol, MaxSweeps: 40000, Workers: 2, Seed: 5, CheckEvery: 25,
				Precision: "f32",
			})
			if err != nil {
				t.Fatalf("solve: %v (result %+v)", err, res)
			}
			if !res.Converged || res.Residual > tol {
				t.Fatalf("did not converge: %+v", res)
			}
			if d := relDiff(x, xref); d > 5e-3 {
				t.Fatalf("f32 solution disagrees with normal equations by %.3e", d)
			}
		})
	}
}

// TestFloat32DirectionStreamInvariance pins the design rule that makes
// precision an apples-to-apples ablation: sampling weights stay float64,
// so the f32 and f64 runs of a deterministic method draw the identical
// coordinate sequence and run the same sweep count under fixed work.
func TestFloat32DirectionStreamInvariance(t *testing.T) {
	a := workload.RandomSPD(100, 5, 1.5, 21)
	b := workload.RandomRHS(100, 22)
	for _, name := range []string{"rgs", "kaczmarz"} {
		m, err := method.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func(prec string) method.Result {
			x := make([]float64, 100)
			res, err := m.Solve(context.Background(), a, b, x, method.Opts{
				Tol: 0, MaxSweeps: 4, Workers: 1, Seed: 9, CheckEvery: 4,
				Precision: prec,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, prec, err)
			}
			return res
		}
		r64, r32 := run("f64"), run("f32")
		if r64.Sweeps != r32.Sweeps || r64.Iterations != r32.Iterations {
			t.Fatalf("%s: fixed-work accounting diverged across precisions: f64 %+v vs f32 %+v",
				name, r64, r32)
		}
		// Same directions, same exact-at-this-scale updates: the residuals
		// differ only by storage rounding, far below 1e-4 relative.
		if diff := r64.Residual - r32.Residual; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("%s: residual diverged beyond rounding: f64 %.6g vs f32 %.6g",
				name, r64.Residual, r32.Residual)
		}
	}
}

// TestFloat32ScaleMetamorphic extends the metamorphic scale relation to
// f32 storage for the deterministic f32-capable methods: a power-of-two
// scale is exact in float32 as well (fl32(4a) = 4·fl32(a)), so the
// trajectory must replay sweep-for-sweep.
func TestFloat32ScaleMetamorphic(t *testing.T) {
	const tol = 1e-4
	a := workload.Laplacian2D(8, 8)
	b, _ := workload.RHSForSolution(a, 11)
	m, err := method.Get("rgs")
	if err != nil {
		t.Fatal(err)
	}
	solve := func(sa *sparse.CSR, sb []float64) ([]float64, method.Result) {
		x := make([]float64, sa.Cols)
		res, err := m.Solve(context.Background(), sa, sb, x, method.Opts{
			Tol: tol, MaxSweeps: 5000, Workers: 1, Seed: 3, CheckEvery: 10,
			Precision: "f32",
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("did not converge: %+v", res)
		}
		return x, res
	}
	x0, res0 := solve(a, b)
	x1, res1 := solve(scaleCSR(a, 4.0), scaleVec(b, 4.0))
	if res1.Sweeps != res0.Sweeps {
		t.Fatalf("f32 scaled trajectory stopped at %d sweeps, base at %d", res1.Sweeps, res0.Sweeps)
	}
	if d := relDiff(x1, x0); d > 2e-3 {
		t.Fatalf("f32 scaled solution drifted by %.3e", d)
	}
}

func TestFloat32Rejections(t *testing.T) {
	a := workload.Laplacian2D(4, 4)
	b := workload.RandomRHS(a.Rows, 1)
	for _, name := range f32Rejectors {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := method.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, a.Cols)
			_, err = m.Solve(context.Background(), a, b, x, method.Opts{
				Tol: 1e-6, MaxSweeps: 10, Workers: 2, Precision: "f32",
			})
			if err == nil {
				t.Fatalf("%s accepted precision \"f32\"", name)
			}
			if !strings.Contains(err.Error(), "f32") {
				t.Fatalf("%s rejection does not name the precision: %v", name, err)
			}
		})
	}

	// An unknown spelling is a client error everywhere, including on
	// methods that do support f32.
	m, err := method.Get("asyrgs")
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Cols)
	if _, err := m.Solve(context.Background(), a, b, x, method.Opts{
		Tol: 1e-6, MaxSweeps: 10, Precision: "double",
	}); err == nil {
		t.Fatal("unknown precision spelling must be rejected")
	}
}

// TestPrecisionPrepKey pins the serving contract: prepared-state caches
// key on the canonical precision, so f32 and f64 requests over the same
// matrix never share an entry, and spelling variants ("", "f64",
// "float64") collapse to one.
func TestPrecisionPrepKey(t *testing.T) {
	m, err := method.Get("asyrgs")
	if err != nil {
		t.Fatal(err)
	}
	pk, ok := m.(method.PrepKeyer)
	if !ok {
		t.Fatal("built-in methods must implement PrepKeyer for the precision knob")
	}
	for _, spelling := range []string{"", "f64", "float64"} {
		if got := pk.PrepKey(method.Opts{Precision: spelling}); got != "p=f64" {
			t.Fatalf("PrepKey(%q) = %q, want \"p=f64\"", spelling, got)
		}
	}
	for _, spelling := range []string{"f32", "float32"} {
		if got := pk.PrepKey(method.Opts{Precision: spelling}); got != "p=f32" {
			t.Fatalf("PrepKey(%q) = %q, want \"p=f32\"", spelling, got)
		}
	}
}

// TestCanonPrecision pins the canonicalization table itself.
func TestCanonPrecision(t *testing.T) {
	for in, want := range map[string]string{
		"": "f64", "f64": "f64", "float64": "f64",
		"f32": "f32", "float32": "f32",
	} {
		got, err := method.CanonPrecision(in)
		if err != nil || got != want {
			t.Fatalf("CanonPrecision(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"f16", "double", "single", "F32", " f32"} {
		if _, err := method.CanonPrecision(bad); err == nil {
			t.Fatalf("CanonPrecision(%q) must fail", bad)
		}
	}
}
