package method_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// systemFor builds a system of the right shape for a method's kind.
func systemFor(m method.Method) (a *sparse.CSR, b, x []float64) {
	if m.Kind() == method.LeastSquares {
		a = workload.RandomOverdetermined(300, 100, 5, 17)
		b = workload.RandomRHS(a.Rows, 18)
	} else {
		a = workload.Laplacian2D(20, 20)
		b = workload.RandomRHS(a.Rows, 19)
	}
	return a, b, make([]float64, a.Cols)
}

// TestCancelBeforeSolve: an already-cancelled context must stop every
// registered method before it does any sweeps.
func TestCancelBeforeSolve(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range method.All() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			a, b, x := systemFor(m)
			res, err := m.Solve(ctx, a, b, x, method.Opts{
				Tol: 1e-300, MaxSweeps: 1 << 30, CheckEvery: 1,
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want wrapped context.Canceled, got %v", err)
			}
			if res.Sweeps != 0 {
				t.Fatalf("ran %d sweeps under a pre-cancelled context", res.Sweeps)
			}
		})
	}
}

// countdownCtx cancels itself after a fixed number of Err polls — a
// deterministic stand-in for "the caller cancels mid-run" that cannot
// race against fast solvers.
type countdownCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestCancelMidSolve: cancelling mid-run must stop every method promptly
// — well before its (effectively unbounded) budget.
func TestCancelMidSolve(t *testing.T) {
	for _, m := range method.All() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			skipNonAtomicUnderRace(t, m.Name())
			a, b, x := systemFor(m)
			ctx := &countdownCtx{Context: context.Background(), after: 5}
			start := time.Now()
			res, err := m.Solve(ctx, a, b, x, method.Opts{
				Tol: 1e-300, MaxSweeps: 1 << 30, CheckEvery: 1, Workers: 2,
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want wrapped context.Canceled, got %v (result %+v)", err, res)
			}
			if res.Sweeps >= 1<<30 {
				t.Fatalf("exhausted the budget instead of stopping: %+v", res)
			}
			if d := time.Since(start); d > 10*time.Second {
				t.Fatalf("took %v to honour cancellation", d)
			}
		})
	}
}

// TestDeadlineExceeded: context deadlines surface the same way.
func TestDeadlineExceeded(t *testing.T) {
	m, err := method.Get("asyrgs")
	if err != nil {
		t.Fatal(err)
	}
	a, b, x := systemFor(m)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	if _, err := m.Solve(ctx, a, b, x, method.Opts{
		Tol: 1e-300, MaxSweeps: 1 << 30, CheckEvery: 1,
	}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want wrapped DeadlineExceeded, got %v", err)
	}
}
