package method

import (
	"fmt"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/kaczmarz"
	"github.com/asynclinalg/asyrgs/internal/lsq"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/store"
)

// PersistentPreparer is the optional interface of methods whose prepared
// state can round-trip through the durable prep store. EncodePrepared
// serializes only the derived state (norms, diagonals, column views) —
// never the matrix, whose identity is already guaranteed by the
// content-addressed store key — and DecodePrepared rebuilds a
// PreparedSystem over the caller's matrix, applying the same prep-time
// option handling (precision views, weighted-sampling validation) as a
// fresh Prepare. A restored system must be behaviorally identical to a
// freshly prepared one: deterministic solves produce bit-identical
// trajectories (asserted in tests). Methods that do not implement the
// interface simply never spill or restore.
type PersistentPreparer interface {
	Method
	// EncodePrepared serializes ps's derived per-matrix state. It must
	// only be called with a PreparedSystem this method produced.
	EncodePrepared(ps PreparedSystem) ([]byte, error)
	// DecodePrepared rebuilds a prepared system over a from an encoded
	// payload. Structural damage is an error (callers fall back to a
	// fresh Prepare); it must never panic on arbitrary bytes.
	DecodePrepared(a *sparse.CSR, payload []byte, opts Opts) (PreparedSystem, error)
}

// AsPersistent reports whether m can persist its prepared systems,
// returning the persistence view when it can. A funcMethod qualifies
// only when both codec hooks are wired.
func AsPersistent(m Method) (PersistentPreparer, bool) {
	if fm, ok := m.(*funcMethod); ok {
		if fm.encode == nil || fm.decode == nil {
			return nil, false
		}
		return fm, true
	}
	pp, ok := m.(PersistentPreparer)
	return pp, ok
}

// Payload framing: every family payload opens with a format version and
// a family tag. The tag is defense in depth — the store key already
// separates methods — so a blob that somehow reaches the wrong family's
// decoder fails loudly instead of misparsing.
const (
	persistVersion = 1

	familyCore     = 'c'
	familyKaczmarz = 'k'
	familyLSQ      = 'l'
)

// persistHeader opens a family payload.
func persistHeader(e *store.Enc, family byte) {
	e.U8(persistVersion)
	e.U8(family)
}

// checkHeader validates a family payload's version and tag.
func checkHeader(d *store.Dec, family byte) error {
	if v := d.U8(); d.Err() == nil && v != persistVersion {
		return fmt.Errorf("method: prepared-state payload version %d, want %d", v, persistVersion)
	}
	if f := d.U8(); d.Err() == nil && f != family {
		return fmt.Errorf("method: prepared-state payload family %q, want %q", f, family)
	}
	return d.Err()
}

// ---------------------------------------------------------------------------
// AsyRGS / RGS family codec: diagonal + reciprocal. The alias table,
// CDF and float32 view rebuild lazily (or eagerly per opts) from these.

func coreEncode(ps PreparedSystem) ([]byte, error) {
	p, ok := ps.(*corePrepared)
	if !ok {
		return nil, fmt.Errorf("method: cannot encode %T as core prepared state", ps)
	}
	diag, invD := p.prep.State()
	var e store.Enc
	persistHeader(&e, familyCore)
	e.F64s(diag)
	e.F64s(invD)
	return e.Bytes(), nil
}

// coreDecode builds the decode hook for an AsyRGS/RGS variant; the
// closure carries the same variant flags as its corePrepare twin so a
// restored system finishes through identical option handling.
func coreDecode(name string, baseOpts core.Options, sequential bool) decodeFunc {
	return func(a *sparse.CSR, payload []byte, opts Opts) (PreparedSystem, error) {
		d := store.NewDec(payload)
		if err := checkHeader(d, familyCore); err != nil {
			return nil, err
		}
		diag := d.F64s()
		invD := d.F64s()
		if err := d.Close(); err != nil {
			return nil, err
		}
		prep, err := core.PrepFromState(a, diag, invD)
		if err != nil {
			return nil, err
		}
		return finishCorePrepared(name, baseOpts, sequential, a, prep, opts)
	}
}

// ---------------------------------------------------------------------------
// Kaczmarz codec: squared row norms; CDF and alias table rebuild in
// O(n) at decode.

func kaczmarzEncode(ps PreparedSystem) ([]byte, error) {
	p, ok := ps.(*kaczmarzPrepared)
	if !ok {
		return nil, fmt.Errorf("method: cannot encode %T as kaczmarz prepared state", ps)
	}
	var e store.Enc
	persistHeader(&e, familyKaczmarz)
	e.F64s(p.prep.State())
	return e.Bytes(), nil
}

func kaczmarzDecode(a *sparse.CSR, payload []byte, opts Opts) (PreparedSystem, error) {
	d := store.NewDec(payload)
	if err := checkHeader(d, familyKaczmarz); err != nil {
		return nil, err
	}
	rowNorm2 := d.F64s()
	if err := d.Close(); err != nil {
		return nil, err
	}
	prep, err := kaczmarz.PrepFromState(a, rowNorm2)
	if err != nil {
		return nil, err
	}
	return finishKaczmarzPrepared(a, prep, opts)
}

// ---------------------------------------------------------------------------
// Least-squares codec: the CSC column view (the transpose pass that
// dominates lsq preparation) plus squared column norms.

func lsqEncode(ps PreparedSystem) ([]byte, error) {
	p, ok := ps.(*lsqPrepared)
	if !ok {
		return nil, fmt.Errorf("method: cannot encode %T as lsq prepared state", ps)
	}
	csc, colNorm2 := p.prep.State()
	var e store.Enc
	persistHeader(&e, familyLSQ)
	e.Int(csc.Rows)
	e.Int(csc.Cols)
	e.Ints(csc.ColPtr)
	e.Ints(csc.RowIdx)
	e.F64s(csc.Vals)
	e.F64s(colNorm2)
	return e.Bytes(), nil
}

// lsqDecode builds the decode hook for an lsqcd variant.
func lsqDecode(name string, sequential, weighted bool) decodeFunc {
	return func(a *sparse.CSR, payload []byte, opts Opts) (PreparedSystem, error) {
		d := store.NewDec(payload)
		if err := checkHeader(d, familyLSQ); err != nil {
			return nil, err
		}
		csc := &sparse.CSC{Rows: d.Int(), Cols: d.Int(), ColPtr: d.Ints(), RowIdx: d.Ints(), Vals: d.F64s()}
		colNorm2 := d.F64s()
		if err := d.Close(); err != nil {
			return nil, err
		}
		prep, err := lsq.PrepFromState(a, csc, colNorm2)
		if err != nil {
			return nil, err
		}
		return finishLSQPrepared(name, sequential, weighted, a, prep, opts)
	}
}
