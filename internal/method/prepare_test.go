// Tests for the two-phase Prepare/Solve pipeline: prepared-state reuse
// (zero re-preparation on warm solves and across batch columns), batch
// correctness against the single-RHS path, and the fallback adapter for
// methods without separable preparation.
package method_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/core"
	"github.com/asynclinalg/asyrgs/internal/kaczmarz"
	"github.com/asynclinalg/asyrgs/internal/lsq"
	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// prepCounters snapshots every preparation counter the solver packages
// instrument: Gram/SpGEMM builds, core diagonal preparations, Kaczmarz
// row-norm passes and least-squares CSC builds.
type prepCounters struct {
	gram, core, kaczmarz, lsq uint64
}

func snapshotPrep() prepCounters {
	return prepCounters{
		gram:     sparse.GramCount(),
		core:     core.PrepCount(),
		kaczmarz: kaczmarz.PrepCount(),
		lsq:      lsq.PrepCount(),
	}
}

func (c prepCounters) delta(later prepCounters) prepCounters {
	return prepCounters{
		gram:     later.gram - c.gram,
		core:     later.core - c.core,
		kaczmarz: later.kaczmarz - c.kaczmarz,
		lsq:      later.lsq - c.lsq,
	}
}

func (c prepCounters) total() uint64 { return c.gram + c.core + c.kaczmarz + c.lsq }

// TestPreparedReuseZeroReprep is the pipeline's core guarantee: after
// Prepare, any number of solves — and every right-hand side of a batch —
// perform zero additional preparations (no SpGEMM, row-norm, CSC or
// diagonal recomputation).
func TestPreparedReuseZeroReprep(t *testing.T) {
	spd := workload.RandomSPD(120, 4, 1.5, 3)
	tall := workload.RandomOverdetermined(160, 60, 4, 5)
	cases := []struct {
		methodName string
		a          *sparse.CSR
	}{
		{"asyrgs", spd},
		{"asyrgs-weighted", spd},
		{"rgs", spd},
		{"fcg", spd},
		{"jacobi", spd},
		{"gs", spd},
		{"kaczmarz", spd},
		{"cg", spd},
		{"lsqcd", tall},
		{"lsqcd-async", tall},
	}
	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.methodName, func(t *testing.T) {
			m, err := method.Get(tc.methodName)
			if err != nil {
				t.Fatal(err)
			}
			opts := method.Opts{Tol: 1e-8, MaxSweeps: 3000, Workers: 2, Seed: 7}
			before := snapshotPrep()
			ps, err := method.Prepare(ctx, m, tc.a, opts)
			if err != nil {
				t.Fatal(err)
			}
			prepDelta := before.delta(snapshotPrep())
			if tc.methodName != "cg" && tc.methodName != "jacobi" && tc.methodName != "gs" && prepDelta.total() == 0 {
				t.Fatalf("Prepare performed no instrumented preparation for %s", tc.methodName)
			}

			// Warm solves: two single right-hand sides, then a batch of
			// four — all against the one prepared system.
			warmStart := snapshotPrep()
			for rhs := 0; rhs < 2; rhs++ {
				b := workload.RandomRHS(tc.a.Rows, uint64(10+rhs))
				x := make([]float64, tc.a.Cols)
				if _, err := ps.Solve(ctx, b, x, opts); err != nil && !errors.Is(err, method.ErrNotConverged) {
					t.Fatalf("warm solve %d: %v", rhs, err)
				}
			}
			bs := make([][]float64, 4)
			xs := make([][]float64, 4)
			for j := range bs {
				bs[j] = workload.RandomRHS(tc.a.Rows, uint64(20+j))
				xs[j] = make([]float64, tc.a.Cols)
			}
			results, err := ps.SolveBatch(ctx, bs, xs, opts)
			if err != nil && !errors.Is(err, method.ErrNotConverged) {
				t.Fatalf("batch: %v", err)
			}
			if len(results) != len(bs) {
				t.Fatalf("batch returned %d results for %d right-hand sides", len(results), len(bs))
			}
			if d := warmStart.delta(snapshotPrep()); d.total() != 0 {
				t.Fatalf("warm solves re-prepared state: %+v", d)
			}
		})
	}
}

// TestSolveBatchConverges checks the batched core path (block iteration
// with SpMM residual evaluation) actually solves every column.
func TestSolveBatchConverges(t *testing.T) {
	a := workload.Laplacian2D(12, 12)
	m, err := method.Get("asyrgs")
	if err != nil {
		t.Fatal(err)
	}
	opts := method.Opts{Tol: 1e-8, MaxSweeps: 5000, Workers: 2, Seed: 1}
	ps, err := method.Prepare(context.Background(), m, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	const c = 5
	bs := make([][]float64, c)
	xs := make([][]float64, c)
	for j := range bs {
		bs[j] = workload.RandomRHS(a.Rows, uint64(j+1))
		xs[j] = make([]float64, a.Cols)
	}
	results, err := ps.SolveBatch(context.Background(), bs, xs, opts)
	if err != nil {
		t.Fatalf("batch did not converge: %v", err)
	}
	for j, res := range results {
		if !res.Converged || res.Residual > 1e-8 {
			t.Fatalf("column %d: %+v", j, res)
		}
		if res.Method != "asyrgs" {
			t.Fatalf("column %d: method %q", j, res.Method)
		}
		// Verify the returned iterate independently of the solver's own
		// residual bookkeeping.
		r := make([]float64, a.Rows)
		a.MulVec(r, xs[j])
		var num, den float64
		for i := range r {
			d := bs[j][i] - r[i]
			num += d * d
			den += bs[j][i] * bs[j][i]
		}
		if rel := math.Sqrt(num / den); rel > 1e-7 {
			t.Fatalf("column %d: iterate residual %g", j, rel)
		}
	}
}

// TestSolveBatchHonoursContext: a cancelled context stops the batched
// core path promptly with a wrapped context error.
func TestSolveBatchHonoursContext(t *testing.T) {
	a := workload.Laplacian2D(10, 10)
	m, _ := method.Get("asyrgs")
	ps, err := method.Prepare(context.Background(), m, a, method.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bs := [][]float64{workload.RandomRHS(a.Rows, 1), workload.RandomRHS(a.Rows, 2)}
	xs := [][]float64{make([]float64, a.Cols), make([]float64, a.Cols)}
	_, err = ps.SolveBatch(ctx, bs, xs, method.Opts{Tol: 1e-12, MaxSweeps: 1 << 20})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// plainMethod is a Method that does NOT implement Preparer; Prepare must
// wrap it in the fallback adapter.
type plainMethod struct{ solves int }

func (m *plainMethod) Name() string      { return "plain-test" }
func (m *plainMethod) Kind() method.Kind { return method.SPD }
func (m *plainMethod) Solve(_ context.Context, a *sparse.CSR, b, x []float64, _ method.Opts) (method.Result, error) {
	m.solves++
	copy(x, b) // pretend A = I
	return method.Result{Residual: 0, Converged: true, Sweeps: 1}, nil
}

func TestFallbackAdapterForNonPreparers(t *testing.T) {
	a := sparse.Identity(4)
	pm := &plainMethod{}
	ps, err := method.Prepare(context.Background(), pm, a, method.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Method() != "plain-test" || ps.Kind() != method.SPD || ps.Matrix() != a {
		t.Fatalf("fallback identity mismatch: %s %v", ps.Method(), ps.Kind())
	}
	b := []float64{1, 2, 3, 4}
	x := make([]float64, 4)
	if _, err := ps.Solve(context.Background(), b, x, method.Opts{}); err != nil {
		t.Fatal(err)
	}
	bs := [][]float64{{1, 0, 0, 0}, {0, 1, 0, 0}}
	xs := [][]float64{make([]float64, 4), make([]float64, 4)}
	results, err := ps.SolveBatch(context.Background(), bs, xs, method.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || pm.solves != 3 {
		t.Fatalf("fallback should delegate every solve: %d results, %d solves", len(results), pm.solves)
	}
	if xs[1][1] != 1 {
		t.Fatal("fallback batch did not write the iterate")
	}
}

// TestBuiltinsArePreparers: every registered method participates in the
// two-phase pipeline natively.
func TestBuiltinsArePreparers(t *testing.T) {
	for _, m := range method.All() {
		if _, ok := m.(method.Preparer); !ok {
			t.Fatalf("built-in %q does not implement Preparer", m.Name())
		}
	}
}

// BenchmarkPreparedVsCold quantifies the pipeline's amortization on a
// least-squares workload at a small fixed sweep budget, where CSC
// construction dominates a cold solve: warm (prepared) solves must beat
// cold ones.
func BenchmarkPreparedVsCold(b *testing.B) {
	a := workload.RandomOverdetermined(4000, 1500, 6, 9)
	rhs := workload.RandomRHS(a.Rows, 11)
	opts := method.Opts{Tol: 0, MaxSweeps: 1, CheckEvery: 1, Workers: 1}
	m, err := method.Get("lsqcd")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := make([]float64, a.Cols)
			if _, err := m.Solve(context.Background(), a, rhs, x, opts); err != nil && !errors.Is(err, method.ErrNotConverged) {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		ps, err := method.Prepare(context.Background(), m, a, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := make([]float64, a.Cols)
			if _, err := ps.Solve(context.Background(), rhs, x, opts); err != nil && !errors.Is(err, method.ErrNotConverged) {
				b.Fatal(err)
			}
		}
	})
}
