// Allocation regression tests for the zero-allocation warm path: once a
// system is prepared and the solver pool is warm, a sequential
// fixed-work Solve for the core family must not allocate at all — the
// direction buffer, residual scratch and the solver itself are all
// recycled. Run in CI's plain test step; skipped under -race, where the
// detector's instrumentation changes allocation accounting.
package method_test

import (
	"context"
	"errors"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/race"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func TestWarmPreparedSolveZeroAllocCoreFamily(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under -race")
	}
	a := workload.RandomSPD(300, 6, 1.5, 17)
	b := workload.RandomRHS(300, 18)
	for _, name := range []string{"asyrgs", "asyrgs-weighted", "asyrgs-partitioned", "rgs"} {
		t.Run(name, func(t *testing.T) {
			m, err := method.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			// Workers: 1 pins the sequential path: the asynchronous one
			// spawns goroutines, which allocate by nature (their stacks),
			// and is exercised by the hotpath benchmarks instead.
			opts := method.Opts{Tol: 0, MaxSweeps: 2, CheckEvery: 2, Workers: 1, Seed: 9}
			ps, err := method.Prepare(context.Background(), m, a, opts)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, 300)
			solve := func() {
				if _, err := ps.Solve(context.Background(), b, x, opts); err != nil && !errors.Is(err, method.ErrNotConverged) {
					t.Fatal(err)
				}
			}
			solve() // warm the solver pool and its scratch
			if avg := testing.AllocsPerRun(20, solve); avg != 0 {
				t.Fatalf("warm prepared Solve allocated %.1f times per run, want 0", avg)
			}
		})
	}
}

// TestChunkOptFlowsThroughRegistry checks the -chunk plumbing: an
// explicit claiming granularity must reach the core solver and still
// execute the exact iteration budget.
func TestChunkOptFlowsThroughRegistry(t *testing.T) {
	a := workload.RandomSPD(80, 5, 1.5, 19)
	b := workload.RandomRHS(80, 20)
	m, err := method.Get("asyrgs")
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 32, 10000} {
		x := make([]float64, 80)
		res, err := m.Solve(context.Background(), a, b, x, method.Opts{
			Tol: 0, MaxSweeps: 4, CheckEvery: 4, Workers: 4, Chunk: chunk, Seed: 2,
		})
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if res.Iterations != 4*80 {
			t.Fatalf("chunk=%d: executed %d iterations, want %d", chunk, res.Iterations, 4*80)
		}
	}
	x := make([]float64, 80)
	if _, err := m.Solve(context.Background(), a, b, x, method.Opts{MaxSweeps: 1, Chunk: -3}); err == nil {
		t.Fatal("negative chunk must be rejected")
	}
}
