package method

import (
	"context"
	"errors"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// The full built-in roster every driver may rely on.
var wantBuiltins = []string{
	"asyncjacobi", "asyrgs", "asyrgs-distmem", "asyrgs-nonatomic",
	"asyrgs-partitioned", "asyrgs-weighted", "cg", "fcg", "gs", "jacobi",
	"kaczmarz", "lsqcd", "lsqcd-async", "rgs",
}

func TestBuiltinsRegistered(t *testing.T) {
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, want := range wantBuiltins {
		if !got[want] {
			t.Fatalf("built-in %q missing from registry (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-solver"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register must panic")
		}
	}()
	Register(&funcMethod{name: "cg", kind: SPD,
		prepare: func(ctx context.Context, a *sparse.CSR, opts Opts) (PreparedSystem, error) {
			return nil, nil
		}})
}

func TestByKindPartitionsRegistry(t *testing.T) {
	spd, lsq := ByKind(SPD), ByKind(LeastSquares)
	if len(spd)+len(lsq) != len(All()) {
		t.Fatalf("kinds do not partition the registry: %d + %d != %d", len(spd), len(lsq), len(All()))
	}
	for _, m := range spd {
		if m.Kind() != SPD {
			t.Fatalf("%s misfiled", m.Name())
		}
	}
	if SPD.String() != "spd" || LeastSquares.String() != "least-squares" {
		t.Fatal("Kind.String mismatch")
	}
}
