// Tests for the durable prepared-state codecs: a restored system must be
// behaviorally indistinguishable from a freshly prepared one (bit-identical
// deterministic trajectories, zero instrumented re-preparation on decode),
// and structurally damaged payloads must fail loudly instead of panicking.
package method_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// persistCases enumerates every method expected to support durable
// prepared state, with a matrix of its kind.
func persistCases() []struct {
	methodName string
	a          *sparse.CSR
} {
	spd := workload.RandomSPD(140, 4, 1.5, 11)
	tall := workload.RandomOverdetermined(180, 70, 4, 13)
	return []struct {
		methodName string
		a          *sparse.CSR
	}{
		{"asyrgs", spd},
		{"asyrgs-nonatomic", spd},
		{"asyrgs-partitioned", spd},
		{"asyrgs-weighted", spd},
		{"rgs", spd},
		{"kaczmarz", spd},
		{"lsqcd", tall},
		{"lsqcd-async", tall},
		{"lsqcd-weighted", tall},
	}
}

// TestPersistRoundTripBitIdentical is the restore-equivalence guarantee:
// encode → decode must yield a system whose deterministic solves (one
// worker, fixed seed, fixed work) track the freshly prepared system bit
// for bit, in both precisions. Decode must also perform zero
// instrumented preparation — restoring is the whole point.
func TestPersistRoundTripBitIdentical(t *testing.T) {
	ctx := context.Background()
	for _, tc := range persistCases() {
		for _, prec := range []string{"", "f32"} {
			name := tc.methodName
			if prec != "" {
				name += "/" + prec
			}
			t.Run(name, func(t *testing.T) {
				m, err := method.Get(tc.methodName)
				if err != nil {
					t.Fatal(err)
				}
				pp, ok := method.AsPersistent(m)
				if !ok {
					t.Fatalf("%s does not implement PersistentPreparer", tc.methodName)
				}
				// Tol 0 = fixed work: both systems run the identical sweep
				// budget, so trajectories are comparable step for step.
				opts := method.Opts{Workers: 1, Seed: 42, MaxSweeps: 25, CheckEvery: 5, Precision: prec}
				fresh, err := method.Prepare(ctx, m, tc.a, opts)
				if err != nil {
					t.Fatal(err)
				}
				payload, err := pp.EncodePrepared(fresh)
				if err != nil {
					t.Fatal(err)
				}
				before := snapshotPrep()
				restored, err := pp.DecodePrepared(tc.a, payload, opts)
				if err != nil {
					t.Fatal(err)
				}
				if d := before.delta(snapshotPrep()); d.total() != 0 {
					t.Fatalf("DecodePrepared re-ran instrumented preparation: %+v", d)
				}

				b := workload.RandomRHS(tc.a.Rows, 99)
				x1 := make([]float64, tc.a.Cols)
				x2 := make([]float64, tc.a.Cols)
				r1, err1 := fresh.Solve(ctx, b, x1, opts)
				r2, err2 := restored.Solve(ctx, b, x2, opts)
				for _, err := range []error{err1, err2} {
					if err != nil && !errors.Is(err, method.ErrNotConverged) {
						t.Fatal(err)
					}
				}
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("convergence outcomes diverged: fresh %v, restored %v", err1, err2)
				}
				if r1.Sweeps != r2.Sweeps || r1.Iterations != r2.Iterations {
					t.Fatalf("work diverged: fresh %d sweeps/%d iters, restored %d/%d",
						r1.Sweeps, r1.Iterations, r2.Sweeps, r2.Iterations)
				}
				if math.Float64bits(r1.Residual) != math.Float64bits(r2.Residual) {
					t.Fatalf("residuals diverged: fresh %v, restored %v", r1.Residual, r2.Residual)
				}
				for i := range x1 {
					if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
						t.Fatalf("x[%d] diverged: fresh %v (%#x), restored %v (%#x)",
							i, x1[i], math.Float64bits(x1[i]), x2[i], math.Float64bits(x2[i]))
					}
				}
			})
		}
	}
}

// TestPersistDecodeRejectsDamage feeds every truncation and a byte flip
// in every position to each family decoder: damage must surface as an
// error (or, for value-level flips the structural validators cannot see,
// still decode — but never panic).
func TestPersistDecodeRejectsDamage(t *testing.T) {
	ctx := context.Background()
	for _, tc := range persistCases() {
		t.Run(tc.methodName, func(t *testing.T) {
			m, _ := method.Get(tc.methodName)
			pp, ok := method.AsPersistent(m)
			if !ok {
				t.Fatalf("%s does not implement PersistentPreparer", tc.methodName)
			}
			opts := method.Opts{Workers: 1, Seed: 1}
			ps, err := method.Prepare(ctx, m, tc.a, opts)
			if err != nil {
				t.Fatal(err)
			}
			payload, err := pp.EncodePrepared(ps)
			if err != nil {
				t.Fatal(err)
			}
			// Truncations must always fail: every prefix is structurally
			// incomplete.
			for cut := 0; cut < len(payload); cut++ {
				if _, err := pp.DecodePrepared(tc.a, payload[:cut], opts); err == nil {
					t.Fatalf("truncation to %d bytes decoded without error", cut)
				}
			}
			// Byte flips must never panic; flips in the framing or length
			// prefixes fail, flips in float payload bytes may legally
			// decode to different values (the store's sha256 envelope is
			// what guards value integrity).
			for i := 0; i < len(payload); i++ {
				mut := append([]byte(nil), payload...)
				mut[i] ^= 0xff
				_, _ = pp.DecodePrepared(tc.a, mut, opts)
			}
		})
	}
}

// TestPersistDecodeRejectsWrongFamily routes each family's payload
// through every other family's decoder: the family tag must reject it.
func TestPersistDecodeRejectsWrongFamily(t *testing.T) {
	ctx := context.Background()
	cases := persistCases()
	payloads := make(map[string][]byte)
	for _, tc := range cases {
		m, _ := method.Get(tc.methodName)
		pp, _ := method.AsPersistent(m)
		ps, err := method.Prepare(ctx, m, tc.a, method.Opts{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if payloads[tc.methodName], err = pp.EncodePrepared(ps); err != nil {
			t.Fatal(err)
		}
	}
	family := func(name string) string {
		switch name {
		case "kaczmarz":
			return "kaczmarz"
		case "lsqcd", "lsqcd-async", "lsqcd-weighted":
			return "lsq"
		default:
			return "core"
		}
	}
	for _, dst := range cases {
		for _, src := range cases {
			if family(src.methodName) == family(dst.methodName) {
				continue
			}
			m, _ := method.Get(dst.methodName)
			pp, _ := method.AsPersistent(m)
			if _, err := pp.DecodePrepared(dst.a, payloads[src.methodName], method.Opts{}); err == nil {
				t.Fatalf("%s decoded a %s payload without error", dst.methodName, src.methodName)
			}
		}
	}
}

// TestPersistDecodeRejectsWrongMatrix decodes a payload over a matrix of
// a different shape: the state validators must reject the mismatch.
func TestPersistDecodeRejectsWrongMatrix(t *testing.T) {
	ctx := context.Background()
	for _, tc := range persistCases() {
		t.Run(tc.methodName, func(t *testing.T) {
			m, _ := method.Get(tc.methodName)
			pp, _ := method.AsPersistent(m)
			ps, err := method.Prepare(ctx, m, tc.a, method.Opts{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			payload, err := pp.EncodePrepared(ps)
			if err != nil {
				t.Fatal(err)
			}
			other := workload.RandomSPD(tc.a.Rows+3, 4, 1.5, 29)
			if _, err := pp.DecodePrepared(other, payload, method.Opts{}); err == nil {
				t.Fatalf("%s decoded over a mismatched matrix without error", tc.methodName)
			}
		})
	}
}

// TestAsPersistentCoverage pins down which methods persist: the three
// codec families do, everything else — Krylov methods whose state is the
// matrix itself, stationary methods, and the distributed backend — does
// not.
func TestAsPersistentCoverage(t *testing.T) {
	persistent := map[string]bool{}
	for _, tc := range persistCases() {
		persistent[tc.methodName] = true
	}
	for _, name := range method.Names() {
		m, err := method.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := method.AsPersistent(m); ok != persistent[name] {
			t.Fatalf("AsPersistent(%s) = %v, want %v", name, ok, persistent[name])
		}
	}
}
