// The two-phase Prepare/Solve pipeline. Prepare captures every piece of
// per-matrix solver state — Gram/CSC views, row and column norms,
// diagonal extraction and scaling, sampling CDFs — once, so that the
// returned PreparedSystem can run any number of solves (and batched
// multi-RHS solves) paying only iteration cost. This is the serving shape
// of the paper's amortization argument: setup is O(nnz) or worse, a warm
// solve is O(sweeps·nnz/n per coordinate), and a cached PreparedSystem
// turns repeated requests from O(prepare+solve) into O(solve).
package method

import (
	"context"
	"errors"
	"math"
	"time"

	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// PreparedSystem is per-matrix solver state captured once by Prepare and
// reused across solves. Implementations are immutable after construction
// and safe for concurrent use: every Solve forks its own iteration state
// (direction stream, counters) over the shared prepared data.
//
// Solve reads b, iterates on x in place (x is also the initial guess) and
// honours ctx exactly like Method.Solve. Opts fields that configure the
// iteration (Tol, MaxSweeps, Workers, Beta, Seed, …) are honoured per
// call; fields that would require new per-matrix state are fixed at
// Prepare time.
type PreparedSystem interface {
	// Method returns the registry name that prepared this system.
	Method() string
	// Kind reports the system shape the prepared method accepts.
	Kind() Kind
	// Matrix returns the prepared matrix (shared, do not mutate).
	Matrix() *sparse.CSR
	// Solve runs one right-hand side against the prepared state.
	Solve(ctx context.Context, b, x []float64, opts Opts) (Result, error)
	// SolveBatch runs len(bs) right-hand sides against the prepared
	// state, iterating xs[i] in place for bs[i]. Methods with a native
	// block iteration solve all columns together with batched (SpMM)
	// residual evaluation; the rest solve the columns sequentially over
	// the shared prepared state. One Result per right-hand side, in
	// order. Opts.XStar is ignored (it is a single-system diagnostic).
	SolveBatch(ctx context.Context, bs, xs [][]float64, opts Opts) ([]Result, error)
}

// Preparer is implemented by methods whose setup is separable from
// iteration. All built-in methods implement it; external methods that do
// not are adapted by Prepare with a prep-per-solve fallback.
type Preparer interface {
	Prepare(ctx context.Context, a *sparse.CSR, opts Opts) (PreparedSystem, error)
}

// PrepKeyer is implemented in addition to Preparer by methods whose
// Prepare consumes Opts fields, i.e. whose prepared state differs for
// different options over the same matrix. PrepKey must return a
// canonical string of exactly those fields; caches (the asyrgsd
// prepared-system LRU) append it to their matrix×method key so requests
// with different preparation-relevant options never share an entry.
// Every funcMethod built-in keys on the storage precision; the sharded
// distmem backend additionally keys on its deployment shape.
type PrepKeyer interface {
	PrepKey(opts Opts) string
}

// Prepare readies m for repeated solves against a. Methods implementing
// Preparer capture their per-matrix state once; any other Method is
// wrapped in a fallback adapter that re-runs the method's own setup on
// every solve (correct, but without the amortization).
func Prepare(ctx context.Context, m Method, a *sparse.CSR, opts Opts) (PreparedSystem, error) {
	if p, ok := m.(Preparer); ok {
		return p.Prepare(ctx, a, opts)
	}
	return &fallbackPrepared{preparedBase: base(m.Name(), m.Kind(), a), m: m}, nil
}

// preparedBase carries the identity every PreparedSystem shares.
type preparedBase struct {
	name string
	kind Kind
	a    *sparse.CSR
}

func base(name string, kind Kind, a *sparse.CSR) preparedBase {
	return preparedBase{name: name, kind: kind, a: a}
}

func (p *preparedBase) Method() string      { return p.name }
func (p *preparedBase) Kind() Kind          { return p.kind }
func (p *preparedBase) Matrix() *sparse.CSR { return p.a }

// fallbackPrepared adapts a Method without separable preparation: each
// Solve goes through the method's full path, setup included.
type fallbackPrepared struct {
	preparedBase
	m Method
}

func (p *fallbackPrepared) Solve(ctx context.Context, b, x []float64, opts Opts) (Result, error) {
	return p.m.Solve(ctx, p.a, b, x, opts)
}

func (p *fallbackPrepared) SolveBatch(ctx context.Context, bs, xs [][]float64, opts Opts) ([]Result, error) {
	return solveColumns(ctx, p, bs, xs, opts)
}

// solveColumns is the shared sequential batch path: each right-hand side
// goes through ps.Solve against the same prepared state, so the batch
// pays preparation zero additional times. The first hard error (anything
// but budget exhaustion) aborts the batch; results computed so far are
// returned alongside it. ErrNotConverged is sticky: if any column
// exhausts its budget the batch reports it after finishing the rest.
func solveColumns(ctx context.Context, ps PreparedSystem, bs, xs [][]float64, opts Opts) ([]Result, error) {
	if len(bs) != len(xs) {
		panic("method: SolveBatch needs one initial guess per right-hand side")
	}
	opts.XStar = nil
	results := make([]Result, 0, len(bs))
	var firstErr error
	for i := range bs {
		res, err := ps.Solve(ctx, bs[i], xs[i], opts)
		results = append(results, res)
		if err != nil {
			if errors.Is(err, ErrNotConverged) {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			return results, err
		}
	}
	return results, firstErr
}

// stampBatch sets the shared trailing fields of a batch's results. Batch
// paths never evaluate the A-norm error (Opts.XStar is a single-system
// diagnostic), so it is stamped with its documented NaN sentinel.
func stampBatch(results []Result, name string, start time.Time) {
	wall := time.Since(start)
	for i := range results {
		results[i].Method = name
		results[i].Wall = wall
		results[i].ANormErr = math.NaN()
	}
}
