package method

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/asynclinalg/asyrgs/internal/sparse"
)

var (
	regMu    sync.RWMutex
	registry = map[string]Method{}
)

// Register adds a method under its Name. It panics on an empty name or a
// duplicate registration — both are programming errors, caught at init.
func Register(m Method) {
	name := m.Name()
	if name == "" {
		panic("method: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("method: duplicate registration of " + name)
	}
	registry[name] = m
}

// Get returns the registered method, or ErrUnknownMethod listing the
// known names.
func Get(name string) (Method, error) {
	regMu.RLock()
	m, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %s)", ErrUnknownMethod, name, strings.Join(Names(), ", "))
	}
	return m, nil
}

// Names returns every registered method name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns every registered method, sorted by name.
func All() []Method {
	regMu.RLock()
	defer regMu.RUnlock()
	ms := make([]Method, 0, len(registry))
	for _, m := range registry {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name() < ms[j].Name() })
	return ms
}

// ByKind returns the registered methods of one kind, sorted by name.
func ByKind(k Kind) []Method {
	var ms []Method
	for _, m := range All() {
		if m.Kind() == k {
			ms = append(ms, m)
		}
	}
	return ms
}

// prepareFunc captures one method family's per-matrix setup.
type prepareFunc func(ctx context.Context, a *sparse.CSR, opts Opts) (PreparedSystem, error)

// encodeFunc serializes a family's prepared state for the durable prep
// store; decodeFunc rebuilds it over the caller's matrix (persist.go).
type (
	encodeFunc func(ps PreparedSystem) ([]byte, error)
	decodeFunc func(a *sparse.CSR, payload []byte, opts Opts) (PreparedSystem, error)
)

// funcMethod adapts a prepare hook to the Method interface; every
// built-in is one of these. Solve is the one-shot convenience path —
// prepare plus a single solve — while Prepare exposes the two-phase
// pipeline for callers that amortize setup across many right-hand sides.
// When both persistence hooks are wired the method additionally
// satisfies PersistentPreparer (see AsPersistent).
type funcMethod struct {
	name    string
	kind    Kind
	prepare prepareFunc
	encode  encodeFunc
	decode  decodeFunc
}

// EncodePrepared serializes ps's derived state (PersistentPreparer).
func (m *funcMethod) EncodePrepared(ps PreparedSystem) ([]byte, error) {
	if m.encode == nil {
		return nil, fmt.Errorf("method: %s has no persistent prepared-state codec", m.name)
	}
	return m.encode(ps)
}

// DecodePrepared rebuilds a prepared system over a (PersistentPreparer).
func (m *funcMethod) DecodePrepared(a *sparse.CSR, payload []byte, opts Opts) (PreparedSystem, error) {
	if m.decode == nil {
		return nil, fmt.Errorf("method: %s has no persistent prepared-state codec", m.name)
	}
	return m.decode(a, payload, opts)
}

func (m *funcMethod) Name() string { return m.name }
func (m *funcMethod) Kind() Kind   { return m.kind }

// Prepare captures the method's per-matrix state for repeated solves.
func (m *funcMethod) Prepare(ctx context.Context, a *sparse.CSR, opts Opts) (PreparedSystem, error) {
	return m.prepare(ctx, a, opts)
}

// PrepKey canonicalizes the Opts fields every funcMethod's Prepare
// consumes — today exactly the storage precision — so prepared-system
// caches never share an entry between f64 and f32 preparations of the
// same matrix. Unknown spellings key verbatim; Prepare rejects them.
func (m *funcMethod) PrepKey(opts Opts) string {
	p, err := CanonPrecision(opts.Precision)
	if err != nil {
		p = opts.Precision
	}
	return "p=" + p
}

func (m *funcMethod) Solve(ctx context.Context, a *sparse.CSR, b, x []float64, opts Opts) (Result, error) {
	ps, err := m.Prepare(ctx, a, opts)
	if err != nil {
		return Result{}, err
	}
	res, err := ps.Solve(ctx, b, x, opts)
	res.Method = m.name
	return res, err
}
