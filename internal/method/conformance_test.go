// The registry-driven conformance suite: every registered SPD method
// must solve the same reference systems to tolerance and agree with CG's
// solution; every least-squares method must match the normal-equations
// solution. Registering a new method automatically enrols it here.
package method_test

import (
	"context"
	"math"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/krylov"
	"github.com/asynclinalg/asyrgs/internal/method"
	"github.com/asynclinalg/asyrgs/internal/race"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// sweepBudgets gives slowly-converging methods room; everything else
// uses the default.
var sweepBudgets = map[string]int{
	"kaczmarz": 80000, // rate 1−λmin²/‖A‖_F² per projection is slow on Laplacians
	"jacobi":   8000,
}

func budgetFor(name string) int {
	if b, ok := sweepBudgets[name]; ok {
		return b
	}
	return 5000
}

// skipNonAtomicUnderRace skips the deliberately racy NonAtomic ablation
// when the race detector is active: its plain loads/stores are the
// paper's §9 experiment, not a bug (same policy as internal/core's
// tests).
func skipNonAtomicUnderRace(t *testing.T, name string) {
	t.Helper()
	if race.Enabled && name == "asyrgs-nonatomic" {
		t.Skip("NonAtomic ablation is deliberately racy; skipped under -race")
	}
}

// relDiff returns ‖u−v‖₂/‖v‖₂.
func relDiff(u, v []float64) float64 {
	d := make([]float64, len(u))
	vec.Sub(d, u, v)
	nv := vec.Nrm2(v)
	if nv == 0 {
		nv = 1
	}
	return vec.Nrm2(d) / nv
}

func TestSPDConformance(t *testing.T) {
	const tol = 1e-6
	systems := []struct {
		name string
		a    *sparse.CSR
	}{
		{"laplacian2d", workload.Laplacian2D(8, 8)},
		{"randomspd", workload.RandomSPD(150, 6, 1.5, 7)},
	}
	for _, sys := range systems {
		a := sys.a
		b, xstar := workload.RHSForSolution(a, 11)

		// CG reference solution at a tighter tolerance than the suite's.
		xref := make([]float64, a.Cols)
		if _, err := krylov.CG(a, xref, b, krylov.CGOptions{Tol: 1e-10}); err != nil {
			t.Fatalf("%s: CG reference failed: %v", sys.name, err)
		}

		for _, m := range method.ByKind(method.SPD) {
			m := m
			t.Run(sys.name+"/"+m.Name(), func(t *testing.T) {
				skipNonAtomicUnderRace(t, m.Name())
				x := make([]float64, a.Cols)
				res, err := m.Solve(context.Background(), a, b, x, method.Opts{
					Tol: tol, MaxSweeps: budgetFor(m.Name()),
					Workers: 2, Seed: 3, CheckEvery: 10, XStar: xstar,
				})
				if err != nil {
					t.Fatalf("solve: %v (result %+v)", err, res)
				}
				if !res.Converged || res.Residual > tol {
					t.Fatalf("did not converge: %+v", res)
				}
				if res.Method != m.Name() {
					t.Fatalf("result reports method %q, want %q", res.Method, m.Name())
				}
				if res.Sweeps <= 0 || res.Wall <= 0 {
					t.Fatalf("missing work accounting: %+v", res)
				}
				if math.IsNaN(res.ANormErr) || res.ANormErr > 1e-2 {
					t.Fatalf("A-norm error not reported or too large: %+v", res)
				}
				if d := relDiff(x, xref); d > 1e-3 {
					t.Fatalf("solution disagrees with CG reference by %.3e", d)
				}
			})
		}
	}
}

func TestLeastSquaresConformance(t *testing.T) {
	const tol = 1e-8
	a := workload.RandomOverdetermined(120, 40, 5, 9)
	b := workload.RandomRHS(a.Rows, 13)

	// Normal-equations reference: solve AᵀA·x = Aᵀb with CG.
	ata := sparse.Gram(a)
	atb := make([]float64, a.Cols)
	a.ToCSC().MulTransVec(atb, b)
	xref := make([]float64, a.Cols)
	if _, err := krylov.CG(ata, xref, atb, krylov.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatalf("normal-equations reference failed: %v", err)
	}

	lsqMethods := method.ByKind(method.LeastSquares)
	if len(lsqMethods) == 0 {
		t.Fatal("no least-squares methods registered")
	}
	for _, m := range lsqMethods {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			x := make([]float64, a.Cols)
			res, err := m.Solve(context.Background(), a, b, x, method.Opts{
				Tol: tol, MaxSweeps: 40000, Workers: 2, Seed: 5, CheckEvery: 25,
			})
			if err != nil {
				t.Fatalf("solve: %v (result %+v)", err, res)
			}
			if !res.Converged || res.Residual > tol {
				t.Fatalf("did not converge: %+v", res)
			}
			if d := relDiff(x, xref); d > 1e-4 {
				t.Fatalf("solution disagrees with normal equations by %.3e", d)
			}
		})
	}
}

// TestFixedWorkMode checks the bench drivers' contract: a non-positive
// tolerance runs the exact sweep budget and reports the residual reached.
func TestFixedWorkMode(t *testing.T) {
	a := workload.RandomSPD(100, 5, 1.5, 21)
	b := workload.RandomRHS(100, 22)
	for _, name := range []string{"asyrgs", "rgs", "jacobi"} {
		m, err := method.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 100)
		res, err := m.Solve(context.Background(), a, b, x, method.Opts{
			Tol: 0, MaxSweeps: 6, Workers: 2, CheckEvery: 6,
		})
		if err != nil {
			t.Fatalf("%s: fixed-work mode must not error: %v", name, err)
		}
		if res.Sweeps != 6 {
			t.Fatalf("%s: ran %d sweeps, want the full budget of 6", name, res.Sweeps)
		}
		if res.Converged {
			t.Fatalf("%s: fixed-work mode must not report convergence", name)
		}
		if !(res.Residual > 0 && res.Residual < 1) {
			t.Fatalf("%s: made no progress: %v", name, res.Residual)
		}
	}
}
