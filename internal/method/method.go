// Package method is the unified solver registry: every solver family in
// the repository — AsyRGS and its ablation variants, synchronous RGS,
// (flexible) conjugate gradients, the classical stationary and chaotic
// baselines, randomized Kaczmarz, and the §8 least-squares coordinate
// descent — is wrapped behind one context-cancellable Method interface
// with normalized options and results.
//
// The registry removes the per-method switch statements that used to be
// duplicated across cmd/asysolve, cmd/asybench and internal/bench: a new
// solver or scenario lands as one Register call and every driver, the
// asyrgsd serving daemon, and the cross-method conformance suite pick it
// up automatically.
package method

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"github.com/asynclinalg/asyrgs/internal/sparse"
)

// Errors returned by registry lookups and solves.
var (
	// ErrUnknownMethod is returned by Get for unregistered names.
	ErrUnknownMethod = errors.New("method: unknown method")
	// ErrNotConverged is returned when a sweep budget is exhausted before
	// the requested tolerance; the iterate still holds the best
	// approximation computed.
	ErrNotConverged = errors.New("method: did not reach the requested tolerance")
)

// Kind classifies the system shapes a method accepts.
type Kind int

const (
	// SPD methods solve square symmetric positive definite systems
	// A·x = b and report the relative residual ‖b−Ax‖₂/‖b‖₂.
	SPD Kind = iota
	// LeastSquares methods minimise ‖A·x−b‖₂ for tall systems and report
	// the relative normal-equation residual ‖Aᵀ(b−Ax)‖₂/‖Aᵀb‖₂.
	LeastSquares
)

// String names the kind for tables and logs.
func (k Kind) String() string {
	if k == LeastSquares {
		return "least-squares"
	}
	return "spd"
}

// Opts are the normalized solve options shared by every registered
// method. The zero value is usable: methods fall back to their own
// defaults for every field.
type Opts struct {
	// Tol is the relative convergence tolerance (residual for SPD
	// methods, normal-equation residual for least-squares methods).
	// Zero or negative runs the full sweep budget — the fixed-work mode
	// the bench ablation tables use.
	Tol float64

	// MaxSweeps caps the work: one sweep is n coordinate updates (or one
	// Krylov iteration). Zero means 1000.
	MaxSweeps int

	// Workers is the goroutine count for parallel methods; zero means
	// GOMAXPROCS. Inherently sequential methods (rgs, gs, lsqcd) ignore
	// it.
	Workers int

	// Beta is the relaxation step size where a method has one; zero
	// means the method's default.
	Beta float64

	// Seed keys the direction streams of the randomized methods.
	Seed uint64

	// Inner is the number of preconditioner sweeps per FCG application;
	// zero means 2 (the paper's fastest Table 1 configuration).
	Inner int

	// QueueCap is the per-peer message-queue budget of the sharded
	// distributed-memory backend (asyrgs-distmem): each rank's inbox holds
	// QueueCap·(workers−1)+1 updates, the physical realisation of the
	// delay bound τ. Zero means 4. Shared-memory methods ignore it.
	QueueCap int

	// Chunk is the iteration-claiming granularity of the asynchronous
	// coordinate methods: a worker grabs Chunk global iteration indices
	// from the shared counter per CAS and generates that block's random
	// directions into a local buffer in one pass. Zero auto-sizes from
	// the budget and worker count. The direction at index j is a pure
	// function of (seed, j), so Chunk trades contention against tail
	// imbalance without changing the direction multiset. Methods without
	// a claiming counter ignore it.
	Chunk int

	// CheckEvery is the number of sweeps between residual evaluations and
	// context-cancellation checks; zero means 1 (16 for the stationary
	// methods, whose per-chunk setup cost is higher and which stop early
	// within a chunk). Raising it amortizes the Θ(nnz) residual over
	// more sweeps at the cost of coarser stopping.
	CheckEvery int

	// Precision selects the matrix value-storage precision and is consumed
	// at Prepare time (it is part of the prepared state, so it appears in
	// PrepKey). "" or "f64" is the native float64 path; "f32" stores the
	// matrix values as float32 while accumulating every dot product in
	// float64, halving value-array bandwidth at the cost of iterating on
	// the exactly-representable rounded system fl32(A)·x = b — the
	// achievable residual against the original A floors around √nnz·2⁻²⁴.
	// Supported by the coordinate families (asyrgs*, rgs, kaczmarz,
	// lsqcd*); the Krylov, stationary and distmem methods reject it.
	Precision string

	// XStar, when non-nil, is the known solution; methods then fill
	// Result.ANormErr with the relative A-norm error (SPD kinds only).
	XStar []float64

	// MeasureDelay enables asynchrony bookkeeping (Result.ObservedTau)
	// on the methods that support it. Off by default: the per-iteration
	// instrumentation would skew the timing columns of the benchmark
	// tables.
	MeasureDelay bool

	// Throttle, when non-nil, is invoked by the asynchronous methods
	// before every iteration with the worker index and iteration number —
	// the fault-injection hook of the bench experiments. Other methods
	// ignore it. Must be safe for concurrent use.
	Throttle func(worker int, iteration uint64)
}

// Result is the normalized outcome every method reports.
type Result struct {
	// Method is the registry name that produced this result.
	Method string
	// Residual is the final relative residual (see Kind for the norm).
	Residual float64
	// Converged reports whether Tol was reached within the budget.
	Converged bool
	// Sweeps is the number of sweeps (or Krylov iterations) performed.
	Sweeps int
	// Iterations is the total single-coordinate update count where the
	// method is coordinate-wise; for Krylov methods it equals Sweeps.
	Iterations uint64
	// Wall is the solve's wall-clock time.
	Wall time.Duration
	// ObservedTau is the measured asynchrony bound τ̂ (0 for synchronous
	// methods).
	ObservedTau int
	// Messages counts updates shipped across the emulated network by the
	// sharded distributed-memory backend; zero for shared-memory methods.
	Messages uint64
	// MaxQueue is the largest message backlog the sharded backend observed
	// on any rank's inbox at a send; zero for shared-memory methods.
	MaxQueue int
	// ANormErr is the relative A-norm error ‖x−x*‖_A/‖x*‖_A when
	// Opts.XStar was supplied; NaN otherwise.
	ANormErr float64
}

// Method is one solver family behind the uniform entry point. Solve reads
// the system (a, b), iterates on x in place (x is also the initial
// guess), and honours ctx: a cancelled context stops the solve promptly
// and returns an error wrapping the context's error. On budget exhaustion
// Solve returns the Result plus ErrNotConverged.
type Method interface {
	Name() string
	Kind() Kind
	Solve(ctx context.Context, a *sparse.CSR, b, x []float64, opts Opts) (Result, error)
}

// withDefaults resolves zero option fields to the shared defaults.
func (o Opts) withDefaults() Opts {
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 1000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Inner <= 0 {
		o.Inner = 2
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 1
	}
	return o
}

// CanonPrecision resolves an Opts.Precision spelling to its canonical
// form ("f64" or "f32"), erroring on anything else. Drivers and the
// serving layer validate through it so an unknown precision fails the
// request up front instead of surfacing as a prepare-time error.
func CanonPrecision(p string) (string, error) {
	switch p {
	case "", "f64", "float64":
		return "f64", nil
	case "f32", "float32":
		return "f32", nil
	}
	return "", fmt.Errorf("method: unknown precision %q (want \"f64\" or \"f32\")", p)
}

// converged reports whether a residual meets the tolerance; a
// non-positive tolerance never converges (fixed-work mode).
func (o Opts) converged(res float64) bool {
	return o.Tol > 0 && res <= o.Tol
}

// finish stamps the shared trailing fields of a result: wall time, the
// A-norm error when the true solution is known, and the
// budget-exhaustion error.
func finish(res *Result, a *sparse.CSR, x []float64, opts Opts, start time.Time, kind Kind) error {
	res.Wall = time.Since(start)
	res.ANormErr = math.NaN()
	if kind == SPD && opts.XStar != nil && a.Rows == a.Cols {
		if nx := a.ANorm(opts.XStar); nx > 0 {
			res.ANormErr = a.ANormErr(x, opts.XStar) / nx
		}
	}
	if !res.Converged && opts.Tol > 0 {
		return ErrNotConverged
	}
	return nil
}

// ctxErr wraps a context error so callers can errors.Is it against
// context.Canceled / DeadlineExceeded while seeing which method stopped.
func ctxErr(name string, ctx context.Context) error {
	return &canceledError{name: name, err: ctx.Err()}
}

type canceledError struct {
	name string
	err  error
}

func (e *canceledError) Error() string { return "method " + e.name + ": " + e.err.Error() }
func (e *canceledError) Unwrap() error { return e.err }
