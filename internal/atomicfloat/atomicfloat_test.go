package atomicfloat

import (
	"math"
	"sync"
	"testing"
)

func TestLoadStore(t *testing.T) {
	var x float64
	Store(&x, 3.25)
	if got := Load(&x); got != 3.25 {
		t.Fatalf("Load = %v, want 3.25", got)
	}
}

func TestAddReturnsNewValue(t *testing.T) {
	x := 1.5
	if got := Add(&x, 2.0); got != 3.5 {
		t.Fatalf("Add returned %v, want 3.5", got)
	}
	if x != 3.5 {
		t.Fatalf("x = %v, want 3.5", x)
	}
}

func TestSwap(t *testing.T) {
	x := 1.0
	if old := Swap(&x, 2.0); old != 1.0 {
		t.Fatalf("Swap returned %v, want 1", old)
	}
	if x != 2.0 {
		t.Fatalf("x = %v after Swap", x)
	}
}

func TestCompareAndSwap(t *testing.T) {
	x := 5.0
	if !CompareAndSwap(&x, 5.0, 6.0) {
		t.Fatal("CAS with matching old should succeed")
	}
	if CompareAndSwap(&x, 5.0, 7.0) {
		t.Fatal("CAS with stale old should fail")
	}
	if x != 6.0 {
		t.Fatalf("x = %v, want 6", x)
	}
}

func TestCASBitwiseSemantics(t *testing.T) {
	// CAS compares bit patterns: -0.0 and +0.0 differ bitwise even though
	// they compare equal as floats. The solver never relies on this, but
	// the contract should be pinned.
	x := math.Copysign(0, -1)
	if CompareAndSwap(&x, 0, 1) {
		t.Fatal("CAS(+0) must not match stored -0 (bitwise comparison)")
	}
	if !CompareAndSwap(&x, math.Copysign(0, -1), 1) {
		t.Fatal("CAS(-0) should match stored -0")
	}
}

func TestConcurrentAddExact(t *testing.T) {
	// Integer-valued increments are exact in float64 up to 2^53, so the
	// concurrent sum must match exactly — this is the property that makes
	// the AsyRGS atomic update well-defined.
	var x float64
	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				Add(&x, 1)
			}
		}()
	}
	wg.Wait()
	if x != workers*perWorker {
		t.Fatalf("concurrent Add lost updates: got %v, want %d", x, workers*perWorker)
	}
}

func TestConcurrentAddMixedSigns(t *testing.T) {
	var x float64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		sign := float64(1)
		if w%2 == 1 {
			sign = -1
		}
		wg.Add(1)
		go func(s float64) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				Add(&x, s)
			}
		}(sign)
	}
	wg.Wait()
	if x != 0 {
		t.Fatalf("balanced adds should cancel exactly, got %v", x)
	}
}

func TestConcurrentSliceElements(t *testing.T) {
	// Distinct slice elements must be independently atomic.
	xs := make([]float64, 16)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				Add(&xs[i], 0.5)
			}
		}(w)
	}
	wg.Wait()
	for i, v := range xs {
		if v != 500 {
			t.Fatalf("xs[%d] = %v, want 500", i, v)
		}
	}
}

func BenchmarkAtomicAdd(b *testing.B) {
	var x float64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			Add(&x, 1)
		}
	})
}

func BenchmarkPlainAdd(b *testing.B) {
	// The non-atomic baseline the paper's ablation compares against.
	var x float64
	for i := 0; i < b.N; i++ {
		x += 1
	}
	_ = x
}
