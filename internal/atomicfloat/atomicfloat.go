// Package atomicfloat provides lock-free atomic operations on float64
// values stored in plain []float64 slices.
//
// The AsyRGS update (x)_r ← (x)_r + βγ must be atomic (Assumption A-1 of
// the paper). Modern CPUs expose this as a compare-and-exchange loop on the
// 64-bit word holding the float; Go's sync/atomic gives us exactly that via
// uint64 CAS on the bit pattern. The functions here operate on *float64 and
// rely on the fact that float64 and uint64 share size and alignment, so a
// []float64 can be updated concurrently without auxiliary storage: the same
// slice can be read with plain loads by non-atomic variants (the paper's
// "non atomic" ablation) or atomically by these helpers.
package atomicfloat

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// word reinterprets a *float64 as a *uint64 for atomic access. float64 and
// uint64 have identical size and alignment on all Go platforms.
func word(addr *float64) *uint64 {
	return (*uint64)(unsafe.Pointer(addr))
}

// Load atomically loads *addr.
func Load(addr *float64) float64 {
	return math.Float64frombits(atomic.LoadUint64(word(addr)))
}

// Store atomically stores v into *addr.
func Store(addr *float64, v float64) {
	atomic.StoreUint64(word(addr), math.Float64bits(v))
}

// Add atomically performs *addr += delta and returns the new value. It
// implements the compare-and-exchange retry loop that gives AsyRGS its
// atomic single-coordinate update.
func Add(addr *float64, delta float64) float64 {
	w := word(addr)
	for {
		old := atomic.LoadUint64(w)
		next := math.Float64frombits(old) + delta
		if atomic.CompareAndSwapUint64(w, old, math.Float64bits(next)) {
			return next
		}
	}
}

// CompareAndSwap atomically replaces *addr with next if it currently holds
// old (bitwise comparison). It returns whether the swap happened.
func CompareAndSwap(addr *float64, old, next float64) bool {
	return atomic.CompareAndSwapUint64(word(addr), math.Float64bits(old), math.Float64bits(next))
}

// Swap atomically stores v and returns the previous value.
func Swap(addr *float64, v float64) float64 {
	return math.Float64frombits(atomic.SwapUint64(word(addr), math.Float64bits(v)))
}
