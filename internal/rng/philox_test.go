package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPhiloxKnownAnswer pins the generator to the Random123 reference
// known-answer vectors for philox4x32-10.
func TestPhiloxKnownAnswer(t *testing.T) {
	cases := []struct {
		ctr  Block4x32
		key  [2]uint32
		want Block4x32
	}{
		{
			ctr:  Block4x32{0, 0, 0, 0},
			key:  [2]uint32{0, 0},
			want: Block4x32{0x6627e8d5, 0xe169c58d, 0xbc57ac4c, 0x9b00dbd8},
		},
		{
			ctr:  Block4x32{0xffffffff, 0xffffffff, 0xffffffff, 0xffffffff},
			key:  [2]uint32{0xffffffff, 0xffffffff},
			want: Block4x32{0x408f276d, 0x41c83b0e, 0xa20bc7c6, 0x6d5451fd},
		},
		{
			// The "pi" test vector from the Random123 kat_vectors file.
			ctr:  Block4x32{0x243f6a88, 0x85a308d3, 0x13198a2e, 0x03707344},
			key:  [2]uint32{0xa4093822, 0x299f31d0},
			want: Block4x32{0xd16cfe09, 0x94fdcceb, 0x5001e420, 0x24126ea1},
		},
	}
	for i, c := range cases {
		if got := Philox4x32(c.ctr, c.key); got != c.want {
			t.Errorf("case %d: Philox4x32 = %08x, want %08x", i, got, c.want)
		}
	}
}

func TestStreamDeterministicRandomAccess(t *testing.T) {
	s := NewStream(12345)
	// Random access in any order must agree with itself.
	a := s.Uint64At(7)
	b := s.Uint64At(3)
	if s.Uint64At(7) != a || s.Uint64At(3) != b {
		t.Fatal("Stream.Uint64At must be a pure function of the index")
	}
	if a == b {
		t.Fatal("distinct indices should (overwhelmingly) give distinct values")
	}
	// Two streams with different seeds must differ.
	if NewStream(1).Uint64At(0) == NewStream(2).Uint64At(0) {
		t.Fatal("different seeds should give different streams")
	}
}

func TestStreamConcurrentUse(t *testing.T) {
	s := NewStream(99)
	want := make([]uint64, 64)
	for i := range want {
		want[i] = s.Uint64At(uint64(i))
	}
	done := make(chan bool, 8)
	for w := 0; w < 8; w++ {
		go func() {
			ok := true
			for i := range want {
				if s.Uint64At(uint64(i)) != want[i] {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for w := 0; w < 8; w++ {
		if !<-done {
			t.Fatal("concurrent reads disagreed — Stream must be immutable")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(7)
	for i := uint64(0); i < 10_000; i++ {
		v := s.Float64At(i)
		if v < 0 || v >= 1 {
			t.Fatalf("Float64At(%d) = %v outside [0,1)", i, v)
		}
	}
}

func TestIntnAtBounds(t *testing.T) {
	s := NewStream(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := uint64(0); i < 2000; i++ {
			v := s.IntnAt(i, n)
			if v < 0 || v >= n {
				t.Fatalf("IntnAt(%d,%d) = %d out of range", i, n, v)
			}
		}
	}
}

func TestIntnAtPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntnAt(0) should panic")
		}
	}()
	NewStream(0).IntnAt(0, 0)
}

func TestIntnAtUniformity(t *testing.T) {
	// Chi-square sanity check on 16 buckets: with 160k draws the statistic
	// has 15 degrees of freedom; 60 is far beyond any plausible tail, so
	// the test is robust while still catching gross bias.
	const buckets = 16
	const draws = 160_000
	s := NewStream(20240601)
	counts := make([]float64, buckets)
	for i := uint64(0); i < draws; i++ {
		counts[s.IntnAt(i, buckets)]++
	}
	expected := float64(draws) / buckets
	var chi2 float64
	for _, c := range counts {
		d := c - expected
		chi2 += d * d / expected
	}
	if chi2 > 60 {
		t.Fatalf("IntnAt looks biased: chi2 = %v over %d buckets", chi2, buckets)
	}
}

func TestFloat64Moments(t *testing.T) {
	s := NewStream(5150)
	const n = 200_000
	var sum, sumsq float64
	for i := uint64(0); i < n; i++ {
		v := s.Float64At(i)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ≈ 0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Fatalf("variance = %v, want ≈ 1/12", variance)
	}
}

func TestSequentialMatchesStream(t *testing.T) {
	g := NewSequential(31337)
	s := NewStream(31337)
	for i := uint64(0); i < 100; i++ {
		a, b := s.Uint64PairAt(i)
		if got := g.Uint64(); got != a {
			t.Fatalf("block %d first half: got %x want %x", i, got, a)
		}
		if got := g.Uint64(); got != b {
			t.Fatalf("block %d second half: got %x want %x", i, got, b)
		}
	}
}

func TestSequentialIntnBounds(t *testing.T) {
	g := NewSequential(1)
	for i := 0; i < 10_000; i++ {
		if v := g.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn = %d", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	g := NewSequential(777)
	const n = 200_000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := g.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ≈ 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewSequential(4)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := g.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size%50) + 1
		a := make([]int, n)
		for i := range a {
			a[i] = i
		}
		g := NewSequential(seed)
		g.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
		seen := make([]bool, n)
		for _, v := range a {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamIndependenceAcrossSeeds(t *testing.T) {
	// Correlation between two differently keyed streams should be tiny.
	s1, s2 := NewStream(1), NewStream(2)
	const n = 100_000
	var dot float64
	for i := uint64(0); i < n; i++ {
		dot += (s1.Float64At(i) - 0.5) * (s2.Float64At(i) - 0.5)
	}
	corr := dot / n * 12 // normalize by variance 1/12
	if math.Abs(corr) > 0.02 {
		t.Fatalf("streams with different seeds look correlated: %v", corr)
	}
}

func BenchmarkPhiloxBlock(b *testing.B) {
	var acc uint32
	for i := 0; i < b.N; i++ {
		out := Philox4x32(Block4x32{uint32(i), 0, 0, 0}, [2]uint32{1, 2})
		acc ^= out[0]
	}
	_ = acc
}

func BenchmarkStreamIntnAt(b *testing.B) {
	s := NewStream(1)
	var acc int
	for i := 0; i < b.N; i++ {
		acc ^= s.IntnAt(uint64(i), 120147)
	}
	_ = acc
}
