// Package rng implements the Philox4x32-10 counter-based pseudo-random
// number generator of Salmon, Moraes, Dror and Shaw ("Parallel random
// numbers: as easy as 1, 2, 3", SC'11) — the Random123 family.
//
// The paper's experiments fix the direction sequence d₀,d₁,… across thread
// counts by using Random123's random-access property: the j-th random value
// is a pure function of (key, j) and can be computed by any thread without
// coordination or a shared stream. This package reproduces that capability
// with the Philox4x32-10 member of the family: a 128-bit counter, a 64-bit
// key, ten rounds of multiply-and-xor mixing, and 128 bits of output per
// block.
package rng

import (
	"math"
	"math/bits"
)

// Philox4x32-10 round constants, from the Random123 reference
// implementation.
const (
	philoxM0 = 0xD2511F53 // multiplier for lane 0
	philoxM1 = 0xCD9E8D57 // multiplier for lane 2
	philoxW0 = 0x9E3779B9 // golden-ratio key schedule increment
	philoxW1 = 0xBB67AE85 // sqrt(3)-1 key schedule increment
)

// Block4x32 is one 128-bit Philox output block.
type Block4x32 [4]uint32

// Philox4x32 computes ten rounds of Philox4x32 on counter ctr with key key
// and returns the 128-bit output block. It is a pure function: identical
// inputs produce identical outputs on every platform.
func Philox4x32(ctr Block4x32, key [2]uint32) Block4x32 {
	c0, c1, c2, c3 := ctr[0], ctr[1], ctr[2], ctr[3]
	k0, k1 := key[0], key[1]
	for round := 0; round < 10; round++ {
		hi0, lo0 := mulHiLo32(philoxM0, c0)
		hi1, lo1 := mulHiLo32(philoxM1, c2)
		c0 = hi1 ^ c1 ^ k0
		c1 = lo1
		c2 = hi0 ^ c3 ^ k1
		c3 = lo0
		k0 += philoxW0
		k1 += philoxW1
	}
	return Block4x32{c0, c1, c2, c3}
}

// mulHiLo32 returns the high and low 32-bit halves of a×b.
func mulHiLo32(a, b uint32) (hi, lo uint32) {
	p := uint64(a) * uint64(b)
	return uint32(p >> 32), uint32(p)
}

// Stream is a random-access pseudo-random stream: element i is a pure
// function of (seed, i). A Stream is immutable and safe for concurrent use
// by any number of goroutines, which is exactly what the asynchronous
// solver needs — worker p computing global iteration j evaluates At(j)
// without touching shared state.
type Stream struct {
	key [2]uint32
}

// NewStream returns the random-access stream identified by seed.
func NewStream(seed uint64) Stream {
	return Stream{key: [2]uint32{uint32(seed), uint32(seed >> 32)}}
}

// BlockAt returns the 128-bit block at index i.
func (s Stream) BlockAt(i uint64) Block4x32 {
	return Philox4x32(Block4x32{uint32(i), uint32(i >> 32), 0, 0}, s.key)
}

// Uint64At returns the i-th 64-bit output of the stream.
func (s Stream) Uint64At(i uint64) uint64 {
	b := s.BlockAt(i)
	return uint64(b[0]) | uint64(b[1])<<32
}

// Uint64PairAt returns two independent 64-bit outputs for index i, using
// all 128 bits of the underlying block.
func (s Stream) Uint64PairAt(i uint64) (uint64, uint64) {
	b := s.BlockAt(i)
	return uint64(b[0]) | uint64(b[1])<<32, uint64(b[2]) | uint64(b[3])<<32
}

// Float64At returns the i-th output as a float64 uniform on [0,1). It uses
// the top 53 bits so every representable value is equally likely.
func (s Stream) Float64At(i uint64) float64 {
	return float64(s.Uint64At(i)>>11) / (1 << 53)
}

// IntnAt returns the i-th output reduced to [0,n) using the unbiased-to-
// 2⁻⁶⁴ multiply-shift reduction (Lemire). It panics if n <= 0.
func (s Stream) IntnAt(i uint64, n int) int {
	if n <= 0 {
		panic("rng: IntnAt with non-positive n")
	}
	hi, _ := bits.Mul64(s.Uint64At(i), uint64(n))
	return int(hi)
}

// Sequential is a conventional stateful generator layered on a Stream. It
// is not safe for concurrent use; create one per goroutine (cheap) or use
// the random-access Stream API directly.
type Sequential struct {
	stream Stream
	next   uint64
	// buffered second half of the current block
	buf    uint64
	hasBuf bool
	// cached second normal from Box–Muller
	norm    float64
	hasNorm bool
}

// NewSequential returns a stateful generator over the stream with the given
// seed, starting at index 0.
func NewSequential(seed uint64) *Sequential {
	return &Sequential{stream: NewStream(seed)}
}

// Uint64 returns the next 64-bit value.
func (g *Sequential) Uint64() uint64 {
	if g.hasBuf {
		g.hasBuf = false
		return g.buf
	}
	a, b := g.stream.Uint64PairAt(g.next)
	g.next++
	g.buf = b
	g.hasBuf = true
	return a
}

// Float64 returns the next value uniform on [0,1).
func (g *Sequential) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Intn returns the next value reduced to [0,n).
func (g *Sequential) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	hi, _ := bits.Mul64(g.Uint64(), uint64(n))
	return int(hi)
}

// NormFloat64 returns a standard normal variate via the Box–Muller
// transform. Two uniforms are consumed per pair of normals; the spare is
// cached.
func (g *Sequential) NormFloat64() float64 {
	if g.hasNorm {
		g.hasNorm = false
		return g.norm
	}
	// Box–Muller: u in (0,1], v in [0,1).
	u := 1 - g.Float64()
	v := g.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	s, c := math.Sincos(2 * math.Pi * v)
	g.norm = r * s
	g.hasNorm = true
	return r * c
}

// Perm returns a pseudo-random permutation of [0,n) via Fisher–Yates.
func (g *Sequential) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (g *Sequential) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		swap(i, j)
	}
}
