package spectral

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

// diagMatrix builds diag(values) in CSR.
func diagMatrix(values []float64) *sparse.CSR {
	n := len(values)
	coo := sparse.NewCOO(n, n)
	for i, v := range values {
		coo.Add(i, i, v)
	}
	return coo.ToCSR()
}

func TestPowerIterationDiagonal(t *testing.T) {
	a := diagMatrix([]float64{1, 3, 7, 2, 7.5, 4})
	lambda, iters := PowerIteration(a, 1e-12, 10_000, 1)
	if math.Abs(lambda-7.5) > 1e-8 {
		t.Fatalf("PowerIteration = %v after %d iters, want 7.5", lambda, iters)
	}
}

func TestGershgorinContainsSpectrum(t *testing.T) {
	a := diagMatrix([]float64{2, 5, -1})
	lo, hi := Gershgorin(a)
	if lo > -1 || hi < 5 {
		t.Fatalf("Gershgorin [%v,%v] must contain [-1,5]", lo, hi)
	}
}

// laplacian1DEigen returns the exact eigenvalues of the 1D Dirichlet
// Laplacian tridiag(-1,2,-1) of size n: 2−2cos(kπ/(n+1)).
func laplacian1DEigen(n int) (min, max float64) {
	min = 2 - 2*math.Cos(math.Pi/float64(n+1))
	max = 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	return
}

func laplacian1D(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < n-1 {
			coo.Add(i, i+1, -1)
		}
	}
	return coo.ToCSR()
}

func TestLanczosOn1DLaplacian(t *testing.T) {
	n := 64
	a := laplacian1D(n)
	wantMin, wantMax := laplacian1DEigen(n)
	est := Lanczos(a, n, 3) // full Lanczos with reorthogonalization: exact
	if math.Abs(est.LambdaMax-wantMax) > 1e-6*wantMax {
		t.Fatalf("λmax = %v, want %v", est.LambdaMax, wantMax)
	}
	if math.Abs(est.LambdaMin-wantMin) > 1e-6 {
		t.Fatalf("λmin = %v, want %v", est.LambdaMin, wantMin)
	}
	wantKappa := wantMax / wantMin
	if math.Abs(est.Cond-wantKappa) > 1e-4*wantKappa {
		t.Fatalf("κ = %v, want %v", est.Cond, wantKappa)
	}
}

func TestLanczosOn2DLaplacian(t *testing.T) {
	// Exact eigenvalues of the 2D 5-point Laplacian on an m×m grid:
	// 4 − 2cos(iπ/(m+1)) − 2cos(jπ/(m+1)).
	m := 10
	a := workload.Laplacian2D(m, m)
	c := func(k int) float64 { return 2 * math.Cos(float64(k)*math.Pi/float64(m+1)) }
	wantMin := 4 - c(1) - c(1)
	wantMax := 4 - c(m) - c(m)
	est := Lanczos(a, m*m, 5)
	if math.Abs(est.LambdaMin-wantMin) > 1e-6 {
		t.Fatalf("λmin = %v, want %v", est.LambdaMin, wantMin)
	}
	if math.Abs(est.LambdaMax-wantMax) > 1e-6 {
		t.Fatalf("λmax = %v, want %v", est.LambdaMax, wantMax)
	}
}

func TestLanczosPartialBracketsSpectrum(t *testing.T) {
	// A truncated Lanczos run must bracket the spectrum from inside:
	// λmin ≤ ritzMin and ritzMax ≤ λmax (up to rounding).
	n := 100
	a := laplacian1D(n)
	wantMin, wantMax := laplacian1DEigen(n)
	est := Lanczos(a, 30, 7)
	if est.LambdaMin < wantMin-1e-9 {
		t.Fatalf("ritz min %v below λmin %v", est.LambdaMin, wantMin)
	}
	if est.LambdaMax > wantMax+1e-9 {
		t.Fatalf("ritz max %v above λmax %v", est.LambdaMax, wantMax)
	}
}

func TestEstimateSPD(t *testing.T) {
	a := workload.Laplacian2D(8, 8)
	est := EstimateSPD(a, 64, 11)
	if est.LambdaMin <= 0 || est.LambdaMax <= est.LambdaMin {
		t.Fatalf("bad estimate %+v", est)
	}
	lo, hi := Gershgorin(a)
	if est.LambdaMax > hi+1e-9 || est.LambdaMin < lo-1e-9 {
		t.Fatalf("estimate %+v escapes Gershgorin [%v,%v]", est, lo, hi)
	}
}

func TestSturmCountMonotonic(t *testing.T) {
	alpha := []float64{2, 2, 2, 2}
	beta := []float64{-1, -1, -1}
	prev := 0
	for x := -1.0; x < 5.0; x += 0.1 {
		c := sturmCount(alpha, beta, x)
		if c < prev {
			t.Fatalf("Sturm count must be nondecreasing in x; dropped to %d at %v", c, x)
		}
		prev = c
	}
	if sturmCount(alpha, beta, -1) != 0 {
		t.Fatal("no eigenvalue below -1")
	}
	if sturmCount(alpha, beta, 5) != 4 {
		t.Fatal("all 4 eigenvalues below 5")
	}
}

func TestTridiagExtremesKnown(t *testing.T) {
	// tridiag(-1,2,-1) of size 4: eigenvalues 2−2cos(kπ/5).
	alpha := []float64{2, 2, 2, 2}
	beta := []float64{-1, -1, -1}
	lo, hi := tridiagExtremes(alpha, beta)
	wantLo := 2 - 2*math.Cos(math.Pi/5)
	wantHi := 2 - 2*math.Cos(4*math.Pi/5)
	if math.Abs(lo-wantLo) > 1e-10 || math.Abs(hi-wantHi) > 1e-10 {
		t.Fatalf("extremes [%v,%v], want [%v,%v]", lo, hi, wantLo, wantHi)
	}
}

func TestTridiagExtremesDegenerate(t *testing.T) {
	if lo, hi := tridiagExtremes(nil, nil); lo != 0 || hi != 0 {
		t.Fatal("empty tridiag should be (0,0)")
	}
	if lo, hi := tridiagExtremes([]float64{3}, nil); lo != 3 || hi != 3 {
		t.Fatal("1x1 tridiag should be (3,3)")
	}
}

func TestLanczosWithinGershgorinProperty(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size%20) + 5
		a := workload.RandomSPD(n, 4, 1.6, seed)
		est := Lanczos(a, n, seed)
		lo, hi := Gershgorin(a)
		return est.LambdaMin >= lo-1e-8 && est.LambdaMax <= hi+1e-8 && est.LambdaMin > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInversePowerIteration1DLaplacian(t *testing.T) {
	n := 50
	a := laplacian1D(n)
	wantMin, _ := laplacian1DEigen(n)
	got, iters := InversePowerIteration(a, 1e-10, 1e-9, 200, 9)
	if math.Abs(got-wantMin) > 1e-6*wantMin {
		t.Fatalf("λmin = %v after %d iters, want %v", got, iters, wantMin)
	}
}

func TestCondEstMatchesLanczos(t *testing.T) {
	a := workload.Laplacian2D(8, 8)
	ce := CondEst(a, 11)
	lz := Lanczos(a, a.Rows, 12)
	if math.Abs(ce.Cond-lz.Cond) > 0.01*lz.Cond {
		t.Fatalf("CondEst κ=%v vs Lanczos κ=%v", ce.Cond, lz.Cond)
	}
	if ce.LambdaMin < lz.LambdaMin-1e-9 {
		t.Fatalf("inverse power λmin %v below true %v — must converge from above", ce.LambdaMin, lz.LambdaMin)
	}
}
