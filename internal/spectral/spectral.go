// Package spectral estimates the extreme eigenvalues and condition number
// of large sparse symmetric matrices. The paper's convergence bounds are
// expressed in λmax, λmin and κ = λmax/λmin; its experiments used an
// iterative condition-number estimator (Avron, Druinsky & Toledo).
// This package provides the equivalent machinery: power iteration for
// λmax, a Lanczos process whose tridiagonal Ritz values bracket the
// spectrum (extracted by bisection on Sturm sequences), and Gershgorin
// interval bounds as a cheap sanity check.
package spectral

import (
	"math"

	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// PowerIteration estimates the dominant eigenvalue |λ| of the symmetric
// matrix A together with the number of iterations performed. It stops when
// two successive Rayleigh quotients agree to relative tol or after maxIter
// steps.
func PowerIteration(a *sparse.CSR, tol float64, maxIter int, seed uint64) (lambda float64, iters int) {
	n := a.Rows
	g := rng.NewSequential(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = g.Float64() - 0.5
	}
	if nrm := vec.Nrm2(x); nrm > 0 {
		vec.Scal(1/nrm, x)
	} else {
		x[0] = 1
	}
	y := make([]float64, n)
	prev := 0.0
	for it := 1; it <= maxIter; it++ {
		a.MulVec(y, x)
		lambda = vec.Dot(x, y)
		nrm := vec.Nrm2(y)
		if nrm == 0 {
			return 0, it
		}
		for i := range x {
			x[i] = y[i] / nrm
		}
		if it > 1 && math.Abs(lambda-prev) <= tol*math.Abs(lambda) {
			return lambda, it
		}
		prev = lambda
	}
	return lambda, maxIter
}

// Gershgorin returns an interval [lo,hi] containing every eigenvalue of
// the symmetric matrix A, from the union of Gershgorin discs.
func Gershgorin(a *sparse.CSR) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		var center, radius float64
		for k, j := range cols {
			if j == i {
				center = vals[k]
			} else {
				radius += math.Abs(vals[k])
			}
		}
		if center-radius < lo {
			lo = center - radius
		}
		if center+radius > hi {
			hi = center + radius
		}
	}
	if a.Rows == 0 {
		return 0, 0
	}
	return lo, hi
}

// Estimate bundles spectral estimates for an SPD matrix.
type Estimate struct {
	LambdaMax float64
	LambdaMin float64
	Cond      float64 // κ = LambdaMax / LambdaMin
	Steps     int     // Lanczos steps performed
}

// Lanczos runs steps iterations of the Lanczos process on the symmetric
// matrix A with full reorthogonalization (the matrices of interest are
// moderate-sized, so the O(n·steps²) cost is acceptable and the Ritz values
// are trustworthy) and returns estimates of the extreme eigenvalues.
//
// The smallest Ritz value overestimates λmin and the largest underestimates
// λmax; for the bound-validation experiments this is the right direction to
// make measured-versus-bound comparisons conservative is handled by the
// caller inflating κ slightly.
func Lanczos(a *sparse.CSR, steps int, seed uint64) Estimate {
	n := a.Rows
	if steps > n {
		steps = n
	}
	if steps < 1 {
		steps = 1
	}
	g := rng.NewSequential(seed)
	// Basis vectors kept for reorthogonalization.
	basis := make([][]float64, 0, steps)
	v := make([]float64, n)
	for i := range v {
		v[i] = g.NormFloat64()
	}
	vec.Scal(1/vec.Nrm2(v), v)

	alpha := make([]float64, 0, steps)
	beta := make([]float64, 0, steps) // beta[k] links step k and k+1
	w := make([]float64, n)

	for k := 0; k < steps; k++ {
		cur := append([]float64(nil), v...)
		basis = append(basis, cur)
		a.MulVec(w, cur)
		if k > 0 {
			vec.Axpy(-beta[k-1], basis[k-1], w)
		}
		ak := vec.Dot(cur, w)
		alpha = append(alpha, ak)
		vec.Axpy(-ak, cur, w)
		// Full reorthogonalization (twice is enough).
		for pass := 0; pass < 2; pass++ {
			for _, q := range basis {
				vec.Axpy(-vec.Dot(q, w), q, w)
			}
		}
		bk := vec.Nrm2(w)
		if bk <= 1e-14 || k == steps-1 {
			break
		}
		beta = append(beta, bk)
		for i := range v {
			v[i] = w[i] / bk
		}
	}

	m := len(alpha)
	lo, hi := tridiagExtremes(alpha[:m], beta[:min(len(beta), m-1)])
	est := Estimate{LambdaMax: hi, LambdaMin: lo, Steps: m}
	if lo > 0 {
		est.Cond = hi / lo
	} else {
		est.Cond = math.Inf(1)
	}
	return est
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// EstimateSPD estimates λmax, λmin and κ of an SPD matrix with a Lanczos
// sweep sized to the matrix (min(n, 2·stepsHint)), falling back to
// Gershgorin when Lanczos breaks down.
func EstimateSPD(a *sparse.CSR, stepsHint int, seed uint64) Estimate {
	if stepsHint < 20 {
		stepsHint = 20
	}
	est := Lanczos(a, stepsHint, seed)
	if est.LambdaMin <= 0 || math.IsNaN(est.LambdaMin) {
		lo, hi := Gershgorin(a)
		if lo <= 0 {
			lo = 1e-12
		}
		est = Estimate{LambdaMax: hi, LambdaMin: lo, Cond: hi / lo, Steps: est.Steps}
	}
	return est
}
