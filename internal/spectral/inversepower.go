package spectral

import (
	"github.com/asynclinalg/asyrgs/internal/rng"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// InversePowerIteration estimates the *smallest* eigenvalue of the SPD
// matrix A by power iteration on A⁻¹, with each application of A⁻¹
// computed by an inner conjugate-gradient solve. This is the style of the
// reliable iterative condition-number estimator the paper cites ([2],
// Avron–Druinsky–Toledo): λmin converges from above as the iteration
// proceeds, so κ estimates derived from it are conservative.
//
// innerTol controls the CG solves (relative residual); tol is the
// relative change in consecutive Rayleigh quotients that stops the outer
// loop. Typical usage: InversePowerIteration(a, 1e-8, 1e-6, 200, seed).
func InversePowerIteration(a *sparse.CSR, innerTol, tol float64, maxIter int, seed uint64) (lambdaMin float64, iters int) {
	n := a.Rows
	g := rng.NewSequential(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = g.NormFloat64()
	}
	vec.Scal(1/vec.Nrm2(x), x)

	y := make([]float64, n)
	ax := make([]float64, n)
	prev := 0.0
	for it := 1; it <= maxIter; it++ {
		// y ≈ A⁻¹ x via CG (warm-started from the previous y, which is a
		// good guess once the iteration locks onto the bottom eigenvector).
		if !cgSolve(a, y, x, innerTol) {
			// CG failed (matrix not SPD numerically) — fall back to the
			// current Rayleigh quotient.
			break
		}
		nrm := vec.Nrm2(y)
		if nrm == 0 {
			break
		}
		for i := range y {
			y[i] /= nrm
		}
		// Rayleigh quotient of A at the (normalised) iterate estimates
		// λmin directly.
		a.MulVec(ax, y)
		lambdaMin = vec.Dot(y, ax)
		copy(x, y)
		if it > 1 && abs(lambdaMin-prev) <= tol*abs(lambdaMin) {
			return lambdaMin, it
		}
		prev = lambdaMin
	}
	return lambdaMin, maxIter
}

// cgSolve is a minimal CG used inside the estimator; it keeps spectral
// free of an import cycle with the krylov package.
func cgSolve(a *sparse.CSR, x, b []float64, tol float64) bool {
	n := a.Rows
	r := make([]float64, n)
	a.MulVec(r, x)
	vec.Sub(r, b, r)
	p := append([]float64(nil), r...)
	ap := make([]float64, n)
	rr := vec.Dot(r, r)
	normB := vec.Nrm2(b)
	if normB == 0 {
		for i := range x {
			x[i] = 0
		}
		return true
	}
	for it := 0; it < 4*n; it++ {
		if vec.Nrm2(r) <= tol*normB {
			return true
		}
		a.MulVec(ap, p)
		pap := vec.Dot(p, ap)
		if pap <= 0 {
			return false
		}
		alpha := rr / pap
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, ap, r)
		rrNew := vec.Dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return vec.Nrm2(r) <= tol*normB
}

// CondEst estimates the condition number κ = λmax/λmin of an SPD matrix
// combining plain power iteration (λmax, converges from below) and
// CG-based inverse power iteration (λmin, converges from above), so the
// returned κ is an underestimate that tightens as budgets grow — the
// conservative direction for evaluating the paper's bounds, which divide
// by κ.
func CondEst(a *sparse.CSR, seed uint64) Estimate {
	lmax, _ := PowerIteration(a, 1e-10, 4*a.Rows, seed)
	lmin, it := InversePowerIteration(a, 1e-10, 1e-8, 100, seed+1)
	est := Estimate{LambdaMax: lmax, LambdaMin: lmin, Steps: it}
	if lmin > 0 {
		est.Cond = lmax / lmin
	}
	return est
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
