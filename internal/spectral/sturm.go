package spectral

import "math"

// tridiagExtremes returns the smallest and largest eigenvalues of the
// symmetric tridiagonal matrix with diagonal alpha and off-diagonal beta,
// computed by bisection on Sturm sequences. The Sturm count — the number of
// sign agreements in the sequence of leading-principal-minor ratios — gives
// the number of eigenvalues below a shift exactly, so bisection converges
// unconditionally to machine precision.
func tridiagExtremes(alpha, beta []float64) (lo, hi float64) {
	m := len(alpha)
	if m == 0 {
		return 0, 0
	}
	if m == 1 {
		return alpha[0], alpha[0]
	}
	// Gershgorin bracket for the tridiagonal.
	glo, ghi := math.Inf(1), math.Inf(-1)
	for i := 0; i < m; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(beta[i-1])
		}
		if i < m-1 {
			r += math.Abs(beta[i])
		}
		if alpha[i]-r < glo {
			glo = alpha[i] - r
		}
		if alpha[i]+r > ghi {
			ghi = alpha[i] + r
		}
	}
	lo = kthEigenvalue(alpha, beta, 1, glo, ghi)
	hi = kthEigenvalue(alpha, beta, m, glo, ghi)
	return lo, hi
}

// sturmCount returns the number of eigenvalues of the tridiagonal strictly
// less than x, via the classic LDLᵀ-style recurrence with underflow guard.
func sturmCount(alpha, beta []float64, x float64) int {
	count := 0
	d := 1.0
	for i := range alpha {
		var off float64
		if i > 0 {
			off = beta[i-1]
		}
		d = alpha[i] - x - off*off/d
		if d == 0 {
			d = 1e-300
		}
		if d < 0 {
			count++
		}
	}
	return count
}

// kthEigenvalue returns the k-th smallest eigenvalue (1-based) of the
// tridiagonal by bisection within [glo, ghi].
func kthEigenvalue(alpha, beta []float64, k int, glo, ghi float64) float64 {
	lo, hi := glo, ghi
	// Widen slightly so endpoints are strict brackets.
	span := hi - lo
	if span == 0 {
		span = math.Max(1, math.Abs(lo))
	}
	lo -= 1e-12 * span
	hi += 1e-12 * span
	for iter := 0; iter < 200 && hi-lo > 1e-14*math.Max(1, math.Abs(hi)); iter++ {
		mid := 0.5 * (lo + hi)
		if sturmCount(alpha, beta, mid) < k {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}
