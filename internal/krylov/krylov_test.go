package krylov

import (
	"errors"
	"math"
	"testing"

	"github.com/asynclinalg/asyrgs/internal/dense"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
	"github.com/asynclinalg/asyrgs/internal/workload"
)

func spd(t *testing.T, n int, seed uint64) *sparse.CSR {
	t.Helper()
	return workload.RandomSPD(n, 5, 1.4, seed)
}

func TestCGMatchesDirectSolve(t *testing.T) {
	a := spd(t, 60, 1)
	b := workload.RandomRHS(60, 2)
	want, err := dense.SolveCSR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 60)
	res, err := CG(a, x, b, CGOptions{Tol: 1e-12, MaxIter: 600})
	if err != nil {
		t.Fatalf("CG: %v (%+v)", err, res)
	}
	if !res.Converged || res.Residual > 1e-12 {
		t.Fatalf("bad result %+v", res)
	}
	if e := vec.RelErr(x, want); e > 1e-9 {
		t.Fatalf("CG error %v vs direct", e)
	}
}

func TestCGExactInNIterations(t *testing.T) {
	// CG reaches the exact solution in at most n steps (exact arithmetic);
	// numerically it should converge well before 2n on a small system.
	a := spd(t, 25, 3)
	b := workload.RandomRHS(25, 4)
	x := make([]float64, 25)
	res, err := CG(a, x, b, CGOptions{Tol: 1e-10, MaxIter: 50})
	if err != nil || res.Iterations > 50 {
		t.Fatalf("CG took %d iterations: %v", res.Iterations, err)
	}
}

func TestCGWithJacobiPreconditioner(t *testing.T) {
	a := spd(t, 80, 5)
	b := workload.RandomRHS(80, 6)
	var plainHist, preHist []float64
	x1 := make([]float64, 80)
	_, _ = CG(a, x1, b, CGOptions{Tol: 1e-10, MaxIter: 500, History: &plainHist})
	x2 := make([]float64, 80)
	pre := NewDiagonal(a.Diag())
	res, err := CG(a, x2, b, CGOptions{Tol: 1e-10, MaxIter: 500, Precond: pre, History: &preHist})
	if err != nil {
		t.Fatalf("preconditioned CG failed: %v", err)
	}
	if !res.Converged {
		t.Fatal("preconditioned CG should converge")
	}
	if e := vec.RelErr(x1, x2); e > 1e-7 {
		t.Fatalf("solutions disagree: %v", e)
	}
}

func TestCGHonorsInitialGuess(t *testing.T) {
	a := spd(t, 30, 7)
	b := workload.RandomRHS(30, 8)
	want, _ := dense.SolveCSR(a, b)
	x := append([]float64(nil), want...) // exact guess
	res, err := CG(a, x, b, CGOptions{Tol: 1e-10, MaxIter: 10})
	if err != nil || res.Iterations != 0 {
		t.Fatalf("exact initial guess should converge immediately: %+v %v", res, err)
	}
}

func TestCGParallelMatchesSerial(t *testing.T) {
	a := spd(t, 400, 9)
	b := workload.RandomRHS(400, 10)
	x1 := make([]float64, 400)
	x2 := make([]float64, 400)
	_, _ = CG(a, x1, b, CGOptions{Tol: 1e-10, MaxIter: 2000, Workers: 1})
	_, _ = CG(a, x2, b, CGOptions{Tol: 1e-10, MaxIter: 2000, Workers: 8, Partition: sparse.PartitionRoundRobin})
	if e := vec.RelErr(x1, x2); e > 1e-7 {
		t.Fatalf("parallel CG diverged from serial: %v", e)
	}
}

func TestCGNotConverged(t *testing.T) {
	a := spd(t, 40, 11)
	b := workload.RandomRHS(40, 12)
	x := make([]float64, 40)
	_, err := CG(a, x, b, CGOptions{Tol: 1e-30, MaxIter: 2})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
}

func TestCGDenseMatchesPerColumnCG(t *testing.T) {
	a := spd(t, 50, 13)
	const c = 4
	b := workload.MultiRHS(50, c, 14)
	x := vec.NewDense(50, c)
	res, err := CGDense(a, x, b, CGOptions{Tol: 1e-11, MaxIter: 400}, nil)
	if err != nil {
		t.Fatalf("CGDense: %v (%+v)", err, res)
	}
	for j := 0; j < c; j++ {
		bj := make([]float64, 50)
		b.Col(bj, j)
		want, _ := dense.SolveCSR(a, bj)
		got := make([]float64, 50)
		x.Col(got, j)
		if e := vec.RelErr(got, want); e > 1e-7 {
			t.Fatalf("CGDense column %d error %v", j, e)
		}
	}
}

func TestCGDenseHistoryDecreases(t *testing.T) {
	a := spd(t, 40, 15)
	b := workload.MultiRHS(40, 3, 16)
	x := vec.NewDense(40, 3)
	var hist []float64
	_, _ = CGDense(a, x, b, CGOptions{Tol: 1e-10, MaxIter: 100}, &hist)
	if len(hist) < 2 || hist[len(hist)-1] >= hist[0] {
		t.Fatalf("residual history should decrease: %v", hist)
	}
}

func TestFlexibleCGWithIdentityBehavesLikeCG(t *testing.T) {
	a := spd(t, 60, 17)
	b := workload.RandomRHS(60, 18)
	want, _ := dense.SolveCSR(a, b)
	x := make([]float64, 60)
	res, err := FlexibleCG(a, x, b, Identity{}, FCGOptions{Tol: 1e-11, MaxIter: 300})
	if err != nil {
		t.Fatalf("FCG: %v (%+v)", err, res)
	}
	if e := vec.RelErr(x, want); e > 1e-8 {
		t.Fatalf("FCG error %v", e)
	}
}

func TestFlexibleCGWithExactInverseConvergesInstantly(t *testing.T) {
	a := spd(t, 30, 19)
	b := workload.RandomRHS(30, 20)
	inv, err := dense.Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	pre := PrecondFunc(func(z, r []float64) {
		copy(z, dense.MulVec(inv, r, len(r)))
	})
	x := make([]float64, 30)
	res, err := FlexibleCG(a, x, b, pre, FCGOptions{Tol: 1e-10, MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("exact preconditioner should converge in ≤2 iterations, took %d", res.Iterations)
	}
}

func TestFlexibleCGWithTruncation(t *testing.T) {
	a := spd(t, 60, 21)
	b := workload.RandomRHS(60, 22)
	x := make([]float64, 60)
	res, err := FlexibleCG(a, x, b, NewDiagonal(a.Diag()), FCGOptions{Tol: 1e-10, MaxIter: 500, Truncate: 2})
	if err != nil {
		t.Fatalf("truncated FCG failed: %v (%+v)", err, res)
	}
}

func TestFlexibleCGToleratesNondeterministicPreconditioner(t *testing.T) {
	// A preconditioner that changes every application (like AsyRGS):
	// alternating damped-Jacobi strengths. Plain CG theory breaks; FCG
	// must still converge.
	a := spd(t, 80, 23)
	b := workload.RandomRHS(80, 24)
	diag := NewDiagonal(a.Diag())
	calls := 0
	pre := PrecondFunc(func(z, r []float64) {
		diag.Apply(z, r)
		calls++
		scale := 1.0
		if calls%2 == 0 {
			scale = 0.5 // different operator on alternate calls
		}
		vec.Scal(scale, z)
	})
	x := make([]float64, 80)
	res, err := FlexibleCG(a, x, b, pre, FCGOptions{Tol: 1e-9, MaxIter: 1000})
	if err != nil {
		t.Fatalf("FCG with changing preconditioner failed: %v (%+v)", err, res)
	}
}

func TestJacobiConvergesOnDiagonallyDominant(t *testing.T) {
	a := spd(t, 50, 25)
	b := workload.RandomRHS(50, 26)
	x := make([]float64, 50)
	res := Jacobi(a, x, b, 500, 1e-8, 2)
	if !res.Converged {
		t.Fatalf("Jacobi should converge on a strictly dominant system: %+v", res)
	}
	want, _ := dense.SolveCSR(a, b)
	if e := vec.RelErr(x, want); e > 1e-6 {
		t.Fatalf("Jacobi error %v", e)
	}
}

func TestGaussSeidelConvergesAndBeatsJacobi(t *testing.T) {
	a := spd(t, 50, 27)
	b := workload.RandomRHS(50, 28)
	xj := make([]float64, 50)
	xg := make([]float64, 50)
	const sweeps = 30
	rj := Jacobi(a, xj, b, sweeps, 0, 1)
	rg := GaussSeidel(a, xg, b, sweeps, 0)
	if rg.Residual >= rj.Residual {
		t.Fatalf("after %d sweeps GS residual %v should beat Jacobi %v", sweeps, rg.Residual, rj.Residual)
	}
}

func TestGaussSeidelEarlyStop(t *testing.T) {
	a := spd(t, 30, 29)
	b := workload.RandomRHS(30, 30)
	x := make([]float64, 30)
	res := GaussSeidel(a, x, b, 10_000, 1e-10)
	if !res.Converged || res.Sweeps == 10_000 {
		t.Fatalf("GS should stop early: %+v", res)
	}
}

func TestDiagonalPreconditionerZeroDiag(t *testing.T) {
	p := NewDiagonal([]float64{2, 0})
	z := make([]float64, 2)
	p.Apply(z, []float64{4, 3})
	if z[0] != 2 || z[1] != 3 {
		t.Fatalf("Diagonal.Apply = %v", z)
	}
}

func TestIdentityPreconditioner(t *testing.T) {
	z := make([]float64, 2)
	Identity{}.Apply(z, []float64{1, 2})
	if z[0] != 1 || z[1] != 2 {
		t.Fatal("Identity should copy")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := spd(t, 10, 31)
	x := make([]float64, 10)
	res, err := CG(a, x, make([]float64, 10), CGOptions{Tol: 1e-10, MaxIter: 10})
	if err != nil || !res.Converged {
		t.Fatalf("zero RHS should converge immediately: %+v %v", res, err)
	}
	if vec.Nrm2(x) != 0 {
		t.Fatal("solution should stay zero")
	}
}

func TestCGIndefiniteDetection(t *testing.T) {
	// An indefinite matrix breaks the pAp > 0 invariant; CG must stop
	// with ErrNotConverged rather than diverge silently.
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, -1)
	a := coo.ToCSR()
	x := make([]float64, 2)
	_, err := CG(a, x, []float64{0, 1}, CGOptions{Tol: 1e-12, MaxIter: 10})
	if err == nil {
		t.Fatal("indefinite system should not report convergence")
	}
	if math.IsNaN(x[0]) || math.IsNaN(x[1]) {
		t.Fatal("iterate must stay finite")
	}
}

func TestAsyncJacobiConverges(t *testing.T) {
	a := spd(t, 200, 33)
	b := workload.RandomRHS(200, 34)
	want, _ := dense.SolveCSR(a, b)
	x := make([]float64, 200)
	// Tolerances are loose because chaotic relaxation's measured rate
	// depends on scheduler interleaving (load-sensitive by nature).
	res := AsyncJacobi(a, x, b, 400, 4)
	if res.Residual > 1e-3 {
		t.Fatalf("async Jacobi residual %v", res.Residual)
	}
	if e := vec.RelErr(x, want); e > 1e-2 {
		t.Fatalf("async Jacobi error %v", e)
	}
}

func TestAsyncJacobiSingleWorkerIsGaussSeidelLike(t *testing.T) {
	// One worker, one block: the update is exactly forward Gauss–Seidel.
	a := spd(t, 40, 35)
	b := workload.RandomRHS(40, 36)
	x1 := make([]float64, 40)
	AsyncJacobi(a, x1, b, 5, 1)
	x2 := make([]float64, 40)
	GaussSeidel(a, x2, b, 5, 0)
	if e := vec.RelErr(x1, x2); e > 1e-12 {
		t.Fatalf("single-worker async Jacobi diverged from GS: %v", e)
	}
}

func TestAsyncJacobiThrottledStarvation(t *testing.T) {
	// Starve worker 0's block: its coordinates receive far fewer
	// effective updates, demonstrating the single-point-of-failure
	// weakness of deterministic asynchronous methods (Hook–Dingle). The
	// run must still finish and the healthy blocks must have progressed.
	a := spd(t, 200, 37)
	b := workload.RandomRHS(200, 38)
	slowCalls := 0
	x := make([]float64, 200)
	res := AsyncJacobiThrottled(a, x, b, 20, 4, func(w, i int) {
		if w == 0 {
			slowCalls++ // just count; heavy sleeps would slow the suite
		}
	})
	if slowCalls == 0 {
		t.Fatal("throttle was never invoked for worker 0")
	}
	if res.Residual >= 1 {
		t.Fatalf("async Jacobi made no progress: %v", res.Residual)
	}
}
