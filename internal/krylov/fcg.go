package krylov

import (
	"context"
	"math"

	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// FCGOptions configure a Flexible-CG run.
type FCGOptions struct {
	// Tol is the relative-residual convergence threshold. The paper uses
	// 1e-8 for its Table 1 / Figure 3 experiments.
	Tol float64
	// MaxIter caps outer iterations; 0 means 10·n.
	MaxIter int
	// Workers parallelizes the SpMV.
	Workers int
	// Partition selects the SpMV row partitioning.
	Partition sparse.Partition
	// Truncate keeps only the last Truncate direction vectors for the
	// A-orthogonalization. 0 keeps all of them — the paper's
	// configuration ("we do not use truncation or restarts").
	Truncate int
	// History, when non-nil, receives the relative residual per iteration.
	History *[]float64
	// Ctx, when non-nil, is checked before every outer iteration; a
	// cancelled context stops the solve and returns the context's error.
	Ctx context.Context
}

// FCGResult reports a Flexible-CG run.
type FCGResult struct {
	Iterations int
	Residual   float64
	Converged  bool
	// MatVecs counts operator applications by FCG itself (one per
	// iteration plus the initial residual); preconditioner work is
	// reported by the caller, which knows the sweeps-per-application.
	MatVecs int
}

// FlexibleCG solves the SPD system A·x = b with Notay's flexible conjugate
// gradient method: the preconditioner may change arbitrarily between
// iterations (AsyRGS does — it is randomized and asynchronous), and
// robustness is restored by explicitly A-orthogonalizing each new search
// direction against the retained previous directions.
func FlexibleCG(a *sparse.CSR, x, b []float64, precond Preconditioner, opts FCGOptions) (FCGResult, error) {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n {
		panic("krylov: FlexibleCG shape mismatch")
	}
	if precond == nil {
		precond = Identity{}
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	normB := vec.Nrm2(b)
	if normB == 0 {
		normB = 1
	}

	r := make([]float64, n)
	tmp := make([]float64, n)
	a.MulVecPar(tmp, x, opts.Workers, opts.Partition)
	matvecs := 1
	vec.Sub(r, b, tmp)

	res := vec.Nrm2(r) / normB
	if opts.History != nil {
		*opts.History = append(*opts.History, res)
	}
	if res <= tol {
		return FCGResult{Iterations: 0, Residual: res, Converged: true, MatVecs: matvecs}, nil
	}

	// Retained directions p_j, their images q_j = A·p_j, and (p_j, q_j).
	var ps, qs [][]float64
	var pq []float64

	z := make([]float64, n)
	for it := 1; it <= maxIter; it++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return FCGResult{Iterations: it - 1, Residual: res, MatVecs: matvecs}, err
			}
		}
		precond.Apply(z, r)

		// New direction: A-orthogonalize z against retained directions.
		p := append([]float64(nil), z...)
		for j := range ps {
			coef := vec.Dot(z, qs[j]) / pq[j]
			vec.Axpy(-coef, ps[j], p)
		}
		q := make([]float64, n)
		a.MulVecPar(q, p, opts.Workers, opts.Partition)
		matvecs++
		den := vec.Dot(p, q)
		if den <= 0 || math.IsNaN(den) {
			return FCGResult{Iterations: it - 1, Residual: res, MatVecs: matvecs}, ErrNotConverged
		}
		alpha := vec.Dot(p, r) / den
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, q, r)

		res = vec.Nrm2(r) / normB
		if opts.History != nil {
			*opts.History = append(*opts.History, res)
		}
		if res <= tol {
			return FCGResult{Iterations: it, Residual: res, Converged: true, MatVecs: matvecs}, nil
		}

		ps = append(ps, p)
		qs = append(qs, q)
		pq = append(pq, den)
		if opts.Truncate > 0 && len(ps) > opts.Truncate {
			ps = ps[len(ps)-opts.Truncate:]
			qs = qs[len(qs)-opts.Truncate:]
			pq = pq[len(pq)-opts.Truncate:]
		}
	}
	return FCGResult{Iterations: maxIter, Residual: res, MatVecs: matvecs}, ErrNotConverged
}
