package krylov

import (
	"math"

	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// StationaryResult reports a stationary-iteration run.
type StationaryResult struct {
	Sweeps    int
	Residual  float64
	Converged bool
}

// InvDiag returns the entrywise reciprocal of the matrix diagonal with
// zero entries mapped to zero — the prepared state every stationary
// iteration in this file consumes. Computing it once per matrix (rather
// than once per chunk of sweeps) is what the ...WithInv variants exist
// for.
func InvDiag(a *sparse.CSR) []float64 {
	diag := a.Diag()
	inv := make([]float64, len(diag))
	for i, d := range diag {
		if d != 0 {
			inv[i] = 1 / d
		}
	}
	return inv
}

// Jacobi runs sweeps of the Jacobi iteration x ← x + D⁻¹(b − A·x),
// stopping early when the relative residual drops below tol (tol <= 0
// disables the check). Jacobi is the classical synchronization-heavy
// baseline that asynchronous methods historically relaxed. Repeated
// solves against one matrix should hoist InvDiag and call JacobiWithInv.
func Jacobi(a *sparse.CSR, x, b []float64, sweeps int, tol float64, workers int) StationaryResult {
	return JacobiWithInv(a, InvDiag(a), x, b, sweeps, tol, workers)
}

// JacobiWithInv is Jacobi with a precomputed D⁻¹ (see InvDiag), the
// prepared-state entry point: no per-call diagonal extraction.
func JacobiWithInv(a *sparse.CSR, inv, x, b []float64, sweeps int, tol float64, workers int) StationaryResult {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n || len(inv) != n {
		panic("krylov: Jacobi shape mismatch")
	}
	normB := vec.Nrm2(b)
	if normB == 0 {
		normB = 1
	}
	ax := make([]float64, n)
	for s := 1; s <= sweeps; s++ {
		a.MulVecPar(ax, x, workers, sparse.PartitionRoundRobin)
		var rn float64
		for i := 0; i < n; i++ {
			r := b[i] - ax[i]
			rn += r * r
			x[i] += inv[i] * r
		}
		if tol > 0 {
			if res := sqrtSafe(rn) / normB; res <= tol {
				return StationaryResult{Sweeps: s, Residual: res, Converged: true}
			}
		}
	}
	a.MulVecPar(ax, x, workers, sparse.PartitionRoundRobin)
	var rn float64
	for i := 0; i < n; i++ {
		d := b[i] - ax[i]
		rn += d * d
	}
	res := sqrtSafe(rn) / normB
	return StationaryResult{Sweeps: sweeps, Residual: res, Converged: tol > 0 && res <= tol}
}

// GaussSeidel runs deterministic forward Gauss–Seidel sweeps:
// x_i ← (b_i − Σ_{j≠i} A_ij x_j)/A_ii in row order. It is inherently
// sequential — the baseline whose randomized counterpart the paper builds
// on. Repeated solves against one matrix should hoist InvDiag and call
// GaussSeidelWithInv.
func GaussSeidel(a *sparse.CSR, x, b []float64, sweeps int, tol float64) StationaryResult {
	return GaussSeidelWithInv(a, InvDiag(a), x, b, sweeps, tol)
}

// GaussSeidelWithInv is GaussSeidel with a precomputed D⁻¹ (see InvDiag),
// the prepared-state entry point: no per-call diagonal extraction.
func GaussSeidelWithInv(a *sparse.CSR, inv, x, b []float64, sweeps int, tol float64) StationaryResult {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n || len(inv) != n {
		panic("krylov: GaussSeidel shape mismatch")
	}
	normB := vec.Nrm2(b)
	if normB == 0 {
		normB = 1
	}
	for s := 1; s <= sweeps; s++ {
		for i := 0; i < n; i++ {
			if inv[i] == 0 {
				continue
			}
			var dot float64
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				dot += a.Vals[k] * x[a.ColIdx[k]]
			}
			// dot includes A_ii·x_i; solve for the updated x_i directly.
			x[i] += (b[i] - dot) * inv[i]
		}
		if tol > 0 {
			if res := relResidual(a, x, b, normB); res <= tol {
				return StationaryResult{Sweeps: s, Residual: res, Converged: true}
			}
		}
	}
	res := relResidual(a, x, b, normB)
	return StationaryResult{Sweeps: sweeps, Residual: res, Converged: tol > 0 && res <= tol}
}

func relResidual(a *sparse.CSR, x, b []float64, normB float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(r, x)
	vec.Sub(r, b, r)
	return vec.Nrm2(r) / normB
}

func sqrtSafe(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
